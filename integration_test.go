package vqesim

// Cross-module integration tests: each exercises a multi-stage pipeline
// through the public facade and internal packages together, asserting
// end-to-end physics rather than per-module contracts.

import (
	"context"
	"math"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/cluster"
	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/qpe"
	"repro/internal/state"
	"repro/internal/vqe"
	"repro/internal/xacc"
)

func TestIntegrationDownfoldThenVQE(t *testing.T) {
	// Full pipeline of the paper's Figure 2: synthetic molecule →
	// downfolded effective Hamiltonian → UCCSD VQE on the reduced space →
	// compare against the downfolded operator's own sector ground state.
	m := chem.Synthetic(chem.SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 6, Decay: 1.2, Correlation: 0.25})
	down, err := chem.Downfold(m, chem.DownfoldOptions{ActiveOrbitals: 2, Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chem.FCIofOp(down.Fermionic, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ansatz.NewUCCSD(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := vqe.New(down.Qubit, u, vqe.Options{Mode: vqe.Direct})
	if err != nil {
		t.Fatal(err)
	}
	res, err := drv.MinimizeLBFGS(make([]float64, u.NumParameters()), opt.LBFGSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-ref.Energy) > 1e-5 {
		t.Errorf("VQE on downfolded H: %v vs sector FCI %v", res.Energy, ref.Energy)
	}
	// And the downfolded result approximates the full-space FCI.
	full, err := chem.FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-full.Energy) > 0.1 {
		t.Errorf("downfolded VQE %v too far from full FCI %v", res.Energy, full.Energy)
	}
}

func TestIntegrationVQEThenQPE(t *testing.T) {
	// The hybrid refinement loop: VQE finds the state, QPE reads its
	// eigenvalue off the optimized preparation circuit.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	drv, _ := vqe.New(h, u, vqe.Options{Mode: vqe.Direct})
	vres, err := drv.MinimizeLBFGS(make([]float64, u.NumParameters()), opt.LBFGSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prep := qpe.VQEPrep(u, vres.Params)
	qres, err := qpe.Estimate(h, prep, 4, qpe.Options{AncillaQubits: 8, Time: 0.8, TrotterSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qres.Energy-fci.Energy) > qres.Resolution {
		t.Errorf("QPE on VQE state: %v vs FCI %v (res %v)", qres.Energy, fci.Energy, qres.Resolution)
	}
	if qres.Confidence < 0.4 {
		t.Errorf("confidence %v low for an optimized eigenstate", qres.Confidence)
	}
}

func TestIntegrationTaperThenDiagonalize(t *testing.T) {
	// Tapering composed with the facade: reduced operator reproduces the
	// sector ground energy of the full operator.
	op, n, err := TaperedHamiltonian(H2())
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := linalg.GroundState(op.ToDense(n))
	if err != nil {
		t.Fatal(err)
	}
	fci, _ := ExactGroundEnergy(H2())
	if math.Abs(e-fci) > 1e-8 {
		t.Errorf("tapered ground %v vs FCI %v", e, fci)
	}
}

func TestIntegrationFusedCircuitOnClusterMatchesDirect(t *testing.T) {
	// Transpiled UCCSD executed on the multi-rank backend gives the same
	// energy as the single-node direct path.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	params := []float64{0.11, -0.07, 0.19}
	c := u.Circuit(params)

	s := state.New(4, state.Options{})
	s.Run(c)
	want := pauli.Expectation(s, h, pauli.ExpectationOptions{})

	acc := &xacc.ClusterAccelerator{Ranks: 4}
	got, err := acc.Expectation(context.Background(), c, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cluster %v vs direct %v", got, want)
	}

	cl, err := cluster.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(c)
	cs, err := cl.ToState()
	if err != nil {
		t.Fatal(err)
	}
	if e := pauli.Expectation(cs, h, pauli.ExpectationOptions{}); math.Abs(e-want) > 1e-9 {
		t.Errorf("2-rank cluster %v vs direct %v", e, want)
	}
}

func TestIntegrationEncodingAgnosticEnergy(t *testing.T) {
	// The optimized UCCSD energy is encoding-independent when ansatz and
	// observable share the mapping. The Hubbard model goes through RHF
	// first so the aufbau reference is the true mean-field state.
	scf, err := chem.RHF(chem.Hubbard(2, 1, 2, 2), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := scf.Molecule
	fh := chem.FermionicHamiltonian(m)
	fci, _ := chem.FCI(m)
	for name, mk := range map[string]func(int) (*fermion.Encoding, error){
		"bk":     fermion.BravyiKitaevEncoding,
		"parity": fermion.ParityEncoding,
	} {
		enc, err := mk(4)
		if err != nil {
			t.Fatal(err)
		}
		q, err := enc.Transform(fh)
		if err != nil {
			t.Fatal(err)
		}
		u, err := ansatz.NewUCCSDWithEncoding(4, 2, enc)
		if err != nil {
			t.Fatal(err)
		}
		drv, err := vqe.New(q.HermitianPart(), u, vqe.Options{Mode: vqe.Direct})
		if err != nil {
			t.Fatal(err)
		}
		res, err := drv.MinimizeLBFGS(make([]float64, u.NumParameters()), opt.LBFGSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Energy-fci.Energy) > 1e-6 {
			t.Errorf("%s: %v vs FCI %v", name, res.Energy, fci.Energy)
		}
	}
}

func TestIntegrationDissociationCurveVQE(t *testing.T) {
	// Three points of the H2 curve as one sweep family through the
	// facade: VQE == FCI everywhere, with the expected ordering.
	ss := &SweepSpec{
		Base: RunSpec{Algorithm: "vqe", Molecule: MoleculeSpec{Kind: "h2"}},
		Axis: SweepAxis{Param: AxisDistance, Values: []float64{0.5, 0.7414, 1.5}},
	}
	res, err := RunSweep(context.Background(), ss, SweepRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d of %d sweep points failed", res.Failed, len(res.Points))
	}
	energies := map[float64]float64{}
	for _, po := range res.Points {
		if po.Result.ErrorVsExact > 1e-6 {
			t.Errorf("R=%v: VQE error %v", po.Value, po.Result.ErrorVsExact)
		}
		energies[po.Value] = po.Result.Energy
	}
	if !(energies[0.7414] < energies[0.5] && energies[0.7414] < energies[1.5]) {
		t.Errorf("equilibrium not the minimum: %v", energies)
	}
}

func TestIntegrationSymmetryConservationThroughVQE(t *testing.T) {
	// The optimized VQE state keeps ⟨N⟩ and ⟨Sz⟩ at the HF values.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	drv, _ := vqe.New(h, u, vqe.Options{Mode: vqe.Direct})
	res, err := drv.MinimizeLBFGS(make([]float64, u.NumParameters()), opt.LBFGSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := state.New(4, state.Options{})
	s.Run(u.Circuit(res.Params))
	if nEl := pauli.Expectation(s, chem.NumberOperator(4), pauli.ExpectationOptions{}); math.Abs(nEl-2) > 1e-8 {
		t.Errorf("⟨N⟩ = %v", nEl)
	}
	if sz := pauli.Expectation(s, chem.SzOperator(2), pauli.ExpectationOptions{}); math.Abs(sz) > 1e-8 {
		t.Errorf("⟨Sz⟩ = %v", sz)
	}
	if s2 := pauli.Expectation(s, chem.S2Operator(2), pauli.ExpectationOptions{}); math.Abs(s2) > 1e-6 {
		t.Errorf("⟨S²⟩ = %v (ground state should be a singlet)", s2)
	}
}
