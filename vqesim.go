// Package vqesim is the public facade of the NWQ-Sim/VQE reproduction: an
// end-to-end workflow for simulating variational quantum eigensolver
// computations on classical hardware, following Wang et al., "Enabling
// Scalable VQE Simulation on Leading HPC Systems" (SC-W 2023).
//
// The pipeline mirrors the paper's Figure 2:
//
//	molecule → (coupled-cluster downfolding) → qubit observable
//	         → XACC-style compilation (ansatz + measurement bases)
//	         → NWQ-Sim simulation (caching, fusion, direct expectation)
//	         → classical optimization → ground-state energy
//
// Quick start:
//
//	res, err := vqesim.Run(ctx, &vqesim.RunSpec{}, vqesim.RunOptions{})
//	fmt.Println(res.Energy)   // ≈ −1.1373 Ha (H2 is the default molecule)
//
// The canonical way to describe a workload is a RunSpec — the same JSON
// document the vqe CLI assembles from flags and the vqed daemon accepts
// over HTTP. The legacy GroundState* entry points and their config
// structs remain as thin adapters for callers holding an arbitrary
// *Molecule value.
//
// The heavy lifting lives in the internal packages (state, circuit, pauli,
// fermion, chem, ansatz, vqe, qpe, cluster, density, xacc); this package
// re-exports the types a downstream application needs and wires together
// the common workflows.
package vqesim

import (
	"context"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/noise"
	"repro/internal/pauli"
	"repro/internal/qpe"
	"repro/internal/runspec"
	"repro/internal/state"
	"repro/internal/vqe"
)

// The unified spec API: one serializable document describes molecule,
// encoding, algorithm, ansatz, evaluation mode, optimizer, backend, and
// resilience policy. See the runspec package for field documentation.
type (
	// RunSpec is the canonical description of one VQE workload.
	RunSpec = runspec.RunSpec
	// MoleculeSpec names a built-in molecular model.
	MoleculeSpec = runspec.MoleculeSpec
	// RunResult is the serializable outcome of executing a RunSpec.
	RunResult = runspec.Result
	// RunOptions carries per-invocation machinery (progress sink,
	// checkpoint override, shared pool).
	RunOptions = runspec.RunOptions
	// Progress is one per-iteration notification (the energy trace).
	Progress = runspec.Progress
	// SweepSpec describes a parameter-sweep job family: one base RunSpec
	// plus an axis expanded into content-addressed point specs.
	SweepSpec = runspec.SweepSpec
	// SweepAxis names the swept parameter and its values or range.
	SweepAxis = runspec.SweepAxis
	// SweepRunOptions configures the in-process family runner.
	SweepRunOptions = runspec.SweepRunOptions
	// SweepPointOutcome is one settled point of a family run.
	SweepPointOutcome = runspec.SweepPointOutcome
	// SweepResult is the aggregate outcome of RunSweep.
	SweepResult = runspec.SweepResult
)

// Sweep axis parameter names accepted by SweepAxis.Param.
const (
	AxisDistance  = runspec.AxisDistance
	AxisHopping   = runspec.AxisHopping
	AxisRepulsion = runspec.AxisRepulsion
	AxisLayers    = runspec.AxisLayers
	AxisDownfold  = runspec.AxisDownfold
)

// Run executes a spec end to end: molecule construction, qubit mapping,
// optional downfolding, then the selected algorithm on the selected
// backend. Zero values select the defaults (UCCSD VQE on H2, L-BFGS,
// direct expectation, in-process state-vector backend).
func Run(ctx context.Context, spec *RunSpec, opts RunOptions) (*RunResult, error) {
	return runspec.Run(ctx, spec, opts)
}

// RunOnMolecule executes a spec's algorithm sections against an
// already-built molecule (the spec's own molecule section is ignored).
func RunOnMolecule(ctx context.Context, m *Molecule, spec *RunSpec, opts RunOptions) (*RunResult, error) {
	return runspec.RunOnMolecule(ctx, m, spec, opts)
}

// RunSweep executes a parameter-sweep family in-process: points in
// ascending axis order, each warm-started from its nearest finished
// neighbor, with Hamiltonian construction shared across points (paper
// §6.2 incremental optimization). The vqed daemon accepts the same
// SweepSpec document at POST /v1/sweeps.
func RunSweep(ctx context.Context, ss *SweepSpec, opts SweepRunOptions) (*SweepResult, error) {
	return runspec.RunSweep(ctx, ss, opts)
}

// Re-exported core types. These aliases make the public API usable without
// importing internal packages directly.
type (
	// Circuit is the gate-list intermediate representation.
	Circuit = circuit.Circuit
	// Observable is a Pauli-sum operator (Hamiltonian).
	Observable = pauli.Op
	// Molecule bundles molecular integrals.
	Molecule = chem.MolecularData
	// State is the single-node state-vector simulator.
	State = state.State
	// UCCSD is the unitary coupled-cluster singles-doubles ansatz.
	UCCSD = ansatz.UCCSD
)

// ChemicalAccuracy is 1 milli-hartree.
const ChemicalAccuracy = core.ChemicalAccuracy

// Built-in molecular models.

// H2 returns the H2/STO-3G benchmark molecule (FCI ≈ −1.13727 Ha).
func H2() *Molecule { return chem.H2() }

// WaterLike returns the synthetic stand-in for the paper's downfolded
// 6-orbital H2O active space (12 qubits), the Figure 5 workload.
func WaterLike() *Molecule { return chem.WaterLike() }

// Hubbard returns a 1D Hubbard chain model.
func Hubbard(sites int, t, u float64, electrons int) *Molecule {
	return chem.Hubbard(sites, t, u, electrons)
}

// Synthetic returns a random-but-physically-shaped molecule.
func Synthetic(orbitals, electrons int, seed uint64) *Molecule {
	return chem.Synthetic(chem.SyntheticOptions{NumOrbitals: orbitals, NumElectrons: electrons, Seed: seed})
}

// Hamiltonian maps a molecule to its Jordan–Wigner qubit observable.
func Hamiltonian(m *Molecule) *Observable { return chem.QubitHamiltonian(m) }

// ExactGroundEnergy returns the FCI ground energy (the reference every
// simulated result is judged against).
func ExactGroundEnergy(m *Molecule) (float64, error) {
	res, err := chem.FCI(m)
	if err != nil {
		return 0, err
	}
	return res.Energy, nil
}

// HartreeFockEnergy returns the mean-field reference energy.
func HartreeFockEnergy(m *Molecule) float64 { return chem.HartreeFockEnergy(m) }

// Downfold applies Hermitian coupled-cluster downfolding (paper §2),
// compressing the molecule onto activeOrbitals spatial orbitals with a
// second-order commutator expansion.
func Downfold(m *Molecule, activeOrbitals int) (*Observable, error) {
	res, err := chem.Downfold(m, chem.DownfoldOptions{ActiveOrbitals: activeOrbitals, Order: 2})
	if err != nil {
		return nil, err
	}
	return res.Qubit, nil
}

// VQEConfig tunes GroundStateVQE.
//
// Deprecated: VQEConfig is a thin adapter over RunSpec — new code should
// build a RunSpec and call Run (or RunOnMolecule). It is kept so existing
// callers compile.
type VQEConfig struct {
	// Mode selects energy evaluation: "direct" (default), "rotated",
	// "sampled".
	Mode string
	// Shots for sampled mode (default 8192).
	Shots int
	// Caching enables post-ansatz state caching (default true for rotated
	// and sampled modes; irrelevant for direct).
	DisableCaching bool
	// Fusion transpiles ansatz circuits with 2-qubit gate fusion.
	Fusion bool
	// Optimizer: "lbfgs" (default, adjoint gradients) or "nelder-mead".
	Optimizer string
	// Workers for parallel simulation (0 = GOMAXPROCS).
	Workers int
}

// VQEResult reports a ground-state computation.
type VQEResult struct {
	Energy     float64
	Params     []float64
	Exact      float64 // FCI reference
	ErrorVsFCI float64
	Stats      vqe.Stats
}

// Spec converts the legacy config into its RunSpec equivalent.
func (cfg VQEConfig) Spec() *RunSpec {
	spec := &RunSpec{
		Mode:           cfg.Mode,
		Shots:          cfg.Shots,
		DisableCaching: cfg.DisableCaching,
		Fusion:         cfg.Fusion,
	}
	spec.Optimizer.Method = cfg.Optimizer
	if cfg.Optimizer == "nelder-mead" {
		// The legacy entry point capped Nelder–Mead at 4000 iterations.
		spec.Optimizer.MaxIter = 4000
	}
	spec.Backend.Workers = cfg.Workers
	return spec
}

// GroundStateVQE runs the full workflow on a molecule with a UCCSD ansatz
// and returns the optimized energy alongside the FCI reference.
//
// Deprecated: build a RunSpec and call Run (content-addressable, more
// backends) or RunOnMolecule. Kept as an adapter for existing callers.
func GroundStateVQE(m *Molecule, cfg VQEConfig) (*VQEResult, error) {
	//vqelint:ignore ctxflow deprecated adapter: the legacy signature has no ctx; Run is the cancellable path
	res, err := runspec.RunOnMolecule(context.Background(), m, cfg.Spec(), runspec.RunOptions{})
	if err != nil {
		return nil, err
	}
	return &VQEResult{
		Energy:     res.Energy,
		Params:     res.Params,
		Exact:      res.Exact,
		ErrorVsFCI: res.ErrorVsExact,
		Stats: vqe.Stats{
			EnergyEvaluations: res.EnergyEvaluations,
			AnsatzExecutions:  res.AnsatzExecutions,
			GatesApplied:      res.GatesApplied,
		},
	}, nil
}

// AdaptConfig tunes GroundStateAdaptVQE.
//
// Deprecated: AdaptConfig is a thin adapter over the RunSpec adapt
// section — new code should set RunSpec.Algorithm = "adapt" and call Run.
type AdaptConfig struct {
	MaxIterations int     // default 30
	GradientTol   float64 // default 1e-4
	Workers       int
}

// Spec converts the legacy config into its RunSpec equivalent.
func (cfg AdaptConfig) Spec() *RunSpec {
	spec := &RunSpec{Algorithm: runspec.AlgorithmAdapt}
	spec.Adapt.MaxIterations = cfg.MaxIterations
	if spec.Adapt.MaxIterations == 0 {
		spec.Adapt.MaxIterations = 30
	}
	spec.Adapt.GradientTol = cfg.GradientTol
	spec.Backend.Workers = cfg.Workers
	return spec
}

// AdaptResult re-exports the Adapt-VQE outcome.
type AdaptResult = vqe.AdaptResult

// GroundStateAdaptVQE runs Adapt-VQE (paper §5.3 / Figure 5), stopping at
// chemical accuracy against the FCI reference. It remains a direct call
// (not a spec adapter) because it returns the grown AdaptAnsatz, which
// the serializable RunResult cannot carry.
//
// Deprecated: build a RunSpec with Algorithm = "adapt" and call Run
// unless you need the ansatz object itself.
func GroundStateAdaptVQE(m *Molecule, cfg AdaptConfig) (*AdaptResult, float64, error) {
	h := Hamiltonian(m)
	n := m.NumSpinOrbitals()
	exact, err := ExactGroundEnergy(m)
	if err != nil {
		return nil, 0, err
	}
	pool, err := ansatz.NewPool(n, m.NumElectrons)
	if err != nil {
		return nil, 0, err
	}
	res, err := vqe.Adapt(h, pool, n, m.NumElectrons, vqe.AdaptOptions{
		MaxIterations: cfg.MaxIterations,
		GradientTol:   cfg.GradientTol,
		Reference:     exact,
		EnergyTol:     core.ChemicalAccuracy,
		Workers:       cfg.Workers,
	})
	if err != nil {
		return nil, 0, err
	}
	return res, exact, nil
}

// QPEConfig tunes GroundStateQPE.
type QPEConfig struct {
	AncillaQubits int     // default 7
	Time          float64 // default auto
	TrotterSteps  int     // default 4
}

// QPEResult re-exports the QPE outcome.
type QPEResult = qpe.Result

// GroundStateQPE estimates the ground energy by quantum phase estimation
// with a Hartree–Fock input state.
func GroundStateQPE(m *Molecule, cfg QPEConfig) (*QPEResult, error) {
	h := Hamiltonian(m)
	n := m.NumSpinOrbitals()
	if cfg.AncillaQubits == 0 {
		cfg.AncillaQubits = 7
	}
	if cfg.TrotterSteps == 0 {
		cfg.TrotterSteps = 4
	}
	prep := qpe.HartreeFockPrep(n, m.NumElectrons)
	return qpe.Estimate(h, prep, n, qpe.Options{
		AncillaQubits: cfg.AncillaQubits,
		Time:          cfg.Time,
		TrotterSteps:  cfg.TrotterSteps,
	})
}

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// Simulate runs a circuit and returns the final state.
func Simulate(c *Circuit, workers int) *State {
	s := state.New(c.NumQubits, state.Options{Workers: workers})
	s.Run(c)
	return s
}

// Fuse applies the paper's gate-fusion pass (§4.3) with the given maximum
// block width (1 or 2).
func Fuse(c *Circuit, width int) *Circuit { return circuit.Fuse(c, width) }

// Expectation evaluates ⟨ψ|H|ψ⟩ directly from the state amplitudes
// (paper §4.2).
func Expectation(s *State, h *Observable) float64 {
	return pauli.Expectation(s, h, pauli.ExpectationOptions{})
}

// UCCSDAnsatz builds the UCCSD ansatz for a molecule.
func UCCSDAnsatz(m *Molecule) (*UCCSD, error) {
	return ansatz.NewUCCSD(m.NumSpinOrbitals(), m.NumElectrons)
}

// CachingGateCost reports the Figure 3 gate-count comparison for one VQE
// energy evaluation on the given molecule.
func CachingGateCost(m *Molecule) (nonCaching, caching uint64, err error) {
	h := Hamiltonian(m)
	u, err := UCCSDAnsatz(m)
	if err != nil {
		return 0, 0, err
	}
	gc := vqe.CostModel(h, u.Circuit(make([]float64, u.NumParameters())).GateCount())
	return gc.NonCachingTotal, gc.CachingTotal, nil
}

// TaperedHamiltonian builds the qubit observable and removes every
// Z₂-symmetry qubit in the Hartree–Fock sector (H2: 4 → 1 qubit). The
// returned width is the reduced register size.
func TaperedHamiltonian(m *Molecule) (*Observable, int, error) {
	res, err := chem.TaperedHamiltonian(m)
	if err != nil {
		return nil, 0, err
	}
	return res.Tapered, res.NumQubits, nil
}

// HamiltonianBK maps a molecule to qubits with the Bravyi–Kitaev encoding
// instead of Jordan–Wigner (same spectrum, lower Pauli weights).
func HamiltonianBK(m *Molecule) (*Observable, error) {
	enc, err := fermion.BravyiKitaevEncoding(m.NumSpinOrbitals())
	if err != nil {
		return nil, err
	}
	q, err := enc.Transform(chem.FermionicHamiltonian(m))
	if err != nil {
		return nil, err
	}
	return q.HermitianPart(), nil
}

// H2AtDistance builds H2/STO-3G at an arbitrary bond length (Ångström)
// from analytic Gaussian integrals.
func H2AtDistance(r float64) (*Molecule, error) { return chem.H2AtDistance(r) }

// NoisyExpectation estimates ⟨obs⟩ for a circuit under stochastic
// depolarizing noise (p1/p2 per 1q/2q gate) by trajectory averaging.
func NoisyExpectation(c *Circuit, obs *Observable, p1, p2 float64, trajectories int) (mean, stderr float64, err error) {
	res, err := noise.Expectation(c, obs, noise.Model{P1: p1, P2: p2},
		noise.Options{Trajectories: trajectories})
	if err != nil {
		return 0, 0, err
	}
	return res.Mean, res.StdErr, nil
}
