GO ?= go

# Packages exercising the concurrency-sensitive paths (worker pool, batched
# expectation, VQE drivers) — the race target runs these under -race.
RACE_PKGS = ./internal/state/... ./internal/pauli/... ./internal/vqe/...

.PHONY: all build test vet race bench figures check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench BenchmarkBatchedExpectation -benchtime 1x -run ^$$ .

figures:
	$(GO) run ./cmd/benchfigs -fig all -fast

check: build vet test race
