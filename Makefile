GO ?= go

# staticcheck is fetched on demand so the repo keeps zero dependencies; the
# version is pinned so local and CI lint agree.
STATICCHECK_VERSION = 2025.1

# govulncheck is pinned for the same reason; it needs network access, so
# the vuln target degrades to a warning when offline (hard failure in CI).
GOVULNCHECK_VERSION = v1.1.4

# Coverage floor for the telemetry package (CI enforces the same number).
TELEMETRY_COVER_MIN = 60

.PHONY: all build test vet vqelint lint-baseline lint vuln race bench bench-smoke chaos chaos-tests vqed-chaos vqed-smoke load-smoke sweep-smoke cover figures check ci

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# vqelint runs the repo's own analyzer suite (internal/analysis) twice:
# through the go vet driver (so _test.go files are checked too) and
# standalone against the committed baseline, which also reports stale
# //vqelint:ignore directives. Self-contained: builds from this module,
# no network needed.
vqelint:
	$(GO) build -o bin/vqelint ./cmd/vqelint
	$(GO) vet -vettool=$$(pwd)/bin/vqelint ./...
	./bin/vqelint -baseline lint_baseline.json -unused-ignores ./...

# lint-baseline regenerates lint_baseline.json from the current findings.
# Use it when a PR deliberately accepts a pre-existing finding; new code
# should fix or //vqelint:ignore instead of growing the baseline.
lint-baseline:
	$(GO) build -o bin/vqelint ./cmd/vqelint
	./bin/vqelint -update-baseline ./...

# lint runs go vet, the vqelint suite, and staticcheck. Fetching
# staticcheck needs network access; without it (air-gapped dev boxes) the
# target degrades to a warning locally but stays a hard failure in CI.
lint: vet vqelint
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; then \
		echo "staticcheck: ok"; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck failed" >&2; exit 1; \
	else \
		echo "staticcheck unavailable or failed (offline?) — skipping locally" >&2; \
	fi

# vuln scans the module against the Go vulnerability database. Needs
# network access; degrades to a warning offline, hard failure in CI.
vuln:
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; then \
		echo "govulncheck: ok"; \
	elif [ -n "$$CI" ]; then \
		echo "govulncheck failed" >&2; exit 1; \
	else \
		echo "govulncheck unavailable or failed (offline?) — skipping locally" >&2; \
	fi

# race runs the whole module under the race detector, then re-runs the
# load harness uncached: its closed/open-loop tests are the heaviest
# goroutine churn in the repo and must never ride a stale test cache.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/load/...

# chaos covers both resilience layers: the in-process fault/crash-resume
# test suite (chaos-tests) and the kill-the-daemon recovery drill
# (vqed-chaos). CI runs them as separate jobs; locally `make chaos` is
# the whole story.
chaos: chaos-tests vqed-chaos

# chaos-tests is the resilience smoke: the fault drills (seeded injectors
# behind every cluster transfer), the crash/resume equivalence properties,
# and the watchdog recovery paths, all under the race detector with a
# tight deadline so a hung retry loop fails fast instead of stalling CI.
chaos-tests:
	$(GO) test -race -timeout 5m \
		-run 'FaultDrill|Watchdog|CrashResume|Fallback|Walltime|Deadline|Checkpoint|StatsRace' \
		./internal/cluster/ ./internal/resilience/ ./internal/vqe/ ./internal/xacc/

# vqed-chaos is the kill-the-daemon drill: vqeload drives closed-loop load
# with worker panics/stalls injected while the script SIGKILLs and
# restarts vqed three times on the same spool and port. The gate requires
# zero lost jobs, zero duplicate ids, and energies bit-equal to
# uninterrupted control runs — i.e. the write-ahead journal actually
# makes the daemon crash-safe. Writes chaos_report.json + journal.wal.
vqed-chaos:
	$(GO) build -o bin/vqed ./cmd/vqed
	$(GO) build -o bin/vqeload ./cmd/vqeload
	VQED_BIN=bin/vqed VQELOAD_BIN=bin/vqeload sh scripts/vqed_chaos.sh

# vqed-smoke exercises the job daemon end to end over real HTTP: submit
# H2, poll to done, assert the FCI energy, hit the result cache with a
# duplicate spec, and SIGTERM into a clean drain — all race-instrumented.
vqed-smoke:
	$(GO) build -race -o bin/vqed ./cmd/vqed
	VQED_BIN=bin/vqed sh scripts/vqed_smoke.sh

# load-smoke is the serving latency gate: boot vqed on a free port, drive
# it with a closed-loop vqeload run over the smoke mix, and fail the build
# if end-to-end p99 exceeds LOAD_FAIL_P99 (2s) or SLO attainment drops
# below LOAD_MIN_SLO (0.95). Writes load_report.json.
load-smoke:
	$(GO) build -o bin/vqed ./cmd/vqed
	$(GO) build -o bin/vqeload ./cmd/vqeload
	VQED_BIN=bin/vqed VQELOAD_BIN=bin/vqeload sh scripts/vqeload_smoke.sh

# sweep-smoke is the sweep-family durability gate: submit a dense H2 bond
# scan to /v1/sweeps, watch it with `vqeload sweep -assert-order` (done
# points must always form a prefix of the value-ascending execution
# order), SIGKILL the daemon mid-curve, restart it on the same spool, and
# require the family to resume with zero lost or duplicated points.
# Writes the final curve to sweep_curve.json.
sweep-smoke:
	$(GO) build -o bin/vqed ./cmd/vqed
	$(GO) build -o bin/vqeload ./cmd/vqeload
	VQED_BIN=bin/vqed VQELOAD_BIN=bin/vqeload sh scripts/vqed_sweep_smoke.sh

bench:
	$(GO) test -bench BenchmarkBatchedExpectation -benchtime 1x -run ^$$ .

# bench-smoke is the CI performance gate: the batched expectation engine
# must stay at least 2x faster than per-term sweeps, runtime gate fusion
# must stay at least 1.3x faster than gate-at-a-time execution on the
# deep-ansatz benchmark, and the telemetry overhead benchmark must run
# clean. Writes run_report.json.
bench-smoke: bench
	$(GO) test -bench BenchmarkTelemetryOverhead -benchtime 1x -run ^$$ .
	$(GO) run ./cmd/benchfigs -fig expect -fast -metrics -fail-below 2
	$(GO) run ./cmd/benchfigs -fig fusion -fast -metrics -fail-below-fusion 1.3

# cover reports total coverage and enforces the telemetry floor.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@pct=$$($(GO) test -cover ./internal/telemetry/ | awk '{for (i=1;i<=NF;i++) if ($$i=="coverage:") {sub(/%$$/,"",$$(i+1)); print $$(i+1)}}'); \
	echo "internal/telemetry coverage: $$pct%"; \
	awk -v p="$$pct" -v min=$(TELEMETRY_COVER_MIN) 'BEGIN { exit !(p+0 >= min) }' || \
		{ echo "internal/telemetry coverage $$pct% below $(TELEMETRY_COVER_MIN)%" >&2; exit 1; }

figures:
	$(GO) run ./cmd/benchfigs -fig all -fast

check: build vet test race bench figures

# ci mirrors the GitHub Actions workflow jobs (test, lint, vqelint, vuln,
# coverage, bench-smoke, chaos-smoke, chaos-recovery, vqed-smoke,
# load-smoke, sweep-smoke) so `make ci` locally means green CI.
ci: build lint vuln test race cover bench-smoke chaos vqed-smoke load-smoke sweep-smoke
