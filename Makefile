GO ?= go

# Packages exercising the concurrency-sensitive paths (worker pool, batched
# expectation, VQE drivers, telemetry instruments shared across workers) —
# the race target runs these under -race.
RACE_PKGS = ./internal/state/... ./internal/pauli/... ./internal/vqe/... ./internal/telemetry/...

# staticcheck is fetched on demand so the repo keeps zero dependencies; the
# version is pinned so local and CI lint agree.
STATICCHECK_VERSION = 2025.1

# Coverage floor for the telemetry package (CI enforces the same number).
TELEMETRY_COVER_MIN = 60

.PHONY: all build test vet lint race bench bench-smoke cover figures check ci

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus staticcheck. Fetching staticcheck needs network
# access; without it (air-gapped dev boxes) the target degrades to a
# warning locally but stays a hard failure in CI.
lint: vet
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; then \
		echo "staticcheck: ok"; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck failed" >&2; exit 1; \
	else \
		echo "staticcheck unavailable or failed (offline?) — skipping locally" >&2; \
	fi

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench BenchmarkBatchedExpectation -benchtime 1x -run ^$$ .

# bench-smoke is the CI performance gate: the batched expectation engine
# must stay at least 2x faster than per-term sweeps, and the telemetry
# overhead benchmark must run clean. Writes run_report.json.
bench-smoke: bench
	$(GO) test -bench BenchmarkTelemetryOverhead -benchtime 1x -run ^$$ .
	$(GO) run ./cmd/benchfigs -fig expect -fast -metrics -fail-below 2

# cover reports total coverage and enforces the telemetry floor.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@pct=$$($(GO) test -cover ./internal/telemetry/ | awk '{for (i=1;i<=NF;i++) if ($$i=="coverage:") {sub(/%$$/,"",$$(i+1)); print $$(i+1)}}'); \
	echo "internal/telemetry coverage: $$pct%"; \
	awk -v p="$$pct" -v min=$(TELEMETRY_COVER_MIN) 'BEGIN { exit !(p+0 >= min) }' || \
		{ echo "internal/telemetry coverage $$pct% below $(TELEMETRY_COVER_MIN)%" >&2; exit 1; }

figures:
	$(GO) run ./cmd/benchfigs -fig all -fast

check: build vet test race bench figures

# ci mirrors the GitHub Actions workflow jobs (test, lint, coverage,
# bench-smoke) so `make ci` locally means green CI.
ci: build lint test race cover bench-smoke
