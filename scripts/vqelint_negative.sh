#!/bin/sh
# Negative test of the vqelint gate: inject a package with an unpaired
# mutex Lock and assert the lockdiscipline analyzer fails the build with
# exit code 2 (findings). Guards against the gate silently going soft —
# a misloaded baseline or a broken analyzer would otherwise let real
# findings through while CI stays green.
#
# Usage: VQELINT_BIN=bin/vqelint sh scripts/vqelint_negative.sh
set -eu

VQELINT_BIN=${VQELINT_BIN:-bin/vqelint}
FIXTURE_DIR=ci_negative_fixture

if [ ! -x "$VQELINT_BIN" ]; then
    echo "vqelint_negative: $VQELINT_BIN not built" >&2
    exit 1
fi

cleanup() { rm -rf "$FIXTURE_DIR"; }
trap cleanup EXIT INT TERM

mkdir -p "$FIXTURE_DIR"
cat > "$FIXTURE_DIR/fixture.go" <<'EOF'
// Package fixture is an injected vqelint negative-gate fixture: the Lock
// below is not released on the early-return path, which lockdiscipline
// must report. This package only exists for the duration of the check.
package fixture

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump(limit int) int {
	b.mu.Lock()
	if b.n >= limit {
		return b.n // leaks b.mu
	}
	b.n++
	b.mu.Unlock()
	return b.n
}
EOF

# The fixture must not be matched by the committed baseline either, so
# run with it, exactly as the gate does.
status=0
"$VQELINT_BIN" -baseline lint_baseline.json -only lockdiscipline "./$FIXTURE_DIR/" || status=$?

if [ "$status" -ne 2 ]; then
    echo "vqelint_negative: expected exit 2 on unpaired Lock, got $status" >&2
    exit 1
fi
echo "vqelint_negative: gate correctly fails the injected unpaired-Lock fixture"
