#!/bin/sh
# vqed_chaos.sh — the kill-the-daemon drill and CI durability gate: boot
# vqed with fault injection armed (worker panics + stalls via VQED_FAULTS),
# drive it with `vqeload chaos` closed-loop load, and SIGKILL + restart the
# daemon on the same spool/port CHAOS_KILLS times mid-window. The drill
# gate then requires zero lost jobs (every acked submission answers its
# poll after recovery), zero duplicate job ids, at least CHAOS_KILLS
# observed restarts, and energies bit-equal to uninterrupted in-process
# control runs of the same specs. Writes chaos_report.json and preserves
# the write-ahead journal as journal.wal (CI uploads both as artifacts).
set -eu

VQED_BIN=${VQED_BIN:-bin/vqed}
VQELOAD_BIN=${VQELOAD_BIN:-bin/vqeload}
KILLS=${CHAOS_KILLS:-3}
KILL_GAP=${CHAOS_KILL_GAP:-5}
DURATION=${CHAOS_DURATION:-25s}
CONCURRENCY=${CHAOS_CONCURRENCY:-3}
SETTLE=${CHAOS_SETTLE:-3m}
FAULTS=${CHAOS_FAULTS:-seed=7,panic=0.05,stall=0.03,stall_ms=500,max=6}
REPORT=${CHAOS_REPORT:-chaos_report.json}
JOURNAL_COPY=${CHAOS_JOURNAL:-journal.wal}

. "$(dirname "$0")/daemon_lib.sh"
LOAD_PID=

cleanup_all() {
    if [ -n "$LOAD_PID" ]; then
        kill "$LOAD_PID" 2>/dev/null || true
        wait "$LOAD_PID" 2>/dev/null || true
    fi
    cleanup_vqed
}
trap cleanup_all EXIT INT TERM HUP

# Tight stall timeout so injected 500ms stalls trip the watchdog quickly;
# retries absorb the injected panics.
DAEMON_FLAGS="-jobs 2 -retries 2 -stall-timeout 2s"

export VQED_FAULTS="$FAULTS"
# shellcheck disable=SC2086 # DAEMON_FLAGS is a flag list, splitting intended
start_vqed $DAEMON_FLAGS
echo "vqed up at $VQED_BASE (faults: $FAULTS)"
ADDR=${VQED_BASE#http://}

# reboot_vqed restarts the daemon on the SAME address and spool — that is
# the whole point: clients keep polling the base URL they already hold,
# and recovery must come from the journal in the spool, not fresh state.
reboot_vqed() {
    try=0
    while :; do
        "$VQED_BIN" -addr "$ADDR" -spool "$VQED_SPOOL" $DAEMON_FLAGS >>"$VQED_LOG" 2>&1 &
        VQED_PID=$!
        i=0
        until curl -fsS "$VQED_BASE/healthz" >/dev/null 2>&1; do
            if ! kill -0 "$VQED_PID" 2>/dev/null; then
                # bind race against the killed listener's socket — retry
                VQED_PID=
                break
            fi
            i=$((i + 1))
            [ "$i" -ge 100 ] && fail_with_log "restarted vqed never answered /healthz"
            sleep 0.2
        done
        [ -n "$VQED_PID" ] && return 0
        try=$((try + 1))
        [ "$try" -ge 5 ] && fail_with_log "vqed kept dying on restart"
        sleep 0.5
    done
}

"$VQELOAD_BIN" chaos -addr "$VQED_BASE" \
    -duration "$DURATION" -concurrency "$CONCURRENCY" -mix smoke \
    -settle-timeout "$SETTLE" -expect-restarts "$KILLS" -out "$REPORT" &
LOAD_PID=$!

n=0
while [ "$n" -lt "$KILLS" ]; do
    sleep "$KILL_GAP"
    n=$((n + 1))
    echo "chaos: SIGKILL cycle $n/$KILLS (pid $VQED_PID)"
    kill -KILL "$VQED_PID" 2>/dev/null || fail_with_log "vqed already dead before kill $n"
    wait "$VQED_PID" 2>/dev/null || true
    # Stay down long enough for the drill's health prober to witness the
    # outage (it counts down->up transitions against -expect-restarts).
    sleep 0.5
    reboot_vqed
    echo "chaos: vqed back up (pid $VQED_PID)"
done

rc=0
wait "$LOAD_PID" || rc=$?
LOAD_PID=

# Preserve the journal before cleanup removes the spool: it is the primary
# artifact for debugging a red gate (every accepted/running/retrying/done
# transition the daemon survived is in there).
if [ -f "$VQED_SPOOL/journal.wal" ]; then
    cp "$VQED_SPOOL/journal.wal" "$JOURNAL_COPY"
else
    echo "chaos: journal.wal missing from spool $VQED_SPOOL" >&2
    rc=1
fi

stop_vqed

if [ "$rc" -ne 0 ]; then
    fail_with_log "chaos drill failed (exit $rc; report: $REPORT)"
fi
echo "vqed chaos: ok ($KILLS SIGKILL cycles survived; report: $REPORT, journal: $JOURNAL_COPY)"
