#!/bin/sh
# vqed end-to-end smoke: start the daemon (race-instrumented) on a free
# port, submit an H2 job over HTTP, poll it to completion, check the
# energy against the known FCI value, prove the content-addressed cache
# answers a duplicate spec, then SIGTERM and require a clean drain. No jq
# dependency — the assertions are plain grep over the JSON.
set -eu

BIN=${VQED_BIN:-bin/vqed}
VQED_BIN=$BIN

. "$(dirname "$0")/daemon_lib.sh"
trap cleanup_vqed EXIT INT TERM HUP

start_vqed -jobs 2
BASE=$VQED_BASE

submit() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"molecule": {"kind": "h2"}}' "$BASE/v1/jobs"
}

first=$(submit)
id=$(printf '%s' "$first" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "no job id in response: $first" >&2; exit 1; }

# Poll to a terminal state.
i=0
while :; do
    view=$(curl -fsS "$BASE/v1/jobs/$id")
    case "$view" in
    *'"status": "done"'*) break ;;
    *'"status": "failed"'* | *'"status": "interrupted"'*)
        echo "job settled badly: $view" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "job did not finish: $view" >&2
        exit 1
    fi
    sleep 0.2
done

# H2/STO-3G ground state is -1.13727 Ha; the digits are part of the check.
result=$(curl -fsS "$BASE/v1/jobs/$id/result")
case "$result" in
*'"energy": -1.1372'*) echo "energy ok" ;;
*)
    echo "H2 energy wrong: $result" >&2
    exit 1
    ;;
esac

# The identical spec must be served from the result cache.
dup=$(submit)
case "$dup" in
*'"cache_hit": true'*) echo "cache hit ok" ;;
*)
    echo "duplicate spec missed the cache: $dup" >&2
    exit 1
    ;;
esac

# Graceful drain: SIGTERM must exit 0 and report a clean drain.
stop_vqed
echo "vqed smoke: ok"
