# daemon_lib.sh — shared helpers for the smoke scripts. Sourced, not
# executed; callers must `set -eu` and point VQED_BIN at a vqed binary.
#
# start_vqed [daemon flags...]
#   Boots vqed on a kernel-assigned free port (no hardcoded port to
#   collide with parallel CI jobs or a developer's own daemon), discovers
#   the address from the "serving on" log line, and waits for /healthz.
#   Fails fast — with the daemon's log tail — if the process dies or the
#   port never appears. Sets VQED_PID, VQED_BASE, VQED_LOG, VQED_SPOOL.
#
# stop_vqed
#   SIGTERMs the daemon and requires a clean drain (exit 0 plus the
#   "drained cleanly" log line).
#
# cleanup_vqed
#   Idempotent teardown for traps: kills the daemon if still up, removes
#   the spool and log.

VQED_PID=
VQED_BASE=
VQED_LOG=
VQED_SPOOL=

cleanup_vqed() {
    trap - EXIT INT TERM HUP
    if [ -n "$VQED_PID" ]; then
        kill "$VQED_PID" 2>/dev/null || true
        wait "$VQED_PID" 2>/dev/null || true
    fi
    [ -n "$VQED_SPOOL" ] && rm -rf "$VQED_SPOOL"
    [ -n "$VQED_LOG" ] && rm -f "$VQED_LOG"
}

fail_with_log() {
    echo "$1; vqed log tail:" >&2
    [ -n "$VQED_LOG" ] && tail -30 "$VQED_LOG" >&2
    exit 1
}

start_vqed() {
    VQED_SPOOL=$(mktemp -d)
    VQED_LOG=$(mktemp)
    "$VQED_BIN" -addr "${VQED_ADDR:-127.0.0.1:0}" -spool "$VQED_SPOOL" "$@" >"$VQED_LOG" 2>&1 &
    VQED_PID=$!

    # The daemon logs "serving on HOST:PORT" once the listener is bound;
    # with port 0 that line is the only way to learn the port.
    addr=
    i=0
    while [ -z "$addr" ]; do
        kill -0 "$VQED_PID" 2>/dev/null || fail_with_log "vqed exited during startup"
        addr=$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$VQED_LOG" | head -1)
        [ -n "$addr" ] && break
        i=$((i + 1))
        [ "$i" -ge 100 ] && fail_with_log "vqed did not log its address within 20s"
        sleep 0.2
    done
    VQED_BASE="http://$addr"

    i=0
    until curl -fsS "$VQED_BASE/healthz" >/dev/null 2>&1; do
        kill -0 "$VQED_PID" 2>/dev/null || fail_with_log "vqed exited before answering /healthz"
        i=$((i + 1))
        [ "$i" -ge 100 ] && fail_with_log "vqed bound $addr but /healthz never answered"
        sleep 0.2
    done
}

stop_vqed() {
    kill -TERM "$VQED_PID"
    rc=0
    wait "$VQED_PID" || rc=$?
    pid_done=$VQED_PID
    VQED_PID=
    if [ "$rc" -ne 0 ]; then
        VQED_PID=$pid_done
        fail_with_log "vqed exited $rc on SIGTERM"
    fi
    grep -q 'drained cleanly' "$VQED_LOG" || fail_with_log "missing clean-drain message"
}
