#!/bin/sh
# vqed_sweep_smoke.sh — the sweep-family durability gate: boot vqed with a
# single worker, POST a dense H2 bond-scan family to /v1/sweeps, attach a
# `vqeload sweep` observer that continuously asserts monotone completion
# (the done set must always be a prefix of the value-ascending execution
# order), then SIGKILL the daemon mid-curve and restart it on the same
# address and spool. The gate requires the family to survive the crash
# (no 404 after restart), resume with only the unfinished points re-run,
# and settle with every point done exactly once. Writes the final family
# view — the full dissociation curve — to sweep_curve.json (CI uploads it
# as an artifact).
set -eu

VQED_BIN=${VQED_BIN:-bin/vqed}
VQELOAD_BIN=${VQELOAD_BIN:-bin/vqeload}
CURVE_OUT=${SWEEP_CURVE:-sweep_curve.json}
# Nelder–Mead with a generous budget keeps each point slow enough
# (~tens of ms) that the SIGKILL reliably lands mid-curve.
SWEEP_SPEC='{"base":{"molecule":{"kind":"h2"},"optimizer":{"method":"nelder-mead","max_iter":400}},"axis":{"param":"distance","start":0.4,"stop":2.0,"step":0.01}}'
POINTS=161
KILL_AFTER=${SWEEP_KILL_AFTER:-15}

. "$(dirname "$0")/daemon_lib.sh"
LOAD_PID=

cleanup_all() {
    if [ -n "$LOAD_PID" ]; then
        kill "$LOAD_PID" 2>/dev/null || true
        wait "$LOAD_PID" 2>/dev/null || true
    fi
    cleanup_vqed
}
trap cleanup_all EXIT INT TERM HUP

# One worker: the family must make progress strictly in axis order for the
# observer's prefix assertion to be airtight.
DAEMON_FLAGS="-jobs 1"
# shellcheck disable=SC2086 # DAEMON_FLAGS is a flag list, splitting intended
start_vqed $DAEMON_FLAGS
echo "vqed up at $VQED_BASE"
ADDR=${VQED_BASE#http://}

# done_count reads the family's aggregate done counter from the listing
# view (which elides the per-point detail, keeping the parse trivial).
done_count() {
    curl -fsS "$VQED_BASE/v1/sweeps" 2>/dev/null |
        sed -n 's/.*"done": *\([0-9]*\).*/\1/p' | head -1
}

resp=$(curl -fsS -X POST -d "$SWEEP_SPEC" "$VQED_BASE/v1/sweeps") ||
    fail_with_log "sweep submission failed"
SWEEP_ID=$(printf '%s' "$resp" | sed -n 's/.*"id": *"\(sweep-[0-9]*\)".*/\1/p' | head -1)
[ -n "$SWEEP_ID" ] || fail_with_log "no sweep id in response: $resp"
echo "sweep $SWEEP_ID accepted ($POINTS points)"

# The observer polls the family to terminal, asserting the prefix-order
# invariant on every observation and tolerating the restart window.
"$VQELOAD_BIN" sweep -addr "$VQED_BASE" -attach "$SWEEP_ID" \
    -assert-order -poll 100ms -tolerate 60s -timeout 5m -out "$CURVE_OUT" &
LOAD_PID=$!

# Wait until the curve is demonstrably mid-flight, then SIGKILL.
i=0
while :; do
    d=$(done_count || true)
    [ -n "$d" ] && [ "$d" -ge "$KILL_AFTER" ] && break
    [ -n "$d" ] && [ "$d" -ge "$POINTS" ] &&
        fail_with_log "family finished before the kill could land (done=$d)"
    i=$((i + 1))
    [ "$i" -ge 600 ] && fail_with_log "family never reached $KILL_AFTER done points"
    sleep 0.1
done
D_KILL=$d
echo "sweep smoke: SIGKILL at $D_KILL/$POINTS points done (pid $VQED_PID)"
kill -KILL "$VQED_PID" 2>/dev/null || fail_with_log "vqed already dead before the kill"
wait "$VQED_PID" 2>/dev/null || true
sleep 0.5

# Restart on the SAME address and spool; recovery must come from the
# journal. A bind race against the dead listener's socket is retried.
try=0
while :; do
    # shellcheck disable=SC2086
    "$VQED_BIN" -addr "$ADDR" -spool "$VQED_SPOOL" $DAEMON_FLAGS >>"$VQED_LOG" 2>&1 &
    VQED_PID=$!
    j=0
    until curl -fsS "$VQED_BASE/healthz" >/dev/null 2>&1; do
        if ! kill -0 "$VQED_PID" 2>/dev/null; then
            VQED_PID=
            break
        fi
        j=$((j + 1))
        [ "$j" -ge 100 ] && fail_with_log "restarted vqed never answered /healthz"
        sleep 0.2
    done
    [ -n "$VQED_PID" ] && break
    try=$((try + 1))
    [ "$try" -ge 5 ] && fail_with_log "vqed kept dying on restart"
    sleep 0.5
done
echo "sweep smoke: vqed back up (pid $VQED_PID)"

# The journal must have replayed the family with no finished point lost.
curl -fsS "$VQED_BASE/v1/sweeps/$SWEEP_ID" >/dev/null 2>&1 ||
    fail_with_log "sweep $SWEEP_ID lost across the restart"
D_REPLAY=$(done_count || true)
[ -n "$D_REPLAY" ] || fail_with_log "no done count after restart"
[ "$D_REPLAY" -ge "$D_KILL" ] ||
    fail_with_log "restart lost points: $D_KILL done before kill, $D_REPLAY after replay"
echo "sweep smoke: replay restored $D_REPLAY done points (>= $D_KILL at kill)"

# The observer gates the rest: monotone completion throughout, zero lost
# or duplicated points, terminal status done.
rc=0
wait "$LOAD_PID" || rc=$?
LOAD_PID=
[ "$rc" -eq 0 ] || fail_with_log "sweep observer failed (exit $rc)"

grep -c '"status": "done"' "$CURVE_OUT" >/dev/null ||
    fail_with_log "no curve written to $CURVE_OUT"

stop_vqed
echo "vqed sweep smoke: ok (killed at $D_KILL/$POINTS, resumed to completion; curve: $CURVE_OUT)"
