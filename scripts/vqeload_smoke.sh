#!/bin/sh
# vqeload end-to-end smoke and the CI latency gate: boot vqed on a free
# port, drive it with a closed-loop vqeload run over the smoke mix, gate
# on end-to-end p99 and SLO attainment, and require a clean drain. Writes
# load_report.json (CI uploads it as an artifact) and appends the
# markdown latency table to $GITHUB_STEP_SUMMARY when set.
set -eu

VQED_BIN=${VQED_BIN:-bin/vqed}
VQELOAD_BIN=${VQELOAD_BIN:-bin/vqeload}
DURATION=${LOAD_DURATION:-30s}
CONCURRENCY=${LOAD_CONCURRENCY:-4}
FAIL_P99=${LOAD_FAIL_P99:-2s}
MIN_SLO=${LOAD_MIN_SLO:-0.95}
REPORT=${LOAD_REPORT:-load_report.json}

. "$(dirname "$0")/daemon_lib.sh"
trap cleanup_vqed EXIT INT TERM HUP

start_vqed -jobs "$CONCURRENCY"
echo "vqed up at $VQED_BASE"

"$VQELOAD_BIN" run -addr "$VQED_BASE" \
    -mode closed -concurrency "$CONCURRENCY" -duration "$DURATION" \
    -mix smoke -slo 5s -report "$REPORT" \
    -fail-p99 "$FAIL_P99" -min-slo "$MIN_SLO"

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    "$VQELOAD_BIN" report -in "$REPORT" -md >>"$GITHUB_STEP_SUMMARY"
fi

stop_vqed
echo "vqeload smoke: ok (report: $REPORT)"
