// Package pauli implements Pauli-string algebra and Pauli-sum operators
// (quantum observables): multiplication, commutators, qubit-wise-commuting
// grouping, measurement-basis rotation circuits, and expectation values —
// both the sampling estimator and the paper's direct deterministic
// calculation (§4.2).
//
// A Pauli string over up to 64 qubits is stored in the symplectic
// representation P(x,z) = i^{|x∧z|} · XˣZᶻ so that (x,z) bits map to
// I/X/Z/Y per qubit and every string is Hermitian.
package pauli

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/core"
)

// String is a single Pauli string (tensor product of I, X, Y, Z) on up to
// 64 qubits. Bit q of X/Z describes qubit q: (0,0)=I, (1,0)=X, (0,1)=Z,
// (1,1)=Y.
type String struct {
	X, Z uint64
}

// Identity is the empty Pauli string.
var Identity = String{}

// Single returns a one-qubit Pauli on the given qubit. p must be one of
// 'I','X','Y','Z'.
func Single(p byte, q int) (String, error) {
	if q < 0 || q > 63 {
		return String{}, core.QubitError(q, 64)
	}
	switch p {
	case 'I':
		return String{}, nil
	case 'X':
		return String{X: 1 << uint(q)}, nil
	case 'Y':
		return String{X: 1 << uint(q), Z: 1 << uint(q)}, nil
	case 'Z':
		return String{Z: 1 << uint(q)}, nil
	}
	return String{}, fmt.Errorf("%w: pauli letter %q", core.ErrInvalidArgument, p)
}

// Parse reads a label such as "XIZY": character i names the Pauli on
// qubit i (leftmost character = qubit 0).
func Parse(label string) (String, error) {
	var s String
	if len(label) > 64 {
		return s, fmt.Errorf("%w: label longer than 64", core.ErrInvalidArgument)
	}
	for i := 0; i < len(label); i++ {
		p, err := Single(label[i], i)
		if err != nil {
			return String{}, err
		}
		s.X |= p.X
		s.Z |= p.Z
	}
	return s, nil
}

// MustParse is Parse that panics on error (for literals in tests/tables).
func MustParse(label string) String {
	s, err := Parse(label)
	if err != nil {
		panic(fmt.Errorf("pauli: parsing %q: %w", label, err))
	}
	return s
}

// At returns the Pauli letter on qubit q.
func (s String) At(q int) byte {
	x := s.X>>uint(q)&1 == 1
	z := s.Z>>uint(q)&1 == 1
	switch {
	case x && z:
		return 'Y'
	case x:
		return 'X'
	case z:
		return 'Z'
	}
	return 'I'
}

// Label renders the string over n qubits ("XIZY" style).
func (s String) Label(n int) string {
	var b strings.Builder
	for q := 0; q < n; q++ {
		b.WriteByte(s.At(q))
	}
	return b.String()
}

// Compact renders only the non-identity letters with qubit indices,
// e.g. "X0 Z2".
func (s String) Compact() string {
	if s.IsIdentity() {
		return "I"
	}
	var parts []string
	m := s.X | s.Z
	for m != 0 {
		q := bits.TrailingZeros64(m)
		parts = append(parts, fmt.Sprintf("%c%d", s.At(q), q))
		m &= m - 1
	}
	return strings.Join(parts, " ")
}

// IsIdentity reports whether every qubit carries I.
func (s String) IsIdentity() bool { return s.X == 0 && s.Z == 0 }

// Weight returns the number of non-identity qubits.
func (s String) Weight() int { return bits.OnesCount64(s.X | s.Z) }

// Support returns the qubits the string acts on, ascending.
func (s String) Support() []int {
	var out []int
	m := s.X | s.Z
	for m != 0 {
		out = append(out, bits.TrailingZeros64(m))
		m &= m - 1
	}
	return out
}

// MaxQubit returns the highest qubit index touched, or -1 for identity.
func (s String) MaxQubit() int {
	m := s.X | s.Z
	if m == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(m)
}

// Commutes reports whether two strings commute globally. Strings commute
// iff they anticommute on an even number of qubits; the symplectic form
// ⟨a,b⟩ = |a.X∧b.Z| + |a.Z∧b.X| mod 2 decides it.
func (s String) Commutes(o String) bool {
	return (bits.OnesCount64(s.X&o.Z)+bits.OnesCount64(s.Z&o.X))%2 == 0
}

// QubitwiseCommutes reports whether the strings agree (or one is I) on
// every qubit — the grouping criterion for shared measurement bases.
func (s String) QubitwiseCommutes(o String) bool {
	both := (s.X | s.Z) & (o.X | o.Z)
	// On jointly supported qubits the letters must be equal.
	return (s.X^o.X)&both == 0 && (s.Z^o.Z)&both == 0
}

// phaseExp returns k for phases i^k, k ∈ {0,1,2,3}.
func phaseI(k int) complex128 {
	switch ((k % 4) + 4) % 4 {
	case 0:
		return 1
	case 1:
		return 1i
	case 2:
		return -1
	default:
		return -1i
	}
}

// Mul returns the product s·o = phase · r with r canonical.
func (s String) Mul(o String) (r String, phase complex128) {
	r = String{X: s.X ^ o.X, Z: s.Z ^ o.Z}
	// s = i^{p1} X^{x1}Z^{z1}, o = i^{p2} X^{x2}Z^{z2};
	// Z^{z1}X^{x2} = (-1)^{|z1∧x2|} X^{x2}Z^{z1}.
	p1 := bits.OnesCount64(s.X & s.Z)
	p2 := bits.OnesCount64(o.X & o.Z)
	p3 := bits.OnesCount64(r.X & r.Z)
	k := p1 + p2 - p3
	sign := bits.OnesCount64(s.Z&o.X) % 2
	k += 2 * sign
	return r, phaseI(k)
}

// ApplyToBasis computes P|i⟩ = phase·|j⟩ for a computational basis state:
// j = i XOR X-mask, phase = i^{|x∧z|}·(−1)^{|i∧z|}.
func (s String) ApplyToBasis(i uint64) (j uint64, phase complex128) {
	j = i ^ s.X
	k := bits.OnesCount64(s.X & s.Z)
	k += 2 * (bits.OnesCount64(i&s.Z) % 2)
	return j, phaseI(k)
}

// Less imposes a deterministic total order (for canonical printing).
func (s String) Less(o String) bool {
	if s.X != o.X {
		return s.X < o.X
	}
	return s.Z < o.Z
}
