package pauli

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
)

func TestOpAddMerges(t *testing.T) {
	op := NewOp()
	op.Add(MustParse("XZ"), 0.5)
	op.Add(MustParse("XZ"), 0.25)
	if op.NumTerms() != 1 || op.Coeff(MustParse("XZ")) != 0.75 {
		t.Error("add did not merge")
	}
	op.Add(MustParse("XZ"), -0.75)
	if op.NumTerms() != 0 {
		t.Error("cancelled term not removed")
	}
}

func TestOpMulMatchesDense(t *testing.T) {
	a := NewOp().Add(MustParse("XI"), 0.5).Add(MustParse("ZZ"), -0.3)
	b := NewOp().Add(MustParse("IY"), 1.2).Add(MustParse("XX"), 0.7)
	got := a.Mul(b).ToDense(2)
	want := a.ToDense(2).Mul(b.ToDense(2))
	if !got.Equal(want, 1e-12) {
		t.Error("operator product wrong")
	}
}

func TestCommutatorMatchesDense(t *testing.T) {
	a := NewOp().Add(MustParse("XY"), 0.4).Add(MustParse("ZI"), 1.0)
	b := NewOp().Add(MustParse("YX"), -0.8).Add(MustParse("IZ"), 0.2)
	got := a.Commutator(b).ToDense(2)
	da, db := a.ToDense(2), b.ToDense(2)
	want := da.Mul(db).Sub(db.Mul(da))
	if !got.Equal(want, 1e-12) {
		t.Error("commutator wrong")
	}
}

func TestCommutatorOfCommutingOpsIsZero(t *testing.T) {
	a := NewOp().Add(MustParse("ZI"), 1).Add(MustParse("IZ"), 1)
	b := NewOp().Add(MustParse("ZZ"), 2)
	if c := a.Commutator(b); c.NumTerms() != 0 {
		t.Errorf("[diag,diag] = %v", c)
	}
}

func TestScalarAndScale(t *testing.T) {
	op := Scalar(3)
	op.Scale(2)
	if op.Coeff(Identity) != 6 {
		t.Error("scale wrong")
	}
	op.Scale(0)
	if op.NumTerms() != 0 {
		t.Error("scale by zero should empty")
	}
}

func TestHermitian(t *testing.T) {
	op := NewOp().Add(MustParse("XY"), 0.5)
	if !op.IsHermitian(1e-12) {
		t.Error("real coeffs should be Hermitian")
	}
	op.Add(MustParse("ZZ"), 1i)
	if op.IsHermitian(1e-12) {
		t.Error("imag coeff accepted as Hermitian")
	}
	h := op.HermitianPart()
	if h.NumTerms() != 1 || h.Coeff(MustParse("XY")) != 0.5 {
		t.Errorf("hermitian part: %v", h)
	}
}

func TestToSparseHermitianAndEigen(t *testing.T) {
	// H = Z0 Z1 + 0.5 X0: check matrix is Hermitian and spectrum sensible.
	op := NewOp().Add(MustParse("ZZ"), 1).Add(MustParse("XI"), 0.5)
	d := op.ToDense(2)
	if !d.IsHermitian(1e-12) {
		t.Fatal("matrix not Hermitian")
	}
	res, err := linalg.EighJacobi(d)
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues of ZZ+0.5·X⊗I: ±sqrt(1+0.25) = ±1.118… each twice.
	want := math.Sqrt(1.25)
	if math.Abs(res.Values[0]+want) > 1e-10 || math.Abs(res.Values[3]-want) > 1e-10 {
		t.Errorf("spectrum %v", res.Values)
	}
}

func TestMatVecMatchesSparse(t *testing.T) {
	op := NewOp().
		Add(MustParse("XYZ"), 0.7).
		Add(MustParse("ZII"), -0.2).
		Add(MustParse("IYX"), 0.4+0.1i)
	n := 3
	src := make([]complex128, 8)
	rng := core.NewRNG(5)
	for i := range src {
		src[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dst := make([]complex128, 8)
	op.MatVec(dst, src)
	want := op.ToSparse(n).MulVec(src)
	for i := range dst {
		if !core.AlmostEqualC(dst[i], want[i], 1e-10) {
			t.Fatalf("index %d: %v vs %v", i, dst[i], want[i])
		}
	}
}

func TestOneNormChopEqual(t *testing.T) {
	op := NewOp().Add(MustParse("X"), 3).Add(MustParse("Z"), -4i)
	if math.Abs(op.OneNorm()-7) > 1e-12 {
		t.Error("one-norm")
	}
	op.Add(MustParse("Y"), 1e-9)
	op.Chop(1e-6)
	if op.NumTerms() != 2 {
		t.Error("chop")
	}
	if !op.Equal(op.Clone(), 1e-12) {
		t.Error("clone should be equal")
	}
	other := op.Clone().Add(MustParse("X"), 0.1)
	if op.Equal(other, 1e-12) {
		t.Error("different ops equal")
	}
}

func TestOpString(t *testing.T) {
	op := NewOp().Add(MustParse("XI"), 0.5)
	if op.String() != "0.5·X0" {
		t.Errorf("String() = %q", op.String())
	}
	if NewOp().String() != "0" {
		t.Error("zero op string")
	}
}

func TestOpMatVecInterface(t *testing.T) {
	op := NewOp().Add(MustParse("Z"), -1)
	mv := OpMatVec{Op: op, N: 1}
	e, _, err := linalg.LanczosGround(mv, linalg.LanczosOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e+1) > 1e-9 {
		t.Errorf("ground of -Z: %v", e)
	}
}

func TestFromTerms(t *testing.T) {
	op := FromTerms([]Term{
		{Coeff: 1, P: MustParse("X")},
		{Coeff: 2, P: MustParse("X")},
	})
	if op.Coeff(MustParse("X")) != 3 {
		t.Error("FromTerms didn't merge")
	}
}
