package pauli

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Text serialization for observables, one term per line:
//
//	# H2 Hamiltonian (4 qubits)
//	-0.81054798 IIII
//	 0.17218393 ZIII
//	 (0.5+0.25i) XYZI
//
// The label's character i names the Pauli on qubit i. Blank lines and
// '#' comments are ignored. This is the interchange format of the CLI
// tools (`cmd/vqe -hamiltonian file`).

// WriteOp serializes the operator over n qubits in canonical term order.
func WriteOp(w io.Writer, op *Op, n int) error {
	if op.MaxQubit() >= n {
		return core.QubitError(op.MaxQubit(), n)
	}
	bw := bufio.NewWriter(w)
	for _, t := range op.Terms() {
		var coeff string
		if imag(t.Coeff) == 0 {
			coeff = strconv.FormatFloat(real(t.Coeff), 'g', 17, 64)
		} else {
			im := strconv.FormatFloat(imag(t.Coeff), 'g', 17, 64)
			if imag(t.Coeff) >= 0 {
				im = "+" + im
			}
			coeff = fmt.Sprintf("(%s%si)", strconv.FormatFloat(real(t.Coeff), 'g', 17, 64), im)
		}
		if _, err := fmt.Fprintf(bw, "%s %s\n", coeff, t.P.Label(n)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// OpToString serializes to a string.
func OpToString(op *Op, n int) string {
	var sb strings.Builder
	_ = WriteOp(&sb, op, n)
	return sb.String()
}

// ReadOp parses the text format; n is inferred as the longest label length.
func ReadOp(r io.Reader) (*Op, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	op := NewOp()
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, 0, fmt.Errorf("pauli: line %d: want \"coeff label\", got %q", lineNo, line)
		}
		coeff, err := parseCoeff(fields[0])
		if err != nil {
			return nil, 0, fmt.Errorf("pauli: line %d: %v", lineNo, err)
		}
		p, err := Parse(fields[1])
		if err != nil {
			return nil, 0, fmt.Errorf("pauli: line %d: %v", lineNo, err)
		}
		if len(fields[1]) > n {
			n = len(fields[1])
		}
		op.Add(p, coeff)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, fmt.Errorf("pauli: %w: empty operator file", core.ErrInvalidArgument)
	}
	return op, n, nil
}

// ReadOpString parses from a string.
func ReadOpString(src string) (*Op, int, error) {
	return ReadOp(strings.NewReader(src))
}

// parseCoeff accepts "1.5", "-2e-3", or "(a+bi)".
func parseCoeff(s string) (complex128, error) {
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, "i)") {
		inner := s[1 : len(s)-2] // "a+b" with sign on b
		// Find the split sign after the mantissa (skip a leading sign and
		// exponent signs).
		split := -1
		for i := 1; i < len(inner); i++ {
			if (inner[i] == '+' || inner[i] == '-') && inner[i-1] != 'e' && inner[i-1] != 'E' {
				split = i
			}
		}
		if split < 0 {
			return 0, fmt.Errorf("bad complex literal %q", s)
		}
		re, err1 := strconv.ParseFloat(inner[:split], 64)
		im, err2 := strconv.ParseFloat(inner[split:], 64)
		if err1 != nil || err2 != nil {
			return 0, fmt.Errorf("bad complex literal %q", s)
		}
		return complex(re, im), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad coefficient %q", s)
	}
	return complex(v, 0), nil
}
