package pauli

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/linalg"
)

// Term is one weighted Pauli string of an observable.
type Term struct {
	Coeff complex128
	P     String
}

// Op is a Pauli-sum operator (observable / Hamiltonian): a linear
// combination of Pauli strings stored in a canonical map. The zero value
// is the zero operator and is ready to use.
type Op struct {
	terms map[String]complex128
}

// NewOp returns an empty operator.
func NewOp() *Op { return &Op{terms: map[String]complex128{}} }

// FromTerms builds an operator from a term list (duplicates are summed).
func FromTerms(ts []Term) *Op {
	op := NewOp()
	for _, t := range ts {
		op.Add(t.P, t.Coeff)
	}
	return op
}

// Scalar returns c·I as an operator.
func Scalar(c complex128) *Op {
	op := NewOp()
	op.Add(Identity, c)
	return op
}

// Add accumulates coeff·P into the operator.
func (op *Op) Add(p String, coeff complex128) *Op {
	if op.terms == nil {
		op.terms = map[String]complex128{}
	}
	v := op.terms[p] + coeff
	if cmplx.Abs(v) <= core.CoeffEps {
		delete(op.terms, p)
	} else {
		op.terms[p] = v
	}
	return op
}

// AddOp accumulates c·o into op.
func (op *Op) AddOp(o *Op, c complex128) *Op {
	for p, v := range o.terms {
		op.Add(p, c*v)
	}
	return op
}

// Coeff returns the coefficient of string p (zero if absent).
func (op *Op) Coeff(p String) complex128 { return op.terms[p] }

// NumTerms returns the number of stored Pauli strings — the quantity in
// the paper's Figure 1b.
func (op *Op) NumTerms() int { return len(op.terms) }

// Terms returns the term list sorted canonically.
func (op *Op) Terms() []Term {
	out := make([]Term, 0, len(op.terms))
	for p, c := range op.terms {
		out = append(out, Term{Coeff: c, P: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P.Less(out[j].P) })
	return out
}

// Clone deep-copies the operator.
func (op *Op) Clone() *Op {
	out := NewOp()
	for p, c := range op.terms {
		out.terms[p] = c
	}
	return out
}

// Scale multiplies every coefficient by c in place and returns op.
func (op *Op) Scale(c complex128) *Op {
	if c == 0 {
		op.terms = map[String]complex128{}
		return op
	}
	for p := range op.terms {
		op.terms[p] *= c
	}
	return op
}

// Mul returns the operator product op·o (term-by-term with phase
// tracking). Cost is O(|op|·|o| + sort). Distinct factor pairs can
// produce the same product string, so accumulation must run in canonical
// term order — map iteration would make the summation order (and the
// low-order bits of colliding coefficients) vary between runs, breaking
// the engine's equal-spec ⇒ equal-result guarantee.
func (op *Op) Mul(o *Op) *Op {
	out := NewOp()
	for _, t1 := range op.Terms() {
		for _, t2 := range o.Terms() {
			r, ph := t1.P.Mul(t2.P)
			out.Add(r, t1.Coeff*t2.Coeff*ph)
		}
	}
	return out
}

// Commutator returns [op, o] = op·o − o·op.
func (op *Op) Commutator(o *Op) *Op {
	out := op.Mul(o)
	out.AddOp(o.Mul(op), -1)
	return out
}

// MaxQubit returns the highest qubit index used, or -1 for a scalar.
func (op *Op) MaxQubit() int {
	mx := -1
	for p := range op.terms {
		if q := p.MaxQubit(); q > mx {
			mx = q
		}
	}
	return mx
}

// IsHermitian reports whether the operator is Hermitian — every Pauli
// string is Hermitian, so this holds iff all coefficients are real.
func (op *Op) IsHermitian(tol float64) bool {
	for _, c := range op.terms {
		if math.Abs(imag(c)) > tol {
			return false
		}
	}
	return true
}

// HermitianPart returns (op + op†)/2 — for Pauli sums that simply drops
// the imaginary part of each coefficient.
func (op *Op) HermitianPart() *Op {
	out := NewOp()
	for p, c := range op.terms {
		if r := real(c); math.Abs(r) > core.CoeffEps {
			out.terms[p] = complex(r, 0)
		}
	}
	return out
}

// Chop removes terms with |coeff| ≤ tol in place and returns op.
func (op *Op) Chop(tol float64) *Op {
	for p, c := range op.terms {
		if cmplx.Abs(c) <= tol {
			delete(op.terms, p)
		}
	}
	return op
}

// OneNorm returns Σ|coeff| (identity included).
func (op *Op) OneNorm() float64 {
	s := 0.0
	for _, c := range op.terms {
		s += cmplx.Abs(c)
	}
	return s
}

// Equal reports coefficient-wise equality within tol.
func (op *Op) Equal(o *Op, tol float64) bool {
	for p, c := range op.terms {
		if !core.AlmostEqualC(c, o.terms[p], tol) {
			return false
		}
	}
	for p, c := range o.terms {
		if _, ok := op.terms[p]; !ok && cmplx.Abs(c) > tol {
			return false
		}
	}
	return true
}

// String renders the operator compactly, canonical term order.
func (op *Op) String() string {
	ts := op.Terms()
	if len(ts) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, t := range ts {
		if i > 0 {
			b.WriteString(" + ")
		}
		if imag(t.Coeff) == 0 {
			fmt.Fprintf(&b, "%g", real(t.Coeff))
		} else {
			fmt.Fprintf(&b, "(%g%+gi)", real(t.Coeff), imag(t.Coeff))
		}
		b.WriteString("·")
		b.WriteString(t.P.Compact())
	}
	return b.String()
}

// ToSparse materializes the operator as a CSR matrix on n qubits, used to
// cross-check simulated expectation values against exact linear algebra.
func (op *Op) ToSparse(n int) *linalg.Sparse {
	dim := core.Dim(n)
	b := linalg.NewSparseBuilder(dim)
	for p, c := range op.terms {
		if p.MaxQubit() >= n {
			panic(core.QubitError(p.MaxQubit(), n))
		}
		for i := uint64(0); i < uint64(dim); i++ {
			j, ph := p.ApplyToBasis(i)
			// Column i contributes to row j: H|i⟩ = Σ ph·|j⟩.
			b.Add(int(j), int(i), c*ph)
		}
	}
	return b.Build()
}

// ToDense materializes the operator densely (small n only).
func (op *Op) ToDense(n int) *linalg.Matrix {
	return op.ToSparse(n).Dense()
}

// MatVec applies the operator to a state vector without materializing a
// matrix: O(terms · 2ⁿ). src and dst must have length 2ⁿ.
// Different strings can route amplitude into the same dst element, so the
// term loop runs in canonical order for run-to-run bit stability.
func (op *Op) MatVec(dst, src []complex128) {
	for i := range dst {
		dst[i] = 0
	}
	for _, t := range op.Terms() {
		for i := uint64(0); i < uint64(len(src)); i++ {
			if src[i] == 0 {
				continue
			}
			j, ph := t.P.ApplyToBasis(i)
			dst[j] += t.Coeff * ph * src[i]
		}
	}
}

// OpMatVec adapts an Op to linalg.MatVecer for Lanczos.
type OpMatVec struct {
	Op *Op
	N  int
}

// Dim implements linalg.MatVecer.
func (m OpMatVec) Dim() int { return core.Dim(m.N) }

// Apply implements linalg.MatVecer.
func (m OpMatVec) Apply(dst, src []complex128) { m.Op.MatVec(dst, src) }
