package pauli

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/kernel/tuning"
	"repro/internal/state"
)

// randomState prepares a pseudo-random 4-qubit state.
func randomState(seed uint64) *state.State {
	rng := core.NewRNG(seed)
	c := circuit.New(4)
	for i := 0; i < 20; i++ {
		switch rng.Intn(5) {
		case 0:
			c.H(rng.Intn(4))
		case 1:
			c.RX(rng.Float64()*3, rng.Intn(4))
		case 2:
			c.RZ(rng.Float64()*3, rng.Intn(4))
		case 3:
			c.RY(rng.Float64()*3, rng.Intn(4))
		case 4:
			a, b := rng.Intn(4), rng.Intn(4)
			for b == a {
				b = rng.Intn(4)
			}
			c.CX(a, b)
		}
	}
	s := state.New(4, state.Options{Seed: seed + 1})
	s.Run(c)
	return s
}

func testHamiltonian() *Op {
	return NewOp().
		Add(Identity, -0.8).
		Add(MustParse("ZZII"), 0.17).
		Add(MustParse("XXII"), 0.12).
		Add(MustParse("IYYI"), -0.23).
		Add(MustParse("ZIZI"), 0.35).
		Add(MustParse("IXXY"), 0.05)
}

// denseExpectation computes ⟨ψ|H|ψ⟩ via the explicit matrix.
func denseExpectation(s *state.State, op *Op) float64 {
	amps := s.AmplitudesCopy()
	hv := op.ToSparse(s.NumQubits()).MulVec(amps)
	var acc complex128
	for i := range amps {
		acc += complex(real(amps[i]), -imag(amps[i])) * hv[i]
	}
	return real(acc)
}

func TestExpectationMatchesDense(t *testing.T) {
	op := testHamiltonian()
	for seed := uint64(1); seed <= 8; seed++ {
		s := randomState(seed)
		got := Expectation(s, op, ExpectationOptions{})
		want := denseExpectation(s, op)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: direct %v vs dense %v", seed, got, want)
		}
	}
}

func TestExpectationParallelMatchesSerial(t *testing.T) {
	op := testHamiltonian()
	s := randomState(3)
	serial := Expectation(s, op, ExpectationOptions{Workers: 1})
	par := Expectation(s, op, ExpectationOptions{Workers: 4})
	if math.Abs(serial-par) > 1e-10 {
		t.Errorf("parallel %v vs serial %v", par, serial)
	}
}

func TestExpectationStringKnownValues(t *testing.T) {
	// ⟨0|Z|0⟩ = 1, ⟨+|X|+⟩ = 1, ⟨0|X|0⟩ = 0.
	s := state.New(1, state.Options{})
	if e := ExpectationString(s, MustParse("Z")); !core.AlmostEqualC(e, 1, 1e-12) {
		t.Errorf("⟨0|Z|0⟩ = %v", e)
	}
	if e := ExpectationString(s, MustParse("X")); !core.AlmostEqualC(e, 0, 1e-12) {
		t.Errorf("⟨0|X|0⟩ = %v", e)
	}
	s.Run(circuit.New(1).H(0))
	if e := ExpectationString(s, MustParse("X")); !core.AlmostEqualC(e, 1, 1e-12) {
		t.Errorf("⟨+|X|+⟩ = %v", e)
	}
}

func TestExpectationYBasis(t *testing.T) {
	// |y+⟩ = S·H|0⟩ has ⟨Y⟩ = +1.
	s := state.New(1, state.Options{})
	s.Run(circuit.New(1).H(0).S(0))
	if e := ExpectationString(s, MustParse("Y")); !core.AlmostEqualC(e, 1, 1e-12) {
		t.Errorf("⟨y+|Y|y+⟩ = %v", e)
	}
}

func TestBasisRotationDiagonalizes(t *testing.T) {
	// For any string P and state ψ: ⟨ψ|P|ψ⟩ equals the Z-parity
	// expectation of the rotated state — validating the H / S†H rules of
	// paper §4.1.2.
	for _, lbl := range []string{"XIII", "IYII", "XYZI", "YYXZ"} {
		p := MustParse(lbl)
		for seed := uint64(11); seed <= 13; seed++ {
			s := randomState(seed)
			want := real(ExpectationString(s, p))
			rot := s.Clone()
			rot.Run(BasisRotation(p, 4))
			zOnly := String{Z: p.X | p.Z}
			got := real(ExpectationString(rot, zOnly))
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s seed %d: rotated %v vs direct %v", lbl, seed, got, want)
			}
		}
	}
}

func TestExpectationViaRotationMatchesDirect(t *testing.T) {
	op := testHamiltonian()
	for seed := uint64(21); seed <= 24; seed++ {
		s := randomState(seed)
		direct := Expectation(s, op, ExpectationOptions{})
		rotated := ExpectationViaRotation(s, op, 4)
		if math.Abs(direct-rotated) > 1e-9 {
			t.Errorf("seed %d: rotation route %v vs direct %v", seed, rotated, direct)
		}
	}
}

func TestExpectationSampledConverges(t *testing.T) {
	op := testHamiltonian()
	s := randomState(5)
	exact := Expectation(s, op, ExpectationOptions{})
	est := ExpectationSampled(s, op, 4, 60000)
	if math.Abs(est-exact) > 0.03 {
		t.Errorf("sampled %v vs exact %v", est, exact)
	}
}

func TestGroupQWCCoversAllTerms(t *testing.T) {
	op := testHamiltonian()
	groups := GroupQWC(op, 4)
	seen := 0
	for _, g := range groups {
		seen += len(g.Terms)
		// All members must pairwise qubit-wise commute.
		for i := range g.Terms {
			for j := i + 1; j < len(g.Terms); j++ {
				if !g.Terms[i].P.QubitwiseCommutes(g.Terms[j].P) {
					t.Errorf("group contains non-QWC pair %s, %s",
						g.Terms[i].P.Compact(), g.Terms[j].P.Compact())
				}
			}
		}
	}
	if seen != op.NumTerms() {
		t.Errorf("groups cover %d of %d terms", seen, op.NumTerms())
	}
	if len(groups) >= op.NumTerms() {
		t.Errorf("grouping achieved no reduction: %d groups for %d terms", len(groups), op.NumTerms())
	}
}

func TestVarianceVanishesOnEigenstate(t *testing.T) {
	// |00⟩ is an eigenstate of Z0 Z1.
	op := NewOp().Add(MustParse("ZZ"), 1.5)
	s := state.New(2, state.Options{})
	if v := Variance(s, op, ExpectationOptions{}); math.Abs(v) > 1e-10 {
		t.Errorf("variance on eigenstate: %v", v)
	}
	// |+0⟩ is not.
	s.Run(circuit.New(2).H(0))
	if v := Variance(s, op, ExpectationOptions{}); v < 0.1 {
		t.Errorf("variance should be positive: %v", v)
	}
}

func TestExpectationWidthGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for operator wider than state")
		}
	}()
	s := state.New(1, state.Options{})
	Expectation(s, NewOp().Add(MustParse("IZ"), 1), ExpectationOptions{})
}

// TestGroupPlanMatchesRotatedSweep pins the basis-change fusion
// equivalence: summing every QWC group's batched plan on the raw state
// (plus the identity coefficient) must equal the rotate-then-read
// evaluation to 1e-12.
func TestGroupPlanMatchesRotatedSweep(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		s := randomState(seed)
		h := testHamiltonian()
		want := ExpectationViaRotation(s, h, 4)
		got := real(h.Coeff(Identity))
		for _, mb := range GroupQWC(h, 4) {
			got += mb.Plan().Evaluate(s, ExpectationOptions{Workers: 1})
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("seed %d: group plans %.15f != rotated %.15f", seed, got, want)
		}
	}
}

// TestNewPlanFromTermsMatchesNewPlan: the term-list constructor must
// agree with the Op constructor on the same observable.
func TestNewPlanFromTermsMatchesNewPlan(t *testing.T) {
	s := randomState(11)
	h := testHamiltonian()
	a := NewPlan(h).Evaluate(s, ExpectationOptions{Workers: 1})
	b := NewPlanFromTerms(h.Terms()).Evaluate(s, ExpectationOptions{Workers: 1})
	if math.Abs(a-b) > 1e-13 {
		t.Fatalf("NewPlanFromTerms %.15f != NewPlan %.15f", b, a)
	}
}

// TestExpectationStrategyChoice: the calibrated NaiveMaxTerms threshold
// must steer Expectation without changing its value.
func TestExpectationStrategyChoice(t *testing.T) {
	defer tuning.Reset()
	s := randomState(3)
	h := testHamiltonian()
	want := denseExpectation(s, h)

	tt := tuning.Defaults()
	tt.NaiveMaxTerms = 0 // always batched
	tuning.Install(tt, "test")
	if got := Expectation(s, h, ExpectationOptions{Workers: 1}); math.Abs(got-want) > 1e-10 {
		t.Fatalf("batched choice: %v want %v", got, want)
	}
	tt.NaiveMaxTerms = 1 << 20 // always naive
	tuning.Install(tt, "test")
	if got := Expectation(s, h, ExpectationOptions{Workers: 1}); math.Abs(got-want) > 1e-10 {
		t.Fatalf("naive choice: %v want %v", got, want)
	}
}
