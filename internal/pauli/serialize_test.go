package pauli

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestWriteReadRoundTrip(t *testing.T) {
	op := NewOp().
		Add(Identity, -0.8105).
		Add(MustParse("ZIII"), 0.1721).
		Add(MustParse("XYZI"), 0.5+0.25i).
		Add(MustParse("IIXX"), -3e-7)
	text := OpToString(op, 4)
	back, n, err := ReadOpString(text)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("inferred width %d", n)
	}
	if !back.Equal(op, 1e-15) {
		t.Errorf("round trip changed operator:\n%s", text)
	}
}

func TestReadOpCommentsAndBlanks(t *testing.T) {
	src := `
# header comment
0.5 ZZ

# another
-0.25 XX
`
	op, n, err := ReadOpString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || op.NumTerms() != 2 {
		t.Errorf("n=%d terms=%d", n, op.NumTerms())
	}
}

func TestReadOpErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad fields":  "0.5\n",
		"bad coeff":   "abc ZZ\n",
		"bad label":   "0.5 ZQ\n",
		"bad complex": "(1+2j) ZZ\n",
	}
	for name, src := range cases {
		if _, _, err := ReadOpString(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestWriteOpWidthGuard(t *testing.T) {
	op := NewOp().Add(MustParse("IIZ"), 1)
	if err := WriteOp(&strings.Builder{}, op, 2); err == nil {
		t.Error("narrow width accepted")
	}
}

func TestParseCoeffForms(t *testing.T) {
	cases := map[string]complex128{
		"1.5":          1.5,
		"-2e-3":        -0.002,
		"(1+2i)":       1 + 2i,
		"(-0.5-0.25i)": -0.5 - 0.25i,
		"(1e-3+2e-4i)": complex(1e-3, 2e-4),
	}
	for s, want := range cases {
		got, err := parseCoeff(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if !core.AlmostEqualC(got, want, 1e-15) {
			t.Errorf("%q = %v, want %v", s, got, want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(x1, z1, x2, z2 uint8, cr, ci int16) bool {
		op := NewOp().
			Add(String{X: uint64(x1 & 15), Z: uint64(z1 & 15)}, complex(float64(cr)/100, float64(ci)/100)).
			Add(String{X: uint64(x2 & 15), Z: uint64(z2 & 15)}, 0.5)
		if op.NumTerms() == 0 {
			return true
		}
		back, _, err := ReadOpString(OpToString(op, 4))
		return err == nil && back.Equal(op, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
