package pauli

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

// xxz returns an XXZ-type test Hamiltonian with a global Z-parity
// symmetry.
func xxz(n int) *Op {
	h := NewOp()
	for i := 0; i+1 < n; i++ {
		h.Add(String{X: 3 << uint(i)}, 0.5)
		h.Add(String{X: 3 << uint(i), Z: 3 << uint(i)}, 0.5) // YY
		h.Add(String{Z: 3 << uint(i)}, 0.3)
	}
	for i := 0; i < n; i++ {
		h.Add(String{Z: 1 << uint(i)}, -0.2)
	}
	return h
}

func TestFindZSymmetriesXXZ(t *testing.T) {
	// XX+YY terms flip pairs of spins: total Z-parity Z⊗…⊗Z commutes.
	n := 4
	syms := FindZSymmetries(xxz(n), n)
	if len(syms) == 0 {
		t.Fatal("no symmetries found")
	}
	// Every returned string must commute with every Hamiltonian term.
	for _, s := range syms {
		for _, term := range xxz(n).Terms() {
			if !s.Commutes(term.P) {
				t.Fatalf("claimed symmetry %s does not commute with %s", s.Compact(), term.P.Compact())
			}
		}
	}
}

func TestFindZSymmetriesCountsH2(t *testing.T) {
	h := h2Hamiltonian()
	syms := FindZSymmetries(h, 4)
	// H2 under JW has 3 independent Z-type symmetries (α-parity, β-parity,
	// and a Z0Z1-type pair symmetry), allowing 4 → 1 qubit tapering.
	if len(syms) != 3 {
		t.Fatalf("found %d symmetries, want 3: %v", len(syms), syms)
	}
	for _, s := range syms {
		for _, term := range h.Terms() {
			if !s.Commutes(term.P) {
				t.Fatalf("%s fails to commute", s.Compact())
			}
		}
	}
}

// h2Hamiltonian is the H2/STO-3G qubit Hamiltonian with literature
// coefficients (independent of the chem package to avoid an import
// cycle in tests).
func h2Hamiltonian() *Op {
	// Standard JW form (qubit order: spin orbitals 0α,0β,1α,1β).
	h := NewOp()
	h.Add(Identity, -0.81054798)
	h.Add(MustParse("ZIII"), 0.17218393)
	h.Add(MustParse("IZII"), 0.17218393)
	h.Add(MustParse("IIZI"), -0.22575349)
	h.Add(MustParse("IIIZ"), -0.22575349)
	h.Add(MustParse("ZZII"), 0.12091263)
	h.Add(MustParse("IIZZ"), 0.12091263)
	h.Add(MustParse("ZIZI"), 0.16892754)
	h.Add(MustParse("IZIZ"), 0.16892754)
	h.Add(MustParse("ZIIZ"), 0.16614543)
	h.Add(MustParse("IZZI"), 0.16614543)
	h.Add(MustParse("XXYY"), -0.04523280)
	h.Add(MustParse("YYXX"), -0.04523280)
	h.Add(MustParse("XYYX"), 0.04523280)
	h.Add(MustParse("YXXY"), 0.04523280)
	return h
}

func groundOf(t *testing.T, op *Op, n int) float64 {
	t.Helper()
	res, err := linalg.EighJacobi(op.ToDense(n))
	if err != nil {
		t.Fatal(err)
	}
	return res.Values[0]
}

func TestTaperH2To1Qubit(t *testing.T) {
	h := h2Hamiltonian()
	full := groundOf(t, h, 4)
	syms := FindZSymmetries(h, 4)
	res, e, err := TaperAllSectors(h, 4, syms)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQubits != 1 {
		t.Fatalf("tapered to %d qubits, want 1", res.NumQubits)
	}
	if math.Abs(e-full) > 1e-9 {
		t.Errorf("tapered ground %v vs full %v", e, full)
	}
}

func TestTaperPreservesSpectrumSector(t *testing.T) {
	// Every eigenvalue of the tapered operator (for every sector) must be
	// an eigenvalue of the full operator — tapering block-diagonalizes.
	h := xxz(4)
	fullRes, err := linalg.EighJacobi(h.ToDense(4))
	if err != nil {
		t.Fatal(err)
	}
	syms := FindZSymmetries(h, 4)
	if len(syms) == 0 {
		t.Skip("no symmetries")
	}
	canon, _, err := CanonicalZGenerators(syms)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 1<<uint(len(canon)); mask++ {
		sector := make([]int, len(canon))
		for i := range sector {
			sector[i] = 1
			if mask>>uint(i)&1 == 1 {
				sector[i] = -1
			}
		}
		res, err := Taper(h, 4, canon, sector)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := linalg.EighJacobi(res.Tapered.ToDense(res.NumQubits))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range sub.Values {
			found := false
			for _, fv := range fullRes.Values {
				if math.Abs(ev-fv) < 1e-8 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("sector %v: eigenvalue %v not in the full spectrum", sector, ev)
			}
		}
	}
}

func TestTaperSectorDimensionsAddUp(t *testing.T) {
	// Σ over sectors of 2^{n−k} = 2ⁿ: tapering partitions the space.
	h := h2Hamiltonian()
	syms := FindZSymmetries(h, 4)
	canon, _, _ := CanonicalZGenerators(syms)
	total := 0
	for mask := 0; mask < 1<<uint(len(canon)); mask++ {
		sector := make([]int, len(canon))
		for i := range sector {
			sector[i] = 1
			if mask>>uint(i)&1 == 1 {
				sector[i] = -1
			}
		}
		res, err := Taper(h, 4, canon, sector)
		if err != nil {
			t.Fatal(err)
		}
		total += 1 << uint(res.NumQubits)
	}
	if total != 16 {
		t.Errorf("sector dimensions sum to %d, want 16", total)
	}
}

func TestSectorFromDeterminantPicksGround(t *testing.T) {
	// The HF determinant |0011⟩ (qubits 0,1 occupied) lies in the ground
	// sector of H2; using its symmetry eigenvalues must reproduce the full
	// ground energy without sector scanning.
	h := h2Hamiltonian()
	full := groundOf(t, h, 4)
	syms := FindZSymmetries(h, 4)
	canon, _, err := CanonicalZGenerators(syms)
	if err != nil {
		t.Fatal(err)
	}
	sector := SectorFromDeterminant(canon, 0b0011)
	res, err := Taper(h, 4, canon, sector)
	if err != nil {
		t.Fatal(err)
	}
	if e := groundOf(t, res.Tapered, res.NumQubits); math.Abs(e-full) > 1e-9 {
		t.Errorf("HF-sector tapered ground %v vs full %v", e, full)
	}
}

func TestConjugateByCliffordPreservesSpectrum(t *testing.T) {
	// U H U is a similarity transform: spectra match exactly.
	h := xxz(3)
	tau := String{Z: 0b111}
	rotated := conjugateByClifford(h, tau, 0)
	a, err := linalg.EighJacobi(h.ToDense(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := linalg.EighJacobi(rotated.ToDense(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if math.Abs(a.Values[i]-b.Values[i]) > 1e-9 {
			t.Fatalf("eigenvalue %d: %v vs %v", i, a.Values[i], b.Values[i])
		}
	}
}

func TestConjugateByCliffordMatchesDense(t *testing.T) {
	// Direct check of U P U against dense matrices for U = (X₀ + Z₀Z₁)/√2.
	tau := String{Z: 0b11}
	xq := String{X: 1}
	n := 2
	u := NewOp().Add(xq, complex(1/math.Sqrt2, 0)).Add(tau, complex(1/math.Sqrt2, 0)).ToDense(n)
	for _, lbl := range []string{"XI", "IZ", "ZI", "YY", "ZZ", "XX", "YX"} {
		p := MustParse(lbl)
		got := conjugateByClifford(NewOp().Add(p, 1), tau, 0).ToDense(n)
		pd := NewOp().Add(p, 1).ToDense(n)
		want := u.Mul(pd).Mul(u)
		if !got.Equal(want, 1e-10) {
			t.Errorf("%s: Clifford conjugation wrong", lbl)
		}
	}
}

func TestTaperValidation(t *testing.T) {
	h := xxz(4)
	syms := FindZSymmetries(h, 4)
	if _, err := Taper(h, 4, syms, []int{1}); err == nil && len(syms) != 1 {
		t.Error("sector length mismatch accepted")
	}
	if len(syms) > 0 {
		bad := make([]int, len(syms))
		bad[0] = 2
		for i := 1; i < len(bad); i++ {
			bad[i] = 1
		}
		if _, err := Taper(h, 4, syms, bad); err == nil {
			t.Error("sector value 2 accepted")
		}
	}
	xSym := []String{{X: 1}}
	if _, err := Taper(h, 4, xSym, []int{1}); err == nil {
		t.Error("non-Z generator accepted")
	}
	if _, _, err := TaperAllSectors(h, 4, nil); err == nil {
		t.Error("empty generator list accepted")
	}
}

func TestCompressBits(t *testing.T) {
	// Remove bits 1 and 3 from 0b11011: surviving positions {0,2,4} carry
	// values 1,0,1 → 0b101.
	if got := compressBits(0b11011&^0b01010, 0b01010); got != 0b101 {
		t.Errorf("compress = %b", got)
	}
	if compressBits(0, 0b10) != 0 {
		t.Error("zero case")
	}
}
