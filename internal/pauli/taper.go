package pauli

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/linalg"
)

// This file implements Z₂-symmetry qubit tapering (Bravyi–Gambetta–
// Mezzacapo–Temme): find Z-type Pauli strings that commute with every term
// of a Hamiltonian, rotate each onto a single-qubit X with the Clifford
// U = (X_q + τ)/√2, substitute its ±1 sector eigenvalue, and drop the
// qubit. Molecular Hamiltonians always carry at least the two spin-parity
// symmetries, so tapering composes with downfolding to shrink the register
// further — H2 famously reduces from 4 qubits to 1.

// FindZSymmetries returns a basis (over GF(2)) of Z-type Pauli strings
// commuting with every term of op, excluding the identity. A Z-string
// Z^{g} commutes with a term (x,z) iff |g ∧ x| is even, so the basis is
// the nullspace of the terms' X-mask matrix.
func FindZSymmetries(op *Op, n int) []String {
	if n <= 0 || n > 63 {
		panic(core.ErrInvalidArgument)
	}
	// Collect distinct X-masks (rows of the constraint system).
	rowSet := map[uint64]bool{}
	for p := range op.terms {
		if p.X != 0 {
			rowSet[p.X] = true
		}
	}
	rows := make([]uint64, 0, len(rowSet))
	for r := range rowSet {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] > rows[j] })

	// Gaussian elimination to row-echelon form; track pivot columns.
	pivots := map[int]uint64{} // column → row value
	for _, r := range rows {
		for r != 0 {
			col := bits.TrailingZeros64(r)
			if pv, ok := pivots[col]; ok {
				r ^= pv
				continue
			}
			pivots[col] = r
			break
		}
	}
	// Free columns give nullspace basis vectors.
	var out []String
	for col := 0; col < n; col++ {
		if _, isPivot := pivots[col]; isPivot {
			continue
		}
		// Back-substitute: g has 1 at the free column; for every pivot row
		// with a 1 in this column, set the pivot bit to restore r·g = 0.
		g := uint64(1) << uint(col)
		// Iterate pivot columns descending so later assignments don't
		// disturb earlier parity checks.
		cols := make([]int, 0, len(pivots))
		for c := range pivots {
			cols = append(cols, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(cols)))
		for _, c := range cols {
			if bits.OnesCount64(pivots[c]&g)%2 == 1 {
				g ^= 1 << uint(c)
			}
		}
		out = append(out, String{Z: g})
	}
	// Deterministic order.
	sort.Slice(out, func(i, j int) bool { return out[i].Z < out[j].Z })
	return out
}

// TaperResult describes a tapering transformation.
type TaperResult struct {
	// Tapered is the reduced Hamiltonian on n − k qubits.
	Tapered *Op
	// Symmetries are the Z-string generators used.
	Symmetries []String
	// TaperedQubits are the original qubit indices removed (one per
	// generator, matching Symmetries order).
	TaperedQubits []int
	// Sector holds the ±1 eigenvalue substituted for each generator.
	Sector []int
	// NumQubits is the reduced register width.
	NumQubits int
}

// conjugateByClifford maps P ↦ U·P·U for U = (X_q + τ)/√2 with τ a
// Z-string containing Z_q (so X_q and τ anticommute and U² = I).
// Writing XP = c_X·PX and τP = c_τ·Pτ with c ∈ {±1}:
//
//	U P U = ½(c_X + c_τ)·P + ½(c_X − c_τ)·P·X_q·τ
//
// i.e. P (both commute), −P (both anticommute), ±P·X_q·τ (mixed).
func conjugateByClifford(op *Op, tau String, q int) *Op {
	xq := String{X: 1 << uint(q)}
	xt, phXT := xq.Mul(tau)
	out := NewOp()
	for p, c := range op.terms {
		commX := p.Commutes(xq)
		commT := p.Commutes(tau)
		switch {
		case commX && commT:
			out.Add(p, c)
		case !commX && !commT:
			out.Add(p, -c)
		default:
			r, ph := p.Mul(xt)
			coeff := c * ph * phXT
			if !commX {
				coeff = -coeff
			}
			out.Add(r, coeff)
		}
	}
	return out
}

// Taper removes one qubit per Z₂ symmetry generator. sector[i] ∈ {+1, −1}
// selects the symmetry eigenspace for generator i (same order as
// FindZSymmetries). Use TaperAllSectors to scan sectors for the ground
// state.
func Taper(op *Op, n int, syms []String, sector []int) (*TaperResult, error) {
	if len(sector) != len(syms) {
		return nil, core.ErrDimensionMismatch
	}
	for _, s := range sector {
		if s != 1 && s != -1 {
			return nil, fmt.Errorf("%w: sector values must be ±1", core.ErrInvalidArgument)
		}
	}
	// Canonicalize the generator set over GF(2): after elimination,
	// generator i is the only one acting on its pivot qubit, so each
	// Clifford U_i commutes with every other generator and the Cliffords
	// can be applied independently. Products of symmetries are
	// symmetries, so the group is unchanged.
	taus, qubits, err := CanonicalZGenerators(syms)
	if err != nil {
		return nil, err
	}

	work := op.Clone()
	for i, tau := range taus {
		work = conjugateByClifford(work, tau, qubits[i])
	}

	// Substitute sector eigenvalues for X on the pivot qubits and delete
	// those qubits.
	var removeMask uint64
	for _, q := range qubits {
		removeMask |= 1 << uint(q)
	}
	out := NewOp()
	for p, c := range work.terms {
		// After the Cliffords, pivot qubits must carry only I or X.
		if p.Z&removeMask != 0 {
			return nil, fmt.Errorf("pauli: taper invariant violated: Z on pivot qubit in %s", p.Compact())
		}
		coeff := c
		for i, q := range qubits {
			if core.BitSet(p.X, q) && sector[i] == -1 {
				coeff = -coeff
			}
		}
		reduced := String{
			X: compressBits(p.X&^removeMask, removeMask),
			Z: compressBits(p.Z, removeMask),
		}
		out.Add(reduced, coeff)
	}
	return &TaperResult{
		Tapered:       out.Chop(core.CoeffEps),
		Symmetries:    taus,
		TaperedQubits: qubits,
		Sector:        append([]int(nil), sector...),
		NumQubits:     n - len(syms),
	}, nil
}

// CanonicalZGenerators reduces a Z-string generator set so that generator
// i is the only one acting on its pivot qubit — the form Taper uses
// internally. Sector eigenvalues passed to Taper refer to THESE
// generators.
func CanonicalZGenerators(syms []String) ([]String, []int, error) {
	taus := make([]String, len(syms))
	for i, tau := range syms {
		if tau.X != 0 || tau.Z == 0 {
			return nil, nil, fmt.Errorf("%w: generator %d is not a Z-string", core.ErrInvalidArgument, i)
		}
		taus[i] = tau
	}
	qubits := make([]int, len(taus))
	for i := range taus {
		q := bits.TrailingZeros64(taus[i].Z)
		qubits[i] = q
		for j := range taus {
			if j != i && core.BitSet(taus[j].Z, q) {
				taus[j].Z ^= taus[i].Z
			}
		}
	}
	for i := range taus {
		if taus[i].Z == 0 {
			return nil, nil, fmt.Errorf("%w: generators not independent", core.ErrInvalidArgument)
		}
	}
	return taus, qubits, nil
}

// SectorFromDeterminant returns the ±1 eigenvalues of Z-string generators
// on a computational basis determinant: (−1)^{|Z ∧ det|}.
func SectorFromDeterminant(syms []String, det uint64) []int {
	out := make([]int, len(syms))
	for i, s := range syms {
		if bits.OnesCount64(s.Z&det)%2 == 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// compressBits deletes the bits selected by removeMask, shifting higher
// bits down.
func compressBits(x, removeMask uint64) uint64 {
	var out uint64
	shift := 0
	for q := 0; q < 64; q++ {
		bit := uint64(1) << uint(q)
		if removeMask&bit != 0 {
			continue
		}
		if x&bit != 0 {
			out |= 1 << uint(shift)
		}
		shift++
	}
	return out
}

// TaperAllSectors enumerates every ±1 sector assignment and returns the
// tapering whose reduced Hamiltonian has the lowest ground-state energy
// (computed by dense diagonalization of the reduced operator; the reduced
// register must be small enough for that, which is the point of
// tapering).
func TaperAllSectors(op *Op, n int, syms []String) (*TaperResult, float64, error) {
	if len(syms) == 0 {
		return nil, 0, fmt.Errorf("%w: no symmetries to taper", core.ErrInvalidArgument)
	}
	bestE := math.Inf(1)
	var best *TaperResult
	total := 1 << uint(len(syms))
	for mask := 0; mask < total; mask++ {
		sector := make([]int, len(syms))
		for i := range sector {
			if mask>>uint(i)&1 == 1 {
				sector[i] = -1
			} else {
				sector[i] = 1
			}
		}
		res, err := Taper(op, n, syms, sector)
		if err != nil {
			return nil, 0, err
		}
		e, err := groundEnergy(res.Tapered, res.NumQubits)
		if err != nil {
			return nil, 0, err
		}
		if e < bestE {
			bestE = e
			best = res
		}
	}
	return best, bestE, nil
}

// groundEnergy returns the smallest eigenvalue of the operator on n
// qubits (dense; tapered registers are small).
func groundEnergy(op *Op, n int) (float64, error) {
	if n == 0 {
		return real(op.Coeff(Identity)), nil
	}
	d := op.ToDense(n)
	vals, err := denseEigenvalues(d)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// denseEigenvalues wraps the Jacobi solver for small tapered operators.
func denseEigenvalues(m *linalg.Matrix) ([]float64, error) {
	res, err := linalg.EighJacobi(m)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}
