package pauli

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/state"
)

// randomOp builds a randomized observable on n qubits: random X/Z masks
// (a biased share of Z-only strings, like molecular Hamiltonians) with
// complex coefficients.
func randomOp(rng *core.RNG, n, terms int) *Op {
	op := NewOp()
	mask := uint64(1)<<uint(n) - 1
	for t := 0; t < terms; t++ {
		var p String
		if rng.Intn(3) == 0 {
			p = String{Z: rng.Uint64() & mask} // diagonal
		} else {
			p = String{X: rng.Uint64() & mask, Z: rng.Uint64() & mask}
		}
		c := complex(rng.Float64()*2-1, rng.Float64()*2-1)
		op.Add(p, c)
	}
	return op
}

// randomWideState prepares a pseudo-random state on n qubits by rotating
// every qubit and entangling a chain.
func randomWideState(rng *core.RNG, n int, opts state.Options) *state.State {
	s := state.New(n, opts)
	amps := s.Amplitudes()
	norm := 0.0
	for i := range amps {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		amps[i] = complex(re, im)
		norm += re*re + im*im
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range amps {
		amps[i] *= scale
	}
	return s
}

// TestBatchedMatchesNaiveRandomized is the engine's property test: on
// randomized observables (random X/Z masks, complex coefficients, 2–10
// qubits) the batched X-mask-grouped evaluation must agree with the naive
// per-term ExpectationString sum to near machine precision.
func TestBatchedMatchesNaiveRandomized(t *testing.T) {
	rng := core.NewRNG(0xBA7C4)
	for n := 2; n <= 10; n++ {
		for trial := 0; trial < 4; trial++ {
			op := randomOp(rng, n, 5+n*4)
			s := randomWideState(rng, n, state.Options{})
			naive := ExpectationNaive(s, op, ExpectationOptions{Workers: 1})
			batched := Expectation(s, op, ExpectationOptions{Workers: 1})
			if math.Abs(naive-batched) > 1e-10 {
				t.Errorf("n=%d trial=%d: batched %v vs naive %v (Δ=%g)",
					n, trial, batched, naive, math.Abs(naive-batched))
			}
		}
	}
}

// TestBatchedParallelMatchesSerial drives the padded per-chunk accumulator
// path on a state large enough to cross the parallel threshold.
func TestBatchedParallelMatchesSerial(t *testing.T) {
	rng := core.NewRNG(0x9A11)
	const n = 13 // 8192 amplitudes > 1<<12 cutoff
	op := randomOp(rng, n, 200)
	s := randomWideState(rng, n, state.Options{Workers: 4})
	serial := Expectation(s, op, ExpectationOptions{Workers: 1})
	par := Expectation(s, op, ExpectationOptions{Workers: 4})
	if math.Abs(serial-par) > 1e-10 {
		t.Errorf("parallel %v vs serial %v", par, serial)
	}
	// Workers 0 must now mean GOMAXPROCS (parallel), not serial.
	def := Expectation(s, op, ExpectationOptions{})
	if math.Abs(serial-def) > 1e-10 {
		t.Errorf("default workers %v vs serial %v", def, serial)
	}
}

// TestPlanReusedAcrossStates checks that one precompiled plan evaluates
// correctly against many states (the VQE driver usage pattern).
func TestPlanReusedAcrossStates(t *testing.T) {
	rng := core.NewRNG(0x51AB)
	op := randomOp(rng, 6, 40)
	pl := NewPlan(op)
	if pl.NumTerms() != op.NumTerms() {
		t.Fatalf("plan covers %d of %d terms", pl.NumTerms(), op.NumTerms())
	}
	if pl.NumGroups() >= pl.NumTerms() {
		t.Errorf("grouping achieved no reduction: %d groups for %d terms", pl.NumGroups(), pl.NumTerms())
	}
	for trial := 0; trial < 5; trial++ {
		s := randomWideState(rng, 6, state.Options{})
		got := pl.Evaluate(s, ExpectationOptions{Workers: 1})
		want := ExpectationNaive(s, op, ExpectationOptions{Workers: 1})
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("trial %d: plan %v vs naive %v", trial, got, want)
		}
	}
}

// TestBatchedIdentityAndScalar covers the degenerate diagonal cases: a
// pure scalar observable and an identity-plus-Z mix.
func TestBatchedIdentityAndScalar(t *testing.T) {
	s := state.New(3, state.Options{})
	if e := Expectation(s, Scalar(-2.5), ExpectationOptions{}); math.Abs(e+2.5) > 1e-12 {
		t.Errorf("⟨c·I⟩ = %v, want -2.5", e)
	}
	op := NewOp().Add(Identity, 1.25).Add(MustParse("ZII"), 0.5)
	if e := Expectation(s, op, ExpectationOptions{}); math.Abs(e-1.75) > 1e-12 {
		t.Errorf("⟨I+Z⟩ on |000⟩ = %v, want 1.75", e)
	}
}

// TestVarianceThroughBatchedPath is the Variance regression test: H² runs
// through the batched engine and must vanish on an eigenstate and match
// the dense calculation on a generic state.
func TestVarianceThroughBatchedPath(t *testing.T) {
	op := testHamiltonian()
	// Eigenstate check: |0000⟩ is an eigenstate of Z-only pieces; use a
	// pure-Z observable for the exact-zero property.
	zOp := NewOp().Add(MustParse("ZZII"), 0.7).Add(MustParse("IIZZ"), -0.4)
	s0 := state.New(4, state.Options{})
	if v := Variance(s0, zOp, ExpectationOptions{}); math.Abs(v) > 1e-10 {
		t.Errorf("variance on eigenstate through batched path: %v", v)
	}
	// Generic state: Var(H) = ⟨H²⟩ − ⟨H⟩² against the dense route.
	s := randomState(17)
	got := Variance(s, op, ExpectationOptions{})
	h2 := op.Mul(op)
	want := denseExpectation(s, h2) - math.Pow(denseExpectation(s, op), 2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("batched variance %v vs dense %v", got, want)
	}
}

// TestPlanMatVecMatchesOpMatVec checks the batched scatter pass against
// the per-term Op.MatVec, serial and parallel.
func TestPlanMatVecMatchesOpMatVec(t *testing.T) {
	rng := core.NewRNG(0x3A7)
	for _, n := range []int{4, 13} {
		op := randomOp(rng, n, 60)
		s := randomWideState(rng, n, state.Options{Workers: 4})
		src := s.Amplitudes()
		want := make([]complex128, len(src))
		op.MatVec(want, src)
		got := make([]complex128, len(src))
		pl := NewPlan(op)
		pl.MatVec(got, src, nil)
		for i := range want {
			if !core.AlmostEqualC(got[i], want[i], 1e-10) {
				t.Fatalf("n=%d serial: dst[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		if pool := s.WorkerPool(); pool != nil {
			for i := range got {
				got[i] = 0
			}
			pl.MatVec(got, src, pool)
			for i := range want {
				if !core.AlmostEqualC(got[i], want[i], 1e-10) {
					t.Fatalf("n=%d parallel: dst[%d] = %v, want %v", n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNaiveWorkersDefaultParallel pins the satellite fix: the zero-value
// options must resolve Workers to GOMAXPROCS on both engines and still
// produce the serial answer.
func TestNaiveWorkersDefaultParallel(t *testing.T) {
	if (ExpectationOptions{}).resolveWorkers() < 1 {
		t.Fatal("resolveWorkers returned < 1")
	}
	if w := (ExpectationOptions{Workers: 1}).resolveWorkers(); w != 1 {
		t.Fatalf("Workers 1 must force serial, resolved to %d", w)
	}
	rng := core.NewRNG(0xD1F)
	op := randomOp(rng, 13, 50)
	s := randomWideState(rng, 13, state.Options{})
	serial := ExpectationNaive(s, op, ExpectationOptions{Workers: 1})
	par := ExpectationNaive(s, op, ExpectationOptions{})
	if math.Abs(serial-par) > 1e-10 {
		t.Errorf("naive default-workers %v vs serial %v", par, serial)
	}
}
