package pauli

import (
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
)

func TestParseAndLabel(t *testing.T) {
	s := MustParse("XIZY")
	if s.At(0) != 'X' || s.At(1) != 'I' || s.At(2) != 'Z' || s.At(3) != 'Y' {
		t.Errorf("letters wrong: %s", s.Label(4))
	}
	if s.Label(4) != "XIZY" {
		t.Errorf("label %q", s.Label(4))
	}
	if s.Compact() != "X0 Z2 Y3" {
		t.Errorf("compact %q", s.Compact())
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("XQ"); err == nil {
		t.Error("bad letter accepted")
	}
}

func TestSingleErrors(t *testing.T) {
	if _, err := Single('X', 64); err == nil {
		t.Error("qubit 64 accepted")
	}
	if _, err := Single('W', 0); err == nil {
		t.Error("letter W accepted")
	}
}

func TestWeightSupportMaxQubit(t *testing.T) {
	s := MustParse("IXIY")
	if s.Weight() != 2 {
		t.Error("weight")
	}
	sup := s.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Errorf("support %v", sup)
	}
	if s.MaxQubit() != 3 {
		t.Error("max qubit")
	}
	if Identity.MaxQubit() != -1 || !Identity.IsIdentity() {
		t.Error("identity props")
	}
}

// denseOf builds the explicit matrix of a string on n qubits from
// single-qubit Kronecker factors (independent reference construction).
func denseOf(s String, n int) *linalg.Matrix {
	m := linalg.Identity(1)
	// Qubit n-1 is the high bit, so iterate high → low.
	for q := n - 1; q >= 0; q-- {
		var f *linalg.Matrix
		switch s.At(q) {
		case 'I':
			f = linalg.Identity(2)
		case 'X':
			f = gate.New(gate.X).Matrix2()
		case 'Y':
			f = gate.New(gate.Y).Matrix2()
		case 'Z':
			f = gate.New(gate.Z).Matrix2()
		}
		m = m.Kron(f)
	}
	return m
}

func TestMulMatchesDense(t *testing.T) {
	labels := []string{"XI", "IY", "ZZ", "XY", "YX", "YY", "ZX", "II", "XZ"}
	for _, a := range labels {
		for _, b := range labels {
			pa, pb := MustParse(a), MustParse(b)
			r, ph := pa.Mul(pb)
			got := denseOf(r, 2).Scale(ph)
			want := denseOf(pa, 2).Mul(denseOf(pb, 2))
			if !got.Equal(want, 1e-12) {
				t.Errorf("%s·%s: phase %v wrong", a, b, ph)
			}
		}
	}
}

func TestMulKnownPhases(t *testing.T) {
	x, y, z := MustParse("X"), MustParse("Y"), MustParse("Z")
	r, ph := x.Mul(y)
	if r != z || ph != 1i {
		t.Errorf("XY = %v·%v, want i·Z", ph, r.Compact())
	}
	r, ph = y.Mul(x)
	if r != z || ph != -1i {
		t.Errorf("YX = %v·%v, want -i·Z", ph, r.Compact())
	}
	r, ph = y.Mul(y)
	if !r.IsIdentity() || ph != 1 {
		t.Errorf("Y² = %v·%v", ph, r.Compact())
	}
}

func TestMulProperties(t *testing.T) {
	f := func(x1, z1, x2, z2 uint16) bool {
		a := String{X: uint64(x1), Z: uint64(z1)}
		b := String{X: uint64(x2), Z: uint64(z2)}
		r, ph := a.Mul(b)
		// |phase| = 1.
		if !core.AlmostEqual(cmplx.Abs(ph), 1, 1e-12) {
			return false
		}
		// (ab)b = a·(b²) = a (b² = I).
		r2, ph2 := r.Mul(b)
		return r2 == a && core.AlmostEqualC(ph*ph2, 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCommutes(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"XX", "ZZ", true},  // anticommute on both qubits → commute
		{"XI", "ZI", false}, // anticommute on one qubit
		{"XI", "IZ", true},  // disjoint support
		{"XY", "YX", true},
		{"ZZ", "ZI", true},
	}
	for _, c := range cases {
		if got := MustParse(c.a).Commutes(MustParse(c.b)); got != c.want {
			t.Errorf("[%s,%s] commute=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCommutesMatchesDense(t *testing.T) {
	f := func(x1, z1, x2, z2 uint8) bool {
		a := String{X: uint64(x1 & 7), Z: uint64(z1 & 7)}
		b := String{X: uint64(x2 & 7), Z: uint64(z2 & 7)}
		da, db := denseOf(a, 3), denseOf(b, 3)
		comm := da.Mul(db).Sub(db.Mul(da))
		return a.Commutes(b) == (comm.MaxAbs() < 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQubitwiseCommutes(t *testing.T) {
	if !MustParse("XIZ").QubitwiseCommutes(MustParse("XZI")) {
		t.Error("compatible strings rejected")
	}
	if MustParse("XX").QubitwiseCommutes(MustParse("ZZ")) {
		t.Error("XX/ZZ accepted (they commute globally but not qubit-wise)")
	}
	if !Identity.QubitwiseCommutes(MustParse("XYZ")) {
		t.Error("identity should QWC with anything")
	}
}

func TestApplyToBasisMatchesDense(t *testing.T) {
	for _, lbl := range []string{"X", "Y", "Z", "XY", "YZ", "ZXY", "YYI"} {
		p := MustParse(lbl)
		n := len(lbl)
		d := denseOf(p, n)
		for i := uint64(0); i < uint64(1)<<uint(n); i++ {
			j, ph := p.ApplyToBasis(i)
			// Column i of d should be ph at row j, 0 elsewhere.
			for r := 0; r < d.Rows; r++ {
				want := complex128(0)
				if uint64(r) == j {
					want = ph
				}
				if !core.AlmostEqualC(d.At(r, int(i)), want, 1e-12) {
					t.Fatalf("%s: basis %d row %d: %v vs %v", lbl, i, r, d.At(r, int(i)), want)
				}
			}
		}
	}
}
