package pauli

import (
	"math/bits"
	"sort"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/kernel/tuning"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// ExpectationString computes ⟨ψ|P|ψ⟩ for one Pauli string directly from
// the amplitudes (the paper's deterministic method, §4.2.2): the nested
// double sum collapses to a single pass because P maps each basis state to
// exactly one basis state.
//
//vqesim:hotpath
func ExpectationString(s *state.State, p String) complex128 {
	amps := s.Amplitudes()
	var acc complex128
	for i := uint64(0); i < uint64(len(amps)); i++ {
		ai := amps[i]
		if ai == 0 {
			continue
		}
		j, ph := p.ApplyToBasis(i)
		aj := amps[j]
		acc += complex(real(aj), -imag(aj)) * ph * ai
	}
	return acc
}

// expectationStringParallel chunks the amplitude loop over the state's
// persistent worker pool (paper §4.2.3 parallelizes the same reduction
// over GPU cores). Each chunk accumulates locally and writes its partial
// once into a cache-line-padded slot — workers never share a line.
//
//vqesim:hotpath
func expectationStringParallel(amps []complex128, p String, pool *state.Pool, chunks int) complex128 {
	return pool.ReduceComplex(uint64(len(amps)), chunks, func(lo, hi uint64) complex128 {
		var acc complex128
		for i := lo; i < hi; i++ {
			ai := amps[i]
			if ai == 0 {
				continue
			}
			j, ph := p.ApplyToBasis(i)
			aj := amps[j]
			acc += complex(real(aj), -imag(aj)) * ph * ai
		}
		return acc
	})
}

// ExpectationOptions tunes direct expectation evaluation.
type ExpectationOptions struct {
	// Workers is the reduction parallelism, matching state.Options
	// semantics: 0 means GOMAXPROCS, 1 forces serial.
	Workers int
}

// resolveWorkers applies the 0 = GOMAXPROCS default through the
// engine's single resolution point.
func (o ExpectationOptions) resolveWorkers() int {
	return state.ResolveWorkers(o.Workers)
}

// Expectation computes ⟨ψ|H|ψ⟩ for a Pauli-sum observable using the
// direct method. The strategy is chosen by the calibrated kernel model
// (internal/kernel/tuning): observables at or below NaiveMaxTerms run
// the per-term evaluator (plan construction doesn't repay itself for a
// handful of strings), everything larger is batched by X mask so every
// group of terms sharing an index permutation is scored during one pass
// over the amplitudes (see batched.go). The result is real for
// Hermitian H; the real part is returned. Callers that evaluate the
// same observable repeatedly should build the Plan once with NewPlan
// and call Evaluate to amortize the grouping.
func Expectation(s *state.State, op *Op, opts ExpectationOptions) float64 {
	checkWidth(s, op)
	if op.NumTerms() <= tuning.NaiveMaxTerms() {
		mChoiceNaive.Inc()
		return ExpectationNaive(s, op, opts)
	}
	mChoiceBatched.Inc()
	return NewPlan(op).Evaluate(s, opts)
}

// ExpectationNaive evaluates term by term, one full amplitude sweep per
// Pauli string — the pre-batching engine, kept as the reference
// implementation for property tests and the batched-vs-per-term
// benchmarks.
func ExpectationNaive(s *state.State, op *Op, opts ExpectationOptions) float64 {
	checkWidth(s, op)
	start := telemetry.Now()
	defer mNaiveEval.Since(start)
	amps := s.Amplitudes()
	pool, chunks := expectationPool(s, opts, len(amps))
	total := 0.0
	for p, c := range op.terms {
		var e complex128
		if pool != nil {
			e = expectationStringParallel(amps, p, pool, chunks)
		} else {
			e = ExpectationString(s, p)
		}
		total += real(c * e)
	}
	return total
}

// MeasurementBasis describes how to measure a group of qubit-wise
// commuting strings: the basis-rotation circuit mapping each X/Y letter to
// Z, plus the strings (now diagonal) to read out.
type MeasurementBasis struct {
	Rotation *circuit.Circuit
	// ZMasks[i] is the Z mask of Terms[i] after rotation: the expectation
	// of term i is E[(−1)^{|outcome ∧ ZMasks[i]|}].
	ZMasks []uint64
	Terms  []Term
}

// Plan compiles the group's terms (identity excluded, matching the
// rotated readout which skips it) into a batched pair-sweep plan. For a
// qubit-wise-commuting group, evaluating this plan on the post-ansatz
// state equals rotating a state copy with mb.Rotation and reading the
// diagonal ZMasks expectations — the basis-change layer is fused into
// the sweep, so a rotated-measurement evaluation costs one pass per
// X mask instead of a rotation circuit plus a probability pass per
// group (TestGroupPlanMatchesRotatedSweep pins the equivalence).
func (mb *MeasurementBasis) Plan() *Plan {
	terms := make([]Term, 0, len(mb.Terms))
	for _, t := range mb.Terms {
		if t.P.IsIdentity() {
			continue
		}
		terms = append(terms, t)
	}
	return NewPlanFromTerms(terms)
}

// BasisRotation builds the rotation circuit for a single string: H for X,
// S†·H for Y (paper §4.1.2). After the rotation the string acts as Z on
// its support.
func BasisRotation(p String, n int) *circuit.Circuit {
	c := circuit.New(n)
	for _, q := range p.Support() {
		switch p.At(q) {
		case 'X':
			c.H(q)
		case 'Y':
			c.Sdg(q).H(q)
		}
	}
	return c
}

// GroupQWC partitions the observable's terms into qubit-wise commuting
// groups (greedy first-fit over terms sorted by descending weight) and
// returns one MeasurementBasis per group. All strings in a group share a
// single rotation circuit — the measurement-reduction extension to the
// per-term workflow.
func GroupQWC(op *Op, n int) []MeasurementBasis {
	terms := op.Terms()
	sort.Slice(terms, func(i, j int) bool {
		wi, wj := terms[i].P.Weight(), terms[j].P.Weight()
		if wi != wj {
			return wi > wj
		}
		return terms[i].P.Less(terms[j].P)
	})
	type group struct {
		rep   String // union of letters fixed so far
		terms []Term
	}
	var groups []*group
outer:
	for _, t := range terms {
		for _, g := range groups {
			if t.P.QubitwiseCommutes(g.rep) {
				g.rep = String{X: g.rep.X | t.P.X, Z: g.rep.Z | t.P.Z}
				g.terms = append(g.terms, t)
				continue outer
			}
		}
		groups = append(groups, &group{rep: t.P, terms: []Term{t}})
	}
	out := make([]MeasurementBasis, len(groups))
	for i, g := range groups {
		mb := MeasurementBasis{
			Rotation: BasisRotation(g.rep, n),
			Terms:    g.terms,
		}
		for _, t := range g.terms {
			mb.ZMasks = append(mb.ZMasks, t.P.X|t.P.Z)
		}
		out[i] = mb
	}
	return out
}

// ExpectationSampled estimates ⟨H⟩ by the traditional repeated-measurement
// workflow the paper contrasts against (§4.2.1): for every QWC group,
// rotate a copy of the state into the measurement basis, draw shots
// samples, and average parity eigenvalues. The identity term contributes
// its coefficient exactly.
func ExpectationSampled(s *state.State, op *Op, n, shots int) float64 {
	checkWidth(s, op)
	total := real(op.Coeff(Identity))
	for _, mb := range GroupQWC(op, n) {
		work := s.Clone()
		work.Run(mb.Rotation)
		counts := work.SampleCounts(shots)
		for i, t := range mb.Terms {
			if t.P.IsIdentity() {
				continue
			}
			zm := mb.ZMasks[i]
			acc := 0
			for outcome, c := range counts {
				if bits.OnesCount64(outcome&zm)%2 == 0 {
					acc += c
				} else {
					acc -= c
				}
			}
			total += real(t.Coeff) * float64(acc) / float64(shots)
		}
	}
	return total
}

// ExpectationViaRotation computes ⟨H⟩ exactly but through the basis-
// rotation route: rotate a state copy per group, then read diagonal
// expectations from probabilities. This is what caching accelerates — the
// ansatz state is restored (not re-prepared) before each rotation.
func ExpectationViaRotation(s *state.State, op *Op, n int) float64 {
	total := real(op.Coeff(Identity))
	for _, mb := range GroupQWC(op, n) {
		work := s.Clone()
		work.Run(mb.Rotation)
		probs := work.Probabilities()
		for i, t := range mb.Terms {
			if t.P.IsIdentity() {
				continue
			}
			zm := mb.ZMasks[i]
			e := 0.0
			for idx, pr := range probs {
				if bits.OnesCount64(uint64(idx)&zm)%2 == 0 {
					e += pr
				} else {
					e -= pr
				}
			}
			total += real(t.Coeff) * e
		}
	}
	return total
}

// Variance computes ⟨H²⟩ − ⟨H⟩², useful for convergence diagnostics
// (vanishes on eigenstates).
func Variance(s *state.State, op *Op, opts ExpectationOptions) float64 {
	h2 := op.Mul(op)
	e := Expectation(s, op, opts)
	return Expectation(s, h2, opts) - e*e
}

// Dim guard shared by callers that mix ops and states.
func checkWidth(s *state.State, op *Op) {
	if op.MaxQubit() >= s.NumQubits() {
		panic(core.QubitError(op.MaxQubit(), s.NumQubits()))
	}
}
