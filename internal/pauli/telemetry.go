package pauli

import "repro/internal/telemetry"

// Expectation-engine instruments (no-ops until telemetry.Enable). The
// plan gauges record the most recently built plan — one observable
// dominates a VQE run, so last-value-wins is the right semantics.
var (
	mPlanBuild  = telemetry.GetTimer("pauli.plan.build")
	mPlanGroups = telemetry.GetGauge("pauli.plan.groups")
	mPlanTerms  = telemetry.GetGauge("pauli.plan.terms")
	mPlanEval   = telemetry.GetTimer("pauli.plan.evaluate")
	mPlanMatVec = telemetry.GetTimer("pauli.plan.matvec")
	mNaiveEval  = telemetry.GetTimer("pauli.naive.evaluate")

	// Calibrated strategy-choice counters: which evaluator Expectation
	// picked per call (kernel.calib.* gauges record the thresholds that
	// drove the choice).
	mChoiceNaive   = telemetry.GetCounter("pauli.choice.naive")
	mChoiceBatched = telemetry.GetCounter("pauli.choice.batched")
)
