package pauli

import (
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/kernel/tuning"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// This file implements the batched multi-term expectation engine. The
// per-term evaluator performs one full O(2ⁿ) amplitude sweep per Pauli
// string, so term count — not qubit count — dominates the wall clock of a
// molecular energy evaluation (~30k sweeps of a 16 GB vector at the
// paper's Fig 1b scale). Two strings with the same X mask induce the same
// basis-state permutation i → j = i XOR x; only their Z masks (a ±1 parity
// per amplitude) and constant phases differ. Grouping terms by X mask
// therefore lets one pass over the amplitudes score every term of the
// group, and the per-term work inside the pass shrinks to a popcount and a
// fused multiply-add:
//
//   - diagonal group (x = 0, the majority of molecular terms): one |aᵢ|²
//     sweep scores all its terms at once;
//   - off-diagonal groups sweep only the half-space where the lowest X bit
//     is clear: the pair (i, j = i⊕x) contributes P₀·s·2Re(conj(aⱼ)aᵢ)
//     when |x∧z| is even and P₀·s·2i·Im(conj(aⱼ)aᵢ) when odd (s the
//     Z-parity sign), so each term reduces a *real* accumulator and every
//     amplitude pair is loaded once instead of twice;
//   - signs are applied by multiplication (±1.0), not branches, keeping
//     the inner loop free of data-dependent branch mispredictions.

// xGroup is the set of terms sharing one X mask, compiled for the sweep.
// Terms are split by which real component of the pair product they reduce:
// zsRe/csRe terms accumulate Re(w), zsIm/csIm terms accumulate Im(w)
// (diagonal groups only populate the Re side — |aᵢ|² is real).
type xGroup struct {
	x uint64
	q int // half-space qubit: lowest set bit of x (off-diagonal only)
	// Folded real weights: csRe[t] = Re(c·i^{|x∧z|}), csIm[t] = −Im(c·i^{|x∧z|}).
	zsRe []uint64
	csRe []float64
	zsIm []uint64
	csIm []float64
	// Raw terms for MatVec, which needs the full complex coefficients.
	zs []uint64
	cs []complex128
}

// Plan is an observable precompiled for batched expectation evaluation.
// Building a plan is O(terms); evaluating it is O(2ⁿ · groups) amplitude
// loads instead of the per-term evaluator's O(2ⁿ · terms). Plans are
// immutable after construction and safe for concurrent Evaluate/MatVec.
type Plan struct {
	maxQubit int
	nTerms   int
	groups   []xGroup // sorted by X mask; the diagonal group (x=0) first
}

// NewPlan groups op's terms by X mask. The identity term needs no special
// case: it lands in the diagonal group with Z mask 0.
func NewPlan(op *Op) *Plan {
	return NewPlanFromTerms(op.Terms()) // canonical order → deterministic plan
}

// NewPlanFromTerms compiles an explicit term list (in the caller's
// order, which must be deterministic for reproducible summation). This
// is how a qubit-wise-commuting measurement group becomes a batched
// pair-sweep: evaluating the group's original terms directly on the
// post-ansatz state is mathematically identical to rotating into the
// group's measurement basis and reading the diagonal expectations, but
// fuses the whole basis-change layer into the sweep — no rotation
// circuit pass, no probability vector (see MeasurementBasis.Plan).
func NewPlanFromTerms(terms []Term) *Plan {
	start := telemetry.Now()
	pl := &Plan{maxQubit: -1, nTerms: len(terms)}
	for _, t := range terms {
		if q := t.P.MaxQubit(); q > pl.maxQubit {
			pl.maxQubit = q
		}
	}
	byX := map[uint64]int{}
	for _, t := range terms {
		x, z := t.P.X, t.P.Z
		gi, ok := byX[x]
		if !ok {
			gi = len(pl.groups)
			byX[x] = gi
			pl.groups = append(pl.groups, xGroup{x: x, q: bits.TrailingZeros64(x | 1<<63)})
		}
		g := &pl.groups[gi]
		cP := t.Coeff * phaseI(bits.OnesCount64(x&z))
		if x == 0 || bits.OnesCount64(x&z)&1 == 0 {
			g.zsRe = append(g.zsRe, z)
			g.csRe = append(g.csRe, real(cP))
		} else {
			g.zsIm = append(g.zsIm, z)
			g.csIm = append(g.csIm, -imag(cP))
		}
		g.zs = append(g.zs, z)
		g.cs = append(g.cs, cP)
	}
	sort.Slice(pl.groups, func(i, j int) bool { return pl.groups[i].x < pl.groups[j].x })
	mPlanBuild.Since(start)
	mPlanGroups.Set(int64(len(pl.groups)))
	mPlanTerms.Set(int64(pl.nTerms))
	return pl
}

// NumGroups reports how many amplitude sweeps one evaluation costs.
func (pl *Plan) NumGroups() int { return len(pl.groups) }

// NumTerms reports how many Pauli strings the plan covers.
func (pl *Plan) NumTerms() int { return pl.nTerms }

// Evaluate computes ⟨ψ|H|ψ⟩ with one amplitude pass per X-mask group,
// chunked over the state's persistent worker pool when opts ask for
// parallelism and the state is large enough. The real part is returned
// (exact for Hermitian H, matching Expectation).
func (pl *Plan) Evaluate(s *state.State, opts ExpectationOptions) float64 {
	if pl.maxQubit >= s.NumQubits() {
		panic(core.QubitError(pl.maxQubit, s.NumQubits()))
	}
	start := telemetry.Now()
	amps := s.Amplitudes()
	pool, chunks := expectationPool(s, opts, len(amps))
	total := 0.0
	for gi := range pl.groups {
		total += pl.groups[gi].eval(amps, pool, chunks)
	}
	mPlanEval.Since(start)
	return total
}

// expectationPool resolves the worker pool and chunk count for an
// expectation-style reduction: nil/0 when the evaluation should run
// serial. Workers semantics follow state.Options: 0 = GOMAXPROCS,
// 1 = serial.
func expectationPool(s *state.State, opts ExpectationOptions, dim int) (*state.Pool, int) {
	w := opts.resolveWorkers()
	if w <= 1 || dim < tuning.ReduceParallel() {
		return nil, 0
	}
	return s.EnsurePool(w), w
}

// eval scores every term of the group during one sweep. Per-chunk partial
// accumulators live in cache-line-padded blocks of a shared slice, so
// pool workers never contend on a line; each term's partials are folded
// with its precomputed real weight at the end.
func (g *xGroup) eval(amps []complex128, pool *state.Pool, chunks int) float64 {
	nRe, nIm := len(g.zsRe), len(g.zsIm)
	nt := nRe + nIm
	total := uint64(len(amps))
	if g.x != 0 {
		total /= 2 // off-diagonal sweeps only the lower half-space of qubit q
	}
	if pool == nil {
		acc := make([]float64, nt)
		g.sweep(amps, 0, total, acc[:nRe], acc[nRe:])
		return g.fold(acc, nt, 1)
	}
	stride := padTo(nt, 8) // 8 float64 per 64-byte cache line
	acc := make([]float64, chunks*stride)
	pool.Run(total, chunks, func(slot int, lo, hi uint64) {
		blk := acc[slot*stride : slot*stride+nt]
		g.sweep(amps, lo, hi, blk[:nRe], blk[nRe:])
	})
	return g.fold(acc, stride, chunks)
}

// sweep accumulates the group's parity-signed pair products over
// [lo, hi). For the diagonal group the index range is the amplitudes
// themselves; for off-diagonal groups it enumerates the half-space with
// qubit q clear and scores both members of each (i, i⊕x) pair at once.
//
//vqesim:hotpath
func (g *xGroup) sweep(amps []complex128, lo, hi uint64, accRe, accIm []float64) {
	if g.x == 0 {
		zs := g.zsRe
		for i := lo; i < hi; i++ {
			a := amps[i]
			w := real(a)*real(a) + imag(a)*imag(a)
			if w == 0 {
				continue
			}
			for t, z := range zs {
				s := 1 - 2*float64(bits.OnesCount64(i&z)&1)
				accRe[t] += s * w
			}
		}
		return
	}
	x, q := g.x, g.q
	zsRe, zsIm := g.zsRe, g.zsIm
	for rest := lo; rest < hi; rest++ {
		i := core.InsertZeroBit(rest, q)
		ai := amps[i]
		aj := amps[i^x]
		if ai == 0 && aj == 0 {
			continue
		}
		// w = conj(aⱼ)·aᵢ; each pair contributes twice the chosen part.
		wRe := 2 * (real(aj)*real(ai) + imag(aj)*imag(ai))
		wIm := 2 * (real(aj)*imag(ai) - imag(aj)*real(ai))
		for t, z := range zsRe {
			s := 1 - 2*float64(bits.OnesCount64(i&z)&1)
			accRe[t] += s * wRe
		}
		for t, z := range zsIm {
			s := 1 - 2*float64(bits.OnesCount64(i&z)&1)
			accIm[t] += s * wIm
		}
	}
}

// fold reduces the per-chunk accumulator blocks into the group's energy
// contribution Σₜ weightₜ · parity-sumₜ.
func (g *xGroup) fold(acc []float64, stride, chunks int) float64 {
	nRe := len(g.csRe)
	total := 0.0
	for t, c := range g.csRe {
		e := 0.0
		for s := 0; s < chunks; s++ {
			e += acc[s*stride+t]
		}
		total += c * e
	}
	for t, c := range g.csIm {
		e := 0.0
		for s := 0; s < chunks; s++ {
			e += acc[s*stride+nRe+t]
		}
		total += c * e
	}
	return total
}

// padTo rounds n up to a multiple of unit and adds one full unit, so
// consecutive per-chunk blocks of a shared slice never touch the same
// cache line even when the slice base is line-misaligned.
func padTo(n, unit int) int {
	return (n+unit-1)/unit*unit + unit
}

// MatVec computes dst = H·src with one scatter pass per X-mask group
// (batched counterpart of Op.MatVec, used by the adjoint-gradient and
// Adapt pool-scan paths). Within a group the map i → i XOR x is a
// bijection, so chunks write disjoint dst entries and the pass
// parallelizes safely; pool may be nil for serial execution. dst and src
// must both have length 2ⁿ and must not alias.
func (pl *Plan) MatVec(dst, src []complex128, pool *state.Pool) {
	start := telemetry.Now()
	defer mPlanMatVec.Since(start)
	for i := range dst {
		dst[i] = 0
	}
	dim := uint64(len(src))
	chunks := 0
	if pool != nil && len(src) >= 1<<12 {
		chunks = pool.Workers()
	} else {
		pool = nil
	}
	for gi := range pl.groups {
		g := &pl.groups[gi]
		//vqesim:hotpath
		sweep := func(lo, hi uint64) {
			zs, cs, x := g.zs, g.cs, g.x
			for i := lo; i < hi; i++ {
				v := src[i]
				if v == 0 {
					continue
				}
				var c complex128
				for t, z := range zs {
					if bits.OnesCount64(i&z)&1 == 0 {
						c += cs[t]
					} else {
						c -= cs[t]
					}
				}
				dst[i^x] += c * v
			}
		}
		if pool == nil {
			sweep(0, dim)
		} else {
			pool.Run(dim, chunks, func(_ int, lo, hi uint64) { sweep(lo, hi) })
		}
	}
}
