// Package timerpair is the golden fixture for the timerpair analyzer.
package timerpair

import (
	"repro/internal/telemetry"
)

var mPhase = telemetry.GetTimer("fixture.phase")

func discarded() {
	telemetry.Now()     // want `telemetry.Now result discarded`
	_ = telemetry.Now() // want `telemetry.Now result discarded`
}

func neverObserved() int {
	var start int64
	_ = start               // pre-assignment use keeps the compiler quiet
	start = telemetry.Now() // want `timer started with telemetry.Now but never observed`
	return 0
}

func earlyReturn(fail bool) error {
	start := telemetry.Now()
	if fail {
		return errFixture // want `return between telemetry.Now and Timer.Since skips the observation`
	}
	mPhase.Since(start)
	return nil
}

func deferredOK(fail bool) error {
	start := telemetry.Now()
	defer mPhase.Since(start)
	if fail {
		return errFixture // deferred Since runs on every path: no diagnostic
	}
	return nil
}

func deferredClosureOK(fail bool) error {
	start := telemetry.Now()
	defer func() {
		mPhase.Since(start)
	}()
	if fail {
		return errFixture
	}
	return nil
}

func inlineOK() {
	start := telemetry.Now()
	work()
	mPhase.Since(start)
}

// manualElapsed consumes the timestamp outside Since: trusted as
// deliberate handling (mirrors vqe.Energy's disabled-telemetry guard).
func manualElapsed() int64 {
	start := telemetry.Now()
	if start != 0 {
		return telemetry.Now() - start
	}
	return 0
}

func work() {}

type fixtureError struct{}

func (fixtureError) Error() string { return "fixture" }

var errFixture error = fixtureError{}
