// Package timerpair is the golden fixture for the timerpair analyzer.
package timerpair

import (
	"repro/internal/telemetry"
)

var mPhase = telemetry.GetTimer("fixture.phase")

func discarded() {
	telemetry.Now()     // want `telemetry.Now result discarded`
	_ = telemetry.Now() // want `telemetry.Now result discarded`
}

func neverObserved() int {
	var start int64
	_ = start               // pre-assignment use keeps the compiler quiet
	start = telemetry.Now() // want `timer started with telemetry.Now but never observed`
	return 0
}

func earlyReturn(fail bool) error {
	start := telemetry.Now()
	if fail {
		return errFixture // want `return between telemetry.Now and Timer.Since skips the observation`
	}
	mPhase.Since(start)
	return nil
}

func deferredOK(fail bool) error {
	start := telemetry.Now()
	defer mPhase.Since(start)
	if fail {
		return errFixture // deferred Since runs on every path: no diagnostic
	}
	return nil
}

func deferredClosureOK(fail bool) error {
	start := telemetry.Now()
	defer func() {
		mPhase.Since(start)
	}()
	if fail {
		return errFixture
	}
	return nil
}

func inlineOK() {
	start := telemetry.Now()
	work()
	mPhase.Since(start)
}

// manualElapsed consumes the timestamp outside Since: trusted as
// deliberate handling (mirrors vqe.Energy's disabled-telemetry guard).
func manualElapsed() int64 {
	start := telemetry.Now()
	if start != 0 {
		return telemetry.Now() - start
	}
	return 0
}

// branchMiss observes the timer in one arm only; the other arm falls
// off the end of the function with the timer still open. Only the CFG
// backend can see this — there is no return statement to anchor the old
// position heuristic.
func branchMiss(fail bool) {
	start := telemetry.Now() // want `telemetry\.Now timestamp can reach the end of the function without its Timer\.Since`
	if fail {
		mPhase.Since(start)
	}
}

// branchReturnOK observes the timer on every path before returning. The
// old position heuristic flagged the first return because it precedes
// the second Since in source order; the CFG backend knows the path is
// covered.
func branchReturnOK(fail bool) error {
	start := telemetry.Now()
	if fail {
		mPhase.Since(start)
		return errFixture
	}
	mPhase.Since(start)
	return nil
}

func work() {}

type fixtureError struct{}

func (fixtureError) Error() string { return "fixture" }

var errFixture error = fixtureError{}
