// Package hotpathalloc is the golden fixture for the hotpathalloc
// analyzer: annotated functions that allocate MUST be flagged (the
// negative guarantee), clean kernels and unannotated functions must not.
package hotpathalloc

// pool mimics the internal/state worker pool's submitter surface.
type pool struct{}

func (p *pool) Run(n int, body func(lo, hi int)) {
	body(0, n)
}

type sink interface{ add(v float64) }

type acc struct{ total float64 }

func (a *acc) add(v float64) { a.total += v }

// sweepClean is the model kernel: index arithmetic and in-place writes
// only. It must produce no diagnostics.
//
//vqesim:hotpath
func sweepClean(amps []complex128, scale complex128) {
	if len(amps) == 0 {
		panic("hotpathalloc: empty amplitude slice")
	}
	for i := range amps {
		amps[i] *= scale
	}
}

// sweepPooled hands its chunk body straight to the pool: the one
// sanctioned closure. The body itself is still checked (the append
// inside must be flagged).
//
//vqesim:hotpath
func sweepPooled(p *pool, amps []complex128) {
	p.Run(len(amps), func(lo, hi int) {
		var buf []int
		for i := lo; i < hi; i++ {
			amps[i] *= 2
			buf = append(buf, i) // want `append may grow and allocate`
		}
		_ = buf
	})
}

// allocEverywhere is the negative fixture: an annotated function that
// allocates in every way the analyzer knows about.
//
//vqesim:hotpath
func allocEverywhere(amps []complex128, s sink, label string) {
	buf := make([]float64, len(amps)) // want `make allocates`
	lit := []int{1, 2, 3}             // want `slice literal allocates`
	m := map[int]int{}                // want `map literal allocates`
	ptr := &acc{}                     // want `&composite literal escapes`
	n := new(acc)                     // want `new allocates`
	f := func() {}                    // want `closure allocates and captures`
	go sweepClean(amps, 1)            // want `go statement spawns a goroutine`
	defer sweepClean(amps, 1)         // want `defer allocates a frame record`
	s.add(acc{}.total)
	s2 := label + "x"  // want `string concatenation allocates`
	b := []byte(label) // want `string conversion copies and allocates`
	var boxed sink = s
	boxed.add(1)
	_, _, _, _, _, _, _, _ = buf, lit, m, ptr, n, f, s2, b
}

// boxes passes a concrete non-pointer value to an interface parameter.
//
//vqesim:hotpath
func boxes(s sink) {
	v := acc{}
	consume(v) // want `boxes the value`
	consume(s) // interface-to-interface: no box, no diagnostic
	consume(&v)
}

func consume(x interface{}) { _ = x }

// unannotated allocates freely and must stay silent.
func unannotated() []int {
	return append([]int{}, 1, 2, 3)
}

//vqesim:hotpath // want `misplaced //vqesim:hotpath`

var afterMisplaced = 0

// litKernel shows the FuncLit annotation form: the directive on the
// line immediately above a literal claims it.
func litKernel(amps []complex128) func() {
	//vqesim:hotpath
	body := func() {
		tmp := make([]int, 4) // want `make allocates`
		_ = tmp
		for i := range amps {
			amps[i] += 1
		}
	}
	return body
}
