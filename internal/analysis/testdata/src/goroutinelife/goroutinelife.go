// Package goroutinelife is the golden fixture for the goroutinelife
// analyzer: every go statement needs a WaitGroup, context, or channel
// tying its lifetime to the caller.
package goroutinelife

import (
	"context"
	"sync"
)

func work() {}

func compute() int { return 1 }

type worker struct{}

func (w *worker) run() {}

func (w *worker) runCtx(ctx context.Context) { <-ctx.Done() }

func (w *worker) runWG(wg *sync.WaitGroup) { defer wg.Done() }

func fireAndForget() {
	go func() { // want `fire-and-forget goroutine`
		work()
	}()
}

func namedNoSignal(w *worker) {
	go w.run() // want `fire-and-forget goroutine`
}

func inlineDoneBranch(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine can reach its exit without calling Done on some path`
		if fail {
			return
		}
		work()
		wg.Done()
	}()
	wg.Wait()
}

// --- negative cases: no diagnostics expected below ---

func deferredDoneOK() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func inlineDoneAllPathsOK() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work()
		wg.Done()
	}()
	wg.Wait()
}

func ctxBoundOK(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

func ctxThreadedOK(ctx context.Context, w *worker) {
	go func() {
		w.runCtx(ctx)
	}()
}

func channelRangeOK(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func resultChannelOK(ch chan int) {
	go func() {
		ch <- compute()
	}()
}

func namedCtxOK(ctx context.Context, w *worker) {
	go w.runCtx(ctx)
}

func namedWGOK(w *worker, wg *sync.WaitGroup) {
	wg.Add(1)
	go w.runWG(wg)
}

func namedAddBeforeOK(w *worker) {
	var wg sync.WaitGroup
	wg.Add(1)
	go w.run()
	wg.Wait()
}
