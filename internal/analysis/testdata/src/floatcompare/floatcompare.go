// Package floatcompare is the golden fixture for the floatcompare
// analyzer.
package floatcompare

import "math/cmplx"

const tol = 1e-12

func exactEquality(a, b float64, z, w complex128) bool {
	if a == b { // want `floating-point == comparison is exact`
		return true
	}
	if z != w { // want `complex != comparison is exact`
		return false
	}
	return a != b // want `floating-point != comparison is exact`
}

// sparsityGuards compare against the exact constant zero: the engine's
// sanctioned skip pattern. No diagnostics.
func sparsityGuards(amps []complex128, p float64) float64 {
	var total float64
	for _, a := range amps {
		if a == 0 {
			continue
		}
		total += real(a)*real(a) + imag(a)*imag(a)
	}
	if p != 0.0 {
		total /= p
	}
	return total
}

func intComparisonsFine(i, j int) bool { return i == j }

func absSquared(z complex128) float64 {
	return cmplx.Abs(z) * cmplx.Abs(z) // want `two square roots`
}

type matrix struct{ data []complex128 }

func (m matrix) At(i, j int) complex128 { return m.data[i*2+j] }

func absSquaredCall(m matrix, i, j int) float64 {
	// Argument has a call: diagnostic but no autofix (not side-effect free).
	return cmplx.Abs(m.At(i, j)) * cmplx.Abs(m.At(i, j)) // want `two square roots`
}

func absTimesDifferent(z, w complex128) float64 {
	return cmplx.Abs(z) * cmplx.Abs(w) // different args: a norm product, fine
}

func toleranceCompare(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < tol
}
