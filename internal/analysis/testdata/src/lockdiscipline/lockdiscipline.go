// Package lockdiscipline is the golden fixture for the lockdiscipline
// analyzer: leaks on early-return paths, self-deadlocks, nested locks,
// and blocking calls inside critical sections.
package lockdiscipline

import (
	"errors"
	"net/http"
	"sync"
	"time"
)

var errFixture = errors.New("fixture")

type store struct {
	mu    sync.Mutex
	other sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	n     int
}

func leakOnBranch(s *store, fail bool) error {
	s.mu.Lock() // want `s\.mu\.Lock is not released on every path to the function exit`
	if fail {
		return errFixture
	}
	s.mu.Unlock()
	return nil
}

func leakNoUnlock(s *store) {
	s.mu.Lock() // want `s\.mu\.Lock is not released on every path to the function exit`
	s.n++
}

func rlockLeak(s *store, fail bool) int {
	s.rw.RLock() // want `s\.rw\.RLock is not released on every path to the function exit`
	if fail {
		return 0
	}
	n := s.n
	s.rw.RUnlock()
	return n
}

func doubleLock(s *store) {
	s.mu.Lock()
	s.mu.Lock() // want `Lock of s\.mu while it is already held: this self-deadlocks`
	s.mu.Unlock()
	s.mu.Unlock()
}

func nestedLocks(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.other.Lock() // want `Lock of s\.other while s\.mu is held: nested locks invite lock-order inversion`
	defer s.other.Unlock()
	s.n++
}

func sendWhileLocked(s *store) {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

// Even a select with a default cannot make a send under a lock safe: the
// hand-off still couples subscribers to the critical section.
func selectDefaultSendWhileLocked(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1: // want `channel send while s\.mu is held`
	default:
	}
}

func sleepWhileLocked(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while s\.mu is held`
}

func httpWhileLocked(s *store, c *http.Client, req *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := c.Do(req) // want `net/http call while s\.mu is held`
	if err == nil {
		resp.Body.Close()
	}
}

func waitWhileLocked(s *store, wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while s\.mu is held`
}

// --- negative cases: no diagnostics expected below ---

func deferOK(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func deferClosureOK(s *store) {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
}

func bothPathsOK(s *store, fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errFixture
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// A receive guarded by a select default cannot block; only sends stay
// reportable under a lock.
func selectDefaultRecvOK(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// Unlock-only helpers pair with a Lock in their callers.
func unlockOnlyOK(s *store) {
	s.mu.Unlock()
}

// Blocking after the critical section closes is fine.
func sendAfterUnlockOK(s *store) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	s.ch <- n
}
