// Package panicdiscipline is the golden fixture for the panicdiscipline
// analyzer (loaded under the synthetic import path
// repro/internal/panicdiscipline, so the internal-package contract
// applies; the required prefix is "panicdiscipline: ").
package panicdiscipline

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

func compliant(q, n int, err error) {
	panic("panicdiscipline: negative dimension")
}

func compliantSentinel() {
	panic(core.ErrInvalidArgument)
}

func compliantWrapped(n int) {
	panic(fmt.Errorf("panicdiscipline: %d qubits: %w", n, core.ErrDimensionMismatch))
}

func compliantWrappedForeignPrefix(n int) {
	// %w-wrapping a core sentinel carries the attribution even without
	// the local prefix.
	panic(fmt.Errorf("need %d qubits: %w", n, core.ErrDimensionMismatch))
}

func compliantCoreCall(q, n int) {
	panic(core.QubitError(q, n))
}

func compliantSprintf(n int) {
	panic(fmt.Sprintf("panicdiscipline: bad order %d", n))
}

func barePlainString() {
	panic("negative dimension") // want `lacks the "panicdiscipline: " package prefix`
}

func bareError(err error) {
	panic(err) // want `panic with a bare error value`
}

func unprefixedErrorf(n int) {
	panic(fmt.Errorf("bad order %d", n)) // want `lacks the "panicdiscipline: " package prefix and wraps no core sentinel`
}

func unprefixedSprintf(n int) {
	panic(fmt.Sprintf("bad order %d", n)) // want `lacks the "panicdiscipline: " package prefix and wraps no core sentinel`
}

func foreignErrorWrap(n int) {
	panic(fmt.Errorf("bad order %d: %w", n, errFixture)) // want `lacks the "panicdiscipline: " package prefix and wraps no core sentinel`
}

func nonErrorValue(n int) {
	panic(n) // want `panic argument must be a core sentinel error`
}

var errFixture = errors.New("fixture")
