// Package workerssemantics is the golden fixture for the
// workerssemantics analyzer. The fixture's synthetic import path is
// repro/internal/workerssemantics — outside internal/state, so the
// convention applies.
package workerssemantics

import "runtime"

// Options mirrors the engine option structs carrying a Workers field
// with the 0=GOMAXPROCS / 1=serial convention.
type Options struct {
	Workers int
	Depth   int
}

func deriveDefault() int {
	n := runtime.GOMAXPROCS(0) // want `resolve worker counts through internal/state`
	if n < 1 {
		n = runtime.NumCPU() // want `resolve worker counts through internal/state`
	}
	return n
}

func misreadsSentinel(o Options) bool {
	if o.Workers > 1 { // want `misreads the 0=GOMAXPROCS sentinel`
		return true
	}
	return o.Workers == 0 // want `misreads the 0=GOMAXPROCS sentinel`
}

func fineUses(o Options) int {
	// Comparing a non-Workers field with a literal is fine.
	if o.Depth > 1 {
		return o.Depth
	}
	// Passing Workers through untouched is the sanctioned pattern.
	return configure(o.Workers)
}

func configure(workers int) int { return workers }

func suppressed(o Options) bool {
	//vqelint:ignore workerssemantics reporting only, not resolving
	return o.Workers != 1
}
