// Package ctxflow is the golden fixture for the ctxflow analyzer:
// context.Background/TODO discipline and cancellation-observing loops.
package ctxflow

import (
	"context"
	"time"
)

func backgroundNoCtx() {
	ctx := context.Background() // want `context\.Background\(\) outside main or test`
	_ = ctx
}

func todoNoCtx() {
	ctx := context.TODO() // want `context\.TODO\(\) outside main or test`
	_ = ctx
}

func backgroundWithCtxInScope(ctx context.Context) {
	other := context.Background() // want `context\.Background\(\) while a context\.Context parameter is in scope`
	_ = other
	_ = ctx
}

// Even inside a nested literal the outer ctx parameter is in scope.
func backgroundInClosure(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want `context\.Background\(\) while a context\.Context parameter is in scope`
	}
}

// The shim exemption does not apply when a context is available.
func severedChain(ctx context.Context) error {
	return withCtx(context.Background()) // want `context\.Background\(\) while a context\.Context parameter is in scope`
}

func spinNoCancel(ch chan int) {
	for { // want `unbounded for loop blocks \(channel receive\) without observing ctx\.Done`
		v := <-ch
		_ = v
	}
}

func loopSleeps() {
	for { // want `unbounded for loop blocks \(time\.Sleep\) without observing ctx\.Done`
		time.Sleep(time.Second)
	}
}

func selectLoopNoExit(a, b chan int) {
	for { // want `unbounded for loop blocks \(select\) without observing ctx\.Done`
		select {
		case v := <-a:
			_ = v
		case v := <-b:
			_ = v
		}
	}
}

// --- negative cases: no diagnostics expected below ---

// Delegation shim: the whole body is one return threading a fresh root;
// this is the adapter idiom for context-free callers.
func shimOK() error {
	return withCtx(context.Background())
}

func withCtx(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

func loopObservesCtx(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
		}
	}
}

// Closed-channel shutdown idiom: a receive clause that leaves the loop.
func loopClosedChannelOK(done chan struct{}, ch chan int) {
	for {
		select {
		case <-done:
			return
		case v := <-ch:
			_ = v
		}
	}
}

// Bounded loops may block; they terminate by construction.
func boundedLoopOK(ch chan int) {
	for i := 0; i < 3; i++ {
		<-ch
	}
}

// A spin loop with no blocking operation is not ctxflow's concern.
func busyLoopOK() int {
	n := 0
	for {
		n++
		if n > 10 {
			return n
		}
	}
}
