package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WorkersSemantics enforces the Workers convention established in PR 1:
// a Workers field of 0 means GOMAXPROCS and 1 means serial, and the
// 0→GOMAXPROCS resolution happens in exactly one place — internal/state
// (state.New, state.NewPool, state.ResolveWorkers).
//
// Two mistakes recur when the convention is enforced only by review:
//
//  1. a package calls runtime.GOMAXPROCS (or runtime.NumCPU) itself to
//     re-derive the default, drifting from the engine's resolution; and
//  2. a caller compares a raw Workers field against a literal
//     (`opts.Workers > 1`), misreading the 0 sentinel as "serial" when
//     it actually means "all cores".
//
// Both are flagged outside internal/state. Sites with a genuine reason
// (e.g. a run report recording the process's GOMAXPROCS) carry a
// //vqelint:ignore directive.
var WorkersSemantics = &Analyzer{
	Name: "workerssemantics",
	Doc: "flag runtime.GOMAXPROCS/NumCPU calls and raw Workers-field comparisons " +
		"outside internal/state (Workers: 0=GOMAXPROCS, 1=serial, resolved by state)",
	Run: runWorkersSemantics,
}

func runWorkersSemantics(pass *Pass) error {
	if pkgPathMatches(strings.TrimSuffix(pass.Pkg.Path(), ".test"), "internal/state") ||
		strings.HasSuffix(pass.Pkg.Path(), "internal/state") {
		return nil // the one place allowed to resolve the sentinel
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue // tests may assert raw Workers values directly
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass.Info, x, "runtime", "GOMAXPROCS") {
					pass.ReportRangef(x, "resolve worker counts through internal/state (state.ResolveWorkers); "+
						"calling runtime.GOMAXPROCS here duplicates the Workers=0 default")
				}
				if isPkgFunc(pass.Info, x, "runtime", "NumCPU") {
					pass.ReportRangef(x, "resolve worker counts through internal/state (state.ResolveWorkers); "+
						"calling runtime.NumCPU here duplicates the Workers=0 default")
				}
			case *ast.BinaryExpr:
				if !isComparison(x.Op) {
					return true
				}
				field, lit := workersFieldAndLiteral(pass, x.X, x.Y)
				if field == nil {
					field, lit = workersFieldAndLiteral(pass, x.Y, x.X)
				}
				if field != nil {
					pass.ReportRangef(x, "comparing the raw Workers field with %s misreads the 0=GOMAXPROCS sentinel; "+
						"pass it through to state/pauli options or normalize with state.ResolveWorkers first", lit)
				}
			}
			return true
		})
	}
	return nil
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// workersFieldAndLiteral reports whether a is a struct field named
// Workers and b an integer literal; it returns the field expression and
// the literal's source form.
func workersFieldAndLiteral(pass *Pass, a, b ast.Expr) (ast.Expr, string) {
	sel, ok := ast.Unparen(a).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Workers" {
		return nil, ""
	}
	obj := pass.ObjectOf(sel.Sel)
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return nil, ""
	}
	blit, ok := ast.Unparen(b).(*ast.BasicLit)
	if !ok || blit.Kind != token.INT {
		return nil, ""
	}
	return sel, blit.Value
}
