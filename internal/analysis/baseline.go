package analysis

// Baseline suppression: a committed lint_baseline.json records accepted
// findings so new code is held to the full bar while legacy debt is
// paid down deliberately. Entries are keyed by analyzer + module-root-
// relative file + enclosing function + a hash of the message — never by
// line number, so unrelated edits to a file do not invalidate the
// baseline. Each entry carries a count; a run may match at most that
// many findings with the same key, so *new* instances of a baselined
// pattern in the same function still fail the gate.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A BaselineEntry is one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root relative, slash separated
	Func     string `json:"func"` // enclosing function, "Recv.Method" for methods
	Hash     string `json:"hash"` // fnv-1a/64 of the message, hex
	// Message is informational for reviewers; matching uses Hash.
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// A Baseline is the decoded lint_baseline.json.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineVersion is bumped if the key derivation changes.
const BaselineVersion = 1

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Func + "\x00" + e.Hash
}

// LoadBaseline reads a baseline file. A missing file yields an empty
// baseline, not an error: the gate then requires a fully clean tree.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: BaselineVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("%s: baseline version %d, tool expects %d (regenerate with -update-baseline)", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// WriteBaseline serializes b with stable ordering.
func WriteBaseline(path string, b *Baseline) error {
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// A BaselineMatcher consumes baseline entries as findings match them.
type BaselineMatcher struct {
	remaining map[string]int
}

// NewBaselineMatcher builds a matcher over the baseline's counts.
func NewBaselineMatcher(b *Baseline) *BaselineMatcher {
	m := &BaselineMatcher{remaining: map[string]int{}}
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		m.remaining[e.key()] += n
	}
	return m
}

// Match reports whether the entry is baselined, consuming one count.
func (m *BaselineMatcher) Match(e BaselineEntry) bool {
	if m.remaining[e.key()] > 0 {
		m.remaining[e.key()]--
		return true
	}
	return false
}

// EntryFor derives the baseline key material for a diagnostic: the
// module-root-relative file, the enclosing function, and the message
// hash.
func EntryFor(fset *token.FileSet, files []*ast.File, modRoot string, d Diagnostic) BaselineEntry {
	pos := fset.Position(d.Pos)
	file := pos.Filename
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return BaselineEntry{
		Analyzer: d.Category,
		File:     filepath.ToSlash(file),
		Func:     FuncFor(files, d.Pos),
		Hash:     messageHash(d.Message),
		Message:  d.Message,
		Count:    1,
	}
}

func messageHash(msg string) string {
	h := fnv.New64a()
	h.Write([]byte(msg))
	return fmt.Sprintf("%016x", h.Sum64())
}

// FuncFor names the function declaration enclosing pos ("Recv.Method"
// for methods, "Name" for functions, "" at package scope). Function
// literals are attributed to their enclosing declaration.
func FuncFor(files []*ast.File, pos token.Pos) string {
	for _, f := range files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		name := ""
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return name == "" // don't descend past the first match
			}
			if pos < fd.Pos() || pos >= fd.End() {
				return false
			}
			name = fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				name = recvTypeName(fd.Recv.List[0].Type) + "." + name
			}
			return false
		})
		return name
	}
	return ""
}

func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(x.X)
	case *ast.IndexListExpr:
		return recvTypeName(x.X)
	}
	return "?"
}

// FindModuleRoot walks up from dir to the directory holding go.mod, so
// baseline file paths stay stable regardless of the working directory.
// Returns "" when no module root is found.
func FindModuleRoot(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
