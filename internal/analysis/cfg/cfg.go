// Package cfg builds intra-procedural control-flow graphs for Go
// function bodies and provides a small fixed-point dataflow driver over
// them (dataflow.go). Like the parent analysis framework it is built on
// the standard library alone, so the lint suite keeps its
// zero-dependency property.
//
// The graph is statement-granular: every basic block is a maximal
// straight-line run of statements (guard expressions of if/for/switch
// appear as the last node of the block that evaluates them), and edges
// follow Go control-flow semantics for if/for/range/switch/select,
// labeled break/continue, goto, and fallthrough. Return statements and
// the fall-off-the-end path edge into a synthetic Exit block. Statements
// after a terminator land in fresh blocks with no predecessors, so dead
// code never feeds a dataflow solution seeded at Entry.
//
// Two deliberate approximations keep the graph useful for linting:
//
//   - Deferred calls are not spliced into every exit edge; they are
//     collected in Graph.Defers (source order) and analyses model them
//     as running on each path into Exit. Conditionally registered defers
//     are therefore treated as always registered — the usual vet-style
//     approximation.
//   - panic and the well-known no-return calls (os.Exit, log.Fatal*,
//     runtime.Goexit, testing's Fatal/FailNow/Skip family) terminate
//     their block with no successors: abnormal unwinding is invisible to
//     forward analyses, which lets lock- and timer-discipline checks
//     reason about normal paths without drowning in panic edges.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is Blocks[0]; execution starts here.
	Entry *Block
	// Exit is Blocks[1]; every return and the fall-off-the-end path lead
	// here. A function whose every path ends in panic has an unreachable
	// Exit.
	Exit *Block
	// Blocks holds every block, reachable or not.
	Blocks []*Block
	// Defers lists defer statements in source order. Analyses treat them
	// as running (last first) on every edge into Exit.
	Defers []*ast.DeferStmt
}

// A Block is one basic block: Nodes execute in order, then control
// transfers to one of Succs.
type Block struct {
	Index int
	// Kind labels the block's role for debugging and tests: "entry",
	// "exit", "if.then", "for.head", "select.case", "label.L", ...
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelBlocks{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.current = g.Entry
	b.stmtList(body.List)
	b.jumpTo(g.Exit)
	return g
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the canonical iteration order for forward dataflow.
func (g *Graph) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				visit(s)
			}
		}
		post = append(post, b)
	}
	visit(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// labelBlocks tracks the control targets a label can name.
type labelBlocks struct {
	// land is where `goto L` and the labeled statement itself enter.
	land *Block
	// brk/cont are set while the labeled loop/switch/select is being
	// built, for `break L` / `continue L`.
	brk, cont *Block
}

// A target is one enclosing breakable/continuable construct.
type target struct {
	label string // "" if unlabeled
	brk   *Block
	cont  *Block // nil for switch/select
}

type builder struct {
	g       *Graph
	current *Block
	targets []*target
	labels  map[string]*labelBlocks
	// pendingLabel names the label attached to the next loop/switch/
	// select statement, if any.
	pendingLabel string
	// fallFrom is the block ending in `fallthrough`, consumed by the
	// next case clause.
	fallFrom *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jumpTo edges the current block into to and continues in a fresh
// unreachable block (callers that fall through instead use setCurrent).
func (b *builder) jumpTo(to *Block) {
	b.edge(b.current, to)
	b.current = b.newBlock("unreachable")
}

// enter edges the current block into to and continues building in to.
func (b *builder) enter(to *Block) {
	b.edge(b.current, to)
	b.current = to
}

func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

func (b *builder) label(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{land: b.newBlock("label." + name)}
		b.labels[name] = lb
	}
	return lb
}

// takeLabel consumes the pending label for a loop/switch/select and
// returns it (registering break/continue targets happens at pushTarget).
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushTarget(label string, brk, cont *Block) {
	b.targets = append(b.targets, &target{label: label, brk: brk, cont: cont})
	if label != "" {
		lb := b.label(label)
		lb.brk, lb.cont = brk, cont
	}
}

func (b *builder) popTarget() {
	t := b.targets[len(b.targets)-1]
	b.targets = b.targets[:len(b.targets)-1]
	if t.label != "" {
		lb := b.labels[t.label]
		lb.brk, lb.cont = nil, nil
	}
}

// findTarget resolves an unlabeled or labeled break/continue.
func (b *builder) findTarget(label string, wantCont bool) *Block {
	if label != "" {
		lb := b.labels[label]
		if lb == nil {
			return nil
		}
		if wantCont {
			return lb.cont
		}
		return lb.brk
	}
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if wantCont {
			if t.cont != nil {
				return t.cont
			}
			continue
		}
		return t.brk
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.label(s.Label.Name)
		b.enter(lb.land)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK, token.CONTINUE:
			if t := b.findTarget(labelName(s.Label), s.Tok == token.CONTINUE); t != nil {
				b.add(s)
				b.jumpTo(t)
			}
		case token.GOTO:
			b.add(s)
			b.jumpTo(b.label(s.Label.Name).land)
		case token.FALLTHROUGH:
			b.fallFrom = b.current
			b.current = b.newBlock("unreachable")
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.current
		join := b.newBlock("if.done")
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.current = then
		b.stmt(s.Body)
		b.edge(b.current, join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.current = els
			b.stmt(s.Else)
			b.edge(b.current, join)
		} else {
			b.edge(cond, join)
		}
		b.current = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		b.enter(head)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		done := b.newBlock("for.done")
		if s.Cond != nil {
			// A nil condition loops forever: done is reachable only
			// through break.
			b.edge(head, done)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		body := b.newBlock("for.body")
		b.edge(head, body)
		b.current = body
		b.pushTarget(label, done, cont)
		b.stmt(s.Body)
		b.popTarget()
		if post != nil {
			b.edge(b.current, post)
			b.current = post
			b.stmt(s.Post)
		}
		b.edge(b.current, head)
		b.current = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.enter(head)
		// The range statement itself stands for the per-iteration
		// key/value binding and the iterable evaluation.
		b.add(s)
		done := b.newBlock("range.done")
		body := b.newBlock("range.body")
		b.edge(head, done)
		b.edge(head, body)
		b.current = body
		b.pushTarget(label, done, head)
		b.stmt(s.Body)
		b.popTarget()
		b.edge(b.current, head)
		b.current = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body, "typeswitch")

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.current
		done := b.newBlock("select.done")
		b.pushTarget(label, done, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			b.edge(head, blk)
			b.current = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.current, done)
		}
		b.popTarget()
		if len(s.Body.List) == 0 {
			// `select {}` blocks forever.
			b.current = b.newBlock("unreachable")
		} else {
			b.current = done
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && NoReturn(call) {
			// panic/os.Exit/...: the path ends without reaching Exit.
			b.current = b.newBlock("unreachable")
		}

	case nil:
		// e.g. an empty else

	default:
		// Assignments, declarations, sends, go statements, increments,
		// empty statements: straight-line.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch clause structure.
func (b *builder) caseClauses(label string, body *ast.BlockStmt, kind string) {
	head := b.current
	done := b.newBlock(kind + ".done")
	b.pushTarget(label, done, nil)
	hasDefault := false
	b.fallFrom = nil
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock(kind + ".case")
		b.edge(head, blk)
		if cc.List == nil {
			hasDefault = true
		}
		if b.fallFrom != nil {
			b.edge(b.fallFrom, blk)
			b.fallFrom = nil
		}
		b.current = blk
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		if b.fallFrom == nil {
			b.edge(b.current, done)
		}
	}
	b.fallFrom = nil
	b.popTarget()
	if !hasDefault {
		b.edge(head, done)
	}
	b.current = done
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// NoReturn reports whether call syntactically never returns: panic, or a
// name-based match on the well-known terminators (os.Exit, log.Fatal*,
// runtime.Goexit, testing's Fatal/Fatalf/FailNow/Skip family). The check
// is untyped on purpose — the cfg package has no type information — and
// errs toward returning false.
func NoReturn(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		base, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch fn.Sel.Name {
		case "Exit":
			return base.Name == "os"
		case "Goexit":
			return base.Name == "runtime"
		case "Fatal", "Fatalf", "Fatalln":
			return base.Name == "log" || base.Name == "t" || base.Name == "b" || base.Name == "tb"
		case "FailNow", "Skip", "Skipf", "SkipNow":
			return base.Name == "t" || base.Name == "b" || base.Name == "tb"
		}
	}
	return false
}
