package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a single function declaration.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// blockByKind returns the first block with the given kind.
func blockByKind(t *testing.T, g *Graph, kind string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no block of kind %q; have %v", kind, kinds(g))
	return nil
}

func kinds(g *Graph) []string {
	var out []string
	for _, b := range g.Blocks {
		out = append(out, fmt.Sprintf("%d:%s", b.Index, b.Kind))
	}
	return out
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestIfJoin(t *testing.T) {
	g := New(parseBody(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		_ = x
	`))
	cond := g.Entry
	then := blockByKind(t, g, "if.then")
	els := blockByKind(t, g, "if.else")
	join := blockByKind(t, g, "if.done")
	if !hasEdge(cond, then) || !hasEdge(cond, els) {
		t.Error("condition block should branch to then and else")
	}
	if !hasEdge(then, join) || !hasEdge(els, join) {
		t.Error("both arms should join")
	}
	if !hasEdge(join, g.Exit) {
		t.Error("join should fall off the end into exit")
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := New(parseBody(t, `
		if true {
			return
		}
		println("after")
	`))
	then := blockByKind(t, g, "if.then")
	if !hasEdge(then, g.Exit) {
		t.Error("return should edge into exit")
	}
	if len(then.Nodes) != 1 {
		t.Errorf("then block should hold just the return, has %d nodes", len(then.Nodes))
	}
	if _, ok := then.Nodes[0].(*ast.ReturnStmt); !ok {
		t.Errorf("then block node is %T, want *ast.ReturnStmt", then.Nodes[0])
	}
}

// TestForNilCondHasNoExitEdge pins the property ctxflow depends on: a
// `for {}` loop's done block is reachable only through break.
func TestForNilCondHasNoExitEdge(t *testing.T) {
	g := New(parseBody(t, `
		for {
			println("spin")
		}
	`))
	head := blockByKind(t, g, "for.head")
	done := blockByKind(t, g, "for.done")
	if hasEdge(head, done) {
		t.Error("nil-cond loop head must not edge to done")
	}
	if len(done.Preds) != 0 {
		t.Error("done should be unreachable without a break")
	}
	body := blockByKind(t, g, "for.body")
	if !hasEdge(body, head) {
		t.Error("body should loop back to head")
	}
	// The loop never exits, so Exit must be unreachable.
	for _, b := range g.ReversePostorder() {
		if b == g.Exit {
			t.Error("exit should be unreachable from entry")
		}
	}
}

func TestForCondAndPost(t *testing.T) {
	g := New(parseBody(t, `
		for i := 0; i < 10; i++ {
			println(i)
		}
	`))
	head := blockByKind(t, g, "for.head")
	body := blockByKind(t, g, "for.body")
	post := blockByKind(t, g, "for.post")
	done := blockByKind(t, g, "for.done")
	if !hasEdge(head, body) || !hasEdge(head, done) {
		t.Error("cond head should branch to body and done")
	}
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Error("body should flow through post back to head")
	}
}

// TestSelectEdges: every comm clause is a successor of the block that
// reaches the select; all clauses join (or escape via return).
func TestSelectEdges(t *testing.T) {
	g := New(parseBody(t, `
		ch := make(chan int)
		done := make(chan struct{})
		for {
			select {
			case v := <-ch:
				println(v)
			case <-done:
				return
			default:
				println("idle")
			}
		}
	`))
	cases := 0
	var ret *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "select.case":
			cases++
			if len(b.Preds) != 1 || b.Preds[0].Kind != "for.body" {
				t.Errorf("select case should be entered from the loop body, preds %v", b.Preds)
			}
			for _, n := range b.Nodes {
				if _, ok := n.(*ast.ReturnStmt); ok {
					ret = b
				}
			}
		case "select.default":
			cases++
		}
	}
	if cases != 3 {
		t.Fatalf("want 3 comm clause blocks, got %d", cases)
	}
	if ret == nil {
		t.Fatal("no clause holds the return")
	}
	if !hasEdge(ret, g.Exit) {
		t.Error("returning clause should edge to exit")
	}
	join := blockByKind(t, g, "select.done")
	if !hasEdge(join, blockByKind(t, g, "for.head")) {
		t.Error("select join should loop back to the for head")
	}
}

// TestLabeledBreak: `break outer` from a nested loop must edge to the
// outer loop's done block, not the inner one's.
func TestLabeledBreak(t *testing.T) {
	g := New(parseBody(t, `
	outer:
		for {
			for i := 0; i < 3; i++ {
				if i == 1 {
					break outer
				}
			}
		}
		println("after")
	`))
	// The outer (nil-cond) loop's done block follows label.outer's head.
	var outerDone, innerDone *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.done" {
			if innerDone == nil {
				// Blocks are created in construction order: the outer
				// loop's done block is allocated first.
				outerDone = b
			} else {
				t.Fatal("more than two for.done blocks")
			}
		}
	}
	// Construction order: outer for.done is created before the inner
	// loop is built, so identify by reachability instead: the outer done
	// leads to the trailing println and then exit.
	outerDone = nil
	for _, b := range g.Blocks {
		if b.Kind != "for.done" {
			continue
		}
		if len(b.Preds) > 0 && b.Preds[0].Kind == "if.then" {
			outerDone = b // entered via the labeled break
		} else {
			innerDone = b
		}
	}
	if outerDone == nil {
		t.Fatalf("no for.done entered from the break's block; kinds: %v", kinds(g))
	}
	if innerDone == nil || len(innerDone.Preds) == 0 {
		t.Error("inner loop's done should still be reachable via its condition")
	}
	// The labeled break's block carries the BranchStmt.
	found := false
	for _, n := range outerDone.Preds[0].Nodes {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK && br.Label.Name == "outer" {
			found = true
		}
	}
	if !found {
		t.Error("break outer statement not recorded in its block")
	}
}

func TestGotoAndLabel(t *testing.T) {
	g := New(parseBody(t, `
		i := 0
	again:
		i++
		if i < 3 {
			goto again
		}
	`))
	land := blockByKind(t, g, "label.again")
	then := blockByKind(t, g, "if.then")
	if !hasEdge(then, land) {
		t.Error("goto should edge back to the label's landing block")
	}
	if !hasEdge(g.Entry, land) {
		t.Error("fallthrough into the label should also edge to the landing block")
	}
}

// TestDefersCollected: defer statements are recorded in source order and
// stay in their blocks' node lists.
func TestDefersCollected(t *testing.T) {
	g := New(parseBody(t, `
		defer println("first")
		if true {
			defer println("second")
			return
		}
		defer println("third")
	`))
	if len(g.Defers) != 3 {
		t.Fatalf("want 3 defers, got %d", len(g.Defers))
	}
	for i, want := range []string{"first", "second", "third"} {
		lit := g.Defers[i].Call.Args[0].(*ast.BasicLit)
		if lit.Value != `"`+want+`"` {
			t.Errorf("Defers[%d] = %s, want %q", i, lit.Value, want)
		}
	}
	// The deferred statement also appears as a node of its block so
	// analyses see registration order.
	foundInEntry := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			foundInEntry = true
		}
	}
	if !foundInEntry {
		t.Error("first defer should be a node of the entry block")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := New(parseBody(t, `
		x := 2
		switch x {
		case 1:
			println("one")
			fallthrough
		case 2:
			println("two")
		default:
			println("other")
		}
	`))
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("want 3 case blocks, got %d", len(cases))
	}
	// case 1 falls through into case 2: case 2 has two preds (head +
	// case 1).
	if !hasEdge(cases[0], cases[1]) {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
	head := g.Entry
	done := blockByKind(t, g, "switch.done")
	for _, c := range cases {
		if !hasEdge(head, c) {
			t.Errorf("head should branch to every case, missing %d", c.Index)
		}
	}
	if hasEdge(head, done) {
		t.Error("switch with a default should not edge head straight to done")
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	g := New(parseBody(t, `
		if true {
			panic("boom")
		}
		println("ok")
	`))
	then := blockByKind(t, g, "if.then")
	if len(then.Succs) != 0 {
		t.Errorf("panic block should have no successors, has %d", len(then.Succs))
	}
}

// TestRangeLoop: range head branches to body and done; body loops back.
func TestRangeLoop(t *testing.T) {
	g := New(parseBody(t, `
		xs := []int{1, 2}
		for _, x := range xs {
			println(x)
		}
	`))
	head := blockByKind(t, g, "range.head")
	body := blockByKind(t, g, "range.body")
	done := blockByKind(t, g, "range.done")
	if !hasEdge(head, body) || !hasEdge(head, done) || !hasEdge(body, head) {
		t.Error("range edges wrong")
	}
}

// TestForwardSolve runs a tiny reaching-"marker" analysis over a branchy
// body to pin the driver's join behavior.
func TestForwardSolve(t *testing.T) {
	g := New(parseBody(t, `
		x := 0
		if x > 0 {
			x = 1
		}
		println(x)
	`))
	// State: set of visited block kinds, union join.
	type S = map[string]bool
	p := &ForwardProblem[S]{
		Entry: S{},
		Join: func(a, b S) S {
			m := S{}
			for k := range a {
				m[k] = true
			}
			for k := range b {
				m[k] = true
			}
			return m
		},
		Equal: func(a, b S) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in S) S {
			m := S{b.Kind: true}
			for k := range in {
				m[k] = true
			}
			return m
		},
	}
	in := p.Solve(g)
	join := blockByKind(t, g, "if.done")
	s, ok := in[join]
	if !ok {
		t.Fatal("join block unsolved")
	}
	if !s["entry"] || !s["if.then"] {
		t.Errorf("join in-state should include entry and then, got %v", s)
	}
	if _, ok := in[g.Exit]; !ok {
		t.Error("exit should be solved")
	}
}
