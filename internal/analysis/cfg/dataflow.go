package cfg

// A ForwardProblem is a monotone forward dataflow problem over a Graph.
// States of type S flow from Entry along edges; Join merges the
// out-states of a block's predecessors and Transfer computes a block's
// out-state from its in-state. Join and Transfer must not mutate their
// arguments (treat states as immutable values and copy on write), and
// the framework must be monotone for the iteration to terminate.
type ForwardProblem[S any] struct {
	// Entry is the state on function entry.
	Entry S
	// Join merges two predecessor out-states (set union for may-
	// analyses, intersection for must-analyses).
	Join func(a, b S) S
	// Equal is the fixed-point test.
	Equal func(a, b S) bool
	// Transfer computes the block's out-state from its in-state.
	Transfer func(b *Block, in S) S
}

// Solve iterates to a fixed point and returns the in-state of every
// block reachable from Entry. Blocks absent from the map are dead code.
func (p *ForwardProblem[S]) Solve(g *Graph) map[*Block]S {
	rpo := g.ReversePostorder()
	in := make(map[*Block]S, len(rpo))
	out := make(map[*Block]S, len(rpo))

	queued := make([]bool, len(g.Blocks))
	work := make([]*Block, len(rpo))
	copy(work, rpo)
	for _, b := range work {
		queued[b.Index] = true
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		s := p.Entry
		have := b == g.Entry
		for _, pred := range b.Preds {
			o, ok := out[pred]
			if !ok {
				continue // predecessor not reached yet (or dead)
			}
			if !have {
				s, have = o, true
			} else {
				s = p.Join(s, o)
			}
		}
		if !have {
			continue // only dead predecessors: skip until one is solved
		}
		in[b] = s
		ns := p.Transfer(b, s)
		if old, ok := out[b]; ok && p.Equal(old, ns) {
			continue
		}
		out[b] = ns
		for _, succ := range b.Succs {
			if !queued[succ.Index] {
				queued[succ.Index] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
