// Package analysistest runs analyzers over golden fixture packages. A
// fixture is a directory of Go files under testdata/src/<name>; expected
// findings are written inline as trailing comments:
//
//	x := telemetry.Now() // want `never observed`
//
// Each `// want` comment holds one or more backquoted regular
// expressions, every one of which must match a diagnostic reported on
// that line; diagnostics on lines without a matching want (and wants
// without a diagnostic) fail the test. This mirrors the
// golang.org/x/tools analysistest contract closely enough that fixtures
// read the same way.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile("`([^`]+)`")

// Run loads the fixture directory as a single package and checks a's
// diagnostics against the fixture's want comments. The package is given
// the synthetic import path "repro/internal/<base name>" so path-scoped
// analyzers (panicdiscipline, workerssemantics) see an internal package;
// a directory named like "cmdfixture_outside" can opt out by containing
// a file "importpath.txt" with the desired path.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg := load(t, dir)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	check(t, a.Name, pkg, dir, diags)
}

func load(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	importPath := "repro/internal/" + filepath.Base(dir)
	for _, e := range entries {
		switch {
		case e.Name() == "importpath.txt":
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			importPath = strings.TrimSpace(string(data))
		case strings.HasSuffix(e.Name(), ".go"):
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s holds no Go files", dir)
	}
	// The loader shells out to `go list` for export data; run it from
	// the module root so "repro/..." imports resolve.
	loader := analysis.NewLoader(moduleRoot(t, dir))
	pkg, err := loader.LoadFiles(importPath, dir, files)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.TypeErrors)
	}
	return pkg
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(t *testing.T, dir string) string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

type wantKey struct {
	file string
	line int
}

func check(t *testing.T, name string, pkg *analysis.Package, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}

	matched := map[wantKey][]bool{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		patterns := wants[key]
		found := false
		for i, re := range patterns {
			if re.MatchString(d.Message) {
				if matched[key] == nil {
					matched[key] = make([]bool, len(patterns))
				}
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, name, d.Message)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, re := range wants[k] {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s:%d: expected %s diagnostic matching %q, got none", k.file, k.line, name, re)
			}
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, fmt.Sprintf("  %s: %s", pkg.Fset.Position(d.Pos), d.Message))
		}
		t.Logf("all %s diagnostics for %s:\n%s", name, dir, strings.Join(all, "\n"))
	}
}
