package analysis

// goroutinelife requires every `go` statement in non-test code to carry
// a provable termination or hand-off signal, so no goroutine is
// fire-and-forget:
//
//   - a sync.WaitGroup: Done called in the goroutine body (with an
//     Add visible before the go statement also accepted for named
//     calls), and if Done is called inline rather than deferred, a CFG
//     check proves it runs on every path to the goroutine's exit;
//   - a context: the body consults ctx.Done()/ctx.Err() or passes a
//     context on to a callee that will;
//   - a channel: the body sends, receives, closes, ranges over, or
//     selects on a channel — its lifetime is then bounded by its peers.
//
// Named calls (`go s.worker()`) are accepted when any argument is a
// context, channel, or *sync.WaitGroup, or when a WaitGroup.Add call
// appears earlier in the spawning body; receivers can hide the signal
// (a stored context), so the analyzer deliberately does not chase them
// — add a //vqelint:ignore with the reason if the lifetime is managed
// inside the callee.

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/cfg"
)

var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc: "check that every go statement has a termination signal " +
		"(WaitGroup, context, or channel)",
	Run: runGoroutineLife,
}

func runGoroutineLife(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		funcBodies(file, func(body *ast.BlockStmt) {
			inspectShallow(body, func(n ast.Node) {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, body, g)
				}
			})
		})
	}
	return nil
}

func checkGoStmt(pass *Pass, enclosing *ast.BlockStmt, g *ast.GoStmt) {
	wgAdd := wgAddBefore(pass, enclosing, g)
	lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !isLit {
		if wgAdd || namedCallHasSignal(pass, g.Call) {
			return
		}
		pass.Reportf(g.Pos(), "fire-and-forget goroutine: no WaitGroup, context, or channel ties its lifetime to the caller; it cannot be awaited or cancelled")
		return
	}

	sig := goroutineSignals(pass, lit.Body)
	switch {
	case sig.deferredDone:
		return
	case sig.inlineDone:
		// Done exists but is not deferred: prove it runs on every path.
		if mayExitWithoutDone(pass, lit.Body) {
			pass.Reportf(g.Pos(), "goroutine can reach its exit without calling Done on some path: defer wg.Done() at the top of the goroutine")
		}
		return
	case sig.ctx || sig.channel || wgAdd:
		return
	}
	pass.Reportf(g.Pos(), "fire-and-forget goroutine: no WaitGroup, context, or channel ties its lifetime to the caller; it cannot be awaited or cancelled")
}

type signals struct {
	deferredDone bool
	inlineDone   bool
	ctx          bool
	channel      bool
}

func goroutineSignals(pass *Pass, body *ast.BlockStmt) signals {
	var sig signals
	inspectShallowWithDefers := func(fn func(n ast.Node, inDefer bool)) {
		inspectShallow(body, func(n ast.Node) {
			d, isDefer := n.(*ast.DeferStmt)
			if !isDefer {
				fn(n, false)
				return
			}
			fn(d.Call, true)
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					fn(m, true)
					return true
				})
			}
		})
	}
	inspectShallowWithDefers(func(n ast.Node, inDefer bool) {
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			sig.channel = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				sig.channel = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					sig.channel = true
				}
			}
		case *ast.CallExpr:
			if recv, name, ok := syncMethod(pass, x); ok && recv == "WaitGroup" && name == "Done" {
				if inDefer {
					sig.deferredDone = true
				} else {
					sig.inlineDone = true
				}
			}
			if isContextMethod(pass, x, "Done", "Err") {
				sig.ctx = true
			}
			if id, isIdent := ast.Unparen(x.Fun).(*ast.Ident); isIdent && id.Name == "close" {
				sig.channel = true
			}
			for _, arg := range x.Args {
				if t := pass.TypeOf(arg); t != nil && isContextType(t) {
					sig.ctx = true
				}
			}
		}
	})
	return sig
}

// mayExitWithoutDone runs a may-analysis over the goroutine body: state
// true means some path reached this point without a WaitGroup.Done call.
func mayExitWithoutDone(pass *Pass, body *ast.BlockStmt) bool {
	g := cfg.New(body)
	problem := &cfg.ForwardProblem[bool]{
		Entry: true,
		Join:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(b *cfg.Block, in bool) bool {
			missing := in
			for _, node := range b.Nodes {
				if _, isDefer := node.(*ast.DeferStmt); isDefer {
					continue
				}
				walkBlockNode(node, func(n ast.Node) {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return
					}
					if recv, name, okSync := syncMethod(pass, call); okSync && recv == "WaitGroup" && name == "Done" {
						missing = false
					}
				})
			}
			return missing
		},
	}
	in := problem.Solve(g)
	missing, reachable := in[g.Exit]
	if !reachable {
		return false // exit unreachable: the goroutine never returns normally
	}
	return missing
}

// wgAddBefore reports whether a WaitGroup.Add call appears in the
// spawning body before the go statement.
func wgAddBefore(pass *Pass, body *ast.BlockStmt, g *ast.GoStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() || found {
			return
		}
		if recv, name, okSync := syncMethod(pass, call); okSync && recv == "WaitGroup" && name == "Add" {
			found = true
		}
	})
	return found
}

// namedCallHasSignal reports whether a named go call (`go f(args...)`)
// passes a context, channel, or *sync.WaitGroup to the callee.
func namedCallHasSignal(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := pass.TypeOf(arg)
		if t == nil {
			continue
		}
		if isContextType(t) {
			return true
		}
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			return true
		}
		if p, isPtr := t.(*types.Pointer); isPtr {
			if named, isNamed := p.Elem().(*types.Named); isNamed {
				obj := named.Obj()
				if obj.Name() == "WaitGroup" && obj.Pkg() != nil && pkgPathMatches(obj.Pkg().Path(), "sync") {
					return true
				}
			}
		}
	}
	return false
}
