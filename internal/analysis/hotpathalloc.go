package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc enforces the engine's allocation-free kernel invariant.
//
// The paper's performance results (direct expectation evaluation, gate
// fusion, post-ansatz caching) come from amplitude-sweep loops that run
// 2ⁿ times per gate or term group; a single heap allocation or interface
// box inside one multiplies into GC pressure that erases the batching
// win. Functions carrying a `//vqesim:hotpath` directive (gate kernels in
// internal/state, the pair-sweep/diagonal-collapse loops in
// internal/pauli, the dense vector ops in internal/linalg) are therefore
// held to a machine-checked discipline: no make/new/append, no slice or
// map literals, no string building, no go/defer, no closures (except the
// chunk body handed straight to the worker pool), and no interface boxing
// of concrete values.
//
// Error guards are exempt: an `if` block that ends by panicking may
// allocate freely, since it executes at most once per call and only on
// the failure path.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "flag heap allocation, append, interface boxing, and closure capture " +
		"inside functions annotated //vqesim:hotpath",
	Run: runHotPathAlloc,
}

// poolSubmitters names the methods that accept the one blessed closure:
// the chunk body handed to the persistent worker pool (or its inline
// fallback). The closure is created once per sweep, not per amplitude,
// so it does not break the per-iteration allocation budget.
var poolSubmitters = map[string]bool{
	"parallelFor":    true,
	"parallelReduce": true,
	"Run":            true,
	"ReduceFloat":    true,
	"ReduceComplex":  true,
}

func runHotPathAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		directiveLines := hotpathLines(pass.Fset, file)
		claimed := map[int]bool{}

		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if hasHotpathDoc(fn.Doc) {
					claimDirective(fn.Doc, pass.Fset, directiveLines, claimed)
					if fn.Body != nil {
						checkHotBody(pass, fn.Body, fn.Name.Name)
					}
				}
			case *ast.FuncLit:
				line := pass.Fset.Position(fn.Pos()).Line
				if directiveLines[line-1] && !claimed[line-1] {
					claimed[line-1] = true
					checkHotBody(pass, fn.Body, "func literal")
				}
			}
			return true
		})

		// Any unclaimed directive is a misplaced annotation: it silently
		// protects nothing, which is worse than a missing one.
		for line := range directiveLines {
			if !claimed[line] {
				pass.Report(Diagnostic{
					Pos:     lineStartPos(pass.Fset, file, line),
					Message: "misplaced //vqesim:hotpath: directive must immediately precede a function declaration or literal",
				})
			}
		}
	}
	return nil
}

// hotpathLines returns the set of lines in file carrying the hotpath
// directive as a standalone comment (doc-comment directives are handled
// through FuncDecl.Doc).
func hotpathLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, hotpathDirective) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// claimDirective marks the directive lines inside a declaration's doc
// comment as claimed.
func claimDirective(doc *ast.CommentGroup, fset *token.FileSet, directives, claimed map[int]bool) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		line := fset.Position(c.Pos()).Line
		if directives[line] {
			claimed[line] = true
		}
	}
}

func hasHotpathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// lineStartPos returns a position on the given line of file (best
// effort: the position of the first comment on that line, else the file
// start).
func lineStartPos(fset *token.FileSet, file *ast.File, line int) token.Pos {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line == line {
				return c.Pos()
			}
		}
	}
	return file.Pos()
}

// checkHotBody walks one annotated function body and reports every
// allocation-risky construct outside panic guards.
func checkHotBody(pass *Pass, body *ast.BlockStmt, name string) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if endsInPanic(x.Body) {
				// Error guard: allocate-to-panic is fine. Still walk the
				// condition and any else branch.
				ast.Inspect(x.Cond, walk)
				if x.Else != nil {
					ast.Inspect(x.Else, walk)
				}
				return false
			}
		case *ast.CallExpr:
			return checkHotCall(pass, x, walk)
		case *ast.CompositeLit:
			switch pass.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				pass.ReportRangef(x, "hot path: slice literal allocates (function %s is //vqesim:hotpath)", name)
			case *types.Map:
				pass.ReportRangef(x, "hot path: map literal allocates (function %s is //vqesim:hotpath)", name)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.ReportRangef(x, "hot path: &composite literal escapes to the heap (function %s is //vqesim:hotpath)", name)
				}
			}
		case *ast.FuncLit:
			pass.ReportRangef(x, "hot path: closure allocates and captures (function %s is //vqesim:hotpath); only pool chunk bodies may be literals", name)
			return false
		case *ast.GoStmt:
			pass.ReportRangef(x, "hot path: go statement spawns a goroutine per call (function %s is //vqesim:hotpath); use the persistent worker pool", name)
		case *ast.DeferStmt:
			pass.ReportRangef(x, "hot path: defer allocates a frame record (function %s is //vqesim:hotpath)", name)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(pass.TypeOf(x.X)) {
				pass.ReportRangef(x, "hot path: string concatenation allocates (function %s is //vqesim:hotpath)", name)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkHotCall vets one call inside a hot body: allocating builtins,
// string conversions, interface boxing of concrete arguments, and the
// pool-submitter closure exemption.
func checkHotCall(pass *Pass, call *ast.CallExpr, walk func(ast.Node) bool) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.ReportRangef(call, "hot path: append may grow and allocate; use a fixed-size buffer")
			case "make":
				pass.ReportRangef(call, "hot path: make allocates; hoist the buffer out of the kernel")
			case "new":
				pass.ReportRangef(call, "hot path: new allocates")
			}
			return true
		}
	}

	// Conversions to/from string allocate.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.TypeOf(call.Args[0])
		if isStringType(to) != isStringType(from) && (isStringType(to) || isStringType(from)) {
			if isByteOrRuneSlice(to) || isByteOrRuneSlice(from) {
				pass.ReportRangef(call, "hot path: string conversion copies and allocates")
			}
		}
		return true
	}

	// Interface boxing: a concrete non-pointer argument passed to an
	// interface-typed parameter allocates (the value escapes into the
	// interface's data word).
	if sig, ok := pass.TypeOf(call.Fun).(*types.Signature); ok {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt == nil || !types.IsInterface(pt) {
				continue
			}
			at := pass.TypeOf(arg)
			if at == nil || types.IsInterface(at) || isUntypedNil(at) {
				continue
			}
			if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
				continue // pointers fit the interface data word: no box
			}
			pass.ReportRangef(arg, "hot path: passing %s to interface parameter boxes the value (allocates)", types.TypeString(at, types.RelativeTo(pass.Pkg)))
		}
	}

	// Pool-submitter exemption: closures handed directly to the worker
	// pool are created once per sweep and are the sanctioned chunking
	// idiom — walk their bodies strictly but don't flag the literal.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && poolSubmitters[sel.Sel.Name] {
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk)
			} else {
				ast.Inspect(arg, walk)
			}
		}
		ast.Inspect(call.Fun, walk)
		return false
	}
	return true
}

// endsInPanic reports whether every terminating path of block is a panic
// call — the shape of an error guard. (We only look at the last
// statement; guards in this codebase are single-purpose.)
func endsInPanic(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	last := block.List[len(block.List)-1]
	expr, ok := last.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
