// Package analysis is a self-contained static-analysis framework plus a
// suite of project-specific analyzers enforcing the simulator's hot-path
// and concurrency invariants (see the individual analyzer files). The
// framework mirrors the golang.org/x/tools/go/analysis API surface the
// suite needs — Analyzer, Pass, Diagnostic, SuggestedFix — but is built
// on the standard library alone (go/ast, go/types, and export data
// resolved through `go list -export`), so the module keeps its
// zero-dependency property and the tools work on air-gapped machines.
//
// The suite is driven by cmd/vqelint, which runs standalone over package
// patterns or as a `go vet -vettool` plugin, and by the analysistest
// golden harness under internal/analysis/analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vqelint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `vqelint -list`.
	Doc string
	// Run applies the check to one package and reports findings through
	// the pass. A non-nil error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// A Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker's facts for the package's syntax.
	Info *types.Info

	diagnostics []Diagnostic
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // or NoPos
	Category string    // analyzer name
	Message  string
	// SuggestedFixes, when non-empty, lets `vqelint -fix` rewrite the
	// source. Fixes must be safe to apply without review.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one machine-applicable rewrite.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Category == "" {
		d.Category = p.Analyzer.Name
	}
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef records a finding spanning the node.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...any) {
	p.Report(Diagnostic{Pos: n.Pos(), End: n.End(), Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (use or definition),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// A RunResult carries one package's findings plus the suppression
// accounting the CLI surfaces (-unused-ignores, summary counts).
type RunResult struct {
	// Diagnostics are the kept findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed counts findings removed by //vqelint:ignore directives.
	Suppressed int
	// Stale lists ignore directives that suppressed nothing, judged
	// against the set of analyzers that actually ran.
	Stale []StaleIgnore
}

// Run type-checks nothing itself: it applies every analyzer to the
// already-loaded package and returns the findings with ignore directives
// filtered out, sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunDetailed(pkg, analyzers, false)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunDetailed is Run plus suppression accounting. complete must be true
// when analyzers is the full suite; it gates staleness judgment of
// `//vqelint:ignore all` directives.
func RunDetailed(pkg *Package, analyzers []*Analyzer, complete bool) (*RunResult, error) {
	res := &RunResult{}
	ig := collectIgnores(pkg.Fset, pkg.Files)
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
		for _, d := range pass.diagnostics {
			if ig.ignored(pkg.Fset, d) {
				res.Suppressed++
			} else {
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		if res.Diagnostics[i].Pos != res.Diagnostics[j].Pos {
			return res.Diagnostics[i].Pos < res.Diagnostics[j].Pos
		}
		return res.Diagnostics[i].Category < res.Diagnostics[j].Category
	})
	res.Stale = ig.stale(ran, complete)
	return res, nil
}

// calleeObject resolves the object called by e's function expression
// (an *ast.Ident or *ast.SelectorExpr), or nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether call invokes the named function from the
// package with the given import path (or path suffix "…/<path>").
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pkgPathMatches(obj.Pkg().Path(), pkgPath)
}

// pkgPathMatches reports whether got names the package want: exact match,
// or got ends in "/want" (so fixtures loaded under synthetic import paths
// and vendored copies still match).
func pkgPathMatches(got, want string) bool {
	if got == want {
		return true
	}
	n := len(got) - len(want)
	return n > 0 && got[n-1] == '/' && got[n:] == want
}
