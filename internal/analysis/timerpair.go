package analysis

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/cfg"
)

// TimerPair enforces the telemetry timer protocol: a timestamp taken
// with telemetry.Now must be observed by a Timer.Since (directly, via a
// tracked variable, or through a defer) on every path out of the
// function. The protocol exists because Now returns the 0 sentinel when
// telemetry is disabled and Since knows to skip it — a started-but-never
// -stopped timer silently undercounts a phase, which is exactly the kind
// of accounting drift the PR 2 telemetry work was built to prevent.
//
// Checked shapes:
//
//   - `telemetry.Now()` whose result is discarded (statement or blank
//     assign): flagged — the call is either dead or a missing pairing;
//   - `start := telemetry.Now()` where start never reaches a .Since
//     call and is never used otherwise: flagged;
//   - a paired, non-deferred Since that can be skipped on some path: a
//     forward may-analysis over the function's CFG tracks which timers
//     are still open at each point, and flags any return (or fall off
//     the end of the function) reachable with the timer open; use
//     `defer t.Since(start)` (or `defer t.Since(telemetry.Now())`).
//
// A start that is consumed by anything other than Since (e.g. compared
// against 0 for a manual elapsed computation) is assumed to be handled
// deliberately and is not tracked further.
var TimerPair = &Analyzer{
	Name: "timerpair",
	Doc:  "flag telemetry.Now timestamps that are discarded or can miss their Timer.Since on early-return paths",
	Run:  runTimerPair,
}

func runTimerPair(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkTimerBody(pass, body)
			}
			return true
		})
	}
	return nil
}

type timerStart struct {
	obj      types.Object // the timestamp variable
	assign   ast.Node     // the assignment statement
	sinces   []*ast.CallExpr
	deferred bool
	otherUse bool
}

func checkTimerBody(pass *Pass, body *ast.BlockStmt) {
	starts := map[types.Object]*timerStart{}

	// Pass 1: find Now() calls and classify their results. Nested
	// function literals get their own checkTimerBody invocation from the
	// file walk, so skip them here to keep ownership per-function.
	inspectShallow(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && isTelemetryNow(pass, call) {
				pass.ReportRangef(call, "telemetry.Now result discarded: pair it with a Timer.Since or drop the call")
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isTelemetryNow(pass, call) || i >= len(x.Lhs) {
					continue
				}
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.ReportRangef(call, "telemetry.Now result discarded: pair it with a Timer.Since or drop the call")
					continue
				}
				if obj := pass.ObjectOf(id); obj != nil {
					starts[obj] = &timerStart{obj: obj, assign: x}
				}
			}
		}
	})
	if len(starts) == 0 {
		return
	}

	// Pass 2: classify every use of each tracked timestamp, including
	// uses inside nested literals (a deferred closure may hold the
	// Since). Since calls directly under a defer, or inside a deferred
	// closure, count as deferred.
	var visit func(n ast.Node, inDefer bool)
	visit = func(n ast.Node, inDefer bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			visit(x.Call, true)
			return
		case *ast.CallExpr:
			if ts := sinceTarget(pass, x, starts); ts != nil {
				ts.sinces = append(ts.sinces, x)
				if inDefer {
					ts.deferred = true
				}
				// Don't also count the argument as an "other use".
				visit(x.Fun, inDefer)
				return
			}
		case *ast.Ident:
			if obj := pass.ObjectOf(x); obj != nil {
				if ts, ok := starts[obj]; ok && x.Pos() > ts.assign.End() {
					ts.otherUse = true
				}
			}
			return
		}
		for _, child := range childNodes(n) {
			visit(child, inDefer)
		}
	}
	visit(body, false)

	inline := map[types.Object]*timerStart{}
	for _, ts := range starts {
		switch {
		case ts.otherUse:
			// Manual handling (e.g. `if start != 0 { ... }`); trusted.
		case len(ts.sinces) == 0:
			pass.Reportf(ts.assign.Pos(), "timer started with telemetry.Now but never observed: add a %s.Since or defer", "Timer")
		case !ts.deferred:
			// All Sinces are inline: some path may skip the observation.
			inline[ts.obj] = ts
		}
	}
	if len(inline) > 0 {
		checkInlinePaths(pass, body, inline)
	}
}

// checkInlinePaths runs a forward may-analysis over the function's CFG:
// the state is the set of timers started but not yet observed. A return
// statement — or a fall off the end of the function — reachable with an
// open timer means the observation can be skipped on that path.
func checkInlinePaths(pass *Pass, body *ast.BlockStmt, inline map[types.Object]*timerStart) {
	g := cfg.New(body)

	sinceOf := map[*ast.CallExpr]types.Object{}
	assignOf := map[ast.Node][]types.Object{}
	for obj, ts := range inline {
		for _, c := range ts.sinces {
			sinceOf[c] = obj
		}
		assignOf[ts.assign] = append(assignOf[ts.assign], obj)
	}

	// apply mutates open with the effect of executing node: the tracked
	// assignment opens its timer, a Since call closes one. Deferred
	// statements run at exit, not here (and deferred Sinces never reach
	// this check anyway).
	applyExpr := func(root ast.Node, open map[types.Object]bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if objs, ok := assignOf[n]; ok {
				for _, o := range objs {
					open[o] = true
				}
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if obj, okSince := sinceOf[call]; okSince {
					delete(open, obj)
				}
			}
			return true
		})
	}
	apply := func(node ast.Node, open map[types.Object]bool) {
		if _, isDefer := node.(*ast.DeferStmt); isDefer {
			return
		}
		// A range.head block stores the whole RangeStmt, but only the
		// per-iteration binding executes there — don't walk the body,
		// whose statements live in other blocks.
		roots := []ast.Node{node}
		if r, isRange := node.(*ast.RangeStmt); isRange {
			roots = roots[:0]
			for _, e := range []ast.Expr{r.Key, r.Value, r.X} {
				if e != nil {
					roots = append(roots, e)
				}
			}
		}
		for _, root := range roots {
			applyExpr(root, open)
		}
	}

	clone := func(in map[types.Object]bool) map[types.Object]bool {
		m := make(map[types.Object]bool, len(in))
		for k := range in {
			m[k] = true
		}
		return m
	}
	problem := &cfg.ForwardProblem[map[types.Object]bool]{
		Entry: map[types.Object]bool{},
		Join: func(a, b map[types.Object]bool) map[types.Object]bool {
			m := clone(a)
			for k := range b {
				m[k] = true
			}
			return m
		},
		Equal: func(a, b map[types.Object]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *cfg.Block, in map[types.Object]bool) map[types.Object]bool {
			open := clone(in)
			for _, node := range b.Nodes {
				apply(node, open)
			}
			return open
		},
	}
	states := problem.Solve(g)

	reportedRet := map[*ast.ReturnStmt]map[types.Object]bool{}
	fallOff := map[types.Object]bool{}
	for _, b := range g.ReversePostorder() {
		in, ok := states[b]
		if !ok {
			continue
		}
		open := clone(in)
		var last ast.Node
		for _, node := range b.Nodes {
			last = node
			// A return's result expressions evaluate before the return
			// transfers control, so apply the node first either way.
			apply(node, open)
			if ret, isRet := node.(*ast.ReturnStmt); isRet {
				for obj := range open {
					if reportedRet[ret] == nil {
						reportedRet[ret] = map[types.Object]bool{}
					}
					if reportedRet[ret][obj] {
						continue
					}
					reportedRet[ret][obj] = true
					pass.ReportRangef(ret, "return between telemetry.Now and Timer.Since skips the observation; use defer t.Since(start)")
				}
			}
		}
		_, endsInReturn := last.(*ast.ReturnStmt)
		for _, succ := range b.Succs {
			if succ == g.Exit && !endsInReturn {
				for obj := range open {
					fallOff[obj] = true
				}
			}
		}
	}
	for obj := range fallOff {
		ts := inline[obj]
		pass.Reportf(ts.assign.Pos(), "telemetry.Now timestamp can reach the end of the function without its Timer.Since; use defer t.Since(start)")
	}
}

// inspectShallow walks n but does not descend into function literals.
func inspectShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if c != nil {
			f(c)
		}
		return true
	})
}

// isTelemetryNow reports whether call is telemetry.Now().
func isTelemetryNow(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass.Info, call, "internal/telemetry", "Now")
}

// sinceTarget returns the tracked start passed to a Timer.Since call, or
// nil if call is not a Since over a tracked variable.
func sinceTarget(pass *Pass, call *ast.CallExpr, starts map[types.Object]*timerStart) *timerStart {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Since" || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return nil
	}
	return starts[obj]
}

// childNodes returns the direct AST children of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
