package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TimerPair enforces the telemetry timer protocol: a timestamp taken
// with telemetry.Now must be observed by a Timer.Since (directly, via a
// tracked variable, or through a defer) on every path out of the
// function. The protocol exists because Now returns the 0 sentinel when
// telemetry is disabled and Since knows to skip it — a started-but-never
// -stopped timer silently undercounts a phase, which is exactly the kind
// of accounting drift the PR 2 telemetry work was built to prevent.
//
// Checked shapes:
//
//   - `telemetry.Now()` whose result is discarded (statement or blank
//     assign): flagged — the call is either dead or a missing pairing;
//   - `start := telemetry.Now()` where start never reaches a .Since
//     call and is never used otherwise: flagged;
//   - a paired, non-deferred Since with a `return` between start and
//     stop: flagged — the early return skips the observation; use
//     `defer t.Since(start)` (or `defer t.Since(telemetry.Now())`).
//
// A start that is consumed by anything other than Since (e.g. compared
// against 0 for a manual elapsed computation) is assumed to be handled
// deliberately and is not tracked further.
var TimerPair = &Analyzer{
	Name: "timerpair",
	Doc:  "flag telemetry.Now timestamps that are discarded or can miss their Timer.Since on early-return paths",
	Run:  runTimerPair,
}

func runTimerPair(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkTimerBody(pass, body)
			}
			return true
		})
	}
	return nil
}

type timerStart struct {
	obj      types.Object // the timestamp variable
	assign   ast.Node     // the assignment statement
	sinces   []*ast.CallExpr
	deferred bool
	otherUse bool
}

func checkTimerBody(pass *Pass, body *ast.BlockStmt) {
	starts := map[types.Object]*timerStart{}

	// Pass 1: find Now() calls and classify their results. Nested
	// function literals get their own checkTimerBody invocation from the
	// file walk, so skip them here to keep ownership per-function.
	inspectShallow(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && isTelemetryNow(pass, call) {
				pass.ReportRangef(call, "telemetry.Now result discarded: pair it with a Timer.Since or drop the call")
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isTelemetryNow(pass, call) || i >= len(x.Lhs) {
					continue
				}
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.ReportRangef(call, "telemetry.Now result discarded: pair it with a Timer.Since or drop the call")
					continue
				}
				if obj := pass.ObjectOf(id); obj != nil {
					starts[obj] = &timerStart{obj: obj, assign: x}
				}
			}
		}
	})
	if len(starts) == 0 {
		return
	}

	// Pass 2: classify every use of each tracked timestamp, including
	// uses inside nested literals (a deferred closure may hold the
	// Since). Since calls directly under a defer, or inside a deferred
	// closure, count as deferred.
	var visit func(n ast.Node, inDefer bool)
	visit = func(n ast.Node, inDefer bool) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.DeferStmt:
			visit(x.Call, true)
			return
		case *ast.CallExpr:
			if ts := sinceTarget(pass, x, starts); ts != nil {
				ts.sinces = append(ts.sinces, x)
				if inDefer {
					ts.deferred = true
				}
				// Don't also count the argument as an "other use".
				visit(x.Fun, inDefer)
				return
			}
		case *ast.Ident:
			if obj := pass.ObjectOf(x); obj != nil {
				if ts, ok := starts[obj]; ok && x.Pos() > ts.assign.End() {
					ts.otherUse = true
				}
			}
			return
		}
		for _, child := range childNodes(n) {
			visit(child, inDefer)
		}
	}
	visit(body, false)

	for _, ts := range starts {
		switch {
		case ts.otherUse:
			// Manual handling (e.g. `if start != 0 { ... }`); trusted.
		case len(ts.sinces) == 0:
			pass.Reportf(ts.assign.Pos(), "timer started with telemetry.Now but never observed: add a %s.Since or defer", "Timer")
		case !ts.deferred:
			// All Sinces are inline: any return between start and the
			// last Since can skip the observation.
			last := ts.sinces[len(ts.sinces)-1]
			reportEarlyReturns(pass, body, ts.assign.End(), last.Pos())
		}
	}
}

// inspectShallow walks n but does not descend into function literals.
func inspectShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if c != nil {
			f(c)
		}
		return true
	})
}

// isTelemetryNow reports whether call is telemetry.Now().
func isTelemetryNow(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass.Info, call, "internal/telemetry", "Now")
}

// sinceTarget returns the tracked start passed to a Timer.Since call, or
// nil if call is not a Since over a tracked variable.
func sinceTarget(pass *Pass, call *ast.CallExpr, starts map[types.Object]*timerStart) *timerStart {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Since" || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return nil
	}
	return starts[obj]
}

// reportEarlyReturns flags return statements positioned between a timer
// start and its (non-deferred) Since, excluding returns inside nested
// function literals.
func reportEarlyReturns(pass *Pass, body *ast.BlockStmt, after, before token.Pos) {
	inspectShallow(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= after || ret.Pos() >= before {
			return
		}
		pass.ReportRangef(ret, "return between telemetry.Now and Timer.Since skips the observation; use defer t.Since(start)")
	})
}

// childNodes returns the direct AST children of n.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
