package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package bundles one type-checked package for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds non-fatal type-checking problems (analysis
	// proceeds on best-effort type information, like go vet).
	TypeErrors []error
}

// A Loader resolves and type-checks packages without any dependency
// beyond the go tool itself: package metadata comes from `go list -json`
// and imported types from compiler export data located with
// `go list -export` (built into the local build cache on demand), so the
// loader works offline.
type Loader struct {
	// Dir is the working directory for go tool invocations (any
	// directory inside the target module). Empty means the process cwd.
	Dir string

	fset *token.FileSet
	imp  types.Importer

	mu      sync.Mutex
	exports map[string]string // import path → export data file

	// resolver, when set, maps an import path to its export data file
	// without consulting the go tool — the vet driver injects the
	// mapping the go command hands it.
	resolver func(path string) string
}

// SetExportResolver installs an export-data resolver consulted before
// the go tool fallback.
func (l *Loader) SetExportResolver(f func(path string) string) { l.resolver = f }

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goList runs `go list` with the given arguments and returns stdout.
func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, strings.TrimSpace(errb.String()))
	}
	return out.Bytes(), nil
}

// primeExports batch-resolves export data for the packages matching
// patterns and all their dependencies in a single go invocation.
func (l *Loader) primeExports(patterns []string) error {
	args := append([]string{"-e", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}, patterns...)
	out, err := l.goList(args...)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		path, file, ok := strings.Cut(sc.Text(), "\t")
		if ok && file != "" {
			l.exports[path] = file
		}
	}
	return sc.Err()
}

// lookupExport opens the export data for one import path, resolving it
// lazily when the priming pass did not cover it.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file := l.exports[path]
	l.mu.Unlock()
	if file == "" && l.resolver != nil {
		file = l.resolver(path)
	}
	if file == "" {
		out, err := l.goList("-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, err
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
}

// Load lists, parses, and type-checks the packages matching the given
// `go list` patterns (e.g. "./...").
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	if err := l.primeExports(patterns); err != nil {
		return nil, err
	}
	out, err := l.goList(append([]string{"-json=ImportPath,Dir,Standard,GoFiles,CgoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, 0, len(lp.GoFiles)+len(lp.CgoFiles))
		for _, f := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadFiles parses and type-checks an explicit file list as one package —
// the entry point used by the `go vet -vettool` driver (which receives
// the file list from the go command) and by the analysistest harness
// (which loads fixture directories outside the module proper).
func (l *Loader) LoadFiles(importPath, dir string, files []string) (*Package, error) {
	return l.check(importPath, dir, files)
}

// check parses and type-checks one package.
func (l *Loader) check(importPath, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: l.fset, Files: asts, Info: info}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(strings.TrimSuffix(importPath, ".test"), l.fset, asts, info)
	if tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
