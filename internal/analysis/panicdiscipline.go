package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"
)

// PanicDiscipline enforces the engine's panic contract inside internal/*
// packages: a panic must carry either
//
//   - a core sentinel error (core.ErrInvalidArgument and friends),
//     optionally wrapped with fmt.Errorf("...: %w", ..., sentinel) so
//     callers can errors.Is across package boundaries, or a call into
//     core that constructs such an error (core.QubitError); or
//   - a message string prefixed with the package name ("state: ...") so
//     a recovered panic is attributable without a stack trace.
//
// Bare strings, unwrapped foreign errors, and naked re-panics of an err
// variable are flagged: they strand the caller with no errors.Is target
// and no package attribution. The analyzer suggests the package-prefix
// fix for plain string literals; sentinel wrapping needs a human choice
// of sentinel and is reported without an autofix.
var PanicDiscipline = &Analyzer{
	Name: "panicdiscipline",
	Doc: "in internal packages, panic only with core sentinel errors (optionally " +
		"%w-wrapped) or package-prefixed messages",
	Run: runPanicDiscipline,
}

func runPanicDiscipline(pass *Pass) error {
	path := strings.TrimSuffix(pass.Pkg.Path(), ".test")
	if !strings.Contains(path+"/", "/internal/") {
		return nil // contract applies to the engine packages only
	}
	prefix := strings.TrimSuffix(pass.Pkg.Name(), "_test") + ": "
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue // test helpers may panic(err) freely
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); !isBuiltin {
				return true
			}
			checkPanicArg(pass, call.Args[0], prefix)
			return false
		})
	}
	return nil
}

func checkPanicArg(pass *Pass, arg ast.Expr, prefix string) {
	arg = ast.Unparen(arg)

	// Constant strings (literals or consts): require the package prefix.
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		s := constant.StringVal(tv.Value)
		if strings.HasPrefix(s, prefix) {
			return
		}
		d := Diagnostic{
			Pos: arg.Pos(), End: arg.End(),
			Message: fmt.Sprintf("panic message %q lacks the %q package prefix", truncate(s, 40), prefix),
		}
		if lit, ok := arg.(*ast.BasicLit); ok {
			d.SuggestedFixes = []SuggestedFix{{
				Message:   fmt.Sprintf("prepend %q", prefix),
				TextEdits: []TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: []byte(strconv.Quote(prefix + s))}},
			}}
		}
		pass.Report(d)
		return
	}

	switch x := arg.(type) {
	case *ast.SelectorExpr, *ast.Ident:
		if isCoreSentinel(pass, arg) {
			return
		}
	case *ast.CallExpr:
		if callIntoCore(pass, x) {
			return // core.QubitError(...) and friends construct compliant errors
		}
		if ok, fixable := checkFormattedPanic(pass, x, prefix); ok {
			return
		} else if fixable {
			return // already reported with a targeted message
		}
	}

	if t := pass.TypeOf(arg); t != nil && isErrorType(t) {
		pass.Report(Diagnostic{
			Pos: arg.Pos(), End: arg.End(),
			Message: fmt.Sprintf("panic with a bare error value: wrap it as fmt.Errorf(%q, err) "+
				"(with a core sentinel where applicable) so recovered panics are attributable", prefix+"%w"),
		})
		return
	}
	pass.Report(Diagnostic{
		Pos: arg.Pos(), End: arg.End(),
		Message: fmt.Sprintf("panic argument must be a core sentinel error (optionally fmt.Errorf-wrapped with %%w) "+
			"or a %q-prefixed message", prefix),
	})
}

// checkFormattedPanic handles fmt.Errorf / fmt.Sprintf panics. It
// returns (ok, reported): ok when the call satisfies the contract,
// reported when a targeted diagnostic was already emitted.
func checkFormattedPanic(pass *Pass, call *ast.CallExpr, prefix string) (ok, reported bool) {
	isErrorf := isPkgFunc(pass.Info, call, "fmt", "Errorf")
	isSprintf := isPkgFunc(pass.Info, call, "fmt", "Sprintf")
	if !isErrorf && !isSprintf {
		return false, false
	}
	if len(call.Args) == 0 {
		return false, false
	}
	format, known := constantString(pass, call.Args[0])

	// A %w-wrapped core sentinel is compliant regardless of prefix: the
	// sentinel itself carries the "core: " attribution.
	if isErrorf && known && strings.Contains(format, "%w") {
		for _, a := range call.Args[1:] {
			if isCoreSentinel(pass, ast.Unparen(a)) || coreCall(pass, a) {
				return true, false
			}
		}
	}
	if known && strings.HasPrefix(format, prefix) {
		if isSprintf {
			return true, false
		}
		// Errorf with package prefix: fine with or without %w.
		return true, false
	}
	if !known {
		return false, false // dynamic format: fall through to generic report
	}
	verb := "fmt.Sprintf"
	if isErrorf {
		verb = "fmt.Errorf"
	}
	pass.Report(Diagnostic{
		Pos: call.Pos(), End: call.End(),
		Message: fmt.Sprintf("%s panic format %q lacks the %q package prefix and wraps no core sentinel",
			verb, truncate(format, 40), prefix),
	})
	return false, true
}

// isCoreSentinel reports whether e denotes an exported Err* variable of
// the core package.
func isCoreSentinel(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.Ident:
		id = x
	default:
		return false
	}
	obj := pass.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	return pkgPathMatches(v.Pkg().Path(), "internal/core")
}

// callIntoCore reports whether call invokes an error-returning function
// of the core package.
func callIntoCore(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || !pkgPathMatches(obj.Pkg().Path(), "internal/core") {
		return false
	}
	if t := pass.TypeOf(call); t != nil {
		return isErrorType(t)
	}
	return false
}

func coreCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && callIntoCore(pass, call)
}

func constantString(pass *Pass, e ast.Expr) (string, bool) {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

func isErrorType(t types.Type) bool {
	i, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errorInterface()) || i.NumMethods() == 1 && i.Method(0).Name() == "Error"
}

var errIface *types.Interface

func errorInterface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
