package analysis

// ctxflow enforces context threading discipline in non-test code:
//
//   - context.Background()/context.TODO() may only be called from
//     package main (wiring the process root) or test files. Anywhere
//     else the function should accept a context.Context from its
//     caller. Calling either while a context.Context parameter is in
//     scope is always flagged, even in main: it silently severs the
//     caller's cancellation chain.
//   - An unbounded `for` loop (nil condition) that performs blocking
//     operations must observe cancellation: a ctx.Done()/ctx.Err() call
//     somewhere in the loop, or a receive comm clause whose body leaves
//     the loop (the closed-channel shutdown idiom). Otherwise the
//     goroutine running it can never be stopped.
//
// One auto-exemption keeps compatibility shims honest without
// directives: a function whose entire body is a single return statement
// delegating to a context-taking variant (e.g. `func F() { return
// FCtx(context.Background()) }`) is allowed — it exists precisely to
// adapt context-free callers.

import (
	"go/ast"
	"go/token"
)

var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "check that contexts are threaded to callees and unbounded loops " +
		"observe cancellation",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		if isTestFile(pass, file.Pos()) {
			continue
		}
		checkBackgroundCalls(pass, file, isMain)
		funcBodies(file, func(body *ast.BlockStmt) {
			checkUnboundedLoops(pass, body)
		})
	}
	return nil
}

// checkBackgroundCalls walks the file tracking the enclosing function
// stack so each context.Background()/TODO() call can be judged against
// the parameters in scope.
func checkBackgroundCalls(pass *Pass, file *ast.File, isMain bool) {
	type frame struct {
		ftype *ast.FuncType
		body  *ast.BlockStmt
	}
	var stack []frame
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body == nil {
				return false
			}
			stack = append(stack, frame{x.Type, x.Body})
			ast.Inspect(x.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.FuncLit:
			stack = append(stack, frame{x.Type, x.Body})
			ast.Inspect(x.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.CallExpr:
			name := ""
			switch {
			case isPkgFunc(pass.Info, x, "context", "Background"):
				name = "context.Background"
			case isPkgFunc(pass.Info, x, "context", "TODO"):
				name = "context.TODO"
			default:
				return true
			}
			ctxInScope := false
			for _, f := range stack {
				if funcTypeHasContextParam(pass, f.ftype) {
					ctxInScope = true
				}
			}
			switch {
			case ctxInScope:
				pass.Reportf(x.Pos(), "%s() while a context.Context parameter is in scope: thread the caller's context instead of severing its cancellation chain", name)
			case isMain:
				// Package main wires the process root context.
			case len(stack) > 0 && isDelegationShim(stack[len(stack)-1].body, x):
				// Single-return adapter for context-free callers.
			default:
				pass.Reportf(x.Pos(), "%s() outside main or test: accept a context.Context from the caller so cancellation propagates", name)
			}
			return true
		}
		return true
	}
	ast.Inspect(file, walk)
}

func funcTypeHasContextParam(pass *Pass, ftype *ast.FuncType) bool {
	if ftype == nil || ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// isDelegationShim reports whether body is exactly `return f(...)` with
// call somewhere in the returned expression — the context-free adapter
// idiom.
func isDelegationShim(body *ast.BlockStmt, call *ast.CallExpr) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	found := false
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if n == ast.Node(call) {
				found = true
			}
			return true
		})
	}
	return found
}

// checkUnboundedLoops flags `for { ... }` loops (nil condition, so the
// CFG has no head→done edge) that block without observing cancellation.
func checkUnboundedLoops(pass *Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return
		}
		softened := softenedCommOps(loop.Body)
		blocking := ""
		observes := false
		inspectShallow(loop.Body, func(m ast.Node) {
			if blocking == "" {
				if d := blockingDesc(pass, m, softened); d != "" {
					blocking = d
				}
				if _, isSel := m.(*ast.SelectStmt); isSel {
					blocking = "select"
				}
			}
			if call, isCall := m.(*ast.CallExpr); isCall && isContextMethod(pass, call, "Done", "Err") {
				observes = true
			}
		})
		if !observes {
			observes = hasEscapingRecvClause(loop.Body)
		}
		if blocking != "" && !observes {
			pass.Reportf(loop.Pos(), "unbounded for loop blocks (%s) without observing ctx.Done() or a channel close: it cannot be cancelled", blocking)
		}
	})
}

// hasEscapingRecvClause reports whether some select receive clause in
// body leaves the loop (return / break / goto) — the closed-channel
// shutdown idiom `case <-done: return`.
func hasEscapingRecvClause(body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) {
		cc, ok := n.(*ast.CommClause)
		if !ok || cc.Comm == nil || found {
			return
		}
		if _, isSend := cc.Comm.(*ast.SendStmt); isSend {
			return
		}
		for _, stmt := range cc.Body {
			switch s := stmt.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.BranchStmt:
				// A bare break inside a select only leaves the select;
				// escaping the loop needs a label (or goto).
				if s.Tok == token.GOTO || (s.Tok == token.BREAK && s.Label != nil) {
					found = true
				}
			}
		}
	})
	return found
}
