package analysis

// lockdiscipline proves, per function body, that sync.Mutex/RWMutex
// critical sections are well formed on every control-flow path:
//
//   - a lock acquired on some path but not released on every path to the
//     function's exit is a leak (suggested fix: defer the unlock);
//   - locking a mutex that is already definitely held self-deadlocks;
//   - acquiring a second mutex while one is definitely held risks
//     lock-order inversion across goroutines;
//   - blocking while a mutex is definitely held (channel send or
//     receive, range over a channel, time.Sleep, sync.WaitGroup.Wait,
//     net/http calls) stalls every other goroutine contending for it.
//
// Sends that sit in a `select` with a default case cannot block, but the
// analyzer still reports them: a send under a held lock couples
// subscriber wakeups to the critical section, and the default case
// silently drops events whenever consumers lag — do the hand-off after
// releasing the lock. Receives in such selects are exempt.
//
// The analysis is a forward dataflow over the function's CFG with a
// two-part state: the set of locks held on every path (must, used for
// deadlock/blocking reports) and on some path (may, used for leak
// reports). Lock identity is the chain of objects in the receiver
// expression (`s.mu` is one lock per s object chain); receivers the
// analysis cannot name are ignored. Function literals are analyzed as
// separate bodies.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis/cfg"
)

var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "check that mutexes are unlocked on every path and nothing blocks " +
		"while a mutex is held",
	Run: runLockDiscipline,
}

// lockAcq records one Lock/RLock call site.
type lockAcq struct {
	call *ast.CallExpr
	stmt ast.Node // enclosing statement, for the suggested-fix anchor
	name string   // receiver rendered as source, e.g. "s.mu"
	read bool     // RLock rather than Lock
}

// lockState is the dataflow state: held locks keyed by receiver object
// chain plus a "/r" or "/w" mode suffix.
type lockState struct {
	must map[string]*lockAcq
	may  map[string]*lockAcq
}

func runLockDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		funcBodies(file, func(body *ast.BlockStmt) {
			checkLockBody(pass, body)
		})
	}
	return nil
}

// lockOps scans the body (not nested function literals) for sync lock
// and unlock calls, keyed by call node.
type lockOp struct {
	key    string
	name   string
	read   bool
	unlock bool
}

func collectLockOps(pass *Pass, body *ast.BlockStmt) map[*ast.CallExpr]lockOp {
	ops := map[*ast.CallExpr]lockOp{}
	inspectShallow(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, okOp := classifyLockCall(pass, call); okOp {
				ops[call] = op
			}
		}
	})
	return ops
}

// classifyLockCall recognizes (R)Lock/(R)Unlock calls on identifiable
// sync.Mutex/RWMutex receivers.
func classifyLockCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	recvType, method, ok := syncMethod(pass, call)
	if !ok || (recvType != "Mutex" && recvType != "RWMutex") {
		return lockOp{}, false
	}
	var read, unlock bool
	switch method {
	case "Lock":
	case "RLock":
		read = true
	case "Unlock":
		unlock = true
	case "RUnlock":
		read, unlock = true, true
	default:
		return lockOp{}, false // TryLock etc: acquisition is conditional, skip
	}
	recv := lockReceiver(call)
	if recv == nil {
		return lockOp{}, false
	}
	key, ok := exprObjKey(pass, recv)
	if !ok {
		return lockOp{}, false
	}
	mode := "/w"
	if read {
		mode = "/r"
	}
	return lockOp{
		key:    key + mode,
		name:   exprText(pass.Fset, recv),
		read:   read,
		unlock: unlock,
	}, true
}

// deferredUnlockKeys returns the lock keys released by defer statements:
// `defer x.Unlock()` directly, or any unlock inside a deferred closure
// (closures are not in ops — the collection walk is shallow — so
// classify their calls from scratch).
func deferredUnlockKeys(pass *Pass, ops map[*ast.CallExpr]lockOp, defers []*ast.DeferStmt) map[string]bool {
	out := map[string]bool{}
	record := func(call *ast.CallExpr) {
		if op, ok := classifyLockCall(pass, call); ok && op.unlock {
			out[op.key] = true
		}
	}
	for _, d := range defers {
		record(d.Call)
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, isCall := n.(*ast.CallExpr); isCall {
					record(call)
				}
				return true
			})
		}
	}
	return out
}

func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	ops := collectLockOps(pass, body)
	if len(ops) == 0 {
		return
	}
	hasAcquire := false
	inlineUnlocks := map[string]int{}
	for _, op := range ops {
		if op.unlock {
			inlineUnlocks[op.key]++
		} else {
			hasAcquire = true
		}
	}
	if !hasAcquire {
		return // unlock-only helper: pairing lives in the callers
	}

	g := cfg.New(body)
	deferred := deferredUnlockKeys(pass, ops, g.Defers)
	softened := softenedCommOps(body)

	// nodeOps applies the lock operations that execute when node runs.
	// Defer and go statements are skipped: deferred unlocks run at exit
	// (handled via deferred), and a `go` call runs concurrently.
	nodeOps := func(node ast.Node, fn func(call *ast.CallExpr, op lockOp)) {
		switch node.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return
		}
		walkBlockNode(node, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, okOp := ops[call]; okOp {
					fn(call, op)
				}
			}
		})
	}

	transfer := func(b *cfg.Block, in lockState) lockState {
		st := cloneLockState(in)
		for _, node := range b.Nodes {
			nodeOps(node, func(call *ast.CallExpr, op lockOp) {
				if op.unlock {
					delete(st.must, op.key)
					delete(st.may, op.key)
					return
				}
				acq := &lockAcq{call: call, stmt: node, name: op.name, read: op.read}
				st.must[op.key] = acq
				st.may[op.key] = acq
			})
		}
		return st
	}

	problem := &cfg.ForwardProblem[lockState]{
		Entry:    lockState{must: map[string]*lockAcq{}, may: map[string]*lockAcq{}},
		Join:     joinLockStates,
		Equal:    equalLockStates,
		Transfer: transfer,
	}
	in := problem.Solve(g)

	// Reporting pass: replay each reachable block once from its final
	// in-state so every diagnostic fires at most once per site.
	leaked := map[*ast.CallExpr]*lockAcq{}
	for _, b := range g.ReversePostorder() {
		st, ok := in[b]
		if !ok {
			continue
		}
		st = cloneLockState(st)
		for _, node := range b.Nodes {
			if desc := blockingNodeDesc(pass, node, softened); desc != "" && len(st.must) > 0 {
				held := pickHeld(st.must)
				pass.Reportf(node.Pos(), "%s while %s is held: shrink the critical section so other goroutines are not stalled behind the lock", desc, held.name)
			}
			nodeOps(node, func(call *ast.CallExpr, op lockOp) {
				if op.unlock {
					delete(st.must, op.key)
					delete(st.may, op.key)
					return
				}
				if _, held := st.must[op.key]; held {
					pass.Reportf(call.Pos(), "%s of %s while it is already held: this self-deadlocks", lockVerb(op.read), op.name)
				} else if len(st.must) > 0 && !op.read {
					held := pickHeld(st.must)
					if held.name != op.name {
						pass.Reportf(call.Pos(), "Lock of %s while %s is held: nested locks invite lock-order inversion; release %s first or document the ordering", op.name, held.name, held.name)
					}
				}
				acq := &lockAcq{call: call, stmt: node, name: op.name, read: op.read}
				st.must[op.key] = acq
				st.may[op.key] = acq
			})
		}
		// st is now the block's out-state; if it can reach the exit,
		// anything possibly still held (and not deferred) leaks.
		for _, succ := range b.Succs {
			if succ != g.Exit {
				continue
			}
			for key, acq := range st.may {
				if deferred[key] {
					continue
				}
				leaked[acq.call] = acq
			}
		}
	}

	for _, acq := range sortedLeaks(pass, leaked) {
		op := ops[acq.call]
		unlockName := "Unlock"
		if acq.read {
			unlockName = "RUnlock"
		}
		diag := Diagnostic{
			Pos:      acq.call.Pos(),
			End:      acq.call.End(),
			Category: "lockdiscipline",
			Message: fmt.Sprintf("%s.%s is not released on every path to the function exit", acq.name,
				lockVerb(acq.read)),
		}
		// Offer the defer fix only when no inline unlock for this lock
		// exists at all — otherwise deferring would double-unlock.
		if inlineUnlocks[op.key] == 0 {
			if stmt, ok := acq.stmt.(*ast.ExprStmt); ok {
				indent := indentAt(pass.Fset, stmt.Pos())
				diag.SuggestedFixes = []SuggestedFix{{
					Message: fmt.Sprintf("defer %s.%s() after acquiring", acq.name, unlockName),
					TextEdits: []TextEdit{{
						Pos:     stmt.End(),
						End:     stmt.End(),
						NewText: []byte("\n" + indent + "defer " + acq.name + "." + unlockName + "()"),
					}},
				}}
			}
		}
		pass.Report(diag)
	}
}

func lockVerb(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

// blockingNodeDesc looks for a blocking operation anywhere in the
// statement node (excluding nested function literals and defer/go
// statements, which do not block the current goroutine here).
func blockingNodeDesc(pass *Pass, node ast.Node, softened map[ast.Node]bool) string {
	switch node.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return ""
	}
	desc := ""
	walkBlockNode(node, func(n ast.Node) {
		if desc != "" {
			return
		}
		if d := blockingDesc(pass, n, softened); d != "" {
			desc = d
		}
	})
	return desc
}

// pickHeld returns the held lock with the smallest source position so
// diagnostics are deterministic.
func pickHeld(must map[string]*lockAcq) *lockAcq {
	var best *lockAcq
	for _, acq := range must {
		if best == nil || acq.call.Pos() < best.call.Pos() {
			best = acq
		}
	}
	return best
}

func sortedLeaks(pass *Pass, leaked map[*ast.CallExpr]*lockAcq) []*lockAcq {
	out := make([]*lockAcq, 0, len(leaked))
	for _, acq := range leaked {
		out = append(out, acq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].call.Pos() < out[j].call.Pos() })
	return out
}

func cloneLockState(in lockState) lockState {
	st := lockState{
		must: make(map[string]*lockAcq, len(in.must)),
		may:  make(map[string]*lockAcq, len(in.may)),
	}
	for k, v := range in.must {
		st.must[k] = v
	}
	for k, v := range in.may {
		st.may[k] = v
	}
	return st
}

// joinLockStates intersects must (held on every path) and unions may
// (held on some path), keeping the earliest acquisition for determinism.
func joinLockStates(a, b lockState) lockState {
	st := lockState{must: map[string]*lockAcq{}, may: map[string]*lockAcq{}}
	for k, va := range a.must {
		if vb, ok := b.must[k]; ok {
			st.must[k] = earlierAcq(va, vb)
		}
	}
	for k, v := range a.may {
		st.may[k] = v
	}
	for k, vb := range b.may {
		if va, ok := st.may[k]; ok {
			st.may[k] = earlierAcq(va, vb)
		} else {
			st.may[k] = vb
		}
	}
	return st
}

func earlierAcq(a, b *lockAcq) *lockAcq {
	if b.call.Pos() < a.call.Pos() {
		return b
	}
	return a
}

func equalLockStates(a, b lockState) bool {
	return equalKeySet(a.must, b.must) && equalKeySet(a.may, b.may)
}

func equalKeySet(a, b map[string]*lockAcq) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// indentAt reproduces the leading whitespace of the line containing pos,
// assuming gofmt'd (tab-indented) source.
func indentAt(fset *token.FileSet, pos token.Pos) string {
	col := fset.Position(pos).Column
	if col < 1 {
		col = 1
	}
	return strings.Repeat("\t", col-1)
}
