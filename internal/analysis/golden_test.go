package analysis_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestGolden runs every analyzer over its fixture package and checks
// the diagnostics against the fixture's `// want` comments. The
// hotpathalloc fixture doubles as the negative guarantee: annotated
// functions that do allocate are flagged.
func TestGolden(t *testing.T) {
	for _, a := range analysis.Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			analysistest.Run(t, a, filepath.Join("testdata", "src", a.Name))
		})
	}
}

// TestSuiteNames pins the suite composition and the ByName lookup.
func TestSuiteNames(t *testing.T) {
	want := []string{
		"hotpathalloc", "workerssemantics", "timerpair", "panicdiscipline",
		"floatcompare", "lockdiscipline", "ctxflow", "goroutinelife",
	}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, name := range want {
		if suite[i].Name != name {
			t.Errorf("suite[%d] = %s, want %s", i, suite[i].Name, name)
		}
		if analysis.ByName(name) != suite[i] {
			t.Errorf("ByName(%q) did not return the suite analyzer", name)
		}
	}
	if analysis.ByName("nonesuch") != nil {
		t.Error("ByName(nonesuch) should be nil")
	}
}

// TestSuggestedFixes verifies that the analyzers advertised as
// -fix-capable actually attach machine-applicable edits, so
// `vqelint -fix` has something to apply.
func TestSuggestedFixes(t *testing.T) {
	loader := analysis.NewLoader("")
	cases := []struct {
		analyzer string
		fixture  string
		// wantEdit is a substring that must appear in some suggested
		// fix's replacement text.
		wantEdit string
	}{
		{"panicdiscipline", "panicdiscipline", `"panicdiscipline: negative dimension"`},
		{"floatcompare", "floatcompare", "real(z)*real(z)+imag(z)*imag(z)"},
		{"lockdiscipline", "lockdiscipline", "defer s.mu.Unlock()"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			files, err := filepath.Glob(filepath.Join(dir, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("globbing fixture %s: %v", dir, err)
			}
			pkg, err := loader.LoadFiles("repro/internal/"+tc.fixture, dir, files)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := analysis.Run(pkg, []*analysis.Analyzer{analysis.ByName(tc.analyzer)})
			if err != nil {
				t.Fatal(err)
			}
			var edits []string
			for _, d := range diags {
				for _, fix := range d.SuggestedFixes {
					for _, te := range fix.TextEdits {
						if te.Pos == token.NoPos || te.End < te.Pos {
							t.Errorf("fix %q has an invalid edit range", fix.Message)
						}
						edits = append(edits, string(te.NewText))
					}
				}
			}
			if len(edits) == 0 {
				t.Fatalf("%s reported no suggested fixes on its fixture", tc.analyzer)
			}
			found := false
			for _, e := range edits {
				if strings.Contains(e, tc.wantEdit) {
					found = true
				}
			}
			if !found {
				t.Errorf("no suggested edit contains %q; edits: %q", tc.wantEdit, edits)
			}
		})
	}
}
