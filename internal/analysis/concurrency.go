package analysis

// Shared type-resolution helpers for the concurrency analyzers
// (lockdiscipline, ctxflow, goroutinelife): classifying sync.* method
// calls, naming lock identities, and recognizing blocking operations.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// isTestFile reports whether the file holding pos is a _test.go file.
func isTestFile(pass *Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// syncMethod classifies call as a method of the sync package, returning
// the receiver type name ("Mutex", "RWMutex", "WaitGroup", "Cond", ...)
// and the method name. Promoted methods of embedded sync types resolve
// the same way because the method object still belongs to sync.
func syncMethod(pass *Pass, call *ast.CallExpr) (recv, name string, ok bool) {
	obj := calleeObject(pass.Info, call)
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "sync") {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	return named.Obj().Name(), fn.Name(), true
}

// lockReceiver returns the receiver expression of a selector call
// (x.Lock() → x), or nil.
func lockReceiver(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// exprObjKey names an lvalue expression by the chain of objects its
// identifiers denote, so `s.mu` in two different statements is the same
// lock and `a.mu` vs `b.mu` are different ones. Expressions the analysis
// cannot identify (map indexes, call results) return ok=false and are
// not tracked.
func exprObjKey(pass *Pass, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.ObjectOf(x); obj != nil {
			return fmt.Sprintf("%p", obj), true
		}
	case *ast.SelectorExpr:
		base, ok := exprObjKey(pass, x.X)
		if !ok {
			return "", false
		}
		if obj := pass.ObjectOf(x.Sel); obj != nil {
			return base + "." + fmt.Sprintf("%p", obj), true
		}
	case *ast.StarExpr:
		return exprObjKey(pass, x.X)
	}
	return "", false
}

// exprText renders an expression as source text for diagnostics.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && pkgPathMatches(obj.Pkg().Path(), "context")
}

// isContextMethod reports whether call is ctx.Done() or ctx.Err() on a
// context.Context value.
func isContextMethod(pass *Pass, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
		}
	}
	if !match {
		return false
	}
	t := pass.TypeOf(sel.X)
	return t != nil && isContextType(t)
}

// httpBlockingFuncs are net/http package-level functions that perform
// network I/O; accessors and constructors (NewRequest, ...) are not
// blocking and stay off the list.
var httpBlockingFuncs = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true,
	"ListenAndServe": true, "ListenAndServeTLS": true,
	"Serve": true, "ServeTLS": true,
}

// httpBlockingMethods maps net/http receiver type names to the methods
// that do I/O on them. Plain accessors (Request.PathValue, Header.Get)
// never block and are deliberately absent.
var httpBlockingMethods = map[string]map[string]bool{
	"Client":             {"Do": true, "Get": true, "Head": true, "Post": true, "PostForm": true},
	"ResponseWriter":     {"Write": true, "WriteHeader": true},
	"Flusher":            {"Flush": true},
	"ResponseController": {"Flush": true},
	"Server": {
		"ListenAndServe": true, "ListenAndServeTLS": true,
		"Serve": true, "ServeTLS": true, "Shutdown": true, "Close": true,
	},
}

// isNetHTTP reports whether call performs net/http I/O: a blocking
// package function (http.Get, ...) or a blocking method of a net/http
// type (Client.Do, ResponseWriter.Write, Flusher.Flush, ...).
func isNetHTTP(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "net/http") {
		return false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return httpBlockingFuncs[fn.Name()]
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	return httpBlockingMethods[named.Obj().Name()][fn.Name()]
}

// blockingDesc classifies n as a potentially blocking operation,
// returning a short description or "". softened holds channel operations
// that appear as comm clauses of a select with a default case (they
// cannot block; sends there are still reported by lockdiscipline, with a
// different rationale — see the analyzer doc).
func blockingDesc(pass *Pass, n ast.Node, softened map[ast.Node]bool) string {
	switch x := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if x.Op == token.ARROW && !softened[n] {
			return "channel receive"
		}
	case *ast.RangeStmt:
		if t := pass.TypeOf(x.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return "range over channel"
			}
		}
	case *ast.CallExpr:
		switch {
		case isPkgFunc(pass.Info, x, "time", "Sleep"):
			return "time.Sleep"
		case isNetHTTP(pass, x):
			return "net/http call"
		}
		if recv, name, ok := syncMethod(pass, x); ok && name == "Wait" {
			return "sync." + recv + ".Wait"
		}
	}
	return ""
}

// softenedCommOps collects the comm-clause channel operations of every
// select that has a default case under root (they cannot block).
func softenedCommOps(root ast.Node) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			cc, isComm := c.(*ast.CommClause)
			if !isComm || cc.Comm == nil {
				continue
			}
			out[cc.Comm] = true
			// Receives appear as expressions inside assign/expr comm
			// statements; mark those too.
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if u, isU := m.(*ast.UnaryExpr); isU && u.Op == token.ARROW {
					out[u] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

// walkBlockNode visits the parts of a CFG block node that execute when
// the block runs, shallowly (no function literals). The one compound
// node the CFG stores whole is *ast.RangeStmt in its range.head block:
// only the per-iteration binding (Key/Value/X) executes there — the loop
// body belongs to other blocks and must not be walked again.
func walkBlockNode(node ast.Node, fn func(ast.Node)) {
	if r, ok := node.(*ast.RangeStmt); ok {
		fn(r)
		for _, e := range []ast.Expr{r.Key, r.Value, r.X} {
			if e != nil {
				inspectShallow(e, fn)
			}
		}
		return
	}
	inspectShallow(node, fn)
}

// funcBodies walks a file and calls fn once per function body (both
// declarations and literals). Each body is analyzed independently; use
// inspectShallow inside fn to stay within the body.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch d := n.(type) {
		case *ast.FuncDecl:
			body = d.Body
		case *ast.FuncLit:
			body = d.Body
		default:
			return true
		}
		if body != nil {
			fn(body)
		}
		return true
	})
}
