package analysis

// Suite returns the project's analyzers in reporting order. cmd/vqelint
// runs all of them by default; individual analyzers can be selected with
// its -only flag.
func Suite() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		WorkersSemantics,
		TimerPair,
		PanicDiscipline,
		FloatCompare,
		LockDiscipline,
		CtxFlow,
		GoroutineLife,
	}
}

// ByName returns the named analyzer from the suite, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
