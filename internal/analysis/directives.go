package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Ignore directives let call sites suppress a finding that is understood
// and intentional (e.g. an exact-zero sparsity skip in a hot loop):
//
//	//vqelint:ignore floatcompare exact-zero skip is intentional
//
// The directive applies to findings of the named analyzers (comma
// separated, or "all") on the directive's own line and on the next line,
// so it works both as a trailing comment and as a line above the
// offending statement. A reason after the analyzer list is encouraged
// but not enforced.
//
// Directives that suppress nothing are stale; `vqelint -unused-ignores`
// reports them so the suppression inventory never outlives the findings
// it was written for. A directive is only judged stale when every
// analyzer it names actually ran ("all" requires the full suite), so a
// partial `-only` run cannot misreport.
const ignorePrefix = "//vqelint:ignore"

// hotpathDirective marks a function whose body must stay allocation-free;
// it is recognized by the hotpathalloc analyzer in a func's doc comment or
// on the line immediately above a function literal.
const hotpathDirective = "//vqesim:hotpath"

// A directive is one parsed //vqelint:ignore comment.
type directive struct {
	pos   token.Pos
	names []string
	used  bool
}

// A StaleIgnore reports a //vqelint:ignore directive that suppressed no
// finding of any analyzer it names.
type StaleIgnore struct {
	Pos   token.Pos
	Names []string
}

type ignoreSet struct {
	// byLine maps file:line to the directives covering that line.
	byLine map[string][]*directive
	all    []*directive
}

func lineKey(fset *token.FileSet, pos token.Pos) (string, int) {
	p := fset.Position(pos)
	return p.Filename, p.Line
}

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byLine: map[string][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				var names []string
				for _, n := range strings.Split(fields[0], ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				if len(names) == 0 {
					continue
				}
				d := &directive{pos: c.Pos(), names: names}
				ig.all = append(ig.all, d)
				file, line := lineKey(fset, c.Pos())
				for _, ln := range []int{line, line + 1} {
					key := ignoreKey(file, ln)
					ig.byLine[key] = append(ig.byLine[key], d)
				}
			}
		}
	}
	return ig
}

func ignoreKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// ignored reports whether d is suppressed by a directive and, if so,
// marks the first matching directive used (for staleness accounting).
func (ig *ignoreSet) ignored(fset *token.FileSet, d Diagnostic) bool {
	file, line := lineKey(fset, d.Pos)
	for _, dir := range ig.byLine[ignoreKey(file, line)] {
		for _, n := range dir.names {
			if n == d.Category || n == "all" {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// stale returns the directives that suppressed nothing, restricted to
// those whose every named analyzer ran (complete means the full suite
// ran, which is what judging an "all" directive requires).
func (ig *ignoreSet) stale(ran map[string]bool, complete bool) []StaleIgnore {
	var out []StaleIgnore
	for _, d := range ig.all {
		if d.used {
			continue
		}
		judgeable := true
		for _, n := range d.names {
			if n == "all" {
				judgeable = judgeable && complete
			} else {
				judgeable = judgeable && ran[n]
			}
		}
		if judgeable {
			out = append(out, StaleIgnore{Pos: d.pos, Names: d.names})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
