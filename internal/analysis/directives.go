package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Ignore directives let call sites suppress a finding that is understood
// and intentional (e.g. an exact-zero sparsity skip in a hot loop):
//
//	//vqelint:ignore floatcompare exact-zero skip is intentional
//
// The directive applies to findings of the named analyzers (comma
// separated, or "all") on the directive's own line and on the next line,
// so it works both as a trailing comment and as a line above the
// offending statement. A reason after the analyzer list is encouraged
// but not enforced.
const ignorePrefix = "//vqelint:ignore"

// hotpathDirective marks a function whose body must stay allocation-free;
// it is recognized by the hotpathalloc analyzer in a func's doc comment or
// on the line immediately above a function literal.
const hotpathDirective = "//vqesim:hotpath"

type ignoreSet struct {
	// byLine maps file base + line to the analyzer names suppressed there.
	byLine map[string]map[string]bool
}

func lineKey(fset *token.FileSet, pos token.Pos) (string, int) {
	p := fset.Position(pos)
	return p.Filename, p.Line
}

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byLine: map[string]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				file, line := lineKey(fset, c.Pos())
				for _, ln := range []int{line, line + 1} {
					key := ignoreKey(file, ln)
					m := ig.byLine[key]
					if m == nil {
						m = map[string]bool{}
						ig.byLine[key] = m
					}
					for _, n := range names {
						m[strings.TrimSpace(n)] = true
					}
				}
			}
		}
	}
	return ig
}

func ignoreKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

func (ig *ignoreSet) ignored(fset *token.FileSet, d Diagnostic) bool {
	file, line := lineKey(fset, d.Pos)
	m := ig.byLine[ignoreKey(file, line)]
	if m == nil {
		return false
	}
	return m[d.Category] || m["all"]
}
