package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// FloatCompare enforces numeric discipline outside tests:
//
//   - `==` / `!=` between float or complex operands is flagged unless
//     one side is the exact constant zero. Equality after rounding is
//     the classic silent-wrong-answer bug; the zero exemption covers the
//     engine's deliberate sparsity skips (`if amp == 0 { continue }`),
//     which compare against the one value IEEE arithmetic produces
//     exactly. Anything else should go through core.AlmostEqual /
//     core.AlmostEqualC with an explicit tolerance.
//   - `cmplx.Abs(z) * cmplx.Abs(z)` is flagged: it pays two square
//     roots to compute |z|², which `real(z)*real(z)+imag(z)*imag(z)`
//     yields exactly with two multiplies — the form every hot sweep in
//     internal/state and internal/pauli already uses. When z is a
//     side-effect-free identifier or selector the rewrite is offered as
//     a suggested fix.
var FloatCompare = &Analyzer{
	Name: "floatcompare",
	Doc: "flag ==/!= on float/complex values (except exact-zero sparsity guards) and " +
		"cmplx.Abs(z)*cmplx.Abs(z) squared-modulus computations, outside _test files",
	Run: runFloatCompare,
}

func runFloatCompare(pass *Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests compare exact values on purpose
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				checkFloatEquality(pass, be)
			case token.MUL:
				checkAbsSquared(pass, be)
			}
			return true
		})
	}
	return nil
}

func checkFloatEquality(pass *Pass, be *ast.BinaryExpr) {
	lt, rt := pass.TypeOf(be.X), pass.TypeOf(be.Y)
	if !isFloatOrComplex(lt) && !isFloatOrComplex(rt) {
		return
	}
	if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
		return // sparsity guard against the exactly-representable zero
	}
	kind := "floating-point"
	if isComplexType(lt) || isComplexType(rt) {
		kind = "complex"
	}
	pass.ReportRangef(be, "%s %s comparison is exact; use core.AlmostEqual/AlmostEqualC with a tolerance "+
		"(or compare against the exact constant 0 for sparsity skips)", kind, be.Op)
}

// checkAbsSquared matches cmplx.Abs(z) * cmplx.Abs(z) with syntactically
// identical arguments.
func checkAbsSquared(pass *Pass, be *ast.BinaryExpr) {
	lz, lok := cmplxAbsArg(pass, be.X)
	rz, rok := cmplxAbsArg(pass, be.Y)
	if !lok || !rok {
		return
	}
	lsrc, rsrc := exprSource(pass.Fset, lz), exprSource(pass.Fset, rz)
	if lsrc != rsrc {
		return
	}
	d := Diagnostic{
		Pos: be.Pos(), End: be.End(),
		Message: "cmplx.Abs(z)*cmplx.Abs(z) takes two square roots to compute |z|²; " +
			"use real(z)*real(z)+imag(z)*imag(z)",
	}
	if sideEffectFree(lz) {
		repl := fmt.Sprintf("real(%[1]s)*real(%[1]s)+imag(%[1]s)*imag(%[1]s)", lsrc)
		d.SuggestedFixes = []SuggestedFix{{
			Message:   "replace with real*real+imag*imag",
			TextEdits: []TextEdit{{Pos: be.Pos(), End: be.End(), NewText: []byte(repl)}},
		}}
	}
	pass.Report(d)
}

func cmplxAbsArg(pass *Pass, e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || !isPkgFunc(pass.Info, call, "math/cmplx", "Abs") {
		return nil, false
	}
	return call.Args[0], true
}

// sideEffectFree reports whether duplicating e from two evaluations to
// four is safe and cheap: identifiers, selector chains, and constant
// index expressions only.
func sideEffectFree(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return sideEffectFree(x.X)
	case *ast.IndexExpr:
		return sideEffectFree(x.X) && sideEffectFree(x.Index)
	}
	return false
}

func exprSource(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

func isFloatOrComplex(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isComplexType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsComplex != 0
}

// isExactZero reports whether e is a constant expression whose value is
// exactly zero (0, 0.0, 0i, or a named constant thereof).
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 && constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}
