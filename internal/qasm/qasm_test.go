package qasm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
# Bell pair
qreg q[2]
h q[0]
cx q[0], q[1]
measure q[0]
measure q[1]
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 || len(c.Gates) != 4 {
		t.Fatalf("shape: %d qubits, %d gates", c.NumQubits, len(c.Gates))
	}
	if c.Gates[0].Kind != gate.H || c.Gates[1].Kind != gate.CX {
		t.Error("gates wrong")
	}
}

func TestParseParameters(t *testing.T) {
	c, err := ParseString("qreg q[1]\nrx(0.5) q[0]\nrz(-1.25e-1) q[0]\nu3(0.1,0.2,0.3) q[0]\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Params[0] != 0.5 || c.Gates[1].Params[0] != -0.125 {
		t.Error("params wrong")
	}
	if len(c.Gates[2].Params) != 3 {
		t.Error("u3 params")
	}
}

func TestParseSymbolicPi(t *testing.T) {
	c, err := ParseString("qreg q[1]\nrx(pi) q[0]\nrz(pi/2) q[0]\nry(-pi/4) q[0]\n")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Gates[0].Params[0]-math.Pi) > 1e-12 {
		t.Error("pi")
	}
	if math.Abs(c.Gates[1].Params[0]-math.Pi/2) > 1e-12 {
		t.Error("pi/2")
	}
	if math.Abs(c.Gates[2].Params[0]+math.Pi/4) > 1e-12 {
		t.Error("-pi/4")
	}
}

func TestParseComments(t *testing.T) {
	c, err := ParseString("qreg q[1]\n// comment\n# another\n\nx q[0]\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 {
		t.Error("comments not skipped")
	}
}

func TestParseBarrier(t *testing.T) {
	c, err := ParseString("qreg q[2]\nh q[0]\nbarrier\nh q[1]\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[1].Kind != gate.Barrier {
		t.Error("barrier")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing qreg":    "h q[0]\n",
		"no program":      "",
		"duplicate qreg":  "qreg q[1]\nqreg q[2]\n",
		"unknown gate":    "qreg q[1]\nfoo q[0]\n",
		"bad qubit ref":   "qreg q[1]\nx qubit0\n",
		"out of range":    "qreg q[1]\nx q[5]\n",
		"wrong arity":     "qreg q[2]\ncx q[0]\n",
		"missing param":   "qreg q[1]\nrx q[0]\n",
		"extra param":     "qreg q[1]\nx(0.5) q[0]\n",
		"bad param":       "qreg q[1]\nrx(abc) q[0]\n",
		"unclosed params": "qreg q[1]\nrx(0.5 q[0]\n",
		"duplicate qubit": "qreg q[2]\ncx q[1], q[1]\n",
		"fused rejected":  "qreg q[1]\nfused1q q[0]\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestSyntaxErrorIncludesLine(t *testing.T) {
	_, err := ParseString("qreg q[1]\nx q[0]\nbogus q[0]\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 3 {
		t.Errorf("line %d, want 3", se.Line)
	}
	if !strings.Contains(se.Error(), "line 3") {
		t.Error("message missing line")
	}
}

func TestRoundTrip(t *testing.T) {
	orig := circuit.New(3).
		H(0).CX(0, 1).RZ(0.5, 2).RXX(-0.7, 0, 2).T(1).Barrier().
		SWAP(0, 2).CP(1.25, 1, 2).Measure(0)
	parsed, err := ParseString(WriteString(orig))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Gates) != len(orig.Gates) {
		t.Fatalf("gate count %d vs %d", len(parsed.Gates), len(orig.Gates))
	}
	for i := range orig.Gates {
		a, b := orig.Gates[i], parsed.Gates[i]
		if a.Kind != b.Kind || len(a.Qubits) != len(b.Qubits) {
			t.Fatalf("gate %d differs: %v vs %v", i, a, b)
		}
		for j := range a.Params {
			if math.Abs(a.Params[j]-b.Params[j]) > 1e-12 {
				t.Fatalf("gate %d param %d: %v vs %v", i, j, a.Params[j], b.Params[j])
			}
		}
	}
}

func TestRoundTripSemantics(t *testing.T) {
	rng := core.NewRNG(4)
	c := circuit.New(3)
	for i := 0; i < 15; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(3))
		case 1:
			c.RY(rng.Float64()*2-1, rng.Intn(3))
		case 2:
			a, b := rng.Intn(3), rng.Intn(3)
			for b == a {
				b = rng.Intn(3)
			}
			c.CX(a, b)
		case 3:
			c.T(rng.Intn(3))
		}
	}
	parsed, err := ParseString(WriteString(c))
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Unitary().EqualUpToPhase(c.Unitary(), 1e-10) {
		t.Error("round-trip changed semantics")
	}
}

func TestWriteToWriter(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, circuit.New(1).X(0)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x q[0]") {
		t.Error("write output wrong")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any builder-generated circuit survives serialize → parse
	// with identical gate structure.
	f := func(seed uint16) bool {
		rng := core.NewRNG(uint64(seed) + 1)
		c := circuit.New(4)
		for i := 0; i < 12; i++ {
			switch rng.Intn(6) {
			case 0:
				c.H(rng.Intn(4))
			case 1:
				c.RZ(float64(rng.Intn(1000))/250-2, rng.Intn(4))
			case 2:
				c.T(rng.Intn(4))
			case 3:
				a, b := rng.Intn(4), rng.Intn(4)
				for b == a {
					b = rng.Intn(4)
				}
				c.CX(a, b)
			case 4:
				c.Barrier()
			case 5:
				a, b := rng.Intn(4), rng.Intn(4)
				for b == a {
					b = rng.Intn(4)
				}
				c.CP(float64(rng.Intn(628))/100, a, b)
			}
		}
		parsed, err := ParseString(WriteString(c))
		if err != nil || len(parsed.Gates) != len(c.Gates) {
			return false
		}
		for i := range c.Gates {
			if parsed.Gates[i].Kind != c.Gates[i].Kind {
				return false
			}
			for j := range c.Gates[i].Params {
				if math.Abs(parsed.Gates[i].Params[j]-c.Gates[i].Params[j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
