// Package qasm reads and writes the QASM-lite circuit dialect used by the
// command-line tools: one gate per line, lower-case mnemonics matching the
// gate package, parenthesized parameters, and q[i] operands. It is a
// deliberately small assembly format (not full OpenQASM) sufficient to
// round-trip every circuit this library produces.
//
//	qreg q[4]
//	h q[0]
//	cx q[0], q[1]
//	rx(0.5) q[2]
//	barrier
//	measure q[3]
//
// Lines starting with '#' or '//' are comments; blank lines are ignored.
package qasm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/gate"
)

// SyntaxError reports a parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("qasm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a QASM-lite program.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var c *circuit.Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "qreg") {
			if c != nil {
				return nil, errf(lineNo, "duplicate qreg")
			}
			n, err := parseQubitRef(strings.TrimSpace(strings.TrimPrefix(line, "qreg")))
			if err != nil {
				return nil, errf(lineNo, "bad qreg: %v", err)
			}
			c = circuit.New(n)
			continue
		}
		if c == nil {
			return nil, errf(lineNo, "gate before qreg declaration")
		}
		g, err := parseGateLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		if err := safeAppend(c, g, lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, errf(0, "missing qreg declaration")
	}
	return c, nil
}

// safeAppend converts circuit validation panics into syntax errors.
func safeAppend(c *circuit.Circuit, g gate.Gate, line int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errf(line, "%v", r)
		}
	}()
	c.Append(g)
	return nil
}

// ParseString parses from a string.
func ParseString(src string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(src))
}

// parseQubitRef parses "q[N]" and returns N.
func parseQubitRef(s string) (int, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "q[") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("want q[N], got %q", s)
	}
	n, err := strconv.Atoi(s[2 : len(s)-1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad index in %q", s)
	}
	return n, nil
}

// parseGateLine parses "name(params) q[a], q[b]".
func parseGateLine(line string, lineNo int) (gate.Gate, error) {
	var zero gate.Gate
	head := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		head, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	name := head
	var params []float64
	if i := strings.IndexByte(head, '('); i >= 0 {
		if !strings.HasSuffix(head, ")") {
			return zero, errf(lineNo, "unclosed parameter list in %q", head)
		}
		name = head[:i]
		for _, p := range strings.Split(head[i+1:len(head)-1], ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			v, err := parseParam(p)
			if err != nil {
				return zero, errf(lineNo, "bad parameter %q", p)
			}
			params = append(params, v)
		}
	}
	kind, ok := gate.KindByName(name)
	if !ok {
		return zero, errf(lineNo, "unknown gate %q", name)
	}
	if kind == gate.Fused1Q || kind == gate.Fused2Q {
		return zero, errf(lineNo, "fused gates cannot be parsed from text")
	}
	var qubits []int
	if rest != "" {
		for _, ref := range strings.Split(rest, ",") {
			q, err := parseQubitRef(ref)
			if err != nil {
				return zero, errf(lineNo, "%v", err)
			}
			qubits = append(qubits, q)
		}
	}
	if err := checkArity(kind, len(qubits), len(params)); err != nil {
		return zero, errf(lineNo, "%v", err)
	}
	return gate.Gate{Kind: kind, Qubits: qubits, Params: params}, nil
}

// parseParam accepts floats plus the common symbolic forms pi, -pi, pi/2…
func parseParam(s string) (float64, error) {
	replaced := strings.ReplaceAll(strings.ToLower(s), "pi", "3.141592653589793")
	if v, err := strconv.ParseFloat(replaced, 64); err == nil {
		return v, nil
	}
	// Simple division form a/b.
	if i := strings.IndexByte(replaced, '/'); i > 0 {
		a, err1 := strconv.ParseFloat(strings.TrimSpace(replaced[:i]), 64)
		b, err2 := strconv.ParseFloat(strings.TrimSpace(replaced[i+1:]), 64)
		if err1 == nil && err2 == nil && b != 0 {
			return a / b, nil
		}
	}
	return 0, fmt.Errorf("unparseable %q", s)
}

// checkArity validates qubit/parameter counts per gate kind.
func checkArity(k gate.Kind, nq, np int) error {
	wantQ, wantP := 1, 0
	switch k {
	case gate.RX, gate.RY, gate.RZ, gate.P:
		wantP = 1
	case gate.U3:
		wantP = 3
	case gate.CX, gate.CY, gate.CZ, gate.CH, gate.SWAP, gate.ISWAP:
		wantQ = 2
	case gate.CP, gate.CRX, gate.CRY, gate.CRZ, gate.RXX, gate.RYY, gate.RZZ:
		wantQ, wantP = 2, 1
	case gate.Barrier:
		wantQ = 0
	}
	if nq != wantQ {
		return fmt.Errorf("%v wants %d qubit(s), got %d", k, wantQ, nq)
	}
	if np != wantP {
		return fmt.Errorf("%v wants %d parameter(s), got %d", k, wantP, np)
	}
	return nil
}

// Write serializes a circuit (the inverse of Parse for non-fused
// circuits).
func Write(w io.Writer, c *circuit.Circuit) error {
	_, err := io.WriteString(w, c.String())
	return err
}

// WriteString serializes to a string.
func WriteString(c *circuit.Circuit) string { return c.String() }
