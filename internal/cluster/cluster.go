// Package cluster implements a rank-partitioned state-vector backend that
// simulates NWQ-Sim's multi-node (PGAS / SV-Sim) execution model in a
// single process. The 2ⁿ amplitudes are split across R = 2ʳ ranks; the
// low n−r qubits are "local" (gates touch only a rank's own block) and the
// high r qubits are "global" (gates require pairwise block exchange, the
// analogue of NVSHMEM/MPI communication on Perlmutter). Communication
// volume is tracked so the benchmarks can report the local/global gate
// cost asymmetry that dominates multi-node scaling.
package cluster

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/kernel/tuning"
	"repro/internal/linalg"
	"repro/internal/resilience"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// Communication instruments mirroring CommStats into the process-wide
// telemetry scope, so run reports show simulated shard traffic (the
// NVSHMEM/MPI byte volume the paper's multi-node scaling hinges on)
// without threading a Cluster handle to the reporter.
var (
	mCommMessages = telemetry.GetCounter("cluster.comm.messages")
	mCommBytes    = telemetry.GetCounter("cluster.comm.bytes")
	mQubitSwaps   = telemetry.GetCounter("cluster.comm.swaps")
	mLocalGates   = telemetry.GetCounter("cluster.gates.local")
	mGlobalGates  = telemetry.GetCounter("cluster.gates.global")
)

// CommStats records simulated inter-rank traffic.
type CommStats struct {
	Messages         int    // block transfers between rank pairs
	BytesTransferred uint64 // total payload
	LocalGates       int    // gates applied without communication
	GlobalGates      int    // gates requiring exchange
	QubitSwaps       int    // local/global remap operations
}

// Cluster is a distributed state vector.
type Cluster struct {
	n       int // total qubits
	rankLog int // log2(ranks)
	localN  int // local qubits per rank = n - rankLog
	blocks  [][]complex128
	workers int
	pool    *state.Pool // persistent per-cluster rank pool (one goroutine per simulated rank)
	stats   CommStats
	statsMu sync.Mutex

	opts Options
	// recv / send are per-rank exchange buffers, allocated only when
	// verified communication is on: a transfer lands in recv before it is
	// checksum-validated and applied, so a failed attempt can be retried
	// from the intact source.
	recv [][]complex128
	send [][]complex128
}

// New creates an n-qubit cluster state |0…0⟩ over numRanks ranks
// (numRanks must be a power of two, ≤ 2ⁿ⁻²  so that at least two local
// qubits exist for two-qubit gate remapping).
func New(n, numRanks int) (*Cluster, error) {
	return NewWithOptions(n, numRanks, Options{})
}

// NewWithOptions creates a cluster with an explicit resilience
// configuration (fault injection, verified transfers, watchdog).
func NewWithOptions(n, numRanks int, opts Options) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need ≥2 qubits", core.ErrInvalidArgument)
	}
	if numRanks < 1 || numRanks&(numRanks-1) != 0 {
		return nil, fmt.Errorf("%w: ranks %d not a power of two", core.ErrInvalidArgument, numRanks)
	}
	rankLog := bits.TrailingZeros(uint(numRanks))
	if rankLog > n-2 {
		return nil, fmt.Errorf("%w: %d ranks leave <2 local qubits of %d", core.ErrInvalidArgument, numRanks, n)
	}
	localDim := 1 << uint(n-rankLog)
	c := &Cluster{n: n, rankLog: rankLog, localN: n - rankLog, workers: numRanks, opts: opts}
	c.blocks = make([][]complex128, numRanks)
	for r := range c.blocks {
		c.blocks[r] = make([]complex128, localDim)
	}
	c.blocks[0][0] = 1
	if numRanks > 1 && localDim >= tuning.ClusterPoolMin() {
		// One persistent goroutine per simulated rank, created once and
		// reused by every gate instead of spawning per gate application.
		// Below the calibrated per-rank amplitude cutoff the inline rank
		// loop beats the goroutine handoff, so no pool is started
		// (eachRank/eachRankPair fall back to inline execution).
		c.pool = state.NewPool(numRanks)
	}
	if c.verifiedComm() {
		c.recv = make([][]complex128, numRanks)
		c.send = make([][]complex128, numRanks)
		for r := range c.recv {
			c.recv[r] = make([]complex128, localDim)
			c.send[r] = make([]complex128, localDim)
		}
	}
	return c, nil
}

// NumQubits returns the register width.
func (c *Cluster) NumQubits() int { return c.n }

// NumRanks returns the rank count.
func (c *Cluster) NumRanks() int { return len(c.blocks) }

// Stats returns a consistent copy of the communication counters. The
// lock matters: addComm runs on the rank pool's worker goroutines, so an
// unguarded read here would race with in-flight global gates.
func (c *Cluster) Stats() CommStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// isLocal reports whether qubit q lives inside each rank's block.
func (c *Cluster) isLocal(q int) bool { return q < c.localN }

// eachRank runs body(rank) concurrently over all ranks on the persistent
// rank pool (inline for a single-rank cluster).
func (c *Cluster) eachRank(body func(r int)) {
	if c.pool == nil {
		for r := range c.blocks {
			body(r)
		}
		return
	}
	// One chunk per rank: Run with chunks == ranks yields exactly the
	// ranges [r, r+1).
	c.pool.Run(uint64(len(c.blocks)), len(c.blocks), func(_ int, lo, _ uint64) {
		body(int(lo))
	})
}

// eachRankPair runs body over all rank pairs differing in globalBit.
func (c *Cluster) eachRankPair(globalBit int, body func(r0, r1 int)) {
	bit := 1 << uint(globalBit)
	var pairs []int
	for r := range c.blocks {
		if r&bit == 0 {
			pairs = append(pairs, r)
		}
	}
	if c.pool == nil || len(pairs) == 1 {
		for _, r0 := range pairs {
			body(r0, r0|bit)
		}
		return
	}
	c.pool.Run(uint64(len(pairs)), len(pairs), func(_ int, lo, _ uint64) {
		r0 := pairs[lo]
		body(r0, r0|bit)
	})
}

func (c *Cluster) addComm(messages int, bytes uint64) {
	c.statsMu.Lock()
	c.stats.Messages += messages
	c.stats.BytesTransferred += bytes
	c.statsMu.Unlock()
	mCommMessages.Add(int64(messages))
	mCommBytes.Add(int64(bytes))
}

// Gate-census bumps, all under statsMu so Stats() can read concurrently
// with gate application.
func (c *Cluster) noteLocalGate() {
	c.statsMu.Lock()
	c.stats.LocalGates++
	c.statsMu.Unlock()
	mLocalGates.Inc()
}

func (c *Cluster) noteGlobalGate() {
	c.statsMu.Lock()
	c.stats.GlobalGates++
	c.statsMu.Unlock()
	mGlobalGates.Inc()
}

func (c *Cluster) noteSwap() {
	c.statsMu.Lock()
	c.stats.QubitSwaps++
	c.statsMu.Unlock()
	mQubitSwaps.Inc()
}

// reclassifyLocalAsGlobal undoes one local-gate count for a two-qubit
// gate that needed remapping (it was already counted as global).
func (c *Cluster) reclassifyLocalAsGlobal() {
	c.statsMu.Lock()
	c.stats.LocalGates--
	c.statsMu.Unlock()
	mLocalGates.Add(-1)
}

// apply1QLocal applies a 2×2 matrix to a local qubit: embarrassingly
// parallel across ranks.
func (c *Cluster) apply1QLocal(u *linalg.Matrix, q int) {
	u00, u01, u10, u11 := u.At(0, 0), u.At(0, 1), u.At(1, 0), u.At(1, 1)
	half := uint64(len(c.blocks[0]) / 2)
	c.eachRank(func(r int) {
		blk := c.blocks[r]
		for rest := uint64(0); rest < half; rest++ {
			i0 := core.InsertZeroBit(rest, q)
			i1 := i0 | 1<<uint(q)
			a0, a1 := blk[i0], blk[i1]
			blk[i0] = u00*a0 + u01*a1
			blk[i1] = u10*a0 + u11*a1
		}
	})
	c.noteLocalGate()
}

// apply1QGlobal applies a 2×2 matrix to a global qubit: every rank pair
// exchanges its full block (the SV-Sim all-pairs pattern). Under
// verified communication each side receives its partner's block into a
// staging buffer via transfer(), so a faulted exchange retries from the
// still-intact source block.
func (c *Cluster) apply1QGlobal(ctx context.Context, u *linalg.Matrix, q int) error {
	u00, u01, u10, u11 := u.At(0, 0), u.At(0, 1), u.At(1, 0), u.At(1, 1)
	gbit := q - c.localN
	blockBytes := uint64(len(c.blocks[0])) * state.BytesPerAmp
	verified := c.verifiedComm()
	var errMu sync.Mutex
	var firstErr error
	c.eachRankPair(gbit, func(r0, r1 int) {
		b0, b1 := c.blocks[r0], c.blocks[r1]
		if verified {
			if err := c.transfer(ctx, c.recv[r0], b1); err == nil {
				err = c.transfer(ctx, c.recv[r1], b0)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			} else {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			r0recv, r1recv := c.recv[r0], c.recv[r1]
			for i := range b0 {
				b0[i] = u00*b0[i] + u01*r0recv[i]
				b1[i] = u10*r1recv[i] + u11*b1[i]
			}
		} else {
			// "Receive" the partner block (simulated transfer), then update.
			for i := range b0 {
				a0, a1 := b0[i], b1[i]
				b0[i] = u00*a0 + u01*a1
				b1[i] = u10*a0 + u11*a1
			}
		}
		c.addComm(2, 2*blockBytes)
	})
	if firstErr != nil {
		return firstErr
	}
	c.noteGlobalGate()
	return nil
}

// swapLocalGlobal exchanges qubit roles: local qubit l ↔ global qubit g.
// Amplitudes where the two bits differ migrate between rank pairs; this is
// the qubit-remapping communication primitive used before two-qubit gates
// touching global qubits.
func (c *Cluster) swapLocalGlobal(ctx context.Context, l, g int) error {
	gbit := g - c.localN
	half := uint64(len(c.blocks[0]) / 2)
	halfBytes := half * state.BytesPerAmp
	verified := c.verifiedComm()
	var errMu sync.Mutex
	var firstErr error
	c.eachRankPair(gbit, func(r0, r1 int) {
		b0, b1 := c.blocks[r0], c.blocks[r1]
		if verified {
			// Gather the migrating halves into send buffers, exchange them
			// cross-wise through verified transfers, then scatter back —
			// the gather copy is what lets a faulted transfer retry.
			s0, s1 := c.send[r0][:half], c.send[r1][:half]
			for rest := uint64(0); rest < half; rest++ {
				s0[rest] = b0[core.InsertZeroBit(rest, l)|1<<uint(l)] // L=1 in r0
				s1[rest] = b1[core.InsertZeroBit(rest, l)]            // L=0 in r1
			}
			if err := c.transfer(ctx, c.recv[r1][:half], s0); err == nil {
				err = c.transfer(ctx, c.recv[r0][:half], s1)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			} else {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			d0, d1 := c.recv[r0][:half], c.recv[r1][:half]
			for rest := uint64(0); rest < half; rest++ {
				b0[core.InsertZeroBit(rest, l)|1<<uint(l)] = d0[rest]
				b1[core.InsertZeroBit(rest, l)] = d1[rest]
			}
		} else {
			// Rank r0 holds G=0; its L=1 entries swap with r1's L=0 entries.
			for rest := uint64(0); rest < half; rest++ {
				i1 := core.InsertZeroBit(rest, l) | 1<<uint(l) // L=1 in r0
				i0 := core.InsertZeroBit(rest, l)              // L=0 in r1
				b0[i1], b1[i0] = b1[i0], b0[i1]
			}
		}
		c.addComm(2, 2*halfBytes)
	})
	if firstErr != nil {
		return firstErr
	}
	c.noteSwap()
	return nil
}

// apply2QLocal applies a 4×4 matrix to two local qubits (a = high bit).
func (c *Cluster) apply2QLocal(u *linalg.Matrix, a, b int) {
	var m [4][4]complex128
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = u.At(i, j)
		}
	}
	quarter := uint64(len(c.blocks[0]) / 4)
	c.eachRank(func(r int) {
		blk := c.blocks[r]
		for rest := uint64(0); rest < quarter; rest++ {
			base := core.InsertTwoZeroBits(rest, a, b)
			i0 := base
			i1 := base | 1<<uint(b)
			i2 := base | 1<<uint(a)
			i3 := i1 | 1<<uint(a)
			v0, v1, v2, v3 := blk[i0], blk[i1], blk[i2], blk[i3]
			blk[i0] = m[0][0]*v0 + m[0][1]*v1 + m[0][2]*v2 + m[0][3]*v3
			blk[i1] = m[1][0]*v0 + m[1][1]*v1 + m[1][2]*v2 + m[1][3]*v3
			blk[i2] = m[2][0]*v0 + m[2][1]*v1 + m[2][2]*v2 + m[2][3]*v3
			blk[i3] = m[3][0]*v0 + m[3][1]*v1 + m[3][2]*v2 + m[3][3]*v3
		}
	})
	c.noteLocalGate()
}

// freeLocalQubits returns local qubits not in `used`, lowest first.
func (c *Cluster) freeLocalQubits(used ...int) []int {
	inUse := map[int]bool{}
	for _, q := range used {
		inUse[q] = true
	}
	var out []int
	for q := 0; q < c.localN; q++ {
		if !inUse[q] {
			out = append(out, q)
		}
	}
	return out
}

// ApplyGate dispatches one gate, remapping global qubits to local slots as
// needed. Non-unitary markers are rejected (the cluster backend serves
// expectation-value workloads; use the single-node engine for mid-circuit
// measurement). A communication failure that survives the retry policy is
// unrecoverable at this level and panics; use ApplyGateContext to handle
// it as an error.
func (c *Cluster) ApplyGate(g gate.Gate) {
	if err := c.applyGate(context.Background(), g); err != nil {
		panic(fmt.Errorf("cluster: unrecoverable communication failure: %w", err))
	}
}

// ApplyGateContext applies one gate under a context: cancellation aborts
// in-flight retries, and exhausted transfers surface as errors instead
// of panics.
func (c *Cluster) ApplyGateContext(ctx context.Context, g gate.Gate) error {
	return c.applyGate(ctx, g)
}

func (c *Cluster) applyGate(ctx context.Context, g gate.Gate) error {
	if g.Kind == gate.Barrier || g.Kind == gate.I {
		return nil
	}
	if !g.IsUnitary() {
		panic(fmt.Errorf("%w: cluster backend cannot apply %v", core.ErrInvalidArgument, g.Kind))
	}
	switch g.Arity() {
	case 1:
		q := g.Qubits[0]
		if q < 0 || q >= c.n {
			panic(core.QubitError(q, c.n))
		}
		u := g.Matrix2()
		if c.isLocal(q) {
			c.apply1QLocal(u, q)
			return nil
		}
		return c.apply1QGlobal(ctx, u, q)
	case 2:
		a, b := g.Qubits[0], g.Qubits[1]
		if a < 0 || a >= c.n || b < 0 || b >= c.n {
			panic(core.QubitError(a, c.n))
		}
		u := g.Matrix4()
		// Remap any global qubit onto a free local slot, apply, unmap.
		swaps := [][2]int{}
		if !c.isLocal(a) || !c.isLocal(b) {
			free := c.freeLocalQubits(a, b)
			fi := 0
			if !c.isLocal(a) {
				if err := c.swapLocalGlobal(ctx, free[fi], a); err != nil {
					return err
				}
				swaps = append(swaps, [2]int{free[fi], a})
				a = free[fi]
				fi++
			}
			if !c.isLocal(b) {
				if err := c.swapLocalGlobal(ctx, free[fi], b); err != nil {
					return err
				}
				swaps = append(swaps, [2]int{free[fi], b})
				b = free[fi]
				fi++
			}
			c.noteGlobalGate()
		}
		c.apply2QLocal(u, a, b)
		if len(swaps) > 0 {
			c.reclassifyLocalAsGlobal() // counted as a global gate above
		}
		for i := len(swaps) - 1; i >= 0; i-- {
			if err := c.swapLocalGlobal(ctx, swaps[i][0], swaps[i][1]); err != nil {
				return err
			}
		}
		return nil
	default:
		panic(fmt.Sprintf("cluster: arity %d", g.Arity()))
	}
}

// Run applies a circuit.
func (c *Cluster) Run(circ *circuit.Circuit) {
	if err := c.RunContext(context.Background(), circ); err != nil {
		panic(fmt.Errorf("cluster: run: %w", err))
	}
}

// maxWatchdogReplays bounds rollback-and-replay attempts per watchdog
// interval before the drift is reported as a hard error.
const maxWatchdogReplays = 8

// RunContext applies a circuit under a context. When the norm-drift
// watchdog is enabled (Options.NormCheckEvery > 0) the run periodically
// checks the invariant ‖ψ‖ = 1 that unitary circuits preserve; drift
// beyond NormTol means a silent corruption slipped past the transfer
// checksums, and the run rolls back to the last consistent snapshot and
// replays the gates since. Replays are bounded, so a persistently
// faulting exchange eventually surfaces as an error.
func (c *Cluster) RunContext(ctx context.Context, circ *circuit.Circuit) error {
	if circ.NumQubits > c.n {
		return fmt.Errorf("cluster: circuit needs %d qubits, register has %d: %w", circ.NumQubits, c.n, core.ErrDimensionMismatch)
	}
	if !c.watchdogOn() {
		for _, g := range circ.Gates {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := c.applyGate(ctx, g); err != nil {
				return err
			}
		}
		return nil
	}
	every := c.opts.NormCheckEvery
	tol := c.normTol()
	snap := c.snapshot(nil)
	snapIdx := 0
	replays := 0
	for i := 0; i < len(circ.Gates); {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.applyGate(ctx, circ.Gates[i]); err != nil {
			return err
		}
		i++
		if i%every != 0 && i != len(circ.Gates) {
			continue
		}
		if math.Abs(c.Norm()-1) > tol {
			replays++
			if replays > maxWatchdogReplays {
				return fmt.Errorf("cluster: norm drift persists after %d replays: %w", maxWatchdogReplays, resilience.ErrCorrupted)
			}
			mRollbacks.Inc()
			mReplayedGates.Add(int64(i - snapIdx))
			c.restore(snap)
			i = snapIdx
			continue
		}
		snap = c.snapshot(snap)
		snapIdx = i
		replays = 0
	}
	return nil
}

// Gather copies the distributed amplitudes into one contiguous vector
// (rank r owns indices [r·2^localN, (r+1)·2^localN)).
func (c *Cluster) Gather() []complex128 {
	out := make([]complex128, 0, len(c.blocks)*len(c.blocks[0]))
	for _, blk := range c.blocks {
		out = append(out, blk...)
	}
	return out
}

// ToState gathers into a single-node State (for measurement/expectation).
func (c *Cluster) ToState() (*state.State, error) {
	return state.FromAmplitudes(c.Gather(), state.Options{})
}

// Norm returns ‖ψ‖ computed as a distributed reduction.
func (c *Cluster) Norm() float64 {
	partial := make([]float64, len(c.blocks))
	c.eachRank(func(r int) {
		s := 0.0
		for _, a := range c.blocks[r] {
			s += real(a)*real(a) + imag(a)*imag(a)
		}
		partial[r] = s
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return math.Sqrt(total)
}
