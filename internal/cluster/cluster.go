// Package cluster implements a rank-partitioned state-vector backend that
// simulates NWQ-Sim's multi-node (PGAS / SV-Sim) execution model in a
// single process. The 2ⁿ amplitudes are split across R = 2ʳ ranks; the
// low n−r qubits are "local" (gates touch only a rank's own block) and the
// high r qubits are "global" (gates require pairwise block exchange, the
// analogue of NVSHMEM/MPI communication on Perlmutter). Communication
// volume is tracked so the benchmarks can report the local/global gate
// cost asymmetry that dominates multi-node scaling.
package cluster

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// Communication instruments mirroring CommStats into the process-wide
// telemetry scope, so run reports show simulated shard traffic (the
// NVSHMEM/MPI byte volume the paper's multi-node scaling hinges on)
// without threading a Cluster handle to the reporter.
var (
	mCommMessages = telemetry.GetCounter("cluster.comm.messages")
	mCommBytes    = telemetry.GetCounter("cluster.comm.bytes")
	mQubitSwaps   = telemetry.GetCounter("cluster.comm.swaps")
	mLocalGates   = telemetry.GetCounter("cluster.gates.local")
	mGlobalGates  = telemetry.GetCounter("cluster.gates.global")
)

// CommStats records simulated inter-rank traffic.
type CommStats struct {
	Messages         int    // block transfers between rank pairs
	BytesTransferred uint64 // total payload
	LocalGates       int    // gates applied without communication
	GlobalGates      int    // gates requiring exchange
	QubitSwaps       int    // local/global remap operations
}

// Cluster is a distributed state vector.
type Cluster struct {
	n       int // total qubits
	rankLog int // log2(ranks)
	localN  int // local qubits per rank = n - rankLog
	blocks  [][]complex128
	workers int
	pool    *state.Pool // persistent per-cluster rank pool (one goroutine per simulated rank)
	stats   CommStats
	statsMu sync.Mutex
}

// New creates an n-qubit cluster state |0…0⟩ over numRanks ranks
// (numRanks must be a power of two, ≤ 2ⁿ⁻²  so that at least two local
// qubits exist for two-qubit gate remapping).
func New(n, numRanks int) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need ≥2 qubits", core.ErrInvalidArgument)
	}
	if numRanks < 1 || numRanks&(numRanks-1) != 0 {
		return nil, fmt.Errorf("%w: ranks %d not a power of two", core.ErrInvalidArgument, numRanks)
	}
	rankLog := bits.TrailingZeros(uint(numRanks))
	if rankLog > n-2 {
		return nil, fmt.Errorf("%w: %d ranks leave <2 local qubits of %d", core.ErrInvalidArgument, numRanks, n)
	}
	localDim := 1 << uint(n-rankLog)
	c := &Cluster{n: n, rankLog: rankLog, localN: n - rankLog, workers: numRanks}
	c.blocks = make([][]complex128, numRanks)
	for r := range c.blocks {
		c.blocks[r] = make([]complex128, localDim)
	}
	c.blocks[0][0] = 1
	if numRanks > 1 {
		// One persistent goroutine per simulated rank, created once and
		// reused by every gate instead of spawning per gate application.
		c.pool = state.NewPool(numRanks)
	}
	return c, nil
}

// NumQubits returns the register width.
func (c *Cluster) NumQubits() int { return c.n }

// NumRanks returns the rank count.
func (c *Cluster) NumRanks() int { return len(c.blocks) }

// Stats returns the communication counters.
func (c *Cluster) Stats() CommStats { return c.stats }

// isLocal reports whether qubit q lives inside each rank's block.
func (c *Cluster) isLocal(q int) bool { return q < c.localN }

// eachRank runs body(rank) concurrently over all ranks on the persistent
// rank pool (inline for a single-rank cluster).
func (c *Cluster) eachRank(body func(r int)) {
	if c.pool == nil {
		for r := range c.blocks {
			body(r)
		}
		return
	}
	// One chunk per rank: Run with chunks == ranks yields exactly the
	// ranges [r, r+1).
	c.pool.Run(uint64(len(c.blocks)), len(c.blocks), func(_ int, lo, _ uint64) {
		body(int(lo))
	})
}

// eachRankPair runs body over all rank pairs differing in globalBit.
func (c *Cluster) eachRankPair(globalBit int, body func(r0, r1 int)) {
	bit := 1 << uint(globalBit)
	var pairs []int
	for r := range c.blocks {
		if r&bit == 0 {
			pairs = append(pairs, r)
		}
	}
	if c.pool == nil || len(pairs) == 1 {
		for _, r0 := range pairs {
			body(r0, r0|bit)
		}
		return
	}
	c.pool.Run(uint64(len(pairs)), len(pairs), func(_ int, lo, _ uint64) {
		r0 := pairs[lo]
		body(r0, r0|bit)
	})
}

func (c *Cluster) addComm(messages int, bytes uint64) {
	c.statsMu.Lock()
	c.stats.Messages += messages
	c.stats.BytesTransferred += bytes
	c.statsMu.Unlock()
	mCommMessages.Add(int64(messages))
	mCommBytes.Add(int64(bytes))
}

// apply1QLocal applies a 2×2 matrix to a local qubit: embarrassingly
// parallel across ranks.
func (c *Cluster) apply1QLocal(u *linalg.Matrix, q int) {
	u00, u01, u10, u11 := u.At(0, 0), u.At(0, 1), u.At(1, 0), u.At(1, 1)
	half := uint64(len(c.blocks[0]) / 2)
	c.eachRank(func(r int) {
		blk := c.blocks[r]
		for rest := uint64(0); rest < half; rest++ {
			i0 := core.InsertZeroBit(rest, q)
			i1 := i0 | 1<<uint(q)
			a0, a1 := blk[i0], blk[i1]
			blk[i0] = u00*a0 + u01*a1
			blk[i1] = u10*a0 + u11*a1
		}
	})
	c.stats.LocalGates++
	mLocalGates.Inc()
}

// apply1QGlobal applies a 2×2 matrix to a global qubit: every rank pair
// exchanges its full block (the SV-Sim all-pairs pattern).
func (c *Cluster) apply1QGlobal(u *linalg.Matrix, q int) {
	u00, u01, u10, u11 := u.At(0, 0), u.At(0, 1), u.At(1, 0), u.At(1, 1)
	gbit := q - c.localN
	blockBytes := uint64(len(c.blocks[0])) * state.BytesPerAmp
	c.eachRankPair(gbit, func(r0, r1 int) {
		b0, b1 := c.blocks[r0], c.blocks[r1]
		// "Receive" the partner block (simulated transfer), then update.
		for i := range b0 {
			a0, a1 := b0[i], b1[i]
			b0[i] = u00*a0 + u01*a1
			b1[i] = u10*a0 + u11*a1
		}
		c.addComm(2, 2*blockBytes)
	})
	c.stats.GlobalGates++
	mGlobalGates.Inc()
}

// swapLocalGlobal exchanges qubit roles: local qubit l ↔ global qubit g.
// Amplitudes where the two bits differ migrate between rank pairs; this is
// the qubit-remapping communication primitive used before two-qubit gates
// touching global qubits.
func (c *Cluster) swapLocalGlobal(l, g int) {
	gbit := g - c.localN
	half := uint64(len(c.blocks[0]) / 2)
	halfBytes := half * state.BytesPerAmp
	c.eachRankPair(gbit, func(r0, r1 int) {
		b0, b1 := c.blocks[r0], c.blocks[r1]
		// Rank r0 holds G=0; its L=1 entries swap with r1's L=0 entries.
		for rest := uint64(0); rest < half; rest++ {
			i1 := core.InsertZeroBit(rest, l) | 1<<uint(l) // L=1 in r0
			i0 := core.InsertZeroBit(rest, l)              // L=0 in r1
			b0[i1], b1[i0] = b1[i0], b0[i1]
		}
		c.addComm(2, 2*halfBytes)
	})
	c.statsMu.Lock()
	c.stats.QubitSwaps++
	c.statsMu.Unlock()
	mQubitSwaps.Inc()
}

// apply2QLocal applies a 4×4 matrix to two local qubits (a = high bit).
func (c *Cluster) apply2QLocal(u *linalg.Matrix, a, b int) {
	var m [4][4]complex128
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m[i][j] = u.At(i, j)
		}
	}
	quarter := uint64(len(c.blocks[0]) / 4)
	c.eachRank(func(r int) {
		blk := c.blocks[r]
		for rest := uint64(0); rest < quarter; rest++ {
			base := core.InsertTwoZeroBits(rest, a, b)
			i0 := base
			i1 := base | 1<<uint(b)
			i2 := base | 1<<uint(a)
			i3 := i1 | 1<<uint(a)
			v0, v1, v2, v3 := blk[i0], blk[i1], blk[i2], blk[i3]
			blk[i0] = m[0][0]*v0 + m[0][1]*v1 + m[0][2]*v2 + m[0][3]*v3
			blk[i1] = m[1][0]*v0 + m[1][1]*v1 + m[1][2]*v2 + m[1][3]*v3
			blk[i2] = m[2][0]*v0 + m[2][1]*v1 + m[2][2]*v2 + m[2][3]*v3
			blk[i3] = m[3][0]*v0 + m[3][1]*v1 + m[3][2]*v2 + m[3][3]*v3
		}
	})
	c.stats.LocalGates++
	mLocalGates.Inc()
}

// freeLocalQubits returns local qubits not in `used`, lowest first.
func (c *Cluster) freeLocalQubits(used ...int) []int {
	inUse := map[int]bool{}
	for _, q := range used {
		inUse[q] = true
	}
	var out []int
	for q := 0; q < c.localN; q++ {
		if !inUse[q] {
			out = append(out, q)
		}
	}
	return out
}

// ApplyGate dispatches one gate, remapping global qubits to local slots as
// needed. Non-unitary markers are rejected (the cluster backend serves
// expectation-value workloads; use the single-node engine for mid-circuit
// measurement).
func (c *Cluster) ApplyGate(g gate.Gate) {
	if g.Kind == gate.Barrier || g.Kind == gate.I {
		return
	}
	if !g.IsUnitary() {
		panic(fmt.Errorf("%w: cluster backend cannot apply %v", core.ErrInvalidArgument, g.Kind))
	}
	switch g.Arity() {
	case 1:
		q := g.Qubits[0]
		if q < 0 || q >= c.n {
			panic(core.QubitError(q, c.n))
		}
		u := g.Matrix2()
		if c.isLocal(q) {
			c.apply1QLocal(u, q)
		} else {
			c.apply1QGlobal(u, q)
		}
	case 2:
		a, b := g.Qubits[0], g.Qubits[1]
		if a < 0 || a >= c.n || b < 0 || b >= c.n {
			panic(core.QubitError(a, c.n))
		}
		u := g.Matrix4()
		// Remap any global qubit onto a free local slot, apply, unmap.
		swaps := [][2]int{}
		if !c.isLocal(a) || !c.isLocal(b) {
			free := c.freeLocalQubits(a, b)
			fi := 0
			if !c.isLocal(a) {
				c.swapLocalGlobal(free[fi], a)
				swaps = append(swaps, [2]int{free[fi], a})
				a = free[fi]
				fi++
			}
			if !c.isLocal(b) {
				c.swapLocalGlobal(free[fi], b)
				swaps = append(swaps, [2]int{free[fi], b})
				b = free[fi]
				fi++
			}
			c.stats.GlobalGates++
			mGlobalGates.Inc()
		}
		c.apply2QLocal(u, a, b)
		if len(swaps) > 0 {
			c.stats.LocalGates-- // counted as a global gate above
			mLocalGates.Add(-1)
		}
		for i := len(swaps) - 1; i >= 0; i-- {
			c.swapLocalGlobal(swaps[i][0], swaps[i][1])
		}
	default:
		panic(fmt.Sprintf("cluster: arity %d", g.Arity()))
	}
}

// Run applies a circuit.
func (c *Cluster) Run(circ *circuit.Circuit) {
	if circ.NumQubits > c.n {
		panic(core.ErrDimensionMismatch)
	}
	for _, g := range circ.Gates {
		c.ApplyGate(g)
	}
}

// Gather copies the distributed amplitudes into one contiguous vector
// (rank r owns indices [r·2^localN, (r+1)·2^localN)).
func (c *Cluster) Gather() []complex128 {
	out := make([]complex128, 0, len(c.blocks)*len(c.blocks[0]))
	for _, blk := range c.blocks {
		out = append(out, blk...)
	}
	return out
}

// ToState gathers into a single-node State (for measurement/expectation).
func (c *Cluster) ToState() (*state.State, error) {
	return state.FromAmplitudes(c.Gather(), state.Options{})
}

// Norm returns ‖ψ‖ computed as a distributed reduction.
func (c *Cluster) Norm() float64 {
	partial := make([]float64, len(c.blocks))
	c.eachRank(func(r int) {
		s := 0.0
		for _, a := range c.blocks[r] {
			s += real(a)*real(a) + imag(a)*imag(a)
		}
		partial[r] = s
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return math.Sqrt(total)
}
