package cluster

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/state"
)

func randomCircuit(n, gates int, seed uint64) *circuit.Circuit {
	rng := core.NewRNG(seed)
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.RY(rng.Float64()*3-1.5, rng.Intn(n))
		case 3:
			c.RZ(rng.Float64()*3-1.5, rng.Intn(n))
		case 4:
			c.T(rng.Intn(n))
		case 5, 6:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.CX(a, b)
		case 7:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.RZZ(rng.Float64(), a, b)
		}
	}
	return c
}

// compare runs the circuit on the cluster and on the single-node engine.
func compare(t *testing.T, n, ranks int, c *circuit.Circuit) *Cluster {
	t.Helper()
	cl, err := New(n, ranks)
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(c)
	ref := state.New(n, state.Options{})
	ref.Run(c)
	got := cl.Gather()
	want := ref.Amplitudes()
	for i := range want {
		if !core.AlmostEqualC(got[i], want[i], 1e-9) {
			t.Fatalf("ranks=%d amp %d: cluster %v vs single %v", ranks, i, got[i], want[i])
		}
	}
	return cl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Error("1 qubit accepted")
	}
	if _, err := New(6, 3); err == nil {
		t.Error("non-power-of-two ranks accepted")
	}
	if _, err := New(4, 8); err == nil {
		t.Error("too many ranks accepted")
	}
	cl, err := New(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumRanks() != 4 || cl.NumQubits() != 6 {
		t.Error("shape wrong")
	}
}

func TestInitialState(t *testing.T) {
	cl, _ := New(5, 2)
	amps := cl.Gather()
	if amps[0] != 1 {
		t.Error("not |0…0⟩")
	}
	if math.Abs(cl.Norm()-1) > 1e-12 {
		t.Error("norm")
	}
}

func TestLocalGateMatchesSingleNode(t *testing.T) {
	c := circuit.New(6).H(0).CX(0, 1).RZ(0.5, 2).CX(2, 3)
	cl := compare(t, 6, 4, c)
	// All qubits < localN(=4): zero communication.
	if cl.Stats().Messages != 0 {
		t.Errorf("local circuit caused %d messages", cl.Stats().Messages)
	}
}

func TestGlobalSingleQubitGate(t *testing.T) {
	c := circuit.New(6).H(5).X(4)
	cl := compare(t, 6, 4, c)
	st := cl.Stats()
	if st.GlobalGates != 2 || st.Messages == 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestGlobalTwoQubitGate(t *testing.T) {
	c := circuit.New(6).H(0).CX(0, 5)
	cl := compare(t, 6, 4, c)
	if cl.Stats().QubitSwaps == 0 {
		t.Error("expected qubit remapping for global CX")
	}
}

func TestGlobalGlobalTwoQubitGate(t *testing.T) {
	c := circuit.New(6).H(4).CX(4, 5).RZZ(0.7, 5, 4)
	compare(t, 6, 4, c)
}

func TestRandomCircuitsAllRankCounts(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 8} {
		for seed := uint64(1); seed <= 4; seed++ {
			c := randomCircuit(6, 25, seed*uint64(ranks)+seed)
			compare(t, 6, ranks, c)
		}
	}
}

func TestNormPreserved(t *testing.T) {
	cl, _ := New(6, 4)
	cl.Run(randomCircuit(6, 40, 99))
	if math.Abs(cl.Norm()-1) > 1e-9 {
		t.Errorf("norm %v", cl.Norm())
	}
}

func TestGHZAcrossRanks(t *testing.T) {
	// Entangle across the rank boundary and verify the distribution.
	n := 6
	c := circuit.New(n).H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	cl := compare(t, n, 4, c)
	amps := cl.Gather()
	if !core.AlmostEqualC(amps[0]*amps[0]+amps[len(amps)-1]*amps[len(amps)-1], 1, 1e-9) {
		t.Error("GHZ amplitudes wrong")
	}
}

func TestToState(t *testing.T) {
	cl, _ := New(4, 2)
	cl.Run(circuit.New(4).H(0).CX(0, 3))
	s, err := cl.ToState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(3)-0.5) > 1e-9 {
		t.Error("gathered state wrong")
	}
}

func TestCommunicationScalesWithRanks(t *testing.T) {
	// The same circuit on more ranks must move at least as many messages.
	c := circuit.New(8).H(7).H(6).CX(6, 7).H(5)
	var prev int
	for _, ranks := range []int{2, 4, 8} {
		cl, err := New(8, ranks)
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(c)
		msgs := cl.Stats().Messages
		if msgs < prev {
			t.Errorf("messages decreased with more ranks: %d → %d", prev, msgs)
		}
		prev = msgs
	}
}

func TestRejectsMeasurement(t *testing.T) {
	cl, _ := New(4, 2)
	defer func() {
		if recover() == nil {
			t.Error("measurement accepted")
		}
	}()
	cl.ApplyGate(gate.New(gate.Measure, 0))
}

func TestBarrierIsNoop(t *testing.T) {
	cl, _ := New(4, 2)
	cl.ApplyGate(gate.New(gate.Barrier))
	if cl.Stats().LocalGates != 0 {
		t.Error("barrier counted as gate")
	}
}

func TestFusedGatesOnCluster(t *testing.T) {
	// Transpiled (fused) circuits must run identically on the cluster.
	c := randomCircuit(6, 30, 7)
	f := circuit.Transpile(c, circuit.DefaultTranspileOptions())
	cl, _ := New(6, 4)
	cl.Run(f)
	ref := state.New(6, state.Options{})
	ref.Run(c)
	got := cl.Gather()
	for i, w := range ref.Amplitudes() {
		if !core.AlmostEqualC(got[i], w, 1e-9) {
			t.Fatalf("fused cluster run diverges at %d", i)
		}
	}
}
