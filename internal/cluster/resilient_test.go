package cluster

import (
	"context"
	"errors"
	"maps"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/state"
)

// globalHeavy builds a circuit dominated by global-qubit gates, so every
// run exercises the pairwise exchange (and thus the fault) path.
func globalHeavy(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(n - 1).H(n - 2).CX(n-2, n-1).RZ(0.3, n-1)
	c.CX(0, n-1).H(n - 2).RZZ(0.7, n-2, n-1)
	return c
}

// TestStatsRaceWithGlobalGate exercises Stats() concurrently with gate
// application; under -race this fails if any counter mutation is
// unguarded (the bug was gate-census increments outside statsMu).
func TestStatsRaceWithGlobalGate(t *testing.T) {
	cl, err := New(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = cl.Stats()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		cl.Run(globalHeavy(6))
	}
	close(done)
	wg.Wait()
	if cl.Stats().GlobalGates == 0 {
		t.Error("no global gates recorded")
	}
}

// TestVerifiedCommMatchesPlain: the checksummed buffered exchange must
// be numerically identical to the in-place path when nothing faults.
func TestVerifiedCommMatchesPlain(t *testing.T) {
	c := randomCircuit(6, 30, 11)
	plain, _ := New(6, 4)
	plain.Run(c)
	verified, err := NewWithOptions(6, 4, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	verified.Run(c)
	got, want := verified.Gather(), plain.Gather()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("amp %d: verified %v != plain %v", i, got[i], want[i])
		}
	}
}

// TestFaultDrillRecovers: a seeded injector drops, corrupts, and stalls
// transfers; retry + checksum must still produce the exact fault-free
// state, with the injector census showing real faults were exercised.
func TestFaultDrillRecovers(t *testing.T) {
	c := randomCircuit(6, 40, 3)
	ref := state.New(6, state.Options{})
	ref.Run(c)
	for _, ranks := range []int{2, 4} {
		inj := resilience.NewFaultInjector(resilience.FaultConfig{
			Seed:        42,
			DropProb:    0.15,
			CorruptProb: 0.15,
			StallProb:   0.1,
			StallDelay:  10 * time.Microsecond,
		})
		cl, err := NewWithOptions(6, ranks, Options{
			Fault: inj,
			Retry: resilience.RetryPolicy{MaxAttempts: 12, BaseDelay: 10 * time.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(c)
		if inj.Injected() == 0 {
			t.Fatalf("ranks=%d: no faults injected", ranks)
		}
		got := cl.Gather()
		for i, w := range ref.Amplitudes() {
			if !core.AlmostEqualC(got[i], w, 1e-12) {
				t.Fatalf("ranks=%d amp %d: %v != %v after fault recovery", ranks, i, got[i], w)
			}
		}
	}
}

// TestFaultDrillDeterministic: same seed → same injected-fault census
// (run serially via 2 ranks, where each global gate has one pair).
func TestFaultDrillDeterministic(t *testing.T) {
	run := func() map[resilience.FaultKind]int {
		inj := resilience.NewFaultInjector(resilience.FaultConfig{
			Seed:     7,
			DropProb: 0.2, CorruptProb: 0.2,
		})
		cl, err := NewWithOptions(6, 2, Options{
			Fault: inj,
			Retry: resilience.RetryPolicy{MaxAttempts: 12, BaseDelay: time.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.Run(globalHeavy(6))
		return inj.InjectedByKind()
	}
	a, b := run(), run()
	if !maps.Equal(a, b) {
		t.Errorf("fault census not deterministic: %v vs %v", a, b)
	}
	if a[resilience.FaultDrop]+a[resilience.FaultCorrupt] == 0 {
		t.Error("drill injected nothing")
	}
}

// TestWatchdogRecoversSilentCorruption: a silent fault passes the
// transfer checksum but breaks ‖ψ‖=1; the norm watchdog must roll back
// and replay to the exact clean result.
func TestWatchdogRecoversSilentCorruption(t *testing.T) {
	c := randomCircuit(6, 30, 5)
	ref := state.New(6, state.Options{})
	ref.Run(c)
	inj := resilience.NewFaultInjector(resilience.FaultConfig{
		Seed:       9,
		SilentProb: 0.3,
		MaxFaults:  2, // faults exhaust, so replay eventually runs clean
	})
	cl, err := NewWithOptions(6, 4, Options{
		Fault:          inj,
		NormCheckEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RunContext(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if inj.InjectedByKind()[resilience.FaultSilent] == 0 {
		t.Fatal("no silent fault injected; test exercised nothing")
	}
	if math.Abs(cl.Norm()-1) > 1e-9 {
		t.Fatalf("norm %v after recovery", cl.Norm())
	}
	got := cl.Gather()
	for i, w := range ref.Amplitudes() {
		if !core.AlmostEqualC(got[i], w, 1e-12) {
			t.Fatalf("amp %d: %v != %v after watchdog recovery", i, got[i], w)
		}
	}
}

// TestTransferExhaustionSurfaces: a link that drops every attempt must
// surface ErrRetriesExhausted (wrapping ErrDropped) instead of hanging
// or silently proceeding.
func TestTransferExhaustionSurfaces(t *testing.T) {
	inj := resilience.NewFaultInjector(resilience.FaultConfig{Seed: 1, DropProb: 1})
	cl, err := NewWithOptions(6, 4, Options{
		Fault: inj,
		Retry: resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	runErr := cl.RunContext(context.Background(), circuit.New(6).H(5))
	if !errors.Is(runErr, resilience.ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", runErr)
	}
	if !errors.Is(runErr, resilience.ErrDropped) {
		t.Fatalf("exhaustion should carry the last cause, got %v", runErr)
	}
}

// TestRunContextCancellation: a canceled context aborts the run with
// context.Canceled before more gates are applied.
func TestRunContextCancellation(t *testing.T) {
	cl, err := New(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cl.RunContext(ctx, globalHeavy(6)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if cl.Stats().GlobalGates != 0 {
		t.Error("gates applied after cancellation")
	}
}

// TestWatchdogPersistentDriftErrors: if corruption outpaces MaxFaults
// (unbounded silent faults on every transfer), the bounded replay gives
// up with ErrCorrupted rather than looping forever.
func TestWatchdogPersistentDriftErrors(t *testing.T) {
	inj := resilience.NewFaultInjector(resilience.FaultConfig{Seed: 3, SilentProb: 1})
	cl, err := NewWithOptions(6, 2, Options{Fault: inj, NormCheckEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	runErr := cl.RunContext(context.Background(), globalHeavy(6))
	if !errors.Is(runErr, resilience.ErrCorrupted) {
		t.Fatalf("want ErrCorrupted after bounded replays, got %v", runErr)
	}
}
