package cluster

// Resilient communication: the pairwise block exchanges behind global
// gates can be run through a verified path — per-transfer checksums,
// bounded retry with backoff, and deterministic fault injection — so the
// backend models (and survives) the interconnect failure modes a real
// multi-node NWQ-Sim run sees on an HPC fabric. The fast in-place path
// is untouched when no Options are set; New() clusters behave exactly as
// before.

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// Recovery instruments surfaced in run_report.json: injected-fault
// census, detected/repaired transfer failures, and watchdog activity.
var (
	mFaultDrops       = telemetry.GetCounter("cluster.fault.drops")
	mFaultCorruptions = telemetry.GetCounter("cluster.fault.corruptions")
	mFaultStalls      = telemetry.GetCounter("cluster.fault.stalls")
	mFaultSilent      = telemetry.GetCounter("cluster.fault.silent")
	mCommRetries      = telemetry.GetCounter("cluster.comm.retries")
	mChecksumFails    = telemetry.GetCounter("cluster.comm.checksum_failures")
	mRollbacks        = telemetry.GetCounter("cluster.recovery.rollbacks")
	mReplayedGates    = telemetry.GetCounter("cluster.recovery.replayed_gates")
)

// Options configures the resilience behavior of a cluster. The zero
// value disables everything: unverified in-place exchange, no watchdog.
type Options struct {
	// Fault, when non-nil, injects deterministic faults into every block
	// transfer. Setting it implies verified communication.
	Fault *resilience.FaultInjector
	// Verify forces the checksummed transfer path even without a fault
	// injector (models an untrusted interconnect).
	Verify bool
	// Retry paces re-transfers after a detected fault; zero fields take
	// resilience defaults (4 attempts, 100µs base backoff).
	Retry resilience.RetryPolicy
	// NormCheckEvery enables the norm-drift watchdog: every that many
	// gates (and at circuit end) RunContext checks |‖ψ‖−1| against
	// NormTol and rolls back to the last consistent snapshot on drift.
	// Zero disables the watchdog.
	NormCheckEvery int
	// NormTol is the watchdog tolerance; zero means 1e-6. Unitary
	// circuits preserve the norm to rounding error, so drift beyond this
	// indicates silent payload corruption.
	NormTol float64
}

func (c *Cluster) verifiedComm() bool { return c.opts.Verify || c.opts.Fault != nil }

func (c *Cluster) watchdogOn() bool { return c.opts.NormCheckEvery > 0 }

func (c *Cluster) normTol() float64 {
	if c.opts.NormTol > 0 {
		return c.opts.NormTol
	}
	return 1e-6
}

// payloadChecksum hashes a block with FNV-1a over the raw float64 bits —
// allocation-free and fast enough to run on every transfer, standing in
// for the CRC a real fabric computes in hardware.
func payloadChecksum(block []complex128) uint64 {
	h := fnv.New64a()
	var b [16]byte
	for _, a := range block {
		re := math.Float64bits(real(a))
		im := math.Float64bits(imag(a))
		for i := 0; i < 8; i++ {
			b[i] = byte(re >> (8 * i))
			b[8+i] = byte(im >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// transfer simulates a verified block transfer src → dst: the sender's
// checksum travels with the payload, the receiver validates it, and any
// detected fault (drop, corruption) is retried from the intact source
// under the configured RetryPolicy. A silent fault passes verification
// and perturbs the destination afterwards — that is what the norm-drift
// watchdog exists to catch. src is never written.
func (c *Cluster) transfer(ctx context.Context, dst, src []complex128) error {
	want := payloadChecksum(src)
	return c.opts.Retry.Do(ctx, func(attempt int) error {
		if attempt > 1 {
			mCommRetries.Inc()
		}
		fault := c.opts.Fault.Draw()
		switch fault {
		case resilience.FaultDrop:
			mFaultDrops.Inc()
			return fmt.Errorf("cluster: block transfer dropped: %w", resilience.ErrDropped)
		case resilience.FaultStall:
			mFaultStalls.Inc()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.opts.Fault.StallDelay()):
			}
		}
		copy(dst, src)
		if fault == resilience.FaultCorrupt {
			mFaultCorruptions.Inc()
			dst[c.opts.Fault.PerturbIndex(len(dst))] += complex(1e-3, -1e-3)
		}
		if got := payloadChecksum(dst); got != want {
			mChecksumFails.Inc()
			return fmt.Errorf("cluster: block checksum %016x != sender %016x: %w", got, want, resilience.ErrCorrupted)
		}
		if fault == resilience.FaultSilent {
			// Perturbation past the checksum check: undetectable at the
			// transfer layer, large enough to move ‖ψ‖ beyond NormTol.
			mFaultSilent.Inc()
			dst[c.opts.Fault.PerturbIndex(len(dst))] += complex(0.125, 0.125)
		}
		return nil
	})
}

// snapshot copies the distributed amplitudes into dst (allocating on
// first use), returning the buffer for reuse across watchdog intervals.
func (c *Cluster) snapshot(dst [][]complex128) [][]complex128 {
	if dst == nil {
		dst = make([][]complex128, len(c.blocks))
		for r := range dst {
			dst[r] = make([]complex128, len(c.blocks[r]))
		}
	}
	c.eachRank(func(r int) { copy(dst[r], c.blocks[r]) })
	return dst
}

// restore writes a snapshot back over the live amplitudes.
func (c *Cluster) restore(snap [][]complex128) {
	c.eachRank(func(r int) { copy(c.blocks[r], snap[r]) })
}
