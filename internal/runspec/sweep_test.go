package runspec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

func h2Sweep(axis SweepAxis) *SweepSpec {
	return &SweepSpec{
		Base: RunSpec{Algorithm: AlgorithmVQE, Molecule: MoleculeSpec{Kind: "h2"}},
		Axis: axis,
	}
}

func TestSweepPointHashesMatchSingleSubmissions(t *testing.T) {
	// A family member's hash is the ordinary rs1 hash of the pinned
	// spec: point results and single-spec submissions share cache keys.
	ss := h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{0.5, 0.7414}})
	points, err := ss.Points()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		solo := RunSpec{
			Algorithm: AlgorithmVQE,
			Molecule:  MoleculeSpec{Kind: "h2-distance", Distance: p.Value},
		}
		solo.ApplyDefaults()
		if got := solo.Hash(); got != p.Hash {
			t.Errorf("point %g: family hash %s != single-spec hash %s", p.Value, p.Hash, got)
		}
		if !strings.HasPrefix(p.Hash, HashPrefix+":") {
			t.Errorf("point hash %s lacks %s prefix", p.Hash, HashPrefix)
		}
	}
}

func TestSweepReorderKeepsPointHashesChangesFamilyHash(t *testing.T) {
	a := h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{0.5, 0.7414, 1.5}})
	b := h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{1.5, 0.5, 0.7414}})

	pa, err := a.Points()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Points()
	if err != nil {
		t.Fatal(err)
	}
	hashesByValue := func(pts []SweepPoint) map[float64]string {
		m := map[float64]string{}
		for _, p := range pts {
			m[p.Value] = p.Hash
		}
		return m
	}
	ha, hb := hashesByValue(pa), hashesByValue(pb)
	for v, h := range ha {
		if hb[v] != h {
			t.Errorf("point %g: hash changed with axis order: %s vs %s", v, h, hb[v])
		}
	}
	if a.Hash() == b.Hash() {
		t.Errorf("reordered axis kept family hash %s — submission order is family identity", a.Hash())
	}
	if !strings.HasPrefix(a.Hash(), SweepHashPrefix+":") {
		t.Errorf("family hash %s lacks %s prefix", a.Hash(), SweepHashPrefix)
	}
}

func TestSweepRangeAndExplicitListSameFamily(t *testing.T) {
	// 0.5:0.7:0.1 and [0.5, 0.6, 0.7] resolve to the same values, hence
	// the same family.
	rng := h2Sweep(SweepAxis{Param: AxisDistance, Start: 0.5, Stop: 0.7, Step: 0.1})
	lst := h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{0.5, 0.5 + 0.1, 0.5 + 2*0.1}})
	if rng.Hash() != lst.Hash() {
		t.Errorf("range family %s != list family %s", rng.Hash(), lst.Hash())
	}
	pts, err := rng.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("range expanded to %d points, want 3", len(pts))
	}
}

func TestSweepExpansionDeterministic(t *testing.T) {
	ss := h2Sweep(SweepAxis{Param: AxisDistance, Start: 0.4, Stop: 2.0, Step: 0.05})
	first, err := ss.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 33 {
		t.Fatalf("expanded to %d points, want 33", len(first))
	}
	again, err := ss.Points()
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Hash != again[i].Hash || first[i].Value != again[i].Value {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, first[i], again[i])
		}
	}
}

func TestSweepAxisErrors(t *testing.T) {
	cases := []struct {
		name string
		ss   *SweepSpec
		want string
	}{
		{"both values and range",
			h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{0.5}, Step: 0.1}),
			"both values and a range"},
		{"no values no range",
			h2Sweep(SweepAxis{Param: AxisDistance}),
			"needs values or start/stop/step"},
		{"stop before start",
			h2Sweep(SweepAxis{Param: AxisDistance, Start: 2.0, Stop: 0.4, Step: 0.1}),
			"stop 0.4 < start 2"},
		{"duplicate values",
			h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{0.5, 0.5}}),
			"expand to the same point"},
		{"unknown param",
			h2Sweep(SweepAxis{Param: "temperature", Values: []float64{1}}),
			"unknown sweep axis param"},
		{"negative distance",
			h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{-0.5}}),
			"must be > 0"},
		{"distance on wrong molecule",
			&SweepSpec{
				Base: RunSpec{Algorithm: AlgorithmVQE, Molecule: MoleculeSpec{Kind: "water"}},
				Axis: SweepAxis{Param: AxisDistance, Values: []float64{0.5}},
			},
			"needs molecule kind h2"},
		{"hopping on wrong molecule",
			h2Sweep(SweepAxis{Param: AxisHopping, Values: []float64{1}}),
			"needs molecule kind hubbard"},
		{"fractional layers",
			h2Sweep(SweepAxis{Param: AxisLayers, Values: []float64{1.5}}),
			"must be a positive integer"},
		{"range too large",
			h2Sweep(SweepAxis{Param: AxisDistance, Start: 0, Stop: 1e6, Step: 0.1}),
			"max 4096"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.ss.Points()
			if err == nil {
				t.Fatal("Points() accepted an invalid axis")
			}
			if !errors.Is(err, core.ErrInvalidArgument) {
				t.Errorf("error %v is not ErrInvalidArgument", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseSweepStrict(t *testing.T) {
	good := `{"base":{"algorithm":"vqe","molecule":{"kind":"h2"}},"axis":{"param":"distance","values":[0.5,0.7414]}}`
	ss, err := ParseSweep([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Axis.Param != AxisDistance || len(ss.Axis.Values) != 2 {
		t.Errorf("parsed %+v", ss.Axis)
	}
	for _, bad := range []string{
		`{"base":{},"axis":{"param":"distance","values":[0.5]},"extra":1}`,
		`{"base":{},"axis":{"param":"distance","values":[0.5],"bogus":true}}`,
		good + `{"trailing":1}`,
		`{"base":{"algorithm":"vqe","molecule":{"kind":"h2"}},"axis":{"param":"distance"}}`,
	} {
		if _, err := ParseSweep([]byte(bad)); err == nil {
			t.Errorf("ParseSweep accepted %s", bad)
		}
	}
}

func TestExecutionOrderAscending(t *testing.T) {
	ss := h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{1.5, 0.5, 0.7414, 2.4}})
	points, err := ss.Points()
	if err != nil {
		t.Fatal(err)
	}
	order := ExecutionOrder(points)
	want := []int{1, 2, 0, 3} // 0.5, 0.7414, 1.5, 2.4
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestNearestParams(t *testing.T) {
	finished := []SweepPoint{
		{Index: 0, Value: 0.5},
		{Index: 1, Value: 1.0},
		{Index: 2, Value: 2.0},
	}
	results := map[int]*Result{
		0: {Params: []float64{0.05, 0.05}},
		1: {Params: []float64{0.10, 0.10}},
		2: {Params: []float64{0.20, 0.20, 0.20}}, // different arity
	}
	if got := NearestParams(0.9, 0, finished, results); got[0] != 0.10 {
		t.Errorf("nearest to 0.9 picked %v, want the 1.0 point", got)
	}
	// Tie between 0.5 and 1.0 at value 0.75 resolves to the lower value.
	if got := NearestParams(0.75, 0, finished, results); got[0] != 0.05 {
		t.Errorf("tie at 0.75 picked %v, want the 0.5 point", got)
	}
	// Arity filter: a 2-parameter target skips the 3-parameter source.
	if got := NearestParams(2.1, 2, finished, results); got[0] != 0.10 {
		t.Errorf("arity-filtered pick %v, want the 1.0 point", got)
	}
	if got := NearestParams(1.0, 4, finished, results); got != nil {
		t.Errorf("no arity match should return nil, got %v", got)
	}
	if got := NearestParams(1.0, 0, nil, nil); got != nil {
		t.Errorf("no finished points should return nil, got %v", got)
	}
}

func TestRunSweepWarmBeatsCold(t *testing.T) {
	ss := h2Sweep(SweepAxis{Param: AxisDistance, Start: 0.5, Stop: 1.3, Step: 0.1})
	run := func(cold bool) *SweepResult {
		t.Helper()
		res, err := RunSweep(context.Background(), ss, SweepRunOptions{ColdStart: cold})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("cold=%v: %d points failed", cold, res.Failed)
		}
		return res
	}
	warm, cold := run(false), run(true)
	if len(warm.Points) != len(cold.Points) || len(warm.Points) != 9 {
		t.Fatalf("point counts %d/%d, want 9", len(warm.Points), len(cold.Points))
	}
	// The first executed point has no neighbor; every later one warm-starts.
	warmed := 0
	for _, po := range warm.Points {
		if po.WarmStarted {
			warmed++
		}
		if po.Result == nil || po.Result.ErrorVsExact > 1e-6 {
			t.Errorf("point %g: result %+v", po.Value, po.Result)
		}
	}
	if warmed != len(warm.Points)-1 {
		t.Errorf("%d of %d points warm-started, want all but the first", warmed, len(warm.Points))
	}
	for _, po := range cold.Points {
		if po.WarmStarted {
			t.Errorf("cold run warm-started point %g", po.Value)
		}
	}
	if warm.EnergyEvaluations >= cold.EnergyEvaluations {
		t.Errorf("warm start did not save work: %d warm vs %d cold evaluations",
			warm.EnergyEvaluations, cold.EnergyEvaluations)
	}
	t.Logf("energy evaluations: warm %d, cold %d (ratio %.2f)",
		warm.EnergyEvaluations, cold.EnergyEvaluations,
		float64(warm.EnergyEvaluations)/float64(cold.EnergyEvaluations))
}

func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ss := h2Sweep(SweepAxis{Param: AxisDistance, Values: []float64{0.5, 0.7414}})
	if _, err := RunSweep(ctx, ss, SweepRunOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep returned %v", err)
	}
}

func TestRunSweepContinuesPastFailingPoint(t *testing.T) {
	// A downfold axis where one active-space size exceeds the molecule's
	// orbital count: that point fails at build time, the rest of the
	// family must still run.
	ss := &SweepSpec{
		Base: RunSpec{
			Algorithm: AlgorithmVQE,
			Molecule:  MoleculeSpec{Kind: "synthetic", Orbitals: 3, Electrons: 2, Seed: 6},
		},
		Axis: SweepAxis{Param: AxisDownfold, Values: []float64{2, 5}},
	}
	res, err := RunSweep(context.Background(), ss, SweepRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed=%d, want exactly the oversized active space to fail", res.Failed)
	}
	for _, po := range res.Points {
		if po.Value == 2 && po.Error != "" {
			t.Errorf("valid point failed: %s", po.Error)
		}
		if po.Value == 5 && po.Error == "" {
			t.Errorf("downfold=5 on a 3-orbital molecule did not fail")
		}
	}
}
