package runspec

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestHashGolden pins the canonical hash of representative specs. These
// values are load-bearing: the daemon's result cache and any on-disk
// artifacts key on them, so an accidental change to the canonical form or
// the schema must show up here (and be accompanied by a HashPrefix bump).
func TestHashGolden(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
		want string
	}{
		{"default-h2", RunSpec{},
			"rs1:a3534e399fb805bfad5c4770887b94c4e2717a6fed61aa746236cc7db9deae12"},
		{"water-adapt", RunSpec{Molecule: MoleculeSpec{Kind: "water"}, Algorithm: "adapt"},
			"rs1:a00e7fb19d99c400bd79006711e529e73bfcb38a33a22fc3877cbf8a39d645dc"},
		{"hubbard-sampled", RunSpec{Molecule: MoleculeSpec{Kind: "hubbard", Sites: 3, Electrons: 2}, Mode: "sampled"},
			"rs1:fddaa889349052ef36f59bbbf028eddb969b6a9e8d3c24a807b4e50575aaac91"},
		{"h2-qpe", RunSpec{Algorithm: "qpe"},
			"rs1:f1e542763fdc6d9f51e4bca81f14f7cd568d1ffe84d888c721057e0af85915d1"},
		{"h2-cluster", RunSpec{Backend: BackendSpec{Accelerator: "nwq-cluster", Ranks: 8}},
			"rs1:714858658483561634d11d9c8e6c8edc8b168c2f57bc9dd9f8711a49215d5874"},
	}
	for _, tc := range cases {
		if got := tc.spec.Hash(); got != tc.want {
			t.Errorf("%s: hash = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestHashNormalization: specs that differ only in fields the canonical
// form erases must collide, and specs that differ in meaningful fields
// must not.
func TestHashNormalization(t *testing.T) {
	base := RunSpec{}
	same := []RunSpec{
		{Molecule: MoleculeSpec{Kind: "H2"}},                     // case-folded kind
		{Molecule: MoleculeSpec{Kind: "h2", Sites: 9, Seed: 77}}, // stale hubbard/synthetic params
		{Algorithm: "vqe", Mode: "direct", Encoding: "jw"},       // explicit defaults
		{Shots: 4096},          // shots inert in direct mode
		{DisableCaching: true}, // caching inert in direct mode
		{Backend: BackendSpec{Accelerator: "nwq-sv", Ranks: 16}},    // ranks inert off-cluster
		{Adapt: AdaptSpec{MaxIterations: 99}},                       // adapt section inert under vqe
		{QPE: QPESpec{Ancillas: 3}},                                 // qpe section inert under vqe
		{Resilience: ResilienceSpec{Walltime: "30", Resume: false}}, // lifecycle only
		{Backend: BackendSpec{Calibration: "calib.json"}},           // kernel tuning never changes results
	}
	for i, s := range same {
		if s.Hash() != base.Hash() {
			t.Errorf("case %d: expected hash collision with default spec, got %s", i, s.Hash())
		}
	}
	different := []RunSpec{
		{Molecule: MoleculeSpec{Kind: "water"}},
		{Encoding: "bk"},
		{Mode: "sampled"},
		{Mode: "sampled", Shots: 16},
		{Downfold: 2},
		{Fusion: true},
		{Optimizer: OptimizerSpec{Method: "nelder-mead"}},
		{Backend: BackendSpec{Accelerator: "nwq-cluster"}},
		{Backend: BackendSpec{Workers: 3}},
		{Algorithm: "adapt"},
		{Algorithm: "qpe"},
	}
	seen := map[string]int{base.Hash(): -1}
	for i, s := range different {
		h := s.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("case %d: unexpected hash collision with case %d", i, prev)
		}
		seen[h] = i
	}
}

// TestJSONRoundTrip: a defaulted spec must survive marshal → Parse with
// its hash (and every field) intact.
func TestJSONRoundTrip(t *testing.T) {
	specs := []RunSpec{
		{},
		{Molecule: MoleculeSpec{Kind: "hubbard", Sites: 3, Hopping: 0.8, Repulsion: 2.5, Electrons: 2}},
		{Molecule: MoleculeSpec{Kind: "h2-distance", Distance: 1.2}, Mode: "sampled", Shots: 1024},
		{Algorithm: "adapt", Adapt: AdaptSpec{MaxIterations: 5}},
		{Algorithm: "qpe", QPE: QPESpec{Ancillas: 5, TrotterSteps: 2}},
		{
			Backend:    BackendSpec{Accelerator: "nwq-cluster", Ranks: 4, Fault: &FaultSpec{Seed: 9, DropProb: 0.1}},
			Resilience: ResilienceSpec{CheckpointPath: "x.ckpt", CheckpointEvery: 5, Walltime: "00:30"},
		},
	}
	for i, s := range specs {
		s.ApplyDefaults()
		data, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		if back.Hash() != s.Hash() {
			t.Errorf("case %d: hash changed across round-trip: %s → %s", i, s.Hash(), back.Hash())
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("case %d: re-marshal: %v", i, err)
		}
		if string(again) != string(data) {
			t.Errorf("case %d: JSON not stable across round-trip:\n  %s\n  %s", i, data, again)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"optimiser": {"method": "lbfgs"}}`))
	if !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("expected ErrInvalidArgument for unknown field, got %v", err)
	}
	if _, err := Parse([]byte(`{}{}`)); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("expected ErrInvalidArgument for trailing data, got %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
	}{
		{"bad molecule", RunSpec{Molecule: MoleculeSpec{Kind: "benzene"}}},
		{"h2-distance without distance", RunSpec{Molecule: MoleculeSpec{Kind: "h2-distance"}}},
		{"bad encoding", RunSpec{Encoding: "ternary"}},
		{"bad algorithm", RunSpec{Algorithm: "vqa"}},
		{"bad mode", RunSpec{Mode: "estimated"}},
		{"bad ansatz", RunSpec{Ansatz: AnsatzSpec{Kind: "qaoa"}}},
		{"bad optimizer", RunSpec{Optimizer: OptimizerSpec{Method: "adam"}}},
		{"hea with lbfgs", RunSpec{Ansatz: AnsatzSpec{Kind: "hea"}}},
		{"negative shots", RunSpec{Shots: -1}},
		{"negative downfold", RunSpec{Downfold: -1}},
		{"negative workers", RunSpec{Backend: BackendSpec{Workers: -1}}},
		{"resume without checkpoint", RunSpec{Resilience: ResilienceSpec{Resume: true}}},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if !errors.Is(err, core.ErrInvalidArgument) {
			t.Errorf("%s: expected ErrInvalidArgument, got %v", tc.name, err)
		}
	}
	ok := RunSpec{Ansatz: AnsatzSpec{Kind: "hea"}, Optimizer: OptimizerSpec{Method: "nelder-mead"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("hea + nelder-mead should validate, got %v", err)
	}
}

func TestApplyDefaults(t *testing.T) {
	s := RunSpec{Algorithm: "ADAPT", Molecule: MoleculeSpec{Kind: " Hubbard "}}
	s.ApplyDefaults()
	if s.Molecule.Kind != "hubbard" || s.Molecule.Sites != 2 || s.Molecule.Electrons != 2 {
		t.Errorf("hubbard defaults not applied: %+v", s.Molecule)
	}
	if s.Algorithm != AlgorithmAdapt || s.Adapt.MaxIterations != 25 || s.Adapt.GradientTol != 1e-4 {
		t.Errorf("adapt defaults not applied: alg=%q %+v", s.Algorithm, s.Adapt)
	}
	if s.Encoding != "jw" || s.Mode != "direct" || s.Optimizer.Method != "lbfgs" {
		t.Errorf("base defaults not applied: %+v", s)
	}
	if s.Backend.Accelerator != "nwq-sv" {
		t.Errorf("backend default not applied: %+v", s.Backend)
	}
}

// TestHashPrefixPinned: the version prefix is part of every cache key;
// renaming it silently would alias old artifacts.
func TestHashPrefixPinned(t *testing.T) {
	if HashPrefix != "rs1" {
		t.Fatalf("HashPrefix changed to %q — bump deliberately and update golden hashes", HashPrefix)
	}
	if !strings.HasPrefix(RunSpec{}.Hash(), "rs1:") {
		t.Fatalf("Hash() does not carry the version prefix: %s", RunSpec{}.Hash())
	}
}
