package runspec

// BuildCache shares the expensive pre-optimizer construction — molecule
// materialization, qubit-Hamiltonian mapping (with downfolding), and the
// FCI reference — across the points of one sweep family. Every point of
// a depth or active-space sweep reuses the identical molecule, and a
// geometry sweep still shares per-point work across retry attempts. The
// cached values are treated as immutable by the engine, so sharing them
// across sequential runs is safe; a nil *BuildCache builds everything
// per run (all methods are nil-receiver safe).

import (
	"encoding/json"
	"strconv"
	"sync"

	"repro/internal/chem"
	"repro/internal/pauli"
)

// BuildCache memoizes spec-derived construction. Safe for concurrent use.
type BuildCache struct {
	mu   sync.Mutex
	mols map[string]*chem.MolecularData
	obs  map[string]obsEntry
	fci  map[string]float64
}

type obsEntry struct {
	h *pauli.Op
	n int
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{
		mols: map[string]*chem.MolecularData{},
		obs:  map[string]obsEntry{},
		fci:  map[string]float64{},
	}
}

// molKey is the cache key for a molecule spec: its canonical JSON (the
// same normalization the rs1 hash uses).
func molKey(ms MoleculeSpec) string {
	c := RunSpec{Molecule: ms}.Canonical()
	b, err := json.Marshal(c.Molecule)
	if err != nil {
		return ""
	}
	return string(b)
}

// molecule returns the (possibly cached) molecular model for a spec.
func (bc *BuildCache) molecule(ms MoleculeSpec) (*chem.MolecularData, error) {
	if bc == nil {
		return BuildMolecule(ms)
	}
	key := molKey(ms)
	bc.mu.Lock()
	m, ok := bc.mols[key]
	bc.mu.Unlock()
	if ok {
		return m, nil
	}
	m, err := BuildMolecule(ms)
	if err != nil {
		return nil, err
	}
	bc.mu.Lock()
	bc.mols[key] = m
	bc.mu.Unlock()
	return m, nil
}

// observable returns the qubit Hamiltonian and its qubit count for a
// molecule under the given encoding and active-space compression.
func (bc *BuildCache) observable(ms MoleculeSpec, m *chem.MolecularData, encoding string, downfold int) (*pauli.Op, int, error) {
	key := ""
	if bc != nil {
		key = molKey(ms) + "|" + encoding + "|" + strconv.Itoa(downfold)
		bc.mu.Lock()
		e, ok := bc.obs[key]
		bc.mu.Unlock()
		if ok {
			return e.h, e.n, nil
		}
	}
	h, err := BuildObservable(m, encoding)
	if err != nil {
		return nil, 0, err
	}
	n := m.NumSpinOrbitals()
	if downfold > 0 {
		dres, err := chem.Downfold(m, chem.DownfoldOptions{ActiveOrbitals: downfold, Order: 2})
		if err != nil {
			return nil, 0, err
		}
		h = dres.Qubit
		n = 2 * downfold
	}
	if bc != nil {
		bc.mu.Lock()
		bc.obs[key] = obsEntry{h: h, n: n}
		bc.mu.Unlock()
	}
	return h, n, nil
}

// fciEnergy returns the molecule's FCI reference energy.
func (bc *BuildCache) fciEnergy(ms MoleculeSpec, m *chem.MolecularData) (float64, error) {
	key := ""
	if bc != nil {
		key = molKey(ms)
		bc.mu.Lock()
		e, ok := bc.fci[key]
		bc.mu.Unlock()
		if ok {
			return e, nil
		}
	}
	fci, err := chem.FCIofOp(chem.FermionicHamiltonian(m), m.NumSpinOrbitals(), m.NumElectrons)
	if err != nil {
		return 0, err
	}
	if bc != nil {
		bc.mu.Lock()
		bc.fci[key] = fci.Energy
		bc.mu.Unlock()
	}
	return fci.Energy, nil
}
