package runspec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestMixPresetsValidateAndNormalize(t *testing.T) {
	for _, name := range []string{MixSmoke, MixServing, MixSweep} {
		m, err := MixByName(name)
		if err != nil {
			t.Fatalf("MixByName(%q): %v", name, err)
		}
		total := 0.0
		for _, e := range m.Entries() {
			if e.Weight <= 0 {
				t.Fatalf("%s entry %q has weight %g", name, e.Name, e.Weight)
			}
			if err := e.Spec.Validate(); err != nil {
				t.Fatalf("%s entry %q invalid: %v", name, e.Name, err)
			}
			total += e.Weight
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("%s weights sum to %g, want 1", name, total)
		}
	}
}

func TestMixUnknownName(t *testing.T) {
	if _, err := MixByName("nope"); !errors.Is(err, core.ErrInvalidArgument) {
		t.Fatalf("err = %v, want ErrInvalidArgument", err)
	}
}

func TestMixSampleDeterministicAndWeighted(t *testing.T) {
	m, err := NewMix("t", []MixEntry{
		{Name: "a", Weight: 9, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "h2"}}},
		{Name: "b", Weight: 1, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "hubbard"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same sequence.
	r1, r2 := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		if m.Sample(r1).Name != m.Sample(r2).Name {
			t.Fatal("seeded sampling must be deterministic")
		}
	}
	// Weights respected within sampling noise.
	r := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		counts[m.Sample(r).Name]++
	}
	if frac := float64(counts["a"]) / n; frac < 0.85 || frac > 0.95 {
		t.Fatalf("entry a sampled %.3f of draws, want ~0.9", frac)
	}
}

func TestMixRejectsBadEntries(t *testing.T) {
	cases := []struct {
		name    string
		entries []MixEntry
	}{
		{"empty", nil},
		{"zero weight", []MixEntry{{Name: "a", Weight: 0, Spec: RunSpec{}}}},
		{"unnamed", []MixEntry{{Weight: 1, Spec: RunSpec{}}}},
		{"invalid spec", []MixEntry{{Name: "a", Weight: 1,
			Spec: RunSpec{Molecule: MoleculeSpec{Kind: "no-such"}}}}},
	}
	for _, c := range cases {
		if _, err := NewMix("t", c.entries); err == nil {
			t.Fatalf("%s: NewMix accepted bad entries", c.name)
		}
	}
}
