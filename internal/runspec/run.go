package runspec

// The execution engine behind a RunSpec: every entry point that used to
// hand-wire molecule → observable → ansatz → optimizer (the vqesim
// facade, cmd/vqe, and now the vqed daemon) funnels through Run, so a
// spec computes the same answer no matter which door it came in.

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/kernel/calib"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/qpe"
	"repro/internal/resilience"
	"repro/internal/state"
	"repro/internal/vqe"
	"repro/internal/xacc"
)

// Progress is one per-iteration notification delivered to
// RunOptions.OnProgress — what the daemon streams over SSE as the energy
// trace.
type Progress struct {
	// Phase: "vqe", "adapt", or "qpe".
	Phase string `json:"phase"`
	// Iteration is the optimizer (or Adapt outer-loop) iteration.
	Iteration int `json:"iteration"`
	// Energy is the best energy found so far.
	Energy float64 `json:"energy"`
	// Operator is the Adapt operator added this iteration.
	Operator string `json:"operator,omitempty"`
}

// RunOptions carries the per-invocation machinery that is not part of the
// spec: the scheduler's shared simulation pool, a checkpoint-path
// override, and the progress sink.
type RunOptions struct {
	// Pool shares one bounded worker pool across concurrent runs (the
	// daemon's scheduler); nil lets each run size its own.
	Pool *state.Pool
	// CheckpointPath overrides spec.Resilience.CheckpointPath (the daemon
	// assigns each job a spool path). Checkpointing is honored on the
	// in-process nwq-sv path (vqe and adapt); accelerator-routed runs
	// ignore it.
	CheckpointPath string
	// OnProgress, when set, receives one Progress per iteration. Called
	// from the run's goroutine; keep it fast.
	OnProgress func(Progress)
	// InitialParams seeds the variational parameter vector (sweep warm
	// starting). It is used only when its length matches the ansatz and
	// the run is not resuming from a checkpoint; qpe and adapt ignore it.
	// Warm starting changes the optimizer trajectory, not the minimum a
	// converged run reports.
	InitialParams []float64
	// Shared caches molecule/observable/FCI construction across the
	// points of a sweep family. Only meaningful on the Run entry point
	// (RunOnMolecule bypasses spec-derived construction); nil builds
	// everything per run.
	Shared *BuildCache
}

// AdaptStep is the JSON-facing mirror of one Adapt-VQE outer iteration.
type AdaptStep struct {
	Iteration    int     `json:"iteration"`
	Operator     string  `json:"operator"`
	MaxGradient  float64 `json:"max_gradient"`
	Energy       float64 `json:"energy"`
	ErrorVsExact float64 `json:"error_vs_exact"`
	Parameters   int     `json:"parameters"`
	CircuitDepth int     `json:"circuit_depth"`
	GateCount    int     `json:"gate_count"`
}

// QPEOutcome carries the phase-estimation-specific result fields.
type QPEOutcome struct {
	Resolution float64 `json:"resolution"`
	Confidence float64 `json:"confidence"`
}

// Result is the serializable outcome of one RunSpec execution.
type Result struct {
	SpecHash  string `json:"spec_hash"`
	Algorithm string `json:"algorithm"`
	Molecule  string `json:"molecule"`
	NumQubits int    `json:"num_qubits"`
	NumTerms  int    `json:"num_terms"`
	// HartreeFock and Exact are the mean-field and FCI references.
	HartreeFock  float64 `json:"hartree_fock"`
	Exact        float64 `json:"exact"`
	Energy       float64 `json:"energy"`
	ErrorVsExact float64 `json:"error_vs_exact"`
	// Params is the optimized parameter vector (vqe/adapt).
	Params    []float64 `json:"params,omitempty"`
	Converged bool      `json:"converged"`
	// Interrupted marks a run halted by deadline or cancellation; Energy
	// then holds the best point reached, and — when checkpointing was on
	// — the snapshot on disk resumes the exact trajectory.
	Interrupted bool `json:"interrupted"`
	// CheckpointPath is the snapshot file the run wrote to (if any).
	CheckpointPath    string `json:"checkpoint_path,omitempty"`
	EnergyEvaluations int    `json:"energy_evaluations,omitempty"`
	AnsatzExecutions  int    `json:"ansatz_executions,omitempty"`
	GatesApplied      uint64 `json:"gates_applied,omitempty"`
	// History is the Adapt-VQE growth trace.
	History []AdaptStep `json:"history,omitempty"`
	// QPE is set for phase-estimation runs.
	QPE *QPEOutcome `json:"qpe,omitempty"`
	// WallNs is the run's wall-clock time in nanoseconds.
	WallNs int64 `json:"wall_ns"`
}

// BuildMolecule materializes the molecular model a spec names.
func BuildMolecule(ms MoleculeSpec) (*chem.MolecularData, error) {
	spec := RunSpec{Molecule: ms}
	spec.ApplyDefaults()
	ms = spec.Molecule
	switch ms.Kind {
	case "h2":
		return chem.H2(), nil
	case "h2-distance":
		return chem.H2AtDistance(ms.Distance)
	case "water":
		return chem.WaterLike(), nil
	case "hubbard":
		return chem.Hubbard(ms.Sites, ms.Hopping, ms.Repulsion, ms.Electrons), nil
	case "synthetic":
		return chem.Synthetic(chem.SyntheticOptions{
			NumOrbitals: ms.Orbitals, NumElectrons: ms.Electrons, Seed: ms.Seed}), nil
	}
	return nil, fmt.Errorf("%w: runspec: unknown molecule kind %q", core.ErrInvalidArgument, ms.Kind)
}

// BuildObservable maps a molecule to its qubit Hamiltonian under the
// spec's fermion-to-qubit encoding.
func BuildObservable(m *chem.MolecularData, encoding string) (*pauli.Op, error) {
	switch encoding {
	case "", "jw":
		return chem.QubitHamiltonian(m), nil
	case "bk", "parity":
		enc, err := encodingFor(encoding, m.NumSpinOrbitals())
		if err != nil {
			return nil, err
		}
		q, err := enc.Transform(chem.FermionicHamiltonian(m))
		if err != nil {
			return nil, err
		}
		return q.HermitianPart(), nil
	}
	return nil, fmt.Errorf("%w: runspec: unknown encoding %q", core.ErrInvalidArgument, encoding)
}

// encodingFor returns nil for JW (the ansatz default) or the explicit
// encoding object otherwise.
func encodingFor(name string, n int) (*fermion.Encoding, error) {
	switch name {
	case "", "jw":
		return nil, nil
	case "bk":
		return fermion.BravyiKitaevEncoding(n)
	case "parity":
		return fermion.ParityEncoding(n)
	}
	return nil, fmt.Errorf("%w: runspec: unknown encoding %q", core.ErrInvalidArgument, name)
}

// AcceleratorOptions translates the backend section into registry
// lookup options, including the serialized fault-injection drill.
func (b BackendSpec) AcceleratorOptions() xacc.AcceleratorOptions {
	o := xacc.AcceleratorOptions{Workers: b.Workers, Ranks: b.Ranks}
	if b.Fault.enabled() {
		o.Resilience.Fault = resilience.NewFaultInjector(resilience.FaultConfig{
			Seed:        b.Fault.Seed,
			DropProb:    b.Fault.DropProb,
			CorruptProb: b.Fault.CorruptProb,
			StallProb:   b.Fault.StallProb,
			SilentProb:  b.Fault.SilentProb,
			MaxFaults:   b.Fault.MaxFaults,
		})
		if b.Fault.SilentProb > 0 {
			// Silent corruption sails past the checksums; only the
			// norm-drift watchdog catches it.
			o.Resilience.NormCheckEvery = 8
		}
	}
	return o
}

// Run validates and executes a spec: molecule construction, observable
// mapping, optional downfolding, then the selected algorithm on the
// selected backend. The context bounds the whole run; a spec walltime is
// layered on top of it.
func Run(ctx context.Context, spec *RunSpec, opts RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := *spec
	c.ApplyDefaults()
	m, err := opts.Shared.molecule(c.Molecule)
	if err != nil {
		return nil, err
	}
	return run(ctx, m, &c, opts)
}

// RunOnMolecule executes a spec's algorithm sections against an
// already-built molecule — the adapter the legacy facade entry points
// (vqesim.GroundStateVQE and friends) use, since an arbitrary
// MolecularData value has no declarative spec. The molecule section of
// the spec is ignored; the result's SpecHash is empty because the run is
// not content-addressable.
func RunOnMolecule(ctx context.Context, m *chem.MolecularData, spec *RunSpec, opts RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := *spec
	c.ApplyDefaults()
	// The cache keys on the spec's molecule section, which this entry
	// point ignores — sharing here would alias unrelated molecules.
	opts.Shared = nil
	res, err := run(ctx, m, &c, opts)
	if err != nil {
		return nil, err
	}
	res.SpecHash = ""
	return res, nil
}

// run executes a defaulted spec on a built molecule.
func run(ctx context.Context, m *chem.MolecularData, c *RunSpec, opts RunOptions) (*Result, error) {
	started := time.Now()
	// Setup-phase heartbeats: observable mapping and the FCI reference can
	// take long enough on large systems that a silent gap would look like
	// a hang to the daemon's no-progress watchdog. Emit liveness before
	// the first optimizer iteration ever fires.
	setupBeat := func(step int) {
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{Phase: "setup", Iteration: step})
		}
	}
	setupBeat(0)
	if c.Backend.Calibration != "" {
		// Install the kernel-choice model before any simulation work; a
		// stale or missing profile is a configuration error, not a
		// trigger for a surprise multi-second measurement inside a job.
		p, err := calib.Load(c.Backend.Calibration)
		if err != nil {
			return nil, err
		}
		p.Apply("file")
	}
	if c.Resilience.Walltime != "" {
		budget, err := resilience.ParseWalltime(c.Resilience.Walltime)
		if err != nil {
			return nil, err
		}
		// Reserve a couple of seconds inside the budget for the final
		// checkpoint write.
		var cancel context.CancelFunc
		ctx, cancel = resilience.WithWalltime(ctx, budget, 2*time.Second)
		defer cancel()
	}
	ro := vqe.ResilienceOptions{
		CheckpointPath:  c.Resilience.CheckpointPath,
		CheckpointEvery: c.Resilience.CheckpointEvery,
		Resume:          c.Resilience.Resume,
	}
	if opts.CheckpointPath != "" {
		ro.CheckpointPath = opts.CheckpointPath
	}

	h, n, err := opts.Shared.observable(c.Molecule, m, c.Encoding, c.Downfold)
	if err != nil {
		return nil, err
	}
	setupBeat(1)
	ne := m.NumElectrons
	fciEnergy, err := opts.Shared.fciEnergy(c.Molecule, m)
	if err != nil {
		return nil, err
	}
	setupBeat(2)
	res := &Result{
		SpecHash:    c.Hash(),
		Algorithm:   c.Algorithm,
		Molecule:    m.Name,
		NumQubits:   n,
		NumTerms:    h.NumTerms(),
		HartreeFock: chem.HartreeFockEnergy(m),
		Exact:       fciEnergy,
	}
	if ro.CheckpointPath != "" {
		res.CheckpointPath = ro.CheckpointPath
	}

	switch c.Algorithm {
	case AlgorithmQPE:
		err = runQPE(ctx, c, h, n, ne, res)
	case AlgorithmAdapt:
		err = runAdapt(ctx, c, h, n, ne, fciEnergy, ro, opts, res)
	default:
		err = runVQE(ctx, c, h, n, ne, ro, opts, res)
	}
	if err != nil {
		return nil, err
	}
	res.ErrorVsExact = math.Abs(res.Energy - res.Exact)
	res.WallNs = time.Since(started).Nanoseconds()
	return res, nil
}

func runQPE(ctx context.Context, c *RunSpec, h *pauli.Op, n, ne int, res *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	prep := qpe.HartreeFockPrep(n, ne)
	out, err := qpe.Estimate(h, prep, n, qpe.Options{
		AncillaQubits: c.QPE.Ancillas,
		TrotterSteps:  c.QPE.TrotterSteps,
	})
	if err != nil {
		return err
	}
	res.Energy = out.Energy
	res.Converged = true
	res.QPE = &QPEOutcome{Resolution: out.Resolution, Confidence: out.Confidence}
	return nil
}

func runAdapt(ctx context.Context, c *RunSpec, h *pauli.Op, n, ne int, fciE float64, ro vqe.ResilienceOptions, opts RunOptions, res *Result) error {
	pool, err := ansatz.NewPool(n, ne)
	if err != nil {
		return err
	}
	ao := vqe.AdaptOptions{
		MaxIterations: c.Adapt.MaxIterations,
		GradientTol:   c.Adapt.GradientTol,
		Reference:     fciE,
		EnergyTol:     core.ChemicalAccuracy,
		Workers:       c.Backend.Workers,
		Pool:          opts.Pool,
	}
	if opts.OnProgress != nil {
		ao.Observer = func(it vqe.AdaptIteration) error {
			opts.OnProgress(Progress{Phase: AlgorithmAdapt, Iteration: it.Iteration,
				Energy: it.Energy, Operator: it.Operator})
			return nil
		}
	}
	out, err := vqe.AdaptContext(ctx, h, pool, n, ne, ao, ro)
	if err != nil {
		return err
	}
	res.Energy = out.Energy
	res.Params = out.Params
	res.Converged = out.Converged
	res.Interrupted = out.Interrupted
	res.EnergyEvaluations = out.TotalStats.EnergyEvaluations
	res.AnsatzExecutions = out.TotalStats.AnsatzExecutions
	res.GatesApplied = out.TotalStats.GatesApplied
	res.History = make([]AdaptStep, len(out.History))
	for i, it := range out.History {
		res.History[i] = AdaptStep{
			Iteration: it.Iteration, Operator: it.Operator,
			MaxGradient: it.MaxGradient, Energy: it.Energy,
			ErrorVsExact: it.ErrorVsRef, Parameters: it.Parameters,
			CircuitDepth: it.CircuitDepth, GateCount: it.GateCount,
		}
	}
	return nil
}

// runVQE dispatches fixed-ansatz VQE: the in-process driver for the
// default state-vector backend (full feature set — modes, caching,
// adjoint gradients, checkpointing), or the accelerator-routed XACC loop
// for everything else in the registry.
func runVQE(ctx context.Context, c *RunSpec, h *pauli.Op, n, ne int, ro vqe.ResilienceOptions, opts RunOptions, res *Result) error {
	a, err := buildAnsatz(c, n, ne)
	if err != nil {
		return err
	}
	if c.Backend.Accelerator == "nwq-sv" {
		return runDriverVQE(ctx, c, h, a, ro, opts, res)
	}
	return runAcceleratorVQE(ctx, c, h, n, a, opts, res)
}

func buildAnsatz(c *RunSpec, n, ne int) (ansatz.Ansatz, error) {
	switch c.Ansatz.Kind {
	case "uccsd":
		enc, err := encodingFor(c.Encoding, n)
		if err != nil {
			return nil, err
		}
		return ansatz.NewUCCSDWithEncoding(n, ne, enc)
	case "hea":
		return ansatz.NewHardwareEfficient(n, c.Ansatz.Layers, 0)
	}
	return nil, fmt.Errorf("%w: runspec: unknown ansatz %q", core.ErrInvalidArgument, c.Ansatz.Kind)
}

func runDriverVQE(ctx context.Context, c *RunSpec, h *pauli.Op, a ansatz.Ansatz, ro vqe.ResilienceOptions, opts RunOptions, res *Result) error {
	mode := vqe.Direct
	switch c.Mode {
	case "rotated":
		mode = vqe.Rotated
	case "sampled":
		mode = vqe.Sampled
	}
	drv, err := vqe.New(h, a, vqe.Options{
		Mode:      mode,
		Shots:     c.Shots,
		Caching:   !c.DisableCaching && mode != vqe.Direct,
		Workers:   c.Backend.Workers,
		Transpile: c.Fusion,
		Pool:      opts.Pool,
	})
	if err != nil {
		return err
	}
	x0 := make([]float64, a.NumParameters())
	if len(opts.InitialParams) == len(x0) && !(ro.Resume && ro.CheckpointPath != "") {
		// Warm start: seed from a neighboring sweep point's converged θ.
		// A checkpoint resume carries its own optimizer state and wins.
		copy(x0, opts.InitialParams)
	}
	var out vqe.Result
	switch c.Optimizer.Method {
	case "nelder-mead":
		o := opt.NelderMeadOptions{MaxIter: c.Optimizer.MaxIter}
		if o.MaxIter == 0 {
			o.MaxIter = 5000
		}
		if opts.OnProgress != nil {
			o.Observer = func(st *opt.NelderMeadState) error {
				_, f := st.Best()
				opts.OnProgress(Progress{Phase: AlgorithmVQE, Iteration: st.Iter, Energy: f})
				return nil
			}
		}
		out, err = drv.MinimizeContext(ctx, x0, o, ro)
	default: // lbfgs (validated)
		o := opt.LBFGSOptions{MaxIter: c.Optimizer.MaxIter}
		if opts.OnProgress != nil {
			o.Observer = func(st *opt.LBFGSState) error {
				opts.OnProgress(Progress{Phase: AlgorithmVQE, Iteration: st.Iter, Energy: st.F})
				return nil
			}
		}
		out, err = drv.MinimizeLBFGSContext(ctx, x0, o, ro)
	}
	if err != nil {
		return err
	}
	res.Energy = out.Energy
	res.Params = out.Params
	res.Converged = out.Optimizer.Converged
	res.Interrupted = out.Interrupted
	res.EnergyEvaluations = out.Stats.EnergyEvaluations
	res.AnsatzExecutions = out.Stats.AnsatzExecutions
	res.GatesApplied = out.Stats.GatesApplied
	return nil
}

func runAcceleratorVQE(ctx context.Context, c *RunSpec, h *pauli.Op, n int, a ansatz.Ansatz, opts RunOptions, res *Result) error {
	if c.Mode != "direct" {
		return fmt.Errorf("%w: runspec: backend %q only supports mode direct (got %q)",
			core.ErrInvalidArgument, c.Backend.Accelerator, c.Mode)
	}
	acc, err := xacc.DefaultRegistry.New(c.Backend.Accelerator, c.Backend.AcceleratorOptions())
	if err != nil {
		return err
	}
	if n > acc.NumQubitsLimit() {
		return fmt.Errorf("%w: runspec: %d qubits exceed backend %q limit of %d",
			core.ErrInvalidArgument, n, c.Backend.Accelerator, acc.NumQubitsLimit())
	}
	alg := &xacc.VQE{
		Observable:  h,
		Ansatz:      a,
		Accelerator: acc,
		Optimizer:   c.Optimizer.Method,
		MaxIter:     c.Optimizer.MaxIter,
	}
	if opts.OnProgress != nil {
		alg.OnIteration = func(iter int, energy float64) error {
			opts.OnProgress(Progress{Phase: AlgorithmVQE, Iteration: iter, Energy: energy})
			return nil
		}
	}
	var x0 []float64
	if len(opts.InitialParams) == a.NumParameters() {
		x0 = opts.InitialParams
	}
	out, err := alg.ExecuteContext(ctx, x0)
	if err != nil {
		return err
	}
	res.Energy = out.Energy
	res.Params = out.Params
	res.Converged = out.OptimizerResult.Converged
	res.Interrupted = out.Interrupted
	res.EnergyEvaluations = out.EnergyEvaluations
	return nil
}
