package runspec

// Spec-mix sampling: the workload side of a RunSpec. A Mix is a weighted
// set of validated spec templates that a load generator (internal/load)
// draws from and a capacity planner (internal/load/costmodel) enumerates.
// Mixes live here rather than in the load harness because they are pure
// spec data — the same presets parameterize probe runs, load runs, and
// analytic planning, and keeping them beside the spec schema means a
// schema change breaks the presets at compile time, not at replay time.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
)

// MixEntry is one weighted spec class in a workload mix. Name labels the
// class in reports; Weight is relative (NewMix normalizes).
type MixEntry struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Spec   RunSpec `json:"spec"`
}

// Mix is a normalized, sampleable distribution over spec classes.
type Mix struct {
	name    string
	entries []MixEntry
	cum     []float64 // normalized cumulative weights, len == len(entries)
}

// NewMix validates every entry spec and normalizes the weights.
func NewMix(name string, entries []MixEntry) (*Mix, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: runspec: mix %q has no entries", core.ErrInvalidArgument, name)
	}
	total := 0.0
	for i := range entries {
		e := &entries[i]
		if e.Weight <= 0 {
			return nil, fmt.Errorf("%w: runspec: mix %q entry %q has non-positive weight %g",
				core.ErrInvalidArgument, name, e.Name, e.Weight)
		}
		if e.Name == "" {
			return nil, fmt.Errorf("%w: runspec: mix %q entry %d is unnamed", core.ErrInvalidArgument, name, i)
		}
		if err := e.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("mix %q entry %q: %w", name, e.Name, err)
		}
		total += e.Weight
	}
	m := &Mix{name: name, entries: entries, cum: make([]float64, len(entries))}
	acc := 0.0
	for i := range entries {
		entries[i].Weight /= total
		acc += entries[i].Weight
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1.0 // guard against float drift at the top
	return m, nil
}

// Name returns the mix label.
func (m *Mix) Name() string { return m.name }

// Entries returns the normalized entries — the planner enumerates these
// with their weights instead of sampling.
func (m *Mix) Entries() []MixEntry { return m.entries }

// Sample draws one entry according to the weights using the caller's
// deterministic source, so a seeded load run replays the same spec
// sequence.
func (m *Mix) Sample(r *rand.Rand) MixEntry {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.entries) {
		i = len(m.entries) - 1
	}
	return m.entries[i]
}

// Preset mix names accepted by MixByName.
const (
	MixSmoke   = "smoke"
	MixServing = "serving"
	MixSweep   = "sweep"
)

// MixByName resolves a preset workload mix:
//
//	smoke    tiny specs only — CI-safe, every class < ~100 ms
//	serving  heavy-tailed serving traffic: mostly small molecules with a
//	         minority of ~25x-heavier jobs (the shape ServeGen-style
//	         generators model for inference serving)
//	sweep    a dense H2 dissociation grid — high cache-miss first pass,
//	         high hit rate on replay, mimicking PES-sweep traffic
func MixByName(name string) (*Mix, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case MixSmoke:
		return smokeMix()
	case MixServing:
		return servingMix()
	case MixSweep:
		return sweepMix()
	}
	return nil, fmt.Errorf("%w: runspec: unknown mix %q (want smoke|serving|sweep)", core.ErrInvalidArgument, name)
}

func smokeMix() (*Mix, error) {
	entries := []MixEntry{
		{Name: "h2", Weight: 5, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "h2"}}},
		{Name: "hubbard-2", Weight: 3, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "hubbard", Sites: 2}}},
		{Name: "synthetic-3", Weight: 2, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "synthetic", Orbitals: 3}}},
	}
	entries = append(entries, h2DistanceEntries(8, 1)...)
	return NewMix(MixSmoke, entries)
}

// servingMix is the default traffic model: a heavy-tailed runtime
// distribution spanning roughly 4 ms (H2 direct) to ~100 ms (8-qubit
// synthetic, 6-qubit Hubbard, Adapt-VQE) per job, with repeatable classes
// so the daemon's content-addressed cache sees realistic duplicate rates.
func servingMix() (*Mix, error) {
	entries := []MixEntry{
		{Name: "h2", Weight: 30, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "h2"}}},
		{Name: "hubbard-2", Weight: 15, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "hubbard", Sites: 2}}},
		{Name: "synthetic-3", Weight: 10, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "synthetic", Orbitals: 3}}},
		{Name: "h2-rotated", Weight: 8, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "h2"}, Mode: "rotated"}},
		{Name: "hubbard-3", Weight: 6, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "hubbard", Sites: 3}}},
		{Name: "synthetic-4", Weight: 4, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "synthetic", Orbitals: 4}}},
		{Name: "h2-adapt", Weight: 2, Spec: RunSpec{Molecule: MoleculeSpec{Kind: "h2"}, Algorithm: AlgorithmAdapt,
			Adapt: AdaptSpec{MaxIterations: 4}}},
	}
	entries = append(entries, h2DistanceEntries(20, 25)...)
	return NewMix(MixServing, entries)
}

func sweepMix() (*Mix, error) {
	return NewMix(MixSweep, h2DistanceEntries(40, 40))
}

// h2DistanceEntries builds an H2 bond-length grid with geometrically
// decaying weights — the heavy-tailed "many distinct small jobs" part of
// the mix, where each distance is its own cache key. totalWeight is
// shared across the grid.
func h2DistanceEntries(points int, totalWeight float64) []MixEntry {
	entries := make([]MixEntry, 0, points)
	// Decay chosen so the most popular distance gets ~3x the weight of
	// the median one: hot geometries repeat, cold ones stay cold.
	const decay = 0.95
	w := 1.0
	sum := 0.0
	for i := 0; i < points; i++ {
		sum += w
		w *= decay
	}
	w = totalWeight / sum
	for i := 0; i < points; i++ {
		d := 0.5 + 0.05*float64(i) // 0.50 Å … grid step 0.05 Å
		entries = append(entries, MixEntry{
			Name:   fmt.Sprintf("h2-d%.2f", d),
			Weight: w,
			Spec:   RunSpec{Molecule: MoleculeSpec{Kind: "h2-distance", Distance: d}},
		})
		w *= decay
	}
	return entries
}
