package runspec

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/kernel/calib"
	"repro/internal/kernel/tuning"
	"repro/internal/state"
)

// TestEqualHashEqualResult is the property the daemon's result cache
// stands on: two specs with the same canonical hash must compute
// bit-identical energies, even when their non-canonical fields differ.
// Worker width IS canonical (it fixes the floating-point reduction
// order), so both runs pin the same width — exactly the situation in the
// daemon, where every job draws from one shared pool.
func TestEqualHashEqualResult(t *testing.T) {
	a := &RunSpec{Backend: BackendSpec{Workers: 2}}
	b := &RunSpec{
		Molecule:   MoleculeSpec{Kind: "H2", Sites: 7, Seed: 99}, // erased for h2
		Algorithm:  "vqe",
		Mode:       "direct",
		Shots:      4096,                              // inert in direct mode
		Backend:    BackendSpec{Workers: 2, Ranks: 6}, // ranks inert off-cluster
		Resilience: ResilienceSpec{CheckpointEvery: 3},
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("precondition failed: hashes differ: %s vs %s", a.Hash(), b.Hash())
	}

	pool := state.NewPool(2)
	defer pool.Close()
	ra, err := Run(context.Background(), a, RunOptions{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(context.Background(), b, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Energy != rb.Energy {
		t.Errorf("equal-hash specs computed different energies: %v vs %v", ra.Energy, rb.Energy)
	}
	if ra.SpecHash != rb.SpecHash || ra.SpecHash != a.Hash() {
		t.Errorf("result spec hashes inconsistent: %s vs %s", ra.SpecHash, rb.SpecHash)
	}
	if ra.ErrorVsExact > 1e-6 {
		t.Errorf("H2 VQE missed FCI: |ΔE| = %g", ra.ErrorVsExact)
	}
}

func TestRunH2Progress(t *testing.T) {
	var trace []Progress
	spec := &RunSpec{Optimizer: OptimizerSpec{Method: "nelder-mead", MaxIter: 50}}
	res, err := Run(context.Background(), spec, RunOptions{
		OnProgress: func(p Progress) { trace = append(trace, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("no progress events delivered")
	}
	// Setup-phase heartbeats precede the optimizer trace: they carry no
	// energy and restart the iteration count, so check them separately.
	setup := 0
	for setup < len(trace) && trace[setup].Phase == "setup" {
		setup++
	}
	if setup == 0 {
		t.Error("no setup-phase heartbeats before the optimizer trace")
	}
	for _, p := range trace[setup:] {
		if p.Phase == "setup" {
			t.Fatalf("setup heartbeat after optimizer progress: %+v", p)
		}
	}
	trace = trace[setup:]
	if len(trace) == 0 {
		t.Fatal("no optimizer progress events delivered")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Iteration < trace[i-1].Iteration {
			t.Fatalf("progress iterations not monotone at %d: %+v", i, trace[i])
		}
		if trace[i].Energy > trace[i-1].Energy+1e-12 {
			t.Fatalf("best-so-far energy regressed at %d: %v → %v", i, trace[i-1].Energy, trace[i].Energy)
		}
	}
	if math.Abs(res.Energy-trace[len(trace)-1].Energy) > 1e-6 {
		t.Errorf("final progress energy %v far from result %v", trace[len(trace)-1].Energy, res.Energy)
	}
}

// TestRunAcceleratorBackend routes VQE through the registry instead of
// the in-process driver.
func TestRunAcceleratorBackend(t *testing.T) {
	spec := &RunSpec{Backend: BackendSpec{Accelerator: "nwq-sv-serial"}}
	res, err := Run(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorVsExact > 1e-5 {
		t.Errorf("accelerator-routed H2 VQE missed FCI: |ΔE| = %g", res.ErrorVsExact)
	}
}

func TestRunAdaptH2(t *testing.T) {
	spec := &RunSpec{Algorithm: AlgorithmAdapt, Adapt: AdaptSpec{MaxIterations: 6}}
	res, err := Run(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("adapt run produced no history")
	}
	if !res.Converged && res.ErrorVsExact > 1.6e-3 {
		t.Errorf("adapt H2 neither converged nor close: |ΔE| = %g", res.ErrorVsExact)
	}
}

func TestRunQPEH2(t *testing.T) {
	spec := &RunSpec{Algorithm: AlgorithmQPE, QPE: QPESpec{Ancillas: 6}}
	res, err := Run(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.QPE == nil {
		t.Fatal("QPE result missing outcome section")
	}
	if res.ErrorVsExact > res.QPE.Resolution {
		t.Errorf("QPE error %g exceeds its own resolution %g", res.ErrorVsExact, res.QPE.Resolution)
	}
}

// TestRunCalibrationSpec: a spec naming a calibration profile installs
// it before simulating, and a missing/stale profile fails the run up
// front instead of silently running uncalibrated.
func TestRunCalibrationSpec(t *testing.T) {
	defer tuning.Reset()
	path := filepath.Join(t.TempDir(), "calib.json")
	p := calib.Measure(calib.Options{QubitsMin: 4, QubitsMax: 5, Reps: 1, Workers: 2})
	p.Tuning.GateParallel = 31337
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}

	spec := &RunSpec{Backend: BackendSpec{Calibration: path}}
	if _, err := Run(context.Background(), spec, RunOptions{}); err != nil {
		t.Fatalf("Run with calibration: %v", err)
	}
	if tuning.GateParallel() != 31337 || tuning.Source() != "file" {
		t.Errorf("calibration not installed: GateParallel=%d source=%q",
			tuning.GateParallel(), tuning.Source())
	}

	spec = &RunSpec{Backend: BackendSpec{Calibration: filepath.Join(t.TempDir(), "missing.json")}}
	if _, err := Run(context.Background(), spec, RunOptions{}); err == nil {
		t.Error("Run accepted a missing calibration profile")
	}
}
