package runspec

// SweepSpec: a parameter sweep as a first-class job family. One base
// RunSpec plus an axis (bond length, Hubbard couplings, ansatz depth,
// active space) expands deterministically into N ordinary point specs —
// each content-addressed with the usual rs1 hash, so point results are
// interchangeable with single-spec submissions — while the family itself
// is content-addressed under the sw1 prefix. The family hash covers the
// axis in submission order (a reordered sweep is a different family);
// point hashes do not (a point is the same run wherever it sits in the
// sweep).
//
// Families exist because the paper's real workloads are curves, not
// points: a dissociation scan is tens of geometries whose optima vary
// smoothly, so executing them in axis order and warm-starting each
// point's initial θ from its nearest finished neighbor saves most of the
// optimizer iterations (§6.2 incremental optimization). RunSweep is the
// in-process family runner; the vqed scheduler wraps the same expansion
// with journaling, caching, and SSE.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/state"
)

// Axis parameter names accepted by SweepAxis.Param.
const (
	// AxisDistance sweeps the H2 bond length in Å (base molecule h2 or
	// h2-distance).
	AxisDistance = "distance"
	// AxisHopping / AxisRepulsion sweep the Hubbard couplings.
	AxisHopping   = "hopping"
	AxisRepulsion = "repulsion"
	// AxisLayers sweeps the HEA entangling-layer count (integer values).
	AxisLayers = "layers"
	// AxisDownfold sweeps the active-space size (integer orbital counts).
	AxisDownfold = "downfold"
)

// MaxSweepPoints is the schema-level ceiling on family size; the daemon
// enforces its own (lower) admission cap on top.
const MaxSweepPoints = 4096

// SweepAxis names the swept parameter and its values: either an explicit
// list (order preserved — it is the execution-independent identity of the
// family) or an inclusive start/stop/step range.
type SweepAxis struct {
	// Param: distance | hopping | repulsion | layers | downfold.
	Param string `json:"param"`
	// Values is the explicit point list; mutually exclusive with the
	// range fields.
	Values []float64 `json:"values,omitempty"`
	// Start/Stop/Step describe an inclusive range (Step > 0).
	Start float64 `json:"start,omitempty"`
	Stop  float64 `json:"stop,omitempty"`
	Step  float64 `json:"step,omitempty"`
}

// SweepSpec is one job family: a base RunSpec and the axis expanded over
// it.
type SweepSpec struct {
	Base RunSpec   `json:"base"`
	Axis SweepAxis `json:"axis"`
}

// SweepPoint is one expanded member of a family.
type SweepPoint struct {
	// Index is the position in expansion (submission) order.
	Index int
	// Value is the axis value this point pins.
	Value float64
	// Spec is the fully-defaulted point spec.
	Spec *RunSpec
	// Hash is the point's ordinary rs1 content hash — the same key a
	// single-spec submission of this point would carry.
	Hash string
}

// values resolves the axis to its explicit point list.
func (a SweepAxis) values() ([]float64, error) {
	if len(a.Values) > 0 {
		if a.Start != 0 || a.Stop != 0 || a.Step != 0 {
			return nil, fmt.Errorf("%w: runspec: sweep axis has both values and a range", core.ErrInvalidArgument)
		}
		if len(a.Values) > MaxSweepPoints {
			return nil, fmt.Errorf("%w: runspec: sweep axis has %d values (max %d)", core.ErrInvalidArgument, len(a.Values), MaxSweepPoints)
		}
		return a.Values, nil
	}
	if a.Step <= 0 {
		return nil, fmt.Errorf("%w: runspec: sweep axis needs values or start/stop/step with step > 0", core.ErrInvalidArgument)
	}
	if a.Stop < a.Start {
		return nil, fmt.Errorf("%w: runspec: sweep axis stop %g < start %g", core.ErrInvalidArgument, a.Stop, a.Start)
	}
	// Inclusive expansion with an epsilon so 0.5:1.3:0.1 lands on 1.3
	// despite float accumulation (same convention as cmd/vqe -scan).
	n := int(math.Floor((a.Stop-a.Start)/a.Step+1e-9)) + 1
	if n > MaxSweepPoints {
		return nil, fmt.Errorf("%w: runspec: sweep range expands to %d points (max %d)", core.ErrInvalidArgument, n, MaxSweepPoints)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = a.Start + float64(i)*a.Step
	}
	return vals, nil
}

// apply pins one axis value onto a copy of the base spec.
func (a SweepAxis) apply(base RunSpec, v float64) (*RunSpec, error) {
	spec := base
	spec.ApplyDefaults()
	switch strings.ToLower(strings.TrimSpace(a.Param)) {
	case AxisDistance:
		if spec.Molecule.Kind != "h2" && spec.Molecule.Kind != "h2-distance" {
			return nil, fmt.Errorf("%w: runspec: distance axis needs molecule kind h2 or h2-distance (got %q)", core.ErrInvalidArgument, spec.Molecule.Kind)
		}
		if v <= 0 {
			return nil, fmt.Errorf("%w: runspec: distance axis value %g must be > 0", core.ErrInvalidArgument, v)
		}
		spec.Molecule = MoleculeSpec{Kind: "h2-distance", Distance: v}
	case AxisHopping, AxisRepulsion:
		if spec.Molecule.Kind != "hubbard" {
			return nil, fmt.Errorf("%w: runspec: %s axis needs molecule kind hubbard (got %q)", core.ErrInvalidArgument, a.Param, spec.Molecule.Kind)
		}
		if strings.EqualFold(a.Param, AxisHopping) {
			spec.Molecule.Hopping = v
		} else {
			spec.Molecule.Repulsion = v
		}
	case AxisLayers:
		n, err := axisInt(a.Param, v)
		if err != nil {
			return nil, err
		}
		if spec.Ansatz.Kind != "hea" {
			return nil, fmt.Errorf("%w: runspec: layers axis needs ansatz kind hea (got %q)", core.ErrInvalidArgument, spec.Ansatz.Kind)
		}
		spec.Ansatz.Layers = n
	case AxisDownfold:
		n, err := axisInt(a.Param, v)
		if err != nil {
			return nil, err
		}
		spec.Downfold = n
	default:
		return nil, fmt.Errorf("%w: runspec: unknown sweep axis param %q", core.ErrInvalidArgument, a.Param)
	}
	return &spec, nil
}

// axisInt validates an integer-valued axis point.
func axisInt(param string, v float64) (int, error) {
	if v < 1 || math.Abs(v-math.Round(v)) > 1e-9 {
		return 0, fmt.Errorf("%w: runspec: %s axis value %g must be a positive integer", core.ErrInvalidArgument, param, v)
	}
	return int(math.Round(v)), nil
}

// Points expands the family into its member specs, in submission order.
// Every point is validated; duplicate axis values are rejected (they
// would alias the same rs1 hash inside one family).
func (s *SweepSpec) Points() ([]SweepPoint, error) {
	vals, err := s.Axis.values()
	if err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("%w: runspec: sweep axis expands to zero points", core.ErrInvalidArgument)
	}
	points := make([]SweepPoint, len(vals))
	seen := make(map[string]float64, len(vals))
	for i, v := range vals {
		spec, err := s.Axis.apply(s.Base, v)
		if err != nil {
			return nil, err
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("sweep point %d (value %g): %w", i, v, err)
		}
		h := spec.Hash()
		if prev, dup := seen[h]; dup {
			return nil, fmt.Errorf("%w: runspec: sweep values %g and %g expand to the same point", core.ErrInvalidArgument, prev, v)
		}
		seen[h] = v
		points[i] = SweepPoint{Index: i, Value: v, Spec: spec, Hash: h}
	}
	return points, nil
}

// Validate checks the family: the base spec, the axis, and every expanded
// point.
func (s *SweepSpec) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return fmt.Errorf("sweep base: %w", err)
	}
	_, err := s.Points()
	return err
}

// SweepHashPrefix versions the family canonical form (bump alongside any
// change to sweep expansion semantics).
const SweepHashPrefix = "sw1"

// canonicalSweep is the hashed form: the canonical base plus the resolved
// value list in submission order. A range and an explicit list expanding
// to the same values are the same family; the same values reordered are
// not (execution order is part of family identity), while the member
// point hashes are order-independent by construction.
type canonicalSweep struct {
	Base   RunSpec   `json:"base"`
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// Hash returns the family content hash: SweepHashPrefix plus the hex
// SHA-256 of the canonical family JSON.
func (s SweepSpec) Hash() string {
	vals, err := s.Axis.values()
	if err != nil {
		// An unexpandable axis has no canonical identity; hash the raw
		// axis so the value is still deterministic for error paths.
		vals = s.Axis.Values
	}
	c := canonicalSweep{
		Base:   s.Base.Canonical(),
		Param:  strings.ToLower(strings.TrimSpace(s.Axis.Param)),
		Values: vals,
	}
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Errorf("%w: runspec: marshal canonical sweep: %v", core.ErrInvalidArgument, err))
	}
	sum := sha256.Sum256(b)
	return SweepHashPrefix + ":" + hex.EncodeToString(sum[:])
}

// ParseSweep decodes a JSON sweep document strictly (unknown fields are
// errors) and validates it.
func ParseSweep(data []byte) (*SweepSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	spec := new(SweepSpec)
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("%w: runspec: sweep: %v", core.ErrInvalidArgument, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: runspec: trailing data after sweep spec", core.ErrInvalidArgument)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ExecutionOrder returns point indices sorted ascending by axis value —
// the neighbor-ordered dispatch sequence both RunSweep and the daemon's
// family executor walk, so each point's warm-start source is already
// finished when the point runs.
func ExecutionOrder(points []SweepPoint) []int {
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return points[order[a]].Value < points[order[b]].Value
	})
	return order
}

// NearestParams picks the converged parameter vector of the finished
// point nearest to value on the axis (ties to the lower value), or nil
// when none qualifies. want is the parameter count the target ansatz
// expects; sources of a different arity are skipped (a depth sweep grows
// the vector between points).
func NearestParams(value float64, want int, finished []SweepPoint, results map[int]*Result) []float64 {
	var bestParams []float64
	bestDist, bestValue := math.Inf(1), math.Inf(1)
	for _, p := range finished {
		res := results[p.Index]
		if res == nil || len(res.Params) == 0 {
			continue
		}
		if want > 0 && len(res.Params) != want {
			continue
		}
		d := math.Abs(p.Value - value)
		//vqelint:ignore floatcompare exact tie-break between identical distances; a tolerance would make "ties to the lower value" nondeterministic
		if d < bestDist || (d == bestDist && p.Value < bestValue) {
			bestDist, bestValue, bestParams = d, p.Value, res.Params
		}
	}
	return bestParams
}

// SweepRunOptions configures the in-process family runner.
type SweepRunOptions struct {
	// Pool shares one simulation pool across the points.
	Pool *state.Pool
	// ColdStart disables warm-starting (the measurement baseline for the
	// warm-vs-cold iteration comparison).
	ColdStart bool
	// OnPoint receives each point outcome as it settles, in execution
	// (axis-value) order.
	OnPoint func(SweepPointOutcome)
	// OnProgress receives the running point's engine progress.
	OnProgress func(point int, p Progress)
}

// SweepPointOutcome is one settled point of a family run.
type SweepPointOutcome struct {
	Index       int     `json:"index"`
	Value       float64 `json:"value"`
	SpecHash    string  `json:"spec_hash"`
	WarmStarted bool    `json:"warm_started,omitempty"`
	Result      *Result `json:"result,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// SweepResult is the aggregate outcome of RunSweep, points in submission
// order.
type SweepResult struct {
	FamilyHash string              `json:"family_hash"`
	Param      string              `json:"param"`
	Points     []SweepPointOutcome `json:"points"`
	// EnergyEvaluations totals the optimizer work across all points — the
	// number the warm-vs-cold experiment compares.
	EnergyEvaluations int   `json:"energy_evaluations"`
	Failed            int   `json:"failed,omitempty"`
	WallNs            int64 `json:"wall_ns"`
}

// RunSweep executes a family in-process: points in ascending axis order,
// each warm-started from its nearest finished neighbor, with molecule /
// observable / FCI construction shared across points. A failing point
// records its error and the sweep continues; only context cancellation
// aborts the family.
func RunSweep(ctx context.Context, ss *SweepSpec, opts SweepRunOptions) (*SweepResult, error) {
	started := time.Now()
	points, err := ss.Points()
	if err != nil {
		return nil, err
	}
	out := &SweepResult{
		FamilyHash: ss.Hash(),
		Param:      strings.ToLower(strings.TrimSpace(ss.Axis.Param)),
		Points:     make([]SweepPointOutcome, len(points)),
	}
	shared := NewBuildCache()
	results := make(map[int]*Result, len(points))
	var finished []SweepPoint
	for _, idx := range ExecutionOrder(points) {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		p := points[idx]
		po := SweepPointOutcome{Index: p.Index, Value: p.Value, SpecHash: p.Hash}
		ro := RunOptions{Pool: opts.Pool, Shared: shared}
		if !opts.ColdStart {
			if warm := NearestParams(p.Value, 0, finished, results); warm != nil {
				ro.InitialParams = warm
				po.WarmStarted = true
			}
		}
		if opts.OnProgress != nil {
			i := p.Index
			ro.OnProgress = func(pr Progress) { opts.OnProgress(i, pr) }
		}
		res, err := Run(ctx, p.Spec, ro)
		if err != nil {
			if ctx.Err() != nil {
				return out, err
			}
			po.Error = err.Error()
			out.Failed++
		} else {
			po.Result = res
			out.EnergyEvaluations += res.EnergyEvaluations
			results[p.Index] = res
			finished = append(finished, p)
		}
		out.Points[p.Index] = po
		if opts.OnPoint != nil {
			opts.OnPoint(po)
		}
	}
	out.WallNs = time.Since(started).Nanoseconds()
	return out, nil
}
