// Package runspec defines the canonical, serializable description of one
// VQE workload: molecule, encoding, ansatz, energy-evaluation mode,
// optimizer, backend, and resilience policy collapsed into a single
// RunSpec value. The spec is the unit of work everywhere — the CLIs parse
// flags into one (cmd/internal/specflags), the vqed daemon accepts one per
// job over HTTP, and the public facade's legacy config structs are thin
// adapters over it.
//
// A RunSpec has a canonical form (Canonical) and a content hash (Hash)
// over that form. Two specs with equal hashes describe numerically
// identical runs — the engine is deterministic by construction — which is
// what lets the daemon serve a duplicate submission from cache instead of
// re-simulating. Resilience settings (checkpoint cadence, walltime) are
// excluded from the hash: they decide whether a run completes, never what
// a completed run computes.
package runspec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
)

// Enum values accepted by Validate. Everything is lowercase in canonical
// form; Validate is case-insensitive on input.
const (
	AlgorithmVQE   = "vqe"
	AlgorithmAdapt = "adapt"
	AlgorithmQPE   = "qpe"
)

// MoleculeSpec names a built-in molecular model and its parameters. Only
// the fields relevant to Kind survive canonicalization, so a hubbard spec
// carrying a stale synthetic seed hashes the same as a clean one.
type MoleculeSpec struct {
	// Kind: h2 | h2-distance | water | hubbard | synthetic.
	Kind string `json:"kind"`
	// Distance is the H2 bond length in Å (h2-distance only).
	Distance float64 `json:"distance,omitempty"`
	// Sites / Hopping / Repulsion parameterize the Hubbard chain.
	Sites     int     `json:"sites,omitempty"`
	Hopping   float64 `json:"t,omitempty"`
	Repulsion float64 `json:"u,omitempty"`
	// Orbitals / Electrons / Seed parameterize the synthetic generator
	// (Electrons is shared with hubbard).
	Orbitals  int    `json:"orbitals,omitempty"`
	Electrons int    `json:"electrons,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
}

// AnsatzSpec selects the parameterized circuit family.
type AnsatzSpec struct {
	// Kind: uccsd (default) | hea.
	Kind string `json:"kind,omitempty"`
	// Layers is the HEA entangling-layer count (default 2).
	Layers int `json:"layers,omitempty"`
}

// OptimizerSpec selects the classical routine.
type OptimizerSpec struct {
	// Method: lbfgs (default) | nelder-mead.
	Method string `json:"method,omitempty"`
	// MaxIter bounds the optimizer (0 = routine default).
	MaxIter int `json:"max_iter,omitempty"`
}

// AdaptSpec tunes the Adapt-VQE outer loop (Algorithm == "adapt").
type AdaptSpec struct {
	MaxIterations int     `json:"max_iterations,omitempty"` // default 25
	GradientTol   float64 `json:"gradient_tol,omitempty"`   // default 1e-4
}

// QPESpec tunes phase estimation (Algorithm == "qpe").
type QPESpec struct {
	Ancillas     int `json:"ancillas,omitempty"`      // default 7
	TrotterSteps int `json:"trotter_steps,omitempty"` // default 4
}

// FaultSpec is the serializable form of resilience.FaultConfig: a seeded
// injector behind every cluster transfer, for fault drills through the
// daemon.
type FaultSpec struct {
	Seed        uint64  `json:"seed,omitempty"`
	DropProb    float64 `json:"drop_prob,omitempty"`
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	StallProb   float64 `json:"stall_prob,omitempty"`
	SilentProb  float64 `json:"silent_prob,omitempty"`
	MaxFaults   int     `json:"max_faults,omitempty"`
}

// enabled reports whether any injection probability is set.
func (f *FaultSpec) enabled() bool {
	return f != nil && (f.DropProb > 0 || f.CorruptProb > 0 || f.StallProb > 0 || f.SilentProb > 0)
}

// BackendSpec picks the simulation backend from the xacc registry and its
// construction options.
type BackendSpec struct {
	// Accelerator is a registry name (default nwq-sv).
	Accelerator string `json:"accelerator,omitempty"`
	// Ranks for the cluster backend (default 4).
	Ranks int `json:"ranks,omitempty"`
	// Workers per simulation (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Fault enables the seeded fault injector (cluster backends).
	Fault *FaultSpec `json:"fault,omitempty"`
	// Calibration names a kernel calibration profile file to install
	// before running (see internal/kernel/calib). Excluded from the
	// canonical hash: tuning thresholds steer kernel strategy choices,
	// never the computed energies.
	Calibration string `json:"calibration,omitempty"`
}

// ResilienceSpec carries the checkpoint/walltime knobs. Excluded from the
// canonical hash: it governs run lifecycle, not the computed result.
type ResilienceSpec struct {
	// CheckpointPath is the snapshot file ("" disables; the daemon
	// overrides this with a per-job spool path).
	CheckpointPath string `json:"checkpoint_path,omitempty"`
	// CheckpointEvery is the iteration cadence (≤1 = every iteration).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Resume loads CheckpointPath before starting.
	Resume bool `json:"resume,omitempty"`
	// Walltime is a SLURM-style budget ("30", "HH:MM:SS", "D-HH:MM") or a
	// Go duration ("90s"); empty means unbounded.
	Walltime string `json:"walltime,omitempty"`
}

// RunSpec is the one canonical description of a VQE job.
type RunSpec struct {
	Molecule MoleculeSpec `json:"molecule"`
	// Encoding: jw (default) | bk | parity.
	Encoding string `json:"encoding,omitempty"`
	// Downfold compresses the molecule onto this many active orbitals
	// before solving (0 = off).
	Downfold int `json:"downfold,omitempty"`
	// Algorithm: vqe (default) | adapt | qpe.
	Algorithm string     `json:"algorithm,omitempty"`
	Ansatz    AnsatzSpec `json:"ansatz,omitempty"`
	// Mode: direct (default) | rotated | sampled.
	Mode string `json:"mode,omitempty"`
	// Shots per measurement group in sampled mode (default 8192).
	Shots int `json:"shots,omitempty"`
	// DisableCaching turns off the post-ansatz state cache (rotated and
	// sampled modes; irrelevant in direct mode).
	DisableCaching bool `json:"disable_caching,omitempty"`
	// Fusion transpiles ansatz circuits with 2-qubit gate fusion.
	Fusion     bool           `json:"fusion,omitempty"`
	Optimizer  OptimizerSpec  `json:"optimizer,omitempty"`
	Adapt      AdaptSpec      `json:"adapt,omitempty"`
	QPE        QPESpec        `json:"qpe,omitempty"`
	Backend    BackendSpec    `json:"backend,omitempty"`
	Resilience ResilienceSpec `json:"resilience,omitempty"`
}

// ApplyDefaults fills zero fields in place with the documented defaults,
// lowercasing the enum strings. Validate calls it implicitly via
// Canonical; callers mutating a spec by hand can invoke it directly.
func (s *RunSpec) ApplyDefaults() {
	s.Molecule.Kind = strings.ToLower(strings.TrimSpace(s.Molecule.Kind))
	if s.Molecule.Kind == "" {
		s.Molecule.Kind = "h2"
	}
	switch s.Molecule.Kind {
	case "hubbard":
		if s.Molecule.Sites == 0 {
			s.Molecule.Sites = 2
		}
		if s.Molecule.Hopping == 0 {
			s.Molecule.Hopping = 1.0
		}
		if s.Molecule.Repulsion == 0 {
			s.Molecule.Repulsion = 4.0
		}
		if s.Molecule.Electrons == 0 {
			s.Molecule.Electrons = s.Molecule.Sites
		}
	case "synthetic":
		if s.Molecule.Orbitals == 0 {
			s.Molecule.Orbitals = 3
		}
		if s.Molecule.Electrons == 0 {
			s.Molecule.Electrons = 2
		}
		if s.Molecule.Seed == 0 {
			s.Molecule.Seed = 1
		}
	}
	s.Encoding = lowerDefault(s.Encoding, "jw")
	s.Algorithm = lowerDefault(s.Algorithm, AlgorithmVQE)
	s.Mode = lowerDefault(s.Mode, "direct")
	if s.Mode == "sampled" && s.Shots == 0 {
		s.Shots = 8192
	}
	s.Ansatz.Kind = lowerDefault(s.Ansatz.Kind, "uccsd")
	if s.Ansatz.Kind == "hea" && s.Ansatz.Layers == 0 {
		s.Ansatz.Layers = 2
	}
	s.Optimizer.Method = lowerDefault(s.Optimizer.Method, "lbfgs")
	if s.Algorithm == AlgorithmAdapt {
		if s.Adapt.MaxIterations == 0 {
			s.Adapt.MaxIterations = 25
		}
		if s.Adapt.GradientTol == 0 {
			s.Adapt.GradientTol = 1e-4
		}
	}
	if s.Algorithm == AlgorithmQPE {
		if s.QPE.Ancillas == 0 {
			s.QPE.Ancillas = 7
		}
		if s.QPE.TrotterSteps == 0 {
			s.QPE.TrotterSteps = 4
		}
	}
	s.Backend.Accelerator = lowerDefault(s.Backend.Accelerator, "nwq-sv")
	if s.Backend.Accelerator == "nwq-cluster" || s.Backend.Accelerator == "nwq-resilient" {
		if s.Backend.Ranks == 0 {
			s.Backend.Ranks = 4
		}
	}
}

func lowerDefault(v, def string) string {
	v = strings.ToLower(strings.TrimSpace(v))
	if v == "" {
		return def
	}
	return v
}

// Validate checks the spec after defaulting, wrapping every failure in
// core.ErrInvalidArgument so callers can errors.Is against the engine's
// sentinel. It does not consult the accelerator registry — backend names
// resolve at run time so specs stay portable across builds.
func (s *RunSpec) Validate() error {
	c := *s
	c.ApplyDefaults()
	switch c.Molecule.Kind {
	case "h2", "water", "hubbard", "synthetic":
	case "h2-distance":
		if c.Molecule.Distance <= 0 {
			return fmt.Errorf("%w: runspec: h2-distance needs molecule.distance > 0 (got %g)", core.ErrInvalidArgument, c.Molecule.Distance)
		}
	default:
		return fmt.Errorf("%w: runspec: unknown molecule kind %q", core.ErrInvalidArgument, c.Molecule.Kind)
	}
	if c.Molecule.Sites < 0 || c.Molecule.Orbitals < 0 || c.Molecule.Electrons < 0 {
		return fmt.Errorf("%w: runspec: negative molecule size", core.ErrInvalidArgument)
	}
	switch c.Encoding {
	case "jw", "bk", "parity":
	default:
		return fmt.Errorf("%w: runspec: unknown encoding %q", core.ErrInvalidArgument, c.Encoding)
	}
	if c.Downfold < 0 {
		return fmt.Errorf("%w: runspec: negative downfold", core.ErrInvalidArgument)
	}
	switch c.Algorithm {
	case AlgorithmVQE, AlgorithmAdapt, AlgorithmQPE:
	default:
		return fmt.Errorf("%w: runspec: unknown algorithm %q", core.ErrInvalidArgument, c.Algorithm)
	}
	switch c.Mode {
	case "direct", "rotated", "sampled":
	default:
		return fmt.Errorf("%w: runspec: unknown mode %q", core.ErrInvalidArgument, c.Mode)
	}
	if c.Shots < 0 {
		return fmt.Errorf("%w: runspec: negative shots", core.ErrInvalidArgument)
	}
	switch c.Ansatz.Kind {
	case "uccsd", "hea":
	default:
		return fmt.Errorf("%w: runspec: unknown ansatz %q", core.ErrInvalidArgument, c.Ansatz.Kind)
	}
	if c.Ansatz.Kind == "hea" && c.Ansatz.Layers < 1 {
		return fmt.Errorf("%w: runspec: hea needs ansatz.layers ≥ 1", core.ErrInvalidArgument)
	}
	switch c.Optimizer.Method {
	case "lbfgs", "nelder-mead":
	default:
		return fmt.Errorf("%w: runspec: unknown optimizer %q", core.ErrInvalidArgument, c.Optimizer.Method)
	}
	if c.Algorithm == AlgorithmVQE && c.Ansatz.Kind == "hea" && c.Optimizer.Method == "lbfgs" {
		// Adjoint gradients need the exponential ansatz structure; the
		// hardware-efficient family only supports derivative-free search.
		return fmt.Errorf("%w: runspec: ansatz hea requires optimizer.method nelder-mead", core.ErrInvalidArgument)
	}
	//vqelint:ignore workerssemantics validation bounds check, not a sentinel read — 0 and 1 both pass through untouched
	if c.Backend.Ranks < 0 || c.Backend.Workers < 0 {
		return fmt.Errorf("%w: runspec: negative backend sizing", core.ErrInvalidArgument)
	}
	if c.Resilience.Resume && c.Resilience.CheckpointPath == "" {
		return fmt.Errorf("%w: runspec: resilience.resume needs resilience.checkpoint_path", core.ErrInvalidArgument)
	}
	return nil
}

// Canonical returns the normalized copy used for hashing and equality:
// defaults applied, enums lowercased, fields irrelevant to the selected
// kind/algorithm/mode zeroed, and the resilience section cleared (it never
// changes what a completed run computes).
func (s RunSpec) Canonical() RunSpec {
	c := s
	c.ApplyDefaults()
	switch c.Molecule.Kind {
	case "h2", "water":
		c.Molecule = MoleculeSpec{Kind: c.Molecule.Kind}
	case "h2-distance":
		c.Molecule = MoleculeSpec{Kind: "h2-distance", Distance: c.Molecule.Distance}
	case "hubbard":
		c.Molecule = MoleculeSpec{Kind: "hubbard", Sites: c.Molecule.Sites,
			Hopping: c.Molecule.Hopping, Repulsion: c.Molecule.Repulsion,
			Electrons: c.Molecule.Electrons}
	case "synthetic":
		c.Molecule = MoleculeSpec{Kind: "synthetic", Orbitals: c.Molecule.Orbitals,
			Electrons: c.Molecule.Electrons, Seed: c.Molecule.Seed}
	}
	if c.Algorithm != AlgorithmAdapt {
		c.Adapt = AdaptSpec{}
	}
	if c.Algorithm != AlgorithmQPE {
		c.QPE = QPESpec{}
	}
	if c.Algorithm == AlgorithmQPE {
		// QPE has no variational loop: evaluation/optimizer knobs are inert.
		c.Mode, c.Shots, c.DisableCaching = "direct", 0, false
		c.Optimizer = OptimizerSpec{}
		c.Ansatz = AnsatzSpec{Kind: "uccsd"}
	}
	if c.Algorithm == AlgorithmAdapt {
		// Adapt grows its own ansatz; the fixed-ansatz choice is inert.
		c.Ansatz = AnsatzSpec{Kind: "uccsd"}
	}
	if c.Mode == "direct" {
		c.Shots = 0
		c.DisableCaching = false
	}
	if c.Mode != "sampled" {
		c.Shots = 0
	}
	if c.Backend.Accelerator != "nwq-cluster" && c.Backend.Accelerator != "nwq-resilient" {
		c.Backend.Ranks = 0
		c.Backend.Fault = nil
	}
	if c.Backend.Fault != nil && !c.Backend.Fault.enabled() {
		c.Backend.Fault = nil
	}
	c.Backend.Calibration = ""
	c.Resilience = ResilienceSpec{}
	return c
}

// HashPrefix versions the canonical form; bump it whenever Canonical or
// the spec schema changes meaning, so stale cache keys can never alias a
// new semantics.
const HashPrefix = "rs1"

// Hash returns the content hash of the canonical spec: HashPrefix plus
// the hex SHA-256 of its canonical JSON. encoding/json emits struct
// fields in declaration order, so the byte stream — and therefore the
// hash — is deterministic.
func (s RunSpec) Hash() string {
	b, err := json.Marshal(s.Canonical())
	if err != nil {
		// A RunSpec is plain data; Marshal can only fail on a corrupted
		// runtime. Treat it as such.
		panic(fmt.Errorf("%w: runspec: marshal canonical spec: %v", core.ErrInvalidArgument, err))
	}
	sum := sha256.Sum256(b)
	return HashPrefix + ":" + hex.EncodeToString(sum[:])
}

// Parse decodes a JSON spec strictly (unknown fields are errors, catching
// typos like "optimiser") and validates it.
func Parse(data []byte) (*RunSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	spec := new(RunSpec)
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("%w: runspec: %v", core.ErrInvalidArgument, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: runspec: trailing data after spec", core.ErrInvalidArgument)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
