package opt

// Optimizer state capture for checkpoint/restart (the resilience layer's
// contract): a state struct holds *everything* the iteration loop reads,
// so restoring it and re-entering the loop reproduces the uninterrupted
// trajectory bit-for-bit. The structs are plain JSON-marshalable data —
// persistence (CRC, atomic rename) lives in internal/resilience, and the
// VQE driver decides what file they go to.

// NelderMeadState is the complete Nelder–Mead iteration state: the
// simplex vertices with their objective values (sorted best-first, as
// the loop maintains them), plus the iteration and evaluation counters.
type NelderMeadState struct {
	Simplex [][]float64 `json:"simplex"`
	Values  []float64   `json:"values"`
	Iter    int         `json:"iter"`
	Evals   int         `json:"evals"`
}

// Best returns the current best vertex and value (the simplex is kept
// sorted, so index 0).
func (s *NelderMeadState) Best() ([]float64, float64) {
	if len(s.Simplex) == 0 {
		return nil, 0
	}
	return s.Simplex[0], s.Values[0]
}

// LBFGSState is the complete L-BFGS iteration state: current point,
// gradient and value, the curvature-pair history that defines the
// Hessian model, and the counters.
type LBFGSState struct {
	X       []float64   `json:"x"`
	G       []float64   `json:"g"`
	F       float64     `json:"f"`
	SHist   [][]float64 `json:"s_hist,omitempty"`
	YHist   [][]float64 `json:"y_hist,omitempty"`
	RhoHist []float64   `json:"rho_hist,omitempty"`
	Iter    int         `json:"iter"`
	Evals   int         `json:"evals"`
}

// Best returns the current iterate and value.
func (s *LBFGSState) Best() ([]float64, float64) { return s.X, s.F }

// clone deep-copies the state.
func (s *LBFGSState) clone() *LBFGSState {
	return &LBFGSState{
		X:       copyVec(s.X),
		G:       copyVec(s.G),
		F:       s.F,
		SHist:   copyMat(s.SHist),
		YHist:   copyMat(s.YHist),
		RhoHist: copyVec(s.RhoHist),
		Iter:    s.Iter,
		Evals:   s.Evals,
	}
}

func copyVec(v []float64) []float64 {
	if v == nil {
		return nil
	}
	return append([]float64(nil), v...)
}

func copyMat(m [][]float64) [][]float64 {
	if m == nil {
		return nil
	}
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = copyVec(row)
	}
	return out
}
