package opt

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
)

// rosenbrockGrad is the analytic gradient of opt_test.go's rosenbrock —
// ill-conditioned enough that mid-run interruption is meaningful.
func rosenbrockGrad(x, g []float64) {
	for i := range g {
		g[i] = 0
	}
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		g[i] += -400*x[i]*a - 2*(1-x[i])
		g[i+1] += 200 * a
	}
}

var errHalt = errors.New("halt")

// jsonRoundTrip simulates persistence: the resumed state has been
// through the same marshal/unmarshal the checkpoint file imposes.
func jsonRoundTrip[T any](t *testing.T, in *T) *T {
	t.Helper()
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out := new(T)
	if err := json.Unmarshal(buf, out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNelderMeadResumeBitExact(t *testing.T) {
	x0 := []float64{-1.2, 1.0, 0.5}
	full := NelderMead(rosenbrock, x0, NelderMeadOptions{MaxIter: 400})

	for _, killAt := range []int{1, 7, 40, 150} {
		var saved *NelderMeadState
		partial := NelderMead(rosenbrock, x0, NelderMeadOptions{
			MaxIter: 400,
			Observer: func(st *NelderMeadState) error {
				if st.Iter >= killAt {
					saved = st
					return errHalt
				}
				return nil
			},
		})
		if !partial.Interrupted || saved == nil {
			t.Fatalf("killAt=%d: not interrupted", killAt)
		}
		resumed := NelderMead(rosenbrock, x0, NelderMeadOptions{
			MaxIter: 400,
			Resume:  jsonRoundTrip(t, saved),
		})
		if math.Float64bits(resumed.F) != math.Float64bits(full.F) {
			t.Errorf("killAt=%d: resumed F %v != full F %v", killAt, resumed.F, full.F)
		}
		for i := range full.X {
			if math.Float64bits(resumed.X[i]) != math.Float64bits(full.X[i]) {
				t.Errorf("killAt=%d: x[%d] %v != %v", killAt, i, resumed.X[i], full.X[i])
			}
		}
		if resumed.Evaluations != full.Evaluations {
			t.Errorf("killAt=%d: evals %d != %d", killAt, resumed.Evaluations, full.Evaluations)
		}
		if resumed.Converged != full.Converged {
			t.Errorf("killAt=%d: converged %v != %v", killAt, resumed.Converged, full.Converged)
		}
	}
}

func TestLBFGSResumeBitExact(t *testing.T) {
	x0 := []float64{-1.2, 1.0, 0.8, -0.3}
	o := LBFGSOptions{MaxIter: 150}
	full := LBFGS(rosenbrock, rosenbrockGrad, x0, o)
	if !full.Converged {
		t.Fatal("reference run did not converge")
	}

	// Kill points spread over the actual trajectory, including the
	// second-to-last iteration.
	killPoints := []int{1, 3, full.Iterations / 2, full.Iterations - 1}
	for _, killAt := range killPoints {
		if killAt < 1 || killAt >= full.Iterations {
			continue
		}
		var saved *LBFGSState
		partial := LBFGS(rosenbrock, rosenbrockGrad, x0, LBFGSOptions{
			MaxIter: 150,
			Observer: func(st *LBFGSState) error {
				if st.Iter >= killAt {
					saved = st
					return errHalt
				}
				return nil
			},
		})
		if !partial.Interrupted || saved == nil {
			t.Fatalf("killAt=%d: not interrupted", killAt)
		}
		resumed := LBFGS(rosenbrock, rosenbrockGrad, x0, LBFGSOptions{
			MaxIter: 150,
			Resume:  jsonRoundTrip(t, saved),
		})
		if math.Float64bits(resumed.F) != math.Float64bits(full.F) {
			t.Errorf("killAt=%d: resumed F %v != full F %v", killAt, resumed.F, full.F)
		}
		for i := range full.X {
			if math.Float64bits(resumed.X[i]) != math.Float64bits(full.X[i]) {
				t.Errorf("killAt=%d: x[%d] %v != %v", killAt, i, resumed.X[i], full.X[i])
			}
		}
		if resumed.Evaluations != full.Evaluations || resumed.Iterations != full.Iterations {
			t.Errorf("killAt=%d: evals/iters %d/%d != %d/%d", killAt,
				resumed.Evaluations, resumed.Iterations, full.Evaluations, full.Iterations)
		}
	}
}

func TestObserverSeesMonotoneIterations(t *testing.T) {
	last := -1
	NelderMead(rosenbrock, []float64{0, 0}, NelderMeadOptions{
		MaxIter: 50,
		Observer: func(st *NelderMeadState) error {
			if st.Iter != last+1 {
				t.Fatalf("iteration jumped %d → %d", last, st.Iter)
			}
			last = st.Iter
			return nil
		},
	})
	if last < 1 {
		t.Fatal("observer never called")
	}
}

func TestObserverStateIsACopy(t *testing.T) {
	var grabbed *LBFGSState
	LBFGS(rosenbrock, rosenbrockGrad, []float64{-1, 1}, LBFGSOptions{
		MaxIter: 5,
		Observer: func(st *LBFGSState) error {
			if grabbed == nil {
				grabbed = st
				return nil
			}
			// Mutating an old snapshot must not perturb the optimizer.
			grabbed.X[0] = 1e9
			grabbed.F = 1e9
			return nil
		},
	})
	clean := LBFGS(rosenbrock, rosenbrockGrad, []float64{-1, 1}, LBFGSOptions{MaxIter: 5})
	dirty := LBFGS(rosenbrock, rosenbrockGrad, []float64{-1, 1}, LBFGSOptions{
		MaxIter: 5,
		Observer: func(st *LBFGSState) error {
			st.X[0] = 1e9 // scribble on the snapshot
			return nil
		},
	})
	if math.Float64bits(clean.F) != math.Float64bits(dirty.F) {
		t.Error("observer mutation leaked into the optimizer")
	}
}

func TestResumeDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched resume state accepted")
		}
	}()
	NelderMead(rosenbrock, []float64{0, 0}, NelderMeadOptions{
		Resume: &NelderMeadState{Simplex: [][]float64{{1}}, Values: []float64{0}},
	})
}
