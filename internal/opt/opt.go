// Package opt provides the classical optimizers driving the VQE loop
// (paper §3.1 step 4): Nelder–Mead simplex, SPSA, Adam, and L-BFGS, plus
// finite-difference gradients. All optimizers minimize and are
// deterministic given their options.
package opt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Objective is a scalar function of a parameter vector.
type Objective func(x []float64) float64

// Gradient fills g with ∂f/∂x at x.
type Gradient func(x []float64, g []float64)

// Result reports an optimization outcome.
type Result struct {
	X           []float64
	F           float64
	Iterations  int
	Evaluations int
	Converged   bool
	// Interrupted is set when an Observer halted the loop early (deadline
	// cancellation, crash drill); X/F then carry the best point so far.
	Interrupted bool
}

// FiniteDifference returns a central-difference gradient of f with step h
// (default 1e-6 if h <= 0).
func FiniteDifference(f Objective, h float64) Gradient {
	if h <= 0 {
		h = 1e-6
	}
	return func(x, g []float64) {
		xx := append([]float64(nil), x...)
		for i := range x {
			xx[i] = x[i] + h
			fp := f(xx)
			xx[i] = x[i] - h
			fm := f(xx)
			xx[i] = x[i]
			g[i] = (fp - fm) / (2 * h)
		}
	}
}

// NelderMeadOptions tunes the simplex method.
type NelderMeadOptions struct {
	MaxIter  int     // default 200·dim
	FTol     float64 // spread tolerance, default 1e-10
	InitStep float64 // initial simplex displacement, default 0.1
	// Resume continues from a captured state instead of building the
	// initial simplex around x0 (x0 must still have the right length).
	// Iteration and evaluation counters carry over, so MaxIter bounds
	// the *total* across the original run and every resume.
	Resume *NelderMeadState
	// Observer is called at the top of every iteration with a deep copy
	// of the current state (simplex sorted best-first). A non-nil return
	// halts the loop: the result carries the best vertex so far with
	// Interrupted set. Used for checkpointing and cooperative
	// cancellation.
	Observer func(*NelderMeadState) error
}

// vertex is one simplex corner: a point and its objective value.
type vertex struct {
	x []float64
	f float64
}

// captureNelderMead deep-copies the live simplex into an observer/
// checkpoint snapshot.
func captureNelderMead(simplex []vertex, iter, evals int) *NelderMeadState {
	st := &NelderMeadState{
		Simplex: make([][]float64, len(simplex)),
		Values:  make([]float64, len(simplex)),
		Iter:    iter,
		Evals:   evals,
	}
	for i, v := range simplex {
		st.Simplex[i] = copyVec(v.x)
		st.Values[i] = v.f
	}
	return st
}

// NelderMead minimizes f from x0 with the adaptive simplex method.
func NelderMead(f Objective, x0 []float64, o NelderMeadOptions) Result {
	dim := len(x0)
	if dim == 0 {
		return Result{X: nil, F: f(nil), Evaluations: 1, Converged: true}
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200 * dim
	}
	if o.FTol <= 0 {
		o.FTol = 1e-10
	}
	if o.InitStep == 0 {
		o.InitStep = 0.1
	}
	// Adaptive coefficients (Gao & Han) improve high-dimensional behavior.
	alpha := 1.0
	beta := 1.0 + 2.0/float64(dim)
	gamma := 0.75 - 1.0/(2*float64(dim))
	delta := 1.0 - 1.0/float64(dim)

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}
	simplex := make([]vertex, dim+1)
	iter := 0
	if o.Resume != nil {
		if len(o.Resume.Simplex) != dim+1 || len(o.Resume.Values) != dim+1 {
			panic(fmt.Errorf("%w: resume state has %d vertices for dimension %d",
				core.ErrInvalidArgument, len(o.Resume.Simplex), dim))
		}
		for i := range simplex {
			simplex[i] = vertex{x: copyVec(o.Resume.Simplex[i]), f: o.Resume.Values[i]}
		}
		iter = o.Resume.Iter
		evals = o.Resume.Evals
	} else {
		simplex[0] = vertex{x: append([]float64(nil), x0...), f: eval(x0)}
		for i := 1; i <= dim; i++ {
			x := append([]float64(nil), x0...)
			x[i-1] += o.InitStep
			simplex[i] = vertex{x: x, f: eval(x)}
		}
	}

	centroid := make([]float64, dim)
	trial := make([]float64, dim)
	for ; iter < o.MaxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if o.Observer != nil {
			if err := o.Observer(captureNelderMead(simplex, iter, evals)); err != nil {
				return Result{X: simplex[0].x, F: simplex[0].f, Iterations: iter, Evaluations: evals, Interrupted: true}
			}
		}
		if math.Abs(simplex[dim].f-simplex[0].f) < o.FTol*(1+math.Abs(simplex[0].f)) {
			return Result{X: simplex[0].x, F: simplex[0].f, Iterations: iter, Evaluations: evals, Converged: true}
		}
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < dim; i++ {
			for j, v := range simplex[i].x {
				centroid[j] += v / float64(dim)
			}
		}
		// Reflect.
		for j := range trial {
			trial[j] = centroid[j] + alpha*(centroid[j]-simplex[dim].x[j])
		}
		fr := eval(trial)
		switch {
		case fr < simplex[0].f:
			// Expand.
			exp := make([]float64, dim)
			for j := range exp {
				exp[j] = centroid[j] + beta*(trial[j]-centroid[j])
			}
			fe := eval(exp)
			if fe < fr {
				simplex[dim] = vertex{x: exp, f: fe}
			} else {
				simplex[dim] = vertex{x: append([]float64(nil), trial...), f: fr}
			}
		case fr < simplex[dim-1].f:
			simplex[dim] = vertex{x: append([]float64(nil), trial...), f: fr}
		default:
			// Contract (outside if reflection helped at all, else inside).
			ref := simplex[dim].x
			if fr < simplex[dim].f {
				for j := range trial {
					trial[j] = centroid[j] + gamma*(trial[j]-centroid[j])
				}
			} else {
				for j := range trial {
					trial[j] = centroid[j] - gamma*(centroid[j]-ref[j])
				}
			}
			fc := eval(trial)
			if fc < math.Min(fr, simplex[dim].f) {
				simplex[dim] = vertex{x: append([]float64(nil), trial...), f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + delta*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return Result{X: simplex[0].x, F: simplex[0].f, Iterations: iter, Evaluations: evals, Converged: false}
}

// SPSAOptions tunes simultaneous-perturbation stochastic approximation.
type SPSAOptions struct {
	MaxIter int     // default 500
	A       float64 // step-size numerator, default 0.2
	C       float64 // perturbation size, default 0.1
	Alpha   float64 // step decay exponent, default 0.602
	Gamma   float64 // perturbation decay exponent, default 0.101
	Seed    uint64
}

// SPSA minimizes a (possibly noisy) objective with two evaluations per
// iteration — the optimizer of choice for sampled VQE energies.
func SPSA(f Objective, x0 []float64, o SPSAOptions) Result {
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.A == 0 {
		o.A = 0.2
	}
	if o.C == 0 {
		o.C = 0.1
	}
	if o.Alpha == 0 {
		o.Alpha = 0.602
	}
	if o.Gamma == 0 {
		o.Gamma = 0.101
	}
	seed := o.Seed
	if seed == 0 {
		seed = 77
	}
	rng := core.NewRNG(seed)
	x := append([]float64(nil), x0...)
	dim := len(x)
	plus := make([]float64, dim)
	minus := make([]float64, dim)
	deltas := make([]float64, dim)
	evals := 0
	bigA := float64(o.MaxIter) / 10
	bestX := append([]float64(nil), x...)
	bestF := f(x)
	evals++
	for k := 0; k < o.MaxIter; k++ {
		ak := o.A / math.Pow(float64(k)+1+bigA, o.Alpha)
		ck := o.C / math.Pow(float64(k)+1, o.Gamma)
		for i := range deltas {
			if rng.Float64() < 0.5 {
				deltas[i] = 1
			} else {
				deltas[i] = -1
			}
			plus[i] = x[i] + ck*deltas[i]
			minus[i] = x[i] - ck*deltas[i]
		}
		fp, fm := f(plus), f(minus)
		evals += 2
		for i := range x {
			g := (fp - fm) / (2 * ck * deltas[i])
			x[i] -= ak * g
		}
		if fx := math.Min(fp, fm); fx < bestF {
			bestF = fx
			if fp < fm {
				copy(bestX, plus)
			} else {
				copy(bestX, minus)
			}
		}
	}
	fx := f(x)
	evals++
	if fx < bestF {
		bestF = fx
		copy(bestX, x)
	}
	return Result{X: bestX, F: bestF, Iterations: o.MaxIter, Evaluations: evals, Converged: true}
}

// AdamOptions tunes the Adam optimizer.
type AdamOptions struct {
	MaxIter int     // default 500
	LR      float64 // default 0.05
	Beta1   float64 // default 0.9
	Beta2   float64 // default 0.999
	GradTol float64 // ∞-norm stop, default 1e-8
}

// Adam minimizes f using the provided gradient (FiniteDifference(f,0) if
// nil).
func Adam(f Objective, grad Gradient, x0 []float64, o AdamOptions) Result {
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.LR == 0 {
		o.LR = 0.05
	}
	if o.Beta1 == 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 == 0 {
		o.Beta2 = 0.999
	}
	if o.GradTol == 0 {
		o.GradTol = 1e-8
	}
	if grad == nil {
		grad = FiniteDifference(f, 0)
	}
	dim := len(x0)
	x := append([]float64(nil), x0...)
	m := make([]float64, dim)
	v := make([]float64, dim)
	g := make([]float64, dim)
	evals := 0
	iter := 0
	for ; iter < o.MaxIter; iter++ {
		grad(x, g)
		gInf := 0.0
		for _, gi := range g {
			gInf = math.Max(gInf, math.Abs(gi))
		}
		if gInf < o.GradTol {
			fx := f(x)
			evals++
			return Result{X: x, F: fx, Iterations: iter, Evaluations: evals, Converged: true}
		}
		b1t := 1 - math.Pow(o.Beta1, float64(iter+1))
		b2t := 1 - math.Pow(o.Beta2, float64(iter+1))
		for i := range x {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g[i]
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g[i]*g[i]
			x[i] -= o.LR * (m[i] / b1t) / (math.Sqrt(v[i]/b2t) + 1e-12)
		}
	}
	fx := f(x)
	evals++
	return Result{X: x, F: fx, Iterations: iter, Evaluations: evals, Converged: false}
}

// LBFGSOptions tunes the limited-memory BFGS optimizer.
type LBFGSOptions struct {
	MaxIter int     // default 200
	Memory  int     // history pairs, default 8
	GradTol float64 // ∞-norm stop, default 1e-8
	FTol    float64 // relative decrease stop, default 1e-12
	// Resume continues from a captured state: the initial objective and
	// gradient evaluations are skipped (the state carries them), and the
	// curvature-pair history is restored so the Hessian model — and
	// therefore the step sequence — matches the uninterrupted run
	// exactly. MaxIter bounds the total iteration count across resumes.
	Resume *LBFGSState
	// Observer is called at the top of every iteration with a deep copy
	// of the current state. A non-nil return halts the loop with the
	// best iterate so far and Interrupted set.
	Observer func(*LBFGSState) error
}

// LBFGS minimizes f with the two-loop-recursion L-BFGS method and a
// backtracking Armijo line search. It is the inner optimizer used by the
// Adapt-VQE experiment (paper Figure 5).
func LBFGS(f Objective, grad Gradient, x0 []float64, o LBFGSOptions) Result {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Memory <= 0 {
		o.Memory = 8
	}
	if o.GradTol == 0 {
		o.GradTol = 1e-8
	}
	if o.FTol == 0 {
		o.FTol = 1e-12
	}
	if grad == nil {
		grad = FiniteDifference(f, 0)
	}
	dim := len(x0)
	x := append([]float64(nil), x0...)
	g := make([]float64, dim)
	evals := 0
	var fx float64
	var sHist, yHist [][]float64
	var rhoHist []float64
	iter := 0
	if o.Resume != nil {
		if len(o.Resume.X) != dim || len(o.Resume.G) != dim {
			panic(fmt.Errorf("%w: resume state dimension %d, want %d",
				core.ErrInvalidArgument, len(o.Resume.X), dim))
		}
		copy(x, o.Resume.X)
		copy(g, o.Resume.G)
		fx = o.Resume.F
		sHist = copyMat(o.Resume.SHist)
		yHist = copyMat(o.Resume.YHist)
		rhoHist = copyVec(o.Resume.RhoHist)
		iter = o.Resume.Iter
		evals = o.Resume.Evals
	} else {
		fx = f(x)
		evals++
		grad(x, g)
	}

	dir := make([]float64, dim)
	xNew := make([]float64, dim)
	gNew := make([]float64, dim)

	for ; iter < o.MaxIter; iter++ {
		if o.Observer != nil {
			st := &LBFGSState{X: x, G: g, F: fx, SHist: sHist, YHist: yHist, RhoHist: rhoHist, Iter: iter, Evals: evals}
			if err := o.Observer(st.clone()); err != nil {
				return Result{X: x, F: fx, Iterations: iter, Evaluations: evals, Interrupted: true}
			}
		}
		gInf := 0.0
		for _, gi := range g {
			gInf = math.Max(gInf, math.Abs(gi))
		}
		if gInf < o.GradTol {
			return Result{X: x, F: fx, Iterations: iter, Evaluations: evals, Converged: true}
		}
		// Two-loop recursion: dir = −H·g.
		copy(dir, g)
		alphas := make([]float64, len(sHist))
		for i := len(sHist) - 1; i >= 0; i-- {
			a := rhoHist[i] * dot(sHist[i], dir)
			alphas[i] = a
			axpy(-a, yHist[i], dir)
		}
		if len(sHist) > 0 {
			last := len(sHist) - 1
			scale := dot(sHist[last], yHist[last]) / dot(yHist[last], yHist[last])
			for i := range dir {
				dir[i] *= scale
			}
		}
		for i := 0; i < len(sHist); i++ {
			b := rhoHist[i] * dot(yHist[i], dir)
			axpy(alphas[i]-b, sHist[i], dir)
		}
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Strong-Wolfe line search (Nocedal & Wright): guarantees positive
		// curvature pairs and real progress per iteration.
		slope := dot(g, dir)
		if slope >= 0 {
			// Not a descent direction (numerical breakdown): steepest descent.
			sHist, yHist, rhoHist = nil, nil, nil
			for i := range dir {
				dir[i] = -g[i]
			}
			slope = dot(g, dir)
			if slope >= 0 {
				return Result{X: x, F: fx, Iterations: iter, Evaluations: evals, Converged: true}
			}
		}
		fNew, accepted := wolfeSearch(f, grad, x, dir, fx, slope, xNew, gNew, &evals)
		if !accepted {
			// Retry once from steepest descent with fresh history.
			sHist, yHist, rhoHist = nil, nil, nil
			for i := range dir {
				dir[i] = -g[i]
			}
			slope = dot(g, dir)
			fNew, accepted = wolfeSearch(f, grad, x, dir, fx, slope, xNew, gNew, &evals)
			if !accepted {
				return Result{X: x, F: fx, Iterations: iter, Evaluations: evals, Converged: true}
			}
		}
		// Update history.
		s := make([]float64, dim)
		y := make([]float64, dim)
		for i := range s {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		// Relative curvature condition: an absolute threshold would stop
		// accepting pairs once steps become small, freezing the Hessian
		// model and stalling progress.
		if sy := dot(s, y); sy > 1e-10*math.Sqrt(dot(s, s))*math.Sqrt(dot(y, y)) {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > o.Memory {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
		}
		relDrop := math.Abs(fx-fNew) / (1 + math.Abs(fx))
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
		if relDrop < o.FTol {
			return Result{X: x, F: fx, Iterations: iter + 1, Evaluations: evals, Converged: true}
		}
	}
	return Result{X: x, F: fx, Iterations: iter, Evaluations: evals, Converged: false}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// wolfeSearch finds a step along dir satisfying the strong Wolfe
// conditions, writing the accepted point/gradient into xNew/gNew. Returns
// the objective value there and whether a step was accepted.
func wolfeSearch(f Objective, grad Gradient, x, dir []float64, fx, slope float64, xNew, gNew []float64, evals *int) (float64, bool) {
	const (
		c1      = 1e-4
		c2      = 0.9
		maxIter = 25
	)
	phi := func(a float64) (float64, float64) {
		for i := range xNew {
			xNew[i] = x[i] + a*dir[i]
		}
		fn := f(xNew)
		*evals++
		grad(xNew, gNew)
		return fn, dot(gNew, dir)
	}
	zoom := func(lo, hi, fLo float64) (float64, bool) {
		for z := 0; z < 30; z++ {
			a := 0.5 * (lo + hi)
			fa, da := phi(a)
			switch {
			case fa > fx+c1*a*slope || fa >= fLo:
				hi = a
			case math.Abs(da) <= -c2*slope:
				return fa, true
			case da*(hi-lo) >= 0:
				hi = lo
				lo = a
				fLo = fa
			default:
				lo = a
				fLo = fa
			}
			if math.Abs(hi-lo) < 1e-16*(1+math.Abs(lo)) {
				// Interval collapsed; accept if we made any progress.
				fa, _ := phi(lo)
				return fa, fa < fx
			}
		}
		fa, _ := phi(lo)
		return fa, fa < fx
	}

	aPrev, fPrev := 0.0, fx
	a := 1.0
	for i := 0; i < maxIter; i++ {
		fa, da := phi(a)
		if fa > fx+c1*a*slope || (i > 0 && fa >= fPrev) {
			return zoom(aPrev, a, fPrev)
		}
		if math.Abs(da) <= -c2*slope {
			return fa, true
		}
		if da >= 0 {
			return zoom(a, aPrev, fa)
		}
		aPrev, fPrev = a, fa
		a *= 2
		if a > 1e6 {
			return fa, true
		}
	}
	return 0, false
}
