package opt

import (
	"math"
	"testing"

	"repro/internal/core"
)

// Test objectives.

func quadratic(x []float64) float64 {
	// Minimum 1.5 at (1, -2, 3).
	c := []float64{1, -2, 3}
	s := 1.5
	for i := range x {
		s += (x[i] - c[i]) * (x[i] - c[i]) * float64(i+1)
	}
	return s
}

func rosenbrock(x []float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(x); i++ {
		s += 100*math.Pow(x[i+1]-x[i]*x[i], 2) + math.Pow(1-x[i], 2)
	}
	return s
}

func assertNear(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	res := NelderMead(quadratic, []float64{0, 0, 0}, NelderMeadOptions{})
	if !res.Converged {
		t.Error("did not converge")
	}
	assertNear(t, res.F, 1.5, 1e-6, "NM quadratic minimum")
	assertNear(t, res.X[0], 1, 1e-3, "x0")
	assertNear(t, res.X[1], -2, 1e-3, "x1")
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	res := NelderMead(rosenbrock, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000})
	assertNear(t, res.F, 0, 1e-6, "NM rosenbrock")
}

func TestNelderMeadZeroDim(t *testing.T) {
	res := NelderMead(func(x []float64) float64 { return 7 }, nil, NelderMeadOptions{})
	if res.F != 7 || !res.Converged {
		t.Error("zero-dim case")
	}
}

func TestNelderMeadEvaluationsCounted(t *testing.T) {
	res := NelderMead(quadratic, []float64{5, 5, 5}, NelderMeadOptions{})
	if res.Evaluations < 4 {
		t.Error("evaluation count implausible")
	}
}

func TestSPSAQuadratic(t *testing.T) {
	res := SPSA(quadratic, []float64{0, 0, 0}, SPSAOptions{MaxIter: 3000, A: 0.1})
	assertNear(t, res.F, 1.5, 0.05, "SPSA quadratic")
}

func TestSPSANoisyObjective(t *testing.T) {
	rng := core.NewRNG(5)
	noisy := func(x []float64) float64 {
		return quadratic(x) + 0.01*rng.NormFloat64()
	}
	res := SPSA(noisy, []float64{0, 0, 0}, SPSAOptions{MaxIter: 4000, A: 0.1, Seed: 3})
	// SPSA should get close despite noise.
	if quadratic(res.X) > 1.8 {
		t.Errorf("noisy SPSA landed at %v (true f %v)", res.F, quadratic(res.X))
	}
}

func TestAdamQuadraticWithAnalyticGradient(t *testing.T) {
	grad := func(x, g []float64) {
		c := []float64{1, -2, 3}
		for i := range x {
			g[i] = 2 * float64(i+1) * (x[i] - c[i])
		}
	}
	res := Adam(quadratic, grad, []float64{0, 0, 0}, AdamOptions{MaxIter: 3000, LR: 0.05})
	assertNear(t, res.F, 1.5, 1e-4, "Adam quadratic")
}

func TestAdamFiniteDifferenceFallback(t *testing.T) {
	res := Adam(quadratic, nil, []float64{0, 0, 0}, AdamOptions{MaxIter: 3000, LR: 0.05})
	assertNear(t, res.F, 1.5, 1e-4, "Adam FD quadratic")
}

func TestLBFGSQuadratic(t *testing.T) {
	res := LBFGS(quadratic, nil, []float64{10, -10, 10}, LBFGSOptions{})
	if !res.Converged {
		t.Error("did not converge")
	}
	assertNear(t, res.F, 1.5, 1e-8, "LBFGS quadratic")
}

func TestLBFGSRosenbrock(t *testing.T) {
	res := LBFGS(rosenbrock, nil, []float64{-1.2, 1}, LBFGSOptions{MaxIter: 500})
	assertNear(t, res.F, 0, 1e-8, "LBFGS rosenbrock")
	assertNear(t, res.X[0], 1, 1e-4, "LBFGS rosenbrock x0")
}

func TestLBFGSHighDimensional(t *testing.T) {
	x0 := make([]float64, 20)
	res := LBFGS(rosenbrock, nil, x0, LBFGSOptions{MaxIter: 2000})
	assertNear(t, res.F, 0, 1e-6, "LBFGS 20-dim rosenbrock")
}

func TestLBFGSWithAnalyticGradient(t *testing.T) {
	grad := func(x, g []float64) {
		c := []float64{1, -2, 3}
		for i := range x {
			g[i] = 2 * float64(i+1) * (x[i] - c[i])
		}
	}
	res := LBFGS(quadratic, grad, []float64{0, 0, 0}, LBFGSOptions{})
	assertNear(t, res.F, 1.5, 1e-10, "LBFGS analytic")
	if res.Iterations > 30 {
		t.Errorf("too many iterations for a quadratic: %d", res.Iterations)
	}
}

func TestFiniteDifferenceAccuracy(t *testing.T) {
	g := make([]float64, 2)
	FiniteDifference(rosenbrock, 0)([]float64{0.5, 0.5}, g)
	// Analytic: df/dx0 = -400·x0·(x1−x0²) − 2(1−x0); df/dx1 = 200(x1−x0²).
	want0 := -400*0.5*(0.5-0.25) - 2*(1-0.5)
	want1 := 200 * (0.5 - 0.25)
	assertNear(t, g[0], want0, 1e-4, "fd g0")
	assertNear(t, g[1], want1, 1e-4, "fd g1")
}

func TestOptimizersOnPeriodicLandscape(t *testing.T) {
	// VQE-like objective: sum of cosines with a unique minimum in the
	// basin of 0. f = -cos(x0)·cos(x1/2), minimum -1 at (0,0).
	f := func(x []float64) float64 {
		return -math.Cos(x[0]) * math.Cos(x[1]/2)
	}
	for name, run := range map[string]func() Result{
		"nm":    func() Result { return NelderMead(f, []float64{0.4, -0.6}, NelderMeadOptions{}) },
		"lbfgs": func() Result { return LBFGS(f, nil, []float64{0.4, -0.6}, LBFGSOptions{}) },
		"adam":  func() Result { return Adam(f, nil, []float64{0.4, -0.6}, AdamOptions{MaxIter: 2000}) },
	} {
		res := run()
		if math.Abs(res.F-(-1)) > 1e-4 {
			t.Errorf("%s: f=%v, want -1", name, res.F)
		}
	}
}
