package ansatz

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/pauli"
	"repro/internal/state"
)

func TestAppendPauliExpMatchesMatrixExponential(t *testing.T) {
	for _, lbl := range []string{"Z", "X", "Y", "ZZ", "XY", "YXZ", "XIY"} {
		p := pauli.MustParse(lbl)
		n := len(lbl)
		theta := 0.731
		c := circuit.New(n)
		AppendPauliExp(c, theta, p)
		got := c.Unitary()
		// exp(−iθ/2·P) via dense exponential.
		pm := pauli.NewOp().Add(p, 1).ToDense(n)
		want := linalg.Expm(pm.Scale(complex(0, -theta/2)))
		if !got.EqualUpToPhase(want, 1e-9) {
			t.Errorf("%s: exp circuit wrong", lbl)
		}
	}
}

func TestAppendPauliExpIdentityIsEmpty(t *testing.T) {
	c := circuit.New(2)
	AppendPauliExp(c, 1.0, pauli.Identity)
	if c.GateCount() != 0 {
		t.Error("identity exponential appended gates")
	}
}

func TestExcitationExpIsUnitaryAndMatchesExpm(t *testing.T) {
	exs := Singles(4, 2)
	if len(exs) == 0 {
		t.Fatal("no singles")
	}
	ex := exs[0]
	theta := 0.42
	c := circuit.New(4)
	ex.AppendExp(c, theta)
	got := c.Unitary()
	gen := ex.Generator().ToDense(4)
	want := linalg.Expm(gen.Scale(complex(theta, 0)))
	if !got.EqualUpToPhase(want, 1e-9) {
		t.Error("single-excitation exponential wrong")
	}
}

func TestDoubleExcitationExpMatchesExpm(t *testing.T) {
	exs := Doubles(4, 2)
	if len(exs) == 0 {
		t.Fatal("no doubles")
	}
	for _, ex := range exs {
		theta := -0.63
		c := circuit.New(4)
		ex.AppendExp(c, theta)
		got := c.Unitary()
		want := linalg.Expm(ex.Generator().ToDense(4).Scale(complex(theta, 0)))
		if !got.EqualUpToPhase(want, 1e-9) {
			t.Errorf("%s: double exponential wrong", ex.Label)
		}
	}
}

func TestGeneratorsAntiHermitian(t *testing.T) {
	for _, ex := range append(Singles(6, 2), Doubles(6, 2)...) {
		d := ex.Generator().ToDense(6)
		if !d.Add(d.Adjoint()).Equal(linalg.NewMatrix(64, 64), 1e-10) {
			t.Errorf("%s: generator not anti-Hermitian", ex.Label)
		}
	}
}

func TestExcitationTermsCommute(t *testing.T) {
	// All Pauli terms of one excitation must mutually commute (this is
	// what makes the product of exponentials exact).
	for _, ex := range Doubles(6, 2)[:3] {
		for i := range ex.Paulis {
			for j := i + 1; j < len(ex.Paulis); j++ {
				if !ex.Paulis[i].P.Commutes(ex.Paulis[j].P) {
					t.Fatalf("%s: terms %d,%d do not commute", ex.Label, i, j)
				}
			}
		}
	}
}

func TestSinglesCount(t *testing.T) {
	// 2 electrons in 4 spin orbitals: i∈{0,1}, a∈{2,3}, same spin →
	// (0→2) and (1→3).
	if got := len(Singles(4, 2)); got != 2 {
		t.Errorf("singles = %d, want 2", got)
	}
}

func TestDoublesCount(t *testing.T) {
	// 2 electrons in 4 spin orbitals: only (0,1)→(2,3).
	if got := len(Doubles(4, 2)); got != 1 {
		t.Errorf("doubles = %d, want 1", got)
	}
}

func TestUCCSDParameterCount(t *testing.T) {
	u, err := NewUCCSD(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumParameters() != 3 || u.NumQubits() != 4 {
		t.Errorf("params %d qubits %d", u.NumParameters(), u.NumQubits())
	}
}

func TestUCCSDZeroParamsIsHartreeFock(t *testing.T) {
	u, _ := NewUCCSD(6, 2)
	c := u.Circuit(make([]float64, u.NumParameters()))
	s := state.New(6, state.Options{})
	s.Run(c)
	// Zero-angle exponentials are identity (the RZ(0) remain but are
	// no-ops), so the state is the HF determinant |000011⟩ = index 3.
	probs := s.Probabilities()
	if math.Abs(probs[3]-1) > 1e-9 {
		t.Errorf("P(HF det) = %v", probs[3])
	}
}

func TestUCCSDPreservesParticleNumber(t *testing.T) {
	u, _ := NewUCCSD(4, 2)
	params := []float64{0.3, -0.2, 0.5}
	s := state.New(4, state.Options{})
	s.Run(u.Circuit(params))
	// Total number operator expectation must equal 2.
	num := pauli.NewOp()
	for q := 0; q < 4; q++ {
		num.Add(pauli.Identity, 0.5)
		z, _ := pauli.Single('Z', q)
		num.Add(z, -0.5)
	}
	if n := pauli.Expectation(s, num, pauli.ExpectationOptions{}); math.Abs(n-2) > 1e-9 {
		t.Errorf("⟨N⟩ = %v, want 2", n)
	}
	// And every nonzero amplitude lies in the 2-electron sector.
	for i, a := range s.Amplitudes() {
		if real(a)*real(a)+imag(a)*imag(a) > 1e-18 && core.PopCount(uint64(i)) != 2 {
			t.Errorf("amplitude outside sector at %b", i)
		}
	}
}

func TestUCCSDGateCountGrowth(t *testing.T) {
	// Fig 1a mechanism: gate count grows steeply with qubit count.
	count := func(n, ne int) int {
		u, err := NewUCCSD(n, ne)
		if err != nil {
			t.Fatal(err)
		}
		return u.Circuit(make([]float64, u.NumParameters())).GateCount()
	}
	c4, c8, c12 := count(4, 2), count(8, 4), count(12, 6)
	if !(c4 < c8 && c8 < c12) {
		t.Fatalf("no growth: %d %d %d", c4, c8, c12)
	}
	if float64(c12)/float64(c8) < 2 {
		t.Errorf("growth too slow for UCCSD scaling: %d → %d", c8, c12)
	}
}

func TestUCCSDRejectsBadShapes(t *testing.T) {
	if _, err := NewUCCSD(4, 5); err == nil {
		t.Error("ne > n accepted")
	}
	u, _ := NewUCCSD(4, 2)
	defer func() {
		if recover() == nil {
			t.Error("wrong param length accepted")
		}
	}()
	u.Circuit([]float64{1})
}

func TestHardwareEfficientShape(t *testing.T) {
	h, err := NewHardwareEfficient(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumParameters() != 2*4*3 {
		t.Errorf("params %d", h.NumParameters())
	}
	c := h.Circuit(make([]float64, h.NumParameters()))
	st := c.Stats()
	if st.ByKind[gate.CX] != 2*3 {
		t.Errorf("CX count %d, want 6", st.ByKind[gate.CX])
	}
	s := state.New(4, state.Options{})
	s.Run(c)
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Error("HEA broke normalization")
	}
}

func TestHardwareEfficientReference(t *testing.T) {
	h, _ := NewHardwareEfficient(4, 1, 2)
	c := h.Circuit(make([]float64, h.NumParameters()))
	s := state.New(4, state.Options{})
	s.Run(c)
	// With zero parameters the rotations are identity but the CX ladder
	// still acts: |0011⟩ → CX(0,1) clears qubit 1 → basis index 1.
	if p := s.Probabilities()[1]; math.Abs(p-1) > 1e-9 {
		t.Errorf("reference prep wrong: %v", p)
	}
}

func TestPoolAndAdaptAnsatz(t *testing.T) {
	p, err := NewPool(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Errorf("pool size %d", p.Size())
	}
	a := NewAdaptAnsatz(4, 2)
	if a.NumParameters() != 0 {
		t.Error("fresh adapt ansatz has params")
	}
	a.Grow(p.Ops[0])
	a.Grow(p.Ops[2])
	c := a.Circuit([]float64{0.1, 0.2})
	s := state.New(4, state.Options{})
	s.Run(c)
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Error("adapt circuit broke norm")
	}
}

func TestQubitPoolShape(t *testing.T) {
	p, err := NewQubitPool(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() == 0 {
		t.Fatal("empty qubit pool")
	}
	seen := map[string]bool{}
	for _, ex := range p.Ops {
		if len(ex.Paulis) != 1 {
			t.Fatalf("%s: qubit pool op must be a single Pauli", ex.Label)
		}
		lbl := ex.Paulis[0].P.Label(4)
		if seen[lbl] {
			t.Fatalf("duplicate pool string %s", lbl)
		}
		seen[lbl] = true
		// Anti-Hermitian generator: purely imaginary coefficient.
		if real(ex.Paulis[0].Coeff) != 0 {
			t.Fatalf("%s: generator not anti-Hermitian", ex.Label)
		}
	}
	// Qubit pool is at least as large as the fermionic pool (strings fan
	// out of excitations).
	f, _ := NewPool(4, 2)
	if p.Size() < f.Size() {
		t.Errorf("qubit pool %d smaller than fermionic pool %d", p.Size(), f.Size())
	}
}

func TestQubitPoolExponentialsShallower(t *testing.T) {
	// One qubit-pool layer is a single Pauli exponential; one fermionic
	// double is eight of them.
	fp, _ := NewPool(6, 2)
	qp, _ := NewQubitPool(6, 2)
	deepest := func(p *Pool) int {
		mx := 0
		for _, ex := range p.Ops {
			c := circuit.New(6)
			ex.AppendExp(c, 0.3)
			if d := c.Stats().Depth; d > mx {
				mx = d
			}
		}
		return mx
	}
	if deepest(qp) >= deepest(fp) {
		t.Errorf("qubit layers (depth %d) not shallower than fermionic (depth %d)", deepest(qp), deepest(fp))
	}
}

func TestGeneralizedPoolLarger(t *testing.T) {
	n, ne := 6, 2
	plainS, plainD := len(Singles(n, ne)), len(Doubles(n, ne))
	genS, genD := len(GeneralizedSingles(n)), len(GeneralizedDoubles(n))
	if genS <= plainS {
		t.Errorf("generalized singles %d not larger than %d", genS, plainS)
	}
	if genD <= plainD {
		t.Errorf("generalized doubles %d not larger than %d", genD, plainD)
	}
}

func TestGeneralizedGeneratorsAntiHermitian(t *testing.T) {
	for _, ex := range GeneralizedSingles(4) {
		d := ex.Generator().ToDense(4)
		if !d.Add(d.Adjoint()).Equal(linalg.NewMatrix(16, 16), 1e-10) {
			t.Errorf("%s not anti-Hermitian", ex.Label)
		}
	}
	gd := GeneralizedDoubles(4)
	for _, ex := range gd {
		d := ex.Generator().ToDense(4)
		if !d.Add(d.Adjoint()).Equal(linalg.NewMatrix(16, 16), 1e-10) {
			t.Errorf("%s not anti-Hermitian", ex.Label)
		}
	}
}

func TestUCCGSDPreservesParticleNumber(t *testing.T) {
	u, err := NewUCCGSD(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, u.NumParameters())
	for i := range params {
		params[i] = 0.07 * float64(i%5-2)
	}
	s := state.New(4, state.Options{})
	s.Run(u.Circuit(params))
	for i, a := range s.Amplitudes() {
		if real(a)*real(a)+imag(a)*imag(a) > 1e-16 && core.PopCount(uint64(i)) != 2 {
			t.Fatalf("amplitude outside the 2-electron sector at %04b", i)
		}
	}
}

func TestAnsatzInterfaceAccessors(t *testing.T) {
	u, _ := NewUCCSD(4, 2)
	if u.Reference().NumQubits != 4 || len(u.Operators()) != u.NumParameters() {
		t.Error("UCCSD accessors wrong")
	}
	a := NewAdaptAnsatz(4, 2)
	a.Grow(u.Operators()[0])
	if a.NumQubits() != 4 || len(a.Operators()) != 1 {
		t.Error("Adapt accessors wrong")
	}
	if a.Reference().GateCount() != 2 {
		t.Error("Adapt reference should prepare 2 electrons")
	}
	h, _ := NewHardwareEfficient(5, 1, 0)
	if h.NumQubits() != 5 {
		t.Error("HEA width")
	}
	p, _ := NewPool(4, 2)
	if p.Size() != len(p.Ops) {
		t.Error("pool size accessor")
	}
}
