// Package ansatz builds parameterized quantum circuits for VQE: the UCCSD
// ansatz whose gate count drives the paper's Figures 1a/3/4, a
// hardware-efficient ansatz, and the operator pools used by Adapt-VQE
// (Figure 5). Excitation operators are generated fermionically,
// Jordan–Wigner mapped, and compiled to basis-rotation + CNOT-staircase +
// RZ Pauli exponentials.
package ansatz

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/pauli"
)

// Ansatz is a parameterized circuit family U(θ).
type Ansatz interface {
	NumQubits() int
	NumParameters() int
	// Circuit materializes U(θ) for a parameter vector (len ==
	// NumParameters()).
	Circuit(params []float64) *circuit.Circuit
}

// AppendPauliExp appends gates implementing exp(−i·θ/2·P) to the circuit:
// basis rotation into Z, CNOT staircase onto the highest support qubit,
// RZ(θ), unwind. An identity string contributes only a global phase and
// appends nothing.
func AppendPauliExp(c *circuit.Circuit, theta float64, p pauli.String) {
	sup := p.Support()
	if len(sup) == 0 {
		return
	}
	// Enter the Z basis: X → H, Y → S†H  (so that P → Z…Z).
	for _, q := range sup {
		switch p.At(q) {
		case 'X':
			c.H(q)
		case 'Y':
			c.Sdg(q).H(q)
		}
	}
	last := sup[len(sup)-1]
	for i := 0; i+1 < len(sup); i++ {
		c.CX(sup[i], sup[i+1])
	}
	c.RZ(theta, last)
	for i := len(sup) - 2; i >= 0; i-- {
		c.CX(sup[i], sup[i+1])
	}
	for _, q := range sup {
		switch p.At(q) {
		case 'X':
			c.H(q)
		case 'Y':
			c.H(q).S(q)
		}
	}
}

// Excitation is one anti-Hermitian generator A = T − T† of the cluster
// expansion, carried in three synchronized forms.
type Excitation struct {
	Label string
	// Fermionic is T − T† in ladder form.
	Fermionic *fermion.Op
	// Paulis is the Jordan–Wigner image: Σ i·c_k·P_k with real c_k; the
	// imaginary coefficients make the operator anti-Hermitian.
	Paulis []pauli.Term
}

// AppendExp appends exp(θ·A) to the circuit. The Pauli terms arising from
// a single fermionic excitation mutually commute, so the product of
// exponentials is exact (no Trotter error).
func (e Excitation) AppendExp(c *circuit.Circuit, theta float64) {
	for _, t := range e.Paulis {
		// term = i·ck·P with ck = imag(coeff): exp(θ·i·ck·P) =
		// exp(−i·(−2θck)/2·P).
		ck := imag(t.Coeff)
		AppendPauliExp(c, -2*theta*ck, t.P)
	}
}

// Generator returns A as a Pauli operator (anti-Hermitian).
func (e Excitation) Generator() *pauli.Op {
	return pauli.FromTerms(e.Paulis)
}

// newExcitation finalizes T into A = T − T† with both representations,
// mapped through enc (nil = Jordan–Wigner).
func newExcitation(label string, t *fermion.Op, enc *fermion.Encoding) (Excitation, bool) {
	a := t.Clone()
	a.Add(t.Adjoint(), -1)
	var jw *pauli.Op
	if enc == nil {
		jw = a.JordanWigner()
	} else {
		var err error
		jw, err = enc.Transform(a)
		if err != nil {
			panic(fmt.Errorf("ansatz: fermionic encoding failed: %w", err))
		}
	}
	terms := jw.Terms()
	if len(terms) == 0 {
		return Excitation{}, false
	}
	for _, tt := range terms {
		if math.Abs(real(tt.Coeff)) > 1e-10 {
			panic(fmt.Errorf("%w: generator %s not anti-Hermitian under JW", core.ErrInvalidArgument, label))
		}
	}
	return Excitation{Label: label, Fermionic: a, Paulis: terms}, true
}

// Singles lists spin-preserving single excitations i→a (occupied →
// virtual spin orbitals of equal spin) for ne electrons in n spin
// orbitals.
func Singles(n, ne int) []Excitation { return SinglesWithEncoding(n, ne, nil) }

// SinglesWithEncoding is Singles under an arbitrary fermion-to-qubit
// encoding (nil = Jordan–Wigner).
func SinglesWithEncoding(n, ne int, enc *fermion.Encoding) []Excitation {
	var out []Excitation
	for i := 0; i < ne; i++ {
		for a := ne; a < n; a++ {
			if i%2 != a%2 {
				continue
			}
			t := fermion.OneBody(a, i)
			if ex, ok := newExcitation(fmt.Sprintf("s(%d->%d)", i, a), t, enc); ok {
				out = append(out, ex)
			}
		}
	}
	return out
}

// Doubles lists spin-preserving double excitations ij→ab (i<j occupied,
// a<b virtual, conserving total Sz with matching spin multisets).
func Doubles(n, ne int) []Excitation { return DoublesWithEncoding(n, ne, nil) }

// DoublesWithEncoding is Doubles under an arbitrary encoding (nil = JW).
func DoublesWithEncoding(n, ne int, enc *fermion.Encoding) []Excitation {
	var out []Excitation
	for i := 0; i < ne; i++ {
		for j := i + 1; j < ne; j++ {
			for a := ne; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if !spinMatch(i, j, a, b) {
						continue
					}
					t := fermion.NewOp()
					t.AddTerm(fermion.Term{Coeff: 1, Ops: []fermion.Ladder{
						{Mode: a, Dagger: true}, {Mode: b, Dagger: true},
						{Mode: j, Dagger: false}, {Mode: i, Dagger: false},
					}})
					if ex, ok := newExcitation(fmt.Sprintf("d(%d,%d->%d,%d)", i, j, a, b), t, enc); ok {
						out = append(out, ex)
					}
				}
			}
		}
	}
	return out
}

// spinMatch reports whether the spin multiset {i,j} equals {a,b}.
func spinMatch(i, j, a, b int) bool {
	si, sj, sa, sb := i%2, j%2, a%2, b%2
	return si+sj == sa+sb
}

// UCCSD is the unitary coupled-cluster singles-and-doubles ansatz: the
// Hartree–Fock reference determinant followed by one parameterized
// exponential per excitation.
type UCCSD struct {
	n           int
	ne          int
	refMask     uint64 // qubits flipped to prepare the encoded reference
	Excitations []Excitation
}

// NewUCCSD builds the ansatz for ne electrons in n spin orbitals (= n
// qubits under JW).
func NewUCCSD(n, ne int) (*UCCSD, error) { return NewUCCSDWithEncoding(n, ne, nil) }

// NewUCCSDWithEncoding builds UCCSD with generators and reference state
// mapped through an arbitrary fermion-to-qubit encoding (nil = JW). The
// reference circuit prepares the encoded image of the Hartree–Fock
// occupation, so the ansatz is consistent with observables produced by
// the same encoding.
func NewUCCSDWithEncoding(n, ne int, enc *fermion.Encoding) (*UCCSD, error) {
	if ne < 0 || ne > n {
		return nil, fmt.Errorf("%w: %d electrons in %d spin orbitals", core.ErrInvalidArgument, ne, n)
	}
	if enc != nil && enc.NumModes() != n {
		return nil, core.ErrDimensionMismatch
	}
	refOcc := uint64(1)<<uint(ne) - 1
	refMask := refOcc
	if enc != nil {
		refMask = enc.EncodeOccupation(refOcc)
	}
	ex := append(SinglesWithEncoding(n, ne, enc), DoublesWithEncoding(n, ne, enc)...)
	return &UCCSD{n: n, ne: ne, refMask: refMask, Excitations: ex}, nil
}

// NumQubits implements Ansatz.
func (u *UCCSD) NumQubits() int { return u.n }

// NumParameters implements Ansatz.
func (u *UCCSD) NumParameters() int { return len(u.Excitations) }

// ReferenceCircuit prepares the (encoded) Hartree–Fock determinant.
func (u *UCCSD) ReferenceCircuit() *circuit.Circuit {
	c := circuit.New(u.n)
	mask := u.refMask
	if mask == 0 && u.ne > 0 {
		mask = uint64(1)<<uint(u.ne) - 1
	}
	for q := 0; q < u.n; q++ {
		if mask>>uint(q)&1 == 1 {
			c.X(q)
		}
	}
	return c
}

// Circuit implements Ansatz.
func (u *UCCSD) Circuit(params []float64) *circuit.Circuit {
	if len(params) != u.NumParameters() {
		panic(core.ErrDimensionMismatch)
	}
	c := u.ReferenceCircuit()
	for k, ex := range u.Excitations {
		ex.AppendExp(c, params[k])
	}
	return c
}

// HardwareEfficient is the RY–RZ + CX-ladder ansatz of Kandala et al.
// (paper §6.1 related work), used as a shallow-circuit baseline.
type HardwareEfficient struct {
	n      int
	layers int
	// PrepareReference optionally prepends X gates on the first ne qubits.
	Reference int
}

// NewHardwareEfficient builds a HEA with the given entangling depth.
func NewHardwareEfficient(n, layers, reference int) (*HardwareEfficient, error) {
	if n < 1 || layers < 1 || reference < 0 || reference > n {
		return nil, core.ErrInvalidArgument
	}
	return &HardwareEfficient{n: n, layers: layers, Reference: reference}, nil
}

// NumQubits implements Ansatz.
func (h *HardwareEfficient) NumQubits() int { return h.n }

// NumParameters implements Ansatz: 2 rotations per qubit per layer plus a
// final rotation layer.
func (h *HardwareEfficient) NumParameters() int { return 2 * h.n * (h.layers + 1) }

// Circuit implements Ansatz.
func (h *HardwareEfficient) Circuit(params []float64) *circuit.Circuit {
	if len(params) != h.NumParameters() {
		panic(core.ErrDimensionMismatch)
	}
	c := circuit.New(h.n)
	for q := 0; q < h.Reference; q++ {
		c.X(q)
	}
	k := 0
	rot := func() {
		for q := 0; q < h.n; q++ {
			c.RY(params[k], q)
			k++
			c.RZ(params[k], q)
			k++
		}
	}
	for l := 0; l < h.layers; l++ {
		rot()
		for q := 0; q+1 < h.n; q++ {
			c.CX(q, q+1)
		}
	}
	rot()
	return c
}

// Pool is an Adapt-VQE operator pool.
type Pool struct {
	n, ne int
	Ops   []Excitation
}

// NewPool returns the singles+doubles pool for Adapt-VQE (Grimsley et al.,
// paper refs [4,16,17]).
func NewPool(n, ne int) (*Pool, error) {
	if ne < 0 || ne > n {
		return nil, core.ErrInvalidArgument
	}
	return &Pool{n: n, ne: ne, Ops: append(Singles(n, ne), Doubles(n, ne)...)}, nil
}

// Size returns the pool cardinality.
func (p *Pool) Size() int { return len(p.Ops) }

// AdaptAnsatz is the growing ansatz assembled by Adapt-VQE: a reference
// determinant plus an ordered list of selected pool operators.
type AdaptAnsatz struct {
	n        int
	ne       int
	Selected []Excitation
}

// NewAdaptAnsatz starts with an empty operator list.
func NewAdaptAnsatz(n, ne int) *AdaptAnsatz { return &AdaptAnsatz{n: n, ne: ne} }

// NumQubits implements Ansatz.
func (a *AdaptAnsatz) NumQubits() int { return a.n }

// NumParameters implements Ansatz.
func (a *AdaptAnsatz) NumParameters() int { return len(a.Selected) }

// Grow appends one operator layer.
func (a *AdaptAnsatz) Grow(ex Excitation) { a.Selected = append(a.Selected, ex) }

// Circuit implements Ansatz.
func (a *AdaptAnsatz) Circuit(params []float64) *circuit.Circuit {
	if len(params) != len(a.Selected) {
		panic(core.ErrDimensionMismatch)
	}
	c := circuit.New(a.n)
	for q := 0; q < a.ne; q++ {
		c.X(q)
	}
	for k, ex := range a.Selected {
		ex.AppendExp(c, params[k])
	}
	return c
}

// Reference returns the UCCSD reference-determinant circuit (alias of
// ReferenceCircuit, satisfying the exponential-ansatz interface used by
// adjoint differentiation).
func (u *UCCSD) Reference() *circuit.Circuit { return u.ReferenceCircuit() }

// Operators returns the ordered excitation generators.
func (u *UCCSD) Operators() []Excitation { return u.Excitations }

// Reference returns the Adapt reference-determinant circuit.
func (a *AdaptAnsatz) Reference() *circuit.Circuit {
	c := circuit.New(a.n)
	for q := 0; q < a.ne; q++ {
		c.X(q)
	}
	return c
}

// Operators returns the selected pool operators in application order.
func (a *AdaptAnsatz) Operators() []Excitation { return a.Selected }

// NewQubitPool returns the qubit-ADAPT-VQE pool (Tang et al., paper ref
// [16]): instead of fermionic excitations, each pool operator is a single
// anti-Hermitian Pauli generator i·P drawn from the strings appearing in
// the UCCSD generators, deduplicated. Individual Pauli exponentials give
// much shallower circuit layers at the cost of more Adapt iterations and
// lost particle-number guarantees.
func NewQubitPool(n, ne int) (*Pool, error) {
	if ne < 0 || ne > n {
		return nil, core.ErrInvalidArgument
	}
	seen := map[pauli.String]bool{}
	var ops []Excitation
	for _, ex := range append(Singles(n, ne), Doubles(n, ne)...) {
		for _, t := range ex.Paulis {
			if seen[t.P] {
				continue
			}
			seen[t.P] = true
			ops = append(ops, Excitation{
				Label:  "q[" + t.P.Compact() + "]",
				Paulis: []pauli.Term{{Coeff: 1i, P: t.P}},
			})
		}
	}
	return &Pool{n: n, ne: ne, Ops: ops}, nil
}

// GeneralizedSingles lists ALL spin-preserving single rotations p→q
// (p < q, equal spin), not just occupied→virtual — the "G" in UCCGSD.
func GeneralizedSingles(n int) []Excitation {
	var out []Excitation
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			if p%2 != q%2 {
				continue
			}
			t := fermion.OneBody(q, p)
			if ex, ok := newExcitation(fmt.Sprintf("gs(%d->%d)", p, q), t, nil); ok {
				out = append(out, ex)
			}
		}
	}
	return out
}

// GeneralizedDoubles lists all spin-preserving pair rotations
// (p<q) → (r<s) over arbitrary orbital pairs with (p,q) ≠ (r,s) and
// canonical ordering to avoid duplicating a rotation and its inverse.
func GeneralizedDoubles(n int) []Excitation {
	var out []Excitation
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			for r := 0; r < n; r++ {
				for s := r + 1; s < n; s++ {
					// Canonical: source pair strictly below target pair.
					if r*n+s <= p*n+q {
						continue
					}
					if !spinMatch(p, q, r, s) {
						continue
					}
					t := fermion.NewOp()
					t.AddTerm(fermion.Term{Coeff: 1, Ops: []fermion.Ladder{
						{Mode: r, Dagger: true}, {Mode: s, Dagger: true},
						{Mode: q, Dagger: false}, {Mode: p, Dagger: false},
					}})
					if ex, ok := newExcitation(fmt.Sprintf("gd(%d,%d->%d,%d)", p, q, r, s), t, nil); ok {
						out = append(out, ex)
					}
				}
			}
		}
	}
	return out
}

// NewUCCGSD builds the generalized UCC singles-doubles ansatz: the same
// reference determinant with every generalized rotation as a parameter.
// Strictly more expressive than UCCSD at a steep parameter-count cost.
func NewUCCGSD(n, ne int) (*UCCSD, error) {
	if ne < 0 || ne > n {
		return nil, fmt.Errorf("%w: %d electrons in %d spin orbitals", core.ErrInvalidArgument, ne, n)
	}
	ex := append(GeneralizedSingles(n), GeneralizedDoubles(n)...)
	refMask := uint64(1)<<uint(ne) - 1
	return &UCCSD{n: n, ne: ne, refMask: refMask, Excitations: ex}, nil
}
