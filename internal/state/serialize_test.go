package state

import (
	"bytes"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := New(4, Options{})
	s.Run(circuit.New(4).H(0).CX(0, 1).RY(0.7, 2).CX(2, 3).T(1))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumQubits() != 4 {
		t.Fatal("width wrong")
	}
	for i, a := range s.Amplitudes() {
		if loaded.Amplitudes()[i] != a {
			t.Fatalf("amplitude %d not bit-exact", i)
		}
	}
}

func TestSnapshotSize(t *testing.T) {
	s := New(3, Options{})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	want := 4 + 4 + 4 + 8*16 // magic + version + qubits + amplitudes
	if buf.Len() != want {
		t.Errorf("snapshot size %d, want %d", buf.Len(), want)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	s := New(2, Options{})
	var buf bytes.Buffer
	s.Save(&buf)
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"truncated":   good[:len(good)-8],
		"bad version": append(append([]byte("NWQS"), 9, 0, 0, 0), good[8:]...),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data), Options{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadRejectsUnnormalized(t *testing.T) {
	s := New(1, Options{})
	s.Amplitudes()[0] = 2 // break the norm behind the API's back
	var buf bytes.Buffer
	s.Save(&buf)
	if _, err := Load(&buf, Options{}); err == nil {
		t.Error("unnormalized snapshot accepted")
	}
}

func TestSnapshotAsCrossProcessCache(t *testing.T) {
	// The workflow the format exists for: save a post-ansatz state, load
	// it elsewhere, continue with measurement rotations.
	prep := circuit.New(3).H(0).CX(0, 1).CX(1, 2)
	s := New(3, Options{})
	s.Run(prep)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	restored.Run(circuit.New(3).H(0)) // basis rotation on the restored state
	s.Run(circuit.New(3).H(0))
	for i := range s.Amplitudes() {
		if !core.AlmostEqualC(restored.Amplitudes()[i], s.Amplitudes()[i], 1e-15) {
			t.Fatal("restored state diverged")
		}
	}
}
