package state

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
)

func preparedState(seed uint64) *State {
	s := New(4, Options{})
	s.Run(circuit.New(4).H(0).CX(0, 1).RY(float64(seed)*0.1, 2).CX(2, 3))
	return s
}

func TestCachePutRestore(t *testing.T) {
	c := NewCache(0)
	src := preparedState(3)
	c.Put("k", src)
	dst := New(4, Options{})
	tier, ok := c.Restore("k", dst)
	if !ok || tier != TierDevice {
		t.Fatalf("restore failed: %v %v", tier, ok)
	}
	for i := range src.amps {
		if !core.AlmostEqualC(dst.amps[i], src.amps[i], 1e-15) {
			t.Fatal("restored amplitudes differ")
		}
	}
}

func TestCacheMiss(t *testing.T) {
	c := NewCache(0)
	dst := New(4, Options{})
	if _, ok := c.Restore("absent", dst); ok {
		t.Error("hit on empty cache")
	}
	if c.Stats().Misses != 1 {
		t.Error("miss not counted")
	}
}

func TestCacheSnapshotIsolation(t *testing.T) {
	c := NewCache(0)
	src := preparedState(1)
	c.Put("k", src)
	src.ResetZero() // mutate after Put
	dst := New(4, Options{})
	c.Restore("k", dst)
	if core.AlmostEqualC(dst.amps[3], 0, 1e-18) && core.AlmostEqualC(dst.amps[0], 1, 1e-18) {
		t.Error("cache shares storage with source state")
	}
}

func TestCacheHostSpill(t *testing.T) {
	// Device capacity below one 4-qubit snapshot (16 amps × 16 B = 256 B).
	c := NewCache(128)
	c.Put("big", preparedState(2))
	dst := New(4, Options{})
	tier, ok := c.Restore("big", dst)
	if !ok {
		t.Fatal("restore failed")
	}
	if tier != TierHost {
		t.Errorf("tier %v, want host", tier)
	}
	st := c.Stats()
	if st.HostSpills != 1 || st.HostHits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	// Device fits exactly two snapshots; inserting a third displaces the
	// oldest to host.
	c := NewCache(512)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), preparedState(uint64(i)))
	}
	dst := New(4, Options{})
	tier0, _ := c.Restore("k0", dst)
	tier2, _ := c.Restore("k2", dst)
	if tier0 != TierHost {
		t.Errorf("oldest entry tier %v, want host", tier0)
	}
	if tier2 != TierDevice {
		t.Errorf("newest entry tier %v, want device", tier2)
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions %d", c.Stats().Evictions)
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := NewCache(0)
	c.Put("k", preparedState(1))
	newer := preparedState(9)
	c.Put("k", newer)
	if c.Len() != 1 {
		t.Error("overwrite duplicated entry")
	}
	dst := New(4, Options{})
	c.Restore("k", dst)
	for i := range newer.amps {
		if !core.AlmostEqualC(dst.amps[i], newer.amps[i], 1e-15) {
			t.Fatal("overwrite kept stale data")
		}
	}
}

func TestCacheWidthMismatchIsMiss(t *testing.T) {
	c := NewCache(0)
	c.Put("k", preparedState(1))
	dst := New(2, Options{})
	if _, ok := c.Restore("k", dst); ok {
		t.Error("restored into wrong-width state")
	}
}

func TestCacheClear(t *testing.T) {
	c := NewCache(0)
	c.Put("k", preparedState(1))
	c.Clear()
	if c.Len() != 0 || c.Stats().BytesStored != 0 {
		t.Error("clear incomplete")
	}
	if c.Contains("k") {
		t.Error("contains after clear")
	}
}
