package state

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
)

// Binary snapshot format for state vectors, so post-ansatz states can be
// cached across processes (the file-system analogue of the in-memory
// Cache):
//
//	magic "NWQS" | uint32 version | uint32 qubits | 2^n × (float64 re, im)
//
// all little-endian.

const (
	snapshotMagic   = "NWQS"
	snapshotVersion = 1
)

// Save writes the state snapshot.
func (s *State) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(snapshotVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(s.n)); err != nil {
		return err
	}
	buf := make([]byte, 16)
	for _, a := range s.amps {
		binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(real(a)))
		binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(imag(a)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save, returning a fresh state.
func Load(r io.Reader, opts Options) (*State, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("state: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("state: %w: bad magic %q", core.ErrInvalidArgument, magic)
	}
	var version, qubits uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("state: %w: unsupported snapshot version %d", core.ErrInvalidArgument, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &qubits); err != nil {
		return nil, err
	}
	if qubits > 30 {
		return nil, fmt.Errorf("state: %w: implausible qubit count %d", core.ErrInvalidArgument, qubits)
	}
	s := New(int(qubits), opts)
	buf := make([]byte, 16)
	for i := range s.amps {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("state: truncated snapshot at amplitude %d: %w", i, err)
		}
		re := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16]))
		s.amps[i] = complex(re, im)
	}
	if math.Abs(s.Norm()-1) > 1e-6 {
		return nil, fmt.Errorf("state: %w: snapshot norm %v", core.ErrInvalidArgument, s.Norm())
	}
	return s, nil
}
