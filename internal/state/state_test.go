package state

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/linalg"
)

func TestNewStartsInZero(t *testing.T) {
	s := New(3, Options{})
	if s.Dim() != 8 || s.NumQubits() != 3 {
		t.Fatal("dimensions wrong")
	}
	if s.amps[0] != 1 {
		t.Error("not |000⟩")
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Error("norm != 1")
	}
}

func TestMemoryBytes(t *testing.T) {
	if MemoryBytes(0) != 16 {
		t.Error("one amplitude = 16 bytes")
	}
	// Paper Fig 1c: 30 qubits ≈ 16 GiB.
	if MemoryBytes(30) != 16<<30 {
		t.Errorf("30 qubits = %d bytes", MemoryBytes(30))
	}
}

func TestApplyXFlipsQubit(t *testing.T) {
	s := New(2, Options{})
	s.ApplyGate(gate.New(gate.X, 1))
	if s.amps[2] != 1 || s.amps[0] != 0 {
		t.Errorf("X on qubit 1: %v", s.amps)
	}
}

func TestBellState(t *testing.T) {
	s := New(2, Options{})
	s.Run(circuit.New(2).H(0).CX(0, 1))
	r := 1 / math.Sqrt2
	if !core.AlmostEqualC(s.amps[0], complex(r, 0), 1e-12) ||
		!core.AlmostEqualC(s.amps[3], complex(r, 0), 1e-12) ||
		!core.AlmostEqualC(s.amps[1], 0, 1e-12) ||
		!core.AlmostEqualC(s.amps[2], 0, 1e-12) {
		t.Errorf("Bell amps: %v", s.amps)
	}
}

func TestGHZProbabilities(t *testing.T) {
	n := 5
	s := New(n, Options{})
	c := circuit.New(n).H(0)
	for q := 0; q < n-1; q++ {
		c.CX(q, q+1)
	}
	s.Run(c)
	probs := s.Probabilities()
	if math.Abs(probs[0]-0.5) > 1e-12 || math.Abs(probs[(1<<n)-1]-0.5) > 1e-12 {
		t.Errorf("GHZ endpoints: %v %v", probs[0], probs[(1<<n)-1])
	}
}

// runBothWays runs the same circuit through the state engine and through
// the dense reference unitary and compares amplitudes.
func runBothWays(t *testing.T, c *circuit.Circuit, workers int) {
	t.Helper()
	s := New(c.NumQubits, Options{Workers: workers, ParallelThreshold: 2})
	s.Run(c)
	u := c.Unitary()
	want := make([]complex128, s.Dim())
	want[0] = 1
	want = u.MulVec(want)
	for i := range want {
		if !core.AlmostEqualC(s.amps[i], want[i], 1e-9) {
			t.Fatalf("amp %d: engine %v vs dense %v", i, s.amps[i], want[i])
		}
	}
}

func TestEngineMatchesDenseRandomCircuits(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		c := randomTestCircuit(4, 25, seed)
		runBothWays(t, c, 1)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for seed := uint64(11); seed <= 16; seed++ {
		c := randomTestCircuit(5, 30, seed)
		runBothWays(t, c, 4)
	}
}

func randomTestCircuit(n, gates int, seed uint64) *circuit.Circuit {
	rng := core.NewRNG(seed)
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(10) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.Y(rng.Intn(n))
		case 3:
			c.S(rng.Intn(n))
		case 4:
			c.RX(rng.Float64()*4-2, rng.Intn(n))
		case 5:
			c.RY(rng.Float64()*4-2, rng.Intn(n))
		case 6:
			c.RZ(rng.Float64()*4-2, rng.Intn(n))
		case 7, 8:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.CX(a, b)
		case 9:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.CZ(a, b)
		}
	}
	return c
}

func TestNormPreservedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := randomTestCircuit(4, 20, seed%1000)
		s := New(4, Options{})
		s.Run(c)
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFastPathsMatchGeneric(t *testing.T) {
	// CX, CZ, RZ fast paths vs generic matrix application.
	for seed := uint64(30); seed <= 34; seed++ {
		prep := randomTestCircuit(4, 12, seed)
		s1 := New(4, Options{})
		s1.Run(prep)
		s2 := s1.Clone()

		s1.applyCX(2, 0)
		s2.Apply2Q(gate.New(gate.CX, 2, 0).Matrix4(), 2, 0)
		for i := range s1.amps {
			if !core.AlmostEqualC(s1.amps[i], s2.amps[i], 1e-12) {
				t.Fatal("CX fast path diverges")
			}
		}

		s1.applyCZ(1, 3)
		s2.Apply2Q(gate.New(gate.CZ, 1, 3).Matrix4(), 1, 3)
		s1.applyRZ(0.77, 2)
		s2.Apply1Q(gate.NewP(gate.RZ, []float64{0.77}, 2).Matrix2(), 2)
		for i := range s1.amps {
			if !core.AlmostEqualC(s1.amps[i], s2.amps[i], 1e-12) {
				t.Fatal("CZ/RZ fast path diverges")
			}
		}
	}
}

func TestGateCounter(t *testing.T) {
	s := New(2, Options{})
	s.Run(circuit.New(2).H(0).CX(0, 1).RZ(0.5, 1).Barrier().I(0))
	if s.GatesApplied() != 3 {
		t.Errorf("counter %d, want 3 (barrier and I free)", s.GatesApplied())
	}
	s.ResetCounters()
	if s.GatesApplied() != 0 {
		t.Error("reset failed")
	}
}

func TestProbability(t *testing.T) {
	s := New(1, Options{})
	s.Run(circuit.New(1).RY(math.Pi/3, 0))
	// P(1) = sin²(π/6) = 0.25.
	if math.Abs(s.Probability(0)-0.25) > 1e-12 {
		t.Errorf("P(1) = %v", s.Probability(0))
	}
}

func TestMeasureCollapses(t *testing.T) {
	s := New(2, Options{Seed: 9})
	s.Run(circuit.New(2).H(0).CX(0, 1))
	m0 := s.Measure(0)
	// After measuring qubit 0 of a Bell state, qubit 1 must agree.
	m1 := s.Measure(1)
	if m0 != m1 {
		t.Errorf("Bell correlation broken: %d vs %d", m0, m1)
	}
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Error("norm after collapse")
	}
}

func TestMeasureDeterministicState(t *testing.T) {
	s := New(1, Options{})
	s.ApplyGate(gate.New(gate.X, 0))
	for i := 0; i < 5; i++ {
		if s.Measure(0) != 1 {
			t.Fatal("|1⟩ must always measure 1")
		}
	}
}

func TestResetQubit(t *testing.T) {
	s := New(2, Options{Seed: 4})
	s.Run(circuit.New(2).X(0).H(1))
	s.ResetQubit(0)
	if s.Probability(0) > 1e-12 {
		t.Error("qubit 0 not reset")
	}
}

func TestSampleCountsMatchProbabilities(t *testing.T) {
	s := New(2, Options{Seed: 7})
	s.Run(circuit.New(2).H(0).CX(0, 1))
	counts := s.SampleCounts(20000)
	if counts[1] != 0 || counts[2] != 0 {
		t.Errorf("impossible outcomes sampled: %v", counts)
	}
	frac := float64(counts[0]) / 20000
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("P(00) sampled as %v", frac)
	}
	// Sampling must not collapse the state.
	if math.Abs(s.Probability(0)-0.5) > 1e-9 {
		t.Error("SampleCounts collapsed the state")
	}
}

func TestFromAmplitudes(t *testing.T) {
	r := complex(1/math.Sqrt2, 0)
	s, err := FromAmplitudes([]complex128{r, 0, 0, r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumQubits() != 2 {
		t.Error("width wrong")
	}
	if _, err := FromAmplitudes([]complex128{1, 0, 0}, Options{}); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := FromAmplitudes([]complex128{1, 1}, Options{}); err == nil {
		t.Error("unnormalized accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(2, Options{})
	s.Run(circuit.New(2).H(0))
	c := s.Clone()
	c.ApplyGate(gate.New(gate.X, 1))
	if !core.AlmostEqualC(s.amps[2], 0, 1e-12) {
		t.Error("clone shares amplitudes")
	}
}

func TestCopyFromAndResetZero(t *testing.T) {
	a := New(2, Options{})
	a.Run(circuit.New(2).H(0).CX(0, 1))
	b := New(2, Options{})
	b.CopyFrom(a)
	if !core.AlmostEqualC(b.amps[3], a.amps[3], 1e-12) {
		t.Error("CopyFrom failed")
	}
	b.ResetZero()
	if b.amps[0] != 1 || b.amps[3] != 0 {
		t.Error("ResetZero failed")
	}
}

func TestInnerProduct(t *testing.T) {
	a := New(1, Options{})
	b := New(1, Options{})
	b.ApplyGate(gate.New(gate.X, 0))
	if ip := a.InnerProduct(b); ip != 0 {
		t.Errorf("⟨0|1⟩ = %v", ip)
	}
	if ip := a.InnerProduct(a); !core.AlmostEqualC(ip, 1, 1e-12) {
		t.Errorf("⟨0|0⟩ = %v", ip)
	}
}

func TestApplyFusedGates(t *testing.T) {
	// A fused gate equal to H then T must act like the sequence.
	h := gate.New(gate.H).Matrix2()
	tm := gate.New(gate.T).Matrix2()
	fused := gate.Gate{Kind: gate.Fused1Q, Qubits: []int{0}, Matrix: tm.Mul(h)}
	s1 := New(1, Options{})
	s1.ApplyGate(fused)
	s2 := New(1, Options{})
	s2.Run(circuit.New(1).H(0).T(0))
	for i := range s1.amps {
		if !core.AlmostEqualC(s1.amps[i], s2.amps[i], 1e-12) {
			t.Fatal("fused gate application diverges")
		}
	}
}

// order2QConventionCases is the shared qubit-order convention table:
// every two-qubit execution path — Apply2Q and the fused program kernels
// (TestFusedOrderConvention) — must match the dense EmbedGate embedding
// on these ordered pairs and gate shapes, so the 4×4 matrix convention
// (first listed qubit = high local bit) cannot silently diverge between
// paths. The gate list covers each fused kernel class: diagonal (RZZ,
// CZ), sparse (CX, ISWAP, SWAP, RXX), and dense (CH and a fully dense
// fused product).
var order2QConventionCases = struct {
	pairs [][2]int
	gates func(a, b int) []gate.Gate
}{
	pairs: [][2]int{{0, 1}, {1, 0}, {2, 0}, {0, 2}, {1, 2}, {2, 1}},
	gates: func(a, b int) []gate.Gate {
		dense := gate.New(gate.CH, 0, 1).Matrix4().
			Mul(gate.NewP(gate.RXX, []float64{0.6}, 0, 1).Matrix4()).
			Mul(gate.New(gate.ISWAP, 0, 1).Matrix4())
		return []gate.Gate{
			gate.New(gate.CX, a, b),
			gate.New(gate.CZ, a, b),
			gate.New(gate.CH, a, b),
			gate.New(gate.SWAP, a, b),
			gate.New(gate.ISWAP, a, b),
			gate.NewP(gate.RXX, []float64{0.7}, a, b),
			gate.NewP(gate.RZZ, []float64{1.1}, a, b),
			{Kind: gate.Fused2Q, Qubits: []int{a, b}, Matrix: dense},
		}
	},
}

func TestApply2QOrderConvention(t *testing.T) {
	// Apply2Q with (a,b) where a is the high local bit must match the
	// dense embedding for both orders.
	for _, pair := range order2QConventionCases.pairs {
		for _, g := range order2QConventionCases.gates(pair[0], pair[1]) {
			s := New(3, Options{})
			s.Run(circuit.New(3).H(0).T(0).H(1).S(1).H(2))
			ref := s.AmplitudesCopy()
			s.Apply2Q(g.Matrix4(), pair[0], pair[1])
			u := circuit.EmbedGate(g, 3)
			want := u.MulVec(ref)
			for i := range want {
				if !core.AlmostEqualC(s.amps[i], want[i], 1e-10) {
					t.Fatalf("gate %v pair %v: index %d", g, pair, i)
				}
			}
		}
	}
}

func TestApplyGatePanicsOnBadQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(1, Options{}).Apply1Q(linalg.Identity(2), 5)
}
