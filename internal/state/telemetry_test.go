package state

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/telemetry"
)

// TestTelemetryGateAndPoolCounters runs a parallel circuit with telemetry
// enabled and checks the engine instruments advance. It doubles as the
// race-detector exercise for concurrent Scope use from pool workers
// (RACE_PKGS includes this package): every worker records busy time and
// chunk counts into the shared Default scope while the main goroutine
// snapshots it.
func TestTelemetryGateAndPoolCounters(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(func() {
		telemetry.Disable()
		telemetry.Reset()
	})
	telemetry.Reset()

	const n = 13 // above expectationParallelThreshold so the pool engages
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
		c.RZ(0.1, q)
	}
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	s := New(n, Options{Workers: 4, ParallelThreshold: 1 << 10})
	s.Run(c)
	_ = s.Probability(0) // pooled reduction
	snap := telemetry.Capture()

	if got := snap.Counters["state.gate.1q"]; got != int64(n) {
		t.Fatalf("state.gate.1q = %d, want %d", got, n)
	}
	if got := snap.Counters["state.gate.rz"]; got != int64(n) {
		t.Fatalf("state.gate.rz = %d, want %d", got, n)
	}
	if got := snap.Counters["state.gate.cx"]; got != int64(n-1) {
		t.Fatalf("state.gate.cx = %d, want %d", got, n-1)
	}
	if snap.Counters["state.pool.runs"] == 0 || snap.Counters["state.pool.chunks"] == 0 {
		t.Fatalf("pool counters did not advance: %+v", snap.Counters)
	}
	if snap.Gauges["state.pool.workers"] != 4 {
		t.Fatalf("state.pool.workers = %d, want 4", snap.Gauges["state.pool.workers"])
	}
	run, ok := snap.Timers["state.circuit.run"]
	if !ok || run.Count != 1 || run.TotalNs <= 0 {
		t.Fatalf("state.circuit.run timer = %+v", run)
	}
	if busy := snap.Timers["state.pool.busy"]; busy.Count != snap.Counters["state.pool.chunks"] {
		t.Fatalf("busy samples %d != chunks %d", busy.Count, snap.Counters["state.pool.chunks"])
	}
}

// TestTelemetryDisabledNoRecording confirms the engine records nothing on
// the disabled fast path.
func TestTelemetryDisabledNoRecording(t *testing.T) {
	telemetry.Reset() // defensive: earlier enabled tests leave residue only if Reset is broken
	s := New(4, Options{Workers: 1})
	c := circuit.New(4).H(0).CX(0, 1)
	s.Run(c)
	snap := telemetry.Capture()
	if len(snap.Counters) != 0 || len(snap.Timers) != 0 {
		t.Fatalf("disabled telemetry recorded: %+v", snap)
	}
}
