// Package state implements the state-vector simulation engine at the heart
// of the NWQ-Sim reproduction. It provides serial and parallel gate
// application over a 2ⁿ-amplitude complex vector, measurement and sampling,
// and the two-tier (device/host) memory model used by the post-ansatz state
// cache (paper §4.1.4).
//
// The paper's GPU kernels distribute amplitude updates over thousands of
// CUDA cores; here the same chunked update loops are distributed over a
// goroutine worker pool, which exercises identical index arithmetic and
// preserves the optimization trade-offs the paper evaluates (gate counts,
// fusion width, caching).
package state

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/kernel/tuning"
	"repro/internal/linalg"
	"repro/internal/telemetry"
)

// BytesPerAmp is the memory cost of one complex128 amplitude.
const BytesPerAmp = 16

// MemoryBytes returns the state-vector storage for n qubits — the quantity
// plotted in the paper's Figure 1c.
func MemoryBytes(n int) uint64 {
	if n < 0 || n > 62 {
		panic(core.ErrInvalidArgument)
	}
	return BytesPerAmp << uint(n)
}

// Options configures a simulator instance.
type Options struct {
	// Workers is the goroutine pool size for parallel gate application.
	// 0 means GOMAXPROCS. 1 forces serial execution.
	Workers int
	// ParallelThreshold is the minimum amplitude count before the worker
	// pool is engaged; below it serial loops win. 0 means a sane default.
	ParallelThreshold int
	// Seed for measurement sampling. 0 means a fixed default (runs are
	// deterministic by design; pass a seed to vary).
	Seed uint64
	// Pool injects an existing shared worker pool instead of letting the
	// state create its own: a job scheduler running many simulations
	// concurrently hands every State the same bounded pool so total
	// goroutine count stays fixed regardless of job fan-out. Workers is
	// overridden to the pool's width. The pool's lifetime belongs to the
	// injector; the State never closes it.
	Pool *Pool
}

// State is an n-qubit state vector.
type State struct {
	n      int
	amps   []complex128
	opts   Options
	rng    *core.RNG
	nGates uint64 // applied-gate counter (paper's evaluation currency)
	// pool is the persistent worker pool serving gate application,
	// probability reductions and (via WorkerPool/EnsurePool) the batched
	// expectation engine. Created once per State and shared with clones,
	// so one pool outlives every gate and Pauli term of an evaluation.
	pool *Pool
}

// ResolveWorkers normalizes a Workers option value to an actual worker
// count: 0 (or negative) means GOMAXPROCS, anything positive is returned
// unchanged. This is the single place the 0=GOMAXPROCS sentinel is
// resolved — other packages pass Workers through untouched or call this
// (enforced by the workerssemantics analyzer, cmd/vqelint).
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// New allocates the |0…0⟩ state on n qubits.
func New(n int, opts Options) *State {
	dim := core.Dim(n)
	opts.Workers = ResolveWorkers(opts.Workers)
	if opts.ParallelThreshold <= 0 {
		// Calibrated serial-vs-pool crossover (internal/kernel/tuning);
		// the compiled-in default matches the old hardcoded 1<<14.
		opts.ParallelThreshold = tuning.GateParallel()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x5eed
	}
	if opts.Pool != nil {
		// Shared-pool injection: adopt the pool's resolved width so the
		// chunking (and therefore the floating-point reduction order) is a
		// function of the pool, not of the caller's Workers guess.
		opts.Workers = opts.Pool.Workers()
		s := &State{n: n, amps: make([]complex128, dim), opts: opts, rng: core.NewRNG(seed), pool: opts.Pool}
		s.amps[0] = 1
		return s
	}
	s := &State{n: n, amps: make([]complex128, dim), opts: opts, rng: core.NewRNG(seed)}
	s.amps[0] = 1
	if opts.Workers > 1 && dim >= tuning.ReduceParallel() {
		// Large enough that some caller (gates at ParallelThreshold, the
		// expectation engine at its lower cutoff) will go parallel; start
		// the persistent pool now rather than per call.
		s.pool = NewPool(opts.Workers)
	}
	return s
}

// The expectation-reduction pool threshold lives in
// internal/kernel/tuning (ReduceParallel): lower than the gate
// threshold because a reduction touches every amplitude of every term
// group, amortizing the handoff better than one gate does, and
// replaceable by a measured crossover from the calibration subsystem.

// WorkerPool returns the state's persistent pool, or nil for states that
// run serial (Workers ≤ 1 or too small to ever parallelize).
func (s *State) WorkerPool() *Pool { return s.pool }

// EnsurePool returns the state's pool, creating one of the given width
// (0 = GOMAXPROCS) if the state does not have one yet — used by the
// expectation engine when a caller requests parallel reduction on a state
// whose own gate path is serial. An existing pool is returned unchanged
// regardless of the requested width.
func (s *State) EnsurePool(workers int) *Pool {
	if s.pool == nil {
		s.pool = NewPool(workers)
	}
	return s.pool
}

// Workers returns the resolved worker count (≥ 1).
func (s *State) Workers() int { return s.opts.Workers }

// ParallelThreshold returns the resolved minimum amplitude count for
// engaging the worker pool on gate application.
func (s *State) ParallelThreshold() int { return s.opts.ParallelThreshold }

// FromAmplitudes builds a state from an explicit amplitude vector (copied);
// the vector must have power-of-two length and unit norm.
func FromAmplitudes(amps []complex128, opts Options) (*State, error) {
	dim := len(amps)
	if dim == 0 || dim&(dim-1) != 0 {
		return nil, fmt.Errorf("%w: length %d not a power of two", core.ErrInvalidArgument, dim)
	}
	n := 0
	for 1<<uint(n) < dim {
		n++
	}
	norm := linalg.VecNorm(amps)
	if math.Abs(norm-1) > 1e-8 {
		return nil, fmt.Errorf("%w: norm %v != 1", core.ErrInvalidArgument, norm)
	}
	s := New(n, opts)
	copy(s.amps, amps)
	return s, nil
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Dim returns the amplitude count 2ⁿ.
func (s *State) Dim() int { return len(s.amps) }

// Amplitudes returns the live amplitude slice (not a copy). Callers must
// not resize it; mutating it directly bypasses the gate counter.
func (s *State) Amplitudes() []complex128 { return s.amps }

// AmplitudesCopy returns a defensive copy.
func (s *State) AmplitudesCopy() []complex128 {
	return append([]complex128(nil), s.amps...)
}

// GatesApplied reports how many unitary gates have been applied since
// creation (or the last ResetCounters).
func (s *State) GatesApplied() uint64 { return s.nGates }

// ResetCounters zeroes the applied-gate counter.
func (s *State) ResetCounters() { s.nGates = 0 }

// Clone duplicates the state, including RNG position and counters. The
// worker pool is shared, not duplicated: clones (scratch states, cache
// restores) reuse the parent's persistent goroutines.
func (s *State) Clone() *State {
	c := &State{n: s.n, amps: s.AmplitudesCopy(), opts: s.opts, rng: s.rng.Split(), nGates: s.nGates, pool: s.pool}
	return c
}

// CopyFrom overwrites s's amplitudes with those of src (same width). This
// is the cache-restore operation of the post-ansatz caching optimization.
func (s *State) CopyFrom(src *State) {
	if s.n != src.n {
		panic(core.ErrDimensionMismatch)
	}
	copy(s.amps, src.amps)
}

// ResetZero returns the state to |0…0⟩ without reallocating.
func (s *State) ResetZero() {
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[0] = 1
}

// Norm returns ‖ψ‖ (should be 1 up to rounding).
func (s *State) Norm() float64 { return linalg.VecNorm(s.amps) }

// InnerProduct returns ⟨s|o⟩.
func (s *State) InnerProduct(o *State) complex128 {
	if s.n != o.n {
		panic(core.ErrDimensionMismatch)
	}
	return linalg.VecDot(s.amps, o.amps)
}

// parallelFor splits [0,total) into contiguous chunks across the
// persistent worker pool. It falls back to inline execution below the
// parallel threshold or when the state runs serial.
func (s *State) parallelFor(total uint64, body func(lo, hi uint64)) {
	if int(total) < s.opts.ParallelThreshold || s.opts.Workers <= 1 || s.pool == nil {
		mPoolInline.Inc()
		body(0, total)
		return
	}
	s.pool.Run(total, s.opts.Workers, func(_ int, lo, hi uint64) { body(lo, hi) })
}

// parallelReduce sums body's per-chunk partials over [0,total), inline
// below the reduction threshold (which is lower than the gate threshold —
// see expectationParallelThreshold).
func (s *State) parallelReduce(total uint64, body func(lo, hi uint64) float64) float64 {
	if int(total) < tuning.ReduceParallel() || s.opts.Workers <= 1 || s.pool == nil {
		mPoolInline.Inc()
		return body(0, total)
	}
	return s.pool.ReduceFloat(total, s.opts.Workers, body)
}

// Apply1Q applies a 2×2 unitary to qubit q.
//
//vqesim:hotpath
func (s *State) Apply1Q(u *linalg.Matrix, q int) {
	if q < 0 || q >= s.n {
		panic(core.QubitError(q, s.n))
	}
	u00, u01 := u.At(0, 0), u.At(0, 1)
	u10, u11 := u.At(1, 0), u.At(1, 1)
	amps := s.amps
	half := uint64(len(amps) / 2)
	s.parallelFor(half, func(lo, hi uint64) {
		for rest := lo; rest < hi; rest++ {
			i0 := core.InsertZeroBit(rest, q)
			i1 := i0 | 1<<uint(q)
			a0, a1 := amps[i0], amps[i1]
			amps[i0] = u00*a0 + u01*a1
			amps[i1] = u10*a0 + u11*a1
		}
	})
	s.nGates++
	mGate1Q.Inc()
}

// Apply2Q applies a 4×4 unitary to the ordered qubit pair (a,b) where a is
// the high-order bit of the gate's local index.
//
//vqesim:hotpath
func (s *State) Apply2Q(u *linalg.Matrix, a, b int) {
	if a < 0 || a >= s.n {
		panic(core.QubitError(a, s.n))
	}
	if b < 0 || b >= s.n {
		panic(core.QubitError(b, s.n))
	}
	if a == b {
		panic(core.ErrInvalidArgument)
	}
	var m [4][4]complex128
	nnz := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := u.At(i, j)
			// Chop double-precision dust from fused matrix products so the
			// sparse kernel sees the true structure (entries of a unitary
			// are O(1), so 1e-14 is pure rounding noise).
			if math.Hypot(real(v), imag(v)) < 1e-14 {
				v = 0
			}
			m[i][j] = v
			if v != 0 {
				nnz++
			}
		}
	}
	amps := s.amps
	quarter := uint64(len(amps) / 4)
	if nnz <= 8 {
		// Sparse kernel: fused staircase blocks (CX·RZ·CX and friends)
		// have ≤ 2 nonzeros per row; exploiting that recovers the fusion
		// speedup the paper sees on bandwidth-bound GPU kernels.
		type nzEntry struct {
			r, c int
			v    complex128
		}
		// Fixed-size buffer: nnz ≤ 8 here, so the entry list never
		// allocates (the kernel below is //vqesim:hotpath-checked).
		var entries [8]nzEntry
		ne := 0
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if m[i][j] != 0 {
					entries[ne] = nzEntry{i, j, m[i][j]}
					ne++
				}
			}
		}
		s.parallelFor(quarter, func(lo, hi uint64) {
			var idx [4]uint64
			var in, out [4]complex128
			for rest := lo; rest < hi; rest++ {
				base := core.InsertTwoZeroBits(rest, a, b)
				idx[0] = base
				idx[1] = base | 1<<uint(b)
				idx[2] = base | 1<<uint(a)
				idx[3] = idx[1] | 1<<uint(a)
				in[0], in[1], in[2], in[3] = amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]
				out[0], out[1], out[2], out[3] = 0, 0, 0, 0
				for _, e := range entries[:ne] {
					out[e.r] += e.v * in[e.c]
				}
				amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]] = out[0], out[1], out[2], out[3]
			}
		})
		s.nGates++
		mGate2QSparse.Inc()
		return
	}
	s.parallelFor(quarter, func(lo, hi uint64) {
		var idx [4]uint64
		for rest := lo; rest < hi; rest++ {
			base := core.InsertTwoZeroBits(rest, a, b)
			idx[0] = base
			idx[1] = base | 1<<uint(b)
			idx[2] = base | 1<<uint(a)
			idx[3] = idx[1] | 1<<uint(a)
			v0, v1, v2, v3 := amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]
			amps[idx[0]] = m[0][0]*v0 + m[0][1]*v1 + m[0][2]*v2 + m[0][3]*v3
			amps[idx[1]] = m[1][0]*v0 + m[1][1]*v1 + m[1][2]*v2 + m[1][3]*v3
			amps[idx[2]] = m[2][0]*v0 + m[2][1]*v1 + m[2][2]*v2 + m[2][3]*v3
			amps[idx[3]] = m[3][0]*v0 + m[3][1]*v1 + m[3][2]*v2 + m[3][3]*v3
		}
	})
	s.nGates++
	mGate2QDense.Inc()
}

// applyCX is a fast path for the most common two-qubit gate.
//
//vqesim:hotpath
func (s *State) applyCX(ctrl, tgt int) {
	amps := s.amps
	quarter := uint64(len(amps) / 4)
	s.parallelFor(quarter, func(lo, hi uint64) {
		for rest := lo; rest < hi; rest++ {
			base := core.InsertTwoZeroBits(rest, ctrl, tgt)
			i10 := base | 1<<uint(ctrl)
			i11 := i10 | 1<<uint(tgt)
			amps[i10], amps[i11] = amps[i11], amps[i10]
		}
	})
	s.nGates++
	mGateCX.Inc()
}

// applyCZ is a fast path: phase flip on |11⟩.
//
//vqesim:hotpath
func (s *State) applyCZ(a, b int) {
	amps := s.amps
	quarter := uint64(len(amps) / 4)
	s.parallelFor(quarter, func(lo, hi uint64) {
		for rest := lo; rest < hi; rest++ {
			base := core.InsertTwoZeroBits(rest, a, b)
			i11 := base | 1<<uint(a) | 1<<uint(b)
			amps[i11] = -amps[i11]
		}
	})
	s.nGates++
	mGateCZ.Inc()
}

// applyRZ is a fast diagonal path.
//
//vqesim:hotpath
func (s *State) applyRZ(theta float64, q int) {
	em := cmplx.Exp(complex(0, -theta/2))
	ep := cmplx.Exp(complex(0, theta/2))
	amps := s.amps
	half := uint64(len(amps) / 2)
	s.parallelFor(half, func(lo, hi uint64) {
		for rest := lo; rest < hi; rest++ {
			i0 := core.InsertZeroBit(rest, q)
			i1 := i0 | 1<<uint(q)
			amps[i0] *= em
			amps[i1] *= ep
		}
	})
	s.nGates++
	mGateRZ.Inc()
}

// ApplyGate dispatches a single gate. Measurement markers perform a
// destructive computational-basis measurement (result discarded — use
// Measure for the outcome); Reset forces a qubit to |0⟩; Barrier is a
// no-op at simulation time.
func (s *State) ApplyGate(g gate.Gate) {
	switch g.Kind {
	case gate.Barrier, gate.I:
		return
	case gate.Measure:
		s.Measure(g.Qubits[0])
		return
	case gate.Reset:
		s.ResetQubit(g.Qubits[0])
		return
	case gate.CX:
		s.applyCX(g.Qubits[0], g.Qubits[1])
		return
	case gate.CZ:
		s.applyCZ(g.Qubits[0], g.Qubits[1])
		return
	case gate.RZ:
		s.applyRZ(g.Params[0], g.Qubits[0])
		return
	}
	switch g.Arity() {
	case 1:
		s.Apply1Q(g.Matrix2(), g.Qubits[0])
	case 2:
		s.Apply2Q(g.Matrix4(), g.Qubits[0], g.Qubits[1])
	default:
		panic(fmt.Sprintf("state: unsupported arity %d", g.Arity()))
	}
}

// Run applies every gate of a circuit in order.
func (s *State) Run(c *circuit.Circuit) {
	if c.NumQubits > s.n {
		panic(core.ErrDimensionMismatch)
	}
	start := telemetry.Now()
	for _, g := range c.Gates {
		s.ApplyGate(g)
	}
	mCircuitRun.Since(start)
}

// Probability returns P(qubit q = 1). The reduction runs on the worker
// pool above the parallel threshold (this is a hot loop on the
// ExpectationViaRotation and sampling paths).
//
//vqesim:hotpath
func (s *State) Probability(q int) float64 {
	if q < 0 || q >= s.n {
		panic(core.QubitError(q, s.n))
	}
	amps := s.amps
	return s.parallelReduce(uint64(len(amps)/2), func(lo, hi uint64) float64 {
		p := 0.0
		for rest := lo; rest < hi; rest++ {
			i1 := core.InsertZeroBit(rest, q) | 1<<uint(q)
			a := amps[i1]
			p += real(a)*real(a) + imag(a)*imag(a)
		}
		return p
	})
}

// Probabilities returns |ψ_i|² for every basis state (allocates). The fill
// is chunked over the worker pool; chunks write disjoint ranges.
func (s *State) Probabilities() []float64 {
	amps := s.amps
	out := make([]float64, len(amps))
	s.parallelFor(uint64(len(amps)), func(lo, hi uint64) {
		for i := lo; i < hi; i++ {
			a := amps[i]
			out[i] = real(a)*real(a) + imag(a)*imag(a)
		}
	})
	return out
}

// Measure performs a destructive measurement of qubit q, collapsing and
// renormalizing the state, and returns the outcome (0 or 1).
func (s *State) Measure(q int) int {
	p1 := s.Probability(q)
	outcome := 0
	if s.rng.Float64() < p1 {
		outcome = 1
	}
	s.collapse(q, outcome, p1)
	return outcome
}

// ResetQubit measures q and applies X if the outcome was 1, forcing |0⟩.
func (s *State) ResetQubit(q int) {
	if s.Measure(q) == 1 {
		s.Apply1Q(gate.New(gate.X).Matrix2(), q)
		s.nGates-- // bookkeeping gate, not part of the program
	}
}

// collapse projects qubit q onto outcome and renormalizes in place.
//
//vqesim:hotpath
func (s *State) collapse(q, outcome int, p1 float64) {
	pKeep := p1
	if outcome == 0 {
		pKeep = 1 - p1
	}
	if pKeep <= 0 {
		pKeep = 1e-300
	}
	scale := complex(1/math.Sqrt(pKeep), 0)
	keepBit := outcome == 1
	for rest := uint64(0); rest < uint64(len(s.amps)/2); rest++ {
		i0 := core.InsertZeroBit(rest, q)
		i1 := i0 | 1<<uint(q)
		if keepBit {
			s.amps[i0] = 0
			s.amps[i1] *= scale
		} else {
			s.amps[i1] = 0
			s.amps[i0] *= scale
		}
	}
}

// SampleCounts draws shots samples from the current distribution and
// returns a histogram keyed by basis-state index. The state is not
// collapsed — this models the repeated-preparation sampling workflow that
// the paper's direct-expectation optimization replaces (§4.2.1).
func (s *State) SampleCounts(shots int) map[uint64]int {
	probs := s.Probabilities()
	// Prefix sums for binary search.
	cum := make([]float64, len(probs)+1)
	for i, p := range probs {
		cum[i+1] = cum[i] + p
	}
	total := cum[len(probs)]
	out := make(map[uint64]int)
	for k := 0; k < shots; k++ {
		r := s.rng.Float64() * total
		lo, hi := 0, len(probs)
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(probs) {
			lo = len(probs) - 1
		}
		out[uint64(lo)]++
	}
	return out
}
