package state

import (
	"math"
	"sync"
	"testing"

	"repro/internal/circuit"
)

func TestPoolRunCoversRangeOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const total = 1000
	hits := make([]int32, total)
	var mu sync.Mutex
	seenSlots := map[int]bool{}
	p.Run(total, 4, func(slot int, lo, hi uint64) {
		mu.Lock()
		seenSlots[slot] = true
		mu.Unlock()
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	if len(seenSlots) != 4 {
		t.Errorf("expected 4 slots, saw %d", len(seenSlots))
	}
}

func TestPoolRunReusedAcrossCalls(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for call := 0; call < 50; call++ {
		sum := p.ReduceFloat(100, 3, func(lo, hi uint64) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		if sum != 4950 {
			t.Fatalf("call %d: sum %v, want 4950", call, sum)
		}
	}
}

func TestPoolReduceComplex(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	got := p.ReduceComplex(64, 4, func(lo, hi uint64) complex128 {
		var s complex128
		for i := lo; i < hi; i++ {
			s += complex(1, -1)
		}
		return s
	})
	if got != complex(64, -64) {
		t.Fatalf("reduce = %v", got)
	}
}

func TestPoolMoreChunksThanTotal(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var mu sync.Mutex
	visited := 0
	p.Run(3, 8, func(slot int, lo, hi uint64) {
		mu.Lock()
		visited += int(hi - lo)
		mu.Unlock()
	})
	if visited != 3 {
		t.Fatalf("visited %d of 3", visited)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				sum := p.ReduceFloat(256, 4, func(lo, hi uint64) float64 {
					return float64(hi - lo)
				})
				if sum != 256 {
					t.Errorf("sum %v", sum)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// bellLikeState prepares a state big enough to cross both parallel
// thresholds, with structure on qubit 0 for Probability checks.
func bellLikeState(workers int) *State {
	const n = 13 // 8192 amplitudes
	s := New(n, Options{Workers: workers})
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.RY(0.2*float64(q+1), q)
	}
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	s.Run(c)
	return s
}

func TestProbabilityParallelMatchesSerial(t *testing.T) {
	ser := bellLikeState(1)
	par := bellLikeState(4)
	if par.WorkerPool() == nil {
		t.Fatal("parallel state did not create a worker pool")
	}
	for q := 0; q < ser.NumQubits(); q++ {
		ps, pp := ser.Probability(q), par.Probability(q)
		if math.Abs(ps-pp) > 1e-12 {
			t.Errorf("qubit %d: serial %v vs parallel %v", q, ps, pp)
		}
	}
}

func TestProbabilitiesParallelMatchesSerial(t *testing.T) {
	ser := bellLikeState(1)
	par := bellLikeState(4)
	// Force the pooled fill: the default gate threshold (1<<14) exceeds
	// this dim, so drop it.
	par.opts.ParallelThreshold = 1 << 10
	ps, pp := ser.Probabilities(), par.Probabilities()
	sum := 0.0
	for i := range ps {
		if math.Abs(ps[i]-pp[i]) > 1e-12 {
			t.Fatalf("index %d: serial %v vs parallel %v", i, ps[i], pp[i])
		}
		sum += pp[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestCloneSharesPool(t *testing.T) {
	s := New(13, Options{Workers: 4})
	if s.WorkerPool() == nil {
		t.Fatal("no pool on parallel state")
	}
	if c := s.Clone(); c.WorkerPool() != s.WorkerPool() {
		t.Error("clone did not share the parent's worker pool")
	}
}

func TestEnsurePoolIdempotent(t *testing.T) {
	s := New(13, Options{Workers: 1})
	if s.WorkerPool() != nil {
		t.Fatal("serial state should start without a pool")
	}
	p1 := s.EnsurePool(4)
	p2 := s.EnsurePool(8)
	if p1 == nil || p1 != p2 {
		t.Error("EnsurePool must create once and return the same pool")
	}
	// Gate application must stay serial for Workers:1 states even after a
	// pool was attached for expectation use.
	done := make(chan struct{})
	go func() {
		s.Run(circuit.New(13).H(0))
		close(done)
	}()
	<-done
}
