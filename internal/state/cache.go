package state

import (
	"sort"
	"sync"
)

// Tier identifies where a cached state's amplitudes live in the simulated
// memory hierarchy. The paper (§4.1.4) caches the post-ansatz state in GPU
// memory and "seamlessly transitions to CPU memory storage" when the state
// exceeds device capacity; we reproduce that policy with an accounting
// model over ordinary RAM.
type Tier int

const (
	// TierDevice models fast accelerator memory.
	TierDevice Tier = iota
	// TierHost models system memory reached over the interconnect.
	TierHost
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	if t == TierDevice {
		return "device"
	}
	return "host"
}

// CacheStats records cache traffic for the ablation benchmarks.
type CacheStats struct {
	Puts        int
	Hits        int
	Misses      int
	DeviceHits  int
	HostHits    int
	HostSpills  int    // states that had to be placed on the host tier
	Evictions   int    // device-tier entries displaced to host
	BytesStored uint64 // current total across both tiers
}

// Cache stores post-ansatz state snapshots keyed by an arbitrary string
// (typically a hash of the ansatz parameters). Device capacity is a
// simulated budget: entries beyond it live on the host tier. The zero
// value is not usable; call NewCache.
type Cache struct {
	mu             sync.Mutex
	deviceCapacity uint64 // bytes; 0 = unlimited device tier
	deviceUsed     uint64
	entries        map[string]*cacheEntry
	stats          CacheStats
}

type cacheEntry struct {
	amps []complex128
	tier Tier
	seq  int // insertion order for eviction policy
}

// NewCache creates a cache with the given simulated device capacity in
// bytes (0 = unlimited).
func NewCache(deviceCapacityBytes uint64) *Cache {
	return &Cache{deviceCapacity: deviceCapacityBytes, entries: map[string]*cacheEntry{}}
}

// Put snapshots the state's amplitudes under key. If the snapshot fits in
// the remaining device budget it is placed on the device tier; otherwise
// the oldest device entries are displaced to host until it fits, or the
// snapshot itself goes to host if it alone exceeds capacity.
func (c *Cache) Put(key string, s *State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := uint64(len(s.amps)) * BytesPerAmp
	if old, ok := c.entries[key]; ok {
		c.stats.BytesStored -= uint64(len(old.amps)) * BytesPerAmp
		if old.tier == TierDevice {
			c.deviceUsed -= uint64(len(old.amps)) * BytesPerAmp
		}
		delete(c.entries, key)
	}
	e := &cacheEntry{amps: s.AmplitudesCopy(), seq: c.stats.Puts}
	c.stats.Puts++
	c.stats.BytesStored += size
	switch {
	case c.deviceCapacity == 0 || size <= c.deviceCapacity:
		// Evict oldest device entries until this one fits.
		for c.deviceCapacity != 0 && c.deviceUsed+size > c.deviceCapacity {
			c.evictOldestDevice()
		}
		e.tier = TierDevice
		c.deviceUsed += size
	default:
		e.tier = TierHost
		c.stats.HostSpills++
	}
	c.entries[key] = e
}

// evictOldestDevice moves the lowest-seq device entry to the host tier.
// Caller holds the lock.
func (c *Cache) evictOldestDevice() {
	var keys []string
	for k, e := range c.entries {
		if e.tier == TierDevice {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Slice(keys, func(i, j int) bool { return c.entries[keys[i]].seq < c.entries[keys[j]].seq })
	e := c.entries[keys[0]]
	e.tier = TierHost
	c.deviceUsed -= uint64(len(e.amps)) * BytesPerAmp
	c.stats.Evictions++
}

// Restore copies the cached snapshot into dst and returns the tier it was
// served from. ok is false on a miss (dst untouched).
func (c *Cache) Restore(key string, dst *State) (Tier, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return TierDevice, false
	}
	if len(e.amps) != len(dst.amps) {
		c.stats.Misses++
		return TierDevice, false
	}
	copy(dst.amps, e.amps)
	c.stats.Hits++
	if e.tier == TierDevice {
		c.stats.DeviceHits++
	} else {
		c.stats.HostHits++
	}
	return e.tier, true
}

// Contains reports whether key is cached without touching stats.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Len returns the number of cached snapshots.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a copy of the traffic counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Clear drops all entries (stats are retained).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*cacheEntry{}
	c.deviceUsed = 0
	c.stats.BytesStored = 0
}
