package state

import "repro/internal/telemetry"

// Engine instruments, resolved once at init and mutated lock-free on the
// hot paths. All are no-ops until telemetry.Enable (the cmd binaries'
// -metrics flag); the disabled check is one atomic load per event.
var (
	// Gate-kernel dispatch counters: which kernel served each apply. The
	// 2q split distinguishes the sparse fused-staircase kernel (≤ 8
	// nonzeros, the gate-fusion payoff path) from the dense 4×4 kernel.
	mGate1Q       = telemetry.GetCounter("state.gate.1q")
	mGateCX       = telemetry.GetCounter("state.gate.cx")
	mGateCZ       = telemetry.GetCounter("state.gate.cz")
	mGateRZ       = telemetry.GetCounter("state.gate.rz")
	mGate2QSparse = telemetry.GetCounter("state.gate.2q_sparse")
	mGate2QDense  = telemetry.GetCounter("state.gate.2q_dense")
	mCircuitRun   = telemetry.GetTimer("state.circuit.run")

	// Worker-pool counters: dispatched parallel runs, chunk tasks fed to
	// workers, inline (below-threshold or serial) fallbacks, and the
	// cumulative busy time across workers — utilization is busy time
	// divided by wall time × pool width.
	mPoolRuns    = telemetry.GetCounter("state.pool.runs")
	mPoolChunks  = telemetry.GetCounter("state.pool.chunks")
	mPoolInline  = telemetry.GetCounter("state.pool.inline")
	mPoolBusy    = telemetry.GetTimer("state.pool.busy")
	mPoolWorkers = telemetry.GetGauge("state.pool.workers")

	// Fused-execution instruments: compile and run wall clock, source vs
	// executed gate counts (the paper's Figure 4 reduction, now a runtime
	// quantity), layer/op tallies, and how often the calibrated
	// RunOptimized choice picked the fused versus the plain path.
	mFusionCompile     = telemetry.GetTimer("fusion.compile")
	mFusionRun         = telemetry.GetTimer("fusion.run")
	mFusionGatesBefore = telemetry.GetCounter("fusion.gates_before")
	mFusionGatesAfter  = telemetry.GetCounter("fusion.gates_after")
	mFusionLayers      = telemetry.GetCounter("fusion.layers")
	mFusionTiledSweeps = telemetry.GetCounter("fusion.tiled_sweeps")
	mFusionOps         = telemetry.GetCounter("fusion.ops")
	mFusionRunsFused   = telemetry.GetCounter("fusion.runs_fused")
	mFusionRunsPlain   = telemetry.GetCounter("fusion.runs_plain")
)
