package state

import (
	"runtime"
	"sync"

	"repro/internal/telemetry"
)

// Pool is a persistent goroutine worker pool for chunked index-range work.
// It replaces the per-gate and per-term goroutine spawning the engine used
// previously: the goroutines are created once (per State, shared with its
// clones) and fed contiguous [lo, hi) ranges through a channel, so a VQE
// energy evaluation that applies thousands of gates and reduces thousands
// of Pauli terms pays goroutine start-up cost exactly once. This mirrors
// the paper's §4.2.3 arrangement where one persistent CUDA grid serves
// every kernel launch of an evaluation.
//
// A Pool is safe for concurrent use by multiple submitters. Bodies must
// not themselves submit work to the same pool (no nesting): with all
// workers occupied by parent bodies the nested submit would deadlock.
type Pool struct {
	workers  int
	jobs     chan poolJob
	quit     chan struct{}
	shutdown sync.Once
}

type poolJob struct {
	slot   int
	lo, hi uint64
	body   func(slot int, lo, hi uint64)
	wg     *sync.WaitGroup
}

// floatStride/complexStride are per-slot strides (in elements) that keep
// each chunk's partial-result slot on its own 64-byte cache line, so
// workers never invalidate each other's lines while accumulating
// (false-sharing fix; 8 float64 = 4 complex128 = 64 B).
const (
	floatStride   = 8
	complexStride = 4
)

// NewPool starts a pool of the given width (0 or negative means
// GOMAXPROCS). The workers hold references only to the pool's channels,
// never to the Pool itself, so an abandoned Pool becomes unreachable and
// the finalizer reclaims the goroutines; callers that want deterministic
// shutdown can Close explicitly.
func NewPool(workers int) *Pool {
	workers = ResolveWorkers(workers)
	p := &Pool{workers: workers, jobs: make(chan poolJob), quit: make(chan struct{})}
	for w := 0; w < workers; w++ {
		go poolWorker(p.jobs, p.quit)
	}
	runtime.SetFinalizer(p, (*Pool).Close)
	mPoolWorkers.Set(int64(workers))
	return p
}

// poolWorker is the per-goroutine job loop.
//
//vqesim:hotpath
func poolWorker(jobs <-chan poolJob, quit <-chan struct{}) {
	for {
		select {
		case <-quit:
			return
		case j := <-jobs:
			start := telemetry.Now()
			j.body(j.slot, j.lo, j.hi)
			mPoolBusy.Since(start)
			mPoolChunks.Inc()
			j.wg.Done()
		}
	}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Close stops the worker goroutines. Idempotent; a closed pool must not
// receive further Run calls.
func (p *Pool) Close() {
	p.shutdown.Do(func() {
		runtime.SetFinalizer(p, nil)
		close(p.quit)
	})
}

// Run splits [0, total) into at most `chunks` contiguous ranges and runs
// body(slot, lo, hi) for each on the pool, blocking until all complete.
// slot is the chunk index (0 ≤ slot < chunks, dense from 0) and is stable
// per range, so callers can hand every chunk a private accumulator block.
// chunks ≤ 0 means the pool width.
//
//vqesim:hotpath
func (p *Pool) Run(total uint64, chunks int, body func(slot int, lo, hi uint64)) {
	if total == 0 {
		return
	}
	if chunks <= 0 {
		chunks = p.workers
	}
	mPoolRuns.Inc()
	chunk := (total + uint64(chunks) - 1) / uint64(chunks)
	var wg sync.WaitGroup
	slot := 0
	for lo := uint64(0); lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		p.jobs <- poolJob{slot: slot, lo: lo, hi: hi, body: body, wg: &wg}
		slot++
	}
	wg.Wait()
}

// numChunks reports how many slots Run will use for the given split.
func numChunks(total uint64, chunks int) int {
	if total == 0 {
		return 0
	}
	chunk := (total + uint64(chunks) - 1) / uint64(chunks)
	return int((total + chunk - 1) / chunk)
}

// ReduceFloat runs body over at most `chunks` ranges of [0, total) and
// returns the sum of the per-chunk partials. Each chunk accumulates into a
// local and writes exactly once into a cache-line-padded slot.
func (p *Pool) ReduceFloat(total uint64, chunks int, body func(lo, hi uint64) float64) float64 {
	if chunks <= 0 {
		chunks = p.workers
	}
	partial := make([]float64, numChunks(total, chunks)*floatStride)
	p.Run(total, chunks, func(slot int, lo, hi uint64) {
		partial[slot*floatStride] = body(lo, hi)
	})
	acc := 0.0
	for i := 0; i < len(partial); i += floatStride {
		acc += partial[i]
	}
	return acc
}

// ReduceComplex is ReduceFloat for complex128 partials.
func (p *Pool) ReduceComplex(total uint64, chunks int, body func(lo, hi uint64) complex128) complex128 {
	if chunks <= 0 {
		chunks = p.workers
	}
	partial := make([]complex128, numChunks(total, chunks)*complexStride)
	p.Run(total, chunks, func(slot int, lo, hi uint64) {
		partial[slot*complexStride] = body(lo, hi)
	})
	var acc complex128
	for i := 0; i < len(partial); i += complexStride {
		acc += partial[i]
	}
	return acc
}
