package state

// This file wires the transpiler's gate fusion (paper §4.3) into the
// runtime execution path. circuit.Transpile already merges adjacent
// gates into Fused1Q/Fused2Q unitaries, but Run still walks the gate
// list one full amplitude pass per gate — so the >50% gate-count
// reduction of the paper's Figure 4 never reached wall clock. A
// FusedProgram lowers the transpiled circuit once into flat kernel
// descriptors (dense/diagonal/sparse, classified at compile time
// instead of per apply), packs consecutive ops on disjoint qubits into
// layers, and executes each layer with a cache-blocked tile sweep:
// every op of the layer is applied to one L1-resident tile of
// amplitudes before moving to the next tile, so a layer of k ops costs
// one memory pass instead of k.
//
// The tile trick is sound because an op whose qubits all lie below
// TileBits only couples amplitudes whose indices differ in those low
// bits — i.e. pairs inside the same aligned 2^TileBits block. Layers
// containing higher-qubit ops fall back to per-op full sweeps (which
// still benefit from the compile-time kernel classification).

import (
	"math"
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/kernel/tuning"
	"repro/internal/telemetry"
)

// fusedOpKind selects the kernel a lowered op runs on. Classification
// happens once at compile time; Apply2Q re-derives the same structure
// on every call.
type fusedOpKind uint8

const (
	fusedDense1 fusedOpKind = iota
	fusedDiag1
	fusedDense2
	fusedSparse2
	fusedDiag2
	fusedMarker
)

// fusedNZ is one nonzero of a sparse 4×4 fused matrix.
type fusedNZ struct {
	r, c int
	v    complex128
}

// fusedOp is one lowered operation. Matrix entries live in fixed
// arrays, not pointers, so a layer's ops are contiguous in memory and
// the sweep never chases a *linalg.Matrix indirection.
type fusedOp struct {
	kind fusedOpKind
	a, b int // target qubits; a is the high-order bit of the 2q local index
	// m holds the dense matrix row-major: 2×2 ops use m[0..3], 4×4 ops
	// m[0..15]. Diagonal ops store their diagonal in m[0..1] / m[0..3].
	m [16]complex128
	// nz/nnz hold the sparse 4×4 form (≤ 8 nonzeros, the fused
	// staircase shape CX·RZ·CX produces).
	nz  [8]fusedNZ
	nnz int
	// marker carries a non-unitary pass-through (measure/reset/barrier).
	marker gate.Gate
	mask   uint64 // qubit occupancy, for layer packing
}

// fusedLayer is a run of ops on pairwise-disjoint qubits; they commute,
// so the tile sweep may apply them in any order within a tile.
type fusedLayer struct {
	ops      []fusedOp
	maxQubit int
}

// FusedProgram is a circuit compiled for fused execution. Programs are
// immutable after CompileFused and safe for concurrent RunFused on
// different states.
type FusedProgram struct {
	n           int
	gatesBefore int
	gatesAfter  int
	layers      []fusedLayer
}

// NumQubits returns the register width the program was compiled for.
func (p *FusedProgram) NumQubits() int { return p.n }

// GatesBefore reports the source circuit's gate count.
func (p *FusedProgram) GatesBefore() int { return p.gatesBefore }

// GatesAfter reports the gate count after transpilation — the ops the
// engine actually executes (the paper's Figure 4 quantity).
func (p *FusedProgram) GatesAfter() int { return p.gatesAfter }

// NumLayers reports how many disjoint-qubit layers the program packs.
func (p *FusedProgram) NumLayers() int { return len(p.layers) }

// CompileFused transpiles c with the default options (identity
// dropping, inverse cancellation, width-2 fusion) and lowers the result
// into a fused program.
func CompileFused(c *circuit.Circuit) *FusedProgram {
	return CompileFusedOptions(c, circuit.DefaultTranspileOptions())
}

// CompileFusedOptions is CompileFused with explicit transpiler options.
func CompileFusedOptions(c *circuit.Circuit, topts circuit.TranspileOptions) *FusedProgram {
	start := telemetry.Now()
	t := circuit.Transpile(c, topts)
	p := &FusedProgram{n: c.NumQubits, gatesBefore: c.GateCount(), gatesAfter: t.GateCount()}
	for _, g := range t.Gates {
		p.lower(g)
	}
	mFusionGatesBefore.Add(int64(p.gatesBefore))
	mFusionGatesAfter.Add(int64(p.gatesAfter))
	mFusionLayers.Add(int64(len(p.layers)))
	mFusionCompile.Since(start)
	return p
}

// lower classifies one transpiled gate into a fusedOp and packs it into
// the current layer (or a new one when qubits collide).
func (p *FusedProgram) lower(g gate.Gate) {
	var op fusedOp
	switch {
	case g.Kind == gate.Barrier || g.Kind == gate.I:
		return // no runtime effect
	case !g.IsUnitary():
		// Markers execute through ApplyGate in program order; they get a
		// private layer so the surrounding unitary layers stay pure.
		op = fusedOp{kind: fusedMarker, marker: g.Clone()}
		p.layers = append(p.layers, fusedLayer{ops: []fusedOp{op}})
		return
	case g.Arity() == 1:
		op = lower1Q(g)
	case g.Arity() == 2:
		op = lower2Q(g)
	default:
		panic("state: fused compile: unsupported arity")
	}
	p.push(op)
}

// push appends op to the last layer if its qubits are free there, else
// opens a new layer. Greedy packing preserves program order: an op only
// joins a layer whose every member acts on disjoint qubits, and
// disjoint single/two-qubit unitaries commute.
func (p *FusedProgram) push(op fusedOp) {
	if n := len(p.layers); n > 0 {
		l := &p.layers[n-1]
		if len(l.ops) > 0 && l.ops[0].kind != fusedMarker && layerMask(l)&op.mask == 0 {
			l.ops = append(l.ops, op)
			if mq := opMaxQubit(op); mq > l.maxQubit {
				l.maxQubit = mq
			}
			return
		}
	}
	p.layers = append(p.layers, fusedLayer{ops: []fusedOp{op}, maxQubit: opMaxQubit(op)})
}

func layerMask(l *fusedLayer) uint64 {
	var m uint64
	for i := range l.ops {
		m |= l.ops[i].mask
	}
	return m
}

func opMaxQubit(op fusedOp) int {
	return 63 - bits.LeadingZeros64(op.mask)
}

// chop zeroes double-precision dust so kernels see the true sparsity
// (entries of a unitary are O(1); 1e-14 is pure rounding noise from the
// fused matrix products).
func chop(v complex128) complex128 {
	if math.Hypot(real(v), imag(v)) < 1e-14 {
		return 0
	}
	return v
}

func lower1Q(g gate.Gate) fusedOp {
	u := g.Matrix2()
	op := fusedOp{a: g.Qubits[0], mask: 1 << uint(g.Qubits[0])}
	u00, u01 := chop(u.At(0, 0)), chop(u.At(0, 1))
	u10, u11 := chop(u.At(1, 0)), chop(u.At(1, 1))
	if u01 == 0 && u10 == 0 {
		op.kind = fusedDiag1
		op.m[0], op.m[1] = u00, u11
		return op
	}
	op.kind = fusedDense1
	op.m[0], op.m[1], op.m[2], op.m[3] = u00, u01, u10, u11
	return op
}

func lower2Q(g gate.Gate) fusedOp {
	u := g.Matrix4()
	a, b := g.Qubits[0], g.Qubits[1]
	op := fusedOp{a: a, b: b, mask: 1<<uint(a) | 1<<uint(b)}
	diag := true
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := chop(u.At(i, j))
			op.m[i*4+j] = v
			if v != 0 {
				if i != j {
					diag = false
				}
				if op.nnz < len(op.nz) {
					op.nz[op.nnz] = fusedNZ{r: i, c: j, v: v}
				}
				op.nnz++
			}
		}
	}
	switch {
	case diag:
		op.kind = fusedDiag2
		op.m[1], op.m[2], op.m[3] = op.m[5], op.m[10], op.m[15]
	case op.nnz <= 8:
		op.kind = fusedSparse2
	default:
		op.kind = fusedDense2
	}
	return op
}

// RunOptimized transpiles and executes c through the fused kernel path,
// falling back to plain transpiled execution below the calibrated
// fusion cutoff (tiny states finish before the compile pays off).
func (s *State) RunOptimized(c *circuit.Circuit) {
	if len(s.amps) < tuning.MinFuseAmps() {
		mFusionRunsPlain.Inc()
		s.Run(circuit.Transpile(c, circuit.DefaultTranspileOptions()))
		return
	}
	mFusionRunsFused.Inc()
	s.RunFused(CompileFused(c))
}

// RunFused executes a compiled program. Layers whose qubits all fit
// inside one cache tile run as a single tiled memory pass; everything
// else runs per-op with the precompiled kernels.
func (s *State) RunFused(p *FusedProgram) {
	if p.n > s.n {
		panic(core.ErrDimensionMismatch)
	}
	start := telemetry.Now()
	tileBits := tuning.TileBits()
	for li := range p.layers {
		l := &p.layers[li]
		if l.ops[0].kind == fusedMarker {
			s.ApplyGate(l.ops[0].marker)
			continue
		}
		if len(l.ops) >= 2 && l.maxQubit < tileBits && len(s.amps) >= 1<<uint(tileBits) {
			s.runTiledLayer(l, tileBits)
			continue
		}
		for oi := range l.ops {
			s.applyFusedOp(&l.ops[oi])
		}
	}
	mFusionRun.Since(start)
}

// runTiledLayer applies every op of a layer tile by tile: each aligned
// 2^tileBits block of amplitudes is loaded once, transformed by all
// ops while L1-resident, and written back — one memory pass for the
// whole layer.
//
//vqesim:hotpath
func (s *State) runTiledLayer(l *fusedLayer, tileBits int) {
	amps := s.amps
	ops := l.ops
	tile := uint64(1) << uint(tileBits)
	tiles := uint64(len(amps)) >> uint(tileBits)
	if len(amps) < s.opts.ParallelThreshold || s.opts.Workers <= 1 || s.pool == nil {
		mPoolInline.Inc()
		fusedTileSweep(amps, ops, 0, tiles, tile)
	} else {
		s.pool.Run(tiles, s.opts.Workers, func(_ int, lo, hi uint64) {
			fusedTileSweep(amps, ops, lo, hi, tile)
		})
	}
	s.nGates += uint64(len(ops))
	mFusionTiledSweeps.Inc()
	mFusionOps.Add(int64(len(ops)))
}

// fusedTileSweep runs ops over the aligned tiles [loTile, hiTile).
// Tiles are disjoint, so pool chunks never share an amplitude.
//
//vqesim:hotpath
func fusedTileSweep(amps []complex128, ops []fusedOp, loTile, hiTile, tile uint64) {
	for t := loTile; t < hiTile; t++ {
		base := t * tile
		for oi := range ops {
			op := &ops[oi]
			switch op.kind {
			case fusedDiag1:
				fusedDiag1Range(amps, op, base, tile)
			case fusedDense1:
				fusedDense1Range(amps, op, base, tile)
			case fusedDiag2:
				fusedDiag2Range(amps, op, base, tile)
			case fusedSparse2:
				fusedSparse2Range(amps, op, base, tile)
			case fusedDense2:
				fusedDense2Range(amps, op, base, tile)
			}
		}
	}
}

// The *Range kernels transform one aligned region [base, base+span) in
// place; op qubits must lie below log2(span) so every coupled index
// pair stays inside the region.

//vqesim:hotpath
func fusedDiag1Range(amps []complex128, op *fusedOp, base, span uint64) {
	d0, d1 := op.m[0], op.m[1]
	q := op.a
	for rest := uint64(0); rest < span/2; rest++ {
		i0 := base + core.InsertZeroBit(rest, q)
		amps[i0] *= d0
		amps[i0|1<<uint(q)] *= d1
	}
}

//vqesim:hotpath
func fusedDense1Range(amps []complex128, op *fusedOp, base, span uint64) {
	u00, u01, u10, u11 := op.m[0], op.m[1], op.m[2], op.m[3]
	q := op.a
	for rest := uint64(0); rest < span/2; rest++ {
		i0 := base + core.InsertZeroBit(rest, q)
		i1 := i0 | 1<<uint(q)
		a0, a1 := amps[i0], amps[i1]
		amps[i0] = u00*a0 + u01*a1
		amps[i1] = u10*a0 + u11*a1
	}
}

//vqesim:hotpath
func fusedDiag2Range(amps []complex128, op *fusedOp, base, span uint64) {
	d0, d1, d2, d3 := op.m[0], op.m[1], op.m[2], op.m[3]
	a, b := op.a, op.b
	for rest := uint64(0); rest < span/4; rest++ {
		i0 := base + core.InsertTwoZeroBits(rest, a, b)
		i1 := i0 | 1<<uint(b)
		i2 := i0 | 1<<uint(a)
		i3 := i1 | 1<<uint(a)
		amps[i0] *= d0
		amps[i1] *= d1
		amps[i2] *= d2
		amps[i3] *= d3
	}
}

//vqesim:hotpath
func fusedSparse2Range(amps []complex128, op *fusedOp, base, span uint64) {
	a, b := op.a, op.b
	nnz := op.nnz
	var idx [4]uint64
	var in, out [4]complex128
	for rest := uint64(0); rest < span/4; rest++ {
		i0 := base + core.InsertTwoZeroBits(rest, a, b)
		idx[0] = i0
		idx[1] = i0 | 1<<uint(b)
		idx[2] = i0 | 1<<uint(a)
		idx[3] = idx[1] | 1<<uint(a)
		in[0], in[1], in[2], in[3] = amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]
		out[0], out[1], out[2], out[3] = 0, 0, 0, 0
		for t := 0; t < nnz; t++ {
			e := &op.nz[t]
			out[e.r] += e.v * in[e.c]
		}
		amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]] = out[0], out[1], out[2], out[3]
	}
}

//vqesim:hotpath
func fusedDense2Range(amps []complex128, op *fusedOp, base, span uint64) {
	a, b := op.a, op.b
	m := &op.m
	var idx [4]uint64
	for rest := uint64(0); rest < span/4; rest++ {
		i0 := base + core.InsertTwoZeroBits(rest, a, b)
		idx[0] = i0
		idx[1] = i0 | 1<<uint(b)
		idx[2] = i0 | 1<<uint(a)
		idx[3] = idx[1] | 1<<uint(a)
		v0, v1, v2, v3 := amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]
		amps[idx[0]] = m[0]*v0 + m[1]*v1 + m[2]*v2 + m[3]*v3
		amps[idx[1]] = m[4]*v0 + m[5]*v1 + m[6]*v2 + m[7]*v3
		amps[idx[2]] = m[8]*v0 + m[9]*v1 + m[10]*v2 + m[11]*v3
		amps[idx[3]] = m[12]*v0 + m[13]*v1 + m[14]*v2 + m[15]*v3
	}
}

// applyFusedOp runs one op as a full-state sweep (the non-tiled path:
// high qubits or single-op layers). The kernels reuse the *Range
// helpers over pool chunks of the "rest" index space, mapped back to
// amplitude space per kernel.
//
//vqesim:hotpath
func (s *State) applyFusedOp(op *fusedOp) {
	if op.kind == fusedMarker {
		s.ApplyGate(op.marker)
		return
	}
	amps := s.amps
	switch op.kind {
	case fusedDiag1:
		d0, d1 := op.m[0], op.m[1]
		q := op.a
		s.parallelFor(uint64(len(amps)/2), func(lo, hi uint64) {
			for rest := lo; rest < hi; rest++ {
				i0 := core.InsertZeroBit(rest, q)
				amps[i0] *= d0
				amps[i0|1<<uint(q)] *= d1
			}
		})
	case fusedDense1:
		u00, u01, u10, u11 := op.m[0], op.m[1], op.m[2], op.m[3]
		q := op.a
		s.parallelFor(uint64(len(amps)/2), func(lo, hi uint64) {
			for rest := lo; rest < hi; rest++ {
				i0 := core.InsertZeroBit(rest, q)
				i1 := i0 | 1<<uint(q)
				a0, a1 := amps[i0], amps[i1]
				amps[i0] = u00*a0 + u01*a1
				amps[i1] = u10*a0 + u11*a1
			}
		})
	case fusedDiag2:
		d0, d1, d2, d3 := op.m[0], op.m[1], op.m[2], op.m[3]
		a, b := op.a, op.b
		s.parallelFor(uint64(len(amps)/4), func(lo, hi uint64) {
			for rest := lo; rest < hi; rest++ {
				i0 := core.InsertTwoZeroBits(rest, a, b)
				i1 := i0 | 1<<uint(b)
				i2 := i0 | 1<<uint(a)
				i3 := i1 | 1<<uint(a)
				amps[i0] *= d0
				amps[i1] *= d1
				amps[i2] *= d2
				amps[i3] *= d3
			}
		})
	case fusedSparse2:
		a, b := op.a, op.b
		nnz := op.nnz
		s.parallelFor(uint64(len(amps)/4), func(lo, hi uint64) {
			var idx [4]uint64
			var in, out [4]complex128
			for rest := lo; rest < hi; rest++ {
				i0 := core.InsertTwoZeroBits(rest, a, b)
				idx[0] = i0
				idx[1] = i0 | 1<<uint(b)
				idx[2] = i0 | 1<<uint(a)
				idx[3] = idx[1] | 1<<uint(a)
				in[0], in[1], in[2], in[3] = amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]
				out[0], out[1], out[2], out[3] = 0, 0, 0, 0
				for t := 0; t < nnz; t++ {
					e := &op.nz[t]
					out[e.r] += e.v * in[e.c]
				}
				amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]] = out[0], out[1], out[2], out[3]
			}
		})
	case fusedDense2:
		a, b := op.a, op.b
		m := &op.m
		s.parallelFor(uint64(len(amps)/4), func(lo, hi uint64) {
			var idx [4]uint64
			for rest := lo; rest < hi; rest++ {
				i0 := core.InsertTwoZeroBits(rest, a, b)
				idx[0] = i0
				idx[1] = i0 | 1<<uint(b)
				idx[2] = i0 | 1<<uint(a)
				idx[3] = idx[1] | 1<<uint(a)
				v0, v1, v2, v3 := amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]
				amps[idx[0]] = m[0]*v0 + m[1]*v1 + m[2]*v2 + m[3]*v3
				amps[idx[1]] = m[4]*v0 + m[5]*v1 + m[6]*v2 + m[7]*v3
				amps[idx[2]] = m[8]*v0 + m[9]*v1 + m[10]*v2 + m[11]*v3
				amps[idx[3]] = m[12]*v0 + m[13]*v1 + m[14]*v2 + m[15]*v3
			}
		})
	}
	s.nGates++
	mFusionOps.Inc()
}
