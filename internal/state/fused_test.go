package state

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/kernel/tuning"
)

// random1QKinds / random2QKinds cover every supported unitary gate kind
// for the fused-vs-unfused property tests.
var random1QKinds = []gate.Kind{
	gate.X, gate.Y, gate.Z, gate.H, gate.S, gate.Sdg, gate.T, gate.Tdg,
	gate.SX, gate.RX, gate.RY, gate.RZ, gate.P, gate.U3,
}

var random2QKinds = []gate.Kind{
	gate.CX, gate.CY, gate.CZ, gate.CH, gate.CP, gate.CRX, gate.CRY,
	gate.CRZ, gate.SWAP, gate.ISWAP, gate.RXX, gate.RYY, gate.RZZ,
}

func paramCount(k gate.Kind) int {
	switch k {
	case gate.RX, gate.RY, gate.RZ, gate.P, gate.CP, gate.CRX, gate.CRY,
		gate.CRZ, gate.RXX, gate.RYY, gate.RZZ:
		return 1
	case gate.U3:
		return 3
	}
	return 0
}

// randomCircuit builds a deterministic pseudo-random 1q/2q gate mix
// (plus the occasional barrier, which splits fused layers).
func randomCircuit(seed uint64, n, depth int) *circuit.Circuit {
	rng := core.NewRNG(seed)
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		r := rng.Float64()
		switch {
		case r < 0.04:
			c.Append(gate.New(gate.Barrier))
		case r < 0.5 || n < 2:
			k := random1QKinds[int(rng.Uint64()%uint64(len(random1QKinds)))]
			g := gate.Gate{Kind: k, Qubits: []int{int(rng.Uint64() % uint64(n))}}
			for p := 0; p < paramCount(k); p++ {
				g.Params = append(g.Params, (rng.Float64()-0.5)*4*math.Pi)
			}
			c.Append(g)
		default:
			k := random2QKinds[int(rng.Uint64()%uint64(len(random2QKinds)))]
			a := int(rng.Uint64() % uint64(n))
			b := int(rng.Uint64() % uint64(n))
			for b == a {
				b = int(rng.Uint64() % uint64(n))
			}
			g := gate.Gate{Kind: k, Qubits: []int{a, b}}
			for p := 0; p < paramCount(k); p++ {
				g.Params = append(g.Params, (rng.Float64()-0.5)*4*math.Pi)
			}
			c.Append(g)
		}
	}
	return c
}

func maxAmpDeviation(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		d := real(a[i]) - real(b[i])
		di := imag(a[i]) - imag(b[i])
		if m := math.Hypot(d, di); m > worst {
			worst = m
		}
	}
	return worst
}

// TestFusedMatchesUnfusedRandomCircuits is the core property test: a
// compiled fused program must reproduce gate-at-a-time execution to
// 1e-12 on random circuits over every supported gate kind, 2–12 qubits,
// on both the serial and the pooled path.
func TestFusedMatchesUnfusedRandomCircuits(t *testing.T) {
	for n := 2; n <= 12; n++ {
		for rep := 0; rep < 3; rep++ {
			seed := uint64(n*100 + rep + 1)
			c := randomCircuit(seed, n, 8*n)
			ref := New(n, Options{Workers: 1})
			ref.Run(c)

			p := CompileFused(c)
			serial := New(n, Options{Workers: 1})
			serial.RunFused(p)
			if dev := maxAmpDeviation(ref.Amplitudes(), serial.Amplitudes()); dev > 1e-12 {
				t.Fatalf("n=%d rep=%d serial fused deviates by %g", n, rep, dev)
			}

			// Pooled path with the threshold forced low so the pool engages
			// even at small dims.
			pooled := New(n, Options{Workers: 4, ParallelThreshold: 1})
			pooled.EnsurePool(4)
			pooled.RunFused(p)
			if dev := maxAmpDeviation(ref.Amplitudes(), pooled.Amplitudes()); dev > 1e-12 {
				t.Fatalf("n=%d rep=%d pooled fused deviates by %g", n, rep, dev)
			}
		}
	}
}

// TestFusedTiledSweep forces tiny tiles so the cache-blocked layer
// sweep (rather than the per-op fallback) executes, and checks it
// against the unfused reference.
func TestFusedTiledSweep(t *testing.T) {
	defer tuning.Reset()
	tt := tuning.Defaults()
	tt.TileBits = 4 // 16-amplitude tiles: every layer on n≥5 qubits tiles
	tuning.Install(tt, "test")
	for _, n := range []int{5, 7, 9} {
		c := randomCircuit(uint64(7000+n), n, 10*n)
		ref := New(n, Options{Workers: 1})
		ref.Run(c)
		s := New(n, Options{Workers: 1})
		p := CompileFused(c)
		s.RunFused(p)
		if dev := maxAmpDeviation(ref.Amplitudes(), s.Amplitudes()); dev > 1e-12 {
			t.Fatalf("n=%d tiled fused deviates by %g", n, dev)
		}
		pooled := New(n, Options{Workers: 3, ParallelThreshold: 1})
		pooled.EnsurePool(3)
		pooled.RunFused(p)
		if dev := maxAmpDeviation(ref.Amplitudes(), pooled.Amplitudes()); dev > 1e-12 {
			t.Fatalf("n=%d tiled pooled fused deviates by %g", n, dev)
		}
	}
}

// TestFusedOrderConvention runs the shared two-qubit convention table
// (order2QConventionCases, also exercised by TestApply2QOrderConvention)
// through the fused path, pinning the fused kernels to the same
// first-qubit-is-high-bit matrix convention as Apply2Q.
func TestFusedOrderConvention(t *testing.T) {
	for _, pair := range order2QConventionCases.pairs {
		for _, g := range order2QConventionCases.gates(pair[0], pair[1]) {
			s := New(3, Options{})
			s.Run(circuit.New(3).H(0).T(0).H(1).S(1).H(2))
			ref := s.AmplitudesCopy()
			one := circuit.New(3)
			one.Append(g)
			s.RunFused(CompileFused(one))
			u := circuit.EmbedGate(g, 3)
			want := u.MulVec(ref)
			for i := range want {
				if !core.AlmostEqualC(s.amps[i], want[i], 1e-10) {
					t.Fatalf("gate %v pair %v: index %d: got %v want %v", g, pair, i, s.amps[i], want[i])
				}
			}
		}
	}
}

// TestFusedGateAccounting: fused execution must count exactly the
// transpiled gates (the paper's Figure 4 currency), not the source
// gates.
func TestFusedGateAccounting(t *testing.T) {
	c := randomCircuit(42, 6, 60)
	p := CompileFused(c)
	tc := circuit.Transpile(c, circuit.DefaultTranspileOptions())
	if p.GatesAfter() != tc.GateCount() {
		t.Fatalf("GatesAfter %d != transpiled count %d", p.GatesAfter(), tc.GateCount())
	}
	if p.GatesBefore() != c.GateCount() {
		t.Fatalf("GatesBefore %d != source count %d", p.GatesBefore(), c.GateCount())
	}
	s := New(6, Options{Workers: 1})
	s.RunFused(p)
	if got := s.GatesApplied(); got != uint64(p.GatesAfter()) {
		t.Fatalf("fused run applied %d gates, program has %d", got, p.GatesAfter())
	}
}

// TestFusedMarkers: measurement/reset markers must execute in program
// order through the fused path.
func TestFusedMarkers(t *testing.T) {
	c := circuit.New(2)
	c.X(0)
	c.Append(gate.New(gate.Measure, 0)) // deterministic outcome 1
	c.Append(gate.New(gate.Reset, 0))   // back to |0⟩
	c.X(1)
	s := New(2, Options{Workers: 1})
	s.RunFused(CompileFused(c))
	// Expect |10⟩ (qubit 1 set, qubit 0 reset): index 2.
	if got := real(s.amps[2] * complex(real(s.amps[2]), -imag(s.amps[2]))); math.Abs(got-1) > 1e-12 {
		t.Fatalf("marker handling wrong: amps %v", s.amps)
	}
}

// TestRunOptimizedFallback: below the calibrated MinFuseAmps cutoff
// RunOptimized must still execute correctly (plain transpiled path),
// and above it the fused path must agree with it.
func TestRunOptimizedFallback(t *testing.T) {
	defer tuning.Reset()
	c := randomCircuit(99, 6, 48)
	ref := New(6, Options{Workers: 1})
	ref.Run(c)

	tt := tuning.Defaults()
	tt.MinFuseAmps = 1 << 20 // force the plain path
	tuning.Install(tt, "test")
	plain := New(6, Options{Workers: 1})
	plain.RunOptimized(c)
	if dev := maxAmpDeviation(ref.Amplitudes(), plain.Amplitudes()); dev > 1e-12 {
		t.Fatalf("plain RunOptimized deviates by %g", dev)
	}

	tt.MinFuseAmps = 1 // force the fused path
	tuning.Install(tt, "test")
	fused := New(6, Options{Workers: 1})
	fused.RunOptimized(c)
	if dev := maxAmpDeviation(ref.Amplitudes(), fused.Amplitudes()); dev > 1e-12 {
		t.Fatalf("fused RunOptimized deviates by %g", dev)
	}
}

// TestFusedLayerPacking sanity-checks the greedy layering: disjoint ops
// pack into one layer, overlapping ops split.
func TestFusedLayerPacking(t *testing.T) {
	c := circuit.New(4)
	c.H(0).H(1).H(2).H(3) // disjoint: one layer
	p := CompileFused(c)
	if p.NumLayers() != 1 {
		t.Fatalf("disjoint 1q gates packed into %d layers, want 1", p.NumLayers())
	}
	c2 := circuit.New(2)
	c2.H(0).CX(0, 1) // fuses into a single 2q block
	p2 := CompileFused(c2)
	if p2.GatesAfter() != 1 {
		t.Fatalf("H+CX fused into %d gates, want 1", p2.GatesAfter())
	}
}
