package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDim(t *testing.T) {
	cases := []struct{ n, want int }{{0, 1}, {1, 2}, {4, 16}, {10, 1024}, {20, 1 << 20}}
	for _, c := range cases {
		if got := Dim(c.n); got != c.want {
			t.Errorf("Dim(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDimPanics(t *testing.T) {
	for _, n := range []int{-1, 63, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Dim(%d) did not panic", n)
				}
			}()
			Dim(n)
		}()
	}
}

func TestBitHelpers(t *testing.T) {
	if !BitSet(0b1010, 1) || BitSet(0b1010, 0) {
		t.Error("BitSet wrong")
	}
	if FlipBit(0b1010, 1) != 0b1000 {
		t.Error("FlipBit wrong")
	}
	if SetBit(0, 3, true) != 8 || SetBit(8, 3, false) != 0 {
		t.Error("SetBit wrong")
	}
}

func TestInsertZeroBit(t *testing.T) {
	// Inserting a zero at position q enumerates exactly the indices with
	// bit q clear, in increasing order.
	for q := 0; q < 5; q++ {
		seen := map[uint64]bool{}
		prev := int64(-1)
		for rest := uint64(0); rest < 16; rest++ {
			x := InsertZeroBit(rest, q)
			if BitSet(x, q) {
				t.Fatalf("InsertZeroBit(%d,%d)=%d has bit %d set", rest, q, x, q)
			}
			if seen[x] {
				t.Fatalf("duplicate index %d", x)
			}
			seen[x] = true
			if int64(x) <= prev {
				t.Fatalf("not increasing at rest=%d q=%d", rest, q)
			}
			prev = int64(x)
		}
	}
}

func TestInsertTwoZeroBits(t *testing.T) {
	for _, pq := range [][2]int{{0, 1}, {1, 3}, {2, 0}, {4, 2}} {
		p, q := pq[0], pq[1]
		seen := map[uint64]bool{}
		for rest := uint64(0); rest < 8; rest++ {
			x := InsertTwoZeroBits(rest, p, q)
			if BitSet(x, p) || BitSet(x, q) {
				t.Fatalf("bits %d,%d not clear in %b", p, q, x)
			}
			if seen[x] {
				t.Fatalf("duplicate %d", x)
			}
			seen[x] = true
		}
	}
}

func TestInsertZeroBitProperty(t *testing.T) {
	f := func(rest uint16, qRaw uint8) bool {
		q := int(qRaw % 16)
		x := InsertZeroBit(uint64(rest), q)
		// Removing the inserted bit recovers rest.
		low := x & (1<<uint(q) - 1)
		high := x >> uint(q+1) << uint(q)
		return low|high == uint64(rest) && !BitSet(x, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPopCountParity(t *testing.T) {
	if PopCount(0) != 0 || PopCount(0xFF) != 8 || PopCount(1<<63) != 1 {
		t.Error("PopCount wrong")
	}
	if Parity(0b111) != 1 || Parity(0b11) != 0 {
		t.Error("Parity wrong")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-10) {
		t.Error("should be almost equal")
	}
	if AlmostEqual(1.0, 1.001, 1e-10) {
		t.Error("should differ")
	}
	if !AlmostEqualC(1+1i, 1+1i+1e-13, 1e-10) {
		t.Error("complex should be almost equal")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	b := a.Split()
	// Streams should not be identical.
	same := true
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Error("split stream identical to parent")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v far from 0.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Errorf("normal moments off: mean=%v var=%v", mean, variance)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(4)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(5)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestQubitError(t *testing.T) {
	err := QubitError(5, 3)
	if err == nil {
		t.Fatal("nil error")
	}
}
