// Package core holds shared primitives used across the simulator stack:
// numeric tolerances, a deterministic splittable RNG, bit-twiddling helpers
// for amplitude indexing, and common error types.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Numeric tolerances used throughout the code base.
const (
	// Eps is the general-purpose absolute tolerance for comparing
	// floating-point quantities derived from double-precision amplitudes.
	Eps = 1e-10
	// CoeffEps is the threshold below which operator coefficients are
	// dropped during algebraic simplification (Pauli/fermionic algebra).
	CoeffEps = 1e-12
	// ChemicalAccuracy is 1 milli-hartree, the convergence target used by
	// the paper's Adapt-VQE experiment (Figure 5).
	ChemicalAccuracy = 1e-3
)

// ErrQubitOutOfRange reports a gate or measurement referencing a qubit
// index outside the register.
var ErrQubitOutOfRange = errors.New("core: qubit index out of range")

// ErrDimensionMismatch reports operands whose dimensions are incompatible.
var ErrDimensionMismatch = errors.New("core: dimension mismatch")

// ErrNotConverged reports an iterative method that exhausted its budget.
var ErrNotConverged = errors.New("core: iteration did not converge")

// ErrInvalidArgument reports a caller error detected at an API boundary.
var ErrInvalidArgument = errors.New("core: invalid argument")

// QubitError wraps ErrQubitOutOfRange with context.
func QubitError(q, n int) error {
	return fmt.Errorf("%w: qubit %d on %d-qubit register", ErrQubitOutOfRange, q, n)
}

// AlmostEqual reports whether a and b differ by less than tol.
func AlmostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) < tol
}

// AlmostEqualC reports whether complex values a and b differ by less than
// tol in modulus.
func AlmostEqualC(a, b complex128, tol float64) bool {
	d := a - b
	return math.Hypot(real(d), imag(d)) < tol
}

// Dim returns the Hilbert-space dimension 2^n for an n-qubit register.
// It panics for n < 0 or n > 62 (which would overflow the index space).
func Dim(n int) int {
	if n < 0 || n > 62 {
		panic(fmt.Sprintf("core: invalid qubit count %d", n))
	}
	return 1 << uint(n)
}

// BitSet reports whether bit q of index x is set.
func BitSet(x uint64, q int) bool { return x>>uint(q)&1 == 1 }

// FlipBit returns x with bit q flipped.
func FlipBit(x uint64, q int) uint64 { return x ^ 1<<uint(q) }

// SetBit returns x with bit q set to v.
func SetBit(x uint64, q int, v bool) uint64 {
	if v {
		return x | 1<<uint(q)
	}
	return x &^ (1 << uint(q))
}

// InsertZeroBit inserts a zero bit at position q, shifting higher bits
// left. It maps a (n-1)-bit "rest" index to the n-bit index whose bit q is
// zero — the standard trick for iterating amplitude pairs touched by a
// single-qubit gate.
func InsertZeroBit(rest uint64, q int) uint64 {
	mask := uint64(1)<<uint(q) - 1
	return (rest&^mask)<<1 | rest&mask
}

// InsertTwoZeroBits inserts zero bits at positions p and q (positions in
// the final index, p != q), used for two-qubit gate enumeration.
func InsertTwoZeroBits(rest uint64, p, q int) uint64 {
	if p > q {
		p, q = q, p
	}
	x := InsertZeroBit(rest, p)
	return InsertZeroBit(x, q)
}

// PopCount returns the number of set bits in x. Thin wrapper kept for call
// sites that predate math/bits usage in this code base.
func PopCount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Parity returns 1 if x has an odd number of set bits, else 0.
func Parity(x uint64) int { return PopCount(x) & 1 }

// RNG is a small, fast, deterministic splittable pseudo-random generator
// (splitmix64 core). It is not cryptographically secure; it exists so that
// simulations are reproducible across runs and so worker goroutines can
// draw from independent streams without locking.
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

// Split returns a new generator whose stream is independent of r's.
func (r *RNG) Split() *RNG { return &RNG{s: r.Uint64()*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("core: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			v := r.Float64()
			return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
		}
	}
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
