package xacc

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/cluster"
	"repro/internal/pauli"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// faultyClusterOptions returns a deterministic fault configuration that
// drops/corrupts transfers but always recovers under retry.
func faultyClusterOptions(seed uint64) cluster.Options {
	return cluster.Options{
		Fault: resilience.NewFaultInjector(resilience.FaultConfig{
			Seed:        seed,
			DropProb:    0.1,
			CorruptProb: 0.1,
			MaxFaults:   500,
		}),
		Retry: resilience.RetryPolicy{MaxAttempts: 12, BaseDelay: 5 * time.Microsecond},
	}
}

// TestFaultDrillH2VQEOnCluster is the end-to-end fault drill: a full H2
// VQE on the multi-rank backend with a seeded fault injector behind
// every block exchange must converge to the same energy as the
// fault-free run, and the recovery telemetry must show the faults were
// actually hit and repaired.
func TestFaultDrillH2VQEOnCluster(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, err := chem.FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := ansatz.NewUCCSD(4, 2)

	clean := &VQE{Observable: h, Ansatz: u, Accelerator: &ClusterAccelerator{Ranks: 4}, MaxIter: 2000}
	cleanRes, err := clean.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cleanRes.Energy-fci.Energy) > 1e-4 {
		t.Fatalf("fault-free run off FCI: %v vs %v", cleanRes.Energy, fci.Energy)
	}

	telemetry.Enable()
	retriesBefore := telemetry.GetCounter("cluster.comm.retries").Value()
	opts := faultyClusterOptions(1234)
	drill := &VQE{
		Observable:  h,
		Ansatz:      u,
		Accelerator: &ClusterAccelerator{Ranks: 4, Resilience: opts},
		MaxIter:     2000,
	}
	drillRes, err := drill.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every fault is repaired exactly (retry from the intact source), so
	// the faulted trajectory is the clean trajectory.
	if math.Abs(drillRes.Energy-cleanRes.Energy) > 1e-10 {
		t.Errorf("fault drill energy %v != clean %v", drillRes.Energy, cleanRes.Energy)
	}
	if opts.Fault.Injected() == 0 {
		t.Fatal("no faults injected; drill exercised nothing")
	}
	if got := telemetry.GetCounter("cluster.comm.retries").Value(); got <= retriesBefore {
		t.Errorf("no retries recorded (%d → %d) despite %d injected faults",
			retriesBefore, got, opts.Fault.Injected())
	}
}

// TestFallbackDegradesToSV: a cluster whose links never deliver must
// fall back to the single-node backend and still produce the answer.
func TestFallbackDegradesToSV(t *testing.T) {
	telemetry.Enable()
	brokenCluster := &ClusterAccelerator{
		Ranks: 4,
		Resilience: cluster.Options{
			Fault: resilience.NewFaultInjector(resilience.FaultConfig{Seed: 5, DropProb: 1}),
			Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
		},
	}
	fb := &FallbackAccelerator{Chain: []Accelerator{brokenCluster, &SVAccelerator{}}}
	// 6-qubit GHZ: wide enough that the cluster keeps 4 ranks and must
	// exchange blocks (a 2-qubit circuit would clamp to 1 rank and never
	// touch the faulty links).
	ghz := circuit.New(6).H(0)
	for q := 0; q+1 < 6; q++ {
		ghz.CX(q, q+1)
	}
	obs := pauli.NewOp().Add(pauli.MustParse("ZZZZZZ"), 1)

	activationsBefore := telemetry.GetCounter("xacc.fallback.activations").Value()
	e, err := fb.Expectation(context.Background(), ghz, obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("fallback ⟨Z⊗6⟩ = %v, want 1", e)
	}
	if got := telemetry.GetCounter("xacc.fallback.activations").Value(); got <= activationsBefore {
		t.Error("fallback served the request without recording an activation")
	}

	res, err := fb.Execute(context.Background(), ghz, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probabilities[0]-0.5) > 1e-9 {
		t.Error("fallback Execute distribution wrong")
	}
}

// TestFallbackChainExhaustion: when every member fails the caller gets
// the last cause, wrapped.
func TestFallbackChainExhaustion(t *testing.T) {
	broken := func(seed uint64) Accelerator {
		return &ClusterAccelerator{
			Ranks: 4,
			Resilience: cluster.Options{
				Fault: resilience.NewFaultInjector(resilience.FaultConfig{Seed: seed, DropProb: 1}),
				Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
			},
		}
	}
	fb := &FallbackAccelerator{Chain: []Accelerator{broken(1), broken(2)}}
	obs := pauli.NewOp().Add(pauli.MustParse("ZZZZZZ"), 1)
	_, err := fb.Expectation(context.Background(), circuit.New(6).H(5), obs)
	if !errors.Is(err, resilience.ErrRetriesExhausted) {
		t.Fatalf("want wrapped ErrRetriesExhausted, got %v", err)
	}
}

// TestFallbackDoesNotOutliveDeadline: a canceled context must stop the
// chain walk — degrading to a slower backend after walltime expiry would
// defeat the budget.
func TestFallbackDoesNotOutliveDeadline(t *testing.T) {
	fb := &FallbackAccelerator{Chain: []Accelerator{&SVAccelerator{}, &SVAccelerator{}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obs := pauli.NewOp().Add(pauli.MustParse("ZZ"), 1)
	if _, err := fb.Expectation(ctx, bellCircuit(), obs); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestResilientAcceleratorRegistered: the nwq-resilient chain is in the
// registry and works end to end.
func TestResilientAcceleratorRegistered(t *testing.T) {
	a, err := GetAccelerator("nwq-resilient")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Name(), "nwq-cluster") || !strings.Contains(a.Name(), "nwq-sv") {
		t.Errorf("unexpected chain name %q", a.Name())
	}
	obs := pauli.NewOp().Add(pauli.MustParse("ZZ"), 1)
	e, err := a.Expectation(context.Background(), bellCircuit(), obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("nwq-resilient ⟨ZZ⟩ = %v", e)
	}
	if a.NumQubitsLimit() < 30 {
		t.Errorf("chain limit %d below its most capable member", a.NumQubitsLimit())
	}
}

// cancelAfterAccelerator wraps SVAccelerator and fires a cancel func
// after a fixed number of expectation calls — a deterministic stand-in
// for a walltime expiring mid-optimization.
type cancelAfterAccelerator struct {
	SVAccelerator
	calls  int
	after  int
	cancel context.CancelFunc
}

func (a *cancelAfterAccelerator) Expectation(_ context.Context, prep *circuit.Circuit, obs *pauli.Op) (float64, error) {
	a.calls++
	if a.calls == a.after {
		a.cancel()
	}
	// Deliberately ignore ctx: the VQE loop's iteration-boundary check is
	// what must detect the cancellation.
	return a.SVAccelerator.Expectation(context.Background(), prep, obs)
}

// TestVQEExecuteContextReturnsBestSoFar: when the context dies
// mid-optimization, ExecuteContext degrades gracefully — best energy so
// far, Interrupted flag, no error.
func TestVQEExecuteContextReturnsBestSoFar(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	acc := &cancelAfterAccelerator{after: 25, cancel: cancel}
	alg := &VQE{Observable: h, Ansatz: u, Accelerator: acc, MaxIter: 2000}
	res, err := alg.ExecuteContext(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("mid-run cancellation not flagged")
	}
	if math.IsNaN(res.Energy) || res.Energy > 0 {
		t.Errorf("unusable best-so-far energy %v", res.Energy)
	}
	if res.EnergyEvaluations >= 100 {
		t.Errorf("optimization kept running after cancel: %d evaluations", res.EnergyEvaluations)
	}
}
