package xacc

// The accelerator registry. Earlier revisions kept a bare
// map[string]func() Accelerator behind package-level functions; the job
// daemon needs more than that — construction options at lookup time (a
// submitted RunSpec carries worker/rank/fault settings), and an
// enumerable catalog for its capabilities endpoint — so the registry is
// now a first-class type. The old package-level helpers survive as thin
// deprecated wrappers over DefaultRegistry.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/density"
)

// AcceleratorOptions parameterize backend construction at lookup time.
// Every field is optional; a backend reads only what applies to it and
// falls back to its documented default otherwise.
type AcceleratorOptions struct {
	// Workers for parallel simulation (0 = GOMAXPROCS; serial backends
	// ignore it).
	Workers int
	// Ranks for the simulated multi-node backends (0 = backend default).
	Ranks int
	// Transpile applies gate fusion before execution (state-vector).
	Transpile bool
	// Seed for sampling.
	Seed uint64
	// Resilience carries fault injection / verified communication into
	// cluster backends.
	Resilience cluster.Options
	// Noise attaches a noise model to the density-matrix backend.
	Noise *density.NoiseModel
}

// Entry describes one registered backend: a construction function plus
// the metadata the capabilities endpoint serves.
type Entry struct {
	// Description is the one-line human summary in List output.
	Description string
	// Factory builds an accelerator honoring the given options.
	Factory func(AcceleratorOptions) Accelerator
}

// Info is the catalog row List returns — what `GET /v1/capabilities`
// serves per backend.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// QubitLimit is the default-configuration register bound.
	QubitLimit int `json:"qubit_limit"`
}

// Registry is a concurrency-safe accelerator catalog, mirroring XACC's
// service registry. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]Entry{}}
}

// Register installs (or replaces) a named backend entry. An entry without
// a factory is rejected.
func (r *Registry) Register(name string, e Entry) error {
	if name == "" || e.Factory == nil {
		return fmt.Errorf("%w: xacc: registry entry needs a name and a factory", core.ErrInvalidArgument)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = e
	return nil
}

// New instantiates a registered backend with the given options.
func (r *Registry) New(name string, o AcceleratorOptions) (Accelerator, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: no accelerator %q (have %v)", core.ErrInvalidArgument, name, r.Names())
	}
	return e.Factory(o), nil
}

// Names lists registered backend names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// List returns the catalog sorted by name. Each backend is instantiated
// once with default options to read its qubit limit.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.entries))
	for name, e := range r.entries {
		out = append(out, Info{
			Name:        name,
			Description: e.Description,
			QubitLimit:  e.Factory(AcceleratorOptions{}).NumQubitsLimit(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DefaultRegistry holds the built-in backends; package init registers
// them exactly as simulators register with the real XACC.
var DefaultRegistry = NewRegistry()

func init() {
	must := func(err error) {
		if err != nil {
			panic(fmt.Errorf("xacc: registering built-in backends: %w", err))
		}
	}
	must(DefaultRegistry.Register("nwq-sv", Entry{
		Description: "single-node state-vector engine (goroutine-parallel)",
		Factory: func(o AcceleratorOptions) Accelerator {
			return &SVAccelerator{Workers: o.Workers, Transpile: o.Transpile, Seed: o.Seed}
		},
	}))
	must(DefaultRegistry.Register("nwq-sv-serial", Entry{
		Description: "single-node state-vector engine, forced serial",
		Factory: func(o AcceleratorOptions) Accelerator {
			return &SVAccelerator{Workers: 1, Transpile: o.Transpile, Seed: o.Seed}
		},
	}))
	must(DefaultRegistry.Register("nwq-cluster", Entry{
		Description: "simulated multi-rank cluster with verified communication",
		Factory: func(o AcceleratorOptions) Accelerator {
			ranks := o.Ranks
			if ranks == 0 {
				ranks = 4
			}
			return &ClusterAccelerator{Ranks: ranks, Resilience: o.Resilience}
		},
	}))
	must(DefaultRegistry.Register("nwq-dm", Entry{
		Description: "density-matrix engine with optional noise",
		Factory: func(o AcceleratorOptions) Accelerator {
			return &DMAccelerator{Noise: o.Noise}
		},
	}))
	// nwq-resilient degrades from the multi-rank cluster to the
	// single-node engine when cluster communication fails for good.
	must(DefaultRegistry.Register("nwq-resilient", Entry{
		Description: "cluster backend degrading to single-node on persistent faults",
		Factory: func(o AcceleratorOptions) Accelerator {
			ranks := o.Ranks
			if ranks == 0 {
				ranks = 4
			}
			return &FallbackAccelerator{Chain: []Accelerator{
				&ClusterAccelerator{Ranks: ranks, Resilience: o.Resilience},
				&SVAccelerator{Workers: o.Workers, Seed: o.Seed},
			}}
		},
	}))
}

// RegisterAccelerator installs a named backend factory in DefaultRegistry.
//
// Deprecated: use DefaultRegistry.Register, which carries a description
// and lookup-time options.
func RegisterAccelerator(name string, factory func() Accelerator) {
	_ = DefaultRegistry.Register(name, Entry{
		Factory: func(AcceleratorOptions) Accelerator { return factory() },
	})
}

// GetAccelerator instantiates a registered backend with default options.
//
// Deprecated: use DefaultRegistry.New.
func GetAccelerator(name string) (Accelerator, error) {
	return DefaultRegistry.New(name, AcceleratorOptions{})
}

// AcceleratorNames lists registered backends, sorted.
//
// Deprecated: use DefaultRegistry.Names.
func AcceleratorNames() []string { return DefaultRegistry.Names() }
