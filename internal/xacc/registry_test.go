package xacc

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestRegistryRegisterAndNew(t *testing.T) {
	r := NewRegistry()
	err := r.Register("toy", Entry{
		Description: "test backend",
		Factory: func(o AcceleratorOptions) Accelerator {
			return &SVAccelerator{Workers: o.Workers}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := r.New("toy", AcceleratorOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sv, ok := acc.(*SVAccelerator); !ok || sv.Workers != 2 {
		t.Errorf("options not threaded into the factory: %#v", acc)
	}
}

func TestRegistryRejectsBadEntries(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", Entry{Factory: func(AcceleratorOptions) Accelerator { return nil }}); !errors.Is(err, core.ErrInvalidArgument) {
		t.Errorf("nameless entry accepted: %v", err)
	}
	if err := r.Register("nofactory", Entry{}); !errors.Is(err, core.ErrInvalidArgument) {
		t.Errorf("factoryless entry accepted: %v", err)
	}
	if _, err := r.New("missing", AcceleratorOptions{}); !errors.Is(err, core.ErrInvalidArgument) {
		t.Errorf("unknown lookup should fail with ErrInvalidArgument, got %v", err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := r.Register(n, Entry{Factory: func(AcceleratorOptions) Accelerator { return &SVAccelerator{} }}); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestDefaultRegistryCatalog(t *testing.T) {
	// The built-in backend set is the daemon's capabilities contract.
	want := map[string]bool{
		"nwq-sv": false, "nwq-sv-serial": false, "nwq-cluster": false,
		"nwq-dm": false, "nwq-resilient": false,
	}
	for _, info := range DefaultRegistry.List() {
		if _, known := want[info.Name]; known {
			want[info.Name] = true
		}
		if info.QubitLimit <= 0 {
			t.Errorf("%s: QubitLimit = %d, want > 0", info.Name, info.QubitLimit)
		}
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("built-in backend %q missing from List()", name)
		}
	}
}

func TestClusterOptionsRespected(t *testing.T) {
	acc, err := DefaultRegistry.New("nwq-cluster", AcceleratorOptions{Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cl, ok := acc.(*ClusterAccelerator); !ok || cl.Ranks != 8 {
		t.Errorf("rank option not honored: %#v", acc)
	}
	// Rank default applies when unspecified.
	acc, err = DefaultRegistry.New("nwq-cluster", AcceleratorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cl, ok := acc.(*ClusterAccelerator); !ok || cl.Ranks != 4 {
		t.Errorf("default rank count wrong: %#v", acc)
	}
}

func TestDeprecatedWrappers(t *testing.T) {
	RegisterAccelerator("legacy-test", func() Accelerator { return &SVAccelerator{Workers: 1} })
	acc, err := GetAccelerator("legacy-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := acc.(*SVAccelerator); !ok {
		t.Errorf("legacy factory not preserved: %#v", acc)
	}
	found := false
	for _, n := range AcceleratorNames() {
		if n == "legacy-test" {
			found = true
		}
	}
	if !found {
		t.Errorf("legacy-registered backend missing from AcceleratorNames: %v", AcceleratorNames())
	}
}
