// Package xacc is the reproduction's stand-in for the XACC programming
// framework (paper §3): a hardware-agnostic accelerator abstraction with a
// plugin-style registry, plus algorithm front-ends (VQE, Adapt-VQE, QPE)
// that compile an observable + ansatz into backend executions and drive
// the classical optimization loop. NWQ-Sim's backends (single-node
// state vector, multi-rank cluster, density matrix) register themselves
// here exactly as simulators register with the real XACC.
package xacc

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/pauli"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// Backend instruments shared by every registered accelerator: one timer
// per Accelerator entry point, so a run report shows how much wall clock
// went to circuit execution versus expectation evaluation regardless of
// which backend served it.
var (
	mExecute     = telemetry.GetTimer("xacc.execute")
	mExpectation = telemetry.GetTimer("xacc.expectation")
)

// ExecutionResult carries what a backend produced for one circuit.
type ExecutionResult struct {
	// Counts histograms sampled outcomes (nil when shots == 0).
	Counts map[uint64]int
	// Probabilities is the exact outcome distribution when the backend
	// can provide it (simulators can; hardware cannot).
	Probabilities []float64
}

// Accelerator is the backend abstraction: anything that can run circuits
// and evaluate observables. Both entry points take a context so a
// walltime budget (or interactive cancel) propagates into the engine —
// backends honor it between (not within) gate applications.
type Accelerator interface {
	Name() string
	NumQubitsLimit() int
	// Execute runs a circuit from |0…0⟩ and returns measurement data.
	Execute(ctx context.Context, c *circuit.Circuit, shots int) (*ExecutionResult, error)
	// Expectation returns ⟨prep|obs|prep⟩ by whatever strategy the
	// backend supports best (direct calculation for simulators).
	Expectation(ctx context.Context, prep *circuit.Circuit, obs *pauli.Op) (float64, error)
}

// SVAccelerator is the single-node state-vector backend (NWQ-Sim's
// CPU/GPU engine; goroutine-parallel here).
type SVAccelerator struct {
	Workers   int
	Transpile bool
	Seed      uint64
}

// Name implements Accelerator.
func (a *SVAccelerator) Name() string { return "nwq-sv" }

// NumQubitsLimit implements Accelerator (memory-bound).
func (a *SVAccelerator) NumQubitsLimit() int { return 30 }

// Execute implements Accelerator.
func (a *SVAccelerator) Execute(ctx context.Context, c *circuit.Circuit, shots int) (*ExecutionResult, error) {
	defer mExecute.Since(telemetry.Now())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := state.New(c.NumQubits, state.Options{Workers: a.Workers, Seed: a.Seed})
	if a.Transpile {
		s.RunOptimized(c)
	} else {
		s.Run(c)
	}
	res := &ExecutionResult{Probabilities: s.Probabilities()}
	if shots > 0 {
		res.Counts = s.SampleCounts(shots)
	}
	return res, nil
}

// Expectation implements Accelerator with the direct method: the
// observable is compiled into a batched X-mask plan and every term group
// is scored in one pass over the final amplitudes.
func (a *SVAccelerator) Expectation(ctx context.Context, prep *circuit.Circuit, obs *pauli.Op) (float64, error) {
	defer mExpectation.Since(telemetry.Now())
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if obs.MaxQubit() >= prep.NumQubits {
		return 0, core.QubitError(obs.MaxQubit(), prep.NumQubits)
	}
	s := state.New(prep.NumQubits, state.Options{Workers: a.Workers, Seed: a.Seed})
	if a.Transpile {
		s.RunOptimized(prep)
	} else {
		s.Run(prep)
	}
	return pauli.NewPlan(obs).Evaluate(s, pauli.ExpectationOptions{Workers: a.Workers}), nil
}

// ClusterAccelerator is the simulated multi-node backend. Resilience
// carries the fault-injection / verified-communication configuration
// into every cluster it builds; the zero value is the plain fast path.
type ClusterAccelerator struct {
	Ranks      int
	Resilience cluster.Options
}

// Name implements Accelerator.
func (a *ClusterAccelerator) Name() string { return "nwq-cluster" }

// NumQubitsLimit implements Accelerator.
func (a *ClusterAccelerator) NumQubitsLimit() int { return 34 }

// effectiveRanks clamps the configured rank count so that every rank
// keeps at least two local qubits (small circuits run on fewer ranks).
func (a *ClusterAccelerator) effectiveRanks(n int) int {
	ranks := a.Ranks
	if ranks < 1 {
		ranks = 1
	}
	for ranks > 1 && ranks > 1<<uint(n-2) {
		ranks /= 2
	}
	return ranks
}

// Execute implements Accelerator.
func (a *ClusterAccelerator) Execute(ctx context.Context, c *circuit.Circuit, shots int) (*ExecutionResult, error) {
	defer mExecute.Since(telemetry.Now())
	cl, err := cluster.NewWithOptions(c.NumQubits, a.effectiveRanks(c.NumQubits), a.Resilience)
	if err != nil {
		return nil, err
	}
	if err := cl.RunContext(ctx, c); err != nil {
		return nil, err
	}
	s, err := cl.ToState()
	if err != nil {
		return nil, err
	}
	res := &ExecutionResult{Probabilities: s.Probabilities()}
	if shots > 0 {
		res.Counts = s.SampleCounts(shots)
	}
	return res, nil
}

// Expectation implements Accelerator.
func (a *ClusterAccelerator) Expectation(ctx context.Context, prep *circuit.Circuit, obs *pauli.Op) (float64, error) {
	defer mExpectation.Since(telemetry.Now())
	cl, err := cluster.NewWithOptions(prep.NumQubits, a.effectiveRanks(prep.NumQubits), a.Resilience)
	if err != nil {
		return 0, err
	}
	if err := cl.RunContext(ctx, prep); err != nil {
		return 0, err
	}
	s, err := cl.ToState()
	if err != nil {
		return 0, err
	}
	// Workers 0 resolves to GOMAXPROCS: the gathered state is read with
	// the batched engine at full node parallelism.
	return pauli.NewPlan(obs).Evaluate(s, pauli.ExpectationOptions{}), nil
}

// DMAccelerator is the density-matrix backend with optional noise.
type DMAccelerator struct {
	Noise *density.NoiseModel
}

// Name implements Accelerator.
func (a *DMAccelerator) Name() string { return "nwq-dm" }

// NumQubitsLimit implements Accelerator (ρ is 4ⁿ).
func (a *DMAccelerator) NumQubitsLimit() int { return 12 }

// Execute implements Accelerator.
func (a *DMAccelerator) Execute(ctx context.Context, c *circuit.Circuit, shots int) (*ExecutionResult, error) {
	defer mExecute.Since(telemetry.Now())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := density.New(c.NumQubits)
	if err := m.Run(c, a.Noise); err != nil {
		return nil, err
	}
	res := &ExecutionResult{Probabilities: m.Probabilities()}
	if shots > 0 {
		// Sample from the diagonal.
		rng := core.NewRNG(0x5eed)
		res.Counts = sampleFromProbs(res.Probabilities, shots, rng)
	}
	return res, nil
}

// Expectation implements Accelerator.
func (a *DMAccelerator) Expectation(ctx context.Context, prep *circuit.Circuit, obs *pauli.Op) (float64, error) {
	defer mExpectation.Since(telemetry.Now())
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	m := density.New(prep.NumQubits)
	if err := m.Run(prep, a.Noise); err != nil {
		return 0, err
	}
	return m.Expectation(obs), nil
}

func sampleFromProbs(probs []float64, shots int, rng *core.RNG) map[uint64]int {
	cum := make([]float64, len(probs)+1)
	for i, p := range probs {
		cum[i+1] = cum[i] + p
	}
	out := map[uint64]int{}
	for k := 0; k < shots; k++ {
		r := rng.Float64() * cum[len(probs)]
		lo, hi := 0, len(probs)
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(probs) {
			lo = len(probs) - 1
		}
		out[uint64(lo)]++
	}
	return out
}
