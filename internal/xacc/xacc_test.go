package xacc

import (
	"context"
	"math"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/density"
	"repro/internal/pauli"
)

func TestRegistryContainsBuiltins(t *testing.T) {
	names := AcceleratorNames()
	want := map[string]bool{"nwq-sv": false, "nwq-sv-serial": false, "nwq-cluster": false, "nwq-dm": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("builtin %q not registered", n)
		}
	}
}

func TestGetAcceleratorUnknown(t *testing.T) {
	if _, err := GetAccelerator("hal9000"); err == nil {
		t.Error("unknown accelerator resolved")
	}
}

func TestRegisterCustomAccelerator(t *testing.T) {
	RegisterAccelerator("test-custom", func() Accelerator { return &SVAccelerator{Workers: 1} })
	a, err := GetAccelerator("test-custom")
	if err != nil || a == nil {
		t.Fatal(err)
	}
}

func bellCircuit() *circuit.Circuit {
	return circuit.New(2).H(0).CX(0, 1)
}

func TestAllBackendsAgreeOnBell(t *testing.T) {
	obs := pauli.NewOp().Add(pauli.MustParse("ZZ"), 1)
	for _, name := range []string{"nwq-sv", "nwq-sv-serial", "nwq-cluster", "nwq-dm"} {
		a, err := GetAccelerator(name)
		if err != nil {
			t.Fatal(err)
		}
		e, err := a.Expectation(context.Background(), bellCircuit(), obs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(e-1) > 1e-9 {
			t.Errorf("%s: ⟨ZZ⟩ = %v, want 1", name, e)
		}
		res, err := a.Execute(context.Background(), bellCircuit(), 0)
		if err != nil {
			t.Fatalf("%s execute: %v", name, err)
		}
		if math.Abs(res.Probabilities[0]-0.5) > 1e-9 || math.Abs(res.Probabilities[3]-0.5) > 1e-9 {
			t.Errorf("%s: Bell probabilities wrong", name)
		}
	}
}

func TestExecuteWithShots(t *testing.T) {
	a, _ := GetAccelerator("nwq-sv")
	res, err := a.Execute(context.Background(), bellCircuit(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for outcome, c := range res.Counts {
		if outcome == 1 || outcome == 2 {
			t.Errorf("impossible outcome %d sampled", outcome)
		}
		total += c
	}
	if total != 5000 {
		t.Errorf("shot total %d", total)
	}
}

func TestDMAcceleratorWithNoise(t *testing.T) {
	a := &DMAccelerator{Noise: density.DepolarizingModel(0.02, 0.05)}
	obs := pauli.NewOp().Add(pauli.MustParse("ZZ"), 1)
	e, err := a.Expectation(context.Background(), bellCircuit(), obs)
	if err != nil {
		t.Fatal(err)
	}
	// Noise shrinks the correlator strictly below 1 but not catastrophically.
	if e >= 1-1e-9 || e < 0.7 {
		t.Errorf("noisy ⟨ZZ⟩ = %v", e)
	}
}

func TestTranspilingBackendMatches(t *testing.T) {
	plain := &SVAccelerator{}
	fused := &SVAccelerator{Transpile: true}
	obs := pauli.NewOp().Add(pauli.MustParse("XX"), 0.5).Add(pauli.MustParse("ZI"), -0.25)
	c := circuit.New(2).H(0).T(0).CX(0, 1).RZ(0.3, 1).CX(0, 1)
	e1, err1 := plain.Expectation(context.Background(), c, obs)
	e2, err2 := fused.Expectation(context.Background(), c, obs)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(e1-e2) > 1e-10 {
		t.Errorf("transpiled expectation %v vs %v", e2, e1)
	}
}

func TestVQEAlgorithmH2(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	for _, optName := range []string{"nelder-mead", "lbfgs"} {
		alg := &VQE{Observable: h, Ansatz: u, Accelerator: &SVAccelerator{}, Optimizer: optName, MaxIter: 2000}
		res, err := alg.Execute(nil)
		if err != nil {
			t.Fatalf("%s: %v", optName, err)
		}
		if math.Abs(res.Energy-fci.Energy) > 1e-4 {
			t.Errorf("%s: E = %v vs FCI %v", optName, res.Energy, fci.Energy)
		}
		if res.EnergyEvaluations == 0 {
			t.Error("no evaluations counted")
		}
	}
}

func TestVQEAlgorithmValidation(t *testing.T) {
	u, _ := ansatz.NewUCCSD(4, 2)
	if _, err := (&VQE{Ansatz: u}).Execute(nil); err == nil {
		t.Error("missing observable accepted")
	}
	h := chem.QubitHamiltonian(chem.H2())
	alg := &VQE{Observable: h, Ansatz: u, Accelerator: &SVAccelerator{}, Optimizer: "magic"}
	if _, err := alg.Execute(nil); err == nil {
		t.Error("unknown optimizer accepted")
	}
	if _, err := (&VQE{Observable: h, Ansatz: u, Accelerator: &SVAccelerator{}}).Execute([]float64{1}); err == nil {
		t.Error("bad x0 length accepted")
	}
	wide := pauli.NewOp().Add(pauli.MustParse("IIIIIZ"), 1)
	if _, err := (&VQE{Observable: wide, Ansatz: u, Accelerator: &SVAccelerator{}}).Execute(nil); err == nil {
		t.Error("wide observable accepted")
	}
}

func TestNumQubitsLimits(t *testing.T) {
	for _, name := range AcceleratorNames() {
		a, err := GetAccelerator(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumQubitsLimit() < 2 {
			t.Errorf("%s: implausible qubit limit", name)
		}
	}
}

func TestAdaptVQEFrontEnd(t *testing.T) {
	m := chem.H2()
	fci, _ := chem.FCI(m)
	alg := &AdaptVQE{
		Observable:   chem.QubitHamiltonian(m),
		NumQubits:    4,
		NumElectrons: 2,
		Reference:    fci.Energy,
	}
	res, err := alg.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.Energy-fci.Energy) > 1e-3 {
		t.Errorf("adapt front-end: E %v vs FCI %v converged=%v", res.Energy, fci.Energy, res.Converged)
	}
	if _, err := (&AdaptVQE{}).Execute(); err == nil {
		t.Error("missing observable accepted")
	}
}

func TestQPEFrontEnd(t *testing.T) {
	m := chem.H2()
	fci, _ := chem.FCI(m)
	alg := &QPE{
		Observable:   chem.QubitHamiltonian(m),
		NumQubits:    4,
		NumElectrons: 2,
		Time:         0.8,
	}
	res, err := alg.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-fci.Energy) > 2*res.Resolution {
		t.Errorf("qpe front-end: %v vs FCI %v", res.Energy, fci.Energy)
	}
	if _, err := (&QPE{}).Execute(); err == nil {
		t.Error("missing observable accepted")
	}
}

func TestAcceleratorNames(t *testing.T) {
	for _, name := range []string{"nwq-sv", "nwq-cluster", "nwq-dm"} {
		a, err := GetAccelerator(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
	}
}

func TestDMAcceleratorShots(t *testing.T) {
	a := &DMAccelerator{Noise: density.DepolarizingModel(0.01, 0.02)}
	res, err := a.Execute(context.Background(), bellCircuit(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != 3000 {
		t.Errorf("shot total %d", total)
	}
	// Noise leaks some probability into the odd-parity outcomes.
	if res.Counts[0]+res.Counts[3] == 3000 {
		t.Error("no noise visible in sampled counts")
	}
}

func TestClusterAcceleratorSmallCircuitClamps(t *testing.T) {
	// A 2-qubit circuit on a 4-rank accelerator must clamp ranks rather
	// than fail.
	a := &ClusterAccelerator{Ranks: 4}
	res, err := a.Execute(context.Background(), bellCircuit(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) == 0 {
		t.Error("no counts")
	}
}
