package xacc

// FallbackAccelerator: graceful degradation across backends. When the
// preferred backend fails — e.g. the cluster's retry budget is exhausted
// on a flaky interconnect — the request is re-issued on the next backend
// in the chain instead of failing the whole VQE run. Context
// cancellation is never retried: a walltime expiry must not trigger a
// (potentially slower) fallback execution.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/pauli"
	"repro/internal/telemetry"
)

var (
	mFallbackActivations = telemetry.GetCounter("xacc.fallback.activations")
	mFallbackExhausted   = telemetry.GetCounter("xacc.fallback.exhausted")
)

// FallbackAccelerator tries each backend in Chain order.
type FallbackAccelerator struct {
	Chain []Accelerator
}

// Name implements Accelerator.
func (a *FallbackAccelerator) Name() string {
	names := make([]string, len(a.Chain))
	for i, acc := range a.Chain {
		names[i] = acc.Name()
	}
	return "fallback(" + strings.Join(names, "→") + ")"
}

// NumQubitsLimit implements Accelerator: the chain can serve whatever
// its most capable member can.
func (a *FallbackAccelerator) NumQubitsLimit() int {
	max := 0
	for _, acc := range a.Chain {
		if l := acc.NumQubitsLimit(); l > max {
			max = l
		}
	}
	return max
}

// Execute implements Accelerator.
func (a *FallbackAccelerator) Execute(ctx context.Context, c *circuit.Circuit, shots int) (*ExecutionResult, error) {
	var res *ExecutionResult
	err := a.each(ctx, func(acc Accelerator) error {
		r, err := acc.Execute(ctx, c, shots)
		if err == nil {
			res = r
		}
		return err
	})
	return res, err
}

// Expectation implements Accelerator.
func (a *FallbackAccelerator) Expectation(ctx context.Context, prep *circuit.Circuit, obs *pauli.Op) (float64, error) {
	var e float64
	err := a.each(ctx, func(acc Accelerator) error {
		v, err := acc.Expectation(ctx, prep, obs)
		if err == nil {
			e = v
		}
		return err
	})
	return e, err
}

// each walks the chain until op succeeds; a context error stops the walk
// immediately (degrading must not outlive the deadline).
func (a *FallbackAccelerator) each(ctx context.Context, op func(Accelerator) error) error {
	if len(a.Chain) == 0 {
		return fmt.Errorf("%w: fallback accelerator has an empty chain", core.ErrInvalidArgument)
	}
	var lastErr error
	for i, acc := range a.Chain {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := op(acc); err != nil {
			if ctx.Err() != nil {
				return err
			}
			lastErr = err
			if i+1 < len(a.Chain) {
				mFallbackActivations.Inc()
			}
			continue
		}
		return nil
	}
	mFallbackExhausted.Inc()
	return fmt.Errorf("xacc: all %d accelerators in the fallback chain failed: %w", len(a.Chain), lastErr)
}
