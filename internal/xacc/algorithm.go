package xacc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/ansatz"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/qpe"
	"repro/internal/telemetry"
	"repro/internal/vqe"
)

// mObjective times one optimizer objective evaluation (ansatz compile +
// backend expectation) — the per-iteration cost of the framework loop.
var mObjective = telemetry.GetTimer("xacc.vqe.objective")

// VQE is the framework-level algorithm object (paper §3.1): it owns the
// observable, the ansatz, the backend, and the optimizer choice, and
// executes the full quantum-classical loop.
type VQE struct {
	Observable  *pauli.Op
	Ansatz      ansatz.Ansatz
	Accelerator Accelerator
	// Optimizer selects the classical routine: "nelder-mead" (default),
	// "spsa", "adam", "lbfgs".
	Optimizer string
	// MaxIter bounds the optimizer (0 = routine default).
	MaxIter int
	// OnIteration, when set, is called at the top of every optimizer
	// iteration with the best energy found so far — the progress hook the
	// job server streams from. A non-nil return halts the loop with
	// Interrupted set. Honored by the iteration-observable optimizers
	// (nelder-mead, lbfgs); spsa and adam ignore it.
	OnIteration func(iter int, energy float64) error
}

// VQEResult is the algorithm outcome.
type VQEResult struct {
	Energy            float64
	Params            []float64
	EnergyEvaluations int
	OptimizerResult   opt.Result
	// Interrupted is set when the loop stopped on a context deadline;
	// Energy/Params then hold the best point found before the cutoff.
	Interrupted bool
}

// Execute runs the loop from the given starting parameters (zeros if nil).
func (v *VQE) Execute(x0 []float64) (*VQEResult, error) {
	return v.ExecuteContext(context.Background(), x0)
}

// ExecuteContext runs the loop under a context. With the nelder-mead and
// lbfgs optimizers a deadline degrades gracefully: the loop halts at the
// next iteration boundary and returns the best energy so far with
// Interrupted set. The stateless-iteration optimizers (spsa, adam) have
// no safe halt point, so cancellation surfaces as an error there.
func (v *VQE) ExecuteContext(ctx context.Context, x0 []float64) (*VQEResult, error) {
	if v.Observable == nil || v.Ansatz == nil || v.Accelerator == nil {
		return nil, fmt.Errorf("%w: VQE needs observable, ansatz, accelerator", core.ErrInvalidArgument)
	}
	if v.Observable.MaxQubit() >= v.Ansatz.NumQubits() {
		return nil, core.QubitError(v.Observable.MaxQubit(), v.Ansatz.NumQubits())
	}
	if x0 == nil {
		x0 = make([]float64, v.Ansatz.NumParameters())
	}
	if len(x0) != v.Ansatz.NumParameters() {
		return nil, core.ErrDimensionMismatch
	}
	evals := 0
	objective := func(x []float64) float64 {
		defer mObjective.Since(telemetry.Now())
		evals++
		e, err := v.Accelerator.Expectation(ctx, v.Ansatz.Circuit(x), v.Observable)
		if err != nil {
			// Surfaced below via recover; wrapped so a panic that escapes
			// anyway is attributable.
			panic(fmt.Errorf("xacc: accelerator expectation: %w", err))
		}
		return e
	}
	var res opt.Result
	var execErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					execErr = err
					return
				}
				//vqelint:ignore panicdiscipline re-raising a foreign panic value unchanged
				panic(r)
			}
		}()
		switch v.Optimizer {
		case "", "nelder-mead":
			res = opt.NelderMead(objective, x0, opt.NelderMeadOptions{
				MaxIter: v.MaxIter,
				Observer: func(st *opt.NelderMeadState) error {
					if v.OnIteration != nil {
						_, f := st.Best()
						if err := v.OnIteration(st.Iter, f); err != nil {
							return err
						}
					}
					return ctx.Err()
				},
			})
		case "spsa":
			res = opt.SPSA(objective, x0, opt.SPSAOptions{MaxIter: v.MaxIter})
		case "adam":
			res = opt.Adam(objective, nil, x0, opt.AdamOptions{MaxIter: v.MaxIter})
		case "lbfgs":
			res = opt.LBFGS(objective, nil, x0, opt.LBFGSOptions{
				MaxIter: v.MaxIter,
				Observer: func(st *opt.LBFGSState) error {
					if v.OnIteration != nil {
						if err := v.OnIteration(st.Iter, st.F); err != nil {
							return err
						}
					}
					return ctx.Err()
				},
			})
		default:
			execErr = fmt.Errorf("%w: unknown optimizer %q", core.ErrInvalidArgument, v.Optimizer)
		}
	}()
	if execErr != nil {
		return nil, execErr
	}
	return &VQEResult{
		Energy:            res.F,
		Params:            res.X,
		EnergyEvaluations: evals,
		OptimizerResult:   res,
		Interrupted:       res.Interrupted,
	}, nil
}

// AdaptVQE is the framework front-end for the adaptive ansatz algorithm.
type AdaptVQE struct {
	Observable *pauli.Op
	// NumQubits / NumElectrons define the pool and reference determinant.
	NumQubits    int
	NumElectrons int
	// QubitPool switches to the single-Pauli pool (qubit-ADAPT).
	QubitPool bool
	// MaxIterations bounds the outer loop (default 30).
	MaxIterations int
	// Reference energy for the chemical-accuracy stop (NaN disables).
	Reference float64
}

// Execute runs the adaptive loop on the simulator backends (Adapt-VQE
// needs amplitude access for its gradient scan, so it does not take an
// arbitrary Accelerator).
func (a *AdaptVQE) Execute() (*vqe.AdaptResult, error) {
	return a.ExecuteContext(context.Background(), vqe.ResilienceOptions{})
}

// ExecuteContext runs the adaptive loop with deadline-aware cancellation
// and optional outer-loop checkpointing.
func (a *AdaptVQE) ExecuteContext(ctx context.Context, ro vqe.ResilienceOptions) (*vqe.AdaptResult, error) {
	if a.Observable == nil {
		return nil, fmt.Errorf("%w: AdaptVQE needs an observable", core.ErrInvalidArgument)
	}
	var pool *ansatz.Pool
	var err error
	if a.QubitPool {
		pool, err = ansatz.NewQubitPool(a.NumQubits, a.NumElectrons)
	} else {
		pool, err = ansatz.NewPool(a.NumQubits, a.NumElectrons)
	}
	if err != nil {
		return nil, err
	}
	ref := a.Reference
	if ref == 0 {
		ref = math.NaN()
	}
	return vqe.AdaptContext(ctx, a.Observable, pool, a.NumQubits, a.NumElectrons, vqe.AdaptOptions{
		MaxIterations: a.MaxIterations,
		Reference:     ref,
		EnergyTol:     core.ChemicalAccuracy,
	}, ro)
}

// QPE is the framework front-end for phase estimation.
type QPE struct {
	Observable   *pauli.Op
	NumQubits    int
	NumElectrons int // Hartree–Fock preparation
	Ancillas     int // default 7
	TrotterSteps int // default 4
	Time         float64
}

// Execute runs phase estimation with a Hartree–Fock input state.
func (q *QPE) Execute() (*qpe.Result, error) {
	if q.Observable == nil {
		return nil, fmt.Errorf("%w: QPE needs an observable", core.ErrInvalidArgument)
	}
	anc := q.Ancillas
	if anc == 0 {
		anc = 7
	}
	steps := q.TrotterSteps
	if steps == 0 {
		steps = 4
	}
	prep := qpe.HartreeFockPrep(q.NumQubits, q.NumElectrons)
	return qpe.Estimate(q.Observable, prep, q.NumQubits, qpe.Options{
		AncillaQubits: anc,
		Time:          q.Time,
		TrotterSteps:  steps,
	})
}
