package resilience

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type fakeState struct {
	Params []float64 `json:"params"`
	Energy float64   `json:"energy"`
	Iter   int       `json:"iter"`
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	in := fakeState{
		Params: []float64{0.1, -1.0 / 3.0, math.Pi, 1e-17, math.Nextafter(1, 2)},
		Energy: -1.137283834976,
		Iter:   42,
	}
	if err := SaveCheckpoint(path, "test-kind", in.Iter, &in); err != nil {
		t.Fatal(err)
	}
	var out fakeState
	kind, iter, err := LoadCheckpoint(path, &out)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "test-kind" || iter != 42 {
		t.Errorf("kind=%q iter=%d", kind, iter)
	}
	// Bit-exact float round-trip is what resume equivalence rests on.
	for i, v := range in.Params {
		if math.Float64bits(out.Params[i]) != math.Float64bits(v) {
			t.Errorf("param %d: %x != %x", i, out.Params[i], v)
		}
	}
	if math.Float64bits(out.Energy) != math.Float64bits(in.Energy) {
		t.Error("energy not bit-exact")
	}
}

func TestCheckpointOverwriteIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	for i := 0; i < 5; i++ {
		if err := SaveCheckpoint(path, "k", i, &fakeState{Iter: i}); err != nil {
			t.Fatal(err)
		}
	}
	var out fakeState
	if _, iter, err := LoadCheckpoint(path, &out); err != nil || iter != 4 {
		t.Fatalf("iter=%d err=%v", iter, err)
	}
	// No temp files may survive a successful commit sequence.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadCheckpointDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := SaveCheckpoint(path, "k", 1, &fakeState{Params: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the payload (keeps the JSON valid).
	flipped := strings.Replace(string(buf), "[1,2,3]", "[1,2,4]", 1)
	if flipped == string(buf) {
		t.Fatal("payload pattern not found")
	}
	if err := os.WriteFile(path, []byte(flipped), 0o644); err != nil {
		t.Fatal(err)
	}
	var out fakeState
	if _, _, err := LoadCheckpoint(path, &out); !errors.Is(err, ErrCheckpointInvalid) {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestLoadCheckpointRejectsBadVersionAndGarbage(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out fakeState
	if _, _, err := LoadCheckpoint(garbage, &out); !errors.Is(err, ErrCheckpointInvalid) {
		t.Errorf("garbage accepted: %v", err)
	}
	versioned := filepath.Join(dir, "versioned.json")
	raw, _ := json.Marshal(fakeState{})
	env := map[string]any{"version": 99, "kind": "k", "iteration": 0, "crc32c": 0, "payload": json.RawMessage(raw)}
	buf, _ := json.Marshal(env)
	if err := os.WriteFile(versioned, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(versioned, &out); !errors.Is(err, ErrCheckpointInvalid) {
		t.Errorf("future version accepted: %v", err)
	}
	if _, _, err := LoadCheckpoint(filepath.Join(dir, "missing.json"), &out); err == nil || errors.Is(err, ErrCheckpointInvalid) {
		t.Errorf("missing file should surface as an I/O error, got %v", err)
	}
}

func TestCheckpointKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := SaveCheckpoint(path, "lbfgs", 3, &fakeState{}); err != nil {
		t.Fatal(err)
	}
	kind, err := CheckpointKind(path)
	if err != nil || kind != "lbfgs" {
		t.Errorf("kind=%q err=%v", kind, err)
	}
}

func TestCadence(t *testing.T) {
	var every Cadence // zero value: every iteration
	for i := 1; i <= 3; i++ {
		if !every.Due(i) {
			t.Errorf("zero cadence skipped iter %d", i)
		}
	}
	c := Cadence{Interval: 3}
	var fired []int
	for i := 1; i <= 10; i++ {
		if c.Due(i) {
			fired = append(fired, i)
		}
	}
	want := []int{1, 4, 7, 10}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}
