package resilience

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseWalltime parses a walltime budget in the formats SLURM's --time
// accepts — "minutes", "MM:SS"-style "minutes:seconds", "HH:MM:SS",
// "D-HH", "D-HH:MM", "D-HH:MM:SS" — plus Go duration strings ("90s",
// "1h30m") for convenience on the command line.
func ParseWalltime(s string) (time.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("resilience: empty walltime")
	}
	// Go duration syntax first: unambiguous because SLURM forms never
	// contain unit letters.
	if strings.ContainsAny(s, "hmsuµn") {
		d, err := time.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("resilience: walltime %q: %w", s, err)
		}
		return d, nil
	}
	days := 0
	rest := s
	if i := strings.IndexByte(s, '-'); i >= 0 {
		d, err := strconv.Atoi(s[:i])
		if err != nil || d < 0 {
			return 0, fmt.Errorf("resilience: walltime %q: bad day count", s)
		}
		days = d
		rest = s[i+1:]
	}
	parts := strings.Split(rest, ":")
	nums := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("resilience: walltime %q: bad field %q", s, p)
		}
		nums[i] = v
	}
	var d time.Duration
	switch {
	case days > 0:
		// D-HH[:MM[:SS]]
		if len(nums) > 3 {
			return 0, fmt.Errorf("resilience: walltime %q: too many fields", s)
		}
		for len(nums) < 3 {
			nums = append(nums, 0)
		}
		d = time.Duration(nums[0])*time.Hour + time.Duration(nums[1])*time.Minute + time.Duration(nums[2])*time.Second
	case len(nums) == 1:
		// minutes (SLURM's bare-number form)
		d = time.Duration(nums[0]) * time.Minute
	case len(nums) == 2:
		// MM:SS
		d = time.Duration(nums[0])*time.Minute + time.Duration(nums[1])*time.Second
	case len(nums) == 3:
		// HH:MM:SS
		d = time.Duration(nums[0])*time.Hour + time.Duration(nums[1])*time.Minute + time.Duration(nums[2])*time.Second
	default:
		return 0, fmt.Errorf("resilience: walltime %q: too many fields", s)
	}
	return d + time.Duration(days)*24*time.Hour, nil
}

// WithWalltime returns a context canceled after the walltime budget,
// minus a safety margin reserved for writing the final checkpoint
// (clamped so tiny budgets still get a usable window).
func WithWalltime(parent context.Context, budget, margin time.Duration) (context.Context, context.CancelFunc) {
	if margin < 0 {
		margin = 0
	}
	effective := budget - margin
	if effective < budget/2 {
		effective = budget / 2
	}
	return context.WithTimeout(parent, effective)
}
