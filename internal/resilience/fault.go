package resilience

import (
	"sync"
	"time"

	"repro/internal/core"
)

// FaultKind classifies one injected communication fault.
type FaultKind int

const (
	// FaultNone: the transfer proceeds cleanly.
	FaultNone FaultKind = iota
	// FaultDrop: the payload never arrives (receiver times out).
	FaultDrop
	// FaultCorrupt: the payload arrives bit-flipped; the per-transfer
	// checksum catches it at the receiver.
	FaultCorrupt
	// FaultStall: the sending rank stalls transiently before the payload
	// goes out (models a busy NIC / OS jitter); the transfer succeeds.
	FaultStall
	// FaultSilent: the payload is corrupted *after* checksum
	// verification (models memory corruption past the transport layer);
	// only a state-level watchdog can catch it.
	FaultSilent
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	case FaultStall:
		return "stall"
	case FaultSilent:
		return "silent"
	}
	return "fault(?)"
}

// FaultConfig parameterizes an injector. Probabilities are per transfer
// and evaluated in order drop → corrupt → stall → silent from a single
// uniform draw, so the decision sequence is a deterministic function of
// the seed.
type FaultConfig struct {
	Seed        uint64
	DropProb    float64
	CorruptProb float64
	StallProb   float64
	SilentProb  float64
	// StallDelay is the simulated transient stall (default 50µs — long
	// enough to exercise the retry clock, short enough for tests).
	StallDelay time.Duration
	// MaxFaults bounds the total number of injected faults (0 =
	// unlimited). Drills set it so a run provably terminates even with
	// aggressive probabilities.
	MaxFaults int
}

// FaultInjector draws a deterministic fault sequence for simulated
// transfers. Safe for concurrent use: the pairwise exchange path calls
// Draw from every worker of the cluster's rank pool. Concurrency makes
// the *assignment* of faults to transfers scheduling-dependent, but the
// drawn sequence itself — and therefore the total fault census — depends
// only on the seed and the number of transfers.
type FaultInjector struct {
	mu       sync.Mutex
	cfg      FaultConfig
	rng      *core.RNG
	injected int
	byKind   [5]int
}

// NewFaultInjector builds an injector from cfg (nil-safe call sites
// treat a nil injector as fault-free).
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.StallDelay <= 0 {
		cfg.StallDelay = 50 * time.Microsecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xfa017 // arbitrary fixed default so Seed:0 is still deterministic
	}
	return &FaultInjector{cfg: cfg, rng: core.NewRNG(seed)}
}

// Draw decides the fault for the next transfer. A nil injector always
// returns FaultNone.
func (f *FaultInjector) Draw() FaultKind {
	if f == nil {
		return FaultNone
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.MaxFaults > 0 && f.injected >= f.cfg.MaxFaults {
		return FaultNone
	}
	u := f.rng.Float64()
	kind := FaultNone
	switch {
	case u < f.cfg.DropProb:
		kind = FaultDrop
	case u < f.cfg.DropProb+f.cfg.CorruptProb:
		kind = FaultCorrupt
	case u < f.cfg.DropProb+f.cfg.CorruptProb+f.cfg.StallProb:
		kind = FaultStall
	case u < f.cfg.DropProb+f.cfg.CorruptProb+f.cfg.StallProb+f.cfg.SilentProb:
		kind = FaultSilent
	}
	if kind != FaultNone {
		f.injected++
		f.byKind[kind]++
	}
	return kind
}

// PerturbIndex returns a deterministic index in [0, n) used to pick
// which amplitude of a corrupted payload gets flipped.
func (f *FaultInjector) PerturbIndex(n int) int {
	if f == nil || n <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Intn(n)
}

// StallDelay returns the configured transient-stall duration.
func (f *FaultInjector) StallDelay() time.Duration {
	if f == nil {
		return 0
	}
	return f.cfg.StallDelay
}

// Injected returns the total number of faults injected so far.
func (f *FaultInjector) Injected() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// InjectedByKind returns the per-kind fault census.
func (f *FaultInjector) InjectedByKind() map[FaultKind]int {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[FaultKind]int{}
	for k, n := range f.byKind {
		if n > 0 {
			out[FaultKind(k)] = n
		}
	}
	return out
}
