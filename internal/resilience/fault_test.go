package resilience

import (
	"sync"
	"testing"
)

func drawSequence(cfg FaultConfig, n int) []FaultKind {
	inj := NewFaultInjector(cfg)
	out := make([]FaultKind, n)
	for i := range out {
		out[i] = inj.Draw()
	}
	return out
}

func TestFaultInjectorDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 7, DropProb: 0.1, CorruptProb: 0.1, StallProb: 0.05, SilentProb: 0.02}
	a := drawSequence(cfg, 500)
	b := drawSequence(cfg, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := drawSequence(FaultConfig{Seed: 8, DropProb: 0.1, CorruptProb: 0.1, StallProb: 0.05, SilentProb: 0.02}, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestFaultInjectorCensus(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 3, DropProb: 0.2, CorruptProb: 0.2})
	total := 0
	for i := 0; i < 1000; i++ {
		if inj.Draw() != FaultNone {
			total++
		}
	}
	if inj.Injected() != total {
		t.Errorf("Injected %d != observed %d", inj.Injected(), total)
	}
	byKind := inj.InjectedByKind()
	sum := 0
	for _, n := range byKind {
		sum += n
	}
	if sum != total {
		t.Errorf("census sum %d != %d", sum, total)
	}
	// ~40% fault rate over 1000 draws: both kinds must appear.
	if byKind[FaultDrop] == 0 || byKind[FaultCorrupt] == 0 {
		t.Errorf("census missing kinds: %v", byKind)
	}
	if byKind[FaultStall] != 0 || byKind[FaultSilent] != 0 {
		t.Errorf("disabled kinds injected: %v", byKind)
	}
}

func TestFaultInjectorMaxFaults(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 1, DropProb: 1, MaxFaults: 5})
	for i := 0; i < 100; i++ {
		inj.Draw()
	}
	if inj.Injected() != 5 {
		t.Errorf("injected %d, want 5", inj.Injected())
	}
}

func TestFaultInjectorNilSafe(t *testing.T) {
	var inj *FaultInjector
	if inj.Draw() != FaultNone || inj.Injected() != 0 || inj.PerturbIndex(10) != 0 || inj.StallDelay() != 0 {
		t.Error("nil injector not inert")
	}
	if inj.InjectedByKind() != nil {
		t.Error("nil injector census not nil")
	}
}

func TestFaultInjectorConcurrentDraws(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{Seed: 5, DropProb: 0.5})
	var wg sync.WaitGroup
	const perG, goroutines = 200, 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				inj.Draw()
			}
		}()
	}
	wg.Wait()
	// The census is scheduling-independent: same seed, same draw count.
	want := 0
	ref := NewFaultInjector(FaultConfig{Seed: 5, DropProb: 0.5})
	for i := 0; i < perG*goroutines; i++ {
		if ref.Draw() != FaultNone {
			want++
		}
	}
	if inj.Injected() != want {
		t.Errorf("concurrent census %d != serial %d", inj.Injected(), want)
	}
}
