package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy paces re-attempts of a failed operation with capped
// exponential backoff. The zero value is usable and resolves to the
// defaults documented on each field.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first try
	// (default 4).
	MaxAttempts int
	// BaseDelay is the sleep before the second attempt (default 100µs —
	// the simulated interconnects here fail fast, and tests must too).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 10ms).
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly within ±Jitter fraction of its
	// nominal value (0 = deterministic; values are clamped to [0, 1)).
	// Desynchronizes retry storms when many workers back off together.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter >= 1 {
		p.Jitter = 0.999
	}
	return p
}

// Delay returns the backoff before the given 1-based attempt: zero for
// the first attempt, then BaseDelay grown by Multiplier per subsequent
// attempt and saturated at MaxDelay, with optional ±Jitter spread. Safe
// for concurrent use (the jitter source is the global math/rand, which
// is goroutine-safe).
func (p RetryPolicy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt <= 1 {
		return 0
	}
	d := float64(p.BaseDelay)
	for i := 2; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rand.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, the attempt budget is exhausted, or ctx
// is canceled. op receives the 1-based attempt number. On exhaustion the
// last error is wrapped together with ErrRetriesExhausted; on
// cancellation the context error is returned (the operation is not
// retried across a deadline).
func (p RetryPolicy) Do(ctx context.Context, op func(attempt int) error) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 1 {
			mRetryAttempts.Inc()
			t := time.NewTimer(p.Delay(attempt))
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		if lastErr = op(attempt); lastErr == nil {
			return nil
		}
	}
	mRetryExhausted.Inc()
	return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, p.MaxAttempts, lastErr)
}
