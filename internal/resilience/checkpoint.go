package resilience

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/telemetry"
)

// checkpointVersion is bumped on incompatible envelope changes; Load
// rejects files from other versions rather than misinterpreting them.
const checkpointVersion = 1

// castagnoli is the CRC-32C table (the polynomial HPC interconnects and
// filesystems use for payload integrity).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// envelope is the on-disk checkpoint format: a small JSON header around
// an opaque payload. CRC32 covers the raw payload bytes, so any
// single-bit corruption of the state is detected at load time; the
// header fields are cheap enough to validate structurally.
type envelope struct {
	Version   int             `json:"version"`
	Kind      string          `json:"kind"`
	Iteration int             `json:"iteration"`
	CRC32     uint32          `json:"crc32c"`
	Payload   json.RawMessage `json:"payload"`
}

// SaveCheckpoint atomically persists payload (any JSON-marshalable
// value) under the given kind tag and iteration counter. The write is
// crash-safe: the envelope goes to a temp file in the target directory,
// is fsynced, and then renamed over path — a reader never observes a
// torn file, and a crash mid-write leaves the previous checkpoint
// intact. float64 fields round-trip exactly through encoding/json
// (shortest-representation formatting), which the bit-exact resume
// guarantees in internal/opt rely on.
func SaveCheckpoint(path, kind string, iteration int, payload any) error {
	defer mCheckpointTime.Since(telemetry.Now())
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("resilience: marshal checkpoint payload: %w", err)
	}
	env := envelope{
		Version:   checkpointVersion,
		Kind:      kind,
		Iteration: iteration,
		CRC32:     crc32.Checksum(raw, castagnoli),
		Payload:   raw,
	}
	// Compact marshal: indentation would rewrite the embedded payload
	// bytes and break the CRC the loader recomputes over them verbatim.
	buf, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("resilience: marshal checkpoint envelope: %w", err)
	}
	dir := filepath.Dir(path)
	// All I/O failures below wrap ErrCheckpointWrite so a caller can tell
	// "the spool is broken" apart from a bad payload and degrade durability
	// instead of failing the run.
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("%w: temp file: %v", ErrCheckpointWrite, err)
	}
	tmpName := tmp.Name()
	// Any failure past this point must not leave the temp file behind.
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		return cleanup(fmt.Errorf("%w: write: %v", ErrCheckpointWrite, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("%w: sync: %v", ErrCheckpointWrite, err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("%w: close: %v", ErrCheckpointWrite, err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("%w: commit: %v", ErrCheckpointWrite, err)
	}
	mCheckpointWrites.Inc()
	mCheckpointBytes.Add(int64(len(buf)))
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint,
// verifying version and payload CRC before unmarshaling into payload.
// It returns the stored kind tag and iteration counter. All failure
// modes wrap ErrCheckpointInvalid so callers can distinguish "no usable
// checkpoint" from I/O errors like a missing file (reported as-is, so
// os.IsNotExist keeps working).
func LoadCheckpoint(path string, payload any) (kind string, iteration int, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return "", 0, err
	}
	var env envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return "", 0, fmt.Errorf("%w: %s: %v", ErrCheckpointInvalid, path, err)
	}
	if env.Version != checkpointVersion {
		return "", 0, fmt.Errorf("%w: %s: version %d (want %d)", ErrCheckpointInvalid, path, env.Version, checkpointVersion)
	}
	if got := crc32.Checksum(env.Payload, castagnoli); got != env.CRC32 {
		return "", 0, fmt.Errorf("%w: %s: crc32c %08x != stored %08x", ErrCheckpointInvalid, path, got, env.CRC32)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return "", 0, fmt.Errorf("%w: %s: payload: %v", ErrCheckpointInvalid, path, err)
	}
	mCheckpointLoads.Inc()
	return env.Kind, env.Iteration, nil
}

// CheckpointKind peeks at a checkpoint's kind tag without decoding the
// payload (used by resume paths to pick the matching optimizer).
func CheckpointKind(path string) (string, error) {
	var ignore json.RawMessage
	kind, _, err := LoadCheckpoint(path, &ignore)
	return kind, err
}

// A Cadence decides when periodic checkpoints are due: every Interval
// iterations (Interval <= 1 means every iteration). The zero Cadence is
// usable and fires every iteration.
type Cadence struct {
	Interval int
	last     int
	any      bool
}

// Due reports whether a checkpoint should be written at this iteration,
// and records the write when it returns true.
func (c *Cadence) Due(iteration int) bool {
	if c.Interval <= 1 {
		return true
	}
	if !c.any || iteration-c.last >= c.Interval {
		c.last = iteration
		c.any = true
		return true
	}
	return false
}
