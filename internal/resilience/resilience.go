// Package resilience is the fault-tolerance layer for long-running VQE
// workloads on walltime-limited HPC systems (Frontier/Perlmutter-style
// allocations, paper §6): atomic CRC-verified checkpoints of optimizer
// state, a deterministic seedable fault injector for communication
// drills, a bounded-retry policy with exponential backoff, and
// SLURM-style walltime budgets expressed as context deadlines.
//
// The package is deliberately mechanism-only: it knows how to persist an
// opaque payload, how to decide that a simulated transfer failed, and how
// to pace retries — the policies (what goes in a checkpoint, which
// transfers are guarded) live with the subsystems that use it
// (internal/opt, internal/vqe, internal/cluster, internal/xacc).
package resilience

import (
	"errors"

	"repro/internal/telemetry"
)

// Sentinel errors for the recovery paths. All are wrapped with %w by the
// call sites so errors.Is works across package boundaries.
var (
	// ErrCorrupted reports a payload whose checksum did not verify.
	ErrCorrupted = errors.New("resilience: payload corrupted")
	// ErrDropped reports a transfer that never arrived (simulated
	// timeout on a dropped message).
	ErrDropped = errors.New("resilience: transfer dropped")
	// ErrRetriesExhausted reports an operation that kept failing past
	// its retry budget.
	ErrRetriesExhausted = errors.New("resilience: retries exhausted")
	// ErrCheckpointInvalid reports an unreadable, mis-versioned, or
	// CRC-failing checkpoint file.
	ErrCheckpointInvalid = errors.New("resilience: invalid checkpoint")
	// ErrCheckpointWrite reports an I/O failure persisting a checkpoint
	// (disk full, unwritable spool dir). Callers that can run without
	// durability — the vqed daemon — match it to shed checkpointing
	// gracefully instead of failing the workload.
	ErrCheckpointWrite = errors.New("resilience: checkpoint write failed")
)

// Package-wide instruments: recovery activity must be visible in
// run_report.json, so operators can tell a clean run from one that
// survived faults.
var (
	mCheckpointWrites = telemetry.GetCounter("resilience.checkpoint.writes")
	mCheckpointBytes  = telemetry.GetCounter("resilience.checkpoint.bytes")
	mCheckpointLoads  = telemetry.GetCounter("resilience.checkpoint.loads")
	mCheckpointTime   = telemetry.GetTimer("resilience.checkpoint.write")
	mRetryAttempts    = telemetry.GetCounter("resilience.retry.attempts")
	mRetryExhausted   = telemetry.GetCounter("resilience.retry.exhausted")
	mDeadlineCancels  = telemetry.GetCounter("resilience.deadline.cancels")
)

// NoteDeadlineCancel records one graceful deadline-triggered stop (called
// by the drivers when a walltime budget cancels an optimization loop).
func NoteDeadlineCancel() { mDeadlineCancels.Inc() }
