package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetryFirstTrySuccess(t *testing.T) {
	calls := 0
	err := RetryPolicy{}.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt != calls {
			t.Errorf("attempt %d on call %d", attempt, calls)
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	fail := errors.New("transient")
	calls := 0
	err := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}.Do(context.Background(), func(int) error {
		calls++
		if calls < 3 {
			return fail
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustion(t *testing.T) {
	fail := errors.New("persistent")
	calls := 0
	err := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}.Do(context.Background(), func(int) error {
		calls++
		return fail
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("want ErrRetriesExhausted, got %v", err)
	}
	if calls != 3 {
		t.Errorf("calls=%d", calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := RetryPolicy{}.Do(ctx, func(int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
	// Cancellation during backoff must also stop the loop.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls = 0
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	err = RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond}.Do(ctx2, func(int) error {
		calls++
		return errors.New("x")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err=%v", err)
	}
	if calls != 1 {
		t.Errorf("calls=%d, want 1 (canceled during first backoff)", calls)
	}
}

func TestWalltimeParsing(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"30", 30 * time.Minute},
		{"02:30", 2*time.Minute + 30*time.Second},
		{"01:30:00", time.Hour + 30*time.Minute},
		{"1-12", 36 * time.Hour},
		{"1-00:30", 24*time.Hour + 30*time.Minute},
		{"2-01:02:03", 48*time.Hour + time.Hour + 2*time.Minute + 3*time.Second},
		{"90s", 90 * time.Second},
		{"1h30m", time.Hour + 30*time.Minute},
	}
	for _, c := range cases {
		got, err := ParseWalltime(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseWalltime(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1:2:3:4", "-5", "1-2:3:4:5", "x-00:30"} {
		if _, err := ParseWalltime(bad); err == nil {
			t.Errorf("ParseWalltime(%q) accepted", bad)
		}
	}
}

func TestWithWalltimeMargin(t *testing.T) {
	ctx, cancel := WithWalltime(context.Background(), time.Hour, time.Minute)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline")
	}
	until := time.Until(dl)
	if until > 59*time.Minute || until < 58*time.Minute {
		t.Errorf("deadline %v from now, want ~59m", until)
	}
	// Tiny budgets keep at least half the window.
	ctx2, cancel2 := WithWalltime(context.Background(), 10*time.Millisecond, time.Minute)
	defer cancel2()
	dl2, _ := ctx2.Deadline()
	if until := time.Until(dl2); until < 2*time.Millisecond {
		t.Errorf("tiny budget collapsed to %v", until)
	}
}
