package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRetryFirstTrySuccess(t *testing.T) {
	calls := 0
	err := RetryPolicy{}.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt != calls {
			t.Errorf("attempt %d on call %d", attempt, calls)
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	fail := errors.New("transient")
	calls := 0
	err := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}.Do(context.Background(), func(int) error {
		calls++
		if calls < 3 {
			return fail
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustion(t *testing.T) {
	fail := errors.New("persistent")
	calls := 0
	err := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}.Do(context.Background(), func(int) error {
		calls++
		return fail
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("want ErrRetriesExhausted, got %v", err)
	}
	if calls != 3 {
		t.Errorf("calls=%d", calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := RetryPolicy{}.Do(ctx, func(int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
	// Cancellation during backoff must also stop the loop.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls = 0
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	err = RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond}.Do(ctx2, func(int) error {
		calls++
		return errors.New("x")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err=%v", err)
	}
	if calls != 1 {
		t.Errorf("calls=%d, want 1 (canceled during first backoff)", calls)
	}
}

// TestRetryZeroAttemptBudget: a zero or negative MaxAttempts resolves to
// the documented default of 4 total attempts — a misconfigured policy
// must never mean "retry forever" or "never try".
func TestRetryZeroAttemptBudget(t *testing.T) {
	for _, budget := range []int{0, -1, -100} {
		fail := errors.New("persistent")
		calls := 0
		err := RetryPolicy{MaxAttempts: budget, BaseDelay: time.Microsecond}.Do(context.Background(), func(int) error {
			calls++
			return fail
		})
		if !errors.Is(err, ErrRetriesExhausted) {
			t.Errorf("MaxAttempts=%d: want ErrRetriesExhausted, got %v", budget, err)
		}
		if calls != 4 {
			t.Errorf("MaxAttempts=%d: calls=%d, want default 4", budget, calls)
		}
		if d := (RetryPolicy{MaxAttempts: budget}).Delay(1); d != 0 {
			t.Errorf("MaxAttempts=%d: Delay(1)=%v, want 0", budget, d)
		}
	}
}

// TestRetryDelaySchedule pins the jitter-free delay curve: zero before
// the first attempt, multiplicative growth, monotone non-decreasing, and
// saturation at MaxDelay for every later attempt including ones far past
// the point where the float accumulator would overflow naive growth.
func TestRetryDelaySchedule(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{0, 0, time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond}
	for attempt := 0; attempt < len(want); attempt++ {
		if got := p.Delay(attempt); got != want[attempt] {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, want[attempt])
		}
	}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 64; attempt++ {
		d := p.Delay(attempt)
		if d < prev {
			t.Fatalf("Delay(%d) = %v < Delay(%d) = %v (not monotone)", attempt, d, attempt-1, prev)
		}
		if d > p.MaxDelay {
			t.Fatalf("Delay(%d) = %v exceeds cap %v", attempt, d, p.MaxDelay)
		}
		prev = d
	}
	// Saturation must hold at attempt counts where naive multiplication
	// would have overflowed float64 into +Inf.
	if d := p.Delay(10_000); d != p.MaxDelay {
		t.Errorf("Delay(10000) = %v, want cap %v", d, p.MaxDelay)
	}
}

// TestRetryJitterBounds is the property test: for randomized policies,
// every jittered delay stays within ±Jitter of the nominal value and
// never exceeds the absolute bound (1+Jitter)·MaxDelay; out-of-range
// Jitter values clamp instead of exploding. Runs in parallel goroutines
// so the shared jitter source is exercised under -race.
func TestRetryJitterBounds(t *testing.T) {
	nominal := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 16 * time.Millisecond, Multiplier: 2}
	const jitter = 0.25
	p := nominal
	p.Jitter = jitter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 2; attempt <= 12; attempt++ {
				base := nominal.Delay(attempt)
				lo := time.Duration(float64(base) * (1 - jitter))
				hi := time.Duration(float64(base)*(1+jitter)) + time.Nanosecond
				for trial := 0; trial < 200; trial++ {
					d := p.Delay(attempt)
					if d < lo || d > hi {
						t.Errorf("Delay(%d) = %v outside [%v, %v]", attempt, d, lo, hi)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Clamping: Jitter ≥ 1 must still yield non-negative delays bounded by
	// 2·MaxDelay, and negative Jitter means no jitter at all.
	wild := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Jitter: 5}
	for trial := 0; trial < 500; trial++ {
		d := wild.Delay(3)
		if d < 0 || d >= 2*time.Millisecond {
			t.Fatalf("clamped jitter: Delay(3) = %v outside [0, 2ms)", d)
		}
	}
	neg := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: -3}
	for trial := 0; trial < 10; trial++ {
		if d := neg.Delay(2); d != time.Millisecond {
			t.Fatalf("negative jitter not ignored: Delay(2) = %v", d)
		}
	}
}

func TestWalltimeParsing(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"30", 30 * time.Minute},
		{"02:30", 2*time.Minute + 30*time.Second},
		{"01:30:00", time.Hour + 30*time.Minute},
		{"1-12", 36 * time.Hour},
		{"1-00:30", 24*time.Hour + 30*time.Minute},
		{"2-01:02:03", 48*time.Hour + time.Hour + 2*time.Minute + 3*time.Second},
		{"90s", 90 * time.Second},
		{"1h30m", time.Hour + 30*time.Minute},
	}
	for _, c := range cases {
		got, err := ParseWalltime(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseWalltime(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1:2:3:4", "-5", "1-2:3:4:5", "x-00:30"} {
		if _, err := ParseWalltime(bad); err == nil {
			t.Errorf("ParseWalltime(%q) accepted", bad)
		}
	}
}

func TestWithWalltimeMargin(t *testing.T) {
	ctx, cancel := WithWalltime(context.Background(), time.Hour, time.Minute)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline")
	}
	until := time.Until(dl)
	if until > 59*time.Minute || until < 58*time.Minute {
		t.Errorf("deadline %v from now, want ~59m", until)
	}
	// Tiny budgets keep at least half the window.
	ctx2, cancel2 := WithWalltime(context.Background(), 10*time.Millisecond, time.Minute)
	defer cancel2()
	dl2, _ := ctx2.Deadline()
	if until := time.Until(dl2); until < 2*time.Millisecond {
		t.Errorf("tiny budget collapsed to %v", until)
	}
}
