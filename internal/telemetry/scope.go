package telemetry

import (
	"sync"
)

// A Scope is a named registry of instruments. Instruments are created on
// first lookup and live for the scope's lifetime, so hot paths resolve
// their instruments once (package-level vars) and mutate lock-free
// afterwards. All methods are safe for concurrent use.
type Scope struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	rings    map[string]*Ring
}

// NewScope returns an empty registry.
func NewScope() *Scope {
	return &Scope{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		rings:    map[string]*Ring{},
	}
}

// Default is the process-wide scope used by the engine's built-in
// instrumentation and reported by the cmd binaries' -metrics flag.
var Default = NewScope()

// Counter returns the named counter, creating it on first use.
func (s *Scope) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{name: name}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (s *Scope) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		s.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (s *Scope) Timer(name string) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.timers[name]
	if !ok {
		t = &Timer{name: name}
		s.timers[name] = t
	}
	return t
}

// Ring returns the named ring, creating it with the given window capacity
// on first use (capacity ≤ 0 means 256; an existing ring keeps its
// original capacity).
func (s *Scope) Ring(name string, capacity int) *Ring {
	if capacity <= 0 {
		capacity = 256
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rings[name]
	if !ok {
		r = &Ring{name: name, buf: make([]float64, capacity)}
		s.rings[name] = r
	}
	return r
}

// Reset zeroes every instrument in the scope without invalidating the
// handles held by instrumented packages — the run-boundary operation
// behind per-run reports.
func (s *Scope) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		c.reset()
	}
	for _, g := range s.gauges {
		g.reset()
	}
	for _, t := range s.timers {
		t.reset()
	}
	for _, r := range s.rings {
		r.reset()
	}
}

// Package-level shorthands binding to the Default scope.

// GetCounter returns a counter in the Default scope.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns a gauge in the Default scope.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetTimer returns a timer in the Default scope.
func GetTimer(name string) *Timer { return Default.Timer(name) }

// GetRing returns a ring in the Default scope.
func GetRing(name string, capacity int) *Ring { return Default.Ring(name, capacity) }

// Reset zeroes every instrument in the Default scope.
func Reset() { Default.Reset() }
