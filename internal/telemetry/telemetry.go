// Package telemetry is a dependency-free, low-overhead metrics registry
// for the simulation engine. It provides four instrument kinds — atomic
// counters, nanosecond timers, gauges, and fixed-window ring buffers —
// registered by name in a Scope. A package-level Default scope serves the
// engine's built-in instrumentation (gate kernels, worker pool, batched
// expectation plans, VQE phases, cluster communication); callers that need
// isolated accounting create their own Scope.
//
// Telemetry is off by default. Every instrument mutation first checks a
// single global atomic flag and returns immediately when recording is
// disabled, so instrumented hot loops (gate applies, pool chunks,
// expectation sweeps) pay one atomic load and a predictable branch — the
// Disabled fast path, held under 2% on the 16-qubit expectation sweep by
// BenchmarkTelemetryOverhead. Enable telemetry per process with Enable
// (the cmd binaries do this behind their -metrics flag).
//
// All instruments are safe for concurrent use; counters and timers are
// lock-free and may be hammered from every worker of a state.Pool.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global recording flag shared by every scope: telemetry
// is a process-wide concern (the hot paths must not thread a flag
// through), so one switch governs all instruments.
var enabled atomic.Bool

// Enable turns on metric recording process-wide.
func Enable() { enabled.Store(true) }

// Disable turns off metric recording; instruments keep their values.
func Disable() { enabled.Store(false) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// Disabled reports the fast-path state: true when every instrument
// mutation is a no-op.
func Disabled() bool { return !enabled.Load() }

// Now returns a nanosecond timestamp for pairing with Timer.Since, or 0
// when telemetry is disabled — the 0 sentinel lets Since skip the second
// clock read on the disabled path.
func Now() int64 {
	if !enabled.Load() {
		return 0
	}
	return time.Now().UnixNano()
}

// A Counter is an atomic event count. Normal use only increments, but
// Add accepts negative deltas for bookkeeping corrections (e.g. a gate
// reclassified after the fact).
type Counter struct {
	name string
	v    atomic.Int64
}

// Add adds n to the counter (no-op while telemetry is disabled).
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

func (c *Counter) reset() { c.v.Store(0) }

// A Gauge is a last-value-wins atomic level (pool width, group count).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the gauge level (no-op while telemetry is disabled).
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Value returns the last recorded level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

func (g *Gauge) reset() { g.v.Store(0) }

// A Timer accumulates durations in nanoseconds: count, total, min, max.
type Timer struct {
	name  string
	count atomic.Int64
	total atomic.Int64
	min   atomic.Int64 // valid only while count > 0
	max   atomic.Int64
}

// Observe records one duration (no-op while telemetry is disabled).
func (t *Timer) Observe(ns int64) {
	if !enabled.Load() {
		return
	}
	t.observe(ns)
}

// observe is the unconditional update used by Since (which already paid
// the enabled check through Now's 0 sentinel).
func (t *Timer) observe(ns int64) {
	if t.count.Add(1) == 1 {
		// First observation seeds min; racing observers fix it below.
		t.min.Store(ns)
	}
	t.total.Add(ns)
	for {
		cur := t.min.Load()
		if ns >= cur || t.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := t.max.Load()
		if ns <= cur || t.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Since records the time elapsed from a telemetry.Now timestamp. A zero
// start (telemetry disabled at Now) records nothing.
func (t *Timer) Since(start int64) {
	if start == 0 {
		return
	}
	t.observe(time.Now().UnixNano() - start)
}

// Stat summarizes the timer.
func (t *Timer) Stat() TimerStat {
	n := t.count.Load()
	s := TimerStat{Count: n, TotalNs: t.total.Load()}
	if n > 0 {
		s.AvgNs = s.TotalNs / n
		s.MinNs = t.min.Load()
		s.MaxNs = t.max.Load()
	}
	return s
}

// Name returns the registered name.
func (t *Timer) Name() string { return t.name }

func (t *Timer) reset() {
	t.count.Store(0)
	t.total.Store(0)
	t.min.Store(0)
	t.max.Store(0)
}

// A Ring retains the most recent observations in a fixed window and
// reports order statistics over it — the histogram-ish instrument for
// per-evaluation latencies, where recent percentiles matter more than a
// lifetime mean.
type Ring struct {
	name string
	mu   sync.Mutex
	buf  []float64
	next int
	n    int64 // lifetime observation count
}

// Observe appends one value, evicting the oldest once the window is full
// (no-op while telemetry is disabled).
func (r *Ring) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	r.n++
	r.mu.Unlock()
}

// Name returns the registered name.
func (r *Ring) Name() string { return r.name }

func (r *Ring) reset() {
	r.mu.Lock()
	r.next, r.n = 0, 0
	r.mu.Unlock()
}

// Stat summarizes the retained window.
func (r *Ring) Stat() RingStat {
	r.mu.Lock()
	n := int(r.n)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	window := make([]float64, n)
	if int(r.n) <= len(r.buf) {
		copy(window, r.buf[:n])
	} else {
		// Full ring: logically oldest entry sits at next.
		copy(window, r.buf[r.next:])
		copy(window[len(r.buf)-r.next:], r.buf[:r.next])
	}
	total := r.n
	r.mu.Unlock()

	s := RingStat{Count: total, Window: n}
	if n == 0 {
		return s
	}
	sortFloats(window)
	s.Min, s.Max = window[0], window[n-1]
	sum := 0.0
	for _, v := range window {
		sum += v
	}
	s.Mean = sum / float64(n)
	s.P50 = quantile(window, 0.50)
	s.P90 = quantile(window, 0.90)
	s.P95 = quantile(window, 0.95)
	s.P99 = quantile(window, 0.99)
	s.P999 = quantile(window, 0.999)
	return s
}

// sortFloats is an insertion sort: windows are small (≤ a few hundred)
// and this keeps the package free of sort's reflection paths on the
// snapshot route. (Snapshotting is cold; simplicity wins.)
func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// quantile returns the q-th order statistic of sorted v (nearest-rank,
// rounded so small windows don't systematically undershoot high
// percentiles).
func quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	i := int(q*float64(len(v)-1) + 0.5)
	return v[i]
}
