package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TimerStat is a point-in-time timer summary.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	AvgNs   int64 `json:"avg_ns"`
	MinNs   int64 `json:"min_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// RingStat summarizes a ring's retained window. Count is the lifetime
// observation total; the order statistics cover the last Window values.
type RingStat struct {
	Count  int64   `json:"count"`
	Window int     `json:"window"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
}

// Snapshot is a consistent-enough copy of a scope's instruments (each
// instrument is read atomically; the set is not globally fenced, which is
// fine for reporting). Zero-valued instruments are omitted so reports
// show only what the run exercised.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Timers   map[string]TimerStat `json:"timers,omitempty"`
	Rings    map[string]RingStat  `json:"rings,omitempty"`
}

// Snapshot captures the scope's current instrument values.
func (s *Scope) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Timers:   map[string]TimerStat{},
		Rings:    map[string]RingStat{},
	}
	for name, c := range s.counters {
		if v := c.Value(); v != 0 {
			snap.Counters[name] = v
		}
	}
	for name, g := range s.gauges {
		if v := g.Value(); v != 0 {
			snap.Gauges[name] = v
		}
	}
	for name, t := range s.timers {
		if st := t.Stat(); st.Count != 0 {
			snap.Timers[name] = st
		}
	}
	for name, r := range s.rings {
		if st := r.Stat(); st.Count != 0 {
			snap.Rings[name] = st
		}
	}
	return snap
}

// Capture snapshots the Default scope.
func Capture() Snapshot { return Default.Snapshot() }

// WriteJSON writes the snapshot as indented JSON.
func (sn Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sn)
}

// WriteText writes a human-readable, name-sorted report.
func (sn Snapshot) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if len(sn.Counters) > 0 {
		p("counters:\n")
		for _, name := range sortedKeys(sn.Counters) {
			p("  %-36s %12d\n", name, sn.Counters[name])
		}
	}
	if len(sn.Gauges) > 0 {
		p("gauges:\n")
		for _, name := range sortedKeys(sn.Gauges) {
			p("  %-36s %12d\n", name, sn.Gauges[name])
		}
	}
	if len(sn.Timers) > 0 {
		p("timers:\n")
		for _, name := range sortedKeys(sn.Timers) {
			t := sn.Timers[name]
			p("  %-36s n=%-8d total=%-12s avg=%-10s min=%-10s max=%s\n",
				name, t.Count, fmtNs(t.TotalNs), fmtNs(t.AvgNs), fmtNs(t.MinNs), fmtNs(t.MaxNs))
		}
	}
	if len(sn.Rings) > 0 {
		p("rings:\n")
		for _, name := range sortedKeys(sn.Rings) {
			r := sn.Rings[name]
			p("  %-36s n=%-8d window=%-5d mean=%-12.4g p50=%-12.4g p95=%-12.4g p99=%-12.4g p999=%.4g\n",
				name, r.Count, r.Window, r.Mean, r.P50, r.P95, r.P99, r.P999)
		}
	}
	return err
}

// sortedKeys returns a map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtNs renders nanoseconds with an adaptive unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
