package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// enable turns recording on for one test and restores the disabled
// default afterwards.
func enable(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
}

func TestDisabledByDefault(t *testing.T) {
	if Enabled() || !Disabled() {
		t.Fatal("telemetry should start disabled")
	}
	s := NewScope()
	c := s.Counter("c")
	g := s.Gauge("g")
	tm := s.Timer("t")
	r := s.Ring("r", 4)
	c.Inc()
	g.Set(9)
	tm.Observe(100)
	r.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || tm.Stat().Count != 0 || r.Stat().Count != 0 {
		t.Fatalf("disabled instruments must not record: c=%d g=%d t=%+v r=%+v",
			c.Value(), g.Value(), tm.Stat(), r.Stat())
	}
	if Now() != 0 {
		t.Fatal("Now must return the 0 sentinel while disabled")
	}
	tm.Since(0) // must be a no-op, not a bogus sample
	if tm.Stat().Count != 0 {
		t.Fatal("Since(0) recorded a sample")
	}
}

func TestCounterGaugeEnabled(t *testing.T) {
	enable(t)
	s := NewScope()
	c := s.Counter("pool.chunks")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if c.Name() != "pool.chunks" {
		t.Fatalf("name = %q", c.Name())
	}
	g := s.Gauge("pool.workers")
	g.Set(8)
	g.Set(3)
	if g.Value() != 3 || g.Name() != "pool.workers" {
		t.Fatalf("gauge = %d %q", g.Value(), g.Name())
	}
}

func TestTimerStats(t *testing.T) {
	enable(t)
	s := NewScope()
	tm := s.Timer("phase")
	for _, ns := range []int64{300, 100, 200} {
		tm.Observe(ns)
	}
	st := tm.Stat()
	if st.Count != 3 || st.TotalNs != 600 || st.AvgNs != 200 || st.MinNs != 100 || st.MaxNs != 300 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestTimerSince(t *testing.T) {
	enable(t)
	s := NewScope()
	tm := s.Timer("wall")
	start := Now()
	if start == 0 {
		t.Fatal("Now returned 0 while enabled")
	}
	time.Sleep(time.Millisecond)
	tm.Since(start)
	st := tm.Stat()
	if st.Count != 1 || st.TotalNs < int64(time.Millisecond)/2 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestRingWindowAndQuantiles(t *testing.T) {
	enable(t)
	s := NewScope()
	r := s.Ring("lat", 4)
	// Partially filled window.
	r.Observe(3)
	r.Observe(1)
	st := r.Stat()
	if st.Count != 2 || st.Window != 2 || st.Min != 1 || st.Max != 3 || st.Mean != 2 {
		t.Fatalf("partial stat = %+v", st)
	}
	// Overflow: the window keeps the last 4 observations {2,4,5,6}.
	for _, v := range []float64{2, 4, 5, 6} {
		r.Observe(v)
	}
	st = r.Stat()
	if st.Count != 6 || st.Window != 4 || st.Min != 2 || st.Max != 6 {
		t.Fatalf("wrapped stat = %+v", st)
	}
	if st.P50 < 4 || st.P50 > 5 || st.P99 != 6 {
		t.Fatalf("quantiles = %+v", st)
	}
	// The high-percentile exports are monotone and bounded by the max.
	if st.P95 < st.P50 || st.P99 < st.P95 || st.P999 < st.P99 || st.P999 > st.Max {
		t.Fatalf("percentile ordering violated: %+v", st)
	}
}

func TestScopeGetOrCreate(t *testing.T) {
	s := NewScope()
	if s.Counter("x") != s.Counter("x") {
		t.Fatal("same name must return the same counter")
	}
	if s.Timer("x") == nil || s.Gauge("x") == nil {
		t.Fatal("kinds are namespaced independently")
	}
	r := s.Ring("x", 2)
	if s.Ring("x", 99) != r {
		t.Fatal("existing ring must be returned unchanged")
	}
	if got := len(r.buf); got != 2 {
		t.Fatalf("ring kept capacity %d, want 2", got)
	}
	if def := s.Ring("d", 0); len(def.buf) != 256 {
		t.Fatalf("default ring capacity = %d, want 256", len(def.buf))
	}
}

func TestDefaultScopeHelpers(t *testing.T) {
	enable(t)
	c := GetCounter("test.helper.counter")
	c.Inc()
	GetGauge("test.helper.gauge").Set(2)
	GetTimer("test.helper.timer").Observe(50)
	GetRing("test.helper.ring", 8).Observe(1)
	snap := Capture()
	if snap.Counters["test.helper.counter"] != 1 {
		t.Fatalf("default snapshot missing counter: %+v", snap.Counters)
	}
	Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero the default scope")
	}
}

func TestResetKeepsHandles(t *testing.T) {
	enable(t)
	s := NewScope()
	c := s.Counter("c")
	tm := s.Timer("t")
	g := s.Gauge("g")
	r := s.Ring("r", 4)
	c.Add(3)
	tm.Observe(10)
	g.Set(5)
	r.Observe(1)
	s.Reset()
	if c.Value() != 0 || tm.Stat().Count != 0 || g.Value() != 0 || r.Stat().Count != 0 {
		t.Fatal("Reset left residue")
	}
	// Old handles keep working after reset.
	c.Inc()
	if c.Value() != 1 || s.Counter("c") != c {
		t.Fatal("handle invalidated by Reset")
	}
}

func TestSnapshotOmitsZeroInstruments(t *testing.T) {
	enable(t)
	s := NewScope()
	s.Counter("zero")
	s.Counter("hot").Add(2)
	s.Timer("idle")
	snap := s.Snapshot()
	if _, ok := snap.Counters["zero"]; ok {
		t.Fatal("zero counter should be omitted")
	}
	if snap.Counters["hot"] != 2 {
		t.Fatalf("snapshot = %+v", snap.Counters)
	}
	if len(snap.Timers) != 0 {
		t.Fatalf("idle timer should be omitted: %+v", snap.Timers)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	enable(t)
	s := NewScope()
	s.Counter("state.gate.1q").Add(7)
	s.Gauge("pool.workers").Set(4)
	s.Timer("vqe.energy").Observe(1500)
	s.Ring("vqe.energy.ns", 8).Observe(1500)
	snap := s.Snapshot()

	var text bytes.Buffer
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"state.gate.1q", "pool.workers", "vqe.energy", "1.5µs"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["state.gate.1q"] != 7 || back.Timers["vqe.energy"].TotalNs != 1500 {
		t.Fatalf("JSON round-trip = %+v", back)
	}
}

func TestFmtNs(t *testing.T) {
	cases := map[int64]string{
		12:            "12ns",
		1500:          "1.5µs",
		2_500_000:     "2.5ms",
		3_000_000_000: "3s",
	}
	for ns, want := range cases {
		if got := fmtNs(ns); got != want {
			t.Fatalf("fmtNs(%d) = %q, want %q", ns, got, want)
		}
	}
}

// TestConcurrentScopeUse hammers one scope from many goroutines — the
// pool-worker usage pattern — and is exercised under -race via RACE_PKGS.
func TestConcurrentScopeUse(t *testing.T) {
	enable(t)
	s := NewScope()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.Counter("shared.counter")
			tm := s.Timer("shared.timer")
			r := s.Ring("shared.ring", 64)
			g := s.Gauge("shared.gauge")
			for i := 0; i < iters; i++ {
				c.Inc()
				tm.Observe(int64(i%97) + 1)
				r.Observe(float64(i))
				g.Set(int64(w))
				if i%512 == 0 {
					_ = s.Snapshot() // readers race with writers
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Counter("shared.counter").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	st := s.Timer("shared.timer").Stat()
	if st.Count != workers*iters || st.MinNs != 1 || st.MaxNs != 97 {
		t.Fatalf("timer stat = %+v", st)
	}
}
