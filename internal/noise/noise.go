// Package noise implements stochastic Pauli-trajectory noise on the
// state-vector backend: depolarizing errors are unravelled into random
// Pauli insertions, and observables are averaged over many trajectories.
// Each trajectory costs one pure-state simulation, so noise studies scale
// to qubit counts far beyond the density-matrix backend's 4ⁿ wall — the
// standard trick production simulators (including NWQ-Sim) use for large
// noisy circuits. The density-matrix backend provides the exact reference
// the trajectory average must converge to.
package noise

import (
	"math"
	"sync"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/pauli"
	"repro/internal/state"
)

// Model is a stochastic depolarizing noise model: after every 1-qubit
// (2-qubit) gate, each touched qubit independently suffers a uniformly
// random X/Y/Z error with probability P1 (P2).
type Model struct {
	P1, P2 float64
}

// Validate checks the probabilities.
func (m Model) Validate() error {
	if m.P1 < 0 || m.P1 > 1 || m.P2 < 0 || m.P2 > 1 {
		return core.ErrInvalidArgument
	}
	return nil
}

// RunTrajectory executes one noisy trajectory of the circuit on a fresh
// state, drawing errors from rng. It returns the final state and the
// number of injected errors.
func RunTrajectory(c *circuit.Circuit, m Model, rng *core.RNG, workers int) (*state.State, int) {
	s := state.New(c.NumQubits, state.Options{Workers: workers, Seed: rng.Uint64() | 1})
	injected := 0
	paulis := [3]gate.Kind{gate.X, gate.Y, gate.Z}
	for _, g := range c.Gates {
		s.ApplyGate(g)
		if !g.IsUnitary() || g.Kind == gate.I || g.Kind == gate.Barrier {
			continue
		}
		p := m.P1
		if g.Arity() == 2 {
			p = m.P2
		}
		if p == 0 {
			continue
		}
		for _, q := range g.Qubits {
			if rng.Float64() < p {
				s.ApplyGate(gate.New(paulis[rng.Intn(3)], q))
				injected++
			}
		}
	}
	return s, injected
}

// Options configures trajectory averaging.
type Options struct {
	Trajectories int // default 200
	Seed         uint64
	Workers      int // concurrent trajectories (default 4)
}

// Result carries the averaged estimate.
type Result struct {
	Mean         float64
	StdErr       float64 // standard error of the mean
	Trajectories int
	MeanErrors   float64 // average injected errors per trajectory
}

// Expectation estimates ⟨O⟩ under the noisy circuit by trajectory
// averaging.
func Expectation(c *circuit.Circuit, obs *pauli.Op, m Model, opts Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if obs.MaxQubit() >= c.NumQubits {
		return nil, core.QubitError(obs.MaxQubit(), c.NumQubits)
	}
	trajectories := opts.Trajectories
	if trajectories <= 0 {
		trajectories = 200
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 0x4015e // arbitrary fixed default
	}

	vals := make([]float64, trajectories)
	errsInjected := make([]int, trajectories)
	// Pre-split RNGs so trajectory t is deterministic regardless of
	// scheduling.
	master := core.NewRNG(seed)
	rngs := make([]*core.RNG, trajectories)
	for i := range rngs {
		rngs[i] = master.Split()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for tr := 0; tr < trajectories; tr++ {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, inj := RunTrajectory(c, m, rngs[tr], 1)
			vals[tr] = pauli.Expectation(s, obs, pauli.ExpectationOptions{})
			errsInjected[tr] = inj
		}(tr)
	}
	wg.Wait()

	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(trajectories)
	varSum := 0.0
	for _, v := range vals {
		varSum += (v - mean) * (v - mean)
	}
	stderr := 0.0
	if trajectories > 1 {
		stderr = math.Sqrt(varSum / float64(trajectories-1) / float64(trajectories))
	}
	meanErr := 0.0
	for _, e := range errsInjected {
		meanErr += float64(e)
	}
	return &Result{
		Mean:         mean,
		StdErr:       stderr,
		Trajectories: trajectories,
		MeanErrors:   meanErr / float64(trajectories),
	}, nil
}
