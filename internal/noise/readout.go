package noise

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// ReadoutModel describes classical measurement errors: qubit q reads 1
// despite being 0 with probability E01[q], and reads 0 despite being 1
// with probability E10[q]. The per-qubit confusion matrices factorize, so
// both application and mitigation (matrix inversion, the standard
// "unfolding" technique) cost O(n·2ⁿ) on a full distribution.
type ReadoutModel struct {
	E01, E10 []float64
}

// UniformReadout builds a model with identical error rates on n qubits.
func UniformReadout(n int, e01, e10 float64) ReadoutModel {
	m := ReadoutModel{E01: make([]float64, n), E10: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.E01[i] = e01
		m.E10[i] = e10
	}
	return m
}

// NumQubits returns the register width.
func (r ReadoutModel) NumQubits() int { return len(r.E01) }

// Validate checks shapes and probability ranges, and that every
// confusion matrix is invertible (e01 + e10 < 1).
func (r ReadoutModel) Validate() error {
	if len(r.E01) != len(r.E10) {
		return core.ErrDimensionMismatch
	}
	for q := range r.E01 {
		if r.E01[q] < 0 || r.E10[q] < 0 || r.E01[q]+r.E10[q] >= 1 {
			return fmt.Errorf("%w: qubit %d confusion (%v, %v)", core.ErrInvalidArgument, q, r.E01[q], r.E10[q])
		}
	}
	return nil
}

// applyQubitMap applies a per-qubit 2×2 map [[a00,a01],[a10,a11]] (column
// = true value, row = read value) to the distribution in place.
func applyQubitMap(probs []float64, q int, a00, a01, a10, a11 float64) {
	half := uint64(len(probs) / 2)
	for rest := uint64(0); rest < half; rest++ {
		i0 := core.InsertZeroBit(rest, q)
		i1 := i0 | 1<<uint(q)
		p0, p1 := probs[i0], probs[i1]
		probs[i0] = a00*p0 + a01*p1
		probs[i1] = a10*p0 + a11*p1
	}
}

// Apply transforms a true outcome distribution into the noisy measured
// distribution (returns a new slice).
func (r ReadoutModel) Apply(probs []float64) ([]float64, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(probs) != core.Dim(r.NumQubits()) {
		return nil, core.ErrDimensionMismatch
	}
	out := append([]float64(nil), probs...)
	for q := range r.E01 {
		e01, e10 := r.E01[q], r.E10[q]
		applyQubitMap(out, q, 1-e01, e10, e01, 1-e10)
	}
	return out, nil
}

// Mitigate inverts the confusion matrices on a measured distribution
// (unfolding). Statistical noise can push entries slightly negative; they
// are clipped and the distribution renormalized.
func (r ReadoutModel) Mitigate(measured []float64) ([]float64, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(measured) != core.Dim(r.NumQubits()) {
		return nil, core.ErrDimensionMismatch
	}
	out := append([]float64(nil), measured...)
	for q := range r.E01 {
		e01, e10 := r.E01[q], r.E10[q]
		det := 1 - e01 - e10
		// Inverse of [[1−e01, e10],[e01, 1−e10]].
		applyQubitMap(out, q, (1-e10)/det, -e10/det, -e01/det, (1-e01)/det)
	}
	total := 0.0
	for i, p := range out {
		if p < 0 {
			out[i] = 0
		}
		total += out[i]
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out, nil
}

// CountsToDistribution normalizes a shot histogram into a probability
// vector over 2ⁿ outcomes.
func CountsToDistribution(counts map[uint64]int, n int) []float64 {
	out := make([]float64, core.Dim(n))
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return out
	}
	for outcome, c := range counts {
		if int(outcome) < len(out) {
			out[outcome] += float64(c) / float64(total)
		}
	}
	return out
}

// ZExpectation reads ⟨Z-string⟩ (for the qubits in zmask) from a
// distribution.
func ZExpectation(probs []float64, zmask uint64) float64 {
	e := 0.0
	for i, p := range probs {
		if bits.OnesCount64(uint64(i)&zmask)%2 == 0 {
			e += p
		} else {
			e -= p
		}
	}
	return e
}
