package noise

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/pauli"
)

func bell() *circuit.Circuit { return circuit.New(2).H(0).CX(0, 1) }

func zz() *pauli.Op { return pauli.NewOp().Add(pauli.MustParse("ZZ"), 1) }

func TestZeroNoiseIsExact(t *testing.T) {
	res, err := Expectation(bell(), zz(), Model{}, Options{Trajectories: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-1) > 1e-12 || res.StdErr > 1e-12 {
		t.Errorf("noiseless ⟨ZZ⟩ = %v ± %v", res.Mean, res.StdErr)
	}
	if res.MeanErrors != 0 {
		t.Error("errors injected with p=0")
	}
}

func TestTrajectoryAverageMatchesDensityMatrix(t *testing.T) {
	// The trajectory unravelling of per-qubit depolarizing noise must
	// converge to the exact density-matrix result.
	p1, p2 := 0.02, 0.06
	c := bell()
	dm := density.New(2)
	if err := dm.Run(c, density.DepolarizingModel(p1, p2)); err != nil {
		t.Fatal(err)
	}
	exact := dm.Expectation(zz())

	res, err := Expectation(c, zz(), Model{P1: p1, P2: p2}, Options{Trajectories: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 5σ statistical window plus a small systematic floor.
	tol := 5*res.StdErr + 0.01
	if math.Abs(res.Mean-exact) > tol {
		t.Errorf("trajectory %v ± %v vs density-matrix %v", res.Mean, res.StdErr, exact)
	}
}

func TestNoiseReducesCorrelator(t *testing.T) {
	res, err := Expectation(bell(), zz(), Model{P1: 0.05, P2: 0.1}, Options{Trajectories: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean >= 1 {
		t.Errorf("noise did not reduce ⟨ZZ⟩: %v", res.Mean)
	}
	if res.Mean < 0.5 {
		t.Errorf("⟨ZZ⟩ degraded implausibly: %v", res.Mean)
	}
	if res.MeanErrors <= 0 {
		t.Error("no errors injected")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	opts := Options{Trajectories: 50, Seed: 9}
	m := Model{P1: 0.05, P2: 0.05}
	a, err := Expectation(bell(), zz(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expectation(bell(), zz(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean {
		t.Errorf("same seed gave %v and %v", a.Mean, b.Mean)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	m := Model{P1: 0.05, P2: 0.05}
	a, _ := Expectation(bell(), zz(), m, Options{Trajectories: 60, Seed: 4, Workers: 1})
	b, _ := Expectation(bell(), zz(), m, Options{Trajectories: 60, Seed: 4, Workers: 8})
	if a.Mean != b.Mean {
		t.Errorf("worker count changed result: %v vs %v", a.Mean, b.Mean)
	}
}

func TestRunTrajectoryNormPreserved(t *testing.T) {
	rng := core.NewRNG(3)
	s, _ := RunTrajectory(bell(), Model{P1: 0.3, P2: 0.3}, rng, 1)
	if math.Abs(s.Norm()-1) > 1e-10 {
		t.Errorf("norm %v", s.Norm())
	}
}

func TestValidation(t *testing.T) {
	if _, err := Expectation(bell(), zz(), Model{P1: -0.1}, Options{}); err == nil {
		t.Error("negative probability accepted")
	}
	wide := pauli.NewOp().Add(pauli.MustParse("IIZ"), 1)
	if _, err := Expectation(bell(), wide, Model{}, Options{}); err == nil {
		t.Error("wide observable accepted")
	}
}

func TestErrorRateScalesWithProbability(t *testing.T) {
	m1, _ := Expectation(bell(), zz(), Model{P1: 0.02, P2: 0.02}, Options{Trajectories: 500, Seed: 7})
	m2, _ := Expectation(bell(), zz(), Model{P1: 0.2, P2: 0.2}, Options{Trajectories: 500, Seed: 7})
	if m2.MeanErrors <= m1.MeanErrors {
		t.Errorf("error counts did not scale: %v vs %v", m1.MeanErrors, m2.MeanErrors)
	}
}
