package noise

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/state"
)

func TestReadoutValidate(t *testing.T) {
	if err := UniformReadout(2, 0.02, 0.05).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ReadoutModel{E01: []float64{0.6}, E10: []float64{0.5}}).Validate(); err == nil {
		t.Error("singular confusion accepted")
	}
	if err := (ReadoutModel{E01: []float64{-0.1}, E10: []float64{0}}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (ReadoutModel{E01: []float64{0.1}, E10: []float64{0.1, 0.1}}).Validate(); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestReadoutApplySingleQubit(t *testing.T) {
	// True |0⟩ with e01 = 0.1: measured distribution (0.9, 0.1).
	m := UniformReadout(1, 0.1, 0.2)
	noisy, err := m.Apply([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noisy[0]-0.9) > 1e-12 || math.Abs(noisy[1]-0.1) > 1e-12 {
		t.Errorf("noisy = %v", noisy)
	}
	// True |1⟩ with e10 = 0.2: (0.2, 0.8).
	noisy, _ = m.Apply([]float64{0, 1})
	if math.Abs(noisy[0]-0.2) > 1e-12 || math.Abs(noisy[1]-0.8) > 1e-12 {
		t.Errorf("noisy = %v", noisy)
	}
}

func TestReadoutApplyPreservesNormalization(t *testing.T) {
	m := UniformReadout(3, 0.03, 0.07)
	s := state.New(3, state.Options{})
	s.Run(circuit.New(3).H(0).CX(0, 1).RY(0.4, 2))
	noisy, err := m.Apply(s.Probabilities())
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range noisy {
		total += p
	}
	if math.Abs(total-1) > 1e-10 {
		t.Errorf("total probability %v", total)
	}
}

func TestMitigateInvertsApply(t *testing.T) {
	m := UniformReadout(3, 0.05, 0.08)
	s := state.New(3, state.Options{})
	s.Run(circuit.New(3).H(0).CX(0, 1).CX(1, 2))
	truth := s.Probabilities()
	noisy, err := m.Apply(truth)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := m.Mitigate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(recovered[i]-truth[i]) > 1e-10 {
			t.Fatalf("index %d: %v vs %v", i, recovered[i], truth[i])
		}
	}
}

func TestReadoutDegradesZExpectation(t *testing.T) {
	// Symmetric error e on every qubit scales a weight-k Z correlator by
	// (1−2e)^k.
	e := 0.06
	m := UniformReadout(2, e, e)
	s := state.New(2, state.Options{})
	s.Run(circuit.New(2).H(0).CX(0, 1))
	truth := s.Probabilities()
	noisy, _ := m.Apply(truth)
	want := math.Pow(1-2*e, 2) * ZExpectation(truth, 0b11)
	if got := ZExpectation(noisy, 0b11); math.Abs(got-want) > 1e-10 {
		t.Errorf("degraded ⟨ZZ⟩ = %v, want %v", got, want)
	}
}

func TestMitigationRecoversSampledExpectation(t *testing.T) {
	// Sample the noisy distribution, mitigate, and compare ⟨ZZ⟩ against
	// the true value: the mitigated estimate must be much closer.
	m := UniformReadout(2, 0.08, 0.05)
	s := state.New(2, state.Options{Seed: 3})
	s.Run(circuit.New(2).H(0).CX(0, 1))
	truth := s.Probabilities()
	trueZZ := ZExpectation(truth, 0b11)

	noisyDist, _ := m.Apply(truth)
	// Simulate finite sampling of the noisy distribution.
	noisyState, err := state.FromAmplitudes(sqrtDist(noisyDist), state.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := noisyState.SampleCounts(200000)
	measured := CountsToDistribution(counts, 2)

	rawErr := math.Abs(ZExpectation(measured, 0b11) - trueZZ)
	mitigated, err := m.Mitigate(measured)
	if err != nil {
		t.Fatal(err)
	}
	mitErr := math.Abs(ZExpectation(mitigated, 0b11) - trueZZ)
	if mitErr >= rawErr {
		t.Errorf("mitigation did not help: raw %v vs mitigated %v", rawErr, mitErr)
	}
	if mitErr > 0.02 {
		t.Errorf("mitigated error %v too large", mitErr)
	}
}

// sqrtDist builds a real amplitude vector whose probabilities equal the
// distribution (for reusing the sampler).
func sqrtDist(probs []float64) []complex128 {
	out := make([]complex128, len(probs))
	for i, p := range probs {
		out[i] = complex(math.Sqrt(p), 0)
	}
	return out
}

func TestMitigateClipsNegatives(t *testing.T) {
	// A deliberately inconsistent measured distribution (impossible under
	// the model) still yields a valid probability vector.
	m := UniformReadout(1, 0.3, 0.3)
	out, err := m.Mitigate([]float64{0.999, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range out {
		if p < 0 {
			t.Errorf("negative probability %v", p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-10 {
		t.Errorf("not renormalized: %v", total)
	}
}

func TestCountsToDistribution(t *testing.T) {
	d := CountsToDistribution(map[uint64]int{0: 3, 3: 1}, 2)
	if math.Abs(d[0]-0.75) > 1e-12 || math.Abs(d[3]-0.25) > 1e-12 {
		t.Errorf("distribution %v", d)
	}
	empty := CountsToDistribution(nil, 1)
	if empty[0] != 0 {
		t.Error("empty counts")
	}
}
