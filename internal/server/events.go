package server

// eventHub is the publish/subscribe core shared by jobs and sweep
// families: a bounded replayable event history plus live fan-out to SSE
// subscribers. It was extracted from Job when sweeps arrived so both
// lifecycles stream through one mechanism.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// eventHub carries one entity's event stream. The zero value is not
// ready; use newEventHub.
type eventHub struct {
	mu      sync.Mutex
	seq     int
	history []Event
	subs    map[chan Event]struct{}
	done    chan struct{}
}

func newEventHub() eventHub {
	return eventHub{
		subs: map[chan Event]struct{}{},
		done: make(chan struct{}),
	}
}

// publish appends an event to the history and fans it out to live
// subscribers. Slow subscribers lose events rather than stalling the
// simulation (SSE replay from the history covers reconnects).
//
// The fan-out happens after h.mu is released: the critical section
// covers only the sequence/history update plus a snapshot of the
// subscriber set, so SSE consumers never gate the simulation's lock.
// The hand-off stays exact because subscribe copies the history under
// the same lock: a subscriber added after the snapshot already has e in
// its replay, and one removed before the send just receives into a
// buffered channel nobody drains.
func (h *eventHub) publish(e Event) {
	h.mu.Lock()
	h.seq++
	e.Seq = h.seq
	if len(h.history) >= maxEventHistory {
		// Drop the oldest progress event; lifecycle events stay.
		for i, old := range h.history {
			if old.Type == "progress" {
				h.history = append(h.history[:i], h.history[i+1:]...)
				break
			}
		}
	}
	h.history = append(h.history, e)
	subs := make([]chan Event, 0, len(h.subs))
	for ch := range h.subs {
		subs = append(subs, ch)
	}
	terminal := Status(e.Type).Terminal()
	h.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- e:
		default:
		}
	}
	if terminal {
		close(h.done)
	}
}

// subscribe returns the event history so far plus a live channel; the
// caller must unsubscribe.
func (h *eventHub) subscribe() ([]Event, chan Event) {
	ch := make(chan Event, 64)
	h.mu.Lock()
	defer h.mu.Unlock()
	replay := make([]Event, len(h.history))
	copy(replay, h.history)
	h.subs[ch] = struct{}{}
	return replay, ch
}

func (h *eventHub) unsubscribe(ch chan Event) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// eventSource is anything whose lifecycle streams over SSE.
type eventSource interface {
	subscribe() ([]Event, chan Event)
	unsubscribe(chan Event)
}

// streamEvents serves one SSE connection: history replays first, then
// live events until a terminal frame or client disconnect.
func streamEvents(w http.ResponseWriter, r *http.Request, src eventSource) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeAPIError(w, http.StatusInternalServerError, codeInternal, "streaming unsupported", 0)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live := src.subscribe()
	defer src.unsubscribe(live)
	writeEvent := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return !Status(e.Type).Terminal()
	}
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-live:
			if !writeEvent(e) {
				return
			}
		}
	}
}
