package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/runspec"
	"repro/internal/server/journal"
)

// writeJournal builds a journal file in dir from the given records, as if
// a previous daemon process had crashed after appending them.
func writeJournal(t *testing.T, dir string, recs []journal.Record) {
	t.Helper()
	jn, replayed, err := journal.Open(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(replayed))
	}
	for _, rec := range recs {
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryReplaysJournal: a daemon started on a spool whose journal
// holds an accepted-but-unfinished job and a completed one restores both —
// the unfinished job re-runs to completion, the completed one answers
// polls with its recorded result without re-simulation.
func TestRecoveryReplaysJournal(t *testing.T) {
	spool := t.TempDir()
	pendingSpec := &runspec.RunSpec{
		Optimizer: runspec.OptimizerSpec{Method: "nelder-mead", MaxIter: 50},
	}
	doneResult := &runspec.Result{Energy: -1.25, Converged: true}
	writeJournal(t, spool, []journal.Record{
		{Op: journal.OpAccepted, JobID: "job-000003", SpecHash: pendingSpec.Hash(),
			Spec: journalSpec(pendingSpec)},
		{Op: journal.OpAccepted, JobID: "job-000007", SpecHash: "sha256:feed",
			Spec: journalSpec(&runspec.RunSpec{})},
		{Op: journal.OpRunning, JobID: "job-000003", Attempt: 0},
		{Op: journal.OpDone, JobID: "job-000007", Result: journalResult(doneResult)},
	})

	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, SpoolDir: spool})

	// The completed job answers immediately from its journaled result.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-000007/result")
	if err != nil {
		t.Fatal(err)
	}
	var res runspec.Result
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed result: status %d err %v", resp.StatusCode, err)
	}
	if res.Energy != -1.25 {
		t.Errorf("replayed energy = %v, want -1.25", res.Energy)
	}

	// The unfinished job re-enqueued and runs to completion.
	v := pollDone(t, ts, "job-000003", 60*time.Second)
	if v.Status != StatusDone || v.Result == nil {
		t.Fatalf("recovered job settled as %s (err=%q)", v.Status, v.Error)
	}

	// The ID sequence continues past the replayed maximum — no reuse.
	job, err := srv.Submit(&runspec.RunSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000008" {
		t.Errorf("post-recovery ID = %s, want job-000008", job.ID)
	}
}

// TestRecoveryTornJournalTail: garbage appended after the last intact
// record (a torn final write) is truncated away; the intact prefix
// replays and the journal stays writable — no degradation.
func TestRecoveryTornJournalTail(t *testing.T) {
	spool := t.TempDir()
	spec := &runspec.RunSpec{}
	writeJournal(t, spool, []journal.Record{
		{Op: journal.OpAccepted, JobID: "job-000001", SpecHash: spec.Hash(),
			Spec: journalSpec(spec)},
		{Op: journal.OpDone, JobID: "job-000001",
			Result: journalResult(&runspec.Result{Energy: -2})},
	})
	path := filepath.Join(spool, journalFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x42\x00\x00\x00torn-half-written-frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, ts := newTestServer(t, Config{SpoolDir: spool})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status     string `json:"status"`
		Journaling bool   `json:"journaling"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || !health.Journaling {
		t.Errorf("healthz after torn tail = %+v, want ok/journaling", health)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/job-000001")
	if err != nil {
		t.Fatal(err)
	}
	var v View
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil || v.Status != StatusDone {
		t.Errorf("job after torn tail: status %v err %v", v.Status, err)
	}
}

// TestPanicIsolationRetriesToDone: an injected worker panic on the job's
// first progress sample is recovered, the job re-queues, and the retry
// completes normally. Other concurrent jobs are untouched.
func TestPanicIsolationRetriesToDone(t *testing.T) {
	var once sync.Once
	hook := func(ctx context.Context, jobID string, p runspec.Progress) {
		once.Do(func() { panic("server: injected test panic") })
	}
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 2,
		RetryBudget:   2,
		FaultHook:     hook,
	})
	v := submitSpec(t, ts, `{"optimizer": {"method": "nelder-mead", "max_iter": 60}}`)
	done := pollDone(t, ts, v.ID, 60*time.Second)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("panicked job settled as %s (err=%q), want done", done.Status, done.Error)
	}
	if done.Attempt == 0 {
		t.Errorf("job completed with attempt=0; the panic retry was not recorded")
	}
}

// TestWatchdogCancelsStalledJob: a hook that blocks the engine's progress
// path past StallTimeout is cancelled by the watchdog and the retry (the
// hook fires only once) completes the job.
func TestWatchdogCancelsStalledJob(t *testing.T) {
	var once sync.Once
	hook := func(ctx context.Context, jobID string, p runspec.Progress) {
		once.Do(func() {
			// Block until the watchdog cancels the job context; an untimed
			// stall is exactly what the watchdog exists to catch.
			<-ctx.Done()
		})
	}
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		RetryBudget:   2,
		StallTimeout:  200 * time.Millisecond,
		FaultHook:     hook,
	})
	v := submitSpec(t, ts, `{"optimizer": {"method": "nelder-mead", "max_iter": 60}}`)
	done := pollDone(t, ts, v.ID, 60*time.Second)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("stalled job settled as %s (err=%q), want done after watchdog retry", done.Status, done.Error)
	}
	if done.Attempt == 0 {
		t.Errorf("job completed with attempt=0; the stall retry was not recorded")
	}
}

// TestRetryBudgetExhausted: a job whose every attempt panics settles
// terminally once the budget is spent instead of looping forever.
func TestRetryBudgetExhausted(t *testing.T) {
	hook := func(ctx context.Context, jobID string, p runspec.Progress) {
		panic("server: permanent injected panic")
	}
	_, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		RetryBudget:   1,
		FaultHook:     hook,
	})
	v := submitSpec(t, ts, `{"optimizer": {"method": "nelder-mead", "max_iter": 60}}`)
	done := pollDone(t, ts, v.ID, 60*time.Second)
	if done.Status != StatusFailed {
		t.Fatalf("always-panicking job settled as %s, want failed", done.Status)
	}
	if done.Error == "" {
		t.Errorf("terminal failure carries no reason")
	}
}

// TestDegradedJournalStillServes: an unusable journal path (a directory
// squatting on journal.wal) degrades durability but the daemon still
// accepts and completes jobs; /healthz reports the reason.
func TestDegradedJournalStillServes(t *testing.T) {
	spool := t.TempDir()
	if err := os.MkdirAll(filepath.Join(spool, journalFile), 0o755); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{SpoolDir: spool})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status     string `json:"status"`
		Journaling bool   `json:"journaling"`
		Reason     string `json:"degraded_reason"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Journaling || health.Reason == "" {
		t.Fatalf("healthz with broken journal = %+v, want degraded", health)
	}

	v := submitSpec(t, ts, `{"molecule": {"kind": "h2"}}`)
	done := pollDone(t, ts, v.ID, 30*time.Second)
	if done.Status != StatusDone {
		t.Errorf("job on degraded daemon settled as %s", done.Status)
	}
}

// TestResumedEnergyBitEqual: a job interrupted by shutdown and resumed on
// a restarted daemon lands on the bit-identical energy of an
// uninterrupted control run of the same spec — checkpoint capture and
// replay preserve the exact optimizer trajectory.
func TestResumedEnergyBitEqual(t *testing.T) {
	spec := `{"optimizer": {"method": "nelder-mead", "max_iter": 300}, "resilience": {"checkpoint_every": 1}}`

	// Control: the spec uninterrupted on a throwaway daemon.
	_, controlTS := newTestServer(t, Config{MaxConcurrent: 1})
	control := submitSpec(t, controlTS, spec)
	controlDone := pollDone(t, controlTS, control.ID, 60*time.Second)
	if controlDone.Status != StatusDone {
		t.Fatalf("control job settled as %s", controlDone.Status)
	}

	// Interrupted: shut the daemon down mid-run, restart on the same
	// spool, let recovery resume the job from its checkpoint.
	spool := t.TempDir()
	srv, err := New(Config{MaxConcurrent: 1, SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(runspecMustParse(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	waitProgress(t, job, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st, _, _ := job.snapshot(); st != StatusInterrupted {
		t.Fatalf("job at shutdown = %s, want interrupted", st)
	}

	srv2, err := New(Config{MaxConcurrent: 1, SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv2.Shutdown(ctx)
	})
	resumed := pollDone(t, ts2, job.ID, 120*time.Second)
	if resumed.Status != StatusDone || resumed.Result == nil {
		t.Fatalf("resumed job settled as %s (err=%q)", resumed.Status, resumed.Error)
	}

	want := math.Float64bits(controlDone.Result.Energy)
	got := math.Float64bits(resumed.Result.Energy)
	if want != got {
		t.Errorf("resumed energy %v (bits %x) != control %v (bits %x)",
			resumed.Result.Energy, got, controlDone.Result.Energy, want)
	}
}

func runspecMustParse(t *testing.T, s string) *runspec.RunSpec {
	t.Helper()
	spec, err := runspec.Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// waitProgress blocks until the job has emitted n optimizer progress
// events (setup-phase heartbeats excluded — the point is to interrupt a
// run that demonstrably has checkpointable optimizer state).
func waitProgress(t *testing.T, job *Job, n int) {
	t.Helper()
	replay, live := job.subscribe()
	defer job.unsubscribe(live)
	count := 0
	for _, e := range replay {
		if e.Type == "progress" && e.Phase != "setup" {
			count++
		}
	}
	deadline := time.After(30 * time.Second)
	for count < n {
		select {
		case e := <-live:
			if e.Type == "progress" && e.Phase != "setup" {
				count++
			}
		case <-deadline:
			t.Fatal("no optimizer progress before interruption")
		}
	}
}
