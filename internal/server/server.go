// Package server implements the vqed job-serving daemon: VQE workloads
// submitted as canonical runspec.RunSpec documents over HTTP, executed on
// a bounded worker scheduler that shares one simulation pool, with
// per-iteration progress streamed over SSE, results cached by spec
// content hash, and graceful shutdown that checkpoints in-flight jobs for
// resumption.
//
// Endpoints:
//
//	POST /v1/jobs              submit a RunSpec, returns the job record
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job detail (result embedded when finished)
//	GET  /v1/jobs/{id}/result  just the result (202 while running)
//	GET  /v1/jobs/{id}/events  SSE progress stream (replays history)
//	GET  /v1/capabilities      accelerator registry catalog + limits
//	GET  /v1/metrics           telemetry snapshot + scheduler counters
//	GET  /healthz              liveness + queue depth
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kernel/tuning"
	"repro/internal/runspec"
	"repro/internal/state"
	"repro/internal/telemetry"
	"repro/internal/xacc"
)

// Config sizes the daemon.
type Config struct {
	// MaxConcurrent bounds simultaneously running jobs (default 4).
	MaxConcurrent int
	// QueueDepth bounds accepted-but-not-running jobs; a full queue
	// rejects submissions with 503 (default 64).
	QueueDepth int
	// SimWorkers is the width of the shared simulation pool every job
	// draws from (0 = GOMAXPROCS).
	SimWorkers int
	// SpoolDir holds per-job checkpoints and the shutdown manifest
	// (default: a vqed-spool directory under the OS temp dir).
	SpoolDir string
	// CacheCapacity bounds the result cache entries (default 256).
	CacheCapacity int
	// DisableCache turns the result cache off entirely, so repeated
	// specs pay full service time — load validation uses this to measure
	// cold-path latency the capacity planner can be scored against.
	DisableCache bool
	// Registry resolves accelerator names (default xacc.DefaultRegistry).
	Registry *xacc.Registry
	// Estimator predicts a spec's runtime for admission-control wait
	// quoting (nil falls back to a measured EWMA of recent jobs). The
	// vqed CLI wires internal/load/costmodel here.
	Estimator func(*runspec.RunSpec) (time.Duration, bool)
}

// Server is the daemon core: scheduler, job store, result cache, and the
// HTTP handler over them.
type Server struct {
	cfg   Config
	pool  *state.Pool
	mux   *http.ServeMux
	queue chan *Job

	runCtx  context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	running atomic.Int64
	// avgRunNs is the EWMA of recent job execution times backing
	// EstimateWait when no cost model is configured.
	avgRunNs atomic.Int64

	mu         sync.Mutex
	draining   bool
	jobSeq     int
	jobs       map[string]*Job
	order      []string
	cache      map[string]*runspec.Result
	cacheOrder []string
}

// New builds a server and starts its worker fleet.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 256
	}
	if cfg.Registry == nil {
		cfg.Registry = xacc.DefaultRegistry
	}
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = filepath.Join(os.TempDir(), "vqed-spool")
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: spool dir: %w", err)
	}
	//vqelint:ignore ctxflow daemon lifecycle root: New has no caller context; Shutdown cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		pool:   state.NewPool(cfg.SimWorkers),
		queue:  make(chan *Job, cfg.QueueDepth),
		runCtx: ctx,
		cancel: cancel,
		jobs:   map[string]*Job{},
		cache:  map[string]*runspec.Result{},
	}
	s.routes()
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the shared simulation pool (tests assert sharing).
func (s *Server) Pool() *state.Pool { return s.pool }

// Shutdown drains gracefully: new submissions are refused, in-flight
// runs are cancelled — their optimizers halt at the next iteration
// boundary and write final checkpoints into the spool — and a manifest of
// resumable jobs is written before the worker fleet and pool stop. The
// context bounds how long to wait for workers to settle.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	// Cancel in-flight runs; queued jobs are abandoned un-started (they
	// have no partial state to lose).
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: shutdown wait: %w", ctx.Err())
	}
	if mErr := s.writeManifest(); mErr != nil && err == nil {
		err = mErr
	}
	s.pool.Close()
	return err
}

// Manifest is the shutdown record: every job that holds a resumable
// checkpoint, with the spec needed to resubmit it.
type Manifest struct {
	Jobs []ManifestJob `json:"jobs"`
}

// ManifestJob is one resumable entry.
type ManifestJob struct {
	ID             string           `json:"id"`
	SpecHash       string           `json:"spec_hash"`
	CheckpointPath string           `json:"checkpoint_path"`
	Spec           *runspec.RunSpec `json:"spec"`
}

// writeManifest records interrupted jobs under the spool dir.
func (s *Server) writeManifest() error {
	// Snapshot the job list under s.mu, then inspect each job under its
	// own lock only after s.mu is released: taking j.mu inside s.mu
	// would establish a lock order that runJob (which takes them in the
	// other sequence) could invert.
	var m Manifest
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.status == StatusInterrupted && j.checkpoint != "" {
			if _, err := os.Stat(j.checkpoint); err == nil {
				m.Jobs = append(m.Jobs, ManifestJob{
					ID: j.ID, SpecHash: j.SpecHash,
					CheckpointPath: j.checkpoint, Spec: j.Spec,
				})
			}
		}
		j.mu.Unlock()
	}
	if len(m.Jobs) == 0 {
		return nil
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(s.cfg.SpoolDir, "manifest.json"), data, 0o644)
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// maxSpecBytes bounds a submitted spec document.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("spec document too large"))
		return
	}
	spec, err := runspec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Quote a wait proportional to actual load: backlog ÷ fleet,
		// priced by the cost model (or the measured job-time EWMA).
		wait := s.EstimateWait(spec)
		retryAfter := int64((wait + time.Second - 1) / time.Second)
		if retryAfter < 1 {
			retryAfter = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfter, 10))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"kind":              "queue_full",
			"error":             err.Error(),
			"estimated_wait_ms": wait.Milliseconds(),
			"retry_after_s":     retryAfter,
		})
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if st, _, _ := job.snapshot(); st.Terminal() {
		// Cache hit: the job is already settled.
		status = http.StatusOK
	}
	writeJSON(w, status, job.view(true))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.view(true))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	status, result, errMsg := j.snapshot()
	switch {
	case status == StatusFailed:
		writeJSON(w, http.StatusOK, map[string]any{"status": status, "error": errMsg})
	case result != nil:
		writeJSON(w, http.StatusOK, result)
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{"status": status})
	}
}

// handleEvents is the SSE stream: the job's event history replays first,
// then live events until the job settles or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live := j.subscribe()
	defer j.unsubscribe(live)
	writeEvent := func(e Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return !Status(e.Type).Terminal()
	}
	for _, e := range replay {
		if !writeEvent(e) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-live:
			if !writeEvent(e) {
				return
			}
		}
	}
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"accelerators":   s.cfg.Registry.List(),
		"algorithms":     []string{runspec.AlgorithmVQE, runspec.AlgorithmAdapt, runspec.AlgorithmQPE},
		"spec_hash":      runspec.HashPrefix,
		"max_concurrent": s.cfg.MaxConcurrent,
		"queue_depth":    s.cfg.QueueDepth,
		"sim_workers":    s.pool.Workers(),
		"kernel_tuning":  tuning.Snapshot(),
	})
}

// handleMetrics surfaces the process-wide telemetry scope — the same
// instruments the CLIs' run reports draw from, now including the
// server.* scheduler counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = telemetry.Capture().WriteJSON(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	total := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"jobs":    total,
		"queued":  len(s.queue),
		"running": s.running.Load(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	// Client errors carry the engine sentinel text; keep the wire shape
	// uniform so thin clients need one error path.
	kind := "error"
	if errors.Is(err, core.ErrInvalidArgument) {
		kind = "invalid_argument"
	}
	writeJSON(w, status, map[string]string{"kind": kind, "error": err.Error()})
}
