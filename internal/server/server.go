// Package server implements the vqed job-serving daemon: VQE workloads
// submitted as canonical runspec.RunSpec documents over HTTP, executed on
// a bounded worker scheduler that shares one simulation pool, with
// per-iteration progress streamed over SSE, results cached by spec
// content hash, and a durable job lifecycle: every accepted job is
// journaled to a write-ahead log before it is acknowledged, so a crash —
// SIGKILL included — loses nothing. On restart the journal replays:
// finished jobs keep answering polls, unfinished ones re-enqueue and
// resume from their latest resilience checkpoint. Workers isolate panics,
// retry transient failures on a bounded budget, and a watchdog cancels
// evaluations that stop producing progress heartbeats. When the journal
// or checkpoint spool becomes unwritable the daemon sheds durability and
// keeps serving (/healthz reports "degraded").
//
// Endpoints:
//
//	POST   /v1/jobs              submit a RunSpec, returns the job record
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job detail (result embedded when finished)
//	GET    /v1/jobs/{id}/result  just the result (202 while running)
//	GET    /v1/jobs/{id}/events  SSE progress stream (replays history)
//	POST   /v1/sweeps            submit a SweepSpec job family
//	GET    /v1/sweeps            list sweep families
//	GET    /v1/sweeps/{id}       family detail: per-point states + curve
//	GET    /v1/sweeps/{id}/events SSE stream with point-completion frames
//	DELETE /v1/sweeps/{id}       cancel a family (idempotent)
//	GET    /v1/capabilities      accelerator registry catalog + limits
//	GET    /v1/metrics           telemetry snapshot + scheduler counters
//	GET    /healthz              liveness: ok | degraded | draining (always 200)
//	GET    /readyz               readiness: 503 while draining
//
// Every non-2xx /v1 response carries the uniform error envelope
// {"error": {"code", "message", "retry_after_ms"}} (see errors.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernel/tuning"
	"repro/internal/resilience"
	"repro/internal/runspec"
	"repro/internal/server/journal"
	"repro/internal/state"
	"repro/internal/telemetry"
	"repro/internal/xacc"
)

// Config sizes the daemon.
type Config struct {
	// MaxConcurrent bounds simultaneously running jobs (default 4).
	MaxConcurrent int
	// QueueDepth bounds accepted-but-not-running jobs; a full queue
	// rejects submissions with 503 (default 64).
	QueueDepth int
	// SimWorkers is the width of the shared simulation pool every job
	// draws from (0 = GOMAXPROCS).
	SimWorkers int
	// SpoolDir holds per-job checkpoints and the job journal (default: a
	// vqed-spool directory under the OS temp dir).
	SpoolDir string
	// CacheCapacity bounds the result cache entries (default 256).
	CacheCapacity int
	// DisableCache turns the result cache off entirely, so repeated
	// specs pay full service time — load validation uses this to measure
	// cold-path latency the capacity planner can be scored against.
	DisableCache bool
	// DisableJournal turns the write-ahead job journal off (tests that
	// want a throwaway daemon without recovery semantics).
	DisableJournal bool
	// RetryBudget is how many times a retryably-failed job (worker panic,
	// watchdog stall, transient engine fault) is re-queued before it
	// settles terminally (default 2; negative = 0).
	RetryBudget int
	// RetryPolicy paces the backoff between retry attempts (zero value =
	// resilience defaults: 100µs base, 10ms cap, 2x growth).
	RetryPolicy resilience.RetryPolicy
	// StallTimeout is the no-progress deadline: a running job that emits
	// no engine heartbeat for this long is cancelled by the watchdog and
	// retried (0 disables the watchdog).
	StallTimeout time.Duration
	// FaultHook, when set, observes every engine progress sample and may
	// panic or stall — the chaos harness's worker fault injection. Never
	// set it in production.
	FaultHook FaultHook
	// Logf receives operational log lines (recovery, degradation,
	// retries); nil discards them. The vqed CLI wires log.Printf.
	Logf func(format string, args ...any)
	// Registry resolves accelerator names (default xacc.DefaultRegistry).
	Registry *xacc.Registry
	// Estimator predicts a spec's runtime for admission-control wait
	// quoting (nil falls back to a measured EWMA of recent jobs). The
	// vqed CLI wires internal/load/costmodel here.
	Estimator func(*runspec.RunSpec) (time.Duration, bool)
	// MaxSweepPoints caps how many points one sweep family may expand to
	// (default 256; the schema-level ceiling is runspec.MaxSweepPoints).
	MaxSweepPoints int
}

// journalFile is the WAL's name under the spool dir.
const journalFile = "journal.wal"

// Server is the daemon core: scheduler, job store, result cache, journal,
// and the HTTP handler over them.
type Server struct {
	cfg  Config
	pool *state.Pool
	mux  *http.ServeMux
	// queue carries both single jobs and sweep families; a family
	// occupies one worker slot and executes its points sequentially.
	queue chan queueItem

	runCtx  context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	running atomic.Int64
	// avgRunNs is the EWMA of recent job execution times backing
	// EstimateWait when no cost model is configured.
	avgRunNs atomic.Int64
	// spoolOK is false once the checkpoint spool proved unwritable;
	// subsequent jobs run without checkpointing (degraded durability).
	spoolOK    atomic.Bool
	compacting atomic.Bool

	mu       sync.Mutex
	draining bool
	// jn is the write-ahead journal; nil when journaling is disabled or
	// has been shed after a disk error.
	jn *journal.Journal
	// degradedReason is non-empty once any durability surface has been
	// shed; /healthz reports it.
	degradedReason string
	// queued is the admission-control backlog: jobs accepted into the
	// queue channel and not yet picked up. The channel itself is sized
	// with slack for retries and recovery, so this counter — not the
	// channel capacity — enforces QueueDepth.
	queued int
	jobSeq int
	jobs   map[string]*Job
	order  []string
	// sweeps is the family table, keyed by sweep ID.
	sweepSeq   int
	sweeps     map[string]*Sweep
	sweepOrder []string
	// watch maps running job/sweep IDs to their heartbeat and cancel
	// handles for the stuck-job watchdog.
	watch      map[string]*watchEntry
	cache      map[string]*runspec.Result
	cacheOrder []string
}

// queueItem is one scheduler admission: exactly one of job or sweep.
type queueItem struct {
	job   *Job
	sweep *Sweep
}

// watchEntry is one watchdog registration: the heartbeat to compare
// against the no-progress deadline and the cancel that fires on stall.
type watchEntry struct {
	beat   *atomic.Int64
	cancel context.CancelCauseFunc
}

// New builds a server, replays the job journal, and starts the worker
// fleet and watchdog. A broken spool or journal degrades durability but
// never fails construction — the daemon serves regardless.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 256
	}
	if cfg.RetryBudget < 0 {
		cfg.RetryBudget = 0
	}
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = 256
	}
	if cfg.MaxSweepPoints > runspec.MaxSweepPoints {
		cfg.MaxSweepPoints = runspec.MaxSweepPoints
	}
	if cfg.Registry == nil {
		cfg.Registry = xacc.DefaultRegistry
	}
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = filepath.Join(os.TempDir(), "vqed-spool")
	}
	//vqelint:ignore ctxflow daemon lifecycle root: New has no caller context; Shutdown cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		pool:   state.NewPool(cfg.SimWorkers),
		runCtx: ctx,
		cancel: cancel,
		jobs:   map[string]*Job{},
		sweeps: map[string]*Sweep{},
		watch:  map[string]*watchEntry{},
		cache:  map[string]*runspec.Result{},
	}
	s.spoolOK.Store(true)
	s.routes()

	var recs []journal.Record
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		// Serve-but-warn: no spool means no checkpoints and no journal,
		// not a dead daemon.
		s.spoolOK.Store(false)
		s.degrade(fmt.Sprintf("spool dir unusable: %v", err))
	} else if !cfg.DisableJournal {
		jn, replayed, err := journal.Open(filepath.Join(cfg.SpoolDir, journalFile))
		if err != nil {
			s.degrade(fmt.Sprintf("journal unusable: %v", err))
		} else {
			s.jn = jn
			recs = replayed
		}
	}

	// Rebuild the job and sweep tables before sizing the queue: the
	// channel needs room for QueueDepth admissions, one retry slot per
	// worker, and every recovered entry, so sends after admission never
	// block.
	jobRecs, sweepRecs := partitionRecords(recs)
	pending := s.recoverJobs(jobRecs)
	pendingSweeps := s.recoverSweeps(sweepRecs)
	s.queue = make(chan queueItem, cfg.QueueDepth+cfg.MaxConcurrent+len(pending)+len(pendingSweeps)+64)
	for _, job := range pending {
		s.queued++
		s.queue <- queueItem{job: job}
	}
	for _, sw := range pendingSweeps {
		s.queued++
		s.queue <- queueItem{sweep: sw}
	}
	if len(pending) > 0 || len(s.jobs) > 0 || len(s.sweeps) > 0 {
		s.logf("vqed: journal replay: %d job(s) and %d sweep(s) restored, %d+%d re-enqueued",
			len(s.jobs), len(s.sweeps), len(pending), len(pendingSweeps))
	}
	s.compactIfNeeded(len(recs) > 0)

	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.StallTimeout > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the shared simulation pool (tests assert sharing).
func (s *Server) Pool() *state.Pool { return s.pool }

// logf forwards to the configured logger.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// degrade sheds the journal (keeping the first failure as the reported
// reason) and flips /healthz to "degraded". The daemon keeps serving.
func (s *Server) degrade(reason string) {
	s.mu.Lock()
	if s.degradedReason == "" {
		s.degradedReason = reason
	}
	jn := s.jn
	s.jn = nil
	s.mu.Unlock()
	if jn != nil {
		jn.Close()
	}
	s.logf("vqed: degraded durability: %s", reason)
}

// degradeSpool stops assigning checkpoint paths after a checkpoint write
// failure; jobs keep running without durability.
func (s *Server) degradeSpool(reason string) {
	if s.spoolOK.CompareAndSwap(true, false) {
		s.mu.Lock()
		if s.degradedReason == "" {
			s.degradedReason = reason
		}
		s.mu.Unlock()
		s.logf("vqed: degraded durability: %s", reason)
	}
}

// journalAppend durably records one lifecycle transition; a write failure
// degrades journaling rather than failing the job.
func (s *Server) journalAppend(rec journal.Record) {
	s.mu.Lock()
	jn := s.jn
	s.mu.Unlock()
	if jn == nil {
		return
	}
	if err := jn.Append(rec); err != nil {
		s.degrade(fmt.Sprintf("journal append failed: %v", err))
	}
}

// cacheStore inserts a result under FIFO eviction (takes s.mu).
func (s *Server) cacheStore(hash string, res *runspec.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheStoreLocked(hash, res)
}

func (s *Server) cacheStoreLocked(hash string, res *runspec.Result) {
	if _, ok := s.cache[hash]; ok {
		return
	}
	s.cache[hash] = res
	s.cacheOrder = append(s.cacheOrder, hash)
	if len(s.cacheOrder) > s.cfg.CacheCapacity {
		evict := s.cacheOrder[0]
		s.cacheOrder = s.cacheOrder[1:]
		delete(s.cache, evict)
	}
}

// Shutdown drains gracefully: new submissions are refused, in-flight
// runs are cancelled — their optimizers halt at the next iteration
// boundary, write final checkpoints into the spool, and journal
// "checkpointed" records so the next start resumes them — then the
// journal and pool close. The context bounds how long to wait for
// workers to settle.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	// Cancel in-flight runs; queued jobs stay journaled as accepted and
	// are re-enqueued on the next start.
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: shutdown wait: %w", ctx.Err())
	}
	s.mu.Lock()
	jn := s.jn
	s.jn = nil
	s.mu.Unlock()
	if jn != nil {
		if cErr := jn.Close(); cErr != nil && err == nil {
			err = cErr
		}
	}
	s.pool.Close()
	return err
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
}

// maxSpecBytes bounds a submitted spec document.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("spec document too large"))
		return
	}
	spec, err := runspec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Quote a wait proportional to actual load: backlog ÷ fleet,
		// priced by the cost model (or the measured job-time EWMA).
		writeAPIError(w, http.StatusServiceUnavailable, codeQueueFull, err.Error(), s.EstimateWait(spec))
		return
	case errors.Is(err, ErrShuttingDown):
		writeAPIError(w, http.StatusServiceUnavailable, codeShuttingDown, err.Error(), 0)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if st, _, _ := job.snapshot(); st.Terminal() {
		// Cache hit: the job is already settled.
		status = http.StatusOK
	}
	writeJSON(w, status, job.view(true))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.view(true))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	status, result, errMsg := j.snapshot()
	switch {
	case status == StatusFailed:
		writeJSON(w, http.StatusOK, map[string]any{"status": status, "error": errMsg})
	case result != nil:
		writeJSON(w, http.StatusOK, result)
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{"status": status})
	}
}

// handleEvents is the SSE stream: the job's event history replays first,
// then live events until the job settles or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		streamEvents(w, r, j)
	}
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"accelerators": s.cfg.Registry.List(),
		"algorithms":   []string{runspec.AlgorithmVQE, runspec.AlgorithmAdapt, runspec.AlgorithmQPE},
		"spec_hash":    runspec.HashPrefix,
		"sweep_hash":   runspec.SweepHashPrefix,
		"sweep_axes": []string{runspec.AxisDistance, runspec.AxisHopping,
			runspec.AxisRepulsion, runspec.AxisLayers, runspec.AxisDownfold},
		"max_sweep_points": s.cfg.MaxSweepPoints,
		"max_concurrent":   s.cfg.MaxConcurrent,
		"queue_depth":      s.cfg.QueueDepth,
		"sim_workers":      s.pool.Workers(),
		"kernel_tuning":    tuning.Snapshot(),
	})
}

// handleMetrics surfaces the process-wide telemetry scope — the same
// instruments the CLIs' run reports draw from, now including the
// server.* scheduler counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = telemetry.Capture().WriteJSON(w)
}

// handleHealth is liveness: always 200 while the process serves. The
// status field distinguishes full durability ("ok") from shed durability
// ("degraded") and drain-in-progress ("draining").
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	degraded := s.degradedReason
	journaling := s.jn != nil
	total := len(s.jobs)
	sweeps := len(s.sweeps)
	s.mu.Unlock()
	status := "ok"
	if degraded != "" {
		status = "degraded"
	}
	if draining {
		status = "draining"
	}
	body := map[string]any{
		"status":     status,
		"jobs":       total,
		"sweeps":     sweeps,
		"queued":     len(s.queue),
		"running":    s.running.Load(),
		"journaling": journaling,
	}
	if degraded != "" {
		body["degraded_reason"] = degraded
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReady is readiness, split from liveness: a draining daemon is
// alive (healthz 200) but must stop receiving traffic (readyz 503). A
// degraded daemon still serves — durability loss is a warning, not an
// outage.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
