package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestMetricsShape pins the /v1/metrics wire contract: the payload must
// decode into telemetry.Snapshot with no unknown fields, and after a job
// completes it must carry the scheduler counters and latency rings the
// vqeload snapshot parser reads. If either side drifts, this fails before
// the load harness silently reports zeros.
func TestMetricsShape(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(func() { telemetry.Disable(); telemetry.Reset() })

	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	v := submitSpec(t, ts, `{"molecule":{"kind":"h2"}}`)
	pollDone(t, ts, v.ID, 30*time.Second)
	// Resubmit so the cache-hit counter is exercised too.
	submitSpec(t, ts, `{"molecule":{"kind":"h2"}}`)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var snap telemetry.Snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("payload no longer matches telemetry.Snapshot: %v\n%s", err, body)
	}

	for _, counter := range []string{
		"server.jobs.submitted",
		"server.jobs.completed",
		"server.cache.hits",
	} {
		if snap.Counters[counter] == 0 {
			t.Errorf("counter %q missing or zero after a completed job", counter)
		}
	}
	for _, ring := range []string{
		"server.job.queue_wait_ms",
		"server.job.run_ms",
		"server.job.e2e_ms",
	} {
		st, ok := snap.Rings[ring]
		if !ok {
			t.Errorf("ring %q missing from snapshot", ring)
			continue
		}
		if st.Count == 0 || st.P99 < st.P50 || st.P999 < st.P99 {
			t.Errorf("ring %q stats implausible: %+v", ring, st)
		}
	}
}
