package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openOrFatal(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j, recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs := openOrFatal(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Op: OpAccepted, JobID: "job-000001", SpecHash: "rs1:abc", Spec: json.RawMessage(`{"problem":{"molecule":"h2"}}`)},
		{Op: OpRunning, JobID: "job-000001", Attempt: 0},
		{Op: OpCheckpointed, JobID: "job-000001", Checkpoint: "/spool/job-000001.ckpt"},
		{Op: OpRetrying, JobID: "job-000001", Attempt: 1, Error: "server: worker panic"},
		{Op: OpDone, JobID: "job-000001", SpecHash: "rs1:abc", Result: json.RawMessage(`{"energy":-1.137}`)},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Op, err)
		}
	}
	if got := j.Appended(); got != len(want) {
		t.Fatalf("Appended() = %d, want %d", got, len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := openOrFatal(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Op != b.Op || a.JobID != b.JobID || a.SpecHash != b.SpecHash ||
			a.Checkpoint != b.Checkpoint || a.Attempt != b.Attempt || a.Error != b.Error ||
			string(a.Spec) != string(b.Spec) || string(a.Result) != string(b.Result) {
			t.Errorf("record %d: got %+v, want %+v", i, b, a)
		}
	}
}

func TestOpTerminal(t *testing.T) {
	for op, want := range map[Op]bool{
		OpAccepted: false, OpRunning: false, OpCheckpointed: false,
		OpRetrying: false, OpDone: true, OpFailed: true, OpInterrupted: true,
	} {
		if op.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", op, !want, want)
		}
	}
}

// TestTornFinalRecordTruncated is the crash signature: SIGKILL mid-append
// leaves a partial frame at the tail. Open must keep every intact record
// and truncate the torn one so subsequent appends land on a clean
// boundary.
func TestTornFinalRecordTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openOrFatal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Op: OpAccepted, JobID: fmt.Sprintf("job-%06d", i+1)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Cut the file at several points inside the final frame: inside the
	// header, right after it, and mid-payload.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	intact := int64(len(full))
	lastLen := binary.LittleEndian.Uint32(full[lastFrameOffset(t, full):])
	_ = lastLen
	for _, cut := range []int64{intact - 1, intact - 5, lastFrameOffset(t, full) + 3} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs := openOrFatal(t, path)
		if len(recs) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(recs))
		}
		// The tail must be gone: appending then reopening yields 3 records.
		if err := j2.Append(Record{Op: OpAccepted, JobID: "job-000009"}); err != nil {
			t.Fatalf("Append after truncation: %v", err)
		}
		if err := j2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		j3, recs3 := openOrFatal(t, path)
		if len(recs3) != 3 || recs3[2].JobID != "job-000009" {
			t.Fatalf("cut at %d: after re-append replayed %v", cut, recs3)
		}
		j3.Close()
	}
}

// lastFrameOffset walks the frames and returns the offset of the final
// frame's header.
func lastFrameOffset(t *testing.T, buf []byte) int64 {
	t.Helper()
	var off, prev int64
	for off+frameHeaderSize <= int64(len(buf)) {
		prev = off
		length := binary.LittleEndian.Uint32(buf[off : off+4])
		off += frameHeaderSize + int64(length)
	}
	return prev
}

// TestCorruptTailCRC flips a payload bit in the final record: the CRC
// must reject it and replay stops at the previous record.
func TestCorruptTailCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openOrFatal(t, path)
	for i := 0; i < 2; i++ {
		if err := j.Append(Record{Op: OpAccepted, JobID: fmt.Sprintf("job-%06d", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	last := lastFrameOffset(t, buf)
	buf[last+frameHeaderSize+2] ^= 0x40 // flip a payload bit in the final record
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := openOrFatal(t, path)
	defer j2.Close()
	if len(recs) != 1 || recs[0].JobID != "job-000001" {
		t.Fatalf("corrupt tail: replayed %+v, want only job-000001", recs)
	}
}

// TestAbsurdLengthPrefixTreatedAsCorruption guards the allocation path:
// a giant length prefix must stop the scan, not allocate gigabytes.
func TestAbsurdLengthPrefixTreatedAsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openOrFatal(t, path)
	if err := j.Append(Record{Op: OpAccepted, JobID: "job-000001"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j2, recs := openOrFatal(t, path)
	defer j2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openOrFatal(t, path)
	for i := 0; i < 50; i++ {
		if err := j.Append(Record{Op: OpAccepted, JobID: fmt.Sprintf("job-%06d", i+1)}); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(Record{Op: OpDone, JobID: fmt.Sprintf("job-%06d", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	live := []Record{
		{Op: OpAccepted, JobID: "job-000050", SpecHash: "rs1:live"},
		{Op: OpCheckpointed, JobID: "job-000050", Checkpoint: "ck"},
	}
	if err := j.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := j.Appended(); got != 0 {
		t.Fatalf("Appended() after Compact = %d, want 0", got)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}
	// The compacted journal must still accept appends and replay the live
	// set plus anything after.
	if err := j.Append(Record{Op: OpDone, JobID: "job-000050"}); err != nil {
		t.Fatalf("Append after Compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs := openOrFatal(t, path)
	defer j2.Close()
	if len(recs) != 3 || recs[0].SpecHash != "rs1:live" || recs[2].Op != OpDone {
		t.Fatalf("post-compact replay: %+v", recs)
	}
}

// TestConcurrentAppendsGroupCommit hammers Append from many goroutines:
// every record must be durable and replayable, and the group-commit path
// must be race-clean (this test is the -race workload).
func TestConcurrentAppendsGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openOrFatal(t, path)
	const (
		writers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*each)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := Record{Op: OpAccepted, JobID: fmt.Sprintf("job-%02d-%03d", w, i)}
				if err := j.Append(rec); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs := openOrFatal(t, path)
	defer j2.Close()
	if len(recs) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*each)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if seen[r.JobID] {
			t.Fatalf("duplicate record %s", r.JobID)
		}
		seen[r.JobID] = true
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openOrFatal(t, path)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpAccepted, JobID: "job-000001"}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Compact(nil); err == nil {
		t.Fatal("Compact after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestOpenPathError(t *testing.T) {
	dir := t.TempDir()
	// A directory at the journal path is the canonical "disk is wrong"
	// failure the server degrades on.
	bad := filepath.Join(dir, "journal.wal")
	if err := os.Mkdir(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(bad); err == nil {
		t.Fatal("Open on a directory succeeded")
	}
}

// TestCompactConcurrentWithAppends interleaves compaction with live
// appends; both must serialize cleanly and nothing may be lost after the
// compaction barrier.
func TestCompactConcurrentWithAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openOrFatal(t, path)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := j.Append(Record{Op: OpAccepted, JobID: fmt.Sprintf("bg-%04d", i)}); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if err := j.Compact([]Record{{Op: OpAccepted, JobID: "live"}}); err != nil {
			t.Fatalf("Compact %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := j.Append(Record{Op: OpDone, JobID: "final"}); err != nil {
		t.Fatalf("Append after concurrent compacts: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openOrFatal(t, path)
	found := false
	for _, r := range recs {
		if r.JobID == "final" {
			found = true
		}
	}
	if !found {
		t.Fatalf("final record lost across compactions: %+v", recs)
	}
}
