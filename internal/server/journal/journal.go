// Package journal is the vqed write-ahead job journal: an append-only
// log of job lifecycle transitions (accepted → running → checkpointed →
// done/failed) that survives a SIGKILL of the daemon. On restart the
// journal is replayed: jobs that were accepted but never finished are
// re-enqueued, running jobs resume from their latest resilience
// checkpoint, and terminal jobs keep answering client polls with their
// recorded results.
//
// On-disk format: a flat sequence of length-prefixed, CRC-framed
// records, reusing the internal/resilience envelope conventions
// (CRC-32C over the raw payload bytes — the polynomial HPC filesystems
// use for payload integrity):
//
//	[uint32 LE payload length][uint32 LE CRC-32C(payload)][payload JSON]
//
// Appends are fsync-batched with group commit: concurrent Append calls
// coalesce into one fsync, and every Append returns only after its
// record is durable, so an acknowledged job is never lost to a crash. A
// crash mid-append leaves at most one torn record at the tail; Open
// detects it (short frame or CRC mismatch) and truncates the file back
// to the last intact record instead of refusing to start. Compact
// rewrites the journal to just the live records — the daemon calls it
// after replay and whenever the log has grown well past the live set —
// so the file stays proportional to in-flight work, not job history.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/telemetry"
)

// Op is a job lifecycle transition.
type Op string

const (
	// OpAccepted: the job passed admission; the record carries the spec.
	OpAccepted Op = "accepted"
	// OpRunning: a worker picked the job up (Attempt counts retries).
	OpRunning Op = "running"
	// OpCheckpointed: the job was interrupted (drain, stall, crash-adjacent
	// requeue) with a resumable checkpoint at Checkpoint; non-terminal —
	// replay resumes it.
	OpCheckpointed Op = "checkpointed"
	// OpRetrying: the job failed retryably and was re-queued.
	OpRetrying Op = "retrying"
	// OpDone: terminal success; the record carries the result.
	OpDone Op = "done"
	// OpFailed: terminal failure; the record carries the error.
	OpFailed Op = "failed"
	// OpInterrupted: terminal best-so-far halt (walltime or degraded
	// stall) with the partial result.
	OpInterrupted Op = "interrupted"

	// Sweep family lifecycle. JobID carries the sweep ID; point-level
	// records additionally set Point (1-based submission index) and use
	// SpecHash for the point's rs1 hash, while family-level records use
	// it for the sw1 family hash.

	// OpSweepAccepted: the family passed admission; the record carries
	// the full SweepSpec document.
	OpSweepAccepted Op = "sweep_accepted"
	// OpSweepPointDone: one point finished; the record carries its result.
	OpSweepPointDone Op = "sweep_point_done"
	// OpSweepPointFailed: one point settled terminally without a result.
	OpSweepPointFailed Op = "sweep_point_failed"
	// OpSweepCheckpoint: a point was interrupted (drain) with a resumable
	// checkpoint at Checkpoint; non-terminal — replay resumes the family.
	OpSweepCheckpoint Op = "sweep_checkpoint"
	// OpSweepDone / OpSweepFailed / OpSweepCancelled: family terminal.
	OpSweepDone      Op = "sweep_done"
	OpSweepFailed    Op = "sweep_failed"
	OpSweepCancelled Op = "sweep_cancelled"
)

// Terminal reports whether the op ends a single job's lifecycle.
func (o Op) Terminal() bool {
	return o == OpDone || o == OpFailed || o == OpInterrupted
}

// Sweep reports whether the op belongs to a sweep family's lifecycle.
func (o Op) Sweep() bool {
	switch o {
	case OpSweepAccepted, OpSweepPointDone, OpSweepPointFailed,
		OpSweepCheckpoint, OpSweepDone, OpSweepFailed, OpSweepCancelled:
		return true
	}
	return false
}

// SweepTerminal reports whether the op ends a sweep family's lifecycle.
func (o Op) SweepTerminal() bool {
	return o == OpSweepDone || o == OpSweepFailed || o == OpSweepCancelled
}

// Record is one journal entry. Spec and Result stay raw JSON so the
// journal does not depend on the spec schema — the server marshals and
// unmarshals at the boundary.
type Record struct {
	Op       Op     `json:"op"`
	JobID    string `json:"job_id"`
	SpecHash string `json:"spec_hash,omitempty"`
	// Spec is the submitted RunSpec document (OpAccepted only).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Checkpoint is the resumable snapshot path (OpCheckpointed).
	Checkpoint string `json:"checkpoint,omitempty"`
	// Attempt is the 0-based execution attempt (OpRunning, OpRetrying).
	Attempt int `json:"attempt,omitempty"`
	// Point is the 1-based submission-order index of a sweep member
	// (sweep point records only; 0 means the record is family-level).
	Point int `json:"point,omitempty"`
	// Error carries the failure text (OpFailed, OpRetrying).
	Error string `json:"error,omitempty"`
	// Result is the serialized runspec.Result (OpDone, OpInterrupted).
	Result json.RawMessage `json:"result,omitempty"`
}

const (
	frameHeaderSize = 8
	// maxRecordSize bounds one payload; a length prefix beyond it is
	// treated as tail corruption, not an allocation request.
	maxRecordSize = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	mAppends   = telemetry.GetCounter("journal.appends")
	mSyncs     = telemetry.GetCounter("journal.syncs")
	mBytes     = telemetry.GetCounter("journal.bytes")
	mTruncated = telemetry.GetCounter("journal.torn_tail_truncations")
	mCompacts  = telemetry.GetCounter("journal.compactions")
)

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	path string

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	err      error // sticky write/sync failure; all later Appends fail
	closed   bool
	writeSeq int64 // records written to the OS
	syncSeq  int64 // records known durable
	syncing  bool  // syncer is inside an fsync (compaction must wait)
	appended int   // records appended since Open/Compact

	syncerDone chan struct{}
}

// Open opens (creating if absent) the journal at path, replays every
// intact record, and truncates a torn tail — the crash signature of a
// kill mid-append — back to the last intact record. The returned records
// are in append order.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	recs, good, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		// Torn or corrupt tail: everything before it is intact; drop the
		// rest so the next append starts on a frame boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
		mTruncated.Inc()
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	j := &Journal{path: path, f: f, syncerDone: make(chan struct{})}
	j.cond = sync.NewCond(&j.mu)
	go j.syncLoop(j.syncerDone)
	return j, recs, nil
}

// scan reads intact records from the start of f, returning them and the
// offset just past the last intact frame. Corruption is not an error —
// the scan simply stops there.
func scan(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: seek: %w", err)
	}
	var (
		recs   []Record
		offset int64
		header [frameHeaderSize]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			// EOF here is a clean end; a partial header is a torn tail.
			return recs, offset, nil
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordSize {
			return recs, offset, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, offset, nil
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, offset, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, offset, nil
		}
		recs = append(recs, rec)
		offset += frameHeaderSize + int64(length)
	}
}

func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal record: %w", err)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	return buf, nil
}

// Append writes one record and blocks until it is durable on disk.
// Concurrent appends share fsyncs (group commit): the syncer coalesces
// every record written since the last barrier into a single fsync, so a
// burst of admissions pays one disk flush, not one each.
func (j *Journal) Append(rec Record) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	if _, werr := j.f.Write(buf); werr != nil {
		j.err = fmt.Errorf("journal: append %s: %w", j.path, werr)
		err := j.err
		j.cond.Broadcast()
		j.mu.Unlock()
		return err
	}
	j.writeSeq++
	j.appended++
	seq := j.writeSeq
	j.cond.Broadcast() // wake the syncer
	for j.syncSeq < seq && j.err == nil && !j.closed {
		//vqelint:ignore lockdiscipline group commit: Cond.Wait releases j.mu while parked; holding it here is the condition-variable protocol, not a stall
		j.cond.Wait()
	}
	err = j.err
	closed := j.closed && j.syncSeq < seq
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if closed {
		return fmt.Errorf("journal: %s closed before record was durable", j.path)
	}
	mAppends.Inc()
	mBytes.Add(int64(len(buf)))
	return nil
}

// syncLoop is the group-commit worker: it waits for unsynced writes,
// fsyncs once for however many have accumulated, and wakes every Append
// blocked on durability. done is closed when the loop exits (Close joins
// on it).
func (j *Journal) syncLoop(done chan struct{}) {
	defer close(done)
	//vqelint:ignore ctxflow lifecycle loop bounded by Close (j.closed wakes and exits it), not by a context — the journal outlives any request
	for {
		j.mu.Lock()
		for j.syncSeq == j.writeSeq && !j.closed && j.err == nil {
			//vqelint:ignore lockdiscipline Cond.Wait releases j.mu while parked; this is the syncer's idle wait, not a held-lock block
			j.cond.Wait()
		}
		if j.err != nil || (j.closed && j.syncSeq == j.writeSeq) {
			j.mu.Unlock()
			return
		}
		target := j.writeSeq
		f := j.f
		j.syncing = true
		j.mu.Unlock()

		err := f.Sync()

		j.mu.Lock()
		j.syncing = false
		if err != nil && j.err == nil {
			j.err = fmt.Errorf("journal: sync %s: %w", j.path, err)
		}
		if err == nil {
			j.syncSeq = target
			mSyncs.Inc()
		}
		j.cond.Broadcast()
		j.mu.Unlock()
	}
}

// Appended reports how many records have been appended since Open or the
// last Compact — the compaction trigger the server compares against its
// live-job count.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Compact atomically replaces the journal contents with exactly the
// given records (the caller's snapshot of live state): they are written
// to a temp file in the same directory, fsynced, and renamed over the
// journal, so a crash mid-compaction leaves the previous journal intact.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.closed {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	// Quiesce the syncer: wait out any in-flight fsync and drain pending
	// durability so no goroutine touches the old file once it is swapped.
	for (j.syncing || j.syncSeq < j.writeSeq) && j.err == nil {
		//vqelint:ignore lockdiscipline quiesce barrier: Cond.Wait releases j.mu so the syncer can finish; the lock must be reacquired before the swap
		j.cond.Wait()
	}
	if j.err != nil {
		return j.err
	}

	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: compact temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	for _, rec := range live {
		buf, err := frame(rec)
		if err != nil {
			return cleanup(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return cleanup(fmt.Errorf("journal: compact write: %w", err))
		}
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("journal: compact sync: %w", err))
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		return cleanup(fmt.Errorf("journal: compact rename: %w", err))
	}
	old := j.f
	j.f = tmp
	old.Close()
	j.appended = 0
	mCompacts.Inc()
	return nil
}

// Close flushes pending writes and releases the file. Further Appends
// fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
	<-j.syncerDone

	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.err
	if cerr := j.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("journal: close %s: %w", j.path, cerr)
	}
	return err
}
