package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runspec"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: accepted, waiting for a scheduler slot.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is executing the spec.
	StatusRunning Status = "running"
	// StatusDone: completed; the result is final and cached.
	StatusDone Status = "done"
	// StatusFailed: the run returned an error.
	StatusFailed Status = "failed"
	// StatusInterrupted: halted by shutdown or walltime with best-so-far
	// results; a checkpoint on disk resumes the exact trajectory.
	StatusInterrupted Status = "interrupted"
	// StatusCancelled: a sweep family (or one of its not-yet-run points)
	// was cancelled by the client. Jobs never reach this state.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusInterrupted || s == StatusCancelled
}

// EventRetrying is the non-lifecycle event type published when a job
// failed retryably (panic, stall, transient fault) and is re-queued;
// Error carries the reason. The job returns to "queued" immediately
// after.
const EventRetrying = "retrying"

// EventPointDone / EventPointFailed are the sweep point-completion
// frames: one per settled family member, carrying Point/Value (and
// Energy on success).
const (
	EventPointDone   = "point_done"
	EventPointFailed = "point_failed"
)

// Event is one SSE frame: a lifecycle transition, a per-iteration
// progress sample, or a sweep point completion.
type Event struct {
	// Type: queued | running | progress | retrying | done | failed |
	// interrupted | cancelled | point_done | point_failed.
	Type string `json:"type"`
	// Seq numbers events within a job or sweep, monotonically from 1.
	Seq int `json:"seq"`
	// Progress fields (Type == "progress").
	Phase     string  `json:"phase,omitempty"`
	Iteration int     `json:"iteration,omitempty"`
	Energy    float64 `json:"energy,omitempty"`
	Operator  string  `json:"operator,omitempty"`
	// Point / Value identify the sweep member a frame belongs to
	// (point_done, point_failed, and sweep progress frames). Point is
	// the 1-based submission-order index.
	Point int     `json:"point,omitempty"`
	Value float64 `json:"value,omitempty"`
	// Error is set on failed events.
	Error string `json:"error,omitempty"`
}

// maxEventHistory bounds the per-job replay buffer; when full, the oldest
// progress events are dropped (lifecycle events are never dropped).
const maxEventHistory = 1024

// Job is one submitted spec and everything observed about its execution.
// All mutable fields are guarded by mu.
type Job struct {
	ID   string           `json:"id"`
	Spec *runspec.RunSpec `json:"spec"`
	// SpecHash is the content hash of the canonical spec — the cache key.
	SpecHash string `json:"spec_hash"`

	mu       sync.Mutex
	status   Status
	err      string
	result   *runspec.Result
	cacheHit bool
	// checkpoint is the spool path assigned to this job.
	checkpoint string
	// attempt counts completed execution attempts (0 before the first
	// retry); the scheduler's retry budget is measured against it.
	attempt int
	// resume marks that the next execution should load the checkpoint
	// (set after a retryable failure left a valid snapshot, or by journal
	// recovery after a daemon restart).
	resume    bool
	submitted time.Time
	started   time.Time
	finished  time.Time

	// lastBeat is the UnixNano of the most recent engine progress
	// heartbeat — what the stuck-job watchdog compares against its
	// no-progress deadline. Atomic so the watchdog never contends with
	// the hot observer path.
	lastBeat atomic.Int64

	// hub carries the event history and SSE fan-out; its lock is
	// independent of j.mu (see eventHub).
	hub eventHub
}

// beat records engine liveness for the watchdog.
func (j *Job) beat() { j.lastBeat.Store(time.Now().UnixNano()) }

func newJob(id string, spec *runspec.RunSpec) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		SpecHash:  spec.Hash(),
		status:    StatusQueued,
		submitted: time.Now(),
		hub:       newEventHub(),
	}
}

// publish / subscribe / unsubscribe delegate to the event hub.
func (j *Job) publish(e Event)                  { j.hub.publish(e) }
func (j *Job) subscribe() ([]Event, chan Event) { return j.hub.subscribe() }
func (j *Job) unsubscribe(ch chan Event)        { j.hub.unsubscribe(ch) }

// View is the JSON representation of a job served by the jobs endpoints.
type View struct {
	ID       string `json:"id"`
	SpecHash string `json:"spec_hash"`
	Status   Status `json:"status"`
	// CacheHit marks a job served from the result cache without
	// re-simulation.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// Attempt counts retries consumed so far (0 = first execution).
	Attempt int `json:"attempt,omitempty"`
	// CheckpointPath is set once the job has a spool snapshot to resume
	// from (interrupted jobs).
	CheckpointPath string          `json:"checkpoint_path,omitempty"`
	Submitted      time.Time       `json:"submitted"`
	Started        *time.Time      `json:"started,omitempty"`
	Finished       *time.Time      `json:"finished,omitempty"`
	Result         *runspec.Result `json:"result,omitempty"`
}

// view snapshots the job. withResult controls whether the full result is
// embedded (detail endpoints) or elided (listings).
func (j *Job) view(withResult bool) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:        j.ID,
		SpecHash:  j.SpecHash,
		Status:    j.status,
		CacheHit:  j.cacheHit,
		Error:     j.err,
		Attempt:   j.attempt,
		Submitted: j.submitted,
	}
	if j.status == StatusInterrupted {
		v.CheckpointPath = j.checkpoint
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// snapshot returns the fields needed without holding the lock long.
func (j *Job) snapshot() (Status, *runspec.Result, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.result, j.err
}
