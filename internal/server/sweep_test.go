package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/runspec"
)

func submitSweep(t *testing.T, ts *httptest.Server, body string) (SweepView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("submit sweep: status %d: %s", resp.StatusCode, buf.String())
	}
	var v SweepView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v, resp.StatusCode
}

func pollSweepDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) SweepView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v SweepView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %s after %s", id, v.Status, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

const sweepBody = `{"base":{"algorithm":"vqe","molecule":{"kind":"h2"}},"axis":{"param":"distance","values":[0.5,0.7414,1.5]}}`

// TestSweepEndToEnd: a three-point bond scan over HTTP runs to done with
// every point settled exactly once, the curve ascending by bond length,
// and every point after the first warm-started.
func TestSweepEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	v, status := submitSweep(t, ts, sweepBody)
	if status != http.StatusAccepted {
		t.Fatalf("fresh family acknowledged with %d, want 202", status)
	}
	if v.Points != 3 || !strings.HasPrefix(v.FamilyHash, runspec.SweepHashPrefix+":") {
		t.Fatalf("accepted view %+v", v)
	}

	done := pollSweepDone(t, ts, v.ID, 60*time.Second)
	if done.Status != StatusDone || done.Done != 3 || done.Failed != 0 {
		t.Fatalf("family settled %s: %+v", done.Status, done)
	}
	if len(done.PointStates) != 3 || len(done.Curve) != 3 {
		t.Fatalf("detail carries %d states / %d curve points, want 3/3",
			len(done.PointStates), len(done.Curve))
	}
	for i := 1; i < len(done.Curve); i++ {
		if done.Curve[i].Value <= done.Curve[i-1].Value {
			t.Errorf("curve not ascending: %+v", done.Curve)
		}
	}
	if done.WarmStarts != 2 {
		t.Errorf("warm starts = %d, want every point but the first", done.WarmStarts)
	}
	if done.EnergyEvaluations == 0 {
		t.Errorf("family reports zero optimizer work")
	}
	// The equilibrium geometry is the curve's minimum.
	for _, c := range done.Curve {
		if c.Energy < done.Curve[1].Energy-1e-9 {
			t.Errorf("R=%.4f below equilibrium: %+v", c.Value, done.Curve)
		}
	}
	// Point hashes are ordinary rs1 hashes.
	for _, p := range done.PointStates {
		if !strings.HasPrefix(p.SpecHash, runspec.HashPrefix+":") {
			t.Errorf("point %d hash %q", p.Point, p.SpecHash)
		}
	}
}

// TestSweepWireShapeGolden pins the /v1/sweeps wire contract: submit and
// detail bodies must decode into the pinned shapes below with no unknown
// fields, so any accidental field rename or addition fails here before
// external clients break.
func TestSweepWireShapeGolden(t *testing.T) {
	type pinnedPoint struct {
		Point       int     `json:"point"`
		Value       float64 `json:"value"`
		SpecHash    string  `json:"spec_hash"`
		Status      string  `json:"status"`
		CacheHit    bool    `json:"cache_hit"`
		WarmStarted bool    `json:"warm_started"`
		Attempt     int     `json:"attempt"`
		Error       string  `json:"error"`
		Energy      float64 `json:"energy"`
	}
	type pinnedCurve struct {
		Value       float64 `json:"value"`
		Energy      float64 `json:"energy"`
		Exact       float64 `json:"exact"`
		Evaluations int     `json:"evaluations"`
	}
	type pinnedView struct {
		ID                string        `json:"id"`
		FamilyHash        string        `json:"family_hash"`
		Param             string        `json:"param"`
		Status            string        `json:"status"`
		Error             string        `json:"error"`
		Points            int           `json:"points"`
		Done              int           `json:"done"`
		Failed            int           `json:"failed"`
		Cancelled         int           `json:"cancelled"`
		CacheHits         int           `json:"cache_hits"`
		WarmStarts        int           `json:"warm_starts"`
		EnergyEvaluations int           `json:"energy_evaluations"`
		Submitted         time.Time     `json:"submitted"`
		Started           *time.Time    `json:"started"`
		Finished          *time.Time    `json:"finished"`
		PointStates       []pinnedPoint `json:"point_states"`
		Curve             []pinnedCurve `json:"curve"`
	}
	strict := func(t *testing.T, data []byte) pinnedView {
		t.Helper()
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var v pinnedView
		if err := dec.Decode(&v); err != nil {
			t.Fatalf("sweep view drifted from the pinned wire shape: %v\n%s", err, data)
		}
		return v
	}

	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	accepted := strict(t, body)
	if accepted.ID == "" || accepted.Points != 3 || accepted.Param != "distance" {
		t.Errorf("accepted view %+v", accepted)
	}

	pollSweepDone(t, ts, accepted.ID, 60*time.Second)
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	detail := strict(t, body)
	if detail.Status != "done" || len(detail.PointStates) != 3 || len(detail.Curve) != 3 {
		t.Errorf("detail view %+v", detail)
	}

	// The listing elides per-point detail but keeps the same envelope.
	resp, err = http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var list struct {
		Sweeps []pinnedView `json:"sweeps"`
	}
	if err := dec.Decode(&list); err != nil {
		t.Fatalf("sweep listing drifted: %v\n%s", err, body)
	}
	if len(list.Sweeps) != 1 || len(list.Sweeps[0].PointStates) != 0 {
		t.Errorf("listing %+v", list)
	}
}

// TestSweepSSEPointFrames reads a family's event stream end to end: one
// point_done frame per point (each strictly decodable, 1-based, carrying
// the axis value and converged energy) ending in a terminal done frame.
func TestSweepSSEPointFrames(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	v, _ := submitSweep(t, ts, sweepBody)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	type pinnedFrame struct {
		Type      string  `json:"type"`
		Seq       int     `json:"seq"`
		Phase     string  `json:"phase"`
		Iteration int     `json:"iteration"`
		Energy    float64 `json:"energy"`
		Operator  string  `json:"operator"`
		Point     int     `json:"point"`
		Value     float64 `json:"value"`
		Error     string  `json:"error"`
	}
	var pointDone []pinnedFrame
	terminal := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(data))
		dec.DisallowUnknownFields()
		var f pinnedFrame
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("SSE frame drifted from the pinned shape: %v\n%s", err, data)
		}
		if f.Type == EventPointDone {
			pointDone = append(pointDone, f)
		}
		if Status(f.Type).Terminal() {
			terminal = f.Type
			break
		}
	}
	if terminal != string(StatusDone) {
		t.Fatalf("stream ended with %q, want done", terminal)
	}
	if len(pointDone) != 3 {
		t.Fatalf("%d point_done frames, want 3: %+v", len(pointDone), pointDone)
	}
	seen := map[int]bool{}
	for _, f := range pointDone {
		if f.Point < 1 || f.Point > 3 || seen[f.Point] {
			t.Errorf("point_done frame with bad or duplicate point: %+v", f)
		}
		seen[f.Point] = true
		if f.Value == 0 || f.Energy >= 0 {
			t.Errorf("point_done frame missing value/energy: %+v", f)
		}
	}
}

// TestErrorEnvelopeGolden pins the unified error envelope across the v1
// surface: every non-2xx body is {"error":{code,message,...}} with the
// documented code, no unknown fields.
func TestErrorEnvelopeGolden(t *testing.T) {
	type pinnedError struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMs int64  `json:"retry_after_ms"`
	}
	type pinnedEnvelope struct {
		Error pinnedError `json:"error"`
	}
	_, ts := newTestServer(t, Config{MaxSweepPoints: 2})

	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"bad sweep json", "POST", "/v1/sweeps", `not json`, 400, "invalid_argument"},
		{"unknown sweep axis", "POST", "/v1/sweeps",
			`{"base":{},"axis":{"param":"bogus","values":[1]}}`, 400, "invalid_argument"},
		{"sweep over point cap", "POST", "/v1/sweeps",
			`{"base":{"molecule":{"kind":"h2"}},"axis":{"param":"distance","values":[0.5,0.6,0.7]}}`,
			400, "invalid_argument"},
		{"missing sweep", "GET", "/v1/sweeps/sweep-999999", "", 404, "not_found"},
		{"cancel missing sweep", "DELETE", "/v1/sweeps/sweep-999999", "", 404, "not_found"},
		{"bad job spec", "POST", "/v1/jobs", `{"optimiser": {}}`, 400, "invalid_argument"},
		{"missing job", "GET", "/v1/jobs/job-999999", "", 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			dec := json.NewDecoder(bytes.NewReader(body))
			dec.DisallowUnknownFields()
			var env pinnedEnvelope
			if err := dec.Decode(&env); err != nil {
				t.Fatalf("body is not the error envelope: %v\n%s", err, body)
			}
			if env.Error.Code != tc.code || env.Error.Message == "" {
				t.Errorf("envelope %+v, want code %q with a message", env.Error, tc.code)
			}
		})
	}
}

// TestSweepCacheCrossover: point results and single-job submissions share
// the spec-hash cache in both directions — a finished job pre-settles the
// matching sweep point at admission, and a finished sweep point answers a
// later single-job submission as a cache hit.
func TestSweepCacheCrossover(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})

	// Job first: its result must pre-settle the matching family point.
	job := submitSpec(t, ts, `{"molecule":{"kind":"h2-distance","distance":0.7414}}`)
	jobDone := pollDone(t, ts, job.ID, 30*time.Second)
	if jobDone.Status != StatusDone {
		t.Fatalf("priming job settled as %s", jobDone.Status)
	}

	v, _ := submitSweep(t, ts,
		`{"base":{"molecule":{"kind":"h2"}},"axis":{"param":"distance","values":[0.7414,0.9]}}`)
	if v.CacheHits != 1 {
		t.Errorf("admission view cache hits = %d, want the primed point", v.CacheHits)
	}
	for _, p := range v.PointStates {
		if p.Value == 0.7414 && (!p.CacheHit || p.Status != StatusDone) {
			t.Errorf("primed point not pre-settled: %+v", p)
		}
	}
	done := pollSweepDone(t, ts, v.ID, 30*time.Second)
	if done.Status != StatusDone || done.Done != 2 {
		t.Fatalf("family settled %s: %+v", done.Status, done)
	}
	for _, c := range done.Curve {
		if c.Value == 0.7414 && c.Energy != jobDone.Result.Energy {
			t.Errorf("cached point energy %v != job energy %v", c.Energy, jobDone.Result.Energy)
		}
	}

	// Sweep first: the 0.9 point it ran now answers a single job from cache.
	echo := submitSpec(t, ts, `{"molecule":{"kind":"h2-distance","distance":0.9}}`)
	echoDone := pollDone(t, ts, echo.ID, 30*time.Second)
	if !echoDone.CacheHit {
		t.Errorf("single job after the sweep missed the cache: %+v", echoDone)
	}

	// An identical resubmission is fully cached: settled at admission with
	// a 200, never occupying a worker.
	again, status := submitSweep(t, ts,
		`{"base":{"molecule":{"kind":"h2"}},"axis":{"param":"distance","values":[0.7414,0.9]}}`)
	if status != http.StatusOK || again.Status != StatusDone || again.CacheHits != 2 {
		t.Errorf("resubmitted family: status %d view %+v, want settled 200 with 2 cache hits", status, again)
	}
}

// TestSweepCancel covers both cancellation windows: a family still queued
// settles immediately; a running family stops at the next point boundary,
// keeping finished points and cancelling the rest. Both leave every point
// terminal.
func TestSweepCancel(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1})

	// Pin the single worker so the family stays queued.
	slow, err := srv.Submit(runspecMustParse(t, `{"molecule":{"kind":"water"}}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = slow
	v, _ := submitSweep(t, ts, sweepBody)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sweeps/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled SweepView
	err = json.NewDecoder(resp.Body).Decode(&cancelled)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d err %v", resp.StatusCode, err)
	}
	if cancelled.Status != StatusCancelled || cancelled.Cancelled != 3 {
		t.Fatalf("queued family after DELETE: %+v", cancelled)
	}
	// Idempotent: a second DELETE answers the same terminal state.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("re-cancel status %d", resp.StatusCode)
	}

	// Running window: a fresh server — the worker above stays pinned until
	// shutdown cancels its job, which under -race can take minutes — with
	// slow points (Nelder–Mead, generous budget) so the DELETE lands
	// mid-family.
	_, ts2 := newTestServer(t, Config{MaxConcurrent: 1})
	running, _ := submitSweep(t, ts2,
		`{"base":{"molecule":{"kind":"h2"},"optimizer":{"method":"nelder-mead","max_iter":400}},"axis":{"param":"distance","values":[0.5,0.7414,1.5,2.0]}}`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts2.URL + "/v1/sweeps/" + running.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur SweepView
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cur.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("family never started running: %+v", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ = http.NewRequest("DELETE", ts2.URL+"/v1/sweeps/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := pollSweepDone(t, ts2, running.ID, 30*time.Second)
	if final.Status != StatusCancelled {
		t.Fatalf("running family after DELETE settled %s", final.Status)
	}
	if got := final.Done + final.Failed + final.Cancelled; got != final.Points {
		t.Errorf("%d of %d points terminal after cancellation", got, final.Points)
	}
	if final.Cancelled == 0 {
		t.Errorf("no point records the cancellation: %+v", final)
	}
}

// TestSweepRecoveryResumesCurve is the durability contract: a daemon
// drained mid-family and restarted on the same spool re-enqueues the
// family, keeps every already-finished point (bit-identical energies, no
// re-run), and completes exactly the remainder — zero lost, zero
// duplicated points.
func TestSweepRecoveryResumesCurve(t *testing.T) {
	spool := t.TempDir()
	srv, err := New(Config{MaxConcurrent: 1, SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := runspec.ParseSweep([]byte(
		`{"base":{"molecule":{"kind":"h2"},"optimizer":{"method":"nelder-mead","max_iter":300}},"axis":{"param":"distance","values":[0.5,0.7414,1.0,1.5]}}`))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := srv.SubmitSweep(ss)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for at least one settled point, then drain mid-family.
	waitPointDone(t, sw, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	parked := sw.view(true)
	if parked.Status != StatusInterrupted {
		t.Fatalf("family at shutdown = %s, want interrupted", parked.Status)
	}
	if parked.Done == 0 || parked.Done == parked.Points {
		t.Fatalf("drain landed outside the family (%d/%d done) — nothing to resume",
			parked.Done, parked.Points)
	}
	preDone := map[float64]float64{}
	for _, c := range parked.Curve {
		preDone[c.Value] = c.Energy
	}

	// Restart on the same spool: the journal replays the family.
	srv2, err := New(Config{MaxConcurrent: 1, SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv2.Shutdown(ctx)
	})

	// The replayed view already carries every pre-drain point as done —
	// before the worker has had a chance to re-run anything.
	resp, err := http.Get(ts2.URL + "/v1/sweeps/" + sw.ID)
	if err != nil {
		t.Fatal(err)
	}
	var replayed SweepView
	err = json.NewDecoder(resp.Body).Decode(&replayed)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed family: status %d err %v", resp.StatusCode, err)
	}
	if replayed.Done < parked.Done {
		t.Fatalf("restart lost points: %d done before, %d after replay", parked.Done, replayed.Done)
	}

	final := pollSweepDone(t, ts2, sw.ID, 120*time.Second)
	if final.Status != StatusDone || final.Done != final.Points || final.Failed != 0 {
		t.Fatalf("resumed family settled %s: %+v", final.Status, final)
	}
	if len(final.PointStates) != final.Points {
		t.Fatalf("%d point states for %d points", len(final.PointStates), final.Points)
	}
	seen := map[int]bool{}
	for _, p := range final.PointStates {
		if seen[p.Point] {
			t.Errorf("point %d settled more than once", p.Point)
		}
		seen[p.Point] = true
	}
	// Pre-drain energies replay bit-identically: those points never re-ran.
	for _, c := range final.Curve {
		if pre, ok := preDone[c.Value]; ok && pre != c.Energy {
			t.Errorf("point %v re-ran across the restart: %v -> %v", c.Value, pre, c.Energy)
		}
	}
}

// waitPointDone blocks until the sweep has settled n points successfully.
func waitPointDone(t *testing.T, sw *Sweep, n int) {
	t.Helper()
	replay, live := sw.subscribe()
	defer sw.unsubscribe(live)
	count := 0
	for _, e := range replay {
		if e.Type == EventPointDone {
			count++
		}
	}
	deadline := time.After(60 * time.Second)
	for count < n {
		select {
		case e := <-live:
			if e.Type == EventPointDone {
				count++
			}
		case <-deadline:
			t.Fatal("no point settled before the drain")
		}
	}
}
