package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/runspec"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func submitSpec(t *testing.T, ts *httptest.Server, spec string) View {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, v.Status, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestEndToEndH2(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})

	v := submitSpec(t, ts, `{"molecule": {"kind": "h2"}}`)
	if v.Status != StatusQueued && v.Status != StatusRunning {
		t.Fatalf("fresh submission status = %s", v.Status)
	}
	done := pollDone(t, ts, v.ID, 30*time.Second)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("job settled as %s (err=%q)", done.Status, done.Error)
	}
	if e := done.Result.Energy; e > -1.137 || e < -1.138 {
		t.Errorf("H2 energy = %v, want ≈ -1.1373 Ha", e)
	}
	if done.Result.SpecHash != v.SpecHash {
		t.Errorf("result hash %s != job hash %s", done.Result.SpecHash, v.SpecHash)
	}

	// The result endpoint serves the bare result once done.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res runspec.Result
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result endpoint: status %d err %v", resp.StatusCode, err)
	}
	if res.Energy != done.Result.Energy {
		t.Errorf("result endpoint energy mismatch")
	}
}

func TestAuxiliaryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/v1/capabilities", "/v1/metrics", "/v1/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !json.Valid(buf.Bytes()) {
			t.Errorf("%s: invalid JSON: %s", path, buf.String())
		}
	}
	resp, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	var caps struct {
		Accelerators []struct{ Name string } `json:"accelerators"`
	}
	err = json.NewDecoder(resp.Body).Decode(&caps)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range caps.Accelerators {
		if a.Name == "nwq-sv" {
			found = true
		}
	}
	if !found {
		t.Errorf("capabilities missing nwq-sv: %+v", caps)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"molecule": {"kind": "benzene"}}`, // unknown molecule
		`{"optimiser": {}}`,                 // unknown field (typo)
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}

// TestSSEStream reads the event stream of one job end to end: lifecycle
// transitions plus at least one progress frame, ending in "done".
func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v := submitSpec(t, ts, `{"optimizer": {"method": "nelder-mead", "max_iter": 60}}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events[name]++
			if Status(name).Terminal() {
				break
			}
		}
	}
	if events["progress"] == 0 {
		t.Errorf("no progress events on stream: %v", events)
	}
	if events[string(StatusDone)] != 1 {
		t.Errorf("expected exactly one done event: %v", events)
	}
}

// TestConcurrentJobsWithCacheHits is the soak from the acceptance
// criteria: 32 concurrent submissions — half duplicates of an
// already-completed spec, half distinct — all settle, duplicates are
// served from cache with bit-identical energies, and the whole dance is
// race-clean under -race.
func TestConcurrentJobsWithCacheHits(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 4, QueueDepth: 64, SimWorkers: 2})

	// Prime the cache with one completed spec.
	primed := submitSpec(t, ts, `{"molecule": {"kind": "h2"}}`)
	primedDone := pollDone(t, ts, primed.ID, 30*time.Second)
	if primedDone.Status != StatusDone {
		t.Fatalf("priming job settled as %s", primedDone.Status)
	}

	const total = 32
	specs := make([]string, total)
	for i := range specs {
		if i%2 == 0 {
			// Duplicate of the primed spec (different inert field spelling,
			// same canonical hash) — must be served from cache.
			specs[i] = `{"molecule": {"kind": "H2"}, "shots": ` + fmt.Sprint(100+i) + `}`
		} else {
			// Distinct specs: different optimizer iteration caps hash apart.
			specs[i] = `{"optimizer": {"method": "nelder-mead", "max_iter": ` + fmt.Sprint(40+i) + `}}`
		}
	}
	views := make([]View, total)
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = submitSpec(t, ts, specs[i])
		}(i)
	}
	wg.Wait()

	cacheHits := 0
	for i, v := range views {
		done := pollDone(t, ts, v.ID, 60*time.Second)
		if done.Status != StatusDone {
			t.Fatalf("job %d (%s) settled as %s: %s", i, v.ID, done.Status, done.Error)
		}
		if done.CacheHit {
			cacheHits++
			if done.Result.Energy != primedDone.Result.Energy {
				t.Errorf("job %d: cached energy %v != primed %v", i, done.Result.Energy, primedDone.Result.Energy)
			}
			if done.SpecHash != primed.SpecHash {
				t.Errorf("job %d: cache hit with foreign hash %s", i, done.SpecHash)
			}
		}
	}
	if cacheHits < total/2 {
		t.Errorf("cache hits = %d, want ≥ %d (every duplicate spec)", cacheHits, total/2)
	}
	if w := srv.Pool().Workers(); w != 2 {
		t.Errorf("shared pool width = %d, want 2", w)
	}
}

// TestQueueFull: admission control answers 503 instead of buffering
// unboundedly.
func TestQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	// Occupy the single worker and the single queue slot with slow jobs.
	// Water + L-BFGS: slow enough to pin the worker, yet it honors the
	// drain cancellation at the next iteration boundary during cleanup.
	slow := `{"molecule": {"kind": "water"}}`
	okCount, fullCount := 0, 0
	for i := 0; i < 6; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(slow))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			okCount++
		case http.StatusServiceUnavailable:
			fullCount++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if fullCount == 0 {
		t.Errorf("no submission was rejected (accepted %d) — queue bound not enforced", okCount)
	}
	_ = srv
}

// TestShutdownCheckpointsInFlight: a graceful drain halts running
// optimizers at an iteration boundary, leaves a loadable checkpoint in
// the spool, journals a "checkpointed" record, and a daemon restarted on
// the same spool resumes the job from that checkpoint to completion.
func TestShutdownCheckpointsInFlight(t *testing.T) {
	spool := t.TempDir()
	srv, err := New(Config{MaxConcurrent: 1, SpoolDir: spool, SimWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Water + L-BFGS emits a progress event every iteration (no simplex
	// warm-up) yet needs far more than the three iterations awaited below,
	// so the shutdown always interrupts it mid-run.
	spec := &runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "water"}}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the optimizer has demonstrably made progress (setup-phase
	// heartbeats don't count — only iterations write checkpoints).
	waitProgress(t, job, 3)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	status, result, errMsg := job.snapshot()
	if status != StatusInterrupted {
		t.Fatalf("job settled as %s (err=%q), want interrupted", status, errMsg)
	}
	if result == nil || !result.Interrupted {
		t.Fatalf("interrupted job missing best-so-far result: %+v", result)
	}

	ckpt := filepath.Join(spool, job.ID+".ckpt")
	var payload json.RawMessage
	kind, iter, err := resilience.LoadCheckpoint(ckpt, &payload)
	if err != nil {
		t.Fatalf("checkpoint not loadable: %v", err)
	}
	if kind != "vqe/lbfgs" || iter < 1 {
		t.Errorf("checkpoint kind = %q, iteration = %d", kind, iter)
	}

	// No legacy manifest is written anymore; the journal carries the state.
	if _, err := os.Stat(filepath.Join(spool, "manifest.json")); !os.IsNotExist(err) {
		t.Errorf("legacy manifest.json written on shutdown (err=%v)", err)
	}

	// A drained server refuses new work.
	if _, err := srv.Submit(&runspec.RunSpec{}); err != ErrShuttingDown {
		t.Errorf("submit after shutdown: err = %v, want ErrShuttingDown", err)
	}

	// Restart on the same spool: the journal replays, the interrupted job
	// re-enqueues, resumes from the checkpoint, and runs to completion.
	srv2, err := New(Config{MaxConcurrent: 1, SpoolDir: spool, SimWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv2.Shutdown(ctx)
	}()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resumed := pollDone(t, ts2, job.ID, 120*time.Second)
	if resumed.Status != StatusDone || resumed.Result == nil {
		t.Fatalf("resumed job settled as %s (err=%q)", resumed.Status, resumed.Error)
	}
	// Variational sanity: the resumed optimization must end at or below
	// the mean-field reference (the synthetic model has no fixed scale).
	if resumed.Result.Energy > resumed.Result.HartreeFock+1e-9 {
		t.Errorf("resumed energy %v above Hartree-Fock %v",
			resumed.Result.Energy, resumed.Result.HartreeFock)
	}
}

// TestReadyzSplitsFromHealthz: a draining daemon stays live (healthz 200)
// but flips readiness to 503 so load balancers stop routing to it.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	srv, err := New(Config{SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: status %d err %v", resp.StatusCode, err)
	}
	if health.Status != "draining" {
		t.Errorf("healthz status = %q, want draining", health.Status)
	}
}
