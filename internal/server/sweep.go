package server

// Sweep families: a SweepSpec submitted as one unit, executed by one
// worker slot walking the points in ascending axis order so every point
// warm-starts from its nearest finished neighbor and all points share
// one Hamiltonian build cache. Each point settles individually — its
// result flows into the ordinary spec-hash cache, so a later single-job
// submission of the same point answers without re-simulation, and a
// cached point found at admission time is pre-settled without queueing.
// The family lifecycle is journaled exactly like jobs: accepted before
// acknowledgement, one record per settled point, one terminal record —
// so a SIGKILL mid-curve resumes with only the unfinished points re-run.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/runspec"
	"repro/internal/server/journal"
	"repro/internal/telemetry"
)

var (
	mSweepsSubmitted   = telemetry.GetCounter("server.sweeps.submitted")
	mSweepsCompleted   = telemetry.GetCounter("server.sweeps.completed")
	mSweepsFailed      = telemetry.GetCounter("server.sweeps.failed")
	mSweepsCancelled   = telemetry.GetCounter("server.sweeps.cancelled")
	mSweepsRejected    = telemetry.GetCounter("server.sweeps.rejected")
	mSweepPointsRun    = telemetry.GetCounter("server.sweeps.points_run")
	mSweepPointsCached = telemetry.GetCounter("server.sweeps.points_cached")
	mSweepWarmStarts   = telemetry.GetCounter("server.sweeps.warm_starts")
)

// errSweepCancelled is the cancellation cause a client DELETE attaches to
// a running family.
var errSweepCancelled = errors.New("server: sweep cancelled by client")

// sweepPoint is one family member's mutable execution state, guarded by
// the owning Sweep's mu. pt is the immutable identity (index, value,
// spec, rs1 hash).
type sweepPoint struct {
	pt         runspec.SweepPoint
	status     Status
	err        string
	result     *runspec.Result
	cacheHit   bool
	warmStart  bool
	attempt    int
	resume     bool
	checkpoint string
}

// Sweep is one submitted family and everything observed about its
// execution. All mutable fields are guarded by mu.
type Sweep struct {
	ID string
	// Spec is the submitted family document; FamilyHash its sw1 content
	// hash. Param is the resolved axis name.
	Spec       *runspec.SweepSpec
	FamilyHash string
	Param      string

	mu     sync.Mutex
	status Status
	errMsg string
	// cancelled is sticky once a client DELETE lands; the executor
	// checks it between points.
	cancelled bool
	// cancelCause cancels the in-flight family context (set while a
	// worker owns the sweep).
	cancelCause context.CancelCauseFunc
	points      []*sweepPoint
	// order is the execution sequence: point indices ascending by axis
	// value (runspec.ExecutionOrder).
	order     []int
	submitted time.Time
	started   time.Time
	finished  time.Time

	// lastBeat feeds the same stuck-job watchdog jobs use; the running
	// point's progress heartbeats land here.
	lastBeat atomic.Int64

	hub eventHub
}

func newSweep(id string, ss *runspec.SweepSpec, points []runspec.SweepPoint) *Sweep {
	sw := &Sweep{
		ID:         id,
		Spec:       ss,
		FamilyHash: ss.Hash(),
		Param:      ss.Axis.Param,
		status:     StatusQueued,
		points:     make([]*sweepPoint, len(points)),
		order:      runspec.ExecutionOrder(points),
		submitted:  time.Now(),
		hub:        newEventHub(),
	}
	for i, p := range points {
		sw.points[i] = &sweepPoint{pt: p, status: StatusQueued}
	}
	return sw
}

func (sw *Sweep) beat() { sw.lastBeat.Store(time.Now().UnixNano()) }

func (sw *Sweep) publish(e Event)                  { sw.hub.publish(e) }
func (sw *Sweep) subscribe() ([]Event, chan Event) { return sw.hub.subscribe() }
func (sw *Sweep) unsubscribe(ch chan Event)        { sw.hub.unsubscribe(ch) }

// SweepPointView is one point's state on the wire. Point is the 1-based
// submission-order index, matching the Point field of SSE frames and
// journal records.
type SweepPointView struct {
	Point       int     `json:"point"`
	Value       float64 `json:"value"`
	SpecHash    string  `json:"spec_hash"`
	Status      Status  `json:"status"`
	CacheHit    bool    `json:"cache_hit,omitempty"`
	WarmStarted bool    `json:"warm_started,omitempty"`
	Attempt     int     `json:"attempt,omitempty"`
	Error       string  `json:"error,omitempty"`
	// Energy is the converged point energy (done points only).
	Energy float64 `json:"energy,omitempty"`
}

// CurvePoint is one finished sample of the family's curve, ascending by
// axis value.
type CurvePoint struct {
	Value  float64 `json:"value"`
	Energy float64 `json:"energy"`
	Exact  float64 `json:"exact,omitempty"`
	// Evaluations is the optimizer's energy-evaluation count for this
	// point — the warm-start savings show up here.
	Evaluations int `json:"evaluations,omitempty"`
}

// SweepView is the JSON representation of a family served by the sweeps
// endpoints.
type SweepView struct {
	ID         string `json:"id"`
	FamilyHash string `json:"family_hash"`
	Param      string `json:"param"`
	Status     Status `json:"status"`
	Error      string `json:"error,omitempty"`
	// Aggregate point counts.
	Points     int `json:"points"`
	Done       int `json:"done"`
	Failed     int `json:"failed,omitempty"`
	Cancelled  int `json:"cancelled,omitempty"`
	CacheHits  int `json:"cache_hits,omitempty"`
	WarmStarts int `json:"warm_starts,omitempty"`
	// EnergyEvaluations totals optimizer work across finished points.
	EnergyEvaluations int        `json:"energy_evaluations,omitempty"`
	Submitted         time.Time  `json:"submitted"`
	Started           *time.Time `json:"started,omitempty"`
	Finished          *time.Time `json:"finished,omitempty"`
	// PointStates (detail only) lists every point in submission order;
	// Curve holds the finished samples ascending by axis value — the
	// partial dissociation curve while the family still runs.
	PointStates []SweepPointView `json:"point_states,omitempty"`
	Curve       []CurvePoint     `json:"curve,omitempty"`
}

// view snapshots the family. withPoints controls whether per-point states
// and the curve are embedded (detail endpoint) or elided (listings).
func (sw *Sweep) view(withPoints bool) SweepView {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	v := SweepView{
		ID:         sw.ID,
		FamilyHash: sw.FamilyHash,
		Param:      sw.Param,
		Status:     sw.status,
		Error:      sw.errMsg,
		Points:     len(sw.points),
		Submitted:  sw.submitted,
	}
	if !sw.started.IsZero() {
		t := sw.started
		v.Started = &t
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		v.Finished = &t
	}
	var curve []CurvePoint
	for _, p := range sw.points {
		switch p.status {
		case StatusDone:
			v.Done++
		case StatusFailed:
			v.Failed++
		case StatusCancelled:
			v.Cancelled++
		}
		if p.cacheHit {
			v.CacheHits++
		}
		if p.warmStart {
			v.WarmStarts++
		}
		if p.result != nil {
			v.EnergyEvaluations += p.result.EnergyEvaluations
		}
		if withPoints {
			pv := SweepPointView{
				Point:       p.pt.Index + 1,
				Value:       p.pt.Value,
				SpecHash:    p.pt.Hash,
				Status:      p.status,
				CacheHit:    p.cacheHit,
				WarmStarted: p.warmStart,
				Attempt:     p.attempt,
				Error:       p.err,
			}
			if p.status == StatusDone && p.result != nil {
				pv.Energy = p.result.Energy
				curve = append(curve, CurvePoint{
					Value:       p.pt.Value,
					Energy:      p.result.Energy,
					Exact:       p.result.Exact,
					Evaluations: p.result.EnergyEvaluations,
				})
			}
			v.PointStates = append(v.PointStates, pv)
		}
	}
	sort.Slice(curve, func(a, b int) bool { return curve[a].Value < curve[b].Value })
	v.Curve = curve
	return v
}

// SubmitSweep validates, expands, journals, and enqueues a family,
// returning the sweep record once its accepted record is durable. Points
// whose rs1 hash already sits in the result cache are settled at
// admission; a family whose every point is cached settles terminally
// without ever occupying a worker.
func (s *Server) SubmitSweep(ss *runspec.SweepSpec) (*Sweep, error) {
	points, err := ss.Points()
	if err != nil {
		return nil, err
	}
	if len(points) > s.cfg.MaxSweepPoints {
		return nil, fmt.Errorf("%w: sweep expands to %d points (server cap %d)",
			errSweepTooLarge, len(points), s.cfg.MaxSweepPoints)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	// Settle cache-hit points at admission; only the uncached remainder
	// competes for a backlog slot.
	cached := make([]*runspec.Result, len(points))
	uncached := 0
	for i, p := range points {
		if !s.cfg.DisableCache {
			cached[i] = s.cache[p.Hash]
		}
		if cached[i] == nil {
			uncached++
		}
	}
	if uncached > 0 && s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		mSweepsRejected.Inc()
		return nil, ErrQueueFull
	}
	s.sweepSeq++
	id := fmt.Sprintf("sweep-%06d", s.sweepSeq)
	sw := newSweep(id, ss, points)
	for i, res := range cached {
		if res != nil {
			sw.points[i].status = StatusDone
			sw.points[i].cacheHit = true
			sw.points[i].result = res
		}
	}
	if uncached > 0 {
		s.queued++
	}
	s.sweeps[id] = sw
	s.sweepOrder = append(s.sweepOrder, id)
	s.mu.Unlock()
	mSweepsSubmitted.Inc()

	// Durability before acknowledgement: the accepted record (with the
	// full family document) plus one point record per admission-time
	// cache hit must be on disk before the client hears 202.
	s.journalAppend(journal.Record{Op: journal.OpSweepAccepted, JobID: id,
		SpecHash: sw.FamilyHash, Spec: journalSweepSpec(ss)})
	sw.publish(Event{Type: string(StatusQueued)})
	for i, res := range cached {
		if res == nil {
			continue
		}
		mCacheHits.Inc()
		mSweepPointsCached.Inc()
		s.journalAppend(journal.Record{Op: journal.OpSweepPointDone, JobID: id,
			Point: i + 1, SpecHash: points[i].Hash, Result: journalResult(res)})
		sw.publish(Event{Type: EventPointDone, Point: i + 1,
			Value: points[i].Value, Energy: res.Energy})
	}

	if uncached == 0 {
		s.settleSweep(sw)
		return sw, nil
	}
	select {
	case s.queue <- queueItem{sweep: sw}:
	case <-s.runCtx.Done():
		// Shutdown raced the enqueue; the accepted record re-enqueues the
		// family on the next start.
	}
	mQueueDepth.Set(int64(len(s.queue)))
	return sw, nil
}

// errSweepTooLarge marks a family exceeding the daemon's point cap; the
// HTTP layer maps it to 400 invalid_argument.
var errSweepTooLarge = errors.New("server: sweep too large")

// CancelSweep requests family cancellation: a queued family settles
// immediately, a running one is cancelled at the next point boundary
// (the in-flight point's context is cancelled with errSweepCancelled).
// Cancelling a terminal family is an idempotent no-op.
func (s *Server) CancelSweep(id string) *Sweep {
	s.mu.Lock()
	sw := s.sweeps[id]
	s.mu.Unlock()
	if sw == nil {
		return nil
	}
	sw.mu.Lock()
	if sw.status.Terminal() {
		sw.mu.Unlock()
		return sw
	}
	sw.cancelled = true
	queued := sw.status == StatusQueued
	cancel := sw.cancelCause
	sw.mu.Unlock()
	if cancel != nil {
		cancel(errSweepCancelled)
	}
	if queued {
		// Not yet picked up: settle now; the worker's entry guard skips
		// the stale queue item.
		s.settleSweep(sw)
	}
	return sw
}

// runSweep executes one family in the current worker slot: points in
// ascending axis order, warm-started from the nearest finished neighbor,
// sharing one Hamiltonian build cache. Point failures are isolated — the
// curve continues — and every settled point is journaled individually,
// so a crash loses at most the in-flight point.
func (s *Server) runSweep(sw *Sweep) {
	sw.mu.Lock()
	if sw.status.Terminal() || sw.cancelled {
		terminal := sw.status.Terminal()
		sw.mu.Unlock()
		if !terminal {
			s.settleSweep(sw)
		}
		return
	}
	sw.status = StatusRunning
	if sw.started.IsZero() {
		sw.started = time.Now()
	}
	sw.mu.Unlock()
	mJobsRunning.Set(s.running.Add(1))
	defer func() { mJobsRunning.Set(s.running.Add(-1)) }()
	sw.publish(Event{Type: string(StatusRunning)})

	famCtx, famCancel := context.WithCancelCause(s.runCtx)
	defer famCancel(nil)
	sw.mu.Lock()
	sw.cancelCause = famCancel
	if sw.cancelled {
		// DELETE raced the pickup: cancel before any point runs.
		famCancel(errSweepCancelled)
	}
	sw.mu.Unlock()

	// Shared Hamiltonian/FCI construction plus the warm-start pool of
	// finished neighbors (admission-time cache hits seed both).
	shared := runspec.NewBuildCache()
	var finished []runspec.SweepPoint
	results := map[int]*runspec.Result{}
	sw.mu.Lock()
	for _, p := range sw.points {
		if p.status == StatusDone && p.result != nil {
			finished = append(finished, p.pt)
			results[p.pt.Index] = p.result
		}
	}
	sw.mu.Unlock()

	for _, idx := range sw.order {
		if s.runCtx.Err() != nil {
			s.parkSweep(sw)
			return
		}
		sw.mu.Lock()
		p := sw.points[idx]
		settled := p.status.Terminal()
		cancelled := sw.cancelled
		sw.mu.Unlock()
		if cancelled {
			break
		}
		if settled {
			continue
		}

		// Re-check the result cache: a single-job submission of this exact
		// point may have completed while the family waited in the queue.
		var hit *runspec.Result
		if !s.cfg.DisableCache {
			s.mu.Lock()
			hit = s.cache[p.pt.Hash]
			s.mu.Unlock()
		}
		if hit != nil {
			sw.mu.Lock()
			p.status = StatusDone
			p.cacheHit = true
			p.result = hit
			sw.mu.Unlock()
			mCacheHits.Inc()
			mSweepPointsCached.Inc()
			s.journalAppend(journal.Record{Op: journal.OpSweepPointDone, JobID: sw.ID,
				Point: idx + 1, SpecHash: p.pt.Hash, Result: journalResult(hit)})
			sw.publish(Event{Type: EventPointDone, Point: idx + 1,
				Value: p.pt.Value, Energy: hit.Energy})
			finished = append(finished, p.pt)
			results[idx] = hit
			continue
		}

		warm := runspec.NearestParams(p.pt.Value, 0, finished, results)
		res, ok := s.runSweepPoint(famCtx, sw, p, shared, warm)
		if s.runCtx.Err() != nil {
			// Shutdown settled the point path inside runSweepPoint (the
			// checkpoint record is journaled); park the family non-terminal.
			s.parkSweep(sw)
			return
		}
		if ok {
			finished = append(finished, p.pt)
			results[idx] = res
		}
	}
	s.settleSweep(sw)
}

// runSweepPoint executes one point — including its retry attempts — and
// settles it. ok reports a usable result (the point joins the warm-start
// pool). On daemon shutdown it journals the point's checkpoint record
// and returns without settling the point.
func (s *Server) runSweepPoint(famCtx context.Context, sw *Sweep, p *sweepPoint, shared *runspec.BuildCache, warm []float64) (res *runspec.Result, ok bool) {
	idx := p.pt.Index
	for {
		checkpoint := ""
		if s.spoolOK.Load() {
			checkpoint = filepath.Join(s.cfg.SpoolDir, fmt.Sprintf("%s-p%03d.ckpt", sw.ID, idx+1))
		}
		sw.mu.Lock()
		p.status = StatusRunning
		p.checkpoint = checkpoint
		p.warmStart = len(warm) > 0 && !p.resume
		attempt := p.attempt
		resume := p.resume
		sw.mu.Unlock()
		sw.beat()

		pointCtx, cancel := context.WithCancelCause(famCtx)
		s.watchAdd(sw.ID, &sw.lastBeat, cancel)
		res, err := s.executePoint(pointCtx, sw, p, shared, warm, checkpoint, resume)
		s.watchRemove(sw.ID)
		stalled := errors.Is(context.Cause(pointCtx), errStalled)
		cancelledFam := errors.Is(context.Cause(famCtx), errSweepCancelled)
		cancel(nil)

		switch {
		case s.runCtx.Err() != nil:
			// Drain: journal the point's resumable checkpoint (non-terminal)
			// so the restarted daemon re-runs only this point onward.
			rec := journal.Record{Op: journal.OpSweepCheckpoint, JobID: sw.ID,
				Point: idx + 1, SpecHash: p.pt.Hash}
			if checkpoint != "" && fileExists(checkpoint) {
				rec.Checkpoint = checkpoint
			}
			s.journalAppend(rec)
			return nil, false

		case cancelledFam:
			s.settleSweepPoint(sw, p, StatusCancelled, errSweepCancelled.Error())
			return nil, false

		case stalled:
			err = fmt.Errorf("stall: %w", errStalled)
			fallthrough
		case err != nil && (errors.Is(err, errJobPanicked) || retryableEngineErr(err)):
			if !s.retrySweepPoint(sw, p, checkpoint, err.Error()) {
				s.settleSweepPoint(sw, p, StatusFailed,
					fmt.Sprintf("retry budget exhausted after %d attempt(s): %s", attempt+1, err))
				return nil, false
			}
			continue

		case err != nil && errors.Is(err, resilience.ErrCheckpointWrite):
			// The spool is broken, not the point: shed checkpointing and
			// retry without durability.
			s.degradeSpool(fmt.Sprintf("checkpoint write failed: %v", err))
			if !s.retrySweepPoint(sw, p, "", err.Error()) {
				s.settleSweepPoint(sw, p, StatusFailed,
					fmt.Sprintf("retry budget exhausted after %d attempt(s): %s", attempt+1, err))
				return nil, false
			}
			continue

		case err != nil:
			s.settleSweepPoint(sw, p, StatusFailed, err.Error())
			return nil, false

		case res.Interrupted:
			// Point-level walltime halt: a partial optimum must not feed the
			// result cache or the warm-start chain.
			s.settleSweepPoint(sw, p, StatusFailed, "interrupted before convergence")
			return nil, false

		default:
			s.settleSweepPointDone(sw, p, res)
			return res, true
		}
	}
}

// executePoint runs one engine attempt for a sweep point with per-point
// panic isolation, warm-started from warm unless resuming a checkpoint.
func (s *Server) executePoint(ctx context.Context, sw *Sweep, p *sweepPoint, shared *runspec.BuildCache, warm []float64, checkpoint string, resume bool) (res *runspec.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			mJobsPanicked.Inc()
			err = fmt.Errorf("%w: %v", errJobPanicked, r)
		}
	}()
	spec := p.pt.Spec
	if resume && checkpoint != "" {
		sp := *spec
		sp.Resilience.CheckpointPath = checkpoint
		sp.Resilience.Resume = true
		spec = &sp
	}
	hook := s.cfg.FaultHook
	point := p.pt.Index + 1
	value := p.pt.Value
	return runspec.Run(ctx, spec, runspec.RunOptions{
		Pool:           s.pool,
		CheckpointPath: checkpoint,
		InitialParams:  warm,
		Shared:         shared,
		OnProgress: func(pr runspec.Progress) {
			sw.beat()
			if hook != nil {
				hook(ctx, sw.ID, pr)
			}
			sw.publish(Event{Type: "progress", Phase: pr.Phase,
				Iteration: pr.Iteration, Energy: pr.Energy, Operator: pr.Operator,
				Point: point, Value: value})
		},
	})
}

// retrySweepPoint consumes one retry-budget unit for a point, arming a
// checkpoint resume when the snapshot verifies. It returns false once the
// budget is exhausted; otherwise it backs off and the caller re-attempts.
func (s *Server) retrySweepPoint(sw *Sweep, p *sweepPoint, checkpoint, reason string) bool {
	sw.mu.Lock()
	p.attempt++
	attempt := p.attempt
	sw.mu.Unlock()
	if attempt > s.cfg.RetryBudget {
		return false
	}
	resume := false
	if checkpoint != "" {
		if _, err := resilience.CheckpointKind(checkpoint); err == nil {
			resume = true
		} else if !os.IsNotExist(err) {
			os.Remove(checkpoint)
		}
	}
	sw.mu.Lock()
	p.status = StatusQueued
	p.resume = resume
	sw.mu.Unlock()
	mJobsRetried.Inc()
	s.logf("vqed: sweep %s point %d attempt %d failed retryably (%s), re-running",
		sw.ID, p.pt.Index+1, attempt, reason)
	sw.publish(Event{Type: EventRetrying, Point: p.pt.Index + 1,
		Value: p.pt.Value, Error: reason})

	t := time.NewTimer(s.cfg.RetryPolicy.Delay(attempt + 1))
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.runCtx.Done():
	}
	return true
}

// settleSweepPointDone records a successful point: journal first, then
// the spec-hash cache (single-job resubmissions of this point now hit),
// then the point_done frame.
func (s *Server) settleSweepPointDone(sw *Sweep, p *sweepPoint, res *runspec.Result) {
	sw.mu.Lock()
	p.status = StatusDone
	p.result = res
	warm := p.warmStart
	sw.mu.Unlock()
	mSweepPointsRun.Inc()
	if warm {
		mSweepWarmStarts.Inc()
	}
	s.journalAppend(journal.Record{Op: journal.OpSweepPointDone, JobID: sw.ID,
		Point: p.pt.Index + 1, SpecHash: p.pt.Hash, Result: journalResult(res)})
	if !s.cfg.DisableCache {
		s.cacheStore(p.pt.Hash, res)
	}
	if p.checkpoint != "" {
		os.Remove(p.checkpoint)
	}
	sw.publish(Event{Type: EventPointDone, Point: p.pt.Index + 1,
		Value: p.pt.Value, Energy: res.Energy})
}

// settleSweepPoint records a terminally unsuccessful point (failed or
// cancelled); the family continues past failures.
func (s *Server) settleSweepPoint(sw *Sweep, p *sweepPoint, status Status, errMsg string) {
	sw.mu.Lock()
	p.status = status
	p.err = errMsg
	sw.mu.Unlock()
	if status == StatusFailed {
		s.journalAppend(journal.Record{Op: journal.OpSweepPointFailed, JobID: sw.ID,
			Point: p.pt.Index + 1, SpecHash: p.pt.Hash, Error: errMsg})
		sw.publish(Event{Type: EventPointFailed, Point: p.pt.Index + 1,
			Value: p.pt.Value, Error: errMsg})
	}
}

// parkSweep marks a drain-interrupted family in memory without a terminal
// journal record: the accepted record is still live, so the next start
// re-enqueues the family and only unfinished points re-run.
func (s *Server) parkSweep(sw *Sweep) {
	sw.mu.Lock()
	if sw.status.Terminal() {
		sw.mu.Unlock()
		return
	}
	sw.status = StatusInterrupted
	sw.finished = time.Now()
	sw.mu.Unlock()
	mJobsInterrupted.Inc()
	sw.publish(Event{Type: string(StatusInterrupted)})
}

// settleSweep records the family's terminal outcome from its points'
// states: cancelled beats failed beats done. Idempotent — the first
// settle wins.
func (s *Server) settleSweep(sw *Sweep) {
	sw.mu.Lock()
	if sw.status.Terminal() {
		sw.mu.Unlock()
		return
	}
	var failed int
	for _, p := range sw.points {
		if sw.cancelled && !p.status.Terminal() {
			p.status = StatusCancelled
		}
		if p.status == StatusFailed {
			failed++
		}
	}
	status, op, errMsg := StatusDone, journal.OpSweepDone, ""
	switch {
	case sw.cancelled:
		status, op = StatusCancelled, journal.OpSweepCancelled
		errMsg = errSweepCancelled.Error()
	case failed > 0:
		status, op = StatusFailed, journal.OpSweepFailed
		errMsg = fmt.Sprintf("%d of %d point(s) failed", failed, len(sw.points))
	}
	sw.status = status
	sw.errMsg = errMsg
	sw.finished = time.Now()
	sw.mu.Unlock()

	s.journalAppend(journal.Record{Op: op, JobID: sw.ID,
		SpecHash: sw.FamilyHash, Error: errMsg})
	switch status {
	case StatusDone:
		mSweepsCompleted.Inc()
	case StatusFailed:
		mSweepsFailed.Inc()
	case StatusCancelled:
		mSweepsCancelled.Inc()
	}
	sw.publish(Event{Type: string(status), Error: errMsg})
	s.compactIfNeeded(false)
}

// --- HTTP surface ---

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("sweep document too large"))
		return
	}
	ss, err := runspec.ParseSweep(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sw, err := s.SubmitSweep(ss)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeAPIError(w, http.StatusServiceUnavailable, codeQueueFull, err.Error(), s.EstimateWait(&ss.Base))
		return
	case errors.Is(err, ErrShuttingDown):
		writeAPIError(w, http.StatusServiceUnavailable, codeShuttingDown, err.Error(), 0)
		return
	case errors.Is(err, errSweepTooLarge):
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, err.Error(), 0)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if v := sw.view(false); v.Status.Terminal() {
		// Every point answered from cache: the family is already settled.
		status = http.StatusOK
	}
	writeJSON(w, status, sw.view(true))
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sweeps := make([]*Sweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		sweeps = append(sweeps, s.sweeps[id])
	}
	s.mu.Unlock()
	views := make([]SweepView, len(sweeps))
	for i, sw := range sweeps {
		views[i] = sw.view(false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func (s *Server) sweep(w http.ResponseWriter, r *http.Request) *Sweep {
	s.mu.Lock()
	sw := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if sw == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", r.PathValue("id")))
	}
	return sw
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if sw := s.sweep(w, r); sw != nil {
		writeJSON(w, http.StatusOK, sw.view(true))
	}
}

func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	if sw := s.sweep(w, r); sw != nil {
		streamEvents(w, r, sw)
	}
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw := s.sweep(w, r)
	if sw == nil {
		return
	}
	s.CancelSweep(sw.ID)
	writeJSON(w, http.StatusOK, sw.view(true))
}
