package server

// Journal replay: how a restarted daemon rebuilds its job table. Every
// accepted job reappears — terminal ones with their recorded results (so
// clients polling across the restart still get answers), unfinished ones
// re-enqueued, resuming from their latest resilience checkpoint when one
// validates. The legacy SIGTERM spool manifest (written by earlier
// releases, never read by them) is folded into the same path and then
// deleted.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/resilience"
	"repro/internal/runspec"
	"repro/internal/server/journal"
	"repro/internal/telemetry"
)

var (
	mJobsRecovered   = telemetry.GetCounter("server.jobs.recovered")
	mJobsReplayed    = telemetry.GetCounter("server.jobs.replayed_terminal")
	mSweepsRecovered = telemetry.GetCounter("server.sweeps.recovered")
	mRecoverDropped  = telemetry.GetCounter("server.recovery.dropped_records")
)

// partitionRecords splits a replayed record stream into the job and
// sweep lifecycles (each replays independently).
func partitionRecords(recs []journal.Record) (jobs, sweeps []journal.Record) {
	for _, rec := range recs {
		if rec.Op.Sweep() {
			sweeps = append(sweeps, rec)
		} else {
			jobs = append(jobs, rec)
		}
	}
	return jobs, sweeps
}

// replayedJob is the merged per-job outcome of a journal scan. Records
// for one job may interleave with other jobs' and repeat across retries;
// the merge keeps the strongest lifecycle fact per job (terminal beats
// running beats accepted) plus the latest checkpoint/attempt.
type replayedJob struct {
	id         string
	specRaw    json.RawMessage
	specHash   string
	op         journal.Op
	checkpoint string
	attempt    int
	errMsg     string
	resultRaw  json.RawMessage
}

// mergeRecords folds a replayed record stream into per-job outcomes,
// preserving first-appearance order.
func mergeRecords(recs []journal.Record) []*replayedJob {
	byID := map[string]*replayedJob{}
	var order []*replayedJob
	for _, rec := range recs {
		if rec.JobID == "" {
			mRecoverDropped.Inc()
			continue
		}
		e := byID[rec.JobID]
		if e == nil {
			e = &replayedJob{id: rec.JobID}
			byID[rec.JobID] = e
			order = append(order, e)
		}
		if rec.SpecHash != "" {
			e.specHash = rec.SpecHash
		}
		switch rec.Op {
		case journal.OpAccepted:
			e.specRaw = rec.Spec
			if e.op == "" {
				e.op = journal.OpAccepted
			}
		case journal.OpRunning:
			if !e.op.Terminal() {
				e.op = journal.OpRunning
				e.attempt = rec.Attempt
			}
		case journal.OpCheckpointed:
			if !e.op.Terminal() {
				e.op = journal.OpCheckpointed
				e.checkpoint = rec.Checkpoint
			}
		case journal.OpRetrying:
			if !e.op.Terminal() {
				e.op = journal.OpRetrying
				e.attempt = rec.Attempt
				e.errMsg = rec.Error
			}
		case journal.OpDone, journal.OpFailed, journal.OpInterrupted:
			e.op = rec.Op
			e.resultRaw = rec.Result
			e.errMsg = rec.Error
			if rec.Checkpoint != "" {
				e.checkpoint = rec.Checkpoint
			}
		default:
			mRecoverDropped.Inc()
		}
	}
	return order
}

// legacyManifest mirrors the shutdown manifest earlier daemon versions
// wrote (and never read back). Recovery merges it once, then deletes the
// file.
type legacyManifest struct {
	Jobs []struct {
		ID             string           `json:"id"`
		SpecHash       string           `json:"spec_hash"`
		CheckpointPath string           `json:"checkpoint_path"`
		Spec           *runspec.RunSpec `json:"spec"`
	} `json:"jobs"`
}

// recover rebuilds the job table from replayed journal records plus any
// legacy manifest, returning the jobs to re-enqueue. Called from New
// before the worker fleet starts, so no locking is needed yet.
func (s *Server) recoverJobs(recs []journal.Record) []*Job {
	merged := mergeRecords(recs)
	merged = append(merged, s.legacyManifestJobs()...)

	var pending []*Job
	for _, e := range merged {
		if _, dup := s.jobs[e.id]; dup {
			mRecoverDropped.Inc()
			continue
		}
		job, ok := s.rebuildJob(e)
		if !ok {
			continue
		}
		s.jobs[e.id] = job
		s.order = append(s.order, e.id)
		if n := jobSeqOf(e.id); n > s.jobSeq {
			s.jobSeq = n
		}
		st, _, _ := job.snapshot()
		if st == StatusQueued {
			pending = append(pending, job)
			mJobsRecovered.Inc()
		} else {
			mJobsReplayed.Inc()
		}
	}
	return pending
}

// rebuildJob turns one merged journal outcome into a live Job record.
func (s *Server) rebuildJob(e *replayedJob) (*Job, bool) {
	var spec *runspec.RunSpec
	if len(e.specRaw) > 0 {
		parsed, err := runspec.Parse(e.specRaw)
		if err != nil {
			s.logf("vqed: recovery: job %s spec unusable: %v", e.id, err)
		} else {
			spec = parsed
		}
	}
	switch {
	case spec == nil && e.op.Terminal():
		// A compacted terminal record without a spec still answers client
		// polls; the job just cannot be re-run (it does not need to be).
		spec = &runspec.RunSpec{}
	case spec == nil:
		// A non-terminal job without a recoverable spec is genuinely lost;
		// surface it as failed rather than silently dropping the ID.
		s.logf("vqed: recovery: job %s has no recoverable spec, marking failed", e.id)
		job := newJob(e.id, &runspec.RunSpec{})
		job.SpecHash = e.specHash
		job.status = StatusFailed
		job.err = "server: journal holds no recoverable spec for this job"
		job.finished = time.Now()
		job.publish(Event{Type: string(StatusFailed), Error: job.err})
		return job, true
	}

	job := newJob(e.id, spec)
	if e.specHash != "" {
		job.SpecHash = e.specHash
	}
	job.attempt = e.attempt

	if e.op.Terminal() {
		job.status = Status(e.op)
		job.err = e.errMsg
		job.checkpoint = e.checkpoint
		now := time.Now()
		job.started, job.finished = now, now
		if len(e.resultRaw) > 0 {
			var res runspec.Result
			if err := json.Unmarshal(e.resultRaw, &res); err != nil {
				s.logf("vqed: recovery: job %s result unusable: %v", e.id, err)
			} else {
				job.result = &res
				if e.op == journal.OpDone && !s.cfg.DisableCache {
					s.cacheStore(job.SpecHash, &res)
				}
			}
		}
		job.publish(Event{Type: string(job.status), Error: job.err})
		return job, true
	}

	// Unfinished: back to the queue. Resume from the journaled checkpoint
	// when it verifies (CRC + version); a torn or corrupt snapshot is
	// deleted so the rerun cold-starts instead of failing on load.
	if ckpt := e.checkpoint; ckpt != "" {
		if _, err := resilience.CheckpointKind(ckpt); err == nil {
			job.checkpoint = ckpt
			job.resume = true
		} else if !os.IsNotExist(err) {
			s.logf("vqed: recovery: job %s checkpoint %s invalid, cold restart: %v", e.id, ckpt, err)
			os.Remove(ckpt)
		}
	} else if ckpt := filepath.Join(s.cfg.SpoolDir, e.id+".ckpt"); fileExists(ckpt) {
		// A crash between checkpoint write and journal append leaves a
		// spool file the journal never heard about — still resumable.
		if _, err := resilience.CheckpointKind(ckpt); err == nil {
			job.checkpoint = ckpt
			job.resume = true
		}
	}
	job.publish(Event{Type: string(StatusQueued)})
	return job, true
}

// replayedSweep is the merged per-family outcome of a journal scan:
// the family document, its terminal fact (if any), and the per-point
// facts keyed by 1-based submission index.
type replayedSweep struct {
	id          string
	familyHash  string
	specRaw     json.RawMessage
	op          journal.Op
	errMsg      string
	pointDone   map[int]json.RawMessage
	pointFailed map[int]string
	pointCkpt   map[int]string
}

// mergeSweepRecords folds a sweep record stream into per-family
// outcomes, preserving first-appearance order.
func mergeSweepRecords(recs []journal.Record) []*replayedSweep {
	byID := map[string]*replayedSweep{}
	var order []*replayedSweep
	for _, rec := range recs {
		if rec.JobID == "" {
			mRecoverDropped.Inc()
			continue
		}
		e := byID[rec.JobID]
		if e == nil {
			e = &replayedSweep{
				id:          rec.JobID,
				pointDone:   map[int]json.RawMessage{},
				pointFailed: map[int]string{},
				pointCkpt:   map[int]string{},
			}
			byID[rec.JobID] = e
			order = append(order, e)
		}
		switch rec.Op {
		case journal.OpSweepAccepted:
			e.specRaw = rec.Spec
			e.familyHash = rec.SpecHash
			if e.op == "" {
				e.op = journal.OpSweepAccepted
			}
		case journal.OpSweepPointDone:
			if rec.Point > 0 {
				e.pointDone[rec.Point] = rec.Result
				delete(e.pointFailed, rec.Point)
			}
		case journal.OpSweepPointFailed:
			if rec.Point > 0 && e.pointDone[rec.Point] == nil {
				e.pointFailed[rec.Point] = rec.Error
			}
		case journal.OpSweepCheckpoint:
			if rec.Point > 0 {
				e.pointCkpt[rec.Point] = rec.Checkpoint
			}
		case journal.OpSweepDone, journal.OpSweepFailed, journal.OpSweepCancelled:
			e.op = rec.Op
			e.errMsg = rec.Error
		default:
			mRecoverDropped.Inc()
		}
	}
	return order
}

// recoverSweeps rebuilds the family table from replayed sweep records,
// returning the families to re-enqueue. Called from New before the
// worker fleet starts, so no locking is needed yet.
func (s *Server) recoverSweeps(recs []journal.Record) []*Sweep {
	merged := mergeSweepRecords(recs)
	var pending []*Sweep
	for _, e := range merged {
		if _, dup := s.sweeps[e.id]; dup {
			mRecoverDropped.Inc()
			continue
		}
		sw, ok := s.rebuildSweep(e)
		if !ok {
			continue
		}
		s.sweeps[e.id] = sw
		s.sweepOrder = append(s.sweepOrder, e.id)
		if n := sweepSeqOf(e.id); n > s.sweepSeq {
			s.sweepSeq = n
		}
		if !sw.status.Terminal() {
			pending = append(pending, sw)
			mSweepsRecovered.Inc()
		} else {
			mJobsReplayed.Inc()
		}
	}
	return pending
}

// sweepStatusOf maps a terminal sweep op to the family status.
func sweepStatusOf(op journal.Op) Status {
	switch op {
	case journal.OpSweepDone:
		return StatusDone
	case journal.OpSweepFailed:
		return StatusFailed
	case journal.OpSweepCancelled:
		return StatusCancelled
	}
	return StatusQueued
}

// rebuildSweep turns one merged journal outcome into a live Sweep. The
// family document re-expands to the same points (expansion is
// deterministic), settled points replay their recorded outcomes — done
// results also re-seed the spec-hash cache — and an unfinished family
// re-enqueues with only its open points left to run.
func (s *Server) rebuildSweep(e *replayedSweep) (*Sweep, bool) {
	var ss *runspec.SweepSpec
	var points []runspec.SweepPoint
	if len(e.specRaw) > 0 {
		parsed, err := runspec.ParseSweep(e.specRaw)
		if err != nil {
			s.logf("vqed: recovery: sweep %s spec unusable: %v", e.id, err)
		} else if pts, err := parsed.Points(); err != nil {
			s.logf("vqed: recovery: sweep %s expansion failed: %v", e.id, err)
		} else {
			ss, points = parsed, pts
		}
	}
	if ss == nil {
		// Without a re-expandable document the family cannot re-run; a
		// terminal one still answers polls, a live one surfaces as failed.
		sw := &Sweep{
			ID:         e.id,
			Spec:       &runspec.SweepSpec{},
			FamilyHash: e.familyHash,
			status:     sweepStatusOf(e.op),
			errMsg:     e.errMsg,
			submitted:  time.Now(),
			finished:   time.Now(),
			hub:        newEventHub(),
		}
		if !e.op.SweepTerminal() {
			sw.status = StatusFailed
			sw.errMsg = "server: journal holds no recoverable spec for this sweep"
			s.logf("vqed: recovery: sweep %s has no recoverable spec, marking failed", e.id)
		}
		sw.publish(Event{Type: string(sw.status), Error: sw.errMsg})
		return sw, true
	}

	sw := newSweep(e.id, ss, points)
	if e.familyHash != "" {
		sw.FamilyHash = e.familyHash
	}
	for pt, raw := range e.pointDone {
		if pt < 1 || pt > len(sw.points) {
			mRecoverDropped.Inc()
			continue
		}
		p := sw.points[pt-1]
		var res runspec.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			s.logf("vqed: recovery: sweep %s point %d result unusable: %v", e.id, pt, err)
			continue
		}
		p.status = StatusDone
		p.result = &res
		if !s.cfg.DisableCache {
			s.cacheStore(p.pt.Hash, &res)
		}
	}
	for pt, msg := range e.pointFailed {
		if pt < 1 || pt > len(sw.points) {
			mRecoverDropped.Inc()
			continue
		}
		p := sw.points[pt-1]
		if !p.status.Terminal() {
			p.status = StatusFailed
			p.err = msg
		}
	}
	for pt, ckpt := range e.pointCkpt {
		if pt < 1 || pt > len(sw.points) || ckpt == "" {
			continue
		}
		p := sw.points[pt-1]
		if p.status.Terminal() {
			continue
		}
		if _, err := resilience.CheckpointKind(ckpt); err == nil {
			p.checkpoint = ckpt
			p.resume = true
		} else if !os.IsNotExist(err) {
			s.logf("vqed: recovery: sweep %s point %d checkpoint %s invalid, cold restart: %v", e.id, pt, ckpt, err)
			os.Remove(ckpt)
		}
	}

	if e.op.SweepTerminal() {
		sw.status = sweepStatusOf(e.op)
		sw.errMsg = e.errMsg
		now := time.Now()
		sw.started, sw.finished = now, now
		if sw.status == StatusCancelled {
			for _, p := range sw.points {
				if !p.status.Terminal() {
					p.status = StatusCancelled
				}
			}
		}
		sw.publish(Event{Type: string(sw.status), Error: sw.errMsg})
		return sw, true
	}
	sw.publish(Event{Type: string(StatusQueued)})
	return sw, true
}

// sweepSeqOf extracts the numeric suffix of a "sweep-%06d" ID.
func sweepSeqOf(id string) int {
	num, ok := strings.CutPrefix(id, "sweep-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// journalSweepSpec marshals a family document for its accepted record.
func journalSweepSpec(ss *runspec.SweepSpec) json.RawMessage {
	raw, err := json.Marshal(ss)
	if err != nil {
		return nil
	}
	return raw
}

// legacyManifestJobs reads and deletes the old shutdown manifest,
// converting its entries to replay form.
func (s *Server) legacyManifestJobs() []*replayedJob {
	path := filepath.Join(s.cfg.SpoolDir, "manifest.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var m legacyManifest
	if err := json.Unmarshal(data, &m); err != nil {
		s.logf("vqed: recovery: legacy manifest unreadable, ignoring: %v", err)
		os.Remove(path)
		return nil
	}
	var out []*replayedJob
	for _, mj := range m.Jobs {
		if mj.ID == "" || mj.Spec == nil {
			continue
		}
		raw, err := json.Marshal(mj.Spec)
		if err != nil {
			continue
		}
		out = append(out, &replayedJob{
			id:         mj.ID,
			specRaw:    raw,
			specHash:   mj.SpecHash,
			op:         journal.OpCheckpointed,
			checkpoint: mj.CheckpointPath,
		})
	}
	os.Remove(path)
	if len(out) > 0 {
		s.logf("vqed: recovery: merged %d job(s) from legacy manifest", len(out))
	}
	return out
}

// jobSeqOf extracts the numeric suffix of a "job-%06d" ID (0 if foreign).
func jobSeqOf(id string) int {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func fileExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Mode().IsRegular()
}

// journalSpec marshals a job's spec for its accepted record.
func journalSpec(spec *runspec.RunSpec) json.RawMessage {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil
	}
	return raw
}

// journalResult marshals a result for a terminal record.
func journalResult(res *runspec.Result) json.RawMessage {
	if res == nil {
		return nil
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return nil
	}
	return raw
}

// compactThreshold is how many appended records trigger a background
// journal compaction after a job settles.
const compactThreshold = 512

// liveSnapshot rebuilds the minimal record set that reproduces the
// current job table: accepted (+spec) for every job, the latest
// checkpoint/attempt facts for unfinished ones, and the terminal record
// (with result) for settled ones.
func (s *Server) liveSnapshot() []journal.Record {
	// Snapshot the job list under s.mu, then read each job under its own
	// lock only after s.mu is released (same lock-order discipline as the
	// HTTP listing path).
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	sweeps := make([]*Sweep, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		sweeps = append(sweeps, s.sweeps[id])
	}
	s.mu.Unlock()

	var recs []journal.Record
	for _, j := range jobs {
		j.mu.Lock()
		st, ckpt, attempt, res, errMsg := j.status, j.checkpoint, j.attempt, j.result, j.err
		resume := j.resume
		j.mu.Unlock()
		recs = append(recs, journal.Record{
			Op: journal.OpAccepted, JobID: j.ID, SpecHash: j.SpecHash,
			Spec: journalSpec(j.Spec),
		})
		switch st {
		case StatusDone, StatusFailed, StatusInterrupted:
			recs = append(recs, journal.Record{
				Op: journal.Op(st), JobID: j.ID, SpecHash: j.SpecHash,
				Result: journalResult(res), Error: errMsg, Checkpoint: ckpt,
			})
		default:
			if attempt > 0 {
				recs = append(recs, journal.Record{
					Op: journal.OpRetrying, JobID: j.ID, Attempt: attempt, Error: errMsg,
				})
			}
			if resume && ckpt != "" {
				recs = append(recs, journal.Record{
					Op: journal.OpCheckpointed, JobID: j.ID, Checkpoint: ckpt,
				})
			}
		}
	}
	for _, sw := range sweeps {
		sw.mu.Lock()
		recs = append(recs, journal.Record{
			Op: journal.OpSweepAccepted, JobID: sw.ID, SpecHash: sw.FamilyHash,
			Spec: journalSweepSpec(sw.Spec),
		})
		for _, p := range sw.points {
			switch p.status {
			case StatusDone:
				recs = append(recs, journal.Record{
					Op: journal.OpSweepPointDone, JobID: sw.ID,
					Point: p.pt.Index + 1, SpecHash: p.pt.Hash,
					Result: journalResult(p.result),
				})
			case StatusFailed:
				recs = append(recs, journal.Record{
					Op: journal.OpSweepPointFailed, JobID: sw.ID,
					Point: p.pt.Index + 1, SpecHash: p.pt.Hash, Error: p.err,
				})
			default:
				if p.resume && p.checkpoint != "" {
					recs = append(recs, journal.Record{
						Op: journal.OpSweepCheckpoint, JobID: sw.ID,
						Point: p.pt.Index + 1, SpecHash: p.pt.Hash,
						Checkpoint: p.checkpoint,
					})
				}
			}
		}
		if sw.status.Terminal() && sw.status != StatusInterrupted {
			var op journal.Op
			switch sw.status {
			case StatusDone:
				op = journal.OpSweepDone
			case StatusFailed:
				op = journal.OpSweepFailed
			case StatusCancelled:
				op = journal.OpSweepCancelled
			}
			recs = append(recs, journal.Record{
				Op: op, JobID: sw.ID, SpecHash: sw.FamilyHash, Error: sw.errMsg,
			})
		}
		sw.mu.Unlock()
	}
	return recs
}

// compactIfNeeded rewrites the journal down to the live snapshot once
// enough appends have accumulated. At most one compaction runs at a time;
// contenders simply skip (the next settling job retries).
func (s *Server) compactIfNeeded(force bool) {
	s.mu.Lock()
	jn := s.jn
	s.mu.Unlock()
	if jn == nil {
		return
	}
	if !force && jn.Appended() < compactThreshold {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	defer s.compacting.Store(false)
	if err := jn.Compact(s.liveSnapshot()); err != nil {
		s.degrade(fmt.Sprintf("journal compaction failed: %v", err))
	}
}
