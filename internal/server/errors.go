package server

// The one error envelope every /v1/* handler speaks:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": N}}
//
// replacing the ad-hoc shapes earlier releases used (bare
// {"kind","error"} bodies, free-form 503 payloads). retry_after_ms is
// present only on backpressure rejections and mirrors the Retry-After
// header (which stays, for clients that only read headers).

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
)

// Error codes carried in the envelope.
const (
	codeInvalidArgument = "invalid_argument"
	codeBadRequest      = "bad_request"
	codeNotFound        = "not_found"
	codeTooLarge        = "too_large"
	codeQueueFull       = "queue_full"
	codeShuttingDown    = "shutting_down"
	codeInternal        = "internal"
)

// apiError is the inner error object.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMs quotes how long to back off (queue_full only).
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// errorEnvelope is the wire shape of every non-2xx /v1 response body.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// writeAPIError emits the envelope. A positive retryAfter additionally
// sets the Retry-After header (whole seconds, rounded up, minimum 1).
func writeAPIError(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration) {
	env := errorEnvelope{Error: apiError{Code: code, Message: message}}
	if retryAfter > 0 {
		env.Error.RetryAfterMs = retryAfter.Milliseconds()
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, env)
}

// writeError maps a Go error onto the envelope, inferring the code from
// the status and the engine's invalid-argument sentinel.
func writeError(w http.ResponseWriter, status int, err error) {
	code := codeInternal
	switch {
	case errors.Is(err, core.ErrInvalidArgument):
		code = codeInvalidArgument
	case status == http.StatusBadRequest:
		code = codeBadRequest
	case status == http.StatusNotFound:
		code = codeNotFound
	case status == http.StatusRequestEntityTooLarge:
		code = codeTooLarge
	case status == http.StatusServiceUnavailable:
		code = codeShuttingDown
	}
	writeAPIError(w, status, code, err.Error(), 0)
}
