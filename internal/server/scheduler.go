package server

// The bounded scheduler: a fixed worker fleet drains the job queue, every
// worker running specs through the shared runspec engine on one common
// state.Pool. Admission control is an explicit backlog counter — a full
// queue rejects at submit time (HTTP 503) instead of buffering
// unboundedly — and the concurrency bound is the worker count, so a burst
// of heavy jobs degrades to latency, never to memory exhaustion.
//
// Fault isolation happens per job: a panicking evaluation is recovered in
// its worker, a wedged one is cancelled by the no-progress watchdog, and
// both are re-queued on a bounded retry budget with RetryPolicy backoff
// before settling terminally. Every transition is journaled first, so the
// lifecycle survives a daemon crash at any point.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/runspec"
	"repro/internal/server/journal"
	"repro/internal/telemetry"
)

// Scheduler instruments, in the process-wide scope so /v1/metrics and
// run reports surface them alongside the engine's own counters.
var (
	mJobsSubmitted   = telemetry.GetCounter("server.jobs.submitted")
	mJobsCompleted   = telemetry.GetCounter("server.jobs.completed")
	mJobsFailed      = telemetry.GetCounter("server.jobs.failed")
	mJobsInterrupted = telemetry.GetCounter("server.jobs.interrupted")
	mJobsRejected    = telemetry.GetCounter("server.jobs.rejected")
	mJobsRetried     = telemetry.GetCounter("server.jobs.retried")
	mJobsPanicked    = telemetry.GetCounter("server.jobs.panics_recovered")
	mWatchdogStalls  = telemetry.GetCounter("server.watchdog.stalls")
	mCacheHits       = telemetry.GetCounter("server.cache.hits")
	mQueueDepth      = telemetry.GetGauge("server.queue.depth")
	mJobsRunning     = telemetry.GetGauge("server.jobs.running")
	mJobRun          = telemetry.GetTimer("server.job.run")

	// Latency rings feed the load harness and capacity planner: recent
	// per-job queue wait, execution time, and end-to-end latency in
	// milliseconds, exported with percentiles through /v1/metrics.
	mQueueWaitMs = telemetry.GetRing("server.job.queue_wait_ms", 512)
	mRunMs       = telemetry.GetRing("server.job.run_ms", 512)
	mE2EMs       = telemetry.GetRing("server.job.e2e_ms", 512)
)

// ErrQueueFull is returned by Submit when admission control rejects a
// job; the HTTP layer maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("server: job queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("server: shutting down")

// errJobPanicked marks an engine panic recovered by the worker; it
// classifies as retryable.
var errJobPanicked = errors.New("server: worker recovered a panic")

// errStalled is the cancellation cause the watchdog attaches when a job
// exceeds the no-progress deadline.
var errStalled = errors.New("server: no engine progress within stall timeout")

// Submit validates, deduplicates, journals, and enqueues a spec,
// returning the job record once its accepted record is durable. A spec
// whose canonical hash matches a completed run is answered from the
// result cache without touching the queue.
func (s *Server) Submit(spec *runspec.RunSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	probe := newJob("", spec)
	var cached *runspec.Result
	if !s.cfg.DisableCache {
		cached = s.cache[probe.SpecHash]
	}
	if cached == nil && s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		mJobsRejected.Inc()
		return nil, ErrQueueFull
	}
	s.jobSeq++
	id := fmt.Sprintf("job-%06d", s.jobSeq)
	job := probe
	job.ID = id
	s.jobs[id] = job
	s.order = append(s.order, id)
	if cached == nil {
		// Reserve the backlog slot under the same lock as the admission
		// check; the enqueue itself happens after the journal write, and
		// the channel's slack guarantees it cannot block.
		s.queued++
	}
	s.mu.Unlock()
	mJobsSubmitted.Inc()

	if cached != nil {
		// Duplicate of a completed spec: serve the cached result without
		// re-simulation. The job still exists as a first-class record so
		// clients can poll it uniformly — and it is journaled, so it still
		// answers after a restart.
		mCacheHits.Inc()
		job.publish(Event{Type: string(StatusQueued)})
		job.mu.Lock()
		job.status = StatusDone
		job.cacheHit = true
		job.result = cached
		now := time.Now()
		job.started, job.finished = now, now
		e2e := now.Sub(job.submitted)
		job.mu.Unlock()
		s.journalAppend(journal.Record{Op: journal.OpAccepted, JobID: id,
			SpecHash: job.SpecHash, Spec: journalSpec(spec)})
		s.journalAppend(journal.Record{Op: journal.OpDone, JobID: id,
			SpecHash: job.SpecHash, Result: journalResult(cached)})
		mE2EMs.Observe(float64(e2e) / float64(time.Millisecond))
		mJobsCompleted.Inc()
		job.publish(Event{Type: string(StatusDone)})
		return job, nil
	}

	// Durability before acknowledgement: the accepted record (with the
	// full spec) must be on disk before the client hears 202, so a crash
	// after this point can never lose the job.
	s.journalAppend(journal.Record{Op: journal.OpAccepted, JobID: id,
		SpecHash: job.SpecHash, Spec: journalSpec(spec)})
	select {
	case s.queue <- queueItem{job: job}:
	case <-s.runCtx.Done():
		// Shutdown raced the enqueue; the accepted record re-enqueues the
		// job on the next start.
	}
	mQueueDepth.Set(int64(len(s.queue)))
	job.publish(Event{Type: string(StatusQueued)})
	return job, nil
}

// observeRunTime folds one measured job execution time into the EWMA
// (α = 1/8) the admission controller falls back to for wait quoting when
// no cost model is installed.
func (s *Server) observeRunTime(d time.Duration) {
	for {
		old := s.avgRunNs.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if s.avgRunNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// EstimateWait quotes how long a newly arriving job would wait before a
// worker picks it up: the queue backlog divided across the fleet, priced
// per-job by the installed cost model (Config.Estimator) when present,
// else by the measured EWMA of recent executions, else a nominal second.
// The admission controller sends this as Retry-After on 503 rejections so
// clients back off proportionally to actual load instead of thundering
// back on a fixed timer.
func (s *Server) EstimateWait(spec *runspec.RunSpec) time.Duration {
	var svc time.Duration
	if s.cfg.Estimator != nil && spec != nil {
		if d, ok := s.cfg.Estimator(spec); ok && d > 0 {
			svc = d
		}
	}
	if svc <= 0 {
		svc = time.Duration(s.avgRunNs.Load())
	}
	if svc <= 0 {
		svc = time.Second
	}
	backlog := len(s.queue) + 1
	waves := (backlog + s.cfg.MaxConcurrent - 1) / s.cfg.MaxConcurrent
	return time.Duration(waves) * svc
}

// worker is one scheduler slot: it drains the queue until shutdown. A
// queue item is either a single job or an entire sweep family; a family
// occupies its worker for the whole curve so points share one build
// cache and warm-start chain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case item, ok := <-s.queue:
			if !ok {
				return
			}
			s.mu.Lock()
			if s.queued > 0 {
				s.queued--
			}
			s.mu.Unlock()
			mQueueDepth.Set(int64(len(s.queue)))
			if item.sweep != nil {
				s.runSweep(item.sweep)
			} else if item.job != nil {
				s.runJob(item.job)
			}
		}
	}
}

// watchdog cancels running jobs whose engine heartbeats have gone silent
// for longer than StallTimeout; the job then classifies as a retryable
// stall and re-queues (or degrades to best-so-far on budget exhaustion).
func (s *Server) watchdog() {
	defer s.wg.Done()
	interval := s.cfg.StallTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case <-tick.C:
			now := time.Now().UnixNano()
			s.mu.Lock()
			for id, e := range s.watch {
				if now-e.beat.Load() > int64(s.cfg.StallTimeout) {
					mWatchdogStalls.Inc()
					e.cancel(errStalled)
					// Cancel exactly once; the worker unregisters on return.
					delete(s.watch, id)
				}
			}
			s.mu.Unlock()
		}
	}
}

func (s *Server) watchAdd(id string, beat *atomic.Int64, cancel context.CancelCauseFunc) {
	s.mu.Lock()
	s.watch[id] = &watchEntry{beat: beat, cancel: cancel}
	s.mu.Unlock()
}

func (s *Server) watchRemove(id string) {
	s.mu.Lock()
	delete(s.watch, id)
	s.mu.Unlock()
}

// runJob executes one job — including its retry attempts — in the
// current worker slot, streaming progress into the job's event history
// and settling its terminal state.
func (s *Server) runJob(job *Job) {
	start := telemetry.Now()
	mJobsRunning.Set(s.running.Add(1))
	defer func() {
		mJobsRunning.Set(s.running.Add(-1))
		mJobRun.Since(start)
	}()
	for {
		retry, delay := s.runAttempt(job)
		if !retry {
			return
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-s.runCtx.Done():
			// Shutdown during backoff: the journal already holds the
			// retrying record (non-terminal), so the next start re-runs it.
			t.Stop()
			return
		}
	}
}

// execute runs one engine attempt with per-job panic isolation. The
// engine's progress observer feeds the watchdog heartbeat, the chaos
// fault hook, and the SSE stream, in that order.
func (s *Server) execute(ctx context.Context, job *Job, checkpoint string, resume bool) (res *runspec.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			mJobsPanicked.Inc()
			err = fmt.Errorf("%w: %v", errJobPanicked, r)
		}
	}()
	spec := job.Spec
	if resume && checkpoint != "" {
		sp := *spec
		sp.Resilience.CheckpointPath = checkpoint
		sp.Resilience.Resume = true
		spec = &sp
	}
	hook := s.cfg.FaultHook
	return runspec.Run(ctx, spec, runspec.RunOptions{
		Pool:           s.pool,
		CheckpointPath: checkpoint,
		OnProgress: func(p runspec.Progress) {
			job.beat()
			if hook != nil {
				hook(ctx, job.ID, p)
			}
			job.publish(Event{Type: "progress", Phase: p.Phase,
				Iteration: p.Iteration, Energy: p.Energy, Operator: p.Operator})
		},
	})
}

// runAttempt executes one attempt and classifies the outcome. It returns
// retry=true (with a backoff delay) when the job should be re-run in
// this worker slot.
func (s *Server) runAttempt(job *Job) (retry bool, delay time.Duration) {
	checkpoint := ""
	if s.spoolOK.Load() {
		checkpoint = filepath.Join(s.cfg.SpoolDir, job.ID+".ckpt")
	}
	job.mu.Lock()
	job.status = StatusRunning
	if job.started.IsZero() {
		job.started = time.Now()
	}
	job.checkpoint = checkpoint
	attempt := job.attempt
	resume := job.resume
	job.mu.Unlock()
	job.beat()
	s.journalAppend(journal.Record{Op: journal.OpRunning, JobID: job.ID,
		SpecHash: job.SpecHash, Attempt: attempt, Checkpoint: checkpoint})
	job.publish(Event{Type: string(StatusRunning)})

	jobCtx, cancel := context.WithCancelCause(s.runCtx)
	s.watchAdd(job.ID, &job.lastBeat, cancel)
	res, err := s.execute(jobCtx, job, checkpoint, resume)
	s.watchRemove(job.ID)
	stalled := errors.Is(context.Cause(jobCtx), errStalled)
	cancel(nil)

	shutdown := s.runCtx.Err() != nil
	switch {
	case shutdown:
		s.settleInterruptedByShutdown(job, res, err, checkpoint)
		return false, 0

	case stalled:
		return s.maybeRetry(job, res, checkpoint,
			fmt.Sprintf("stall: %v", errStalled))

	case err != nil && errors.Is(err, errJobPanicked):
		return s.maybeRetry(job, res, checkpoint, err.Error())

	case err != nil && errors.Is(err, resilience.ErrCheckpointWrite):
		// The spool is broken, not the job: shed checkpointing and retry
		// the attempt without durability.
		s.degradeSpool(fmt.Sprintf("checkpoint write failed: %v", err))
		return s.maybeRetry(job, nil, "", err.Error())

	case err != nil && retryableEngineErr(err):
		return s.maybeRetry(job, res, checkpoint, err.Error())

	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Spec-level walltime expired before the optimizer could capture a
		// best-so-far point (e.g. QPE, or pre-loop).
		s.settle(job, StatusInterrupted, nil, err.Error(), checkpoint)
		return false, 0

	case err != nil:
		s.settle(job, StatusFailed, nil, err.Error(), checkpoint)
		return false, 0

	case res.Interrupted:
		// Graceful walltime halt: best-so-far result plus a resumable
		// checkpoint; terminal from the daemon's perspective.
		s.settle(job, StatusInterrupted, res, "", checkpoint)
		return false, 0

	default:
		s.settle(job, StatusDone, res, "", checkpoint)
		return false, 0
	}
}

// retryableEngineErr classifies transient engine failures worth a
// re-queue: exhausted comm retries, detected corruption, dropped
// transfers. Spec errors (invalid argument) are always terminal.
func retryableEngineErr(err error) bool {
	if errors.Is(err, core.ErrInvalidArgument) {
		return false
	}
	return errors.Is(err, resilience.ErrRetriesExhausted) ||
		errors.Is(err, resilience.ErrCorrupted) ||
		errors.Is(err, resilience.ErrDropped)
}

// maybeRetry re-queues a retryably-failed job if budget remains, else
// settles it: with a best-so-far result as interrupted (degraded
// completion), without one as failed.
func (s *Server) maybeRetry(job *Job, res *runspec.Result, checkpoint, reason string) (retry bool, delay time.Duration) {
	job.mu.Lock()
	job.attempt++
	attempt := job.attempt
	job.mu.Unlock()

	if attempt > s.cfg.RetryBudget {
		if res != nil {
			// Degrade to best-so-far: the optimizer captured a usable
			// partial answer before the job was cancelled.
			s.settle(job, StatusInterrupted, res,
				fmt.Sprintf("retry budget exhausted after %d attempt(s): %s", attempt, reason), checkpoint)
		} else {
			s.settle(job, StatusFailed, nil,
				fmt.Sprintf("retry budget exhausted after %d attempt(s): %s", attempt, reason), checkpoint)
		}
		return false, 0
	}

	// Resume from the attempt's checkpoint when it verifies; a torn or
	// mismatched snapshot cold-starts instead.
	resume := false
	if checkpoint != "" {
		if _, err := resilience.CheckpointKind(checkpoint); err == nil {
			resume = true
		} else if !os.IsNotExist(err) {
			os.Remove(checkpoint)
		}
	}
	job.mu.Lock()
	job.status = StatusQueued
	job.resume = resume
	job.mu.Unlock()

	s.journalAppend(journal.Record{Op: journal.OpRetrying, JobID: job.ID,
		Attempt: attempt, Error: reason, Checkpoint: checkpoint})
	mJobsRetried.Inc()
	s.logf("vqed: job %s attempt %d failed retryably (%s), re-queued", job.ID, attempt, reason)
	job.publish(Event{Type: EventRetrying, Error: reason})
	job.publish(Event{Type: string(StatusQueued)})
	return true, s.cfg.RetryPolicy.Delay(attempt + 1)
}

// settleInterruptedByShutdown parks an in-flight job for the next start:
// status interrupted (best-so-far result when the optimizer captured
// one), and a journaled checkpointed record — non-terminal, so replay
// re-enqueues and resumes it.
func (s *Server) settleInterruptedByShutdown(job *Job, res *runspec.Result, err error, checkpoint string) {
	job.mu.Lock()
	job.finished = time.Now()
	job.status = StatusInterrupted
	if res != nil {
		job.result = res
	} else if err != nil {
		job.err = err.Error()
	}
	job.mu.Unlock()
	rec := journal.Record{Op: journal.OpCheckpointed, JobID: job.ID, SpecHash: job.SpecHash}
	if checkpoint != "" && fileExists(checkpoint) {
		rec.Checkpoint = checkpoint
	}
	s.journalAppend(rec)
	mJobsInterrupted.Inc()
	job.publish(Event{Type: string(StatusInterrupted)})
}

// settle records a terminal outcome: journal first, then metrics, cache,
// and the terminal event.
func (s *Server) settle(job *Job, status Status, res *runspec.Result, errMsg, checkpoint string) {
	job.mu.Lock()
	job.finished = time.Now()
	job.status = status
	job.err = errMsg
	if res != nil {
		job.result = res
	}
	queueWait := job.started.Sub(job.submitted)
	runTime := job.finished.Sub(job.started)
	e2e := job.finished.Sub(job.submitted)
	job.mu.Unlock()

	mQueueWaitMs.Observe(float64(queueWait) / float64(time.Millisecond))
	mRunMs.Observe(float64(runTime) / float64(time.Millisecond))
	mE2EMs.Observe(float64(e2e) / float64(time.Millisecond))
	s.observeRunTime(runTime)

	rec := journal.Record{Op: journal.Op(status), JobID: job.ID, SpecHash: job.SpecHash,
		Result: journalResult(res), Error: errMsg}
	if checkpoint != "" && fileExists(checkpoint) {
		rec.Checkpoint = checkpoint
	}
	s.journalAppend(rec)

	switch status {
	case StatusDone:
		if !s.cfg.DisableCache {
			s.cacheStore(job.SpecHash, res)
		}
		mJobsCompleted.Inc()
		job.publish(Event{Type: string(StatusDone)})
	case StatusFailed:
		mJobsFailed.Inc()
		job.publish(Event{Type: string(StatusFailed), Error: errMsg})
	case StatusInterrupted:
		mJobsInterrupted.Inc()
		job.publish(Event{Type: string(StatusInterrupted)})
	}
	s.compactIfNeeded(false)
}
