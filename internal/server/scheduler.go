package server

// The bounded scheduler: a fixed worker fleet drains the job queue, every
// worker running specs through the shared runspec engine on one common
// state.Pool. Admission control is the queue capacity — a full queue
// rejects at submit time (HTTP 503) instead of buffering unboundedly —
// and the concurrency bound is the worker count, so a burst of heavy jobs
// degrades to latency, never to memory exhaustion.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/runspec"
	"repro/internal/telemetry"
)

// Scheduler instruments, in the process-wide scope so /v1/metrics and
// run reports surface them alongside the engine's own counters.
var (
	mJobsSubmitted   = telemetry.GetCounter("server.jobs.submitted")
	mJobsCompleted   = telemetry.GetCounter("server.jobs.completed")
	mJobsFailed      = telemetry.GetCounter("server.jobs.failed")
	mJobsInterrupted = telemetry.GetCounter("server.jobs.interrupted")
	mJobsRejected    = telemetry.GetCounter("server.jobs.rejected")
	mCacheHits       = telemetry.GetCounter("server.cache.hits")
	mQueueDepth      = telemetry.GetGauge("server.queue.depth")
	mJobsRunning     = telemetry.GetGauge("server.jobs.running")
	mJobRun          = telemetry.GetTimer("server.job.run")
)

// ErrQueueFull is returned by Submit when admission control rejects a
// job; the HTTP layer maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("server: job queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("server: shutting down")

// Submit validates, deduplicates, and enqueues a spec, returning the job
// record immediately. A spec whose canonical hash matches a completed
// run is answered from the result cache without touching the queue.
func (s *Server) Submit(spec *runspec.RunSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.jobSeq++
	id := fmt.Sprintf("job-%06d", s.jobSeq)
	job := newJob(id, spec)
	s.jobs[id] = job
	s.order = append(s.order, id)
	cached := s.cache[job.SpecHash]
	s.mu.Unlock()
	mJobsSubmitted.Inc()

	if cached != nil {
		// Duplicate of a completed spec: serve the cached result without
		// re-simulation. The job still exists as a first-class record so
		// clients can poll it uniformly.
		mCacheHits.Inc()
		job.publish(Event{Type: string(StatusQueued)})
		job.mu.Lock()
		job.status = StatusDone
		job.cacheHit = true
		job.result = cached
		now := time.Now()
		job.started, job.finished = now, now
		job.mu.Unlock()
		mJobsCompleted.Inc()
		job.publish(Event{Type: string(StatusDone)})
		return job, nil
	}

	select {
	case s.queue <- job:
		mQueueDepth.Set(int64(len(s.queue)))
		job.publish(Event{Type: string(StatusQueued)})
		return job, nil
	default:
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		mJobsRejected.Inc()
		return nil, ErrQueueFull
	}
}

// worker is one scheduler slot: it drains the queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case job, ok := <-s.queue:
			if !ok {
				return
			}
			mQueueDepth.Set(int64(len(s.queue)))
			s.runJob(job)
		}
	}
}

// runJob executes one job through the shared engine, streaming progress
// into the job's event history and settling its terminal state.
func (s *Server) runJob(job *Job) {
	start := telemetry.Now()
	mJobsRunning.Set(s.running.Add(1))
	defer func() {
		mJobsRunning.Set(s.running.Add(-1))
		mJobRun.Since(start)
	}()

	checkpoint := filepath.Join(s.cfg.SpoolDir, job.ID+".ckpt")
	job.mu.Lock()
	job.status = StatusRunning
	job.started = time.Now()
	job.checkpoint = checkpoint
	job.mu.Unlock()
	job.publish(Event{Type: string(StatusRunning)})

	res, err := runspec.Run(s.runCtx, job.Spec, runspec.RunOptions{
		Pool:           s.pool,
		CheckpointPath: checkpoint,
		OnProgress: func(p runspec.Progress) {
			job.publish(Event{Type: "progress", Phase: p.Phase,
				Iteration: p.Iteration, Energy: p.Energy, Operator: p.Operator})
		},
	})

	job.mu.Lock()
	job.finished = time.Now()
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Cancellation surfaced as an error before the optimizer could
		// capture a best-so-far point (e.g. QPE, or pre-loop).
		job.status = StatusInterrupted
		job.err = err.Error()
	case err != nil:
		job.status = StatusFailed
		job.err = err.Error()
	case res.Interrupted:
		// Graceful halt: best-so-far result plus a resumable checkpoint.
		job.status = StatusInterrupted
		job.result = res
	default:
		job.status = StatusDone
		job.result = res
	}
	terminal := job.status
	job.mu.Unlock()

	switch terminal {
	case StatusDone:
		s.mu.Lock()
		if _, ok := s.cache[job.SpecHash]; !ok {
			s.cache[job.SpecHash] = res
			s.cacheOrder = append(s.cacheOrder, job.SpecHash)
			if len(s.cacheOrder) > s.cfg.CacheCapacity {
				evict := s.cacheOrder[0]
				s.cacheOrder = s.cacheOrder[1:]
				delete(s.cache, evict)
			}
		}
		s.mu.Unlock()
		mJobsCompleted.Inc()
		job.publish(Event{Type: string(StatusDone)})
	case StatusFailed:
		mJobsFailed.Inc()
		job.publish(Event{Type: string(StatusFailed), Error: job.view(false).Error})
	case StatusInterrupted:
		mJobsInterrupted.Inc()
		job.publish(Event{Type: string(StatusInterrupted)})
	}
}
