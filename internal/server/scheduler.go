package server

// The bounded scheduler: a fixed worker fleet drains the job queue, every
// worker running specs through the shared runspec engine on one common
// state.Pool. Admission control is the queue capacity — a full queue
// rejects at submit time (HTTP 503) instead of buffering unboundedly —
// and the concurrency bound is the worker count, so a burst of heavy jobs
// degrades to latency, never to memory exhaustion.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/runspec"
	"repro/internal/telemetry"
)

// Scheduler instruments, in the process-wide scope so /v1/metrics and
// run reports surface them alongside the engine's own counters.
var (
	mJobsSubmitted   = telemetry.GetCounter("server.jobs.submitted")
	mJobsCompleted   = telemetry.GetCounter("server.jobs.completed")
	mJobsFailed      = telemetry.GetCounter("server.jobs.failed")
	mJobsInterrupted = telemetry.GetCounter("server.jobs.interrupted")
	mJobsRejected    = telemetry.GetCounter("server.jobs.rejected")
	mCacheHits       = telemetry.GetCounter("server.cache.hits")
	mQueueDepth      = telemetry.GetGauge("server.queue.depth")
	mJobsRunning     = telemetry.GetGauge("server.jobs.running")
	mJobRun          = telemetry.GetTimer("server.job.run")

	// Latency rings feed the load harness and capacity planner: recent
	// per-job queue wait, execution time, and end-to-end latency in
	// milliseconds, exported with percentiles through /v1/metrics.
	mQueueWaitMs = telemetry.GetRing("server.job.queue_wait_ms", 512)
	mRunMs       = telemetry.GetRing("server.job.run_ms", 512)
	mE2EMs       = telemetry.GetRing("server.job.e2e_ms", 512)
)

// ErrQueueFull is returned by Submit when admission control rejects a
// job; the HTTP layer maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("server: job queue full")

// ErrShuttingDown is returned by Submit after Shutdown has begun.
var ErrShuttingDown = errors.New("server: shutting down")

// Submit validates, deduplicates, and enqueues a spec, returning the job
// record immediately. A spec whose canonical hash matches a completed
// run is answered from the result cache without touching the queue.
func (s *Server) Submit(spec *runspec.RunSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.jobSeq++
	id := fmt.Sprintf("job-%06d", s.jobSeq)
	job := newJob(id, spec)
	s.jobs[id] = job
	s.order = append(s.order, id)
	var cached *runspec.Result
	if !s.cfg.DisableCache {
		cached = s.cache[job.SpecHash]
	}
	s.mu.Unlock()
	mJobsSubmitted.Inc()

	if cached != nil {
		// Duplicate of a completed spec: serve the cached result without
		// re-simulation. The job still exists as a first-class record so
		// clients can poll it uniformly.
		mCacheHits.Inc()
		job.publish(Event{Type: string(StatusQueued)})
		job.mu.Lock()
		job.status = StatusDone
		job.cacheHit = true
		job.result = cached
		now := time.Now()
		job.started, job.finished = now, now
		e2e := now.Sub(job.submitted)
		job.mu.Unlock()
		mE2EMs.Observe(float64(e2e) / float64(time.Millisecond))
		mJobsCompleted.Inc()
		job.publish(Event{Type: string(StatusDone)})
		return job, nil
	}

	select {
	case s.queue <- job:
		mQueueDepth.Set(int64(len(s.queue)))
		job.publish(Event{Type: string(StatusQueued)})
		return job, nil
	default:
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		mJobsRejected.Inc()
		return nil, ErrQueueFull
	}
}

// observeRunTime folds one measured job execution time into the EWMA
// (α = 1/8) the admission controller falls back to for wait quoting when
// no cost model is installed.
func (s *Server) observeRunTime(d time.Duration) {
	for {
		old := s.avgRunNs.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if s.avgRunNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// EstimateWait quotes how long a newly arriving job would wait before a
// worker picks it up: the queue backlog divided across the fleet, priced
// per-job by the installed cost model (Config.Estimator) when present,
// else by the measured EWMA of recent executions, else a nominal second.
// The admission controller sends this as Retry-After on 503 rejections so
// clients back off proportionally to actual load instead of thundering
// back on a fixed timer.
func (s *Server) EstimateWait(spec *runspec.RunSpec) time.Duration {
	var svc time.Duration
	if s.cfg.Estimator != nil && spec != nil {
		if d, ok := s.cfg.Estimator(spec); ok && d > 0 {
			svc = d
		}
	}
	if svc <= 0 {
		svc = time.Duration(s.avgRunNs.Load())
	}
	if svc <= 0 {
		svc = time.Second
	}
	backlog := len(s.queue) + 1
	waves := (backlog + s.cfg.MaxConcurrent - 1) / s.cfg.MaxConcurrent
	return time.Duration(waves) * svc
}

// worker is one scheduler slot: it drains the queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case job, ok := <-s.queue:
			if !ok {
				return
			}
			mQueueDepth.Set(int64(len(s.queue)))
			s.runJob(job)
		}
	}
}

// runJob executes one job through the shared engine, streaming progress
// into the job's event history and settling its terminal state.
func (s *Server) runJob(job *Job) {
	start := telemetry.Now()
	mJobsRunning.Set(s.running.Add(1))
	defer func() {
		mJobsRunning.Set(s.running.Add(-1))
		mJobRun.Since(start)
	}()

	checkpoint := filepath.Join(s.cfg.SpoolDir, job.ID+".ckpt")
	job.mu.Lock()
	job.status = StatusRunning
	job.started = time.Now()
	job.checkpoint = checkpoint
	job.mu.Unlock()
	job.publish(Event{Type: string(StatusRunning)})

	res, err := runspec.Run(s.runCtx, job.Spec, runspec.RunOptions{
		Pool:           s.pool,
		CheckpointPath: checkpoint,
		OnProgress: func(p runspec.Progress) {
			job.publish(Event{Type: "progress", Phase: p.Phase,
				Iteration: p.Iteration, Energy: p.Energy, Operator: p.Operator})
		},
	})

	job.mu.Lock()
	job.finished = time.Now()
	queueWait := job.started.Sub(job.submitted)
	runTime := job.finished.Sub(job.started)
	e2e := job.finished.Sub(job.submitted)
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Cancellation surfaced as an error before the optimizer could
		// capture a best-so-far point (e.g. QPE, or pre-loop).
		job.status = StatusInterrupted
		job.err = err.Error()
	case err != nil:
		job.status = StatusFailed
		job.err = err.Error()
	case res.Interrupted:
		// Graceful halt: best-so-far result plus a resumable checkpoint.
		job.status = StatusInterrupted
		job.result = res
	default:
		job.status = StatusDone
		job.result = res
	}
	terminal := job.status
	job.mu.Unlock()

	mQueueWaitMs.Observe(float64(queueWait) / float64(time.Millisecond))
	mRunMs.Observe(float64(runTime) / float64(time.Millisecond))
	mE2EMs.Observe(float64(e2e) / float64(time.Millisecond))
	s.observeRunTime(runTime)

	switch terminal {
	case StatusDone:
		s.mu.Lock()
		if _, ok := s.cache[job.SpecHash]; !ok && !s.cfg.DisableCache {
			s.cache[job.SpecHash] = res
			s.cacheOrder = append(s.cacheOrder, job.SpecHash)
			if len(s.cacheOrder) > s.cfg.CacheCapacity {
				evict := s.cacheOrder[0]
				s.cacheOrder = s.cacheOrder[1:]
				delete(s.cache, evict)
			}
		}
		s.mu.Unlock()
		mJobsCompleted.Inc()
		job.publish(Event{Type: string(StatusDone)})
	case StatusFailed:
		mJobsFailed.Inc()
		job.publish(Event{Type: string(StatusFailed), Error: job.view(false).Error})
	case StatusInterrupted:
		mJobsInterrupted.Inc()
		job.publish(Event{Type: string(StatusInterrupted)})
	}
}
