package server

// Test-only worker fault injection for the chaos harness: a FaultHook
// installed via Config.FaultHook runs inside the engine's progress
// observer, where it can panic (exercising per-job panic isolation) or
// stall (exercising the no-progress watchdog). Production deployments
// leave the hook nil; the vqed binary only installs one when the
// VQED_FAULTS environment variable is set.

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/runspec"
	"repro/internal/telemetry"
)

var (
	mFaultPanics = telemetry.GetCounter("server.fault.injected_panics")
	mFaultStalls = telemetry.GetCounter("server.fault.injected_stalls")
)

// FaultHook observes every engine progress sample of every job before it
// is published. It may panic or block; the scheduler's isolation and
// watchdog must contain either. ctx is the job's run context — a stalling
// hook should select on it so a watchdog cancellation unblocks the slot.
type FaultHook func(ctx context.Context, jobID string, p runspec.Progress)

// faultInjector is the seeded implementation behind FaultHookFromEnv. It
// fires at most one fault per job (so a bounded retry budget always
// recovers) and at most Max faults per process.
type faultInjector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	panicProb float64
	stallProb float64
	stall     time.Duration
	max       int
	fired     int
	perJob    map[string]bool
}

// FaultHookFromEnv parses a fault-drill spec of the form
//
//	seed=7,panic=0.05,stall=0.03,stall_ms=1500,max=6
//
// into a seeded FaultHook: each progress sample of a not-yet-faulted job
// draws once; with probability panic the hook panics, else with
// probability stall it blocks for stall_ms (or until the job context is
// canceled). max bounds total injected faults (default 16). An empty
// spec returns a nil hook.
func FaultHookFromEnv(spec string) (FaultHook, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &faultInjector{
		rng:    rand.New(rand.NewSource(1)),
		stall:  time.Second,
		max:    16,
		perJob: map[string]bool{},
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("%w: server: fault spec field %q (want key=value)", core.ErrInvalidArgument, kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: server: fault seed %q: %v", core.ErrInvalidArgument, val, err)
			}
			inj.rng = rand.New(rand.NewSource(n))
		case "panic":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("%w: server: fault panic prob %q", core.ErrInvalidArgument, val)
			}
			inj.panicProb = p
		case "stall":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("%w: server: fault stall prob %q", core.ErrInvalidArgument, val)
			}
			inj.stallProb = p
		case "stall_ms":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%w: server: fault stall_ms %q", core.ErrInvalidArgument, val)
			}
			inj.stall = time.Duration(n) * time.Millisecond
		case "max":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%w: server: fault max %q", core.ErrInvalidArgument, val)
			}
			inj.max = n
		default:
			return nil, fmt.Errorf("%w: server: unknown fault spec key %q", core.ErrInvalidArgument, key)
		}
	}
	return inj.hook, nil
}

// hook is the FaultHook. The RNG draw happens under the injector lock;
// the fault itself (panic or stall) happens outside it so a stalled job
// never blocks injection bookkeeping for other workers.
func (f *faultInjector) hook(ctx context.Context, jobID string, p runspec.Progress) {
	f.mu.Lock()
	if f.fired >= f.max || f.perJob[jobID] {
		f.mu.Unlock()
		return
	}
	draw := f.rng.Float64()
	doPanic := draw < f.panicProb
	doStall := !doPanic && draw < f.panicProb+f.stallProb
	if doPanic || doStall {
		f.fired++
		f.perJob[jobID] = true
	}
	f.mu.Unlock()

	switch {
	case doPanic:
		mFaultPanics.Inc()
		panic(fmt.Sprintf("server: injected fault panic (job %s, iteration %d)", jobID, p.Iteration))
	case doStall:
		mFaultStalls.Inc()
		t := time.NewTimer(f.stall)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
}
