package server

import (
	"sync"
	"testing"

	"repro/internal/runspec"
)

// TestPublishFanoutExactlyOnce pins the lock-free fan-out in publish:
// the event send happens after j.mu is released, and the hand-off stays
// exact because subscribe copies the history under the same lock. Every
// subscriber must see each event exactly once across replay ∪ live,
// regardless of when it subscribed relative to concurrent publishes.
func TestPublishFanoutExactlyOnce(t *testing.T) {
	spec := &runspec.RunSpec{Molecule: runspec.MoleculeSpec{Kind: "synthetic", Orbitals: 4, Seed: 1}}
	j := newJob("fanout", spec)

	const publishers = 4
	const perPublisher = 10
	total := publishers*perPublisher + 1 // + terminal "done"

	// Early subscriber: registered before any publish, so it must see the
	// full sequence 1..total with no duplicates.
	earlyReplay, earlyCh := j.subscribe()

	// Mid-stream subscribers race subscribe against the publishers; each
	// still owes the exactly-once union (history is well under the replay
	// cap and the 64-slot buffer, so nothing is legitimately dropped).
	type lateSub struct {
		replay []Event
		ch     chan Event
	}
	lateSubs := make([]lateSub, 0, 8)
	var lateMu sync.Mutex

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				j.publish(Event{Type: "progress", Iteration: i})
			}
		}()
	}
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replay, ch := j.subscribe()
			lateMu.Lock()
			lateSubs = append(lateSubs, lateSub{replay, ch})
			lateMu.Unlock()
		}()
	}
	// Churn: subscribers that leave mid-stream must not deadlock or
	// duplicate anything for the others.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ch := j.subscribe()
			j.unsubscribe(ch)
		}()
	}
	wg.Wait()
	j.publish(Event{Type: "done"})
	<-j.hub.done // closed by the terminal publish, after its fan-out

	check := func(name string, replay []Event, ch chan Event) {
		t.Helper()
		seen := map[int]bool{}
		note := func(e Event) {
			if seen[e.Seq] {
				t.Fatalf("%s: seq %d delivered twice", name, e.Seq)
			}
			seen[e.Seq] = true
		}
		for _, e := range replay {
			note(e)
		}
		for {
			select {
			case e := <-ch:
				note(e)
			default:
				for want := 1; want <= total; want++ {
					if !seen[want] {
						t.Fatalf("%s: seq %d missing (saw %d of %d)", name, want, len(seen), total)
					}
				}
				if len(seen) != total {
					t.Fatalf("%s: saw %d events, want %d", name, len(seen), total)
				}
				return
			}
		}
	}
	check("early", earlyReplay, earlyCh)
	for _, s := range lateSubs {
		check("late", s.replay, s.ch)
	}
}
