// Package tuning is the kernel-choice model shared by the execution
// engine: one process-wide set of thresholds that decide, per phase,
// which kernel strategy serves a request — serial loop vs worker pool,
// per-term vs batched expectation, fused vs gate-at-a-time circuit
// execution, and the cache-tile geometry of the fused sweep.
//
// The package is a leaf (it depends only on telemetry) so that state,
// pauli and cluster can all read it without import cycles, while the
// calibration subsystem (internal/kernel/calib) imports those engine
// packages to micro-benchmark them and writes its fitted thresholds
// back here with Install. Until calibration runs, the defaults are the
// constants the engine used when the thresholds were hardcoded.
//
// All reads are single atomic loads, cheap enough for per-gate paths;
// Install swaps every knob atomically (each knob individually — a
// concurrent reader may observe a torn *set*, but every individual
// threshold is always a value that was explicitly installed, which is
// harmless for performance heuristics).
package tuning

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// T is one complete set of kernel-choice thresholds. The zero value is
// not meaningful; start from Defaults() or Current().
type T struct {
	// GateParallel is the minimum amplitude count before a gate sweep
	// engages the worker pool; below it the serial loop wins.
	GateParallel int `json:"gate_parallel"`
	// ReduceParallel is the minimum amplitude count before
	// expectation-style reductions engage the pool — lower than
	// GateParallel because a reduction amortizes the handoff over every
	// term of a group.
	ReduceParallel int `json:"reduce_parallel"`
	// NaiveMaxTerms is the largest term count for which the per-term
	// evaluator beats the batched X-mask plan (plan construction is
	// O(terms) but not free; tiny observables don't repay it).
	NaiveMaxTerms int `json:"naive_max_terms"`
	// MinFuseAmps is the minimum amplitude count before compiling a
	// circuit into a fused program pays for itself; smaller states run
	// the plain transpiled gate list. The compile cost scales with gate
	// count while execution scales with the state dimension, so below
	// ~2^13 amplitudes the per-run compile usually eats the win.
	MinFuseAmps int `json:"min_fuse_amps"`
	// ClusterPoolMin is the minimum per-rank amplitude count before a
	// multi-rank cluster starts its rank worker pool; below it the
	// inline rank loop is faster than goroutine handoff.
	ClusterPoolMin int `json:"cluster_pool_min"`
	// TileBits is log2 of the amplitudes per cache tile in the fused
	// layer sweep: ops of a layer whose qubits all fall below TileBits
	// are applied back-to-back on one resident tile. 2^11 amplitudes =
	// 32 KiB, sized to a typical L1 data cache.
	TileBits int `json:"tile_bits"`
}

// Defaults returns the uncalibrated threshold set — the values that
// were hardcoded in state, pauli and cluster before calibration
// existed.
func Defaults() T {
	return T{
		GateParallel:   1 << 14,
		ReduceParallel: 1 << 12,
		NaiveMaxTerms:  1,
		MinFuseAmps:    1 << 13,
		ClusterPoolMin: 1 << 11,
		TileBits:       11,
	}
}

// Knob gauges: the currently installed thresholds, visible in every
// run report and /v1/metrics capture so a run records which kernel
// model it executed under. kernel.calib.installs counts Install calls
// (0 = the run used compiled-in defaults).
var (
	gGateParallel   = telemetry.GetGauge("kernel.calib.gate_parallel")
	gReduceParallel = telemetry.GetGauge("kernel.calib.reduce_parallel")
	gNaiveMaxTerms  = telemetry.GetGauge("kernel.calib.naive_max_terms")
	gMinFuseAmps    = telemetry.GetGauge("kernel.calib.min_fuse_amps")
	gClusterPoolMin = telemetry.GetGauge("kernel.calib.cluster_pool_min")
	gTileBits       = telemetry.GetGauge("kernel.calib.tile_bits")
	cInstalls       = telemetry.GetCounter("kernel.calib.installs")
)

var (
	vGateParallel   atomic.Int64
	vReduceParallel atomic.Int64
	vNaiveMaxTerms  atomic.Int64
	vMinFuseAmps    atomic.Int64
	vClusterPoolMin atomic.Int64
	vTileBits       atomic.Int64
	vSource         atomic.Value // string
)

func init() {
	store(Defaults())
	vSource.Store("default")
}

func store(t T) {
	vGateParallel.Store(int64(t.GateParallel))
	vReduceParallel.Store(int64(t.ReduceParallel))
	vNaiveMaxTerms.Store(int64(t.NaiveMaxTerms))
	vMinFuseAmps.Store(int64(t.MinFuseAmps))
	vClusterPoolMin.Store(int64(t.ClusterPoolMin))
	vTileBits.Store(int64(t.TileBits))
	gGateParallel.Set(int64(t.GateParallel))
	gReduceParallel.Set(int64(t.ReduceParallel))
	gNaiveMaxTerms.Set(int64(t.NaiveMaxTerms))
	gMinFuseAmps.Set(int64(t.MinFuseAmps))
	gClusterPoolMin.Set(int64(t.ClusterPoolMin))
	gTileBits.Set(int64(t.TileBits))
}

// sanitize clamps nonsensical values to their defaults so a corrupt or
// hand-edited calibration file can degrade performance but never break
// execution (TileBits ≤ 0 would divide the state into zero-size tiles).
func sanitize(t T) T {
	d := Defaults()
	if t.GateParallel <= 0 {
		t.GateParallel = d.GateParallel
	}
	if t.ReduceParallel <= 0 {
		t.ReduceParallel = d.ReduceParallel
	}
	if t.NaiveMaxTerms < 0 {
		t.NaiveMaxTerms = 0
	}
	if t.MinFuseAmps <= 0 {
		t.MinFuseAmps = d.MinFuseAmps
	}
	if t.ClusterPoolMin <= 0 {
		t.ClusterPoolMin = d.ClusterPoolMin
	}
	if t.TileBits < 4 || t.TileBits > 30 {
		t.TileBits = d.TileBits
	}
	return t
}

// Install makes t the process-wide threshold set. source records where
// it came from ("measured", "file", or "default"/"test") and shows up
// in Snapshot and the capability report.
func Install(t T, source string) {
	store(sanitize(t))
	vSource.Store(source)
	cInstalls.Inc()
}

// Reset restores the compiled-in defaults (used by tests that install
// synthetic thresholds).
func Reset() {
	store(Defaults())
	vSource.Store("default")
}

// Current returns the installed threshold set.
func Current() T {
	return T{
		GateParallel:   int(vGateParallel.Load()),
		ReduceParallel: int(vReduceParallel.Load()),
		NaiveMaxTerms:  int(vNaiveMaxTerms.Load()),
		MinFuseAmps:    int(vMinFuseAmps.Load()),
		ClusterPoolMin: int(vClusterPoolMin.Load()),
		TileBits:       int(vTileBits.Load()),
	}
}

// Source reports where the installed thresholds came from.
func Source() string { return vSource.Load().(string) }

// Hot-path accessors: one atomic load each.

// GateParallel returns the gate-sweep pool threshold.
func GateParallel() int { return int(vGateParallel.Load()) }

// ReduceParallel returns the reduction pool threshold.
func ReduceParallel() int { return int(vReduceParallel.Load()) }

// NaiveMaxTerms returns the per-term-vs-batched crossover.
func NaiveMaxTerms() int { return int(vNaiveMaxTerms.Load()) }

// MinFuseAmps returns the fused-vs-unfused crossover.
func MinFuseAmps() int { return int(vMinFuseAmps.Load()) }

// ClusterPoolMin returns the cluster rank-pool threshold.
func ClusterPoolMin() int { return int(vClusterPoolMin.Load()) }

// TileBits returns log2 of the fused-sweep tile size.
func TileBits() int { return int(vTileBits.Load()) }

// Snapshot returns the installed thresholds plus provenance as a plain
// map, for the daemon's capability report.
func Snapshot() map[string]any {
	t := Current()
	return map[string]any{
		"source":           Source(),
		"gate_parallel":    t.GateParallel,
		"reduce_parallel":  t.ReduceParallel,
		"naive_max_terms":  t.NaiveMaxTerms,
		"min_fuse_amps":    t.MinFuseAmps,
		"cluster_pool_min": t.ClusterPoolMin,
		"tile_bits":        t.TileBits,
	}
}
