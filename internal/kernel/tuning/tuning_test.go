package tuning

import "testing"

func TestDefaultsMatchLegacyHardcodedThresholds(t *testing.T) {
	d := Defaults()
	if d.GateParallel != 1<<14 {
		t.Errorf("GateParallel default %d", d.GateParallel)
	}
	if d.ReduceParallel != 1<<12 {
		t.Errorf("ReduceParallel default %d", d.ReduceParallel)
	}
	if Source() != "default" && Source() != "test" {
		// Another test may have installed and reset; Reset restores "default".
		Reset()
		if Source() != "default" {
			t.Errorf("Source after Reset = %q", Source())
		}
	}
}

func TestInstallCurrentRoundTrip(t *testing.T) {
	defer Reset()
	want := T{
		GateParallel:   123,
		ReduceParallel: 45,
		NaiveMaxTerms:  6,
		MinFuseAmps:    789,
		ClusterPoolMin: 1011,
		TileBits:       12,
	}
	Install(want, "test")
	if got := Current(); got != want {
		t.Fatalf("Current() = %+v, want %+v", got, want)
	}
	if Source() != "test" {
		t.Errorf("Source = %q", Source())
	}
	if GateParallel() != 123 || ReduceParallel() != 45 || NaiveMaxTerms() != 6 ||
		MinFuseAmps() != 789 || ClusterPoolMin() != 1011 || TileBits() != 12 {
		t.Error("accessors disagree with Current()")
	}
	Reset()
	if got := Current(); got != Defaults() {
		t.Fatalf("Reset left %+v", got)
	}
}

func TestInstallSanitizesGarbage(t *testing.T) {
	defer Reset()
	Install(T{GateParallel: -1, ReduceParallel: 0, NaiveMaxTerms: -3, MinFuseAmps: 0, ClusterPoolMin: -7, TileBits: 99}, "test")
	got := Current()
	d := Defaults()
	if got.GateParallel != d.GateParallel || got.ReduceParallel != d.ReduceParallel ||
		got.MinFuseAmps != d.MinFuseAmps || got.ClusterPoolMin != d.ClusterPoolMin ||
		got.TileBits != d.TileBits {
		t.Fatalf("sanitize failed: %+v", got)
	}
	if got.NaiveMaxTerms != 0 {
		t.Errorf("negative NaiveMaxTerms should clamp to 0, got %d", got.NaiveMaxTerms)
	}
}

func TestSnapshotKeys(t *testing.T) {
	snap := Snapshot()
	for _, k := range []string{"source", "gate_parallel", "reduce_parallel", "naive_max_terms", "min_fuse_amps", "cluster_pool_min", "tile_bits"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("Snapshot missing %q", k)
		}
	}
}
