package calib

import (
	"flag"
	"fmt"
	"os"
)

// Flags is the shared command-line surface for calibration: every
// binary that executes circuits registers the same two flags so the
// kernel-choice model is controlled uniformly across cmd/vqe,
// cmd/nwqsim, cmd/benchfigs, and cmd/vqed.
type Flags struct {
	// File is a calibration profile to load (and, with -calibrate, to
	// write after measuring).
	File string
	// Calibrate forces a fresh measurement even when File exists.
	Calibrate bool
}

// AddFlags registers -calibration and -calibrate on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.File, "calibration", "", "kernel calibration profile to load (measured and written if missing)")
	fs.BoolVar(&f.Calibrate, "calibrate", false, "micro-benchmark kernel crossovers at startup and install the result (writes -calibration file if set)")
	return f
}

// Setup applies the flags after flag.Parse: a no-op when neither flag
// was used, otherwise it loads or measures a profile and installs it as
// the process-wide kernel tuning. Progress goes to stderr because
// several callers reserve stdout for machine-readable output.
func (f *Flags) Setup() error {
	if f.File == "" && !f.Calibrate {
		return nil
	}
	if f.Calibrate {
		p := Measure(Options{})
		p.Apply("measured")
		if f.File != "" {
			if err := p.Save(f.File); err != nil {
				return fmt.Errorf("calib: save: %w", err)
			}
			fmt.Fprintf(os.Stderr, "calib: measured and saved %s\n", f.File)
		}
		return nil
	}
	p, measured, err := LoadOrMeasure(f.File, Options{})
	if err != nil {
		return err
	}
	if measured {
		p.Apply("measured")
		fmt.Fprintf(os.Stderr, "calib: no usable profile at %s, measured and saved a fresh one\n", f.File)
	} else {
		p.Apply("file")
	}
	return nil
}
