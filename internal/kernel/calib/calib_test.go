package calib

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/kernel/tuning"
)

// fastOptions keeps the micro-benchmarks tiny so the test suite stays
// quick; the fit logic is what's under test, not the numbers.
func fastOptions() Options {
	return Options{QubitsMin: 4, QubitsMax: 6, Reps: 1, Workers: 2}
}

func TestMeasureProducesSaneProfile(t *testing.T) {
	p := Measure(fastOptions())
	if p.Version != Version {
		t.Fatalf("Version = %d, want %d", p.Version, Version)
	}
	if p.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Fatalf("GoMaxProcs = %d, want %d", p.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if len(p.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	kernels := map[string]int{}
	for _, s := range p.Samples {
		kernels[s.Kernel]++
		if s.Ns <= 0 {
			t.Fatalf("sample %+v has non-positive timing", s)
		}
	}
	for _, k := range []string{"gate_serial", "gate_pool", "reduce_serial", "reduce_pool",
		"expect_naive", "expect_batched", "unfused", "fused"} {
		if kernels[k] == 0 {
			t.Errorf("no samples for kernel %q", k)
		}
	}
	// Fitted thresholds must be installable (sanitize-clean).
	if p.Tuning.GateParallel <= 0 || p.Tuning.ReduceParallel <= 0 ||
		p.Tuning.MinFuseAmps <= 0 || p.Tuning.NaiveMaxTerms < 0 {
		t.Fatalf("unusable fitted tuning: %+v", p.Tuning)
	}
}

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.json")
	p := Measure(fastOptions())
	p.Tuning.GateParallel = 12345
	p.Tuning.NaiveMaxTerms = 2
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Version != p.Version || got.GoMaxProcs != p.GoMaxProcs ||
		got.Workers != p.Workers || got.QubitsMin != p.QubitsMin || got.QubitsMax != p.QubitsMax {
		t.Fatalf("header mismatch: got %+v want %+v", got, p)
	}
	if got.Tuning != p.Tuning {
		t.Fatalf("tuning mismatch: got %+v want %+v", got.Tuning, p.Tuning)
	}
	if len(got.Samples) != len(p.Samples) {
		t.Fatalf("sample count mismatch: got %d want %d", len(got.Samples), len(p.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i] != p.Samples[i] {
			t.Fatalf("sample %d mismatch: got %+v want %+v", i, got.Samples[i], p.Samples[i])
		}
	}
}

func TestLoadRejectsWrongGoMaxProcs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.json")
	p := Measure(fastOptions())
	p.GoMaxProcs = runtime.GOMAXPROCS(0) + 7
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a profile measured under a different GOMAXPROCS")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.json")
	p := Measure(fastOptions())
	p.Version = Version + 1
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a profile with a future schema version")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestLoadOrMeasureMeasuresThenCaches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calib.json")
	p1, measured, err := LoadOrMeasure(path, fastOptions())
	if err != nil {
		t.Fatalf("first LoadOrMeasure: %v", err)
	}
	if !measured {
		t.Fatal("first call should have measured")
	}
	p2, measured, err := LoadOrMeasure(path, fastOptions())
	if err != nil {
		t.Fatalf("second LoadOrMeasure: %v", err)
	}
	if measured {
		t.Fatal("second call should have loaded the cached file")
	}
	if p2.Tuning != p1.Tuning {
		t.Fatalf("cached tuning drifted: got %+v want %+v", p2.Tuning, p1.Tuning)
	}
}

func TestApplyInstallsTuning(t *testing.T) {
	defer tuning.Reset()
	p := Measure(fastOptions())
	p.Tuning.GateParallel = 4242
	p.Apply("file")
	if got := tuning.GateParallel(); got != 4242 {
		t.Fatalf("tuning.GateParallel() = %d after Apply, want 4242", got)
	}
	if tuning.Source() != "file" {
		t.Fatalf("tuning.Source() = %q, want \"file\"", tuning.Source())
	}
}

func TestFlagsSetup(t *testing.T) {
	defer tuning.Reset()
	path := filepath.Join(t.TempDir(), "calib.json")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-calibration", path}); err != nil {
		t.Fatal(err)
	}
	// Flags.Setup uses default (slower) Options, so exercise the
	// missing-file path with a pre-measured fast profile instead.
	p := Measure(fastOptions())
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := f.Setup(); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if tuning.Source() != "file" {
		t.Fatalf("tuning.Source() = %q after loading profile, want \"file\"", tuning.Source())
	}
	if tuning.Current() != p.Tuning {
		t.Fatalf("installed tuning %+v, want %+v", tuning.Current(), p.Tuning)
	}
}

func TestFlagsSetupNoop(t *testing.T) {
	defer tuning.Reset()
	tuning.Reset()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Setup(); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if tuning.Source() != "default" {
		t.Fatalf("no-op Setup changed tuning source to %q", tuning.Source())
	}
}
