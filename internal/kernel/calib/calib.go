// Package calib is the empirical side of the kernel-choice model: it
// micro-benchmarks the engine's competing kernel strategies on the
// machine it runs on — serial loop vs worker pool, per-term vs batched
// expectation, fused vs gate-at-a-time circuit execution — fits the
// crossover points, and installs them into internal/kernel/tuning.
// Profiles serialize to JSON so a daemon or batch job calibrates once
// and later runs load the cached file; a profile is keyed by
// GOMAXPROCS and the measured qubit range, and loading rejects a file
// recorded under a different processor budget (the crossovers move
// with core count).
package calib

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/kernel/tuning"
	"repro/internal/pauli"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// Version is the profile schema version; bump on incompatible change.
const Version = 1

var (
	mMeasure  = telemetry.GetTimer("kernel.calib.measure")
	cMeasures = telemetry.GetCounter("kernel.calib.measures")
	cLoads    = telemetry.GetCounter("kernel.calib.file_loads")
)

// Options bounds a calibration run. The defaults finish in well under a
// second — cheap enough for process startup or a CI smoke job.
type Options struct {
	// QubitsMin/QubitsMax bound the measured register sizes (defaults
	// 8..13; crossovers outside the range extrapolate to "never").
	QubitsMin int
	QubitsMax int
	// Reps is the best-of repetition count per sample (default 3).
	Reps int
	// Workers is the pool width to calibrate against (state.Options
	// semantics: 0 = GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.QubitsMin <= 1 {
		o.QubitsMin = 8
	}
	if o.QubitsMax < o.QubitsMin {
		o.QubitsMax = o.QubitsMin + 5
	}
	if o.QubitsMax > 20 {
		o.QubitsMax = 20
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	return o
}

// Sample is one raw timing: nanoseconds for one operation of the named
// kernel at the given register size (and term count, for the
// expectation strategies).
type Sample struct {
	Kernel string  `json:"kernel"`
	Qubits int     `json:"qubits"`
	Terms  int     `json:"terms,omitempty"`
	Ns     float64 `json:"ns"`
}

// Profile is a recorded calibration: the raw samples plus the fitted
// thresholds, keyed by the processor budget they were measured under.
type Profile struct {
	Version    int      `json:"version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	QubitsMin  int      `json:"qubits_min"`
	QubitsMax  int      `json:"qubits_max"`
	Samples    []Sample `json:"samples"`
	Tuning     tuning.T `json:"tuning"`
}

// Apply installs the profile's thresholds as the process-wide kernel
// model. source is recorded for provenance ("measured" or "file").
func (p *Profile) Apply(source string) { tuning.Install(p.Tuning, source) }

// bestOf times fn reps times and returns the fastest run in ns.
func bestOf(reps int, fn func()) float64 {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		if ns := float64(time.Since(start).Nanoseconds()); ns < best {
			best = ns
		}
	}
	return best
}

// Measure runs the micro-benchmarks and returns a fitted profile. The
// process-wide tuning is not modified; call Apply on the result.
func Measure(opts Options) *Profile {
	start := telemetry.Now()
	defer mMeasure.Since(start)
	cMeasures.Inc()
	opts = opts.withDefaults()
	workers := state.ResolveWorkers(opts.Workers)
	p := &Profile{
		Version: Version,
		//vqelint:ignore workerssemantics recording the process budget as a profile cache key, not resolving a worker count
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		QubitsMin:  opts.QubitsMin,
		QubitsMax:  opts.QubitsMax,
		Tuning:     tuning.Defaults(),
	}
	p.measureGateCrossover(opts, workers)
	p.measureReduceCrossover(opts, workers)
	p.measureExpectationCrossover(opts)
	p.measureFusionCrossover(opts)
	return p
}

// measureGateCrossover times one dense single-qubit gate sweep serial
// vs pooled per register size and fits GateParallel to the smallest
// amplitude count where the pool wins.
func (p *Profile) measureGateCrossover(opts Options, workers int) {
	if workers <= 1 {
		// A serial process never engages the pool; leave the default.
		return
	}
	h := circuit.New(1).H(0).Gates[0].Matrix2()
	cross := 0
	for n := opts.QubitsMin; n <= opts.QubitsMax; n++ {
		serial := state.New(n, state.Options{Workers: 1})
		serialNs := bestOf(opts.Reps, func() { serial.Apply1Q(h, 0) })
		pooled := state.New(n, state.Options{Workers: workers, ParallelThreshold: 1})
		pooled.EnsurePool(workers)
		pooledNs := bestOf(opts.Reps, func() { pooled.Apply1Q(h, 0) })
		p.Samples = append(p.Samples,
			Sample{Kernel: "gate_serial", Qubits: n, Ns: serialNs},
			Sample{Kernel: "gate_pool", Qubits: n, Ns: pooledNs})
		if cross == 0 && pooledNs < serialNs {
			cross = core.Dim(n)
		}
	}
	if cross > 0 {
		p.Tuning.GateParallel = cross
	} else {
		// Pool never won in range: push the threshold past what we saw.
		p.Tuning.GateParallel = core.Dim(opts.QubitsMax + 1)
	}
}

// measureReduceCrossover times a |a|² reduction serial vs pooled and
// fits ReduceParallel the same way (the mechanism pauli and state
// reductions share: Pool.ReduceFloat against an inline loop).
func (p *Profile) measureReduceCrossover(opts Options, workers int) {
	if workers <= 1 {
		return
	}
	pool := state.NewPool(workers)
	defer pool.Close()
	cross := 0
	for n := opts.QubitsMin; n <= opts.QubitsMax; n++ {
		amps := state.New(n, state.Options{Workers: 1}).Amplitudes()
		sum := func(lo, hi uint64) float64 {
			acc := 0.0
			for i := lo; i < hi; i++ {
				a := amps[i]
				acc += real(a)*real(a) + imag(a)*imag(a)
			}
			return acc
		}
		dim := uint64(len(amps))
		serialNs := bestOf(opts.Reps, func() { _ = sum(0, dim) })
		pooledNs := bestOf(opts.Reps, func() { _ = pool.ReduceFloat(dim, workers, sum) })
		p.Samples = append(p.Samples,
			Sample{Kernel: "reduce_serial", Qubits: n, Ns: serialNs},
			Sample{Kernel: "reduce_pool", Qubits: n, Ns: pooledNs})
		if cross == 0 && pooledNs < serialNs {
			cross = core.Dim(n)
		}
	}
	if cross > 0 {
		p.Tuning.ReduceParallel = cross
	} else {
		p.Tuning.ReduceParallel = core.Dim(opts.QubitsMax + 1)
	}
}

// calibLetters spreads X/Y/Z letters deterministically over the
// synthetic observables the expectation benchmark uses.
var calibLetters = []byte{'X', 'Y', 'Z', 'Z'}

func syntheticOp(n, terms int) *pauli.Op {
	op := pauli.NewOp()
	for t := 0; t < terms; t++ {
		s := make([]byte, n)
		for q := range s {
			s[q] = 'I'
		}
		// Two non-identity letters per term, varied by term index, so
		// every term lands in its own X-mask group (worst case for the
		// batched engine, the honest comparison point).
		s[t%n] = calibLetters[t%len(calibLetters)]
		s[(t*5+1)%n] = calibLetters[(t/2)%len(calibLetters)]
		op.Add(pauli.MustParse(string(s)), complex(0.3+0.1*float64(t), 0))
	}
	return op
}

// measureExpectationCrossover times the per-term evaluator against
// plan-build-plus-batched-evaluate over growing term counts and fits
// NaiveMaxTerms to the largest count where per-term still wins.
func (p *Profile) measureExpectationCrossover(opts Options) {
	n := opts.QubitsMin + 2
	if n > opts.QubitsMax {
		n = opts.QubitsMax
	}
	s := state.New(n, state.Options{Workers: 1})
	s.Run(superpositionCircuit(n))
	naiveMax := 0
	naiveStillAhead := true
	for _, terms := range []int{1, 2, 4, 8, 16} {
		op := syntheticOp(n, terms)
		naiveNs := bestOf(opts.Reps, func() {
			_ = pauli.ExpectationNaive(s, op, pauli.ExpectationOptions{Workers: 1})
		})
		batchedNs := bestOf(opts.Reps, func() {
			_ = pauli.NewPlan(op).Evaluate(s, pauli.ExpectationOptions{Workers: 1})
		})
		p.Samples = append(p.Samples,
			Sample{Kernel: "expect_naive", Qubits: n, Terms: terms, Ns: naiveNs},
			Sample{Kernel: "expect_batched", Qubits: n, Terms: terms, Ns: batchedNs})
		// Largest prefix of term counts where per-term stays ahead; once
		// batched wins we stop raising the threshold.
		if naiveStillAhead && naiveNs < batchedNs {
			naiveMax = terms
		} else {
			naiveStillAhead = false
		}
	}
	p.Tuning.NaiveMaxTerms = naiveMax
}

// superpositionCircuit spreads amplitude over every basis state so the
// benchmark kernels see no zero-skip shortcuts.
func superpositionCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
		c.RZ(0.1*float64(q+1), q)
	}
	return c
}

// calibAnsatz is the fusion-friendly deep circuit used to measure the
// fused-vs-unfused crossover: hardware-efficient layers with each
// logical 1q rotation lowered to the native RZ·SX·RZ·SX·RZ Euler chain
// (the shape compiled VQE ansatz circuits actually execute) plus CX
// entangler blocks.
func calibAnsatz(n, layers int) *circuit.Circuit {
	c := circuit.New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RZ(0.3+0.07*float64(l*n+q), q)
			c.SX(q)
			c.RZ(0.1+0.05*float64(q), q)
			c.SX(q)
			c.RZ(0.2+0.01*float64(l), q)
		}
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
			c.RZ(0.2+0.03*float64(q), q+1)
			c.CX(q, q+1)
		}
	}
	return c
}

// measureFusionCrossover times gate-at-a-time execution against
// compile-plus-fused execution (compile included — a VQE iteration
// pays it per parameter set) and fits MinFuseAmps to the smallest
// amplitude count where fusion wins.
func (p *Profile) measureFusionCrossover(opts Options) {
	cross := 0
	for n := opts.QubitsMin; n <= opts.QubitsMax; n++ {
		c := calibAnsatz(n, 4)
		unfusedNs := bestOf(opts.Reps, func() {
			s := state.New(n, state.Options{Workers: 1})
			s.Run(c)
		})
		fusedNs := bestOf(opts.Reps, func() {
			s := state.New(n, state.Options{Workers: 1})
			s.RunFused(state.CompileFused(c))
		})
		p.Samples = append(p.Samples,
			Sample{Kernel: "unfused", Qubits: n, Ns: unfusedNs},
			Sample{Kernel: "fused", Qubits: n, Ns: fusedNs})
		if cross == 0 && fusedNs < unfusedNs {
			cross = core.Dim(n)
		}
	}
	if cross > 0 {
		p.Tuning.MinFuseAmps = cross
	} else {
		p.Tuning.MinFuseAmps = core.Dim(opts.QubitsMax + 1)
	}
}

// Save writes the profile as indented JSON.
func (p *Profile) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a profile and validates that it applies to this process:
// same schema version and same GOMAXPROCS (pool crossovers measured
// under a different core budget are wrong here).
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("calib: parse %s: %w", path, err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("calib: %s has schema version %d, want %d", path, p.Version, Version)
	}
	//vqelint:ignore workerssemantics comparing against the profile's recorded cache key, not resolving a worker count
	if got := runtime.GOMAXPROCS(0); p.GoMaxProcs != got {
		return nil, fmt.Errorf("calib: %s was measured at GOMAXPROCS=%d, process has %d — recalibrate", path, p.GoMaxProcs, got)
	}
	cLoads.Inc()
	return &p, nil
}

// LoadOrMeasure loads a cached profile, or measures and (when path is
// non-empty) saves a fresh one if the file is missing or stale.
// measured reports whether a fresh measurement ran.
func LoadOrMeasure(path string, opts Options) (p *Profile, measured bool, err error) {
	if path != "" {
		if p, err := Load(path); err == nil {
			return p, false, nil
		}
	}
	p = Measure(opts)
	if path != "" {
		if err := p.Save(path); err != nil {
			return p, true, err
		}
	}
	return p, true, nil
}
