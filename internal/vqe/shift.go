package vqe

import (
	"fmt"
	"math"

	"repro/internal/ansatz"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/pauli"
	"repro/internal/state"
)

// ParameterShiftGradient computes analytic gradients with the two-point
// shift rule g_k = [E(θ_k + π/2) − E(θ_k − π/2)]/2, exact for circuits
// whose parameters each enter through a single rotation gate with a
// Pauli generator of eigenvalues ±1 (RX/RY/RZ and friends) — the
// hardware-efficient ansatz qualifies; UCCSD parameters (which fan out
// into several rotations) do not, and should use the adjoint method.
//
// This is the gradient rule actual quantum hardware can evaluate, hence
// its place beside the simulator-only adjoint sweep.
func ParameterShiftGradient(h *pauli.Op, a ansatz.Ansatz, params []float64, workers int) []float64 {
	if !ShiftRuleApplies(a, params) {
		panic(fmt.Errorf("%w: parameter-shift rule does not apply to this ansatz (parameters re-used across gates)", core.ErrInvalidArgument))
	}
	// One batched plan and one simulator serve all 2·dim shifted
	// evaluations; the state (and its worker pool) is reset, not
	// reallocated, between them.
	plan := pauli.NewPlan(h)
	s := state.New(a.NumQubits(), state.Options{Workers: workers})
	energy := func(x []float64) float64 {
		s.ResetZero()
		s.Run(a.Circuit(x))
		return plan.Evaluate(s, pauli.ExpectationOptions{Workers: workers})
	}
	g := make([]float64, len(params))
	shifted := append([]float64(nil), params...)
	for k := range params {
		shifted[k] = params[k] + math.Pi/2
		ep := energy(shifted)
		shifted[k] = params[k] - math.Pi/2
		em := energy(shifted)
		shifted[k] = params[k]
		g[k] = (ep - em) / 2
	}
	return g
}

// ShiftRuleApplies reports whether every parameter of the ansatz enters
// exactly one single-Pauli rotation gate, the precondition of the
// two-point rule. It probes the circuit structure by materializing it at
// the given parameters and perturbing one parameter at a time.
func ShiftRuleApplies(a ansatz.Ansatz, params []float64) bool {
	base := a.Circuit(params)
	probe := append([]float64(nil), params...)
	for k := range params {
		probe[k] += 0.12345
		changed := diffCount(base, a.Circuit(probe))
		probe[k] = params[k]
		if changed != 1 {
			return false
		}
	}
	// All parameterized gates must be single-Pauli rotations.
	for _, g := range base.Gates {
		if len(g.Params) == 0 {
			continue
		}
		switch g.Kind {
		case gate.RX, gate.RY, gate.RZ, gate.RXX, gate.RYY, gate.RZZ:
		default:
			return false
		}
	}
	return true
}

// diffCount counts gates whose parameters differ between two circuits of
// identical structure.
func diffCount(a, b *circuit.Circuit) int {
	if len(a.Gates) != len(b.Gates) {
		return -1
	}
	n := 0
	for i := range a.Gates {
		ga, gb := a.Gates[i], b.Gates[i]
		if len(ga.Params) != len(gb.Params) {
			return -1
		}
		for j := range ga.Params {
			//vqelint:ignore floatcompare exact bitwise inequality detects "parameter changed" for shift reuse
			if ga.Params[j] != gb.Params[j] {
				n++
				break
			}
		}
	}
	return n
}
