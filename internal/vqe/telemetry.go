package vqe

import "repro/internal/telemetry"

// VQE phase instruments (no-ops until telemetry.Enable). The phase split
// matches the paper's evaluation axes: state preparation (ansatz
// execution) vs. measurement/readout (expectation extraction) vs. the
// classical optimizer loop — the breakdown cross-backend comparisons
// need instead of end-to-end wall clock.
var (
	mPhasePrepare  = telemetry.GetTimer("vqe.phase.prepare")
	mPhaseExpect   = telemetry.GetTimer("vqe.phase.expect")
	mPhaseRestore  = telemetry.GetTimer("vqe.phase.restore")
	mPhaseGradient = telemetry.GetTimer("vqe.phase.gradient")
	mPhaseOptimize = telemetry.GetTimer("vqe.phase.optimize")
	mEnergyEval    = telemetry.GetTimer("vqe.energy")
	mEnergyRecent  = telemetry.GetRing("vqe.energy.recent_ns", 256)
	mAdaptIter     = telemetry.GetTimer("vqe.adapt.iteration")

	// Rotated-mode strategy counters: fused group-plan sweeps (the
	// basis-change layer folded into the pair sweep) vs the classic
	// rotate-then-read walk.
	mRotatedFused   = telemetry.GetCounter("vqe.rotated.fused_evals")
	mRotatedClassic = telemetry.GetCounter("vqe.rotated.classic_evals")
)
