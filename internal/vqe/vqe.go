// Package vqe implements the variational-quantum-eigensolver workflow the
// paper builds around NWQ-Sim: energy evaluation in three modes (direct
// expectation, basis-rotated exact readout, and shot sampling), the
// post-ansatz state cache (§4.1), gate-cost accounting for the
// caching/non-caching comparison (Figure 3), adjoint analytic gradients,
// and the Adapt-VQE outer loop (Figure 5).
package vqe

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ansatz"
	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// EnergyMode selects how ⟨H⟩ is evaluated per parameter set.
type EnergyMode int

const (
	// Direct computes the exact expectation from the cached state
	// amplitudes with no measurement circuits (paper §4.2).
	Direct EnergyMode = iota
	// Rotated computes exact expectations through per-group basis-rotation
	// circuits (what caching accelerates, §4.1).
	Rotated
	// Sampled estimates expectations from shot counts (the traditional
	// workflow the paper contrasts against, §4.2.1).
	Sampled
)

// String implements fmt.Stringer.
func (m EnergyMode) String() string {
	switch m {
	case Direct:
		return "direct"
	case Rotated:
		return "rotated"
	case Sampled:
		return "sampled"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configures a VQE driver.
type Options struct {
	Mode EnergyMode
	// Shots per measurement group in Sampled mode (default 8192).
	Shots int
	// Caching enables the post-ansatz state cache: the ansatz circuit is
	// executed once per parameter set and restored (not re-prepared) for
	// every measurement basis.
	Caching bool
	// DeviceCapacityBytes bounds the simulated device tier of the cache
	// (0 = unlimited; spills go to the host tier, §4.1.4).
	DeviceCapacityBytes uint64
	// Workers for parallel gate application and expectation reduction.
	Workers int
	// Pool shares one persistent worker pool across every state the
	// driver creates (simulator, scratch, cache restores). A job
	// scheduler running many drivers concurrently injects its bounded
	// pool here so goroutine count is fixed per process, not per job;
	// nil keeps the per-driver pool behavior. Overrides Workers with the
	// pool's width.
	Pool *state.Pool
	// Transpile applies gate fusion to ansatz circuits before execution.
	Transpile bool
	// PerTermMeasurement disables qubit-wise-commuting grouping and
	// measures every Hamiltonian term in its own basis — the workflow the
	// paper describes and the Figure 3 cost model assumes. Grouping
	// (default) needs fewer rotations.
	PerTermMeasurement bool
	// Readout attaches a classical measurement-error model to Sampled
	// mode; outcomes are drawn from the confusion-matrix-distorted
	// distribution.
	Readout *noise.ReadoutModel
	// MitigateReadout applies confusion-matrix inversion (unfolding) to
	// the sampled distribution before expectations are computed.
	MitigateReadout bool
	// AdaptiveShots redistributes the total sampling budget
	// (Shots × #groups) across measurement groups proportionally to their
	// coefficient weight Σ|c| instead of uniformly — the standard
	// variance-reduction heuristic for sampled VQE.
	AdaptiveShots bool
	// Seed for sampling.
	Seed uint64
}

// Stats accumulates execution accounting across energy evaluations. Gate
// counts are actual applied-gate tallies from the simulator, the currency
// of the paper's Figures 3 and 4.
type Stats struct {
	EnergyEvaluations int
	AnsatzExecutions  int    // how many times U(θ) was run from |0…0⟩
	GatesApplied      uint64 // total gates the engine executed
	CacheRestores     int
}

// Driver evaluates and minimizes ⟨ψ(θ)|H|ψ(θ)⟩.
type Driver struct {
	H      *pauli.Op
	Ansatz ansatz.Ansatz
	opts   Options

	n       int
	sim     *state.State
	scratch *state.State
	plan    *pauli.Plan // batched X-mask-grouped evaluation plan for H
	// groupPlans (Rotated mode with Transpile) holds one batched plan
	// per measurement group, built once: the group's basis-change layer
	// is fused into the pair sweep, so an energy evaluation reads every
	// group directly off the post-ansatz amplitudes — no per-group
	// clone, rotation circuit, or probability vector.
	groupPlans []*pauli.Plan
	shotPlan   []int
	groupSD    []float64
	readoutRNG *core.RNG
	cache      *state.Cache
	groups     []pauli.MeasurementBasis
	stats      Stats
}

// New builds a driver for observable h over the given ansatz.
func New(h *pauli.Op, a ansatz.Ansatz, opts Options) (*Driver, error) {
	n := a.NumQubits()
	if h.MaxQubit() >= n {
		return nil, core.QubitError(h.MaxQubit(), n)
	}
	if opts.Shots <= 0 {
		opts.Shots = 8192
	}
	d := &Driver{
		H:      h,
		Ansatz: a,
		opts:   opts,
		n:      n,
		sim:    state.New(n, state.Options{Workers: opts.Workers, Seed: opts.Seed, Pool: opts.Pool}),
		plan:   pauli.NewPlan(h),
		cache:  state.NewCache(opts.DeviceCapacityBytes),
	}
	if opts.Mode != Direct {
		if opts.PerTermMeasurement {
			d.groups = perTermBases(h, n)
		} else {
			d.groups = pauli.GroupQWC(h, n)
		}
	}
	if opts.Mode == Rotated && opts.Transpile {
		d.groupPlans = make([]*pauli.Plan, len(d.groups))
		for i := range d.groups {
			d.groupPlans[i] = d.groups[i].Plan()
		}
	}
	return d, nil
}

// perTermBases builds one measurement basis per non-identity term.
func perTermBases(h *pauli.Op, n int) []pauli.MeasurementBasis {
	var out []pauli.MeasurementBasis
	for _, t := range h.Terms() {
		if t.P.IsIdentity() {
			continue
		}
		out = append(out, pauli.MeasurementBasis{
			Rotation: pauli.BasisRotation(t.P, n),
			ZMasks:   []uint64{t.P.X | t.P.Z},
			Terms:    []pauli.Term{t},
		})
	}
	return out
}

// NumMeasurementBases reports how many distinct measurement circuits one
// energy evaluation uses (terms in per-term mode, QWC groups otherwise).
func (d *Driver) NumMeasurementBases() int { return len(d.groups) }

// Stats returns a copy of the accounting counters.
func (d *Driver) Stats() Stats {
	s := d.stats
	s.GatesApplied = d.sim.GatesApplied()
	if d.scratch != nil {
		s.GatesApplied += d.scratch.GatesApplied()
	}
	return s
}

// CacheStats exposes the post-ansatz cache counters.
func (d *Driver) CacheStats() state.CacheStats { return d.cache.Stats() }

// prepareAnsatz runs U(θ) from |0…0⟩ on d.sim.
func (d *Driver) prepareAnsatz(params []float64) {
	start := telemetry.Now()
	c := d.Ansatz.Circuit(params)
	d.sim.ResetZero()
	if d.opts.Transpile {
		// Fused kernel path: compile through the transpiler and execute
		// layered fused sweeps (falls back to the plain transpiled gate
		// list below the calibrated cutoff).
		d.sim.RunOptimized(c)
	} else {
		d.sim.Run(c)
	}
	d.stats.AnsatzExecutions++
	mPhasePrepare.Since(start)
}

// paramKey builds the cache key for a parameter vector.
func paramKey(params []float64) string {
	return fmt.Sprintf("%x", params)
}

// Energy evaluates ⟨H⟩ at params according to the configured mode and
// caching policy.
func (d *Driver) Energy(params []float64) float64 {
	start := telemetry.Now()
	d.stats.EnergyEvaluations++
	var e float64
	switch d.opts.Mode {
	case Direct:
		// One ansatz execution; expectation read directly from the
		// amplitudes through the batched engine (the X-mask grouping is
		// built once per driver, amortized over every evaluation).
		d.prepareAnsatz(params)
		readStart := telemetry.Now()
		e = d.plan.Evaluate(d.sim, pauli.ExpectationOptions{Workers: d.opts.Workers})
		mPhaseExpect.Since(readStart)
	case Rotated, Sampled:
		if d.groupPlans != nil {
			mRotatedFused.Inc()
			e = d.energyViaGroupPlans(params)
		} else {
			if d.opts.Mode == Rotated {
				mRotatedClassic.Inc()
			}
			e = d.energyViaGroups(params)
		}
	default:
		panic(fmt.Errorf("%w: unknown energy mode %v", core.ErrInvalidArgument, d.opts.Mode))
	}
	if start != 0 {
		elapsed := time.Now().UnixNano() - start
		mEnergyEval.Observe(elapsed)
		mEnergyRecent.Observe(float64(elapsed))
	}
	return e
}

// energyViaGroupPlans is the fused Rotated path: one ansatz execution,
// then every measurement group's plan sweeps the post-ansatz amplitudes
// directly. Mathematically identical to the rotate-then-read walk
// (pauli.TestGroupPlanMatchesRotatedSweep), but the basis-change layers
// never execute — the rotation is folded into the X-mask pair sweep.
func (d *Driver) energyViaGroupPlans(params []float64) float64 {
	d.prepareAnsatz(params)
	readStart := telemetry.Now()
	total := real(d.H.Coeff(pauli.Identity))
	for _, pl := range d.groupPlans {
		total += pl.Evaluate(d.sim, pauli.ExpectationOptions{Workers: d.opts.Workers})
	}
	mPhaseExpect.Since(readStart)
	return total
}

// energyViaGroups walks the measurement groups, re-preparing or restoring
// the post-ansatz state before each basis rotation.
func (d *Driver) energyViaGroups(params []float64) float64 {
	if d.scratch == nil {
		d.scratch = state.New(d.n, state.Options{Workers: d.opts.Workers, Seed: d.opts.Seed + 1, Pool: d.opts.Pool})
	}
	key := paramKey(params)
	if d.opts.Caching {
		d.prepareAnsatz(params)
		d.cache.Put(key, d.sim)
	}
	total := real(d.H.Coeff(pauli.Identity))
	for i, mb := range d.groups {
		if d.opts.Caching {
			restoreStart := telemetry.Now()
			if _, ok := d.cache.Restore(key, d.scratch); !ok {
				panic("vqe: cache lost the post-ansatz state")
			}
			d.stats.CacheRestores++
			mPhaseRestore.Since(restoreStart)
		} else {
			// Traditional workflow: re-prepare the ansatz for every basis.
			d.prepareAnsatzInto(d.scratch, params)
		}
		readStart := telemetry.Now()
		d.scratch.Run(mb.Rotation)
		if d.opts.AdaptiveShots && d.opts.Mode == Sampled && d.shotPlan == nil {
			d.recordGroupSD(i)
		}
		total += d.readGroup(mb, d.groupShots(i))
		mPhaseExpect.Since(readStart)
	}
	if d.opts.AdaptiveShots && d.opts.Mode == Sampled && d.shotPlan == nil {
		d.buildShotPlan()
	}
	return total
}

// recordGroupSD measures the exact standard deviation of group i's
// estimator on the current (rotated) scratch state — the simulator-side
// shortcut for the pilot sampling a hardware workflow would run.
func (d *Driver) recordGroupSD(i int) {
	if d.groupSD == nil {
		d.groupSD = make([]float64, len(d.groups))
	}
	mb := d.groups[i]
	probs := d.scratch.Probabilities()
	mean, meanSq := 0.0, 0.0
	for x, p := range probs {
		v := 0.0
		for tIdx, t := range mb.Terms {
			if t.P.IsIdentity() {
				continue
			}
			if core.Parity(uint64(x)&mb.ZMasks[tIdx]) == 0 {
				v += real(t.Coeff)
			} else {
				v -= real(t.Coeff)
			}
		}
		mean += p * v
		meanSq += p * v * v
	}
	variance := meanSq - mean*mean
	if variance < 0 {
		variance = 0
	}
	d.groupSD[i] = math.Sqrt(variance)
}

// buildShotPlan allocates the total budget ∝ group standard deviation
// (Neyman allocation), with at least one shot per group.
func (d *Driver) buildShotPlan() {
	total := d.opts.Shots * len(d.groups)
	sum := 0.0
	for _, sd := range d.groupSD {
		sum += sd
	}
	d.shotPlan = make([]int, len(d.groups))
	for g := range d.shotPlan {
		n := 1
		if sum > 0 {
			n = int(float64(total) * d.groupSD[g] / sum)
		}
		if n < 1 {
			n = 1
		}
		d.shotPlan[g] = n
	}
}

// groupShots returns the sampling budget for group i: uniform (Shots per
// group) until the adaptive plan is built from first-pass group standard
// deviations, then Neyman-weighted.
func (d *Driver) groupShots(i int) int {
	if d.shotPlan == nil {
		return d.opts.Shots
	}
	return d.shotPlan[i]
}

// prepareAnsatzInto runs U(θ) on an arbitrary state instance.
func (d *Driver) prepareAnsatzInto(s *state.State, params []float64) {
	start := telemetry.Now()
	c := d.Ansatz.Circuit(params)
	s.ResetZero()
	if d.opts.Transpile {
		s.RunOptimized(c)
	} else {
		s.Run(c)
	}
	d.stats.AnsatzExecutions++
	mPhasePrepare.Since(start)
}

// readGroup extracts the group's weighted expectation from the rotated
// scratch state, exactly (Rotated) or from counts (Sampled).
func (d *Driver) readGroup(mb pauli.MeasurementBasis, shots int) float64 {
	total := 0.0
	switch d.opts.Mode {
	case Rotated:
		probs := d.scratch.Probabilities()
		for i, t := range mb.Terms {
			if t.P.IsIdentity() {
				continue
			}
			zm := mb.ZMasks[i]
			e := 0.0
			for idx, pr := range probs {
				if core.Parity(uint64(idx)&zm) == 0 {
					e += pr
				} else {
					e -= pr
				}
			}
			total += real(t.Coeff) * e
		}
	case Sampled:
		dist, err := d.sampleDistribution(shots)
		if err != nil {
			panic(fmt.Errorf("vqe: sampling measurement distribution: %w", err))
		}
		for i, t := range mb.Terms {
			if t.P.IsIdentity() {
				continue
			}
			total += real(t.Coeff) * noise.ZExpectation(dist, mb.ZMasks[i])
		}
	}
	return total
}

// sampleDistribution draws shots outcomes from the rotated scratch state,
// routing through the readout-error model (and optional mitigation) when
// configured.
func (d *Driver) sampleDistribution(shots int) ([]float64, error) {
	if d.opts.Readout == nil {
		counts := d.scratch.SampleCounts(shots)
		return noise.CountsToDistribution(counts, d.n), nil
	}
	truth := d.scratch.Probabilities()
	noisy, err := d.opts.Readout.Apply(truth)
	if err != nil {
		return nil, err
	}
	// Sample the distorted distribution (phases are irrelevant to
	// sampling, so a √p amplitude vector reuses the engine's sampler).
	amps := make([]complex128, len(noisy))
	for i, p := range noisy {
		if p < 0 {
			p = 0
		}
		amps[i] = complex(math.Sqrt(p), 0)
	}
	// Renormalize against rounding drift.
	norm := 0.0
	for _, a := range amps {
		norm += real(a) * real(a)
	}
	norm = math.Sqrt(norm)
	for i := range amps {
		amps[i] /= complex(norm, 0)
	}
	if d.readoutRNG == nil {
		d.readoutRNG = core.NewRNG(d.opts.Seed + 7)
	}
	sampler, err := state.FromAmplitudes(amps, state.Options{Seed: d.readoutRNG.Uint64() | 1})
	if err != nil {
		return nil, err
	}
	dist := noise.CountsToDistribution(sampler.SampleCounts(shots), d.n)
	if d.opts.MitigateReadout {
		return d.opts.Readout.Mitigate(dist)
	}
	return dist, nil
}

// Result reports a VQE minimization.
type Result struct {
	Energy     float64
	Params     []float64
	Optimizer  opt.Result
	Stats      Stats
	CacheStats state.CacheStats
	// Interrupted is set when the loop was halted early (deadline or
	// observer); Energy/Params then hold the best point so far.
	Interrupted bool
}

// Minimize runs the classical optimization loop from x0 using Nelder–Mead
// (the derivative-free default suited to all three energy modes).
func (d *Driver) Minimize(x0 []float64, o opt.NelderMeadOptions) Result {
	start := telemetry.Now()
	res := opt.NelderMead(d.Energy, x0, o)
	mPhaseOptimize.Since(start)
	return Result{Energy: res.F, Params: res.X, Optimizer: res, Stats: d.Stats(), CacheStats: d.CacheStats(), Interrupted: res.Interrupted}
}

// MinimizeLBFGS runs L-BFGS with adjoint analytic gradients; the ansatz
// must be an exponential-structure ansatz (UCCSD or Adapt).
func (d *Driver) MinimizeLBFGS(x0 []float64, o opt.LBFGSOptions) (Result, error) {
	exp, ok := d.Ansatz.(Exponential)
	if !ok {
		return Result{}, fmt.Errorf("%w: ansatz does not expose exponential structure", core.ErrInvalidArgument)
	}
	grad := func(x, g []float64) {
		gradStart := telemetry.Now()
		d.adjointGradient(exp, x, g)
		mPhaseGradient.Since(gradStart)
	}
	start := telemetry.Now()
	res := opt.LBFGS(d.Energy, grad, x0, o)
	mPhaseOptimize.Since(start)
	return Result{Energy: res.F, Params: res.X, Optimizer: res, Stats: d.Stats(), CacheStats: d.CacheStats(), Interrupted: res.Interrupted}, nil
}
