package vqe

import (
	"math"

	"repro/internal/ansatz"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// AdaptOptions configures the Adapt-VQE outer loop (paper §5.3).
type AdaptOptions struct {
	// MaxIterations bounds the number of operator additions (default 30).
	MaxIterations int
	// GradientTol stops when the largest pool gradient falls below it
	// (default 1e-4).
	GradientTol float64
	// EnergyTol stops when the energy error vs Reference (if set) falls
	// below it; the paper uses 1 milli-hartree chemical accuracy.
	EnergyTol float64
	// Reference is the exact target energy (FCI); NaN disables the
	// energy-based stop.
	Reference float64
	// Workers for simulation.
	Workers int
	// Inner optimizer budget per iteration.
	LBFGS opt.LBFGSOptions
}

// AdaptIteration records one outer-loop step for the convergence plot.
type AdaptIteration struct {
	Iteration    int
	Operator     string  // label of the operator added
	MaxGradient  float64 // selection gradient magnitude
	Energy       float64 // optimized energy after adding it
	ErrorVsRef   float64 // |Energy − Reference| (NaN if no reference)
	Parameters   int
	CircuitDepth int
	GateCount    int
}

// AdaptResult is the full Adapt-VQE outcome.
type AdaptResult struct {
	Energy    float64
	Params    []float64
	Ansatz    *ansatz.AdaptAnsatz
	History   []AdaptIteration
	Converged bool
	// TotalStats accumulates simulator accounting across every inner
	// optimization (the cumulative cost the paper's caching/fusion
	// optimizations target).
	TotalStats Stats
}

// Adapt runs Adapt-VQE: repeatedly pick the pool operator with the largest
// energy gradient, append it to the ansatz, and re-optimize all
// parameters. Ref: Grimsley et al. (paper refs [4, 16, 17]).
func Adapt(h *pauli.Op, pool *ansatz.Pool, n, ne int, o AdaptOptions) (*AdaptResult, error) {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 30
	}
	if o.GradientTol <= 0 {
		o.GradientTol = 1e-4
	}
	adapt := ansatz.NewAdaptAnsatz(n, ne)
	params := []float64{}
	result := &AdaptResult{Ansatz: adapt}

	// Pool-scan simulator created once: every outer iteration resets it in
	// place, so its persistent worker pool serves all gradient scans.
	s := state.New(n, state.Options{Workers: o.Workers})
	for iter := 1; iter <= o.MaxIterations; iter++ {
		done, err := func() (bool, error) {
			// Deferred so every exit — convergence, inner-optimizer error,
			// or a full iteration — observes the timer.
			defer mAdaptIter.Since(telemetry.Now())
			// Prepare current optimal state and scan the pool.
			s.ResetZero()
			s.Run(adapt.Circuit(params))
			grads := PoolGradients(s, h, pool.Ops)
			best, bestAbs := -1, 0.0
			for k, g := range grads {
				if a := math.Abs(g); a > bestAbs {
					best, bestAbs = k, a
				}
			}
			if best < 0 || bestAbs < o.GradientTol {
				result.Converged = true
				return true, nil
			}
			adapt.Grow(pool.Ops[best])
			params = append(params, 0)

			drv, err := New(h, adapt, Options{Mode: Direct, Workers: o.Workers})
			if err != nil {
				return false, err
			}
			lb := o.LBFGS
			if lb.MaxIter == 0 {
				lb.MaxIter = 200
			}
			res, err := drv.MinimizeLBFGS(params, lb)
			if err != nil {
				return false, err
			}
			params = res.Params
			result.Energy = res.Energy
			result.Params = params
			result.TotalStats.EnergyEvaluations += res.Stats.EnergyEvaluations
			result.TotalStats.AnsatzExecutions += res.Stats.AnsatzExecutions
			result.TotalStats.GatesApplied += res.Stats.GatesApplied
			result.TotalStats.CacheRestores += res.Stats.CacheRestores

			c := adapt.Circuit(params)
			st := c.Stats()
			entry := AdaptIteration{
				Iteration:    iter,
				Operator:     pool.Ops[best].Label,
				MaxGradient:  bestAbs,
				Energy:       res.Energy,
				ErrorVsRef:   math.NaN(),
				Parameters:   len(params),
				CircuitDepth: st.Depth,
				GateCount:    st.Total,
			}
			if !math.IsNaN(o.Reference) {
				entry.ErrorVsRef = math.Abs(res.Energy - o.Reference)
			}
			result.History = append(result.History, entry)

			if o.EnergyTol > 0 && !math.IsNaN(o.Reference) && entry.ErrorVsRef < o.EnergyTol {
				result.Converged = true
				return true, nil
			}
			return false, nil
		}()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return result, nil
}
