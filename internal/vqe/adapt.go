package vqe

import (
	"context"
	"fmt"
	"math"

	"repro/internal/ansatz"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/resilience"
	"repro/internal/state"
	"repro/internal/telemetry"
)

// AdaptOptions configures the Adapt-VQE outer loop (paper §5.3).
type AdaptOptions struct {
	// MaxIterations bounds the number of operator additions (default 30).
	MaxIterations int
	// GradientTol stops when the largest pool gradient falls below it
	// (default 1e-4).
	GradientTol float64
	// EnergyTol stops when the energy error vs Reference (if set) falls
	// below it; the paper uses 1 milli-hartree chemical accuracy.
	EnergyTol float64
	// Reference is the exact target energy (FCI); NaN disables the
	// energy-based stop.
	Reference float64
	// Workers for simulation.
	Workers int
	// Pool shares one persistent worker pool across the pool-scan
	// simulator and every inner driver (see vqe.Options.Pool).
	Pool *state.Pool
	// Inner optimizer budget per iteration.
	LBFGS opt.LBFGSOptions
	// Observer is called after every completed outer iteration with the
	// recorded step — the progress hook job servers stream per-iteration
	// energies from. A non-nil return halts growth at that (completed)
	// iteration with Interrupted set.
	Observer func(AdaptIteration) error
}

// AdaptIteration records one outer-loop step for the convergence plot.
type AdaptIteration struct {
	Iteration    int
	Operator     string  // label of the operator added
	MaxGradient  float64 // selection gradient magnitude
	Energy       float64 // optimized energy after adding it
	ErrorVsRef   float64 // |Energy − Reference| (NaN if no reference)
	Parameters   int
	CircuitDepth int
	GateCount    int
}

// AdaptResult is the full Adapt-VQE outcome.
type AdaptResult struct {
	Energy    float64
	Params    []float64
	Ansatz    *ansatz.AdaptAnsatz
	History   []AdaptIteration
	Converged bool
	// Interrupted is set when the outer loop stopped on a deadline; the
	// result then reflects the last completed iteration (and, with
	// checkpointing on, matches the snapshot on disk).
	Interrupted bool
	// TotalStats accumulates simulator accounting across every inner
	// optimization (the cumulative cost the paper's caching/fusion
	// optimizations target).
	TotalStats Stats
}

// Adapt runs Adapt-VQE: repeatedly pick the pool operator with the largest
// energy gradient, append it to the ansatz, and re-optimize all
// parameters. Ref: Grimsley et al. (paper refs [4, 16, 17]).
func Adapt(h *pauli.Op, pool *ansatz.Pool, n, ne int, o AdaptOptions) (*AdaptResult, error) {
	return AdaptContext(context.Background(), h, pool, n, ne, o, ResilienceOptions{})
}

// AdaptContext is Adapt with deadline-aware cancellation and outer-loop
// checkpointing. The checkpoint unit is one completed outer iteration
// (pool selection + inner re-optimization): interrupting mid-iteration
// discards only that iteration's partial work, and resuming replays the
// recorded operator selections through ansatz.Grow before continuing.
// Operator selection depends only on the restored parameters, so the
// resumed run follows the identical growth trajectory.
func AdaptContext(ctx context.Context, h *pauli.Op, pool *ansatz.Pool, n, ne int, o AdaptOptions, ro ResilienceOptions) (*AdaptResult, error) {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 30
	}
	if o.GradientTol <= 0 {
		o.GradientTol = 1e-4
	}
	adapt := ansatz.NewAdaptAnsatz(n, ne)
	params := []float64{}
	result := &AdaptResult{Ansatz: adapt}
	var selected []int
	startIter := 1

	st := new(AdaptState)
	if found, err := ro.loadResume(KindAdapt, st); err != nil {
		return nil, err
	} else if found {
		for _, k := range st.Selected {
			if k < 0 || k >= len(pool.Ops) {
				return nil, fmt.Errorf("%w: checkpointed operator index %d outside pool of %d", core.ErrInvalidArgument, k, len(pool.Ops))
			}
			adapt.Grow(pool.Ops[k])
		}
		selected = st.Selected
		params = st.Params
		result.Energy = st.Energy
		result.Params = params
		result.History = historyFromJSON(st.History)
		startIter = st.Iter + 1
	}
	cad := resilience.Cadence{Interval: ro.CheckpointEvery}
	save := func(iter int) error {
		return resilience.SaveCheckpoint(ro.CheckpointPath, KindAdapt, iter, &AdaptState{
			Selected: selected,
			Params:   params,
			Energy:   result.Energy,
			Iter:     iter,
			History:  historyToJSON(result.History),
		})
	}

	// Pool-scan simulator created once: every outer iteration resets it in
	// place, so its persistent worker pool serves all gradient scans.
	s := state.New(n, state.Options{Workers: o.Workers, Pool: o.Pool})
	// observerHalted distinguishes a deliberate post-iteration halt (the
	// iteration completed; checkpoint covers it) from a deadline hit
	// mid-iteration (partial work unwound; checkpoint excludes it).
	observerHalted := false
	for iter := startIter; iter <= o.MaxIterations; iter++ {
		if ctx.Err() != nil {
			result.Interrupted = true
			resilience.NoteDeadlineCancel()
			if ro.enabled() {
				if err := save(iter - 1); err != nil {
					return result, err
				}
			}
			return result, nil
		}
		done, err := func() (bool, error) {
			// Deferred so every exit — convergence, inner-optimizer error,
			// or a full iteration — observes the timer.
			defer mAdaptIter.Since(telemetry.Now())
			// Prepare current optimal state and scan the pool.
			s.ResetZero()
			s.Run(adapt.Circuit(params))
			grads := PoolGradients(s, h, pool.Ops)
			best, bestAbs := -1, 0.0
			for k, g := range grads {
				if a := math.Abs(g); a > bestAbs {
					best, bestAbs = k, a
				}
			}
			if best < 0 || bestAbs < o.GradientTol {
				result.Converged = true
				return true, nil
			}
			adapt.Grow(pool.Ops[best])
			selected = append(selected, best)
			params = append(params, 0)

			drv, err := New(h, adapt, Options{Mode: Direct, Workers: o.Workers, Pool: o.Pool})
			if err != nil {
				return false, err
			}
			lb := o.LBFGS
			if lb.MaxIter == 0 {
				lb.MaxIter = 200
			}
			res, err := drv.MinimizeLBFGSContext(ctx, params, lb, ResilienceOptions{})
			if err != nil {
				return false, err
			}
			if res.Interrupted {
				// Deadline hit mid-inner-optimization: unwind the partial
				// iteration so the checkpoint covers only completed work.
				adapt.Selected = adapt.Selected[:len(adapt.Selected)-1]
				selected = selected[:len(selected)-1]
				params = params[:len(params)-1]
				result.Interrupted = true
				return true, nil
			}
			params = res.Params
			result.Energy = res.Energy
			result.Params = params
			result.TotalStats.EnergyEvaluations += res.Stats.EnergyEvaluations
			result.TotalStats.AnsatzExecutions += res.Stats.AnsatzExecutions
			result.TotalStats.GatesApplied += res.Stats.GatesApplied
			result.TotalStats.CacheRestores += res.Stats.CacheRestores

			c := adapt.Circuit(params)
			st := c.Stats()
			entry := AdaptIteration{
				Iteration:    iter,
				Operator:     pool.Ops[best].Label,
				MaxGradient:  bestAbs,
				Energy:       res.Energy,
				ErrorVsRef:   math.NaN(),
				Parameters:   len(params),
				CircuitDepth: st.Depth,
				GateCount:    st.Total,
			}
			if !math.IsNaN(o.Reference) {
				entry.ErrorVsRef = math.Abs(res.Energy - o.Reference)
			}
			result.History = append(result.History, entry)

			if o.Observer != nil {
				if obsErr := o.Observer(entry); obsErr != nil {
					result.Interrupted = true
					observerHalted = true
					return true, nil
				}
			}
			if o.EnergyTol > 0 && !math.IsNaN(o.Reference) && entry.ErrorVsRef < o.EnergyTol {
				result.Converged = true
				return true, nil
			}
			return false, nil
		}()
		if err != nil {
			return nil, err
		}
		if ro.enabled() && (done || result.Interrupted || cad.Due(iter)) {
			completed := iter
			if result.Interrupted && !observerHalted {
				completed = iter - 1
			}
			if err := save(completed); err != nil {
				return result, err
			}
		}
		if done {
			break
		}
	}
	return result, nil
}
