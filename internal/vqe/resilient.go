package vqe

// Checkpoint/restart and deadline-aware cancellation for the
// minimization loops. The optimizer state structs in internal/opt carry
// everything the iteration needs, so a resumed run provably walks the
// same trajectory as an uninterrupted one (bit-exact — see the
// equivalence tests). The driver itself is stateless across energy
// evaluations in Direct mode (the simulator is reset from |0…0⟩ every
// prepareAnsatz), which is why optimizer state alone suffices.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// Checkpoint kind tags: a resume path refuses a checkpoint written by a
// different optimizer instead of misinterpreting its payload.
const (
	KindNelderMead = "vqe/nelder-mead"
	KindLBFGS      = "vqe/lbfgs"
	KindAdapt      = "vqe/adapt"
)

// ResilienceOptions configures checkpointing for the *Context
// minimization entry points. The zero value disables persistence.
type ResilienceOptions struct {
	// CheckpointPath is the snapshot file; empty disables checkpointing.
	CheckpointPath string
	// CheckpointEvery is the iteration cadence between snapshot writes
	// (≤1 = every iteration).
	CheckpointEvery int
	// Resume loads CheckpointPath before starting (a missing file is a
	// cold start, not an error).
	Resume bool
}

func (r ResilienceOptions) enabled() bool { return r.CheckpointPath != "" }

// loadResume reads the checkpoint into st when resuming; found reports
// whether usable state was restored.
func (r ResilienceOptions) loadResume(wantKind string, st any) (found bool, err error) {
	if !r.Resume || !r.enabled() {
		return false, nil
	}
	kind, _, err := resilience.LoadCheckpoint(r.CheckpointPath, st)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if kind != wantKind {
		return false, fmt.Errorf("vqe: checkpoint %s holds %q, want %q: %w",
			r.CheckpointPath, kind, wantKind, resilience.ErrCheckpointInvalid)
	}
	return true, nil
}

// EnergyContext evaluates ⟨H⟩ under a context: a canceled or expired
// context is honored before the (potentially expensive) evaluation runs.
func (d *Driver) EnergyContext(ctx context.Context, params []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return d.Energy(params), nil
}

// MinimizeContext runs Nelder–Mead with checkpoint/restart and
// deadline-aware cancellation. On context expiry the best vertex so far
// is returned with Result.Interrupted set and a final checkpoint is
// written, so a later call with ResilienceOptions.Resume continues the
// exact trajectory.
func (d *Driver) MinimizeContext(ctx context.Context, x0 []float64, o opt.NelderMeadOptions, ro ResilienceOptions) (Result, error) {
	st := new(opt.NelderMeadState)
	if found, err := ro.loadResume(KindNelderMead, st); err != nil {
		return Result{}, err
	} else if found {
		o.Resume = st
	}
	cad := resilience.Cadence{Interval: ro.CheckpointEvery}
	var cpErr error
	prev := o.Observer
	o.Observer = func(s *opt.NelderMeadState) error {
		if prev != nil {
			if err := prev(s); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			resilience.NoteDeadlineCancel()
			if ro.enabled() {
				cpErr = resilience.SaveCheckpoint(ro.CheckpointPath, KindNelderMead, s.Iter, s)
			}
			return err
		}
		if ro.enabled() && cad.Due(s.Iter) {
			if err := resilience.SaveCheckpoint(ro.CheckpointPath, KindNelderMead, s.Iter, s); err != nil {
				cpErr = err
				return err
			}
		}
		return nil
	}
	start := telemetry.Now()
	res := opt.NelderMead(d.Energy, x0, o)
	mPhaseOptimize.Since(start)
	out := Result{Energy: res.F, Params: res.X, Optimizer: res, Stats: d.Stats(),
		CacheStats: d.CacheStats(), Interrupted: res.Interrupted}
	return out, cpErr
}

// MinimizeLBFGSContext is the L-BFGS counterpart of MinimizeContext,
// with the same checkpoint and cancellation semantics.
func (d *Driver) MinimizeLBFGSContext(ctx context.Context, x0 []float64, o opt.LBFGSOptions, ro ResilienceOptions) (Result, error) {
	exp, ok := d.Ansatz.(Exponential)
	if !ok {
		return Result{}, fmt.Errorf("%w: ansatz does not expose exponential structure", core.ErrInvalidArgument)
	}
	st := new(opt.LBFGSState)
	if found, err := ro.loadResume(KindLBFGS, st); err != nil {
		return Result{}, err
	} else if found {
		o.Resume = st
	}
	cad := resilience.Cadence{Interval: ro.CheckpointEvery}
	var cpErr error
	prev := o.Observer
	o.Observer = func(s *opt.LBFGSState) error {
		if prev != nil {
			if err := prev(s); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			resilience.NoteDeadlineCancel()
			if ro.enabled() {
				cpErr = resilience.SaveCheckpoint(ro.CheckpointPath, KindLBFGS, s.Iter, s)
			}
			return err
		}
		if ro.enabled() && cad.Due(s.Iter) {
			if err := resilience.SaveCheckpoint(ro.CheckpointPath, KindLBFGS, s.Iter, s); err != nil {
				cpErr = err
				return err
			}
		}
		return nil
	}
	grad := func(x, g []float64) {
		gradStart := telemetry.Now()
		d.adjointGradient(exp, x, g)
		mPhaseGradient.Since(gradStart)
	}
	start := telemetry.Now()
	res := opt.LBFGS(d.Energy, grad, x0, o)
	mPhaseOptimize.Since(start)
	out := Result{Energy: res.F, Params: res.X, Optimizer: res, Stats: d.Stats(),
		CacheStats: d.CacheStats(), Interrupted: res.Interrupted}
	return out, cpErr
}

// AdaptState is the Adapt-VQE outer-loop checkpoint payload: the pool
// operator indices in growth order (the ansatz is reconstructed by
// replaying Grow), the optimized parameters, and the convergence
// history. ErrorVsRef may be NaN (no reference energy), which JSON
// cannot carry — history entries encode it as a nullable pointer.
type AdaptState struct {
	Selected []int              `json:"selected"`
	Params   []float64          `json:"params"`
	Energy   float64            `json:"energy"`
	Iter     int                `json:"iter"`
	History  []adaptHistoryJSON `json:"history,omitempty"`
}

type adaptHistoryJSON struct {
	Iteration    int      `json:"iteration"`
	Operator     string   `json:"operator"`
	MaxGradient  float64  `json:"max_gradient"`
	Energy       float64  `json:"energy"`
	ErrorVsRef   *float64 `json:"error_vs_ref,omitempty"` // nil ⇔ NaN
	Parameters   int      `json:"parameters"`
	CircuitDepth int      `json:"circuit_depth"`
	GateCount    int      `json:"gate_count"`
}

func historyToJSON(in []AdaptIteration) []adaptHistoryJSON {
	out := make([]adaptHistoryJSON, len(in))
	for i, it := range in {
		out[i] = adaptHistoryJSON{
			Iteration: it.Iteration, Operator: it.Operator,
			MaxGradient: it.MaxGradient, Energy: it.Energy,
			Parameters: it.Parameters, CircuitDepth: it.CircuitDepth,
			GateCount: it.GateCount,
		}
		if !math.IsNaN(it.ErrorVsRef) {
			v := it.ErrorVsRef
			out[i].ErrorVsRef = &v
		}
	}
	return out
}

func historyFromJSON(in []adaptHistoryJSON) []AdaptIteration {
	out := make([]AdaptIteration, len(in))
	for i, it := range in {
		out[i] = AdaptIteration{
			Iteration: it.Iteration, Operator: it.Operator,
			MaxGradient: it.MaxGradient, Energy: it.Energy,
			ErrorVsRef: math.NaN(), Parameters: it.Parameters,
			CircuitDepth: it.CircuitDepth, GateCount: it.GateCount,
		}
		if it.ErrorVsRef != nil {
			out[i].ErrorVsRef = *it.ErrorVsRef
		}
	}
	return out
}
