package vqe

import (
	"math"
	"testing"

	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/pauli"
)

func hfPrep(n, ne int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < ne; q++ {
		c.X(q)
	}
	return c
}

func TestKrylovH2ReachesFCI(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	res, err := KrylovDiagonalize(h, 4, hfPrep(4, 2), KrylovOptions{
		Dimension: 4, Exact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energies[0]-fci.Energy) > 1e-6 {
		t.Errorf("Krylov ground %v vs FCI %v", res.Energies[0], fci.Energy)
	}
}

func TestKrylovTrotterizedCloseToExact(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	res, err := KrylovDiagonalize(h, 4, hfPrep(4, 2), KrylovOptions{
		Dimension: 4, TrotterSteps: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energies[0]-fci.Energy) > 1e-3 {
		t.Errorf("Trotterized Krylov %v vs FCI %v", res.Energies[0], fci.Energy)
	}
}

func TestKrylovImprovesWithDimension(t *testing.T) {
	m := chem.Synthetic(chem.SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 9})
	h := chem.QubitHamiltonian(m)
	prev := math.Inf(1)
	for _, dim := range []int{1, 2, 4, 6} {
		res, err := KrylovDiagonalize(h, 6, hfPrep(6, 2), KrylovOptions{Dimension: dim, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Energies[0] > prev+1e-9 {
			t.Errorf("dim %d: energy rose %v → %v", dim, prev, res.Energies[0])
		}
		prev = res.Energies[0]
	}
	// Dimension 1 is just ⟨HF|H|HF⟩.
	res1, _ := KrylovDiagonalize(h, 6, hfPrep(6, 2), KrylovOptions{Dimension: 1, Exact: true})
	if math.Abs(res1.Energies[0]-chem.HartreeFockEnergy(m)) > 1e-8 {
		t.Errorf("dim-1 Krylov %v vs HF %v", res1.Energies[0], chem.HartreeFockEnergy(m))
	}
}

func TestKrylovExcitedStatesInSpectrum(t *testing.T) {
	// Every Krylov eigenvalue must lie within the operator's spectral
	// range (generalized Rayleigh–Ritz bounds).
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fullEig, err := linalg.EighJacobi(h.ToDense(4))
	if err != nil {
		t.Fatal(err)
	}
	full := fullEig.Values
	res, err := KrylovDiagonalize(h, 4, hfPrep(4, 2), KrylovOptions{Dimension: 5, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := full[0], full[len(full)-1]
	for _, e := range res.Energies {
		if e < lo-1e-8 || e > hi+1e-8 {
			t.Errorf("Ritz value %v outside spectrum [%v, %v]", e, lo, hi)
		}
	}
}

func TestKrylovHandlesLinearDependence(t *testing.T) {
	// Evolving an exact eigenstate yields linearly dependent basis
	// vectors; the overlap threshold must absorb them.
	h := pauli.NewOp().Add(pauli.MustParse("ZZ"), 1).Add(pauli.Identity, 0.5)
	// |00⟩ is an eigenstate; all evolved copies equal it up to phase.
	res, err := KrylovDiagonalize(h, 2, nil, KrylovOptions{Dimension: 4, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveDimension >= 4 {
		t.Errorf("linear dependence not detected: effective dim %d", res.EffectiveDimension)
	}
	if math.Abs(res.Energies[0]-1.5) > 1e-8 {
		t.Errorf("eigenstate energy %v, want 1.5", res.Energies[0])
	}
}

func TestKrylovValidation(t *testing.T) {
	h := pauli.NewOp().Add(pauli.MustParse("Z"), 1)
	if _, err := KrylovDiagonalize(h, 1, nil, KrylovOptions{Dimension: 0}); err == nil {
		t.Error("zero dimension accepted")
	}
	wide := pauli.NewOp().Add(pauli.MustParse("IZ"), 1)
	if _, err := KrylovDiagonalize(wide, 1, nil, KrylovOptions{Dimension: 1}); err == nil {
		t.Error("wide Hamiltonian accepted")
	}
}
