package vqe

import (
	"repro/internal/circuit"
	"repro/internal/pauli"
)

// GateCost models the gate count of one VQE energy evaluation, the
// quantity compared in the paper's Figure 3. Per Hamiltonian term the
// non-caching workflow re-prepares the ansatz and applies that term's
// basis rotation; caching prepares the ansatz once and pays only the
// rotations.
type GateCost struct {
	AnsatzGates     int
	NumTerms        int
	RotationGates   uint64 // Σ over terms of basis-change gate counts
	NonCachingTotal uint64
	CachingTotal    uint64
}

// rotationGateCount counts the basis-change gates for one Pauli string:
// one gate per X letter (H) and two per Y letter (S† H).
func rotationGateCount(p pauli.String) int {
	n := 0
	for _, q := range p.Support() {
		switch p.At(q) {
		case 'X':
			n++
		case 'Y':
			n += 2
		}
	}
	return n
}

// CostModel computes the Figure 3 gate-count comparison for evaluating
// every non-identity term of h with ansatz circuit cost ansatzGates.
// Per-term accounting (no measurement grouping) mirrors the paper's
// description: "basis transformation gates for each term in the
// Hamiltonian".
func CostModel(h *pauli.Op, ansatzGates int) GateCost {
	gc := GateCost{AnsatzGates: ansatzGates}
	for _, t := range h.Terms() {
		if t.P.IsIdentity() {
			continue
		}
		gc.NumTerms++
		r := uint64(rotationGateCount(t.P))
		gc.RotationGates += r
		gc.NonCachingTotal += uint64(ansatzGates) + r
		gc.CachingTotal += r
	}
	// Caching still pays one ansatz preparation.
	gc.CachingTotal += uint64(ansatzGates)
	return gc
}

// CostModelForAnsatz is CostModel with the ansatz gate count taken from a
// materialized circuit.
func CostModelForAnsatz(h *pauli.Op, c *circuit.Circuit) GateCost {
	return CostModel(h, c.GateCount())
}

// SavingsFactor returns NonCaching/Caching — the orders-of-magnitude
// reduction highlighted by Figure 3.
func (g GateCost) SavingsFactor() float64 {
	if g.CachingTotal == 0 {
		return 0
	}
	return float64(g.NonCachingTotal) / float64(g.CachingTotal)
}
