package vqe

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/pauli"
	"repro/internal/state"
	"repro/internal/trotter"
)

// Quantum Krylov subspace diagonalization (QKSD): span a subspace with
// real-time-evolved copies of a reference state, |φ_k⟩ = e^{−iHkΔt}|ψ₀⟩,
// assemble the projected matrices H_kl = ⟨φ_k|H|φ_l⟩ and S_kl = ⟨φ_k|φ_l⟩
// (on hardware these come from Hadamard tests; here they are read off the
// simulator), and solve the generalized eigenproblem H c = E S c. A small
// Krylov dimension often reaches FCI-quality energies without any
// variational optimization — a useful cross-check on VQE results.

// KrylovOptions configures the subspace construction.
type KrylovOptions struct {
	// Dimension is the number of basis states (≥ 1).
	Dimension int
	// DeltaT is the time step between basis states (default π/(2‖H‖₁)).
	DeltaT float64
	// TrotterSteps per Δt of evolution (default 8). Zero Trotter error is
	// available with Exact.
	TrotterSteps int
	// Exact uses the dense matrix exponential instead of Trotter circuits
	// (reference mode).
	Exact bool
	// Threshold drops overlap-matrix eigenvalues below it (ill-conditioned
	// directions; default 1e-10).
	Threshold float64
	// Workers for simulation.
	Workers int
}

// KrylovResult reports the subspace diagonalization.
type KrylovResult struct {
	// Energies are the generalized eigenvalues, ascending.
	Energies []float64
	// EffectiveDimension counts overlap eigenvalues kept.
	EffectiveDimension int
	// ConditionNumber is λ_max/λ_min of the overlap matrix (kept part).
	ConditionNumber float64
}

// KrylovDiagonalize runs QKSD from the given reference preparation.
func KrylovDiagonalize(h *pauli.Op, n int, reference *circuit.Circuit, o KrylovOptions) (*KrylovResult, error) {
	if o.Dimension < 1 {
		return nil, fmt.Errorf("%w: dimension %d", core.ErrInvalidArgument, o.Dimension)
	}
	if h.MaxQubit() >= n {
		return nil, core.QubitError(h.MaxQubit(), n)
	}
	if o.DeltaT == 0 {
		norm := h.OneNorm()
		if norm == 0 {
			norm = 1
		}
		o.DeltaT = math.Pi / (2 * norm)
	}
	if o.TrotterSteps <= 0 {
		o.TrotterSteps = 8
	}
	if o.Threshold <= 0 {
		o.Threshold = 1e-10
	}

	// Build the basis states.
	basis := make([][]complex128, o.Dimension)
	cur := state.New(n, state.Options{Workers: o.Workers})
	if reference != nil {
		cur.Run(reference)
	}
	basis[0] = cur.AmplitudesCopy()
	if o.Dimension > 1 {
		var step *circuit.Circuit
		var err error
		if !o.Exact {
			step, err = trotter.Circuit(h, n, trotter.Options{
				Time: o.DeltaT, Steps: o.TrotterSteps, Order: trotter.Second,
			})
			if err != nil {
				return nil, err
			}
		}
		for k := 1; k < o.Dimension; k++ {
			if o.Exact {
				if err := trotter.ExactEvolve(h, cur, o.DeltaT); err != nil {
					return nil, err
				}
			} else {
				cur.Run(step)
			}
			basis[k] = cur.AmplitudesCopy()
		}
	}

	// Projected matrices.
	d := o.Dimension
	hm := linalg.NewMatrix(d, d)
	sm := linalg.NewMatrix(d, d)
	tmp := make([]complex128, core.Dim(n))
	for j := 0; j < d; j++ {
		h.MatVec(tmp, basis[j])
		for i := 0; i < d; i++ {
			hm.Set(i, j, linalg.VecDot(basis[i], tmp))
			sm.Set(i, j, linalg.VecDot(basis[i], basis[j]))
		}
	}
	return solveGeneralized(hm, sm, o.Threshold)
}

// solveGeneralized solves H c = E S c by canonical orthogonalization:
// X = U·diag(1/√λ) over the kept overlap eigenpairs, then diagonalize
// X†HX.
func solveGeneralized(hm, sm *linalg.Matrix, threshold float64) (*KrylovResult, error) {
	sEig, err := linalg.EighJacobi(sm)
	if err != nil {
		return nil, fmt.Errorf("vqe: overlap diagonalization: %w", err)
	}
	d := sm.Rows
	var keep []int
	for i := 0; i < d; i++ {
		if sEig.Values[i] > threshold {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("vqe: %w: overlap matrix numerically singular", core.ErrInvalidArgument)
	}
	m := len(keep)
	x := linalg.NewMatrix(d, m)
	for col, idx := range keep {
		scale := complex(1/math.Sqrt(sEig.Values[idx]), 0)
		for r := 0; r < d; r++ {
			x.Set(r, col, sEig.Vectors.At(r, idx)*scale)
		}
	}
	reduced := x.Adjoint().Mul(hm).Mul(x)
	// Symmetrize away rounding noise.
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			avg := (reduced.At(i, j) + cmplx.Conj(reduced.At(j, i))) / 2
			reduced.Set(i, j, avg)
			reduced.Set(j, i, cmplx.Conj(avg))
		}
	}
	res, err := linalg.EighJacobi(reduced)
	if err != nil {
		return nil, fmt.Errorf("vqe: reduced diagonalization: %w", err)
	}
	cond := sEig.Values[keep[len(keep)-1]] / sEig.Values[keep[0]]
	return &KrylovResult{
		Energies:           res.Values,
		EffectiveDimension: m,
		ConditionNumber:    cond,
	}, nil
}
