package vqe

import (
	"math"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/linalg"
)

func TestDeflationH2Spectrum(t *testing.T) {
	// VQD with a UCCSD ansatz from the HF reference explores the
	// 2-electron sector of H2: the lowest two states it can reach are the
	// sector's ground and lowest excited singlet configurations.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	u, err := ansatz.NewUCCSD(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	states, err := Deflation(h, u, DeflationOptions{NumStates: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("%d states", len(states))
	}
	// Reference: diagonalize the sector Hamiltonian exactly.
	sp, _, err := chem.SectorMatrix(chem.FermionicHamiltonian(m), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := linalg.EighJacobi(sp.Dense())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(states[0].Energy-res.Values[0]) > 1e-6 {
		t.Errorf("ground %v vs exact %v", states[0].Energy, res.Values[0])
	}
	// Variational deflation bound: with the ground state deflated exactly,
	// the second optimized energy upper-bounds the exact first excited
	// eigenvalue (the spin-restricted UCCSD manifold cannot always reach
	// it exactly, so equality is not demanded).
	if states[1].Energy < res.Values[1]-1e-6 {
		t.Errorf("excited estimate %v below exact first excited %v", states[1].Energy, res.Values[1])
	}
	if states[1].Energy > res.Values[len(res.Values)-1]+1e-6 {
		t.Errorf("excited estimate %v above the sector spectrum top %v", states[1].Energy, res.Values[len(res.Values)-1])
	}
	if states[1].Energy <= states[0].Energy+1e-8 {
		t.Error("excited state not above ground state")
	}
}

func TestDeflationOrthogonality(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	states, err := Deflation(h, u, DeflationOptions{NumStates: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s0 := stateFor(u, states[0].Params)
	s1 := stateFor(u, states[1].Params)
	ov := s0.InnerProduct(s1)
	if mag := math.Hypot(real(ov), imag(ov)); mag > 0.05 {
		t.Errorf("deflated states overlap: |⟨0|1⟩| = %v", mag)
	}
}

func TestDeflationSingleStateEqualsVQE(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	states, err := Deflation(h, u, DeflationOptions{NumStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(states[0].Energy-fci.Energy) > 1e-6 {
		t.Errorf("VQD(1) %v vs FCI %v", states[0].Energy, fci.Energy)
	}
}

func TestDeflationEnergiesSorted(t *testing.T) {
	// Energies come out in ascending order for a well-behaved run.
	m := chem.Hubbard(2, 1, 2, 2)
	h := chem.QubitHamiltonian(m)
	u, _ := ansatz.NewUCCSD(4, 2)
	states, err := Deflation(h, u, DeflationOptions{NumStates: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	es := make([]float64, len(states))
	for i, s := range states {
		es[i] = s.Energy
	}
	for i := 1; i < len(es); i++ {
		// Degenerate levels may come out reordered by float noise.
		if es[i] < es[i-1]-1e-9 {
			t.Errorf("energies not ascending: %v", es)
		}
	}
}

func TestDeflationValidation(t *testing.T) {
	u, _ := ansatz.NewUCCSD(4, 2)
	if _, err := Deflation(chem.QubitHamiltonian(chem.H2()), u, DeflationOptions{NumStates: 0}); err == nil {
		t.Error("zero states accepted")
	}
}
