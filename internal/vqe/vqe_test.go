package vqe

import (
	"math"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/noise"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/state"
)

// h2Setup returns the H2 qubit Hamiltonian, UCCSD ansatz, and FCI energy.
func h2Setup(t *testing.T) (*pauli.Op, *ansatz.UCCSD, float64) {
	t.Helper()
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	u, err := ansatz.NewUCCSD(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	fci, err := chem.FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	return h, u, fci.Energy
}

func TestEnergyAtZeroIsHartreeFock(t *testing.T) {
	h, u, _ := h2Setup(t)
	d, err := New(h, u, Options{Mode: Direct})
	if err != nil {
		t.Fatal(err)
	}
	e := d.Energy(make([]float64, u.NumParameters()))
	want := chem.HartreeFockEnergy(chem.H2())
	if math.Abs(e-want) > 1e-8 {
		t.Errorf("E(0) = %v, want HF %v", e, want)
	}
}

func TestEnergyModesAgree(t *testing.T) {
	h, u, _ := h2Setup(t)
	params := []float64{0.05, -0.03, 0.1}
	var energies []float64
	for _, mode := range []EnergyMode{Direct, Rotated} {
		for _, caching := range []bool{false, true} {
			d, err := New(h, u, Options{Mode: mode, Caching: caching})
			if err != nil {
				t.Fatal(err)
			}
			energies = append(energies, d.Energy(params))
		}
	}
	for i := 1; i < len(energies); i++ {
		if math.Abs(energies[i]-energies[0]) > 1e-9 {
			t.Errorf("mode/caching disagreement: %v", energies)
		}
	}
}

func TestSampledEnergyConverges(t *testing.T) {
	h, u, _ := h2Setup(t)
	params := []float64{0.05, -0.03, 0.1}
	exact, _ := New(h, u, Options{Mode: Direct})
	want := exact.Energy(params)
	d, _ := New(h, u, Options{Mode: Sampled, Shots: 60000, Caching: true, Seed: 11})
	got := d.Energy(params)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("sampled %v vs exact %v", got, want)
	}
}

func TestVQEReachesFCIForH2(t *testing.T) {
	h, u, fci := h2Setup(t)
	d, err := New(h, u, Options{Mode: Direct})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.MinimizeLBFGS(make([]float64, u.NumParameters()), opt.LBFGSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-fci) > 1e-6 {
		t.Errorf("VQE %v vs FCI %v", res.Energy, fci)
	}
}

func TestVQENelderMeadReachesFCIForH2(t *testing.T) {
	h, u, fci := h2Setup(t)
	d, _ := New(h, u, Options{Mode: Direct})
	res := d.Minimize(make([]float64, u.NumParameters()), opt.NelderMeadOptions{MaxIter: 2000})
	if math.Abs(res.Energy-fci) > 1e-5 {
		t.Errorf("VQE(NM) %v vs FCI %v", res.Energy, fci)
	}
}

func TestAdjointGradientMatchesFiniteDifference(t *testing.T) {
	h, u, _ := h2Setup(t)
	d, _ := New(h, u, Options{Mode: Direct})
	params := []float64{0.07, -0.21, 0.13}
	g := make([]float64, 3)
	d.adjointGradient(u, params, g)
	fd := make([]float64, 3)
	opt.FiniteDifference(d.Energy, 1e-6)(params, fd)
	for i := range g {
		if math.Abs(g[i]-fd[i]) > 1e-5 {
			t.Errorf("grad[%d]: adjoint %v vs FD %v", i, g[i], fd[i])
		}
	}
}

func TestAdjointGradientLargerSystem(t *testing.T) {
	m := chem.Synthetic(chem.SyntheticOptions{NumOrbitals: 3, NumElectrons: 2, Seed: 17})
	h := chem.QubitHamiltonian(m)
	u, err := ansatz.NewUCCSD(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := New(h, u, Options{Mode: Direct})
	params := make([]float64, u.NumParameters())
	rng := core.NewRNG(3)
	for i := range params {
		params[i] = 0.1 * rng.NormFloat64()
	}
	g := make([]float64, len(params))
	d.adjointGradient(u, params, g)
	fd := make([]float64, len(params))
	opt.FiniteDifference(d.Energy, 1e-6)(params, fd)
	for i := range g {
		if math.Abs(g[i]-fd[i]) > 1e-5 {
			t.Fatalf("grad[%d]: adjoint %v vs FD %v", i, g[i], fd[i])
		}
	}
}

func TestCachingReducesAnsatzExecutions(t *testing.T) {
	h, u, _ := h2Setup(t)
	params := []float64{0.05, -0.03, 0.1}

	noCache, _ := New(h, u, Options{Mode: Rotated, Caching: false})
	noCache.Energy(params)
	withCache, _ := New(h, u, Options{Mode: Rotated, Caching: true})
	withCache.Energy(params)

	sNo := noCache.Stats()
	sYes := withCache.Stats()
	if sYes.AnsatzExecutions != 1 {
		t.Errorf("caching ran ansatz %d times, want 1", sYes.AnsatzExecutions)
	}
	if sNo.AnsatzExecutions <= sYes.AnsatzExecutions {
		t.Errorf("no-cache executions %d should exceed cache executions %d",
			sNo.AnsatzExecutions, sYes.AnsatzExecutions)
	}
	if sNo.GatesApplied <= sYes.GatesApplied {
		t.Errorf("no-cache gates %d should exceed cache gates %d",
			sNo.GatesApplied, sYes.GatesApplied)
	}
	if withCache.CacheStats().Hits == 0 {
		t.Error("cache never hit")
	}
}

func TestCachingSpillsToHostTier(t *testing.T) {
	h, u, _ := h2Setup(t)
	// Device capacity below one 4-qubit snapshot → host spill (§4.1.4).
	d, _ := New(h, u, Options{Mode: Rotated, Caching: true, DeviceCapacityBytes: 64})
	d.Energy([]float64{0.05, -0.03, 0.1})
	cs := d.CacheStats()
	if cs.HostSpills == 0 || cs.HostHits == 0 {
		t.Errorf("expected host-tier traffic, got %+v", cs)
	}
}

func TestTranspiledEnergyMatches(t *testing.T) {
	h, u, _ := h2Setup(t)
	params := []float64{0.05, -0.03, 0.1}
	plain, _ := New(h, u, Options{Mode: Direct})
	fused, _ := New(h, u, Options{Mode: Direct, Transpile: true})
	e1, e2 := plain.Energy(params), fused.Energy(params)
	if math.Abs(e1-e2) > 1e-9 {
		t.Errorf("transpiled energy %v vs plain %v", e2, e1)
	}
	// Fusion must reduce executed gates.
	if fused.Stats().GatesApplied >= plain.Stats().GatesApplied {
		t.Errorf("fusion did not reduce gates: %d vs %d",
			fused.Stats().GatesApplied, plain.Stats().GatesApplied)
	}
}

func TestCostModel(t *testing.T) {
	h := pauli.NewOp().
		Add(pauli.Identity, -1).
		Add(pauli.MustParse("ZZ"), 0.5).
		Add(pauli.MustParse("XX"), 0.25).
		Add(pauli.MustParse("YY"), 0.25)
	gc := CostModel(h, 1000)
	if gc.NumTerms != 3 {
		t.Fatalf("terms %d", gc.NumTerms)
	}
	// Rotations: ZZ→0, XX→2, YY→4 ⇒ 6 total.
	if gc.RotationGates != 6 {
		t.Errorf("rotations %d", gc.RotationGates)
	}
	if gc.NonCachingTotal != 3*1000+6 {
		t.Errorf("non-caching %d", gc.NonCachingTotal)
	}
	if gc.CachingTotal != 1000+6 {
		t.Errorf("caching %d", gc.CachingTotal)
	}
	if gc.SavingsFactor() < 2.5 {
		t.Errorf("savings %v", gc.SavingsFactor())
	}
}

func TestCostModelSavingsGrowWithTerms(t *testing.T) {
	// Fig 3's gap grows with system size because the term count multiplies
	// the ansatz cost only in the non-caching mode.
	small := CostModel(chem.QubitHamiltonian(chem.H2()), 100)
	big := CostModel(chem.QubitHamiltonian(chem.Synthetic(chem.SyntheticOptions{NumOrbitals: 4, NumElectrons: 4, Seed: 1})), 1000)
	if big.SavingsFactor() <= small.SavingsFactor() {
		t.Errorf("savings did not grow: %v vs %v", small.SavingsFactor(), big.SavingsFactor())
	}
}

func TestPoolGradientsMatchFiniteDifference(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	pool, err := ansatz.NewPool(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	adapt := ansatz.NewAdaptAnsatz(4, 2)
	s := stateFor(adapt, nil)
	grads := PoolGradients(s, h, pool.Ops)
	// Finite-difference check: E(θ) for appending exp(θ A_k) to HF.
	for k, ex := range pool.Ops {
		f := func(th float64) float64 {
			a2 := ansatz.NewAdaptAnsatz(4, 2)
			a2.Grow(ex)
			s2 := stateFor(a2, []float64{th})
			return pauli.Expectation(s2, h, pauli.ExpectationOptions{})
		}
		hstep := 1e-5
		fd := (f(hstep) - f(-hstep)) / (2 * hstep)
		if math.Abs(grads[k]-fd) > 1e-6 {
			t.Errorf("pool grad %d (%s): %v vs FD %v", k, ex.Label, grads[k], fd)
		}
	}
}

func TestAdaptVQEH2ReachesChemicalAccuracy(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	pool, _ := ansatz.NewPool(4, 2)
	res, err := Adapt(h, pool, 4, 2, AdaptOptions{
		MaxIterations: 10,
		Reference:     fci.Energy,
		EnergyTol:     core.ChemicalAccuracy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Adapt-VQE did not converge")
	}
	if math.Abs(res.Energy-fci.Energy) > core.ChemicalAccuracy {
		t.Errorf("Adapt energy %v vs FCI %v", res.Energy, fci.Energy)
	}
	// History is monotone non-increasing in energy (variational).
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Energy > res.History[i-1].Energy+1e-9 {
			t.Error("energy increased across Adapt iterations")
		}
	}
	// H2 needs very few operators.
	if len(res.History) > 4 {
		t.Errorf("H2 took %d Adapt iterations", len(res.History))
	}
}

func TestAdaptStopsOnGradientTolerance(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	pool, _ := ansatz.NewPool(4, 2)
	res, err := Adapt(h, pool, 4, 2, AdaptOptions{
		MaxIterations: 25,
		GradientTol:   1e-5,
		Reference:     math.NaN(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("gradient stop never triggered")
	}
}

func TestDriverRejectsWideHamiltonian(t *testing.T) {
	h := pauli.NewOp().Add(pauli.MustParse("IIIIZ"), 1)
	u, _ := ansatz.NewUCCSD(4, 2)
	if _, err := New(h, u, Options{}); err == nil {
		t.Error("mismatched widths accepted")
	}
}

func TestEnergyModeString(t *testing.T) {
	if Direct.String() != "direct" || Rotated.String() != "rotated" || Sampled.String() != "sampled" {
		t.Error("mode names")
	}
}

// stateFor prepares a state by running an ansatz circuit.
func stateFor(a ansatz.Ansatz, params []float64) *state.State {
	if params == nil {
		params = make([]float64, a.NumParameters())
	}
	s := state.New(a.NumQubits(), state.Options{})
	s.Run(a.Circuit(params))
	return s
}

func TestVQEWithAlternativeEncodings(t *testing.T) {
	// UCCSD built under BK/parity must reach FCI against the matching
	// observable — and with fewer applied gates than JW thanks to lower
	// Pauli weights.
	m := chem.H2()
	fci, _ := chem.FCI(m)
	fh := chem.FermionicHamiltonian(m)

	gates := map[string]uint64{}
	for name, mk := range map[string]func(int) (*fermion.Encoding, error){
		"jw":     fermion.JordanWignerEncoding,
		"bk":     fermion.BravyiKitaevEncoding,
		"parity": fermion.ParityEncoding,
	} {
		enc, err := mk(4)
		if err != nil {
			t.Fatal(err)
		}
		h, err := enc.Transform(fh)
		if err != nil {
			t.Fatal(err)
		}
		u, err := ansatz.NewUCCSDWithEncoding(4, 2, enc)
		if err != nil {
			t.Fatal(err)
		}
		drv, err := New(h.HermitianPart(), u, Options{Mode: Direct})
		if err != nil {
			t.Fatal(err)
		}
		res, err := drv.MinimizeLBFGS(make([]float64, u.NumParameters()), opt.LBFGSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Energy-fci.Energy) > 1e-6 {
			t.Errorf("%s: VQE %v vs FCI %v", name, res.Energy, fci.Energy)
		}
		gates[name] = res.Stats.GatesApplied
	}
	if gates["bk"] >= gates["jw"] {
		t.Errorf("BK used %d gates, JW %d — expected fewer under BK", gates["bk"], gates["jw"])
	}
}

func TestQubitAdaptVQEH2(t *testing.T) {
	// qubit-ADAPT (single-Pauli pool, paper ref [16]) also reaches
	// chemical accuracy on H2, typically with more iterations than the
	// fermionic pool but far shallower layers.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	pool, err := ansatz.NewQubitPool(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Adapt(h, pool, 4, 2, AdaptOptions{
		MaxIterations: 15,
		Reference:     fci.Energy,
		EnergyTol:     core.ChemicalAccuracy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("qubit-ADAPT did not converge")
	}
	if math.Abs(res.Energy-fci.Energy) > core.ChemicalAccuracy {
		t.Errorf("qubit-ADAPT %v vs FCI %v", res.Energy, fci.Energy)
	}
}

func TestAdaptiveShotsReduceVariance(t *testing.T) {
	// With the same total budget, weighting shots by group coefficient
	// magnitude reduces the spread of the sampled energy estimator.
	h, u, _ := h2Setup(t)
	params := []float64{0.05, -0.03, 0.1}
	variance := func(adaptive bool) float64 {
		var vals []float64
		for seed := uint64(1); seed <= 24; seed++ {
			d, err := New(h, u, Options{
				Mode: Sampled, Shots: 600, Caching: true,
				AdaptiveShots: adaptive, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			d.Energy(params) // warm-up pass builds the adaptive plan
			vals = append(vals, d.Energy(params))
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		s := 0.0
		for _, v := range vals {
			s += (v - mean) * (v - mean)
		}
		return s / float64(len(vals)-1)
	}
	vUniform := variance(false)
	vAdaptive := variance(true)
	if vAdaptive >= vUniform {
		t.Errorf("adaptive variance %v not below uniform %v", vAdaptive, vUniform)
	}
}

func TestAdaptiveShotsBudgetConserved(t *testing.T) {
	h, u, _ := h2Setup(t)
	d, err := New(h, u, Options{Mode: Sampled, Shots: 1000, AdaptiveShots: true, Caching: true})
	if err != nil {
		t.Fatal(err)
	}
	d.Energy([]float64{0.05, -0.03, 0.1})
	totalBudget := 1000 * d.NumMeasurementBases()
	spent := 0
	for i := 0; i < d.NumMeasurementBases(); i++ {
		spent += d.groupShots(i)
	}
	// Rounding may drop a few shots but never exceed the budget by more
	// than one per group.
	if spent > totalBudget+d.NumMeasurementBases() {
		t.Errorf("spent %d shots of %d budget", spent, totalBudget)
	}
	if spent < totalBudget/2 {
		t.Errorf("spent only %d of %d", spent, totalBudget)
	}
}

func TestUCCGSDAtLeastAsExpressive(t *testing.T) {
	// On a 4-electron system where plain UCCSD is not exact, UCCGSD must
	// do at least as well (its excitation set is a superset).
	m := chem.Synthetic(chem.SyntheticOptions{NumOrbitals: 3, NumElectrons: 4, Seed: 13})
	h := chem.QubitHamiltonian(m)
	run := func(u Exponential) float64 {
		d, err := New(h, u, Options{Mode: Direct})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.MinimizeLBFGS(make([]float64, u.NumParameters()), opt.LBFGSOptions{MaxIter: 120})
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}
	plain, err := ansatz.NewUCCSD(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := ansatz.NewUCCGSD(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	ePlain := run(plain)
	eGen := run(gen)
	fci, _ := chem.FCI(m)
	if eGen > ePlain+1e-7 {
		t.Errorf("UCCGSD %v worse than UCCSD %v", eGen, ePlain)
	}
	if eGen < fci.Energy-1e-8 {
		t.Errorf("UCCGSD %v below FCI %v (variational violation)", eGen, fci.Energy)
	}
}

func TestReadoutErrorBiasesAndMitigationRecovers(t *testing.T) {
	h, u, _ := h2Setup(t)
	params := []float64{0.05, -0.03, 0.1}
	exactDrv, _ := New(h, u, Options{Mode: Direct})
	exact := exactDrv.Energy(params)

	model := noise.UniformReadout(4, 0.04, 0.06)
	energy := func(mitigate bool, seed uint64) float64 {
		d, err := New(h, u, Options{
			Mode: Sampled, Shots: 40000, Caching: true,
			Readout: &model, MitigateReadout: mitigate, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d.Energy(params)
	}
	// Average a few seeds to separate bias from shot noise.
	avg := func(mitigate bool) float64 {
		s := 0.0
		for seed := uint64(1); seed <= 6; seed++ {
			s += energy(mitigate, seed)
		}
		return s / 6
	}
	raw := avg(false)
	mitigated := avg(true)
	rawErr := math.Abs(raw - exact)
	mitErr := math.Abs(mitigated - exact)
	if rawErr < 0.005 {
		t.Fatalf("readout model produced no visible bias (%v)", rawErr)
	}
	if mitErr >= rawErr/2 {
		t.Errorf("mitigation weak: raw bias %v, mitigated %v", rawErr, mitErr)
	}
}

func TestRotatedFusedGroupPlansMatchClassic(t *testing.T) {
	// Rotated mode with Transpile evaluates every measurement group as a
	// fused pair-sweep plan on the post-ansatz state; it must agree with
	// the classic rotate-then-read walk to 1e-10.
	h, u, _ := h2Setup(t)
	params := []float64{0.07, -0.02, 0.11}
	classic, _ := New(h, u, Options{Mode: Rotated})
	fused, _ := New(h, u, Options{Mode: Rotated, Transpile: true})
	e1, e2 := classic.Energy(params), fused.Energy(params)
	if math.Abs(e1-e2) > 1e-10 {
		t.Fatalf("fused rotated %v vs classic %v", e2, e1)
	}
	// The fused path runs the ansatz once per evaluation and never
	// executes rotation circuits.
	if fused.Stats().AnsatzExecutions != 1 {
		t.Errorf("fused rotated ran ansatz %d times, want 1", fused.Stats().AnsatzExecutions)
	}
	if classic.Stats().AnsatzExecutions <= 1 {
		t.Errorf("classic rotated should re-prepare per group, got %d", classic.Stats().AnsatzExecutions)
	}
}

func TestRotatedFusedPerTermMatches(t *testing.T) {
	h, u, _ := h2Setup(t)
	params := []float64{0.03, 0.09, -0.04}
	classic, _ := New(h, u, Options{Mode: Rotated, PerTermMeasurement: true})
	fused, _ := New(h, u, Options{Mode: Rotated, PerTermMeasurement: true, Transpile: true})
	if e1, e2 := classic.Energy(params), fused.Energy(params); math.Abs(e1-e2) > 1e-10 {
		t.Fatalf("per-term fused rotated %v vs classic %v", e2, e1)
	}
}
