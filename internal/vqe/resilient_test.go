package vqe

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ansatz"
	"repro/internal/opt"
	"repro/internal/resilience"
)

// TestMinimizeCrashResumeEquivalence is the crash/restart property test:
// a checkpointed Nelder–Mead VQE killed at an arbitrary iteration and
// resumed from its snapshot must land on the same optimum — energy and
// parameters within 1e-12 and the identical evaluation count — as the
// run that was never interrupted.
func TestMinimizeCrashResumeEquivalence(t *testing.T) {
	h, u, fci := h2Setup(t)
	x0 := make([]float64, u.NumParameters())
	o := opt.NelderMeadOptions{MaxIter: 2000}

	ref, _ := New(h, u, Options{Mode: Direct})
	full := ref.Minimize(x0, o)
	if math.Abs(full.Energy-fci) > 1e-5 {
		t.Fatalf("reference run off FCI: %v vs %v", full.Energy, fci)
	}

	for _, killAt := range []int{2, 17, full.Optimizer.Iterations - 2} {
		if killAt < 1 || killAt >= full.Optimizer.Iterations {
			continue
		}
		path := filepath.Join(t.TempDir(), "nm.ckpt")
		// "Crash": cancel the context mid-run; MinimizeContext writes a
		// final checkpoint and returns the best vertex so far.
		ctx, cancel := context.WithCancel(context.Background())
		dKill, _ := New(h, u, Options{Mode: Direct})
		killOpts := o
		killOpts.Observer = func(st *opt.NelderMeadState) error {
			if st.Iter >= killAt {
				cancel()
			}
			return nil
		}
		partial, err := dKill.MinimizeContext(ctx, x0, killOpts, ResilienceOptions{CheckpointPath: path, CheckpointEvery: 1})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !partial.Interrupted {
			t.Fatalf("killAt=%d: run not interrupted", killAt)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("killAt=%d: no checkpoint written: %v", killAt, err)
		}

		dResume, _ := New(h, u, Options{Mode: Direct})
		resumed, err := dResume.MinimizeContext(context.Background(), x0, o, ResilienceOptions{CheckpointPath: path, Resume: true})
		if err != nil {
			t.Fatal(err)
		}
		if resumed.Interrupted {
			t.Fatalf("killAt=%d: resumed run interrupted", killAt)
		}
		if math.Abs(resumed.Energy-full.Energy) > 1e-12 {
			t.Errorf("killAt=%d: resumed energy %v != full %v", killAt, resumed.Energy, full.Energy)
		}
		for i := range full.Params {
			if math.Abs(resumed.Params[i]-full.Params[i]) > 1e-12 {
				t.Errorf("killAt=%d: param %d: %v != %v", killAt, i, resumed.Params[i], full.Params[i])
			}
		}
		if resumed.Optimizer.Evaluations != full.Optimizer.Evaluations {
			t.Errorf("killAt=%d: trajectory diverged: %d evaluations != %d",
				killAt, resumed.Optimizer.Evaluations, full.Optimizer.Evaluations)
		}
	}
}

// TestMinimizeLBFGSCrashResumeEquivalence is the same property for the
// gradient-based path, with kill points spread over the real trajectory.
func TestMinimizeLBFGSCrashResumeEquivalence(t *testing.T) {
	h, u, fci := h2Setup(t)
	x0 := make([]float64, u.NumParameters())
	o := opt.LBFGSOptions{MaxIter: 200}

	ref, _ := New(h, u, Options{Mode: Direct})
	full, err := ref.MinimizeLBFGS(x0, o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Energy-fci) > 1e-6 {
		t.Fatalf("reference run off FCI: %v vs %v", full.Energy, fci)
	}

	for _, killAt := range []int{1, full.Optimizer.Iterations / 2} {
		if killAt < 1 || killAt >= full.Optimizer.Iterations {
			continue
		}
		path := filepath.Join(t.TempDir(), "lbfgs.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		dKill, _ := New(h, u, Options{Mode: Direct})
		killOpts := o
		killOpts.Observer = func(st *opt.LBFGSState) error {
			if st.Iter >= killAt {
				cancel()
			}
			return nil
		}
		partial, err := dKill.MinimizeLBFGSContext(ctx, x0, killOpts, ResilienceOptions{CheckpointPath: path, CheckpointEvery: 1})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !partial.Interrupted {
			t.Fatalf("killAt=%d: run not interrupted", killAt)
		}

		dResume, _ := New(h, u, Options{Mode: Direct})
		resumed, err := dResume.MinimizeLBFGSContext(context.Background(), x0, o, ResilienceOptions{CheckpointPath: path, Resume: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(resumed.Energy-full.Energy) > 1e-12 {
			t.Errorf("killAt=%d: resumed energy %v != full %v", killAt, resumed.Energy, full.Energy)
		}
		for i := range full.Params {
			if math.Abs(resumed.Params[i]-full.Params[i]) > 1e-12 {
				t.Errorf("killAt=%d: param %d: %v != %v", killAt, i, resumed.Params[i], full.Params[i])
			}
		}
		if resumed.Optimizer.Iterations != full.Optimizer.Iterations {
			t.Errorf("killAt=%d: iterations %d != %d", killAt, resumed.Optimizer.Iterations, full.Optimizer.Iterations)
		}
	}
}

// TestMinimizeRejectsForeignCheckpoint: resuming Nelder–Mead from an
// L-BFGS checkpoint must fail loudly, not silently misinterpret it.
func TestMinimizeRejectsForeignCheckpoint(t *testing.T) {
	h, u, _ := h2Setup(t)
	path := filepath.Join(t.TempDir(), "wrong.ckpt")
	if err := resilience.SaveCheckpoint(path, KindLBFGS, 3, &opt.LBFGSState{X: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	d, _ := New(h, u, Options{Mode: Direct})
	_, err := d.MinimizeContext(context.Background(), make([]float64, u.NumParameters()),
		opt.NelderMeadOptions{MaxIter: 5}, ResilienceOptions{CheckpointPath: path, Resume: true})
	if !errors.Is(err, resilience.ErrCheckpointInvalid) {
		t.Fatalf("want ErrCheckpointInvalid, got %v", err)
	}
}

// TestEnergyContextHonorsCancellation.
func TestEnergyContextHonorsCancellation(t *testing.T) {
	h, u, _ := h2Setup(t)
	d, _ := New(h, u, Options{Mode: Direct})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.EnergyContext(ctx, make([]float64, u.NumParameters())); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d.Stats().EnergyEvaluations != 0 {
		t.Error("energy evaluated after cancellation")
	}
}

// TestWalltimeDeadlineReturnsBestSoFar: an already-exhausted walltime
// budget still yields a usable (best-so-far) result plus a checkpoint —
// the graceful-degradation contract for SLURM-style runs.
func TestWalltimeDeadlineReturnsBestSoFar(t *testing.T) {
	h, u, _ := h2Setup(t)
	path := filepath.Join(t.TempDir(), "deadline.ckpt")
	ctx, cancel := resilience.WithWalltime(context.Background(), time.Nanosecond, 0)
	defer cancel()
	<-ctx.Done()
	d, _ := New(h, u, Options{Mode: Direct})
	res, err := d.MinimizeContext(ctx, make([]float64, u.NumParameters()),
		opt.NelderMeadOptions{MaxIter: 2000}, ResilienceOptions{CheckpointPath: path, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("expired walltime did not interrupt")
	}
	if math.IsNaN(res.Energy) || math.IsInf(res.Energy, 0) {
		t.Fatalf("unusable best-so-far energy %v", res.Energy)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no final checkpoint on deadline: %v", err)
	}
}

// TestAdaptCheckpointResume: an Adapt-VQE run cut off after its first
// outer iteration and resumed from the checkpoint must reproduce the
// uninterrupted run's growth trajectory and final energy.
func TestAdaptCheckpointResume(t *testing.T) {
	h, u, _ := h2Setup(t)
	_ = u
	pool, err := ansatz.NewPool(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := AdaptOptions{MaxIterations: 4, Reference: math.NaN()}
	full, err := Adapt(h, pool, 4, 2, o)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "adapt.ckpt")
	first, err := AdaptContext(context.Background(), h, pool, 4, 2,
		AdaptOptions{MaxIterations: 1, Reference: math.NaN()},
		ResilienceOptions{CheckpointPath: path, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.History) != 1 {
		t.Fatalf("first leg ran %d iterations, want 1", len(first.History))
	}
	resumed, err := AdaptContext(context.Background(), h, pool, 4, 2, o,
		ResilienceOptions{CheckpointPath: path, CheckpointEvery: 1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resumed.Energy-full.Energy) > 1e-12 {
		t.Errorf("resumed energy %v != full %v", resumed.Energy, full.Energy)
	}
	if len(resumed.History) != len(full.History) {
		t.Fatalf("resumed history %d entries != full %d", len(resumed.History), len(full.History))
	}
	for i := range full.History {
		if resumed.History[i].Operator != full.History[i].Operator {
			t.Errorf("iteration %d picked %q, full run picked %q",
				i+1, resumed.History[i].Operator, full.History[i].Operator)
		}
	}
	if resumed.Converged != full.Converged {
		t.Errorf("converged %v != %v", resumed.Converged, full.Converged)
	}
}

// TestAdaptDeadlineInterrupts: a canceled context stops the outer loop
// before any work and flags the result.
func TestAdaptDeadlineInterrupts(t *testing.T) {
	h, _, _ := h2Setup(t)
	pool, err := ansatz.NewPool(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AdaptContext(ctx, h, pool, 4, 2, AdaptOptions{MaxIterations: 3, Reference: math.NaN()}, ResilienceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Error("canceled Adapt not flagged as interrupted")
	}
	if len(res.History) != 0 {
		t.Error("iterations ran after cancellation")
	}
}
