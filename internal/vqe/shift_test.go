package vqe

import (
	"math"
	"testing"

	"repro/internal/ansatz"
	"repro/internal/chem"
	"repro/internal/core"
	"repro/internal/opt"
)

func TestPerTermMeasurementMatchesGrouped(t *testing.T) {
	h, u, _ := h2Setup(t)
	params := []float64{0.05, -0.03, 0.1}
	grouped, _ := New(h, u, Options{Mode: Rotated, Caching: true})
	perTerm, _ := New(h, u, Options{Mode: Rotated, Caching: true, PerTermMeasurement: true})
	e1, e2 := grouped.Energy(params), perTerm.Energy(params)
	if math.Abs(e1-e2) > 1e-9 {
		t.Errorf("per-term %v vs grouped %v", e2, e1)
	}
	if perTerm.NumMeasurementBases() <= grouped.NumMeasurementBases() {
		t.Errorf("grouping gained nothing: %d groups vs %d terms",
			grouped.NumMeasurementBases(), perTerm.NumMeasurementBases())
	}
	// Per-term mode restores the cached state once per term, grouped mode
	// once per group (many Z-only term rotations are empty circuits, so
	// raw gate counts are not monotone — state preparations are).
	if perTerm.Stats().CacheRestores <= grouped.Stats().CacheRestores {
		t.Errorf("per-term restores %d not above grouped %d",
			perTerm.Stats().CacheRestores, grouped.Stats().CacheRestores)
	}
}

func TestParameterShiftMatchesFiniteDifferenceOnHEA(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	hea, err := ansatz.NewHardwareEfficient(4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, hea.NumParameters())
	rng := core.NewRNG(5)
	for i := range params {
		params[i] = 0.3 * rng.NormFloat64()
	}
	if !ShiftRuleApplies(hea, params) {
		t.Fatal("shift rule should apply to HEA")
	}
	g := ParameterShiftGradient(h, hea, params, 1)
	d, _ := New(h, hea, Options{Mode: Direct})
	fd := make([]float64, len(params))
	opt.FiniteDifference(d.Energy, 1e-6)(params, fd)
	for i := range g {
		if math.Abs(g[i]-fd[i]) > 1e-5 {
			t.Fatalf("grad[%d]: shift %v vs FD %v", i, g[i], fd[i])
		}
	}
}

func TestShiftRuleRejectsUCCSD(t *testing.T) {
	// UCCSD parameters fan out into several rotations: the two-point rule
	// is invalid and must be detected.
	u, _ := ansatz.NewUCCSD(4, 2)
	if ShiftRuleApplies(u, make([]float64, u.NumParameters())) {
		t.Error("shift rule wrongly claimed for UCCSD")
	}
}

func TestCostModelForAnsatz(t *testing.T) {
	h, u, _ := h2Setup(t)
	c := u.Circuit(make([]float64, u.NumParameters()))
	gc := CostModelForAnsatz(h, c)
	if gc.AnsatzGates != c.GateCount() {
		t.Errorf("ansatz gates %d vs %d", gc.AnsatzGates, c.GateCount())
	}
	if gc.SavingsFactor() <= 1 {
		t.Errorf("savings %v", gc.SavingsFactor())
	}
	if (GateCost{}).SavingsFactor() != 0 {
		t.Error("zero-cost savings should be 0")
	}
}

func TestAdaptAccumulatesStats(t *testing.T) {
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	pool, _ := ansatz.NewPool(4, 2)
	res, err := Adapt(h, pool, 4, 2, AdaptOptions{
		MaxIterations: 6, Reference: fci.Energy, EnergyTol: core.ChemicalAccuracy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalStats.EnergyEvaluations == 0 || res.TotalStats.GatesApplied == 0 {
		t.Errorf("stats not accumulated: %+v", res.TotalStats)
	}
}
