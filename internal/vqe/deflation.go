package vqe

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/opt"
	"repro/internal/pauli"
	"repro/internal/state"
)

// DeflationOptions configures variational quantum deflation (VQD, Higgott–
// Wang–Brierley): excited states are found by minimizing
// ⟨H⟩ + β·Σᵢ |⟨ψᵢ|ψ(θ)⟩|² against the previously converged states.
type DeflationOptions struct {
	// NumStates is how many eigenstates to compute (≥ 1; 1 = plain VQE).
	NumStates int
	// Beta is the overlap penalty weight; it must exceed the spectral gap
	// (default: 2·‖H‖₁, always sufficient).
	Beta float64
	// Workers for simulation.
	Workers int
	// Restarts per state from perturbed parameters (default 3) to escape
	// the previous state's basin.
	Restarts int
	// Seed for restart perturbations.
	Seed uint64
	// LBFGS budget per optimization.
	LBFGS opt.LBFGSOptions
}

// DeflationState is one converged eigenstate approximation.
type DeflationState struct {
	Index  int
	Energy float64
	Params []float64
}

// Deflation computes the lowest NumStates eigenvalues of h with the given
// exponential ansatz. Each state minimizes the deflated objective over a
// fresh parameter vector, warm-restarted a few times.
func Deflation(h *pauli.Op, a Exponential, o DeflationOptions) ([]DeflationState, error) {
	if o.NumStates < 1 {
		return nil, fmt.Errorf("%w: NumStates %d", core.ErrInvalidArgument, o.NumStates)
	}
	if o.Beta == 0 {
		o.Beta = 2 * h.OneNorm()
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.LBFGS.MaxIter == 0 {
		o.LBFGS.MaxIter = 300
	}
	seed := o.Seed
	if seed == 0 {
		seed = 0xDEF1
	}
	rng := core.NewRNG(seed)
	n := a.NumQubits()
	dim := a.NumParameters()

	// Converged states are cached as raw amplitude vectors for the
	// overlap penalties.
	var found []DeflationState
	var foundAmps [][]complex128

	// The batched plan and the simulator are built once: every objective
	// evaluation across all states and restarts reuses the same X-mask
	// grouping and the same persistent worker pool.
	plan := pauli.NewPlan(h)
	sim := state.New(n, state.Options{Workers: o.Workers})
	prepare := func(params []float64) *state.State {
		sim.ResetZero()
		sim.Run(a.Circuit(params))
		return sim
	}
	objective := func(params []float64) float64 {
		s := prepare(params)
		e := plan.Evaluate(s, pauli.ExpectationOptions{Workers: o.Workers})
		for _, prev := range foundAmps {
			ov := linalg.VecDot(prev, s.Amplitudes())
			e += o.Beta * (real(ov)*real(ov) + imag(ov)*imag(ov))
		}
		return e
	}

	for k := 0; k < o.NumStates; k++ {
		bestF := math.Inf(1)
		var bestX []float64
		for r := 0; r < o.Restarts; r++ {
			x0 := make([]float64, dim)
			if r > 0 || k > 0 {
				for i := range x0 {
					x0[i] = 0.3 * rng.NormFloat64()
				}
			}
			res := opt.LBFGS(objective, nil, x0, o.LBFGS)
			if res.F < bestF {
				bestF = res.F
				bestX = res.X
			}
		}
		s := prepare(bestX)
		energy := plan.Evaluate(s, pauli.ExpectationOptions{Workers: o.Workers})
		found = append(found, DeflationState{Index: k, Energy: energy, Params: bestX})
		foundAmps = append(foundAmps, s.AmplitudesCopy())
	}
	return found, nil
}
