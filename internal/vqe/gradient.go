package vqe

import (
	"repro/internal/ansatz"
	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/pauli"
	"repro/internal/state"
)

// Exponential is an ansatz of the form U(θ) = ∏ₖ exp(θₖ·Aₖ)·|ref⟩ whose
// structure enables adjoint differentiation. UCCSD and the Adapt ansatz
// satisfy it.
type Exponential interface {
	ansatz.Ansatz
	Reference() *circuit.Circuit
	Operators() []ansatz.Excitation
}

// adjointGradient fills g with ∂E/∂θ via the adjoint (reverse-sweep)
// method: two state vectors, one forward preparation, one application of
// H, then a backward sweep undoing each exponential —
// O(m·(gates + 2ⁿ·terms)) total instead of O(m²) circuit executions.
func (d *Driver) adjointGradient(exp Exponential, params, g []float64) {
	ops := exp.Operators()
	n := exp.NumQubits()

	// Forward: |φ⟩ = U(θ)|ref⟩.
	phi := state.New(n, state.Options{Workers: d.opts.Workers})
	phi.Run(exp.Reference())
	exps := make([]*circuit.Circuit, len(ops))
	for k, ex := range ops {
		c := circuit.New(n)
		ex.AppendExp(c, params[k])
		exps[k] = c
		phi.Run(c)
	}

	// λ = H|φ⟩ (unnormalized; held as raw amplitudes). The driver's
	// batched plan applies H with one scatter pass per X-mask group,
	// parallelized over φ's worker pool.
	lambda := make([]complex128, phi.Dim())
	d.plan.MatVec(lambda, phi.Amplitudes(), phi.WorkerPool())
	lamState := rawState(lambda, n, d.opts.Workers)

	// Backward sweep: at step k (from last to first), φ and λ hold
	// U_k…U_1|ref⟩ and (U_{k+1}…U_m)†H|ψ⟩; grad_k = 2·Re⟨λ|A_k|φ⟩.
	tmp := make([]complex128, phi.Dim())
	for k := len(ops) - 1; k >= 0; k-- {
		gen := ops[k].Generator()
		gen.MatVec(tmp, phi.Amplitudes())
		g[k] = 2 * real(linalg.VecDot(lamState.Amplitudes(), tmp))
		inv := exps[k].Inverse()
		phi.Run(inv)
		lamState.Run(inv)
	}
}

// rawState wraps an arbitrary (possibly unnormalized) amplitude vector in
// a State so circuits can be applied to it. Gate application is linear, so
// normalization is irrelevant for the inner products taken here.
func rawState(amps []complex128, n, workers int) *state.State {
	s := state.New(n, state.Options{Workers: workers})
	copy(s.Amplitudes(), amps)
	return s
}

// PoolGradients returns ∂E/∂θ at θ=0 for appending each pool operator to
// the state ψ: gₖ = ⟨ψ|[H, Aₖ]|ψ⟩ = 2·Re⟨Hψ|Aₖψ⟩. Computing Hψ once makes
// the whole pool scan O(2ⁿ·(|H| + Σ|Aₖ|)) — this is the operator-selection
// step of Adapt-VQE.
func PoolGradients(s *state.State, h *pauli.Op, poolOps []ansatz.Excitation) []float64 {
	hPsi := make([]complex128, s.Dim())
	// H is the many-term factor; apply it batched. The per-operator
	// generators below have only a handful of terms each.
	pauli.NewPlan(h).MatVec(hPsi, s.Amplitudes(), s.WorkerPool())
	tmp := make([]complex128, s.Dim())
	out := make([]float64, len(poolOps))
	for k, ex := range poolOps {
		ex.Generator().MatVec(tmp, s.Amplitudes())
		out[k] = 2 * real(linalg.VecDot(hPsi, tmp))
	}
	return out
}
