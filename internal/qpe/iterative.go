package qpe

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/pauli"
	"repro/internal/state"
)

// IterativeResult reports an iterative (single-ancilla) phase estimation.
type IterativeResult struct {
	Energy     float64
	Phase      float64
	Bits       []int // measured bits, least significant first
	Resolution float64
}

// EstimateIterative runs Kitaev-style iterative QPE: one ancilla qubit
// measured m times, extracting the phase bit-by-bit from least to most
// significant with classical feedback rotations. Uses one extra qubit
// instead of m ancillas, at the cost of mid-circuit measurement — the
// qubit-frugal variant of the textbook algorithm.
//
// The system register must hold an eigenstate of e^{iHt} (phase kickback
// leaves it invariant, so the same register is reused across rounds).
func EstimateIterative(h *pauli.Op, sysAmps []complex128, sysQubits int, opts Options) (*IterativeResult, error) {
	if opts.AncillaQubits == 0 {
		opts.AncillaQubits = 6
	}
	if opts.Time == 0 {
		opts.Time = autoTime(h)
	}
	if opts.TrotterSteps == 0 {
		opts.TrotterSteps = 1
	}
	if h.MaxQubit() >= sysQubits {
		return nil, core.QubitError(h.MaxQubit(), sysQubits)
	}
	if len(sysAmps) != core.Dim(sysQubits) {
		return nil, core.ErrDimensionMismatch
	}
	m := opts.AncillaQubits
	anc := sysQubits // single ancilla occupies the top qubit
	total := sysQubits + 1

	s := state.New(total, state.Options{Workers: opts.Workers, Seed: 0xEDC})
	copy(s.Amplitudes()[:len(sysAmps)], sysAmps)

	bits := make([]int, m)
	phi := 0.0 // accumulated phase estimate in [0,1), built LSB-first
	for k := m - 1; k >= 0; k-- {
		round := circuit.New(total)
		round.H(anc)
		reps := 1 << uint(k)
		AppendControlledEvolution(round, anc, h, opts.Time*float64(reps), opts.TrotterSteps*reps)
		// Classical feedback: subtract the already-determined lower bits.
		if phi != 0 {
			round.P(-2*math.Pi*phi*float64(reps), anc)
		}
		round.H(anc)
		s.Run(round)
		bit := s.Measure(anc)
		bits[m-1-k] = bit
		// Round k determines fraction bit b_{k+1} of φ = 0.b₁b₂…b_m.
		phi += float64(bit) / float64(uint64(1)<<uint(k+1))
		// Reset the ancilla for the next round.
		if bit == 1 {
			s.ApplyGate(gate.New(gate.X, anc))
		}
	}
	return &IterativeResult{
		Energy:     phaseToEnergy(phi, opts.Time),
		Phase:      phi,
		Bits:       bits,
		Resolution: 2 * math.Pi / (opts.Time * float64(int(1)<<uint(m))),
	}, nil
}
