package qpe

import (
	"math"
	"testing"

	"repro/internal/chem"
	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/pauli"
)

func TestControlledPauliExpMatchesControlledMatrix(t *testing.T) {
	// Controlled exp(−iθ/2·Z) on (ctrl=1, target=0) vs dense reference.
	theta := 0.77
	c := circuit.New(2)
	AppendControlledPauliExp(c, 1, theta, pauli.MustParse("Z"))
	got := c.Unitary()
	u := linalg.Expm(pauli.NewOp().Add(pauli.MustParse("Z"), 1).ToDense(1).Scale(complex(0, -theta/2)))
	want := linalg.Identity(4)
	// Control = qubit 1 (high bit of the 2-qubit space).
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want.Set(2+i, 2+j, u.At(i, j))
		}
	}
	if !got.EqualUpToPhase(want, 1e-10) {
		t.Error("controlled Pauli exponential wrong")
	}
}

func TestControlledEvolutionPhaseKickback(t *testing.T) {
	// H = Z on one qubit; system in |0⟩ (eigenvalue +1). Controlled
	// e^{iHt} must kick phase e^{it} onto |1⟩ component of the ancilla.
	h := pauli.NewOp().Add(pauli.MustParse("Z"), 1)
	tEvo := 0.9
	c := circuit.New(2)
	c.H(1) // ancilla superposition
	AppendControlledEvolution(c, 1, h, tEvo, 1)
	u := c.Unitary()
	v := make([]complex128, 4)
	v[0] = 1
	out := u.MulVec(v)
	// State: (|0⟩ + e^{it}|1⟩)/√2 ⊗ |0⟩.
	wantPhase := complex(math.Cos(tEvo), math.Sin(tEvo))
	ratio := out[2] / out[0]
	if math.Abs(real(ratio)-real(wantPhase)) > 1e-9 || math.Abs(imag(ratio)-imag(wantPhase)) > 1e-9 {
		t.Errorf("kickback phase %v, want %v", ratio, wantPhase)
	}
}

func TestInverseQFTInvertsFourierState(t *testing.T) {
	// Prepare the Fourier state of k via phase gates, then inverse QFT must
	// yield |k⟩ exactly.
	m := 3
	for k := 0; k < 8; k++ {
		c := circuit.New(m)
		for j := 0; j < m; j++ {
			c.H(j)
			// Fourier state: phase 2π·k·2^j/2^m on qubit j.
			c.P(2*math.Pi*float64(k)*float64(int(1)<<uint(j))/8, j)
		}
		AppendInverseQFT(c, []int{0, 1, 2})
		u := c.Unitary()
		v := make([]complex128, 8)
		v[0] = 1
		out := u.MulVec(v)
		prob := real(out[k])*real(out[k]) + imag(out[k])*imag(out[k])
		if math.Abs(prob-1) > 1e-9 {
			t.Errorf("k=%d: P(|k⟩) = %v", k, prob)
		}
	}
}

func TestQPESingleQubitExactPhase(t *testing.T) {
	// H = ω·Z with ω chosen so the ground phase is exactly representable
	// on 4 ancillas: E = −ω on |1⟩. Pick t and ω with E·t/2π = −3/16.
	omega := 0.75
	tEvo := math.Pi / 2 // φ = −0.75·(π/2)/2π = −3/16 → wraps to 13/16
	h := pauli.NewOp().Add(pauli.MustParse("Z"), complex(omega, 0))
	prep := circuit.New(1).X(0) // eigenstate |1⟩, E = −0.75
	res, err := Estimate(h, prep, 1, Options{AncillaQubits: 4, Time: tEvo})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-(-omega)) > 1e-9 {
		t.Errorf("E = %v, want %v", res.Energy, -omega)
	}
	if res.Confidence < 0.99 {
		t.Errorf("confidence %v for exactly representable phase", res.Confidence)
	}
}

func TestQPEPositiveEigenvalue(t *testing.T) {
	h := pauli.NewOp().Add(pauli.MustParse("Z"), 0.75)
	prep := circuit.New(1) // |0⟩, E = +0.75
	res, err := Estimate(h, prep, 1, Options{AncillaQubits: 4, Time: math.Pi / 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-0.75) > 1e-9 {
		t.Errorf("E = %v, want 0.75", res.Energy)
	}
}

func TestQPEResolutionScalesWithAncillas(t *testing.T) {
	h := pauli.NewOp().Add(pauli.MustParse("Z"), 0.3)
	var prev float64 = math.Inf(1)
	for _, a := range []int{3, 5, 7} {
		res, err := Estimate(h, nil, 1, Options{AncillaQubits: a, Time: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Resolution >= prev {
			t.Errorf("resolution did not improve: %v", res.Resolution)
		}
		prev = res.Resolution
	}
}

func TestQPEOnH2GroundState(t *testing.T) {
	// Feed the FCI eigenvector into QPE; the estimate must match the FCI
	// energy within one resolution quantum. All H2 Hamiltonian terms
	// commute pairwise except a few — use several Trotter steps.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, err := chem.FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateFromAmplitudes(h, fci.FullVector(), 4, Options{
		AncillaQubits: 7,
		Time:          0.8,
		TrotterSteps:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-fci.Energy) > res.Resolution {
		t.Errorf("QPE %v vs FCI %v (resolution %v)", res.Energy, fci.Energy, res.Resolution)
	}
	// A non-representable phase leaks into neighbouring bins; the top bin
	// of an exact eigenstate still holds ≥ 4/π² ≈ 0.405 of the mass.
	if res.Confidence < 0.4 {
		t.Errorf("confidence %v too low for an exact eigenstate", res.Confidence)
	}
}

func TestQPEOnHartreeFockFindsGroundDominantly(t *testing.T) {
	// The HF determinant overlaps the H2 ground state strongly, so the
	// most probable outcome should decode near the FCI energy.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, _ := chem.FCI(m)
	prep := HartreeFockPrep(4, 2)
	res, err := Estimate(h, prep, 4, Options{AncillaQubits: 7, Time: 0.8, TrotterSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-fci.Energy) > 2*res.Resolution {
		t.Errorf("QPE(HF) %v vs FCI %v", res.Energy, fci.Energy)
	}
}

func TestBuildCircuitValidation(t *testing.T) {
	h := pauli.NewOp().Add(pauli.MustParse("IIIIZ"), 1)
	if _, err := BuildCircuit(h, 4, Options{AncillaQubits: 2, Time: 1}); err == nil {
		t.Error("wide Hamiltonian accepted")
	}
	if _, err := BuildCircuit(pauli.NewOp(), 2, Options{AncillaQubits: 0, Time: 1}); err == nil {
		t.Error("zero ancillas accepted")
	}
}

func TestPhaseToEnergyBranch(t *testing.T) {
	if e := phaseToEnergy(0.25, 1); math.Abs(e-math.Pi/2) > 1e-12 {
		t.Error("positive branch")
	}
	if e := phaseToEnergy(0.75, 1); math.Abs(e+math.Pi/2) > 1e-12 {
		t.Error("negative branch")
	}
}
