package qpe

import (
	"math"
	"testing"

	"repro/internal/chem"
	"repro/internal/pauli"
)

func TestIterativeQPEExactPhase(t *testing.T) {
	// H = 0.75·Z, eigenstate |1⟩ with E = −0.75; t = π/2 makes the phase
	// exactly 13/16 → 4 bits suffice and every measurement is
	// deterministic.
	h := pauli.NewOp().Add(pauli.MustParse("Z"), 0.75)
	sys := []complex128{0, 1}
	res, err := EstimateIterative(h, sys, 1, Options{AncillaQubits: 4, Time: math.Pi / 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-(-0.75)) > 1e-9 {
		t.Errorf("E = %v, want -0.75 (phase %v, bits %v)", res.Energy, res.Phase, res.Bits)
	}
	if len(res.Bits) != 4 {
		t.Errorf("bits %v", res.Bits)
	}
}

func TestIterativeQPEPositivePhase(t *testing.T) {
	h := pauli.NewOp().Add(pauli.MustParse("Z"), 0.75)
	sys := []complex128{1, 0} // |0⟩, E = +0.75 → phase 3/16
	res, err := EstimateIterative(h, sys, 1, Options{AncillaQubits: 4, Time: math.Pi / 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-0.75) > 1e-9 {
		t.Errorf("E = %v, want 0.75 (bits %v)", res.Energy, res.Bits)
	}
}

func TestIterativeMatchesTextbookQPE(t *testing.T) {
	// On an exact eigenstate both variants decode the same energy within
	// one resolution quantum.
	m := chem.H2()
	h := chem.QubitHamiltonian(m)
	fci, err := chem.FCI(m)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{AncillaQubits: 7, Time: 0.8, TrotterSteps: 4}
	full, err := EstimateFromAmplitudes(h, fci.FullVector(), 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := EstimateIterative(h, fci.FullVector(), 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iter.Energy-fci.Energy) > 2*iter.Resolution {
		t.Errorf("iterative %v vs FCI %v (resolution %v)", iter.Energy, fci.Energy, iter.Resolution)
	}
	if math.Abs(iter.Energy-full.Energy) > 2*iter.Resolution {
		t.Errorf("iterative %v vs full QPE %v", iter.Energy, full.Energy)
	}
}

func TestIterativeUsesOneAncilla(t *testing.T) {
	// The register is sysQubits+1 wide regardless of bit count — this is
	// the point of the iterative scheme. Indirect check: 12 phase bits on
	// a 1-qubit system must not blow up memory (2^13 amplitudes).
	h := pauli.NewOp().Add(pauli.MustParse("Z"), 0.5)
	res, err := EstimateIterative(h, []complex128{1, 0}, 1, Options{AncillaQubits: 12, Time: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bits) != 12 {
		t.Errorf("expected 12 bits, got %d", len(res.Bits))
	}
	if math.Abs(res.Energy-0.5) > res.Resolution {
		t.Errorf("E = %v ± %v, want 0.5", res.Energy, res.Resolution)
	}
}

func TestIterativeValidation(t *testing.T) {
	h := pauli.NewOp().Add(pauli.MustParse("IIZ"), 1)
	if _, err := EstimateIterative(h, []complex128{1, 0}, 1, Options{AncillaQubits: 3, Time: 1}); err == nil {
		t.Error("wide Hamiltonian accepted")
	}
	h1 := pauli.NewOp().Add(pauli.MustParse("Z"), 1)
	if _, err := EstimateIterative(h1, []complex128{1, 0, 0}, 1, Options{AncillaQubits: 3, Time: 1}); err == nil {
		t.Error("bad amplitude length accepted")
	}
}
